package integration

// Multi-shard smoke (make shard-smoke, part of `make check`): a 3-shard
// controller cluster boots in one process, a shard-routing client
// publishes across the ring by redirect discovery, a person inquiry
// scatter-gathers the cluster — then a cold fourth shard joins via one
// live split and the cluster still answers with exactly-once placement
// and intact audit chains.

import (
	"bytes"
	"context"
	"fmt"
	"net"
	"net/http/httptest"
	"os"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/crypto"
	"repro/internal/event"
	"repro/internal/index"
	"repro/internal/policy"
	"repro/internal/schema"
	"repro/internal/transport"
)

// bootShard starts one sharded controller on a pre-bound listener.
func bootShard(t *testing.T, key []byte, id cluster.ShardID, m *cluster.Map, ln net.Listener) *core.Controller {
	t.Helper()
	c, err := core.New(core.Config{
		DefaultConsent: true, Codec: event.Binary, MasterKey: key,
		ShardID: id, ShardMap: m,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	if err := c.RegisterProducer("hospital", "H"); err != nil {
		t.Fatal(err)
	}
	if err := c.DeclareClass("hospital", schema.BloodTest()); err != nil {
		t.Fatal(err)
	}
	if err := c.RegisterConsumer("family-doctor", "FD"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.DefinePolicy(&policy.Policy{
		Producer: "hospital", Actor: "family-doctor", Class: schema.ClassBloodTest,
		Purposes: []event.Purpose{event.PurposeHealthcareTreatment},
		Fields:   []event.FieldName{"patient-id"},
	}); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewUnstartedServer(transport.NewServer(c))
	srv.Listener.Close()
	srv.Listener = ln
	srv.Start()
	t.Cleanup(srv.Close)
	return c
}

// TestShardSmoke is the cluster bring-up drill behind `make shard-smoke`.
func TestShardSmoke(t *testing.T) {
	if os.Getenv("SHARD_SMOKE") == "" {
		t.Skip("set SHARD_SMOKE=1 (or run `make shard-smoke`)")
	}
	const active, total = 3, 4
	key := bytes.Repeat([]byte{5}, crypto.KeySize)

	lns := make([]net.Listener, total)
	shards := make([]cluster.ShardInfo, total)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		shards[i] = cluster.ShardInfo{ID: cluster.ShardID(i), Addr: "http://" + ln.Addr().String()}
	}
	// The boot map names only the active shards; shard 3 boots cold
	// (owning nothing) and joins through the live split below.
	m, err := cluster.NewMap(1, 0, shards[:active])
	if err != nil {
		t.Fatal(err)
	}
	ctrls := make([]*core.Controller, total)
	for i := range ctrls {
		ctrls[i] = bootShard(t, key, cluster.ShardID(i), m, lns[i])
	}

	// No pseudonym function: the client discovers owners through
	// wrong-shard redirects, exactly like an external producer.
	sc, err := transport.NewShardedClient(m, func(info cluster.ShardInfo) *transport.Client {
		return transport.NewClient(info.Addr, nil, transport.WithCodec(event.Binary))
	})
	if err != nil {
		t.Fatal(err)
	}

	persons := make([]string, 30)
	base := time.Date(2024, 5, 1, 8, 0, 0, 0, time.UTC)
	for i := range persons {
		persons[i] = fmt.Sprintf("SMK-%03d", i)
		if _, err := sc.Publish(context.Background(), &event.Notification{
			SourceID: event.SourceID(fmt.Sprintf("smoke-%03d", i)), Class: schema.ClassBloodTest,
			PersonID: persons[i], OccurredAt: base.Add(time.Duration(i) * time.Minute),
			Producer: "hospital",
		}); err != nil {
			t.Fatalf("publish %s: %v", persons[i], err)
		}
	}

	// Cross-shard placement: every event indexed exactly once, on the
	// shard the ring owns its pseudonym to.
	verifyPlacement := func(m *cluster.Map) {
		t.Helper()
		totalIndexed := 0
		for _, c := range ctrls {
			n, err := c.IndexLen()
			if err != nil {
				t.Fatal(err)
			}
			totalIndexed += n
		}
		if totalIndexed != len(persons) {
			t.Fatalf("cluster indexes %d events, want %d", totalIndexed, len(persons))
		}
		for _, p := range persons {
			owner := m.Owner(ctrls[0].Pseudonym(p))
			notes, err := ctrls[owner].InquireIndex("family-doctor", index.Inquiry{PersonID: p})
			if err != nil {
				t.Fatal(err)
			}
			if len(notes) != 1 {
				t.Fatalf("owner %s holds %d events for %s, want 1", owner, len(notes), p)
			}
		}
	}
	verifyPlacement(m)

	// Scatter-gather: a class-wide inquiry through the client must merge
	// all shards in stable order.
	notes, err := sc.InquireIndex(context.Background(), "family-doctor", index.Inquiry{Class: schema.ClassBloodTest})
	if err != nil {
		t.Fatalf("scatter inquiry: %v", err)
	}
	if len(notes) != len(persons) {
		t.Fatalf("scatter inquiry merged %d events, want %d", len(notes), len(persons))
	}
	for i := 1; i < len(notes); i++ {
		if notes[i].OccurredAt.Before(notes[i-1].OccurredAt) {
			t.Fatalf("merged order violated at %d", i)
		}
	}

	// Live split: the cold shard 3 joins. Donors freeze, ship moved
	// events, flip the map, sweep.
	next, err := m.WithShards(shards)
	if err != nil {
		t.Fatal(err)
	}
	nodes := make(map[cluster.ShardID]cluster.Node, total)
	for _, c := range ctrls {
		id, _ := c.ShardID()
		nodes[id] = c
	}
	stats, err := cluster.Reshard(context.Background(), nodes, next)
	if err != nil {
		t.Fatalf("reshard: %v", err)
	}
	if stats.Moved == 0 {
		t.Fatal("split moved nothing onto the new shard's key range")
	}
	if stats.Swept != stats.Moved {
		t.Fatalf("swept %d != moved %d", stats.Swept, stats.Moved)
	}
	t.Logf("split moved=%d swept=%d", stats.Moved, stats.Swept)

	verifyPlacement(next)
	if n, err := ctrls[3].IndexLen(); err != nil || n == 0 {
		t.Fatalf("new shard holds %d events after the split (err %v)", n, err)
	}

	// The client refreshes to the flipped map and a post-split publish
	// lands on the new topology first try.
	if err := sc.RefreshMap(context.Background(), 0); err != nil {
		t.Fatal(err)
	}
	if got := sc.Map().Version(); got != next.Version() {
		t.Fatalf("client map v%d, want v%d", got, next.Version())
	}
	if _, err := sc.Publish(context.Background(), &event.Notification{
		SourceID: "smoke-post-split", Class: schema.ClassBloodTest,
		PersonID: "SMK-POST", OccurredAt: base.Add(time.Hour), Producer: "hospital",
	}); err != nil {
		t.Fatalf("post-split publish: %v", err)
	}
	owner := next.Owner(ctrls[0].Pseudonym("SMK-POST"))
	got, err := ctrls[owner].InquireIndex("family-doctor", index.Inquiry{PersonID: "SMK-POST"})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatalf("post-split event not on owner %s", owner)
	}

	// Every shard's audit hash-chain must survive the handoff.
	for _, c := range ctrls {
		if err := c.Audit().Verify(); err != nil {
			id, _ := c.ShardID()
			t.Errorf("audit chain on shard %s broken: %v", id, err)
		}
	}
}
