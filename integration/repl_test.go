package integration

// Replicated bring-up smoke (make repl-smoke, part of `make check`):
// one primary ships its WALs to two replica processes in quorum mode,
// each replica running the self-healing election manager. The primary
// is killed without warning and NO promote call is made: the replicas
// must detect the death (silent heartbeats + failing HTTP probe),
// elect exactly one of themselves at the next epoch, and serve reads
// and writes — feeding the survivor. The deposed primary then restarts
// as a replica, rejoins the winner's shipping fan-out, and css-audit
// -compare must show its audit chain converged with the winner's.
// POST /ws/promote remains available as a manual override, but the
// happy path never touches it.

import (
	"bytes"
	"context"
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/event"
	"repro/internal/index"
	"repro/internal/schema"
	"repro/internal/transport"
)

// startController launches a css-controller process with the given
// flags, returning the command and its combined log.
func startController(t *testing.T, args ...string) (*exec.Cmd, *lockedBuffer) {
	t.Helper()
	cmd := exec.Command(bin("css-controller"), args...)
	var buf lockedBuffer
	cmd.Stdout, cmd.Stderr = &buf, &buf
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		cmd.Process.Kill()
		cmd.Wait()
	})
	return cmd, &buf
}

// waitCaughtUp polls the primary's replication status until every
// follower is connected with zero lag.
func waitCaughtUp(t *testing.T, c *transport.Client, followers int) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for {
		st, err := c.ReplStatus(context.Background())
		if err == nil && len(st.Followers) == followers {
			caught := true
			for _, f := range st.Followers {
				if !f.Connected || f.LagBytes != 0 {
					caught = false
					break
				}
			}
			if caught {
				return
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("followers never caught up (last status %+v, err %v)", st, err)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// TestReplSmoke is the make repl-smoke entry point: the 1-primary /
// 2-replica self-healing failover drill against the built binaries.
func TestReplSmoke(t *testing.T) {
	if os.Getenv("REPL_SMOKE") == "" {
		t.Skip("set REPL_SMOKE=1 (or run `make repl-smoke`)")
	}
	root := t.TempDir()
	dirP := filepath.Join(root, "primary")
	dirR1 := filepath.Join(root, "replica1")
	dirR2 := filepath.Join(root, "replica2")

	// All three nodes must share one master key: the replicas serve
	// pseudonym-keyed inquiries over the replicated index.
	key := make([]byte, 32)
	if _, err := rand.Read(key); err != nil {
		t.Fatal(err)
	}
	keyFile := filepath.Join(root, "master.hex")
	if err := os.WriteFile(keyFile, []byte(hex.EncodeToString(key)+"\n"), 0o600); err != nil {
		t.Fatal(err)
	}

	pAddr, r1Addr, r2Addr := freePort(t), freePort(t), freePort(t)
	// Three follower listen addresses are pre-arranged: rl3 is where the
	// deposed primary will come back as a replica, so every node's
	// -replicate-to (shipping targets = electorate) can name it from the
	// start.
	rl1, rl2, rl3 := freePort(t), freePort(t), freePort(t)
	pURL, r1URL, r2URL := "http://"+pAddr, "http://"+r1Addr, "http://"+r2Addr

	// The primary boots first (its shipper redials followers with
	// backoff), so the replicas' HTTP probe of -primary-url answers from
	// the first tick — the probe channel is what keeps a freshly booted
	// replica from campaigning against a primary whose replication link
	// is merely still connecting.
	pCmd, pLog := startController(t,
		"-addr", pAddr, "-data", dirP, "-key-file", keyFile, "-scenario",
		"-role", "primary", "-replicate-to", rl1+","+rl2, "-quorum",
		"-heartbeat-interval", "50ms")
	waitReady(t, pURL)

	electionArgs := []string{
		"-election", "-primary-url", pURL,
		"-heartbeat-interval", "50ms", "-suspect-after", "750ms",
	}
	_, r1Log := startController(t, append([]string{
		"-addr", r1Addr, "-data", dirR1, "-key-file", keyFile,
		"-role", "replica", "-repl-listen", rl1,
		"-replicate-to", rl2 + "," + rl3, "-quorum"}, electionArgs...)...)
	_, r2Log := startController(t, append([]string{
		"-addr", r2Addr, "-data", dirR2, "-key-file", keyFile,
		"-role", "replica", "-repl-listen", rl2,
		"-replicate-to", rl1 + "," + rl3, "-quorum"}, electionArgs...)...)
	waitReady(t, r1URL)
	waitReady(t, r2URL)

	ctx := context.Background()
	pc := transport.NewClient(pURL, nil)
	r1c := transport.NewClient(r1URL, nil)
	r2c := transport.NewClient(r2URL, nil)

	// The scenario provisioning must replicate before the storm of
	// asserts: wait for both followers to drain the catch-up stream.
	waitCaughtUp(t, pc, 2)
	if st, err := pc.ReplStatus(ctx); err != nil || st.Role != "primary" || st.Quorum != true {
		t.Fatalf("primary replstatus = %+v, %v", st, err)
	}
	if st, err := r1c.ReplStatus(ctx); err != nil || st.Role != "replica" || st.Epoch != 1 || st.Election != "watching" {
		t.Fatalf("replica replstatus = %+v, %v; want watching replica at epoch 1", st, err)
	}

	// Quorum-acknowledged publishes through the primary.
	persons := make([]string, 5)
	base := time.Date(2010, 5, 30, 9, 0, 0, 0, time.UTC)
	for i := range persons {
		persons[i] = fmt.Sprintf("REPL-%03d", i)
		if _, err := pc.Publish(ctx, &event.Notification{
			Producer: "hospital-s-maria", SourceID: event.SourceID(fmt.Sprintf("repl-src-%03d", i)),
			Class: schema.ClassBloodTest, PersonID: persons[i], Summary: "blood test",
			OccurredAt: base.Add(time.Duration(i) * time.Minute),
		}); err != nil {
			t.Fatalf("publish %s: %v\nprimary log:\n%s", persons[i], err, pLog.String())
		}
	}
	waitCaughtUp(t, pc, 2)

	// Replicas answer index inquiries locally; writes are refused with
	// the not-primary redirect.
	for name, rc := range map[string]*transport.Client{"replica1": r1c, "replica2": r2c} {
		notes, err := rc.InquireIndex(ctx, "family-doctor", index.Inquiry{Class: schema.ClassBloodTest})
		if err != nil {
			t.Fatalf("%s inquiry: %v", name, err)
		}
		if len(notes) != len(persons) {
			t.Fatalf("%s serves %d events, want %d", name, len(notes), len(persons))
		}
	}
	if _, err := r1c.Publish(ctx, &event.Notification{
		Producer: "hospital-s-maria", SourceID: "repl-src-refused",
		Class: schema.ClassBloodTest, PersonID: "REPL-REFUSED", OccurredAt: base,
	}); err == nil {
		t.Fatal("replica accepted a write")
	}

	// Kill the primary without warning — and call nothing. The managers
	// must detect the silence, confirm over the dead HTTP probe, and
	// elect exactly one of the replicas at an epoch above the fenced one.
	pCmd.Process.Kill()
	pCmd.Wait()

	var wc, sc *transport.Client // winner / survivor clients
	var wDir string
	var wLog, sLog *lockedBuffer
	electDeadline := time.Now().Add(30 * time.Second)
	for {
		st1, err1 := r1c.ReplStatus(ctx)
		st2, err2 := r2c.ReplStatus(ctx)
		if err1 == nil && st1.Role == "primary" && st1.Epoch >= 2 {
			wc, sc, wDir, wLog, sLog = r1c, r2c, dirR1, r1Log, r2Log
			break
		}
		if err2 == nil && st2.Role == "primary" && st2.Epoch >= 2 {
			wc, sc, wDir, wLog, sLog = r2c, r1c, dirR2, r2Log, r1Log
			break
		}
		if time.Now().After(electDeadline) {
			t.Fatalf("no replica auto-elected itself (r1 %+v %v; r2 %+v %v)\nreplica1 log:\n%s\nreplica2 log:\n%s",
				st1, err1, st2, err2, r1Log.String(), r2Log.String())
		}
		time.Sleep(50 * time.Millisecond)
	}
	wst, err := wc.ReplStatus(ctx)
	if err != nil || wst.Election != "leader" || wst.Promised == 0 {
		t.Fatalf("winner replstatus = %+v, %v; want leader with a durable promise", wst, err)
	}
	winnerEpoch := wst.Epoch

	// The winner serves reads and writes, feeding the survivor from its
	// own WALs — which must have stood down as its follower.
	notes, err := wc.InquireIndex(ctx, "family-doctor", index.Inquiry{Class: schema.ClassBloodTest})
	if err != nil || len(notes) != len(persons) {
		t.Fatalf("winner inquiry = %d events, %v; want %d", len(notes), err, len(persons))
	}
	if _, err := wc.Publish(ctx, &event.Notification{
		Producer: "hospital-s-maria", SourceID: "repl-src-post",
		Class: schema.ClassBloodTest, PersonID: "REPL-POST", Summary: "after failover",
		OccurredAt: base.Add(time.Hour),
	}); err != nil {
		t.Fatalf("post-failover publish: %v\nwinner log:\n%s", err, wLog.String())
	}
	deadline := time.Now().Add(15 * time.Second)
	for {
		got, err := sc.InquireIndex(ctx, "family-doctor", index.Inquiry{PersonID: "REPL-POST"})
		if err == nil && len(got) == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("post-failover event never reached the surviving replica (err %v)\nsurvivor log:\n%s",
				err, sLog.String())
		}
		time.Sleep(50 * time.Millisecond)
	}
	if st, err := sc.ReplStatus(ctx); err != nil || st.Role != "replica" || st.Epoch != winnerEpoch {
		t.Fatalf("survivor replstatus = %+v, %v; want replica fenced at epoch %d", st, err, winnerEpoch)
	}

	// The deposed primary restarts as a replica on the pre-arranged
	// listener: it must discover the higher epoch, shed any unreplicated
	// old-epoch suffix, and converge as a follower of the winner.
	_, r3Log := startController(t,
		"-addr", pAddr, "-data", dirP, "-key-file", keyFile,
		"-role", "replica", "-repl-listen", rl3)
	waitReady(t, pURL)
	waitCaughtUp(t, wc, 2) // survivor + rejoined node, both at zero lag
	if st, err := pc.ReplStatus(ctx); err != nil || st.Role != "replica" || st.Epoch != winnerEpoch {
		t.Fatalf("rejoined replstatus = %+v, %v; want replica at epoch %d\nrejoined log:\n%s",
			st, err, winnerEpoch, r3Log.String())
	}

	// The guarantor's post-mortem: the rejoined node's audit chain must
	// verify and match the winner's — anything else is a fork.
	var out, errOut bytes.Buffer
	audit := exec.Command(bin("css-audit"), "-data", dirP, "-compare", wDir)
	audit.Stdout, audit.Stderr = &out, &errOut
	if err := audit.Run(); err != nil {
		t.Fatalf("css-audit -compare: %v\n%s%s", err, out.String(), errOut.String())
	}
	if !strings.Contains(out.String(), "chains agree through seq") &&
		!strings.Contains(out.String(), "chains identical") {
		t.Fatalf("css-audit -compare output: %s", out.String())
	}
	t.Logf("css-audit -compare:\n%s", out.String())
}
