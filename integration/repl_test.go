package integration

// Replicated bring-up smoke (make repl-smoke, part of `make check`):
// one primary ships its WALs to two replica processes in quorum mode,
// the primary is killed without warning, one replica is promoted over
// the HTTP API and must serve both reads and writes — feeding the
// surviving replica — and css-audit -compare must show the deposed
// primary's audit chain as an intact prefix of the promoted one's.

import (
	"bytes"
	"context"
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/event"
	"repro/internal/index"
	"repro/internal/schema"
	"repro/internal/transport"
)

// startController launches a css-controller process with the given
// flags, returning the command and its combined log.
func startController(t *testing.T, args ...string) (*exec.Cmd, *lockedBuffer) {
	t.Helper()
	cmd := exec.Command(bin("css-controller"), args...)
	var buf lockedBuffer
	cmd.Stdout, cmd.Stderr = &buf, &buf
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		cmd.Process.Kill()
		cmd.Wait()
	})
	return cmd, &buf
}

// waitCaughtUp polls the primary's replication status until every
// follower is connected with zero lag.
func waitCaughtUp(t *testing.T, c *transport.Client, followers int) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for {
		st, err := c.ReplStatus(context.Background())
		if err == nil && len(st.Followers) == followers {
			caught := true
			for _, f := range st.Followers {
				if !f.Connected || f.LagBytes != 0 {
					caught = false
					break
				}
			}
			if caught {
				return
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("followers never caught up (last status %+v, err %v)", st, err)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// TestReplSmoke is the make repl-smoke entry point: the 1-primary /
// 2-replica failover drill against the built binaries.
func TestReplSmoke(t *testing.T) {
	if os.Getenv("REPL_SMOKE") == "" {
		t.Skip("set REPL_SMOKE=1 (or run `make repl-smoke`)")
	}
	root := t.TempDir()
	dirP := filepath.Join(root, "primary")
	dirR1 := filepath.Join(root, "replica1")
	dirR2 := filepath.Join(root, "replica2")

	// All three nodes must share one master key: the replicas serve
	// pseudonym-keyed inquiries over the replicated index.
	key := make([]byte, 32)
	if _, err := rand.Read(key); err != nil {
		t.Fatal(err)
	}
	keyFile := filepath.Join(root, "master.hex")
	if err := os.WriteFile(keyFile, []byte(hex.EncodeToString(key)+"\n"), 0o600); err != nil {
		t.Fatal(err)
	}

	pAddr, r1Addr, r2Addr := freePort(t), freePort(t), freePort(t)
	rl1, rl2 := freePort(t), freePort(t)
	pURL, r1URL, r2URL := "http://"+pAddr, "http://"+r1Addr, "http://"+r2Addr

	// Replicas first, so the primary's shipper finds their followers
	// listening. Replica 1 carries -replicate-to for the other replica:
	// shipping starts only at its promotion.
	_, r1Log := startController(t,
		"-addr", r1Addr, "-data", dirR1, "-key-file", keyFile,
		"-role", "replica", "-repl-listen", rl1,
		"-replicate-to", rl2, "-quorum")
	_, r2Log := startController(t,
		"-addr", r2Addr, "-data", dirR2, "-key-file", keyFile,
		"-role", "replica", "-repl-listen", rl2)
	waitReady(t, r1URL)
	waitReady(t, r2URL)

	pCmd, pLog := startController(t,
		"-addr", pAddr, "-data", dirP, "-key-file", keyFile, "-scenario",
		"-role", "primary", "-replicate-to", rl1+","+rl2, "-quorum")
	waitReady(t, pURL)

	ctx := context.Background()
	pc := transport.NewClient(pURL, nil)
	r1c := transport.NewClient(r1URL, nil)
	r2c := transport.NewClient(r2URL, nil)

	// The scenario provisioning must replicate before the storm of
	// asserts: wait for both followers to drain the catch-up stream.
	waitCaughtUp(t, pc, 2)
	if st, err := pc.ReplStatus(ctx); err != nil || st.Role != "primary" || st.Quorum != true {
		t.Fatalf("primary replstatus = %+v, %v", st, err)
	}
	if st, err := r1c.ReplStatus(ctx); err != nil || st.Role != "replica" || st.Epoch != 1 {
		t.Fatalf("replica replstatus = %+v, %v; want replica at epoch 1", st, err)
	}

	// Quorum-acknowledged publishes through the primary.
	persons := make([]string, 5)
	base := time.Date(2010, 5, 30, 9, 0, 0, 0, time.UTC)
	for i := range persons {
		persons[i] = fmt.Sprintf("REPL-%03d", i)
		if _, err := pc.Publish(ctx, &event.Notification{
			Producer: "hospital-s-maria", SourceID: event.SourceID(fmt.Sprintf("repl-src-%03d", i)),
			Class: schema.ClassBloodTest, PersonID: persons[i], Summary: "blood test",
			OccurredAt: base.Add(time.Duration(i) * time.Minute),
		}); err != nil {
			t.Fatalf("publish %s: %v\nprimary log:\n%s", persons[i], err, pLog.String())
		}
	}
	waitCaughtUp(t, pc, 2)

	// Replicas answer index inquiries locally; writes are refused with
	// the not-primary redirect.
	for name, rc := range map[string]*transport.Client{"replica1": r1c, "replica2": r2c} {
		notes, err := rc.InquireIndex(ctx, "family-doctor", index.Inquiry{Class: schema.ClassBloodTest})
		if err != nil {
			t.Fatalf("%s inquiry: %v", name, err)
		}
		if len(notes) != len(persons) {
			t.Fatalf("%s serves %d events, want %d", name, len(notes), len(persons))
		}
	}
	if _, err := r1c.Publish(ctx, &event.Notification{
		Producer: "hospital-s-maria", SourceID: "repl-src-refused",
		Class: schema.ClassBloodTest, PersonID: "REPL-REFUSED", OccurredAt: base,
	}); err == nil {
		t.Fatal("replica accepted a write")
	}

	// Kill the primary without warning and promote replica 1 at the
	// next epoch over the HTTP API.
	pCmd.Process.Kill()
	pCmd.Wait()
	st, err := r1c.Promote(ctx, 2)
	if err != nil {
		t.Fatalf("promote: %v\nreplica1 log:\n%s", err, r1Log.String())
	}
	if st.Role != "primary" || st.Epoch != 2 {
		t.Fatalf("promoted status = %+v, want primary at epoch 2", st)
	}

	// The promoted node serves reads and writes, and feeds the
	// surviving replica from its own WALs.
	notes, err := r1c.InquireIndex(ctx, "family-doctor", index.Inquiry{Class: schema.ClassBloodTest})
	if err != nil || len(notes) != len(persons) {
		t.Fatalf("promoted inquiry = %d events, %v; want %d", len(notes), err, len(persons))
	}
	if _, err := r1c.Publish(ctx, &event.Notification{
		Producer: "hospital-s-maria", SourceID: "repl-src-post",
		Class: schema.ClassBloodTest, PersonID: "REPL-POST", Summary: "after failover",
		OccurredAt: base.Add(time.Hour),
	}); err != nil {
		t.Fatalf("post-failover publish: %v\nreplica1 log:\n%s", err, r1Log.String())
	}
	deadline := time.Now().Add(15 * time.Second)
	for {
		got, err := r2c.InquireIndex(ctx, "family-doctor", index.Inquiry{PersonID: "REPL-POST"})
		if err == nil && len(got) == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("post-failover event never reached the surviving replica (err %v)\nreplica2 log:\n%s",
				err, r2Log.String())
		}
		time.Sleep(50 * time.Millisecond)
	}
	if st, err := r2c.ReplStatus(ctx); err != nil || st.Role != "replica" {
		t.Fatalf("survivor replstatus = %+v, %v", st, err)
	}

	// The guarantor's post-mortem: the deposed primary's audit chain
	// must verify and be an intact prefix of the promoted node's —
	// anything else is a fork.
	var out, errOut bytes.Buffer
	audit := exec.Command(bin("css-audit"), "-data", dirP, "-compare", dirR1)
	audit.Stdout, audit.Stderr = &out, &errOut
	if err := audit.Run(); err != nil {
		t.Fatalf("css-audit -compare: %v\n%s%s", err, out.String(), errOut.String())
	}
	if !strings.Contains(out.String(), "chains agree through seq") &&
		!strings.Contains(out.String(), "chains identical") {
		t.Fatalf("css-audit -compare output: %s", out.String())
	}
	t.Logf("css-audit -compare:\n%s", out.String())
}
