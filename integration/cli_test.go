// Package integration drives the built command-line binaries through a
// full deployment scenario: an authenticated controller, token minting,
// policy elicitation, publication via the HTTP API, consumer inquiry and
// detail retrieval, and the audit tool over the persisted trail.
package integration

import (
	"bytes"
	"context"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/event"
	"repro/internal/schema"
	"repro/internal/transport"
	"repro/internal/xacml"
)

// binaries built once per test run.
var binDir string

func TestMain(m *testing.M) {
	dir, err := os.MkdirTemp("", "css-int-*")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	binDir = dir
	build := exec.Command("go", "build", "-o", binDir+string(os.PathSeparator), "./...")
	build.Dir = ".."
	if out, err := build.CombinedOutput(); err != nil {
		fmt.Fprintf(os.Stderr, "build: %v\n%s", err, out)
		os.RemoveAll(dir)
		os.Exit(1)
	}
	code := m.Run()
	os.RemoveAll(dir)
	os.Exit(code)
}

func bin(name string) string { return filepath.Join(binDir, name) }

// freePort grabs an ephemeral port.
func freePort(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

func waitReady(t *testing.T, url string) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(url + "/ws/catalog")
		if err == nil {
			resp.Body.Close()
			return
		}
		time.Sleep(50 * time.Millisecond)
	}
	t.Fatal("controller did not come up")
}

func run(t *testing.T, name string, args ...string) string {
	t.Helper()
	var stdout, stderr bytes.Buffer
	cmd := exec.Command(bin(name), args...)
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		t.Fatalf("%s %v: %v\nstdout: %s\nstderr: %s", name, args, err, stdout.String(), stderr.String())
	}
	return stdout.String()
}

func TestCLIScenario(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	dataDir := t.TempDir()
	addr := freePort(t)
	url := "http://" + addr
	authKey := filepath.Join(dataDir, "auth.hex")

	ctrl := exec.Command(bin("css-controller"),
		"-addr", addr, "-data", dataDir,
		"-key-file", filepath.Join(dataDir, "master.hex"),
		"-auth-key-file", authKey, "-scenario")
	var ctrlLog bytes.Buffer
	ctrl.Stdout, ctrl.Stderr = &ctrlLog, &ctrlLog
	if err := ctrl.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		ctrl.Process.Kill()
		ctrl.Wait()
	}()
	waitReady(t, url)

	// Mint tokens for the actors.
	doctorTok := strings.TrimSpace(run(t, "css-token", "-key-file", authKey,
		"issue", "-actor", "family-doctor"))
	hospitalTok := strings.TrimSpace(run(t, "css-token", "-key-file", authKey,
		"issue", "-actor", "hospital-s-maria"))

	// Inspect round-trips.
	inspect := run(t, "css-token", "-key-file", authKey, "inspect", "-token", doctorTok)
	if !strings.Contains(inspect, "family-doctor") {
		t.Fatalf("inspect: %s", inspect)
	}

	// The catalog is browsable with a token.
	catalog := run(t, "css-consumer", "-controller", url, "-token", doctorTok,
		"-actor", "family-doctor", "catalog")
	if !strings.Contains(catalog, "hospital.blood-test") {
		t.Fatalf("catalog: %s", catalog)
	}

	// Publish an event through the client SDK as the hospital (persist at
	// an in-process gateway attached via the scenario provisioning).
	client := transport.NewClient(url, nil).WithToken(hospitalTok)
	gid, err := client.Publish(context.Background(), &event.Notification{
		SourceID: "cli-src-1", Class: schema.ClassBloodTest, PersonID: "PRS-0001",
		Summary: "blood test", OccurredAt: time.Date(2010, 6, 1, 9, 0, 0, 0, time.UTC),
		Producer: "hospital-s-maria",
	})
	if err != nil {
		t.Fatalf("publish: %v", err)
	}

	// Inquire as the doctor via the CLI.
	inquiry := run(t, "css-consumer", "-controller", url, "-token", doctorTok,
		"-actor", "family-doctor", "inquire", "-person", "PRS-0001")
	if !strings.Contains(inquiry, string(gid)) {
		t.Fatalf("inquire: %s", inquiry)
	}

	// Elicit an extra policy via css-policyctl (XACML preview + define).
	preview := run(t, "css-policyctl", "-controller", url, "-token", hospitalTok,
		"xacml", "-producer", "hospital-s-maria", "-class", "hospital.blood-test",
		"-fields", "patient-id,glucose", "-consumers", "research-institute",
		"-purposes", "statistical-analysis")
	if !strings.Contains(preview, "urn:css:obligation:include-fields") {
		t.Fatalf("xacml preview: %s", preview)
	}
	defined := run(t, "css-policyctl", "-controller", url, "-token", hospitalTok,
		"define", "-producer", "hospital-s-maria", "-class", "hospital.blood-test",
		"-fields", "patient-id,glucose", "-consumers", "research-institute",
		"-purposes", "statistical-analysis", "-name", "research access")
	if !strings.Contains(defined, "stored pol-") {
		t.Fatalf("define: %s", defined)
	}

	// Export the corpus as a PolicySet.
	export := run(t, "css-policyctl", "-controller", url, "-token", hospitalTok,
		"export", "-producer", "hospital-s-maria")
	if !strings.Contains(export, "PolicySetId=\"policy-set:hospital-s-maria\"") {
		t.Fatalf("export: %s", export)
	}
	set := export[strings.Index(export, "<PolicySet"):]
	if _, err := xacml.DecodeSet([]byte(set)); err != nil {
		t.Fatalf("exported set does not parse: %v", err)
	}

	// The scenario gateway holds no detail for our CLI event, so details
	// via the CLI must fail cleanly with a not-found (the policy matched).
	var detailsOut bytes.Buffer
	detailsCmd := exec.Command(bin("css-consumer"), "-controller", url, "-token", doctorTok,
		"-actor", "family-doctor", "details", "-event", string(gid),
		"-class", "hospital.blood-test", "-purpose", "healthcare-treatment")
	detailsCmd.Stdout, detailsCmd.Stderr = &detailsOut, &detailsOut
	if err := detailsCmd.Run(); err == nil {
		t.Fatalf("details unexpectedly succeeded: %s", detailsOut.String())
	}
	if !strings.Contains(detailsOut.String(), "not found") {
		t.Fatalf("details error = %s", detailsOut.String())
	}

	// Stop the controller and audit the persisted trail offline.
	ctrl.Process.Kill()
	ctrl.Wait()
	auditOut := run(t, "css-audit", "-data", dataDir, "-kind", "publish")
	if !strings.Contains(auditOut, "audit chain verified") ||
		!strings.Contains(auditOut, "hospital-s-maria") {
		t.Fatalf("audit: %s", auditOut)
	}
}
