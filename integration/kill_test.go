package integration

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os/exec"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"repro/internal/event"
	"repro/internal/index"
	"repro/internal/schema"
	"repro/internal/transport"
)

// TestKillUnderLoad is the graceful-drain acceptance scenario: a
// controller with durable state takes a SIGTERM while producers hammer
// it. The process must exit cleanly (code 0) within its -drain-timeout,
// every publish acknowledged before or during the drain must survive a
// restart exactly once, and the overload metrics must be visible on
// /metrics while the storm runs.
func TestKillUnderLoad(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	dataDir := t.TempDir()
	addr := freePort(t)
	url := "http://" + addr

	const drainTimeout = 5 * time.Second
	start := func(listen string) (*exec.Cmd, *bytes.Buffer) {
		cmd := exec.Command(bin("css-controller"),
			"-addr", listen, "-data", dataDir,
			"-key-file", dataDir+"/master.hex",
			"-scenario",
			"-drain-timeout", drainTimeout.String(),
			"-queue-cap", "64",
			"-actor-rps", "-1") // the storm is concurrency-shaped, not per-actor
		var log bytes.Buffer
		cmd.Stdout, cmd.Stderr = &log, &log
		if err := cmd.Start(); err != nil {
			t.Fatal(err)
		}
		return cmd, &log
	}
	ctrl, ctrlLog := start(addr)
	killed := false
	defer func() {
		if !killed {
			ctrl.Process.Kill()
			ctrl.Wait()
		}
	}()
	waitReady(t, url)

	// Load: four producers publish distinct sources as fast as the server
	// admits them, recording every acknowledged global id.
	const person = "PRS-KILL"
	var mu sync.Mutex
	var acked []event.GlobalID
	stop := make(chan struct{})
	var wg sync.WaitGroup
	client := transport.NewClient(url, &http.Client{Timeout: 5 * time.Second})
	for p := 0; p < 4; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			fails := 0
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				gid, err := client.Publish(context.Background(), &event.Notification{
					SourceID: event.SourceID(fmt.Sprintf("kill-%d-%05d", p, i)),
					Class:    schema.ClassBloodTest, PersonID: person,
					Summary: "blood test", Producer: "hospital-s-maria",
					OccurredAt: time.Date(2010, 6, 1, 9, 0, 0, 0, time.UTC),
				})
				switch {
				case err == nil:
					mu.Lock()
					acked = append(acked, gid)
					mu.Unlock()
					fails = 0
				case errors.Is(err, transport.ErrOverloaded):
					// Shed fail-fast; the server is alive. Keep storming.
					fails = 0
				default:
					// Connection errors once the listener is down.
					fails++
					if fails >= 3 {
						return
					}
					time.Sleep(20 * time.Millisecond)
				}
			}
		}(p)
	}

	// Give the storm time to run, then check the overload metrics are
	// exported while under load.
	time.Sleep(300 * time.Millisecond)
	metrics := getBody(t, url+"/metrics")
	for _, name := range []string{"css_overload_admitted_total", "css_overload_inflight"} {
		if !strings.Contains(metrics, name) {
			t.Errorf("/metrics under load lacks %s", name)
		}
	}

	// SIGTERM mid-storm: the process must drain and exit 0 on its own.
	if err := ctrl.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	killed = true
	exited := make(chan error, 1)
	go func() { exited <- ctrl.Wait() }()
	select {
	case err := <-exited:
		if err != nil {
			t.Fatalf("controller exit after SIGTERM: %v\nlog:\n%s", err, ctrlLog.String())
		}
	case <-time.After(drainTimeout + 10*time.Second):
		ctrl.Process.Kill()
		t.Fatalf("controller did not exit within the drain budget\nlog:\n%s", ctrlLog.String())
	}
	close(stop)
	wg.Wait()
	mu.Lock()
	ackedCount := len(acked)
	mu.Unlock()
	if ackedCount == 0 {
		t.Fatal("no publish was acknowledged before the kill; the storm never ran")
	}
	if !strings.Contains(ctrlLog.String(), "drain complete") {
		t.Fatalf("controller log lacks the drain sequence:\n%s", ctrlLog.String())
	}

	// Restart on the same data directory: every acknowledged publish must
	// have survived, exactly once.
	addr2 := freePort(t)
	url2 := "http://" + addr2
	ctrl2, ctrl2Log := start(addr2)
	defer func() {
		ctrl2.Process.Kill()
		ctrl2.Wait()
	}()
	waitReady(t, url2)
	client2 := transport.NewClient(url2, nil)
	notes, err := client2.InquireIndex(context.Background(), "family-doctor",
		index.Inquiry{PersonID: person, Limit: 10 * (ackedCount + 8)})
	if err != nil {
		t.Fatalf("inquire after restart: %v\nlog:\n%s", err, ctrl2Log.String())
	}
	seen := map[event.GlobalID]int{}
	for _, n := range notes {
		seen[n.ID]++
	}
	mu.Lock()
	defer mu.Unlock()
	for _, gid := range acked {
		if seen[gid] != 1 {
			t.Errorf("acknowledged publish %s survived %d times, want exactly once", gid, seen[gid])
		}
	}
	// A publish racing the shutdown may have been indexed without its
	// response reaching the producer (at most one per producer goroutine);
	// anything beyond that bound means sheds did work or entries doubled.
	if extra := len(notes) - ackedCount; extra < 0 || extra > 4 {
		t.Errorf("restart holds %d notifications for %d acknowledged publishes", len(notes), ackedCount)
	}
}

// getBody fetches a URL and returns its body as a string.
func getBody(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}
