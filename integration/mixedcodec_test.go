package integration

import (
	"context"
	"os"
	"os/exec"
	"strings"
	"testing"
	"time"

	"repro/internal/event"
	"repro/internal/schema"
	"repro/internal/transport"
)

// TestTraceSmokeMixedCodec proves codec negotiation is invisible to
// consumers: an XML subscriber and a binary-frame subscriber on the
// same class, each a separate css-consumer process, receive the SAME
// notification — byte-identical as printed — from one publication that
// itself arrives at the controller in the binary framing. The name
// shares the TestTraceSmoke prefix so `make trace-smoke` runs it.
func TestTraceSmokeMixedCodec(t *testing.T) {
	if os.Getenv("TRACE_SMOKE") == "" {
		t.Skip("set TRACE_SMOKE=1 to run")
	}
	dataDir := t.TempDir()
	addr := freePort(t)
	url := "http://" + addr

	ctrl := startProcess(t, "css-controller", "-addr", addr, "-data", dataDir, "-scenario")
	_ = ctrl
	waitReady(t, url)

	// Two consumer processes subscribe to the same class, one per codec.
	consumers := map[string]*lockedBuffer{}
	for _, codec := range []string{"xml", "binary"} {
		out := startProcess(t, "css-consumer",
			"-controller", url, "-actor", "family-doctor", "-codec", codec,
			"subscribe", "-class", "hospital.blood-test")
		consumers[codec] = out
	}
	for codec, out := range consumers {
		deadline := time.Now().Add(10 * time.Second)
		for !strings.Contains(out.String(), "subscribed as") {
			if time.Now().After(deadline) {
				t.Fatalf("%s consumer did not subscribe:\n%s", codec, out.String())
			}
			time.Sleep(50 * time.Millisecond)
		}
	}

	// Publish once, over the binary framing, as the scenario's hospital.
	pub := transport.NewClient(url, nil, transport.WithCodec(event.Binary))
	gid, err := pub.Publish(context.Background(), &event.Notification{
		SourceID: "mixed-src-1", Class: schema.ClassBloodTest, PersonID: "PRS-MIXED",
		Summary:    "blood test completed",
		OccurredAt: time.Date(2010, 6, 1, 9, 0, 0, 0, time.UTC),
		Producer:   "hospital-s-maria",
	})
	if err != nil {
		t.Fatalf("binary publish: %v", err)
	}
	if gid == "" {
		t.Fatal("binary publish returned empty event id")
	}

	// Both consumers print the delivery in the same format; the lines
	// must match exactly (class, person, producer, trace, summary).
	lines := map[string]string{}
	for codec, out := range consumers {
		deadline := time.Now().Add(10 * time.Second)
		for {
			if l := deliveryLine(out.String()); l != "" {
				lines[codec] = l
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("%s consumer never saw the notification:\n%s", codec, out.String())
			}
			time.Sleep(50 * time.Millisecond)
		}
	}
	if lines["xml"] != lines["binary"] {
		t.Fatalf("mixed-codec deliveries diverge:\n xml:    %s\n binary: %s",
			lines["xml"], lines["binary"])
	}
	if !strings.Contains(lines["xml"], "person=PRS-MIXED") ||
		!strings.Contains(lines["xml"], "from=hospital-s-maria") {
		t.Fatalf("delivery line missing expected fields: %s", lines["xml"])
	}
}

// startProcess launches a built binary, captures its combined output,
// and guarantees teardown.
func startProcess(t *testing.T, name string, args ...string) *lockedBuffer {
	t.Helper()
	cmd := exec.Command(bin(name), args...)
	var out lockedBuffer
	cmd.Stdout, cmd.Stderr = &out, &out
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		cmd.Process.Kill()
		cmd.Wait()
	})
	return &out
}

// deliveryLine extracts the first notification-delivery line ("[...] ...
// person=...") from a consumer's output.
func deliveryLine(s string) string {
	for _, l := range strings.Split(s, "\n") {
		if strings.HasPrefix(l, "[") && strings.Contains(l, "person=") {
			return l
		}
	}
	return ""
}
