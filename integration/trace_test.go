package integration

import (
	"bytes"
	"context"
	"encoding/xml"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"repro/internal/event"
	"repro/internal/schema"
	"repro/internal/telemetry"
	"repro/internal/transport"
)

// lockedBuffer lets the test read a live process's output safely.
type lockedBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *lockedBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *lockedBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

func waitURL(t *testing.T, url string) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(url)
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return
			}
		}
		time.Sleep(50 * time.Millisecond)
	}
	t.Fatalf("%s did not come up", url)
}

func httpGetBody(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	return string(data)
}

// TestDistributedTraceAcrossThreeProcesses drives one
// publish→notify→detail flow across a css-controller, a css-gateway and
// css-consumer processes and asserts the whole flow shares ONE trace
// whose spans form a parent-linked tree covering every pipeline stage —
// then reconstructs it with the css-trace CLI.
func TestDistributedTraceAcrossThreeProcesses(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	dataDir := t.TempDir()
	gwDir := t.TempDir()
	ctrlSpans := filepath.Join(dataDir, "ctrl-spans.jsonl")
	gwSpans := filepath.Join(gwDir, "gw-spans.jsonl")

	ctrlAddr, gwAddr := freePort(t), freePort(t)
	ctrlURL, gwURL := "http://"+ctrlAddr, "http://"+gwAddr

	// Process 1: the data controller, provisioned with the demo scenario
	// but pointed at the *remote* gateway for the hospital producer.
	ctrl := exec.Command(bin("css-controller"),
		"-addr", ctrlAddr, "-data", dataDir, "-scenario",
		"-gateway", "hospital-s-maria="+gwURL,
		"-span-file", ctrlSpans, "-span-sample", "1.0")
	var ctrlLog lockedBuffer
	ctrl.Stdout, ctrl.Stderr = &ctrlLog, &ctrlLog
	if err := ctrl.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		ctrl.Process.Kill()
		ctrl.Wait()
	}()
	waitReady(t, ctrlURL)

	// Process 2: the hospital's cooperation gateway, relaying publishes
	// to the controller.
	gw := exec.Command(bin("css-gateway"),
		"-addr", gwAddr, "-producer", "hospital-s-maria",
		"-data", gwDir, "-controller", ctrlURL,
		"-span-file", gwSpans, "-span-sample", "1.0")
	var gwLog lockedBuffer
	gw.Stdout, gw.Stderr = &gwLog, &gwLog
	if err := gw.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		gw.Process.Kill()
		gw.Wait()
	}()
	waitURL(t, gwURL+"/healthz")

	// Process 3: the consumer, subscribed to blood tests through a live
	// callback endpoint.
	consumer := exec.Command(bin("css-consumer"),
		"-controller", ctrlURL, "-actor", "family-doctor",
		"subscribe", "-class", "hospital.blood-test")
	var consumerOut lockedBuffer
	consumer.Stdout, consumer.Stderr = &consumerOut, &consumerOut
	if err := consumer.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		consumer.Process.Kill()
		consumer.Wait()
	}()
	deadline := time.Now().Add(10 * time.Second)
	for !strings.Contains(consumerOut.String(), "subscribed as") {
		if time.Now().After(deadline) {
			t.Fatalf("consumer did not subscribe:\n%s", consumerOut.String())
		}
		time.Sleep(50 * time.Millisecond)
	}

	// The source system persists the full detail at its gateway, then
	// publishes the notification through the gateway's relay. The trace
	// is minted on this first hop and must survive every later one.
	rg := transport.NewRemoteGateway(gwURL, nil)
	detail := event.NewDetail(schema.ClassBloodTest, "trace-src-1", "hospital-s-maria").
		Set("patient-id", "PRS-TRACE").
		Set("exam-date", "2010-05-30").
		Set("hemoglobin", "13.5").
		Set("aids-test", "negative").
		Set("lab-notes", "routine")
	if err := rg.Persist(context.Background(), detail); err != nil {
		t.Fatalf("persist: %v", err)
	}

	body, err := event.EncodeNotification(&event.Notification{
		SourceID: "trace-src-1", Class: schema.ClassBloodTest, PersonID: "PRS-TRACE",
		Summary: "blood test completed", OccurredAt: time.Date(2010, 6, 1, 9, 0, 0, 0, time.UTC),
		Producer: "hospital-s-maria",
	})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(gwURL+"/gw/publish", "application/xml", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("relay publish: %v", err)
	}
	respBody, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("relay publish: %s\n%s", resp.Status, respBody)
	}
	trace := resp.Header.Get(telemetry.TraceHeader)
	if len(trace) != 16 {
		t.Fatalf("relay response trace = %q, want 16 hex chars", trace)
	}
	var pub struct {
		XMLName xml.Name `xml:"publishResponse"`
		EventID string   `xml:"eventId"`
	}
	if err := xml.Unmarshal(respBody, &pub); err != nil || pub.EventID == "" {
		t.Fatalf("relay response %q: %v", respBody, err)
	}

	// The notification reaches the consumer carrying the same trace.
	deadline = time.Now().Add(10 * time.Second)
	for !strings.Contains(consumerOut.String(), "trace="+trace) {
		if time.Now().After(deadline) {
			t.Fatalf("delivery with trace %s never arrived:\n%s", trace, consumerOut.String())
		}
		time.Sleep(50 * time.Millisecond)
	}

	// Phase two: the consumer requests details, quoting the notification's
	// trace, which sends the flow back through the controller's PDP to
	// the gateway's filtered retrieval.
	details := run(t, "css-consumer", "-controller", ctrlURL, "-actor", "family-doctor",
		"details", "-event", pub.EventID, "-class", "hospital.blood-test",
		"-purpose", "healthcare-treatment", "-trace", trace)
	if !strings.Contains(details, "hemoglobin") {
		t.Fatalf("details: %s", details)
	}
	if strings.Contains(details, "aids-test") {
		t.Fatalf("details leaked a filtered field: %s", details)
	}

	// Merge both processes' span rings and assert the flow is one
	// parent-linked tree covering the whole pipeline.
	merged := httpGetBody(t, ctrlURL+"/debug/spans?trace="+trace) +
		httpGetBody(t, gwURL+"/debug/spans?trace="+trace)
	mergedPath := filepath.Join(dataDir, "merged-spans.jsonl")
	if err := os.WriteFile(mergedPath, []byte(merged), 0o644); err != nil {
		t.Fatal(err)
	}
	recs, err := telemetry.DecodeSpans(strings.NewReader(merged))
	if err != nil {
		t.Fatal(err)
	}
	ids := map[string]bool{}
	stages := map[string]bool{}
	procs := map[string]bool{}
	for _, r := range recs {
		if r.Trace != trace {
			t.Fatalf("span %s/%s leaked into trace filter", r.Trace, r.Stage)
		}
		ids[r.ID] = true
		stages[r.Stage] = true
		procs[r.Proc] = true
	}
	for _, want := range []string{
		"publish", "index.put", "bus.publish", "bus.deliver",
		"detail.request", "consent.check", "pdp.decide", "gateway.fetch",
	} {
		if !stages[want] {
			t.Fatalf("trace %s missing stage %q (has %v)", trace, want, keys(stages))
		}
	}
	if !procs["controller"] || !procs["gateway"] {
		t.Fatalf("trace spans procs = %v, want controller+gateway", keys(procs))
	}
	orphans := 0
	for _, r := range recs {
		if r.Parent != "" && !ids[r.Parent] {
			orphans++
			t.Errorf("orphan span %s (parent %s missing)", r.Stage, r.Parent)
		}
	}
	if orphans > 0 {
		t.Fatalf("%d orphan spans in trace %s", orphans, trace)
	}

	// The css-trace CLI reconstructs the same waterfall (exit 0 = no
	// orphans) and aggregates slowest stages.
	waterfall := run(t, "css-trace", "-trace", trace, mergedPath)
	for _, want := range []string{"publish", "gateway.fetch", "bus.deliver"} {
		if !strings.Contains(waterfall, want) {
			t.Fatalf("css-trace waterfall missing %q:\n%s", want, waterfall)
		}
	}
	if strings.Contains(waterfall, "ORPHAN") {
		t.Fatalf("css-trace reported orphans:\n%s", waterfall)
	}
	agg := run(t, "css-trace", "-stages", mergedPath)
	if !strings.Contains(agg, "pdp.decide") {
		t.Fatalf("css-trace -stages: %s", agg)
	}
	scrape := run(t, "css-trace", "-trace", trace, ctrlURL, gwURL)
	if !strings.Contains(scrape, "detail.request") {
		t.Fatalf("css-trace live scrape: %s", scrape)
	}

	// The same histograms carry the trace as exemplar, and the SLO
	// report derives burn rates from them.
	metrics := httpGetBody(t, ctrlURL+"/metrics")
	if !strings.Contains(metrics, `trace_id="`) {
		t.Fatal("/metrics has no exemplars")
	}
	sloBody := httpGetBody(t, ctrlURL+"/slo")
	for _, want := range []string{`"publish"`, `"detail-permit"`, `"burn_rate"`} {
		if !strings.Contains(sloBody, want) {
			t.Fatalf("/slo missing %s: %s", want, sloBody)
		}
	}

	// Graceful shutdown flushes the durable span export; the flow is
	// reconstructable offline, and css-audit joins audit records with
	// span timings.
	ctrl.Process.Signal(syscall.SIGTERM)
	ctrl.Wait()
	f, err := os.Open(ctrlSpans)
	if err != nil {
		t.Fatalf("span export file: %v", err)
	}
	exported, err := telemetry.DecodeSpans(f)
	f.Close()
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, r := range exported {
		if r.Trace == trace && r.Stage == "publish" {
			found = true
		}
	}
	if !found {
		t.Fatalf("exported span file has no publish span for trace %s (%d records)", trace, len(exported))
	}
	auditOut := run(t, "css-audit", "-data", dataDir, "-trace", trace, "-spans", ctrlSpans)
	if !strings.Contains(auditOut, "stage timings for trace "+trace) ||
		!strings.Contains(auditOut, "detail.request") {
		t.Fatalf("css-audit -spans: %s", auditOut)
	}
}

func keys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}

// TestTraceSmoke is the make trace-smoke entry point: it reuses the
// three-process flow assertions above under a recognizable name.
func TestTraceSmoke(t *testing.T) {
	if os.Getenv("TRACE_SMOKE") == "" {
		t.Skip("set TRACE_SMOKE=1 to run (alias of TestDistributedTraceAcrossThreeProcesses)")
	}
	TestDistributedTraceAcrossThreeProcesses(t)
}
