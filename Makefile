# Development entry points for the CSS reproduction.

GO ?= go
BENCH_LABEL ?= local

.PHONY: all check build vet test race cover bench bench-publish bench-details bench-smoke bench-gate bench-baseline bench-sharded bench-tables bench-quick chaos chaos-smoke overload-smoke shard-smoke repl-smoke trace-smoke lint-traceid lint-hotpath examples fuzz clean

all: check

# The default gate: compile, vet+gofmt+trace-ID+hot-path lints, unit
# tests, the race detector over the whole tree, a short fault-injected
# smoke, an overload-storm smoke, the distributed-tracing smoke (one
# flow across three processes must yield one parent-linked span tree;
# also runs the mixed-codec fan-out check), a 1-iteration smoke of the
# publish-path benchmarks (catches benchmarks broken by refactors
# without the cost of a measured run), the allocation-regression
# gate over the E1 publish benchmarks, the 3-shard cluster smoke
# (cross-shard publish/inquire plus one live split), and the
# replication failover smoke (1 primary + 2 replica processes, kill
# the primary, the promoted replica serves).
check: build vet lint-traceid lint-hotpath test race chaos-smoke overload-smoke trace-smoke shard-smoke repl-smoke bench-smoke bench-gate

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...
	@test -z "$$(gofmt -l .)" || (gofmt -l . && exit 1)

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

cover:
	$(GO) test -cover ./...

# Measured micro-benchmark runs, 5 samples each, appended as labeled
# runs to the JSON logs: `make bench BENCH_LABEL=after-my-change`.
# Publish path (E1* fan-out/routing, E5 index, E6 audit, E14 WAL) goes
# to BENCH_publish.json; the details read path (E2 end-to-end, ED_*
# repeated/rotating/churn request shapes) goes to BENCH_details.json.
bench: bench-publish bench-details

bench-publish:
	$(GO) test -run '^$$' -bench 'E1|E5|E6' -benchmem -count 5 . > bench.out || (cat bench.out; rm -f bench.out; exit 1)
	@cat bench.out
	$(GO) run ./cmd/css-benchlog -label "$(BENCH_LABEL)" -out BENCH_publish.json < bench.out
	@rm -f bench.out

bench-details:
	$(GO) test -run '^$$' -bench 'E2_|ED_' -benchmem -count 5 . > bench.out || (cat bench.out; rm -f bench.out; exit 1)
	@cat bench.out
	$(GO) run ./cmd/css-benchlog -label "$(BENCH_LABEL)" -out BENCH_details.json < bench.out
	@rm -f bench.out

# One iteration of both suites, as a compile-and-run smoke.
bench-smoke:
	$(GO) test -run '^$$' -bench 'E1|E2_|E5|E6|ED_' -benchtime 1x -benchmem . > /dev/null

# Allocation-regression gate: allocs/op of the E1 publish benchmarks
# must stay within 5% of the committed BENCH_baseline.json. Allocation
# counts are deterministic for a fixed code path (unlike ns/op), so a
# short fixed-iteration run gates reliably on any machine.
bench-gate:
	$(GO) test -run '^$$' -bench 'E1_PublishRoute' -benchtime 2000x -benchmem . > benchgate.out \
		|| (cat benchgate.out; rm -f benchgate.out; exit 1)
	$(GO) run ./cmd/css-benchgate -baseline BENCH_baseline.json < benchgate.out
	@rm -f benchgate.out

# Rewrite the allocation baseline from a fresh run (after an intentional
# change; the diff is reviewed like any other).
bench-baseline:
	$(GO) test -run '^$$' -bench 'E1_PublishRoute' -benchtime 2000x -benchmem . > benchgate.out \
		|| (cat benchgate.out; rm -f benchgate.out; exit 1)
	$(GO) run ./cmd/css-benchgate -baseline BENCH_baseline.json -update < benchgate.out
	@rm -f benchgate.out

# Sharded saturation run plus the same-run rate gates: the 1-shard row
# must stay within 5% of the unsharded binary saturation row (the
# sharding tax), on machines with ≥4 CPUs the 4-shard row must clear 3x
# the 1-shard row (the scale-out claim), and — also ≥4 CPUs, since the
# follower's apply+fsync work needs a core to overlap onto — async WAL
# shipping must stay within 5% of the standalone publish path (the
# replication tax), and the heartbeat-active async row must stay within
# 5% of plain async (failure detection must be free on the publish
# path; quorum mode is measured but not gated: its fsync round-trip is
# the price of durable failover, not a regression). Not part of
# `check`: a measured multi-minute run.
bench-sharded:
	$(GO) test -run '^$$' -bench 'E1_Saturation|E1_ShardedSaturation|E1_ReplicatedPublish' -benchmem . > bench.out \
		|| (cat bench.out; rm -f bench.out; exit 1)
	@cat bench.out
	$(GO) run ./cmd/css-benchgate -baseline BENCH_baseline.json -rates < bench.out
	$(GO) run ./cmd/css-benchlog -label "$(BENCH_LABEL)" -out BENCH_publish.json < bench.out
	@rm -f bench.out

# Full experiment tables (EXPERIMENTS.md reference run). ~2 minutes.
bench-tables:
	$(GO) run ./cmd/css-bench

bench-quick:
	$(GO) run ./cmd/css-bench -quick

# Fault-injected integration suite under the race detector: 20%
# connection failures on the consumer/producer hop, 10% on the
# controller→gateway hop, a scripted 5-second controller blackout, a
# 3-second asymmetric shard partition (kill-a-shard and mid-reshard),
# the overload storm stretched to 5 fixed seeds with 12 hot producers —
# plus the self-healing failover storms: kill-primary auto-election
# (exactly one winner, exactly-once on it, deposed shipper fenced,
# byte-identical rejoin) and partition-during-campaign (zero promotions
# until the partition heals). Seeds are fixed and logged (-v), so a
# failure is replayable.
chaos:
	CHAOS_BLACKOUT=5s CHAOS_PARTITION=3s CHAOS_STORM_SEEDS=1,2,3,4,5 CHAOS_STORM_N=12 \
		$(GO) test -race -count 1 -v -run 'TestChaos' ./internal/transport/

# The same harness with its default sub-second blackout — fast enough
# for the `make check` gate.
chaos-smoke:
	$(GO) test -count 1 -run 'TestChaos' ./internal/transport/

# Overload-protection smoke: the storm chaos test (admission sheds,
# bounded queues, drain-under-wedge) and the SIGTERM kill-under-load
# scenario against the built binaries, both under the race detector.
overload-smoke:
	$(GO) test -race -count 1 -run 'TestChaosOverloadStorm' ./internal/transport/
	$(GO) test -race -count 1 -run 'TestKillUnderLoad' ./integration/

# Multi-shard cluster smoke: boots a 3-shard controller cluster in one
# process, publishes across shards through the shard-routing client,
# scatter-gathers an inquiry, and performs one live split onto a cold
# fourth shard — the sharded bring-up path end to end.
shard-smoke:
	SHARD_SMOKE=1 $(GO) test -count 1 -run 'TestShardSmoke' ./integration/

# Replication failover smoke: one primary ships WALs in quorum mode to
# two replica processes running election managers; the primary is
# killed without warning and NO promote call is made — the replicas
# must auto-elect exactly one winner, which serves reads and writes
# while feeding the survivor; the deposed primary then restarts as a
# replica, rejoins the winner's fan-out, and css-audit -compare must
# show the chains converged.
repl-smoke:
	REPL_SMOKE=1 $(GO) test -count 1 -run 'TestReplSmoke' ./integration/

# Distributed-tracing smoke: a publish→notify→detail flow across
# controller, gateway and consumer processes must produce ONE trace
# whose spans form a parent-linked tree (no orphans) covering every
# pipeline stage, reconstructable by css-trace from the merged export.
trace-smoke:
	TRACE_SMOKE=1 $(GO) test -count 1 -run 'TestTraceSmoke' ./integration/

# Flow traces must be minted only at the two sanctioned flow roots
# (publish, detail-request — both in internal/core/flows.go) or inside
# the telemetry package itself. A NewTraceID call anywhere else splits
# flows into disconnected traces; reject it.
lint-traceid:
	@bad=$$(grep -rn 'telemetry\.NewTraceID(' --include='*.go' \
		internal cmd examples 2>/dev/null \
		| grep -v '_test\.go' \
		| grep -v '^internal/core/flows\.go:' \
		| grep -v '^internal/telemetry/'); \
	if [ -n "$$bad" ]; then \
		echo "trace IDs may be minted only at sanctioned flow roots:"; \
		echo "$$bad"; exit 1; \
	fi

# The publish hot path must stay free of reflection-driven formatting
# and the XML encoder: no fmt.Sprintf and no encoding/xml import in the
# files the E1 benchmarks flow through. Test files are exempt.
HOTPATH_FILES = internal/event/codec.go internal/core/flows.go internal/audit/audit.go \
	internal/index/index.go internal/idmap/idmap.go \
	$(filter-out %_test.go,$(wildcard internal/bus/*.go))
lint-hotpath:
	@bad=$$(grep -n 'fmt\.Sprintf\|"encoding/xml"' $(HOTPATH_FILES) /dev/null | grep -v '_test\.go'); \
	if [ -n "$$bad" ]; then \
		echo "hot-path files must not use fmt.Sprintf or encoding/xml:"; \
		echo "$$bad"; exit 1; \
	fi

# testing.B micro-benchmarks, one per experiment.
microbench:
	$(GO) test -bench=. -benchmem .

examples:
	@for e in quickstart homecare statistics audittrail distributed phr monitoring accountability; do \
		echo "=== $$e ==="; $(GO) run ./examples/$$e || exit 1; \
	done

# Short fuzzing pass over every fuzz target.
fuzz:
	$(GO) test -fuzz=FuzzDecodeDetail -fuzztime=15s ./internal/event/
	$(GO) test -fuzz=FuzzDecodeNotification -fuzztime=15s ./internal/event/
	$(GO) test -fuzz=FuzzBinaryNotification -fuzztime=15s ./internal/event/
	$(GO) test -fuzz=FuzzBinaryDetail -fuzztime=15s ./internal/event/
	$(GO) test -fuzz=FuzzBinaryDetailRequest -fuzztime=15s ./internal/event/
	$(GO) test -fuzz=FuzzWALReplay -fuzztime=15s ./internal/store/
	$(GO) test -fuzz=FuzzShardMapFrame -fuzztime=15s ./internal/cluster/
	$(GO) test -fuzz=FuzzDecode -fuzztime=15s ./internal/xacml/

# git clean keeps the committed seed corpus and removes only the
# crasher inputs the fuzzer writes next to it.
clean:
	$(GO) clean ./...
	git clean -qfd internal/*/testdata/ 2>/dev/null || rm -rf internal/*/testdata/fuzz
