# Development entry points for the CSS reproduction.

GO ?= go

.PHONY: all check build vet test race cover bench bench-quick examples fuzz clean

all: check

# The default gate: compile, vet+gofmt, unit tests, then the race
# detector over the whole tree.
check: build vet test race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...
	@test -z "$$(gofmt -l .)" || (gofmt -l . && exit 1)

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

cover:
	$(GO) test -cover ./...

# Full experiment tables (EXPERIMENTS.md reference run). ~2 minutes.
bench:
	$(GO) run ./cmd/css-bench

bench-quick:
	$(GO) run ./cmd/css-bench -quick

# testing.B micro-benchmarks, one per experiment.
microbench:
	$(GO) test -bench=. -benchmem .

examples:
	@for e in quickstart homecare statistics audittrail distributed phr monitoring accountability; do \
		echo "=== $$e ==="; $(GO) run ./examples/$$e || exit 1; \
	done

# Short fuzzing pass over every fuzz target.
fuzz:
	$(GO) test -fuzz=FuzzDecodeDetail -fuzztime=15s ./internal/event/
	$(GO) test -fuzz=FuzzDecodeNotification -fuzztime=15s ./internal/event/
	$(GO) test -fuzz=FuzzWALReplay -fuzztime=15s ./internal/store/
	$(GO) test -fuzz=FuzzDecode -fuzztime=15s ./internal/xacml/

clean:
	$(GO) clean ./...
	rm -rf internal/*/testdata/fuzz
