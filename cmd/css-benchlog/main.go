// Command css-benchlog converts `go test -bench` output into a JSON
// benchmark log. It reads the benchmark output on stdin, aggregates the
// samples of each benchmark (a -count N run emits N lines per name) and
// appends one labeled run to the JSON file named by -out, so the file
// accumulates comparable before/after entries across changes.
//
// Usage:
//
//	go test -run '^$' -bench 'E1|E5|E6' -benchmem -count 5 . | css-benchlog -label after -out BENCH_publish.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Bench is the aggregate of all samples of one benchmark in a run.
type Bench struct {
	Name        string  `json:"name"`
	Samples     int     `json:"samples"`
	NsPerOp     float64 `json:"nsPerOp"`    // mean over samples
	MinNsPerOp  float64 `json:"minNsPerOp"` // fastest sample
	BytesPerOp  float64 `json:"bytesPerOp,omitempty"`
	AllocsPerOp float64 `json:"allocsPerOp,omitempty"`
	// Metrics holds benchmark-reported custom units (b.ReportMetric),
	// e.g. the saturation suite's pub/s and p99-ns, averaged over
	// samples like the built-in columns.
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// Run is one labeled invocation of the benchmark suite.
type Run struct {
	Label string `json:"label"`
	Date  string `json:"date"`
	CPU   string `json:"cpu,omitempty"`
	// GoVersion and MaxProcs pin the toolchain and parallelism the run
	// was taken under — numbers from different toolchains or core
	// counts are not comparable and the file spans both.
	GoVersion string `json:"goVersion,omitempty"`
	MaxProcs  int    `json:"maxProcs,omitempty"`
	// Codec labels which wire format the run measured ("xml",
	// "binary", or "" for codec-independent suites).
	Codec string `json:"codec,omitempty"`
	// Note records methodology caveats (e.g. a rebaseline run pairing)
	// so later readers compare the right labels.
	Note       string  `json:"note,omitempty"`
	Benchmarks []Bench `json:"benchmarks"`
}

// Log is the persisted file: an append-only list of runs.
type Log struct {
	Runs []Run `json:"runs"`
}

var procSuffix = regexp.MustCompile(`-\d+$`)

func main() {
	label := flag.String("label", "local", "label recorded on this run")
	codec := flag.String("codec", "", `wire codec this run measured ("xml", "binary"; empty: codec-independent)`)
	note := flag.String("note", "", "methodology note recorded on this run")
	out := flag.String("out", "BENCH_publish.json", "JSON log file to append to")
	flag.Parse()

	run, err := parse(bufio.NewScanner(os.Stdin))
	if err != nil {
		fmt.Fprintln(os.Stderr, "css-benchlog:", err)
		os.Exit(1)
	}
	if len(run.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "css-benchlog: no benchmark lines on stdin")
		os.Exit(1)
	}
	run.Label = *label
	run.Codec = *codec
	run.Note = *note
	run.Date = time.Now().UTC().Format(time.RFC3339)
	// The environment lines of `go test -bench` output carry the
	// toolchain too, but recording it from this process keeps the field
	// present even when the caller pipes a filtered stream.
	run.GoVersion = runtime.Version()
	run.MaxProcs = runtime.GOMAXPROCS(0)

	var log Log
	if data, err := os.ReadFile(*out); err == nil {
		if err := json.Unmarshal(data, &log); err != nil {
			fmt.Fprintf(os.Stderr, "css-benchlog: %s is not a benchmark log: %v\n", *out, err)
			os.Exit(1)
		}
	}
	log.Runs = append(log.Runs, *run)
	data, err := json.MarshalIndent(&log, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "css-benchlog:", err)
		os.Exit(1)
	}
	if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "css-benchlog:", err)
		os.Exit(1)
	}
	fmt.Printf("css-benchlog: appended run %q (%d benchmarks) to %s\n",
		run.Label, len(run.Benchmarks), *out)
}

// sample is one parsed benchmark output line.
type sample struct {
	ns, bytes, allocs float64
	metrics           map[string]float64
}

func parse(sc *bufio.Scanner) (*Run, error) {
	run := &Run{}
	samples := map[string][]sample{}
	var order []string
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if cpu, ok := strings.CutPrefix(line, "cpu:"); ok {
			run.CPU = strings.TrimSpace(cpu)
			continue
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		f := strings.Fields(line)
		if len(f) < 4 {
			continue
		}
		name := procSuffix.ReplaceAllString(f[0], "")
		var s sample
		seen, garbled := false, false
		// After the name and iteration count come value/unit pairs.
		for i := 2; i+1 < len(f); i += 2 {
			v, err := strconv.ParseFloat(f[i], 64)
			if err != nil {
				// A log line interleaved into the benchmark output mid-line
				// (test binaries share stdout with their loggers); drop the
				// corrupted sample rather than losing the whole run.
				fmt.Fprintf(os.Stderr, "css-benchlog: skipping garbled line %q\n", line)
				garbled = true
				break
			}
			switch f[i+1] {
			case "ns/op":
				s.ns, seen = v, true
			case "B/op":
				s.bytes = v
			case "allocs/op":
				s.allocs = v
			default:
				if s.metrics == nil {
					s.metrics = map[string]float64{}
				}
				s.metrics[f[i+1]] = v
			}
		}
		if garbled || !seen {
			continue
		}
		if _, dup := samples[name]; !dup {
			order = append(order, name)
		}
		samples[name] = append(samples[name], s)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	sort.Strings(order)
	for _, name := range order {
		ss := samples[name]
		agg := Bench{Name: name, Samples: len(ss), MinNsPerOp: ss[0].ns}
		for _, s := range ss {
			agg.NsPerOp += s.ns / float64(len(ss))
			agg.BytesPerOp += s.bytes / float64(len(ss))
			agg.AllocsPerOp += s.allocs / float64(len(ss))
			if s.ns < agg.MinNsPerOp {
				agg.MinNsPerOp = s.ns
			}
			for unit, v := range s.metrics {
				if agg.Metrics == nil {
					agg.Metrics = map[string]float64{}
				}
				agg.Metrics[unit] += v / float64(len(ss))
			}
		}
		run.Benchmarks = append(run.Benchmarks, agg)
	}
	return run, nil
}
