// css-token mints and revokes bearer tokens for an authentication-enabled
// data controller (css-controller -auth-key-file). It stands in for the
// national identity provider the paper defers to (§5).
//
// Usage:
//
//	css-token -key-file FILE issue -actor ACTOR [-roles r1,r2] [-ttl 24h]
//	css-token -key-file FILE inspect -token TOKEN
//
// Revocation is a controller-side runtime operation (the authority keeps
// the revocation list in memory with the controller process); inspect
// verifies signature and validity window offline.
package main

import (
	"encoding/hex"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"repro/internal/event"
	"repro/internal/identity"
)

func main() {
	keyFile := flag.String("key-file", "", "authority key file (hex, required)")
	flag.Parse()
	if *keyFile == "" || flag.NArg() < 1 {
		flag.Usage()
		os.Exit(2)
	}
	raw, err := os.ReadFile(*keyFile)
	if err != nil {
		log.Fatalf("read key: %v", err)
	}
	key, err := hex.DecodeString(strings.TrimSpace(string(raw)))
	if err != nil {
		log.Fatalf("decode key: %v", err)
	}
	authority, err := identity.NewAuthority(key)
	if err != nil {
		log.Fatalf("authority: %v", err)
	}

	cmd, args := flag.Arg(0), flag.Args()[1:]
	switch cmd {
	case "issue":
		runIssue(authority, args)
	case "inspect":
		runInspect(authority, args)
	default:
		log.Fatalf("unknown command %q", cmd)
	}
}

func runIssue(a *identity.Authority, args []string) {
	fs := flag.NewFlagSet("issue", flag.ExitOnError)
	actor := fs.String("actor", "", "actor path (required)")
	roles := fs.String("roles", "", "comma-separated roles")
	ttl := fs.Duration("ttl", 24*time.Hour, "time to live")
	fs.Parse(args)
	if *actor == "" {
		log.Fatal("-actor is required")
	}
	var roleList []string
	if *roles != "" {
		roleList = strings.Split(*roles, ",")
	}
	token, claims, err := a.Issue(event.Actor(*actor), roleList, *ttl)
	if err != nil {
		log.Fatalf("issue: %v", err)
	}
	fmt.Fprintf(os.Stderr, "token %s for %s, expires %s\n",
		claims.TokenID, claims.Actor, claims.ExpiresAt.Format(time.RFC3339))
	fmt.Println(token)
}

func runInspect(a *identity.Authority, args []string) {
	fs := flag.NewFlagSet("inspect", flag.ExitOnError)
	token := fs.String("token", "", "token to inspect (required)")
	fs.Parse(args)
	if *token == "" {
		log.Fatal("-token is required")
	}
	claims, err := a.Verify(*token, time.Time{})
	if err != nil {
		log.Fatalf("invalid: %v", err)
	}
	fmt.Printf("token-id: %s\nactor:    %s\nroles:    %s\nissued:   %s\nexpires:  %s\n",
		claims.TokenID, claims.Actor, strings.Join(claims.Roles, ","),
		claims.IssuedAt.Format(time.RFC3339), claims.ExpiresAt.Format(time.RFC3339))
}
