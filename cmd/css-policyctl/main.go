// css-policyctl is the command-line Privacy Requirements Elicitation
// Tool (the paper's Figs 6-7, without the web UI): it lets a data
// producer's privacy expert define policy rules in terms of event fields,
// consumers and purposes — no XACML knowledge required — and inspect the
// XACML the platform generates.
//
// Usage:
//
//	css-policyctl -controller URL <command> [flags]
//
// Commands:
//
//	fields -class C              list the selectable fields of a class
//	pending -producer P          list access requests awaiting a policy
//	export -producer P           export the producer's whole policy corpus
//	                             as one XACML PolicySet
//	define -producer P -class C -fields f1,f2 -consumers a,b
//	       -purposes s1,s2 [-name N] [-until RFC3339]
//	                             elicit and store rules (one per consumer)
//	xacml  -producer P -class C -fields ... -consumers a -purposes ...
//	                             print the generated XACML (Fig. 8 form)
//	                             without storing it
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"repro/internal/event"
	"repro/internal/policy"
	"repro/internal/schema"
	"repro/internal/transport"
	"repro/internal/xacml"
)

func main() {
	controller := flag.String("controller", "http://localhost:8080", "controller base URL")
	token := flag.String("token", "", "bearer token (for auth-enabled controllers)")
	flag.Parse()
	if flag.NArg() < 1 {
		flag.Usage()
		os.Exit(2)
	}
	client := transport.NewClient(*controller, nil)
	if *token != "" {
		client = client.WithToken(*token)
	}
	cmd, args := flag.Arg(0), flag.Args()[1:]
	switch cmd {
	case "fields":
		runFields(client, args)
	case "pending":
		runPending(client, args)
	case "export":
		runExport(client, args)
	case "define":
		runDefine(client, args, false)
	case "xacml":
		runDefine(client, args, true)
	default:
		log.Fatalf("unknown command %q", cmd)
	}
}

func fetchSchema(client *transport.Client, class string) *schema.Schema {
	schemas, err := client.Catalog(context.Background())
	if err != nil {
		log.Fatalf("catalog: %v", err)
	}
	for _, s := range schemas {
		if s.Class() == event.ClassID(class) {
			return s
		}
	}
	log.Fatalf("class %s not in the catalog", class)
	return nil
}

func runFields(client *transport.Client, args []string) {
	fs := flag.NewFlagSet("fields", flag.ExitOnError)
	class := fs.String("class", "", "event class (required)")
	fs.Parse(args)
	if *class == "" {
		log.Fatal("-class is required")
	}
	s := fetchSchema(client, *class)
	fmt.Printf("fields of %s (v%d):\n", s.Class(), s.Version())
	for _, f := range s.Fields() {
		fmt.Printf("  %-20s %-9s %-11s %s\n", f.Name, f.Type, f.Sensitivity, f.Doc)
	}
}

func runDefine(client *transport.Client, args []string, dryRunXACML bool) {
	fs := flag.NewFlagSet("define", flag.ExitOnError)
	producer := fs.String("producer", "", "data producer id (required)")
	class := fs.String("class", "", "event class (required)")
	fields := fs.String("fields", "", "comma-separated fields to release (required)")
	consumers := fs.String("consumers", "", "comma-separated consumer actors (required)")
	purposes := fs.String("purposes", "", "comma-separated purposes (required)")
	name := fs.String("name", "", "rule label")
	until := fs.String("until", "", "validity end (RFC 3339)")
	fs.Parse(args)
	for flagName, v := range map[string]string{
		"producer": *producer, "class": *class, "fields": *fields,
		"consumers": *consumers, "purposes": *purposes,
	} {
		if v == "" {
			log.Fatalf("-%s is required", flagName)
		}
	}

	s := fetchSchema(client, *class)
	b := policy.NewBuilder(event.ProducerID(*producer), s)
	for _, f := range strings.Split(*fields, ",") {
		b.SelectFields(event.FieldName(strings.TrimSpace(f)))
	}
	for _, c := range strings.Split(*consumers, ",") {
		b.SelectConsumers(event.Actor(strings.TrimSpace(c)))
	}
	for _, p := range strings.Split(*purposes, ",") {
		b.SelectPurposes(event.Purpose(strings.TrimSpace(p)))
	}
	if *name != "" {
		b.Label(*name, "")
	}
	if *until != "" {
		t, err := time.Parse(time.RFC3339, *until)
		if err != nil {
			log.Fatalf("-until: %v", err)
		}
		b.ValidUntil(t)
	}
	policies, err := b.Build()
	if err != nil {
		log.Fatalf("elicitation: %v", err)
	}

	if dryRunXACML {
		for i, p := range policies {
			p.ID = policy.ID(fmt.Sprintf("preview-%03d", i+1))
			compiled, err := xacml.Compile(p)
			if err != nil {
				log.Fatalf("compile: %v", err)
			}
			data, err := xacml.Encode(compiled)
			if err != nil {
				log.Fatalf("encode: %v", err)
			}
			fmt.Printf("%s\n", data)
		}
		return
	}

	for _, p := range policies {
		stored, err := client.DefinePolicy(context.Background(), p)
		if err != nil {
			log.Fatalf("define (%s): %v", p.Actor, err)
		}
		fmt.Printf("stored %s: %s may access %d field(s) of %s for %s\n",
			stored.ID, stored.Actor, len(stored.Fields), stored.Class,
			strings.Join(purposeStrings(stored), ", "))
	}
}

func purposeStrings(p *policy.Policy) []string {
	out := make([]string, len(p.Purposes))
	for i, s := range p.Purposes {
		out[i] = string(s)
	}
	return out
}

func runPending(client *transport.Client, args []string) {
	fs := flag.NewFlagSet("pending", flag.ExitOnError)
	producer := fs.String("producer", "", "data producer id (required)")
	fs.Parse(args)
	if *producer == "" {
		log.Fatal("-producer is required")
	}
	pending, err := client.PendingRequests(context.Background(), event.ProducerID(*producer))
	if err != nil {
		log.Fatalf("pending: %v", err)
	}
	if len(pending) == 0 {
		fmt.Println("no pending access requests")
		return
	}
	for _, p := range pending {
		purpose := string(p.Purpose)
		if purpose == "" {
			purpose = "(subscription)"
		}
		fmt.Printf("%-28s %-32s %-22s ×%d last %s\n",
			p.Actor, p.Class, purpose, p.Count, p.LastAt.Format(time.RFC3339))
	}
	fmt.Println("define a policy with 'css-policyctl define ...' to resolve an entry")
}

func runExport(client *transport.Client, args []string) {
	fs := flag.NewFlagSet("export", flag.ExitOnError)
	producer := fs.String("producer", "", "data producer id (required)")
	fs.Parse(args)
	if *producer == "" {
		log.Fatal("-producer is required")
	}
	policies, err := client.Policies(context.Background(), event.ProducerID(*producer))
	if err != nil {
		log.Fatalf("policies: %v", err)
	}
	if len(policies) == 0 {
		log.Fatalf("producer %s has no stored policies", *producer)
	}
	ps, err := xacml.CompileProducerSet(event.ProducerID(*producer), policies)
	if err != nil {
		log.Fatalf("compile set: %v", err)
	}
	data, err := xacml.EncodeSet(ps)
	if err != nil {
		log.Fatalf("encode set: %v", err)
	}
	fmt.Printf("%s\n", data)
}
