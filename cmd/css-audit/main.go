// css-audit is the privacy guarantor's inquiry tool: it opens a data
// controller's audit store directly (read-only access to the WAL file)
// and answers who/what/when/why questions about data access, verifying
// the hash chain first.
//
// Usage:
//
//	css-audit -data DIR [flags]
//
//	-data     controller data directory (required; reads audit.wal)
//	-actor    filter by requesting actor
//	-kind     filter by kind (publish|subscribe|detail-request|index-inquiry)
//	-outcome  filter by outcome (permit|deny|ok)
//	-event    filter by global event id
//	-trace    filter by trace/correlation id (all records of one flow)
//	-limit    max records (default 100)
//	-verify   only verify chain integrity and exit
//	-compare  second data directory: verify both audit chains and diff
//	          them record by record, reporting the first divergent hash
//	          (a forked replica) or the healthy prefix relation (a
//	          replica that is merely behind). Exits 1 on divergence.
//	-spans    span export file (JSONL); with -trace, also print the
//	          flow's span-derived stage timings
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"sort"
	"time"

	"repro/internal/audit"
	"repro/internal/event"
	"repro/internal/store"
	"repro/internal/telemetry"
)

func main() {
	dataDir := flag.String("data", "", "controller data directory (required)")
	actor := flag.String("actor", "", "filter: actor")
	kind := flag.String("kind", "", "filter: kind")
	outcome := flag.String("outcome", "", "filter: outcome")
	eventID := flag.String("event", "", "filter: global event id")
	trace := flag.String("trace", "", "filter: trace/correlation id")
	limit := flag.Int("limit", 100, "max records")
	verifyOnly := flag.Bool("verify", false, "verify chain integrity and exit")
	compareDir := flag.String("compare", "", "second data directory: diff the two audit chains and report the first divergence")
	spansFile := flag.String("spans", "", "span export file (JSONL); with -trace, print the flow's stage timings after the audit records")
	flag.Parse()
	if *dataDir == "" {
		log.Fatal("-data is required")
	}

	st, err := store.Open(filepath.Join(*dataDir, "audit.wal"), store.Options{})
	if err != nil {
		log.Fatalf("open audit store: %v", err)
	}
	defer st.Close()
	logch, err := audit.Open(st)
	if err != nil {
		log.Fatalf("open audit log: %v", err)
	}

	if err := logch.Verify(); err != nil {
		log.Fatalf("AUDIT CHAIN BROKEN: %v", err)
	}
	fmt.Printf("audit chain verified: %d records intact\n", logch.Len())
	if *compareDir != "" {
		compareChains(*dataDir, *compareDir)
		return
	}
	if *verifyOnly {
		return
	}

	recs, err := logch.Search(audit.Query{
		Kind:    audit.Kind(*kind),
		Actor:   *actor,
		EventID: event.GlobalID(*eventID),
		Outcome: *outcome,
		Trace:   *trace,
		Limit:   *limit,
	})
	if err != nil {
		log.Fatalf("search: %v", err)
	}
	for _, r := range recs {
		line := fmt.Sprintf("#%-6d %s  %-14s %-28s outcome=%-6s",
			r.Seq, r.At.Format("2006-01-02 15:04:05"), r.Kind, r.Actor, r.Outcome)
		if r.EventID != "" {
			line += " event=" + string(r.EventID)
		}
		if r.Purpose != "" {
			line += " purpose=" + string(r.Purpose)
		}
		if r.Trace != "" {
			line += " trace=" + r.Trace
		}
		if r.Note != "" {
			line += fmt.Sprintf(" note=%q", r.Note)
		}
		fmt.Println(line)
	}
	fmt.Printf("(%d records shown)\n", len(recs))

	if *spansFile != "" && *trace != "" {
		printStageTimings(*spansFile, *trace)
	}
}

// compareChains diffs two audit chains record by record. A replicated
// controller's audit store is a byte-identical prefix of its primary's,
// so after a failover the guarantor runs this against the deposed and
// the promoted data directories: a prefix relation means the replica
// was merely behind (or the deposed node wrote dirty post-fence
// records past the common prefix — also reported), while a hash
// mismatch inside the common range is a forked chain and exits 1.
func compareChains(dirA, dirB string) {
	a := loadChain(dirA)
	b := loadChain(dirB)
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i].Seq != b[i].Seq || a[i].Hash != b[i].Hash {
			fmt.Printf("CHAINS DIVERGE at seq %d:\n", a[i].Seq)
			fmt.Printf("  %s: hash=%s kind=%s actor=%s outcome=%s\n",
				dirA, a[i].Hash, a[i].Kind, a[i].Actor, a[i].Outcome)
			fmt.Printf("  %s: hash=%s kind=%s actor=%s outcome=%s\n",
				dirB, b[i].Hash, b[i].Kind, b[i].Actor, b[i].Outcome)
			os.Exit(1)
		}
	}
	switch {
	case len(a) == len(b):
		fmt.Printf("chains identical: %d records, head hash %s\n", n, headHash(a))
	case len(a) > len(b):
		fmt.Printf("chains agree through seq %d; %s holds %d further records\n", n, dirA, len(a)-n)
	default:
		fmt.Printf("chains agree through seq %d; %s holds %d further records\n", n, dirB, len(b)-n)
	}
}

func headHash(recs []audit.Record) string {
	if len(recs) == 0 {
		return "(empty chain)"
	}
	return recs[len(recs)-1].Hash
}

// loadChain opens a controller's audit store read-only, verifies the
// chain, and returns its records in sequence order.
func loadChain(dir string) []audit.Record {
	st, err := store.Open(filepath.Join(dir, "audit.wal"), store.Options{})
	if err != nil {
		log.Fatalf("open audit store %s: %v", dir, err)
	}
	defer st.Close()
	logch, err := audit.Open(st)
	if err != nil {
		log.Fatalf("open audit log %s: %v", dir, err)
	}
	if err := logch.Verify(); err != nil {
		log.Fatalf("AUDIT CHAIN BROKEN in %s: %v", dir, err)
	}
	recs, err := logch.Search(audit.Query{})
	if err != nil {
		log.Fatalf("read chain %s: %v", dir, err)
	}
	sort.Slice(recs, func(i, j int) bool { return recs[i].Seq < recs[j].Seq })
	return recs
}

// printStageTimings joins the audit view with the distributed trace:
// for the flow selected by -trace it prints each exported span's stage
// and duration, so the guarantor sees not only that an access happened
// but where its time went.
func printStageTimings(path, trace string) {
	f, err := os.Open(path)
	if err != nil {
		log.Fatalf("open spans: %v", err)
	}
	defer f.Close()
	recs, err := telemetry.DecodeSpans(f)
	if err != nil {
		log.Fatalf("decode spans: %v", err)
	}
	var matched []telemetry.SpanRecord
	for _, r := range recs {
		if r.Trace == trace {
			matched = append(matched, r)
		}
	}
	fmt.Printf("\nstage timings for trace %s (%d spans):\n", trace, len(matched))
	sort.SliceStable(matched, func(i, j int) bool { return matched[i].Start.Before(matched[j].Start) })
	for _, r := range matched {
		line := fmt.Sprintf("  %-28s %10s  proc=%s", r.Stage, time.Duration(r.Duration)*time.Microsecond, r.Proc)
		if r.Error != "" {
			line += fmt.Sprintf("  error=%q", r.Error)
		}
		fmt.Println(line)
	}
}
