// Command css-benchgate guards the publish path against allocation
// regressions. It reads `go test -bench -benchmem` output on stdin,
// extracts allocs/op for the benchmarks named in a committed baseline
// file, and exits non-zero when any of them regressed beyond the
// tolerance. Allocation counts — unlike wall-clock ns/op — are
// deterministic for a fixed code path, so the gate is stable across
// machines and load, and a single short `-benchtime 2000x` run is
// enough to drive it.
//
// Usage:
//
//	go test -run '^$' -bench 'E1_PublishRoute' -benchtime 2000x -benchmem . \
//	    | css-benchgate -baseline BENCH_baseline.json
//
// Pass -update to rewrite the baseline from the measured run instead of
// gating (after an intentional improvement or regression, reviewed in
// the diff like any other change).
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"sort"
	"strconv"
)

// baseline is the committed allocation budget.
type baseline struct {
	// TolerancePct is the allowed relative regression in percent.
	TolerancePct float64 `json:"tolerancePct"`
	// AllocsPerOp maps benchmark name (no -N GOMAXPROCS suffix) to the
	// recorded allocs/op.
	AllocsPerOp map[string]int64 `json:"allocsPerOp"`
}

// benchLine matches one -benchmem result line.
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+\S+ ns/op\s+\S+ B/op\s+(\d+) allocs/op`)

func main() {
	baselinePath := flag.String("baseline", "BENCH_baseline.json", "committed allocation baseline")
	update := flag.Bool("update", false, "rewrite the baseline from this run instead of gating")
	flag.Parse()

	measured := map[string]int64{}
	sc := bufio.NewScanner(os.Stdin)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		n, err := strconv.ParseInt(m[2], 10, 64)
		if err != nil {
			continue
		}
		// Keep the worst (highest) sample when -count produced several.
		if prev, ok := measured[m[1]]; !ok || n > prev {
			measured[m[1]] = n
		}
	}
	if err := sc.Err(); err != nil {
		fatalf("read stdin: %v", err)
	}
	if len(measured) == 0 {
		fatalf("no -benchmem result lines on stdin (run with -benchmem)")
	}

	if *update {
		writeBaseline(*baselinePath, measured)
		return
	}

	raw, err := os.ReadFile(*baselinePath)
	if err != nil {
		fatalf("read baseline: %v (run with -update to create it)", err)
	}
	var base baseline
	if err := json.Unmarshal(raw, &base); err != nil {
		fatalf("parse baseline %s: %v", *baselinePath, err)
	}
	if base.TolerancePct <= 0 {
		base.TolerancePct = 5
	}

	names := make([]string, 0, len(base.AllocsPerOp))
	for name := range base.AllocsPerOp {
		names = append(names, name)
	}
	sort.Strings(names)
	failed := false
	for _, name := range names {
		want := base.AllocsPerOp[name]
		got, ok := measured[name]
		if !ok {
			fmt.Fprintf(os.Stderr, "FAIL %s: in baseline but absent from the measured run\n", name)
			failed = true
			continue
		}
		limit := float64(want) * (1 + base.TolerancePct/100)
		switch {
		case float64(got) > limit:
			fmt.Fprintf(os.Stderr, "FAIL %s: %d allocs/op, baseline %d (+%.1f%% > %.0f%% tolerance)\n",
				name, got, want, 100*float64(got-want)/float64(want), base.TolerancePct)
			failed = true
		case got < want:
			fmt.Printf("ok   %s: %d allocs/op (baseline %d — improved; consider -update)\n", name, got, want)
		default:
			fmt.Printf("ok   %s: %d allocs/op (baseline %d)\n", name, got, want)
		}
	}
	if failed {
		os.Exit(1)
	}
}

func writeBaseline(path string, measured map[string]int64) {
	out := baseline{TolerancePct: 5, AllocsPerOp: measured}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		fatalf("encode baseline: %v", err)
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		fatalf("write baseline: %v", err)
	}
	fmt.Printf("wrote %s (%d benchmarks)\n", path, len(measured))
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "css-benchgate: "+format+"\n", args...)
	os.Exit(1)
}
