// Command css-benchgate guards the publish path against regressions.
// It reads `go test -bench -benchmem` output on stdin and gates two
// kinds of budgets named in a committed baseline file:
//
//   - allocation budgets (the default): allocs/op for the listed
//     benchmarks must not exceed the baseline beyond the tolerance.
//     Allocation counts — unlike wall-clock ns/op — are deterministic
//     for a fixed code path, so the gate is stable across machines and
//     load, and a single short `-benchtime 2000x` run is enough.
//   - rate pairs (-rates): the `pub/s` custom metric of one benchmark
//     compared against another benchmark FROM THE SAME RUN. Because
//     both sides share the machine and the load, the ratio is stable
//     where absolute rates are not: `withinPct` bounds a slowdown
//     (e.g. the 1-shard sharding tax vs the unsharded saturation row)
//     and `minRatio` demands a speedup (e.g. 4-shard scale-out vs
//     1-shard). Pairs with `minCPU` are skipped on smaller machines —
//     scale-out cannot manifest without cores to scale onto.
//
// Usage:
//
//	go test -run '^$' -bench 'E1_PublishRoute' -benchtime 2000x -benchmem . \
//	    | css-benchgate -baseline BENCH_baseline.json
//
//	go test -run '^$' -bench 'E1_Saturation|E1_ShardedSaturation' . \
//	    | css-benchgate -baseline BENCH_baseline.json -rates
//
// Pass -update to rewrite the allocation baseline from the measured run
// instead of gating (after an intentional improvement or regression,
// reviewed in the diff like any other change). Rate pairs are relative,
// so they have no measured baseline to update — edit them in the JSON.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"runtime"
	"sort"
	"strconv"
)

// baseline is the committed benchmark budget.
type baseline struct {
	// TolerancePct is the allowed relative regression in percent.
	TolerancePct float64 `json:"tolerancePct"`
	// AllocsPerOp maps benchmark name (no -N GOMAXPROCS suffix) to the
	// recorded allocs/op.
	AllocsPerOp map[string]int64 `json:"allocsPerOp"`
	// RatePairs are same-run pub/s comparisons gated by -rates.
	RatePairs []ratePair `json:"ratePairs,omitempty"`
}

// ratePair compares the pub/s metric of two benchmarks from one run.
type ratePair struct {
	// Name and Against are benchmark names as printed (sub-benchmark
	// path included, no GOMAXPROCS suffix).
	Name    string `json:"name"`
	Against string `json:"against"`
	// WithinPct, when set, requires Name's rate to be no more than this
	// many percent below Against's (faster is never a failure).
	WithinPct float64 `json:"withinPct,omitempty"`
	// MinRatio, when set, requires Name's rate ≥ MinRatio × Against's.
	MinRatio float64 `json:"minRatio,omitempty"`
	// MinCPU skips the pair when the machine has fewer logical CPUs —
	// scale-out ratios are meaningless on a box with nothing to scale
	// onto.
	MinCPU int `json:"minCPU,omitempty"`
}

// benchLine matches one -benchmem result line.
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+\S+ ns/op\s+\S+ B/op\s+(\d+) allocs/op`)

// rateLine matches a result line carrying the custom pub/s metric.
var rateLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+.*?(\d+(?:\.\d+)?) pub/s`)

func main() {
	baselinePath := flag.String("baseline", "BENCH_baseline.json", "committed benchmark baseline")
	update := flag.Bool("update", false, "rewrite the allocation baseline from this run instead of gating")
	rates := flag.Bool("rates", false, "gate the baseline's ratePairs (same-run pub/s comparisons) instead of allocs/op")
	flag.Parse()

	allocs := map[string]int64{}
	pubRate := map[string]float64{}
	sc := bufio.NewScanner(os.Stdin)
	for sc.Scan() {
		line := sc.Text()
		if m := benchLine.FindStringSubmatch(line); m != nil {
			if n, err := strconv.ParseInt(m[2], 10, 64); err == nil {
				// Keep the worst (highest) sample when -count produced several.
				if prev, ok := allocs[m[1]]; !ok || n > prev {
					allocs[m[1]] = n
				}
			}
		}
		if m := rateLine.FindStringSubmatch(line); m != nil {
			if r, err := strconv.ParseFloat(m[2], 64); err == nil {
				// Keep the worst (lowest) rate when -count produced several.
				if prev, ok := pubRate[m[1]]; !ok || r < prev {
					pubRate[m[1]] = r
				}
			}
		}
	}
	if err := sc.Err(); err != nil {
		fatalf("read stdin: %v", err)
	}

	if *update {
		if len(allocs) == 0 {
			fatalf("no -benchmem result lines on stdin (run with -benchmem)")
		}
		writeBaseline(*baselinePath, allocs)
		return
	}

	raw, err := os.ReadFile(*baselinePath)
	if err != nil {
		fatalf("read baseline: %v (run with -update to create it)", err)
	}
	var base baseline
	if err := json.Unmarshal(raw, &base); err != nil {
		fatalf("parse baseline %s: %v", *baselinePath, err)
	}
	if base.TolerancePct <= 0 {
		base.TolerancePct = 5
	}

	if *rates {
		if gateRates(base.RatePairs, pubRate) {
			os.Exit(1)
		}
		return
	}
	if len(allocs) == 0 {
		fatalf("no -benchmem result lines on stdin (run with -benchmem)")
	}
	if gateAllocs(base, allocs) {
		os.Exit(1)
	}
}

// gateAllocs checks the allocation budgets; true means failure.
func gateAllocs(base baseline, measured map[string]int64) bool {
	names := make([]string, 0, len(base.AllocsPerOp))
	for name := range base.AllocsPerOp {
		names = append(names, name)
	}
	sort.Strings(names)
	failed := false
	for _, name := range names {
		want := base.AllocsPerOp[name]
		got, ok := measured[name]
		if !ok {
			fmt.Fprintf(os.Stderr, "FAIL %s: in baseline but absent from the measured run\n", name)
			failed = true
			continue
		}
		limit := float64(want) * (1 + base.TolerancePct/100)
		switch {
		case float64(got) > limit:
			fmt.Fprintf(os.Stderr, "FAIL %s: %d allocs/op, baseline %d (+%.1f%% > %.0f%% tolerance)\n",
				name, got, want, 100*float64(got-want)/float64(want), base.TolerancePct)
			failed = true
		case got < want:
			fmt.Printf("ok   %s: %d allocs/op (baseline %d — improved; consider -update)\n", name, got, want)
		default:
			fmt.Printf("ok   %s: %d allocs/op (baseline %d)\n", name, got, want)
		}
	}
	return failed
}

// gateRates checks the same-run pub/s pairs; true means failure.
func gateRates(pairs []ratePair, rates map[string]float64) bool {
	if len(pairs) == 0 {
		fatalf("-rates set but the baseline has no ratePairs")
	}
	failed := false
	for _, p := range pairs {
		if p.MinCPU > 0 && runtime.NumCPU() < p.MinCPU {
			fmt.Printf("skip %s vs %s: needs %d CPUs, machine has %d\n",
				p.Name, p.Against, p.MinCPU, runtime.NumCPU())
			continue
		}
		got, ok := rates[p.Name]
		ref, rok := rates[p.Against]
		if !ok || !rok {
			for want, have := range map[string]bool{p.Name: ok, p.Against: rok} {
				if !have {
					fmt.Fprintf(os.Stderr, "FAIL %s: no pub/s metric in the measured run\n", want)
				}
			}
			failed = true
			continue
		}
		switch {
		case p.WithinPct > 0:
			floor := ref * (1 - p.WithinPct/100)
			if got < floor {
				fmt.Fprintf(os.Stderr, "FAIL %s: %.0f pub/s is %.1f%% below %s (%.0f pub/s), tolerance %.0f%%\n",
					p.Name, got, 100*(ref-got)/ref, p.Against, ref, p.WithinPct)
				failed = true
			} else {
				fmt.Printf("ok   %s: %.0f pub/s within %.0f%% of %s (%.0f pub/s)\n",
					p.Name, got, p.WithinPct, p.Against, ref)
			}
		case p.MinRatio > 0:
			if got < ref*p.MinRatio {
				fmt.Fprintf(os.Stderr, "FAIL %s: %.0f pub/s is only %.2fx %s (%.0f pub/s), want ≥%.1fx\n",
					p.Name, got, got/ref, p.Against, ref, p.MinRatio)
				failed = true
			} else {
				fmt.Printf("ok   %s: %.0f pub/s = %.2fx %s (%.0f pub/s, want ≥%.1fx)\n",
					p.Name, got, got/ref, p.Against, ref, p.MinRatio)
			}
		default:
			fatalf("ratePair %s vs %s sets neither withinPct nor minRatio", p.Name, p.Against)
		}
	}
	return failed
}

func writeBaseline(path string, measured map[string]int64) {
	// Preserve committed rate pairs across -update rewrites.
	out := baseline{TolerancePct: 5, AllocsPerOp: measured}
	if raw, err := os.ReadFile(path); err == nil {
		var prev baseline
		if json.Unmarshal(raw, &prev) == nil {
			out.RatePairs = prev.RatePairs
		}
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		fatalf("encode baseline: %v", err)
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		fatalf("write baseline: %v", err)
	}
	fmt.Printf("wrote %s (%d benchmarks)\n", path, len(measured))
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "css-benchgate: "+format+"\n", args...)
	os.Exit(1)
}
