// css-controller runs the CSS data controller as a web service.
//
// Usage:
//
//	css-controller [flags]
//
//	-addr      listen address (default :8080)
//	-data      data directory for durable state (default: in-memory)
//	-key-file  file holding the 32-byte master key in hex; created with a
//	           fresh random key if absent (requires -data to be useful)
//	-deny-default-consent  treat citizens as opted out unless they opt in
//	-scenario  provision the Trentino demo scenario (producers, consumers,
//	           event classes, standard policies, in-process gateways)
//	-pprof     expose net/http/pprof under /debug/pprof/ (opt-in; never
//	           enable on a public interface)
//	-log-json  structured JSON logs on stderr (default: text)
//	-slow      slow-operation warning threshold (default 250ms)
//	-max-inflight   global concurrent-request budget (default 256);
//	                requests beyond it are shed 429 by priority
//	-actor-rps      per-actor admission rate in requests/second
//	                (default 50; negative: unlimited)
//	-queue-cap      per-subscription bus queue bound (default 1024;
//	                <=0: unbounded)
//	-codec     wire codec pre-encoded on the publish path: "xml"
//	           (default, paper fidelity) or "binary" (compact framing;
//	           see DESIGN.md §8). Inbound requests and callback
//	           deliveries still negotiate per peer either way.
//	-drain-timeout  graceful-shutdown budget on SIGTERM/SIGINT
//	                (default 10s): stop admitting, finish in-flight
//	                requests, flush the bus, fsync and close the stores
//	-span-file      durable span export file (JSONL ring; empty: disabled)
//	-span-sample    head-sampling rate for span recording and export
//	                (default 0.1; errors and slow spans are always kept)
//	-span-slow      tail-keep threshold for exported spans (default 100ms)
//	-shard-id       this controller's shard id within the cluster
//	                (default -1: unsharded). An id absent from the map
//	                boots cold and joins via a live reshard.
//	-shard-map      cluster topology as "id=url,id=url,..." or "@file"
//	                (one id=url per line, # comments); all shards must
//	                share -key-file — pseudonym partitioning assumes one
//	                HMAC keyspace
//	-peers          shorthand topology: comma-separated shard base URLs
//	                assigned ids 0..n-1 in order (alternative to
//	                -shard-map)
//	-role           "primary" (default) or "replica". A replica requires
//	                -data and -repl-listen, applies a primary's WAL
//	                stream, serves index inquiries locally, refuses
//	                writes with the not-primary redirect, and flips to
//	                primary on POST /ws/promote
//	-repl-listen    replica only: TCP address the WAL-stream follower
//	                listens on (e.g. 127.0.0.1:9301)
//	-replicate-to   comma-separated follower addresses this node ships
//	                its WALs to. On a primary, shipping starts at boot;
//	                on a replica it starts at promotion, so a promoted
//	                node feeds the surviving replicas
//	-quorum         wait for a majority of followers to fsync before
//	                acknowledging each publish (durable failover; adds
//	                one network round-trip overlapped with fan-out)
//	-repl-epoch     fencing epoch this node ships/accepts at (default 1);
//	                the shard map's epoch after a manual failover
//	-election       replica only: self-healing failover. The replica
//	                watches the primary's heartbeats (plus -primary-url
//	                as an HTTP probe), and when both channels go silent
//	                it campaigns among the -replicate-to peers for the
//	                next fencing epoch; a quorum of durable grants
//	                promotes it with no operator involvement. POST
//	                /ws/promote stays available as a manual override
//	-heartbeat-interval  primary heartbeat cadence on idle replication
//	                links, and the detector's expected interval on
//	                replicas (default 100ms)
//	-suspect-after  minimum primary silence before a replica may
//	                campaign, however high suspicion climbs (default 2s)
//	-primary-url    replica only: the primary's HTTP base URL, probed
//	                via GET /ws/replstatus to confirm a suspected death
//	                before campaigning
//
// The controller always serves /metrics (Prometheus text format),
// /healthz, /slo (latency-objective burn rates) and /debug/spans (the
// in-process span ring as JSONL, for cmd/css-trace) alongside the /ws/
// API.
//
// Without -scenario the controller starts empty; members join through
// the web-service API (see internal/transport for the endpoints).
package main

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"flag"
	"fmt"
	"log"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strconv"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/election"
	"repro/internal/event"
	"repro/internal/identity"
	"repro/internal/overload"
	"repro/internal/replication"
	"repro/internal/resilience"
	"repro/internal/telemetry"
	"repro/internal/transport"
	"repro/internal/workload"
)

// gatewayFlags collects repeatable -gateway producer=URL mappings.
type gatewayFlags map[string]string

func (g gatewayFlags) String() string { return fmt.Sprint(map[string]string(g)) }

func (g gatewayFlags) Set(v string) error {
	producer, url, ok := strings.Cut(v, "=")
	if !ok || producer == "" || url == "" {
		return fmt.Errorf("want producer=URL, got %q", v)
	}
	g[producer] = url
	return nil
}

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	dataDir := flag.String("data", "", "data directory (empty: in-memory)")
	keyFile := flag.String("key-file", "", "master key file (hex); created if absent")
	authKeyFile := flag.String("auth-key-file", "", "identity authority key file (hex); enables bearer-token authentication (mint tokens with css-token)")
	denyDefault := flag.Bool("deny-default-consent", false, "deny flows without an opt-in directive")
	scenario := flag.Bool("scenario", false, "provision the demo scenario")
	pprofFlag := flag.Bool("pprof", false, "expose net/http/pprof under /debug/pprof/")
	logJSON := flag.Bool("log-json", false, "structured JSON logs on stderr")
	slow := flag.Duration("slow", telemetry.DefaultSlowThreshold, "slow-operation warning threshold")
	maxInflight := flag.Int("max-inflight", overload.DefaultMaxInFlight, "global concurrent-request budget (negative: unbounded)")
	actorRPS := flag.Float64("actor-rps", overload.DefaultActorRPS, "per-actor admission rate, requests/second (negative: unlimited)")
	queueCap := flag.Int("queue-cap", 1024, "per-subscription bus queue bound (<=0: unbounded)")
	codecName := flag.String("codec", "", `internal wire codec: "xml" (default) or "binary"`)
	drainTimeout := flag.Duration("drain-timeout", 10*time.Second, "graceful-shutdown budget on SIGTERM")
	spanFile := flag.String("span-file", "", "durable span export file (JSONL ring; empty: disabled)")
	spanSample := flag.Float64("span-sample", telemetry.DefaultSampleRate, "head-sampling rate for span recording and export (0..1)")
	spanSlow := flag.Duration("span-slow", telemetry.DefaultSlowTail, "tail-keep exported spans at least this slow (negative: disabled)")
	role := flag.String("role", "primary", `replication role: "primary" or "replica"`)
	replListen := flag.String("repl-listen", "", "replica: TCP address the WAL-stream follower listens on")
	replicateTo := flag.String("replicate-to", "", "comma-separated follower addresses to ship WALs to")
	quorum := flag.Bool("quorum", false, "wait for a follower fsync quorum before acknowledging publishes")
	replEpoch := flag.Uint64("repl-epoch", 1, "replication fencing epoch")
	electionOn := flag.Bool("election", false, "replica: campaign for promotion when the primary goes silent")
	heartbeatEvery := flag.Duration("heartbeat-interval", 100*time.Millisecond, "primary heartbeat cadence on idle replication links")
	suspectAfter := flag.Duration("suspect-after", 2*time.Second, "minimum primary silence before a replica campaigns")
	primaryURL := flag.String("primary-url", "", "replica: primary's HTTP base URL, probed before campaigning")
	shardID := flag.Int("shard-id", -1, "this controller's shard id (default: unsharded)")
	shardMapSpec := flag.String("shard-map", "", `cluster topology: "id=url,..." or "@file" with one id=url per line`)
	peersSpec := flag.String("peers", "", "comma-separated shard base URLs assigned ids 0..n-1 (alternative to -shard-map)")
	gateways := gatewayFlags{}
	flag.Var(gateways, "gateway", "attach a remote cooperation gateway as producer=URL (repeatable)")
	gatewayToken := flag.String("gateway-token", "", "bearer token presented to remote gateways (auth-enabled gateways)")
	flag.Parse()

	telemetry.SetLogger(telemetry.NewLogger(*logJSON, slog.LevelInfo))
	telemetry.SetSlowThreshold(*slow)

	cfg := core.Config{
		DataDir:        *dataDir,
		DefaultConsent: !*denyDefault,
		Metrics:        telemetry.Default(),
		// One sampling knob: the same rate decides which traces the
		// tracer records (ring + /debug/spans) and which the exporter
		// writes; the FNV draw keeps both layers consistent.
		SpanSampleRate: *spanSample,
	}
	// -codec picks the format the controller uses where IT is the
	// client: callback deliveries it originates default to this codec.
	// Inbound requests always negotiate per message, so XML peers keep
	// working regardless of the flag.
	codec, err := event.CodecByName(*codecName)
	if err != nil {
		log.Fatalf("-codec: %v", err)
	}
	cfg.Codec = codec
	if *spanSample <= 0 {
		cfg.SpanSampleRate = -1 // explicit zero means "record nothing"
	}
	if *queueCap > 0 {
		// Bounded subscription queues: a wedged consumer sheds its own
		// oldest-unread traffic to the capped DLQ instead of growing the
		// broker without bound.
		cfg.Bus.MaxPending = *queueCap
	}
	if *keyFile != "" {
		key, err := loadOrCreateKey(*keyFile)
		if err != nil {
			log.Fatalf("master key: %v", err)
		}
		cfg.MasterKey = key
	}

	if *shardMapSpec != "" || *peersSpec != "" {
		if *shardID < 0 {
			log.Fatal("sharding: -shard-id is required with -shard-map/-peers")
		}
		if len(cfg.MasterKey) == 0 {
			log.Fatal("sharding: -key-file is required (all shards must share one master key)")
		}
		m, err := parseShardTopology(*shardMapSpec, *peersSpec)
		if err != nil {
			log.Fatalf("sharding: %v", err)
		}
		cfg.ShardMap = m
		cfg.ShardID = cluster.ShardID(*shardID)
	} else if *shardID >= 0 {
		log.Fatal("sharding: -shard-id needs a topology (-shard-map or -peers)")
	}

	switch *role {
	case "primary":
		if *replListen != "" {
			log.Fatal("replication: -repl-listen is a replica flag")
		}
		if *electionOn {
			log.Fatal("election: -election is a replica flag (a primary is campaigned against, not for)")
		}
		if *replicateTo != "" && *dataDir == "" {
			log.Fatal("replication: WAL shipping requires -data")
		}
	case "replica":
		if *dataDir == "" {
			log.Fatal("replication: a replica requires -data (WAL shipping needs WALs)")
		}
		if *replListen == "" {
			log.Fatal("replication: -repl-listen is required for a replica")
		}
		if *electionOn && *replicateTo == "" {
			log.Fatal("election: -election needs -replicate-to (the voting peers)")
		}
		cfg.Replica = true
	default:
		log.Fatalf("replication: unknown -role %q (want primary or replica)", *role)
	}

	ctrl, err := core.New(cfg)
	if err != nil {
		log.Fatalf("controller: %v", err)
	}
	defer ctrl.Close()

	if m := ctrl.ShardMap(); m != nil {
		self, _ := ctrl.ShardID()
		telemetry.Logger().Info("controller is sharded",
			"shard", self.String(), "map_version", m.Version(),
			"shards", len(m.Shards()), "vnodes", m.VNodes())
	}

	// Durable span export: head-sampled plus error/latency tail, flushed
	// and fsynced as a drain step so a post-mortem always has the spans
	// of the flows that were in flight.
	var spanExporter *telemetry.Exporter
	if *spanFile != "" {
		spanExporter, err = telemetry.NewExporter(telemetry.ExporterConfig{
			Path:       *spanFile,
			SampleRate: *spanSample,
			SlowTail:   *spanSlow,
		}, "controller")
		if err != nil {
			log.Fatalf("span exporter: %v", err)
		}
		ctrl.Tracer().SetExporter(spanExporter)
		telemetry.Logger().Info("span export enabled",
			"file", *spanFile, "sample", *spanSample, "slow_tail", spanSlow.String())
	}

	if *scenario {
		platform, err := workload.Provision(ctrl)
		if err != nil {
			log.Fatalf("scenario: %v", err)
		}
		policies, err := platform.StandardPolicies()
		if err != nil {
			log.Fatalf("scenario policies: %v", err)
		}
		log.Printf("scenario provisioned: %d producers, %d consumers, %d classes, %d policies",
			len(workload.Producers()), len(workload.Consumers()),
			len(ctrl.Catalog().Classes()), len(policies))
	}

	srv := transport.NewServer(ctrl)

	// Replication wiring. A primary with -replicate-to ships its WALs
	// from boot; a replica runs the stream follower and installs a
	// promote hook that fences the old epoch, flips the controller to
	// primary, and (with -replicate-to) starts shipping to the surviving
	// replicas.
	var follower *replication.Follower
	var manager *election.Manager
	var shipper atomic.Pointer[replication.Primary]
	replLogf := func(format string, args ...any) {
		telemetry.Logger().Info("repl: " + fmt.Sprintf(format, args...))
	}
	startShipping := func(epoch uint64) (*replication.Primary, error) {
		stores, err := ctrl.ReplStores()
		if err != nil {
			return nil, err
		}
		p, err := replication.NewPrimary(replication.PrimaryConfig{
			Stores: stores, Epoch: epoch, Quorum: *quorum,
			HeartbeatEvery: *heartbeatEvery,
			Metrics:        telemetry.Default(), Logf: replLogf,
		})
		if err != nil {
			return nil, err
		}
		for _, a := range strings.Split(*replicateTo, ",") {
			if a = strings.TrimSpace(a); a != "" {
				p.AddFollower(a)
			}
		}
		return p, nil
	}
	switch {
	case *role == "primary" && *replicateTo != "":
		p, err := startShipping(*replEpoch)
		if err != nil {
			log.Fatalf("replication: %v", err)
		}
		shipper.Store(p)
		ctrl.AttachReplication(p)
		srv.SetReplication(p)
		telemetry.Logger().Info("WAL shipping enabled",
			"followers", *replicateTo, "quorum", *quorum, "epoch", *replEpoch)
	case *role == "replica":
		stores, err := ctrl.ReplStores()
		if err != nil {
			log.Fatalf("replication: %v", err)
		}
		// A node that granted (or claimed) a fencing epoch before a
		// crash must not come back below it: the durable promise floor
		// overrides -repl-epoch.
		epochs, err := election.OpenEpochStore(filepath.Join(*dataDir, "election.epoch"))
		if err != nil {
			log.Fatalf("election: %v", err)
		}
		startEpoch := *replEpoch
		if p := epochs.Promised(); p > startEpoch {
			startEpoch = p
		}
		follower, err = replication.NewFollower(*replListen, replication.FollowerConfig{
			Stores: stores, Epoch: startEpoch, OnApply: ctrl.OnReplicatedApply(),
			Metrics: telemetry.Default(), Logf: replLogf,
		})
		if err != nil {
			log.Fatalf("replication: %v", err)
		}
		srv.SetFollower(follower)
		promote := func(epoch uint64) error {
			// Fence first: once the follower holds the new epoch, the
			// deposed primary's frames are denied even if it is still up.
			follower.SetEpoch(epoch)
			if err := ctrl.Promote(epoch); err != nil {
				return err
			}
			if *replicateTo != "" {
				p, err := startShipping(epoch)
				if err != nil {
					return err
				}
				shipper.Store(p)
				ctrl.AttachReplication(p)
				srv.SetReplication(p)
			}
			telemetry.Logger().Info("promoted to primary", "epoch", epoch)
			return nil
		}
		srv.SetPromoteHook(promote)
		if *electionOn {
			// The shipping targets double as the electorate: every
			// address this node would feed after winning is a voter.
			var peers []string
			for _, a := range strings.Split(*replicateTo, ",") {
				if a = strings.TrimSpace(a); a != "" {
					peers = append(peers, a)
				}
			}
			var probe func(ctx context.Context) error
			if *primaryURL != "" {
				probeClient := transport.NewClient(*primaryURL, nil)
				probe = func(ctx context.Context) error {
					_, err := probeClient.ReplStatus(ctx)
					return err
				}
			}
			mgr, err := election.NewManager(election.Config{
				Peers:          peers,
				HeartbeatEvery: *heartbeatEvery,
				SuspectAfter:   *suspectAfter,
				Epochs:         epochs,
				CurrentEpoch:   follower.Epoch,
				Offsets:        follower.Offsets,
				Campaign: func(ctx context.Context, addr string, epoch uint64, cursors map[string]int64) (bool, uint64, error) {
					return replication.Campaign(ctx, nil, addr, epoch, cursors)
				},
				Promote:  promote,
				Probe:    probe,
				Promoted: func() bool { return !ctrl.IsReplica() },
				Metrics:  telemetry.Default(),
				Tracer:   ctrl.Tracer(),
				Logf:     replLogf,
			})
			if err != nil {
				log.Fatalf("election: %v", err)
			}
			manager = mgr
			follower.SetContactHook(mgr.Observe)
			follower.SetVoteHook(mgr.Vote)
			srv.SetElection(mgr.Status)
			telemetry.Logger().Info("election manager armed",
				"peers", *replicateTo, "suspect_after", suspectAfter.String(),
				"heartbeat", heartbeatEvery.String())
		}
		telemetry.Logger().Info("replica following",
			"listen", follower.Addr(), "epoch", startEpoch)
	}

	if len(gateways) > 0 {
		// Remote detail sources get a shared retry policy and one circuit
		// breaker per gateway; breaker states show up on /healthz so an
		// operator can see at a glance which producer is unreachable.
		resMetrics := resilience.NewMetrics(telemetry.Default())
		breakers := resilience.NewGroup(resilience.BreakerConfig{
			Metrics: resMetrics,
			// Breaker state changes get their own timeline entries, so a
			// css-trace waterfall shows when the circuit opened relative to
			// the flows that tripped it.
			OnTransition: resilience.TraceTransitions(ctrl.Tracer(), nil),
		})
		retrier := resilience.NewRetrier(resilience.RetryPolicy{Metrics: resMetrics})
		for producer, url := range gateways {
			rg := transport.NewRemoteGateway(url, nil,
				transport.WithRetrier(retrier), transport.WithBreakerGroup(breakers))
			if *gatewayToken != "" {
				rg = rg.WithToken(*gatewayToken)
			}
			if err := ctrl.AttachGateway(event.ProducerID(producer), rg); err != nil {
				log.Fatalf("attach gateway %s: %v", producer, err)
			}
			telemetry.Logger().Info("remote gateway attached", "producer", producer, "url", url)
		}
		srv.AddHealthDetail(func() map[string]string {
			out := make(map[string]string)
			for name, state := range breakers.States() {
				out["breaker "+name] = state.String()
			}
			return out
		})
	}
	if *authKeyFile != "" {
		key, err := loadOrCreateKey(*authKeyFile)
		if err != nil {
			log.Fatalf("auth key: %v", err)
		}
		authority, err := identity.NewAuthority(key)
		if err != nil {
			log.Fatalf("authority: %v", err)
		}
		srv.RequireAuth(authority)
		telemetry.Logger().Info("bearer-token authentication enabled", "key", *authKeyFile)
	}

	gate := overload.NewGate(overload.Config{
		MaxInFlight: *maxInflight,
		ActorRPS:    *actorRPS,
		Metrics:     telemetry.Default(),
	})
	srv.SetAdmission(gate)

	// Per-flow latency objectives, computed from the same histogram
	// families /metrics exposes. Targets sit on bucket bounds.
	reg := telemetry.Default()
	slo := telemetry.NewSLO(telemetry.SLOConfig{},
		telemetry.Objective{Name: "publish", Target: 0.25, Goal: 0.99,
			Hist: reg.Histogram("css_publish_seconds", "")},
		telemetry.Objective{Name: "deliver", Target: 0.25, Goal: 0.99,
			Hist: reg.Histogram("css_delivery_seconds", "")},
		telemetry.Objective{Name: "detail-permit", Target: 0.5, Goal: 0.99,
			Hist:        reg.Histogram("css_detail_request_seconds", "", "outcome"),
			LabelValues: []string{"permit"}},
	)
	srv.SetSLO(slo)

	mux := http.NewServeMux()
	mux.Handle("/", srv)
	if *pprofFlag {
		telemetry.RegisterPprof(mux)
		telemetry.Logger().Info("pprof profiling enabled", "path", "/debug/pprof/")
	}
	telemetry.Logger().Info("CSS data controller listening",
		"addr", *addr, "data", orMem(*dataDir),
		"metrics", "/metrics", "healthz", "/healthz",
		"max_inflight", *maxInflight, "actor_rps", *actorRPS,
		"queue_cap", *queueCap, "drain_timeout", drainTimeout.String(),
		"slow_threshold", slow.String())

	httpSrv := &http.Server{Addr: *addr, Handler: mux}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	go slo.Run(ctx)
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.ListenAndServe() }()
	select {
	case err := <-serveErr:
		log.Fatal(err)
	case <-ctx.Done():
	}

	// Graceful drain: the gate refuses new admissions first (503s carry
	// Retry-After, so clients back off onto a healthy replica), then each
	// step runs under the remaining -drain-timeout budget. Accepted work
	// is never abandoned: in-flight requests finish, queued bus messages
	// flush, and the stores fsync on Close.
	telemetry.Logger().Info("shutdown signal received, draining", "timeout", drainTimeout.String())
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	steps := []overload.Step{
		{Name: "http-shutdown", Run: httpSrv.Shutdown},
		{Name: "bus-flush", Run: ctrl.FlushContext},
		{Name: "repl-close", Run: func(context.Context) error {
			if manager != nil {
				manager.Close()
			}
			if p := shipper.Load(); p != nil {
				p.Close()
			}
			if follower != nil {
				follower.Close()
			}
			return nil
		}},
	}
	if spanExporter != nil {
		steps = append(steps, overload.Step{Name: "span-flush", Run: func(context.Context) error {
			return spanExporter.Close()
		}})
	}
	steps = append(steps, overload.Step{Name: "store-close", Run: ctrl.CloseContext})
	err = overload.Drain(drainCtx, gate, steps...)
	if err != nil {
		telemetry.Logger().Error("drain incomplete", "err", err)
		os.Exit(1)
	}
}

// parseShardTopology builds the boot shard map (version 1, default
// vnodes) from -shard-map — inline "id=url,..." or "@file" with one
// id=url per line — or from -peers, whose URLs take ids in list order.
func parseShardTopology(mapSpec, peers string) (*cluster.Map, error) {
	if mapSpec != "" && peers != "" {
		return nil, fmt.Errorf("-shard-map and -peers are mutually exclusive")
	}
	var entries []string
	switch {
	case peers != "":
		next := 0
		for _, u := range strings.Split(peers, ",") {
			if u = strings.TrimSpace(u); u != "" {
				entries = append(entries, fmt.Sprintf("%d=%s", next, u))
				next++
			}
		}
	case strings.HasPrefix(mapSpec, "@"):
		data, err := os.ReadFile(strings.TrimPrefix(mapSpec, "@"))
		if err != nil {
			return nil, err
		}
		for _, line := range strings.Split(string(data), "\n") {
			if line = strings.TrimSpace(line); line != "" && !strings.HasPrefix(line, "#") {
				entries = append(entries, line)
			}
		}
	default:
		for _, e := range strings.Split(mapSpec, ",") {
			if e = strings.TrimSpace(e); e != "" {
				entries = append(entries, e)
			}
		}
	}
	shards := make([]cluster.ShardInfo, 0, len(entries))
	for _, e := range entries {
		ids, url, ok := strings.Cut(e, "=")
		if !ok || url == "" {
			return nil, fmt.Errorf("want id=url, got %q", e)
		}
		id, err := strconv.Atoi(strings.TrimSpace(ids))
		if err != nil || id < 0 {
			return nil, fmt.Errorf("bad shard id in %q", e)
		}
		shards = append(shards, cluster.ShardInfo{ID: cluster.ShardID(id), Addr: strings.TrimSpace(url)})
	}
	return cluster.NewMap(1, 0, shards)
}

func orMem(dir string) string {
	if dir == "" {
		return "in-memory"
	}
	return dir
}

// loadOrCreateKey reads a hex key file, creating it with a fresh random
// key when missing.
func loadOrCreateKey(path string) ([]byte, error) {
	if data, err := os.ReadFile(path); err == nil {
		key, err := hex.DecodeString(strings.TrimSpace(string(data)))
		if err != nil {
			return nil, fmt.Errorf("decode %s: %w", path, err)
		}
		return key, nil
	} else if !os.IsNotExist(err) {
		return nil, err
	}
	key := make([]byte, 32)
	if _, err := rand.Read(key); err != nil {
		return nil, err
	}
	if err := os.MkdirAll(filepath.Dir(path), 0o700); err != nil && filepath.Dir(path) != "." {
		return nil, err
	}
	if err := os.WriteFile(path, []byte(hex.EncodeToString(key)+"\n"), 0o600); err != nil {
		return nil, err
	}
	log.Printf("generated new master key at %s", path)
	return key, nil
}
