// css-controller runs the CSS data controller as a web service.
//
// Usage:
//
//	css-controller [flags]
//
//	-addr      listen address (default :8080)
//	-data      data directory for durable state (default: in-memory)
//	-key-file  file holding the 32-byte master key in hex; created with a
//	           fresh random key if absent (requires -data to be useful)
//	-deny-default-consent  treat citizens as opted out unless they opt in
//	-scenario  provision the Trentino demo scenario (producers, consumers,
//	           event classes, standard policies, in-process gateways)
//	-pprof     expose net/http/pprof under /debug/pprof/ (opt-in; never
//	           enable on a public interface)
//	-log-json  structured JSON logs on stderr (default: text)
//	-slow      slow-operation warning threshold (default 250ms)
//	-max-inflight   global concurrent-request budget (default 256);
//	                requests beyond it are shed 429 by priority
//	-actor-rps      per-actor admission rate in requests/second
//	                (default 50; negative: unlimited)
//	-queue-cap      per-subscription bus queue bound (default 1024;
//	                <=0: unbounded)
//	-drain-timeout  graceful-shutdown budget on SIGTERM/SIGINT
//	                (default 10s): stop admitting, finish in-flight
//	                requests, flush the bus, fsync and close the stores
//
// The controller always serves /metrics (Prometheus text format) and
// /healthz alongside the /ws/ API.
//
// Without -scenario the controller starts empty; members join through
// the web-service API (see internal/transport for the endpoints).
package main

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"flag"
	"fmt"
	"log"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/event"
	"repro/internal/identity"
	"repro/internal/overload"
	"repro/internal/resilience"
	"repro/internal/telemetry"
	"repro/internal/transport"
	"repro/internal/workload"
)

// gatewayFlags collects repeatable -gateway producer=URL mappings.
type gatewayFlags map[string]string

func (g gatewayFlags) String() string { return fmt.Sprint(map[string]string(g)) }

func (g gatewayFlags) Set(v string) error {
	producer, url, ok := strings.Cut(v, "=")
	if !ok || producer == "" || url == "" {
		return fmt.Errorf("want producer=URL, got %q", v)
	}
	g[producer] = url
	return nil
}

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	dataDir := flag.String("data", "", "data directory (empty: in-memory)")
	keyFile := flag.String("key-file", "", "master key file (hex); created if absent")
	authKeyFile := flag.String("auth-key-file", "", "identity authority key file (hex); enables bearer-token authentication (mint tokens with css-token)")
	denyDefault := flag.Bool("deny-default-consent", false, "deny flows without an opt-in directive")
	scenario := flag.Bool("scenario", false, "provision the demo scenario")
	pprofFlag := flag.Bool("pprof", false, "expose net/http/pprof under /debug/pprof/")
	logJSON := flag.Bool("log-json", false, "structured JSON logs on stderr")
	slow := flag.Duration("slow", telemetry.DefaultSlowThreshold, "slow-operation warning threshold")
	maxInflight := flag.Int("max-inflight", overload.DefaultMaxInFlight, "global concurrent-request budget (negative: unbounded)")
	actorRPS := flag.Float64("actor-rps", overload.DefaultActorRPS, "per-actor admission rate, requests/second (negative: unlimited)")
	queueCap := flag.Int("queue-cap", 1024, "per-subscription bus queue bound (<=0: unbounded)")
	drainTimeout := flag.Duration("drain-timeout", 10*time.Second, "graceful-shutdown budget on SIGTERM")
	gateways := gatewayFlags{}
	flag.Var(gateways, "gateway", "attach a remote cooperation gateway as producer=URL (repeatable)")
	gatewayToken := flag.String("gateway-token", "", "bearer token presented to remote gateways (auth-enabled gateways)")
	flag.Parse()

	telemetry.SetLogger(telemetry.NewLogger(*logJSON, slog.LevelInfo))
	telemetry.SetSlowThreshold(*slow)

	cfg := core.Config{
		DataDir:        *dataDir,
		DefaultConsent: !*denyDefault,
		Metrics:        telemetry.Default(),
	}
	if *queueCap > 0 {
		// Bounded subscription queues: a wedged consumer sheds its own
		// oldest-unread traffic to the capped DLQ instead of growing the
		// broker without bound.
		cfg.Bus.MaxPending = *queueCap
	}
	if *keyFile != "" {
		key, err := loadOrCreateKey(*keyFile)
		if err != nil {
			log.Fatalf("master key: %v", err)
		}
		cfg.MasterKey = key
	}

	ctrl, err := core.New(cfg)
	if err != nil {
		log.Fatalf("controller: %v", err)
	}
	defer ctrl.Close()

	if *scenario {
		platform, err := workload.Provision(ctrl)
		if err != nil {
			log.Fatalf("scenario: %v", err)
		}
		policies, err := platform.StandardPolicies()
		if err != nil {
			log.Fatalf("scenario policies: %v", err)
		}
		log.Printf("scenario provisioned: %d producers, %d consumers, %d classes, %d policies",
			len(workload.Producers()), len(workload.Consumers()),
			len(ctrl.Catalog().Classes()), len(policies))
	}

	srv := transport.NewServer(ctrl)
	if len(gateways) > 0 {
		// Remote detail sources get a shared retry policy and one circuit
		// breaker per gateway; breaker states show up on /healthz so an
		// operator can see at a glance which producer is unreachable.
		resMetrics := resilience.NewMetrics(telemetry.Default())
		breakers := resilience.NewGroup(resilience.BreakerConfig{Metrics: resMetrics})
		retrier := resilience.NewRetrier(resilience.RetryPolicy{Metrics: resMetrics})
		for producer, url := range gateways {
			rg := transport.NewRemoteGateway(url, nil,
				transport.WithRetrier(retrier), transport.WithBreakerGroup(breakers))
			if *gatewayToken != "" {
				rg = rg.WithToken(*gatewayToken)
			}
			if err := ctrl.AttachGateway(event.ProducerID(producer), rg); err != nil {
				log.Fatalf("attach gateway %s: %v", producer, err)
			}
			telemetry.Logger().Info("remote gateway attached", "producer", producer, "url", url)
		}
		srv.AddHealthDetail(func() map[string]string {
			out := make(map[string]string)
			for name, state := range breakers.States() {
				out["breaker "+name] = state.String()
			}
			return out
		})
	}
	if *authKeyFile != "" {
		key, err := loadOrCreateKey(*authKeyFile)
		if err != nil {
			log.Fatalf("auth key: %v", err)
		}
		authority, err := identity.NewAuthority(key)
		if err != nil {
			log.Fatalf("authority: %v", err)
		}
		srv.RequireAuth(authority)
		telemetry.Logger().Info("bearer-token authentication enabled", "key", *authKeyFile)
	}

	gate := overload.NewGate(overload.Config{
		MaxInFlight: *maxInflight,
		ActorRPS:    *actorRPS,
		Metrics:     telemetry.Default(),
	})
	srv.SetAdmission(gate)

	mux := http.NewServeMux()
	mux.Handle("/", srv)
	if *pprofFlag {
		telemetry.RegisterPprof(mux)
		telemetry.Logger().Info("pprof profiling enabled", "path", "/debug/pprof/")
	}
	telemetry.Logger().Info("CSS data controller listening",
		"addr", *addr, "data", orMem(*dataDir),
		"metrics", "/metrics", "healthz", "/healthz",
		"max_inflight", *maxInflight, "actor_rps", *actorRPS,
		"queue_cap", *queueCap, "drain_timeout", drainTimeout.String(),
		"slow_threshold", slow.String())

	httpSrv := &http.Server{Addr: *addr, Handler: mux}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.ListenAndServe() }()
	select {
	case err := <-serveErr:
		log.Fatal(err)
	case <-ctx.Done():
	}

	// Graceful drain: the gate refuses new admissions first (503s carry
	// Retry-After, so clients back off onto a healthy replica), then each
	// step runs under the remaining -drain-timeout budget. Accepted work
	// is never abandoned: in-flight requests finish, queued bus messages
	// flush, and the stores fsync on Close.
	telemetry.Logger().Info("shutdown signal received, draining", "timeout", drainTimeout.String())
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	err = overload.Drain(drainCtx, gate,
		overload.Step{Name: "http-shutdown", Run: httpSrv.Shutdown},
		overload.Step{Name: "bus-flush", Run: ctrl.FlushContext},
		overload.Step{Name: "store-close", Run: ctrl.CloseContext},
	)
	if err != nil {
		telemetry.Logger().Error("drain incomplete", "err", err)
		os.Exit(1)
	}
}

func orMem(dir string) string {
	if dir == "" {
		return "in-memory"
	}
	return dir
}

// loadOrCreateKey reads a hex key file, creating it with a fresh random
// key when missing.
func loadOrCreateKey(path string) ([]byte, error) {
	if data, err := os.ReadFile(path); err == nil {
		key, err := hex.DecodeString(strings.TrimSpace(string(data)))
		if err != nil {
			return nil, fmt.Errorf("decode %s: %w", path, err)
		}
		return key, nil
	} else if !os.IsNotExist(err) {
		return nil, err
	}
	key := make([]byte, 32)
	if _, err := rand.Read(key); err != nil {
		return nil, err
	}
	if err := os.MkdirAll(filepath.Dir(path), 0o700); err != nil && filepath.Dir(path) != "." {
		return nil, err
	}
	if err := os.WriteFile(path, []byte(hex.EncodeToString(key)+"\n"), 0o600); err != nil {
		return nil, err
	}
	log.Printf("generated new master key at %s", path)
	return key, nil
}
