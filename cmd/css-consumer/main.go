// css-consumer is the consumer-side command line client of a CSS data
// controller.
//
// Usage:
//
//	css-consumer -controller URL -actor ACTOR [-codec xml|binary] <command> [flags]
//
// With -codec binary the client speaks the compact framing on every
// route, and its subscriptions ask for binary callback deliveries; the
// default is the paper's XML binding.
//
// Commands:
//
//	catalog                      browse the event catalog
//	subscribe -class C           subscribe and print notifications (runs
//	                             a callback endpoint; -listen addr)
//	inquire [-person P] [-class C] [-limit N]
//	                             query the events index
//	details -event ID -class C -purpose P [-trace T]
//	                             request the details of an event
//	                             (-trace joins an existing flow's trace)
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"

	"repro/internal/event"
	"repro/internal/index"
	"repro/internal/transport"
)

func main() {
	controller := flag.String("controller", "http://localhost:8080", "controller base URL")
	token := flag.String("token", "", "bearer token (for auth-enabled controllers)")
	actor := flag.String("actor", "", "consumer actor (required)")
	codecName := flag.String("codec", "", `wire codec: "xml" (default) or "binary"`)
	flag.Parse()
	if *actor == "" || flag.NArg() < 1 {
		flag.Usage()
		os.Exit(2)
	}
	codec, err := event.CodecByName(*codecName)
	if err != nil {
		log.Fatalf("-codec: %v", err)
	}
	client := transport.NewClient(*controller, nil, transport.WithCodec(codec))
	if *token != "" {
		client = client.WithToken(*token)
	}
	a := event.Actor(*actor)

	cmd, args := flag.Arg(0), flag.Args()[1:]
	switch cmd {
	case "catalog":
		runCatalog(client)
	case "subscribe":
		runSubscribe(client, a, args)
	case "inquire":
		runInquire(client, a, args)
	case "details":
		runDetails(client, a, args)
	default:
		log.Fatalf("unknown command %q", cmd)
	}
}

func runCatalog(client *transport.Client) {
	schemas, err := client.Catalog(context.Background())
	if err != nil {
		log.Fatal(err)
	}
	for _, s := range schemas {
		fmt.Printf("%s (v%d) — %s\n", s.Class(), s.Version(), s.Doc())
		for _, f := range s.Fields() {
			req := " "
			if f.Required {
				req = "*"
			}
			fmt.Printf("  %s %-20s %-9s %-11s %s\n", req, f.Name, f.Type, f.Sensitivity, f.Doc)
		}
	}
}

func runSubscribe(client *transport.Client, actor event.Actor, args []string) {
	fs := flag.NewFlagSet("subscribe", flag.ExitOnError)
	class := fs.String("class", "", "event class (required)")
	listen := fs.String("listen", "127.0.0.1:0", "callback listen address")
	probe := fs.Duration("resubscribe", transport.DefaultProbeInterval,
		"subscription liveness probe interval (0 disables re-subscription)")
	fs.Parse(args)
	if *class == "" {
		log.Fatal("-class is required")
	}

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		log.Fatal(err)
	}
	receiver := transport.NewNotificationReceiver(func(n *event.Notification) {
		fmt.Printf("[%s] %s person=%s from=%s trace=%s — %s\n",
			n.OccurredAt.Format("2006-01-02 15:04"), n.Class, n.PersonID, n.Producer, n.Trace, n.Summary)
	})
	go http.Serve(ln, receiver)
	callback := "http://" + ln.Addr().String()

	ctx := context.Background()
	if *probe <= 0 {
		id, err := client.Subscribe(ctx, actor, event.ClassID(*class), callback)
		if err != nil {
			log.Fatalf("subscribe: %v", err)
		}
		log.Printf("subscribed as %s (callback %s); ctrl-c to stop", id, callback)
	} else {
		// Keep the subscription alive across controller restarts: the
		// controller holds subscriptions in memory, so after a restart the
		// probe sees "unknown subscription" and re-subscribes.
		sub, err := transport.NewResubscriber(ctx, client, transport.ResubscribeConfig{
			Actor:    actor,
			Class:    event.ClassID(*class),
			Callback: callback,
			Interval: *probe,
			OnChange: func(oldID, newID string) {
				log.Printf("controller lost subscription %s; re-subscribed as %s", oldID, newID)
			},
		})
		if err != nil {
			log.Fatalf("subscribe: %v", err)
		}
		defer sub.Close()
		log.Printf("subscribed as %s (callback %s, probe every %s); ctrl-c to stop",
			sub.ID(), callback, *probe)
	}
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	<-sig
}

func runInquire(client *transport.Client, actor event.Actor, args []string) {
	fs := flag.NewFlagSet("inquire", flag.ExitOnError)
	person := fs.String("person", "", "person id")
	class := fs.String("class", "", "event class")
	limit := fs.Int("limit", 50, "max results")
	fs.Parse(args)

	res, err := client.InquireIndex(context.Background(), actor, index.Inquiry{
		PersonID: *person,
		Class:    event.ClassID(*class),
		Limit:    *limit,
	})
	if err != nil {
		log.Fatalf("inquire: %v", err)
	}
	for _, n := range res {
		fmt.Printf("%s  %s  person=%s  from=%s  %s\n",
			n.ID, n.OccurredAt.Format("2006-01-02"), n.PersonID, n.Producer, n.Summary)
	}
	fmt.Printf("(%d notifications)\n", len(res))
}

func runDetails(client *transport.Client, actor event.Actor, args []string) {
	fs := flag.NewFlagSet("details", flag.ExitOnError)
	id := fs.String("event", "", "global event id (required)")
	class := fs.String("class", "", "event class (required)")
	purpose := fs.String("purpose", string(event.PurposeHealthcareTreatment), "purpose of use")
	trace := fs.String("trace", "", "trace id to continue (joins the publish flow's trace; empty: fresh)")
	fs.Parse(args)
	if *id == "" || *class == "" {
		log.Fatal("-event and -class are required")
	}

	d, err := client.RequestDetails(context.Background(), &event.DetailRequest{
		Requester: actor,
		Class:     event.ClassID(*class),
		EventID:   event.GlobalID(*id),
		Purpose:   event.Purpose(*purpose),
		Trace:     *trace,
	})
	if err != nil {
		log.Fatalf("details: %v", err)
	}
	fmt.Printf("event %s (%s) — released fields:\n", *id, d.Class)
	for _, name := range d.FieldNames() {
		v, _ := d.Get(name)
		fmt.Printf("  %-20s = %s\n", name, v)
	}
}
