package main

import (
	"bytes"
	"context"
	"fmt"
	"log"
	"net"
	"net/http/httptest"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/crypto"
	"repro/internal/event"
	"repro/internal/metrics"
	"repro/internal/policy"
	"repro/internal/schema"
	"repro/internal/transport"
)

// runE18 measures publish scale-out across controller shards: the same
// open-loop HTTP publish storm driven at clusters of growing width
// through the shard-routing client (pseudonym-computed routing, so
// every publish goes straight to its owner). The speedup column is the
// scale-out claim of DESIGN.md §12; shards=1 is the sharding tax.
func runE18(quick bool) {
	events := pick(quick, 2000, 20000)
	widths := pick(quick, []int{1, 2}, []int{1, 2, 4})
	conns := 16

	var base float64
	tbl := metrics.NewTable("shards", "conns", "events", "pub k-ev/s", "speedup", "publish lat mean/p50/p95/p99")
	for _, n := range widths {
		sc, closeAll := shardedCluster(n)
		lat := metrics.NewHistogram()
		var (
			mu   sync.Mutex
			seq  atomic.Int64
			next atomic.Int64
			wg   sync.WaitGroup
		)
		start := time.Now()
		for w := 0; w < conns; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for next.Add(1) <= int64(events) {
					i := seq.Add(1)
					t0 := time.Now()
					_, err := sc.Publish(context.Background(), &event.Notification{
						SourceID:   event.SourceID(fmt.Sprintf("e18-%d-%09d", n, i)),
						Class:      schema.ClassBloodTest,
						PersonID:   fmt.Sprintf("PRS-%04d", i%1000),
						OccurredAt: time.Now(),
						Producer:   "hospital",
					})
					if err != nil {
						log.Fatal(err)
					}
					d := time.Since(t0)
					mu.Lock()
					lat.Record(d)
					mu.Unlock()
				}
			}()
		}
		wg.Wait()
		elapsed := time.Since(start)
		closeAll()

		rate := metrics.Rate(events, elapsed)
		if n == widths[0] {
			base = rate
		}
		tbl.Row(n, conns, events, rate/1000, fmt.Sprintf("%.2fx", rate/base), lat.Summary())
	}
	tbl.Write(os.Stdout)
	fmt.Println("shape: pub/s grows near-linearly with shards while p99 holds — the ring")
	fmt.Println("spreads persons evenly and the client needs no cross-shard coordination.")
}

// shardedCluster boots n sharded controllers over one master key, each
// behind its own HTTP server on a pre-bound listener (the shard map
// must name real addresses before the controllers exist), and returns a
// pseudonym-routing sharded client plus a teardown closure.
func shardedCluster(n int) (*transport.ShardedClient, func()) {
	key := bytes.Repeat([]byte{9}, crypto.KeySize)
	lns := make([]net.Listener, n)
	shards := make([]cluster.ShardInfo, n)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			log.Fatal(err)
		}
		lns[i] = ln
		shards[i] = cluster.ShardInfo{ID: cluster.ShardID(i), Addr: "http://" + ln.Addr().String()}
	}
	m, err := cluster.NewMap(1, 0, shards)
	if err != nil {
		log.Fatal(err)
	}
	ctrls := make([]*core.Controller, n)
	srvs := make([]*httptest.Server, n)
	for i := range ctrls {
		c, err := core.New(core.Config{
			DefaultConsent: true, Codec: event.Binary, MasterKey: key,
			ShardID: cluster.ShardID(i), ShardMap: m,
		})
		if err != nil {
			log.Fatal(err)
		}
		if err := c.RegisterProducer("hospital", "H"); err != nil {
			log.Fatal(err)
		}
		if err := c.DeclareClass("hospital", schema.BloodTest()); err != nil {
			log.Fatal(err)
		}
		if err := c.RegisterConsumer("org", "O"); err != nil {
			log.Fatal(err)
		}
		if _, err := c.DefinePolicy(&policy.Policy{
			Producer: "hospital", Actor: "org", Class: schema.ClassBloodTest,
			Purposes: []event.Purpose{"care"}, Fields: []event.FieldName{"patient-id"},
		}); err != nil {
			log.Fatal(err)
		}
		for s := 0; s < 4; s++ {
			if _, err := c.Subscribe(event.Actor(fmt.Sprintf("org/d%02d", s)), schema.ClassBloodTest,
				func(*event.Notification) {}); err != nil {
				log.Fatal(err)
			}
		}
		srv := httptest.NewUnstartedServer(transport.NewServer(c))
		srv.Listener.Close()
		srv.Listener = lns[i]
		srv.Start()
		ctrls[i], srvs[i] = c, srv
	}
	sc, err := transport.NewShardedClient(m, func(info cluster.ShardInfo) *transport.Client {
		return transport.NewClient(info.Addr, nil, transport.WithCodec(event.Binary))
	}, transport.WithPseudonym(ctrls[0].Pseudonym))
	if err != nil {
		log.Fatal(err)
	}
	return sc, func() {
		for i := range ctrls {
			ctrls[i].Flush(time.Minute)
			srvs[i].Close()
			ctrls[i].Close()
		}
	}
}
