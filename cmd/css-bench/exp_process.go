package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"repro/internal/metrics"
	"repro/internal/process"
	"repro/internal/reporting"
	"repro/internal/schema"
	"repro/internal/workload"
)

// runE15 characterizes the process-monitoring layer (the platform's
// purpose, §1): observe throughput, and detection accuracy against the
// ground truth of a correlated care-episode stream (post-discharge
// pathway with configurable drop/late rates plus unrelated noise).
func runE15(quick bool) {
	episodes := pick(quick, 2000, 20000)

	pathway := &process.Pathway{
		Name:    "post-discharge care",
		Trigger: schema.ClassDischarge,
		Stages: []process.Stage{
			{Name: "home care", Class: schema.ClassHomeCare, Within: 7 * 24 * time.Hour},
			{Name: "nursing", Class: schema.ClassNursingService, Within: 14 * 24 * time.Hour},
		},
	}
	m, err := process.NewMonitor(pathway)
	if err != nil {
		log.Fatal(err)
	}

	gen := workload.NewEpisodeGenerator(workload.EpisodeConfig{
		Seed: 15, People: episodes, // distinct person per episode
		HomeCareDropRate: 0.12, HomeCareLateRate: 0.08,
		NursingDropRate: 0.1, NursingLateRate: 0.06,
		Noise: 2,
	})
	stream, truth := gen.Stream(episodes)

	start := time.Now()
	for _, n := range stream {
		m.Observe(n)
	}
	elapsed := time.Since(start)
	report := m.Snapshot(stream[len(stream)-1].OccurredAt.Add(60 * 24 * time.Hour))

	// Ground-truth mapping (see workload.EpisodeOutcome): at end of
	// stream, completed = on-time ∪ nursing-late; stalled = the rest.
	wantCompleted := truth[workload.EpisodeComplete] + truth[workload.EpisodeNursingLate]
	wantStalled := episodes - wantCompleted
	detected := len(report.Stalled) + len(report.Active)

	tbl := metrics.NewTable("metric", "value")
	tbl.Row("episodes (events)", fmt.Sprintf("%d (%d)", episodes, len(stream)))
	tbl.Row("observe k-ev/s", metrics.Rate(len(stream), elapsed)/1000)
	tbl.Row("completed: monitor / truth", fmt.Sprintf("%d / %d", len(report.Completed), wantCompleted))
	tbl.Row("care gaps: monitor / truth", fmt.Sprintf("%d / %d", detected, wantStalled))
	tbl.Row("detection accuracy", fmt.Sprintf("%.2f%%", 100*float64(detected)/float64(maxOf(wantStalled, 1))))
	tbl.Row("noise events ignored", report.Unrelated)
	tbl.Write(os.Stdout)
	fmt.Println("shape: monitoring keeps up with the full notification stream and recovers the")
	fmt.Println("generator's ground truth exactly — every dropped or late care hand-off is")
	fmt.Println("detected from the who/what/when/where of notifications alone.")
}

func maxOf(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// runE16 characterizes the accountability aggregation (§2): throughput of
// the reporting pipeline and the size of the aggregate the governing body
// receives instead of raw data.
func runE16(quick bool) {
	events := pick(quick, 20000, 200000)
	agg := reporting.NewAggregator(reporting.Monthly)
	gen := workload.NewGenerator(workload.Config{Seed: 16, People: 3000})

	start := time.Now()
	for i := 0; i < events; i++ {
		n, _ := gen.Next()
		agg.Observe(n)
	}
	elapsed := time.Since(start)
	rows := agg.Report()

	distinctBuckets := map[string]bool{}
	for _, r := range rows {
		distinctBuckets[r.Bucket] = true
	}
	tbl := metrics.NewTable("metric", "value")
	tbl.Row("events aggregated", events)
	tbl.Row("observe k-ev/s", metrics.Rate(events, elapsed)/1000)
	tbl.Row("report rows (producer×class×month)", len(rows))
	tbl.Row("months covered", len(distinctBuckets))
	tbl.Row("reduction factor (events per row)", float64(events)/float64(len(rows)))
	tbl.Write(os.Stdout)
	fmt.Println("shape: the governing body's accountability view is a few hundred aggregate")
	fmt.Println("rows instead of the raw event stream — produced from notifications alone at")
	fmt.Println("millions of events per second.")
}
