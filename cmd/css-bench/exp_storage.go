package main

import (
	"bytes"
	"fmt"
	"log"
	"os"
	"time"

	"repro/internal/audit"
	"repro/internal/crypto"
	"repro/internal/event"
	"repro/internal/index"
	"repro/internal/metrics"
	"repro/internal/store"
)

func benchKeyring() *crypto.Keyring {
	k, err := crypto.NewKeyring(bytes.Repeat([]byte{7}, crypto.KeySize))
	if err != nil {
		log.Fatal(err)
	}
	return k
}

// fillIndex inserts n notifications over nPeople persons and returns the
// index plus the elapsed insert time.
func fillIndex(ix *index.Index, n, nPeople int) time.Duration {
	start := time.Now()
	base := time.Date(2010, 1, 1, 0, 0, 0, 0, time.UTC)
	for i := 0; i < n; i++ {
		err := ix.Put(&event.Notification{
			ID:          event.GlobalID(fmt.Sprintf("evt-%08d", i)),
			Class:       event.ClassID(fmt.Sprintf("class.c%d", i%8)),
			PersonID:    fmt.Sprintf("PRS-%06d", i%nPeople),
			Summary:     "synthetic event",
			OccurredAt:  base.Add(time.Duration(i) * time.Minute),
			Producer:    "hospital",
			PublishedAt: base.Add(time.Duration(i)*time.Minute + time.Second),
		})
		if err != nil {
			log.Fatal(err)
		}
	}
	return time.Since(start)
}

// runE5 compares the encrypted events index with the plaintext baseline.
func runE5(quick bool) {
	n := pick(quick, 5000, 50000)
	queries := pick(quick, 200, 2000)
	nPeople := n / 20

	tbl := metrics.NewTable("index mode", "insert k-ev/s", "person inquiry mean/p50/p95/p99", "id leak in store")
	for _, mode := range []string{"encrypted", "plaintext"} {
		st := store.OpenMemory()
		var keys *crypto.Keyring
		if mode == "encrypted" {
			keys = benchKeyring()
		}
		ix := index.New(st, keys)
		elapsed := fillIndex(ix, n, nPeople)

		// Person-scoped inquiry latency via the pseudonym index.
		lat := metrics.NewHistogram()
		for i := 0; i < queries; i++ {
			person := fmt.Sprintf("PRS-%06d", i%nPeople)
			lat.Time(func() {
				if _, err := ix.Inquire(index.Inquiry{PersonID: person}); err != nil {
					log.Fatal(err)
				}
			})
		}

		// Does any raw identifier appear anywhere in the store?
		leaked := false
		st.AscendPrefix("", func(k string, v []byte) bool {
			if bytes.Contains([]byte(k), []byte("PRS-")) || bytes.Contains(v, []byte("PRS-")) {
				leaked = true
				return false
			}
			return true
		})
		tbl.Row(mode, metrics.Rate(n, elapsed)/1000, lat.Summary(), leaked)
	}
	tbl.Write(os.Stdout)
	fmt.Println("shape: encryption costs a constant factor on insert and inquiry while the")
	fmt.Println("pseudonym index keeps person lookups sub-linear; only the plaintext baseline")
	fmt.Println("leaks identifiers into the store.")
}

// runE8 measures events-index inquiry latency against index size.
func runE8(quick bool) {
	sizes := pick(quick, []int{1000, 10000}, []int{1000, 10000, 100000, 500000})
	queries := pick(quick, 100, 500)

	tbl := metrics.NewTable("index size", "person inquiry", "class+window inquiry", "full scan limit 100")
	for _, n := range sizes {
		ix := index.New(store.OpenMemory(), benchKeyring())
		fillIndex(ix, n, n/20)
		base := time.Date(2010, 1, 1, 0, 0, 0, 0, time.UTC)

		person := metrics.NewHistogram()
		window := metrics.NewHistogram()
		scan := metrics.NewHistogram()
		for i := 0; i < queries; i++ {
			pid := fmt.Sprintf("PRS-%06d", i%(n/20))
			person.Time(func() {
				if _, err := ix.Inquire(index.Inquiry{PersonID: pid}); err != nil {
					log.Fatal(err)
				}
			})
			from := base.Add(time.Duration(i%n) * time.Minute)
			window.Time(func() {
				if _, err := ix.Inquire(index.Inquiry{
					Class: "class.c0", From: from, To: from.Add(24 * time.Hour), Limit: 50,
				}); err != nil {
					log.Fatal(err)
				}
			})
			scan.Time(func() {
				if _, err := ix.Inquire(index.Inquiry{Producer: "hospital", Limit: 100}); err != nil {
					log.Fatal(err)
				}
			})
		}
		tbl.Row(n, person.Summary(), window.Summary(), scan.Summary())
	}
	tbl.Write(os.Stdout)
	fmt.Println("shape: person and class+window inquiries ride secondary indexes and stay")
	fmt.Println("near-flat as the index grows; only the unindexed scan path is bounded by Limit.")
}

// runE6 measures the audit trail: append overhead per access request and
// full-chain verification time as the log grows.
func runE6(quick bool) {
	sizes := pick(quick, []int{1000, 10000}, []int{1000, 10000, 100000})

	tbl := metrics.NewTable("log size", "append k-rec/s", "append mean", "verify full chain", "search by actor")
	for _, n := range sizes {
		st := store.OpenMemory()
		l, err := audit.Open(st)
		if err != nil {
			log.Fatal(err)
		}
		appendLat := metrics.NewHistogram()
		start := time.Now()
		for i := 0; i < n; i++ {
			rec := audit.Record{
				Kind:    audit.KindDetailRequest,
				Actor:   fmt.Sprintf("actor-%03d", i%50),
				EventID: event.GlobalID(fmt.Sprintf("evt-%06d", i)),
				Class:   "class.c0",
				Purpose: "healthcare-treatment",
				Outcome: "permit",
			}
			s := time.Now()
			if _, err := l.Append(rec); err != nil {
				log.Fatal(err)
			}
			appendLat.Record(time.Since(s))
		}
		elapsed := time.Since(start)

		verifyStart := time.Now()
		if err := l.Verify(); err != nil {
			log.Fatal(err)
		}
		verifyElapsed := time.Since(verifyStart)

		searchStart := time.Now()
		if _, err := l.Search(audit.Query{Actor: "actor-007"}); err != nil {
			log.Fatal(err)
		}
		searchElapsed := time.Since(searchStart)

		tbl.Row(n, metrics.Rate(n, elapsed)/1000, appendLat.Mean(), verifyElapsed, searchElapsed)
	}
	tbl.Write(os.Stdout)
	fmt.Println("shape: per-request audit cost is a flat few microseconds (hash + store put);")
	fmt.Println("verification and search are linear in the chain, run offline by the guarantor.")
}
