package main

import (
	"fmt"
	"log"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/event"
	"repro/internal/metrics"
	"repro/internal/policy"
	"repro/internal/schema"
)

// runE1 measures publish throughput and end-to-end notification latency
// as the subscriber fan-out grows (Fig. 2's routing fabric).
func runE1(quick bool) {
	events := pick(quick, 500, 5000)
	fanouts := pick(quick, []int{1, 8, 64}, []int{1, 4, 16, 64, 256})

	tbl := metrics.NewTable("subscribers", "events", "publish k-ev/s", "deliveries", "delivery lat mean/p50/p95/p99")
	for _, subs := range fanouts {
		c, err := core.New(core.Config{DefaultConsent: true})
		if err != nil {
			log.Fatal(err)
		}
		if err := c.RegisterProducer("hospital", "H"); err != nil {
			log.Fatal(err)
		}
		if err := c.DeclareClass("hospital", schema.BloodTest()); err != nil {
			log.Fatal(err)
		}
		if err := c.RegisterConsumer("consumer", "C"); err != nil {
			log.Fatal(err)
		}
		// One org-level policy authorizes every department subscriber.
		if _, err := c.DefinePolicy(&policy.Policy{
			Producer: "hospital",
			Actor:    "consumer",
			Class:    schema.ClassBloodTest,
			Purposes: []event.Purpose{event.PurposeHealthcareTreatment},
			Fields:   []event.FieldName{"patient-id"},
		}); err != nil {
			log.Fatal(err)
		}

		lat := metrics.NewHistogram()
		var delivered atomic.Uint64
		var wg sync.WaitGroup
		wg.Add(events * subs)
		for i := 0; i < subs; i++ {
			actor := event.Actor(fmt.Sprintf("consumer/dept-%03d", i))
			if _, err := c.Subscribe(actor, schema.ClassBloodTest, func(n *event.Notification) {
				lat.Record(time.Since(n.PublishedAt))
				delivered.Add(1)
				wg.Done()
			}); err != nil {
				log.Fatal(err)
			}
		}

		start := time.Now()
		for i := 0; i < events; i++ {
			if _, err := c.Publish(&event.Notification{
				SourceID:   event.SourceID(fmt.Sprintf("src-%06d", i)),
				Class:      schema.ClassBloodTest,
				PersonID:   fmt.Sprintf("PRS-%04d", i%500),
				Summary:    "blood test",
				OccurredAt: time.Now(),
				Producer:   "hospital",
			}); err != nil {
				log.Fatal(err)
			}
		}
		publishElapsed := time.Since(start)
		wg.Wait()
		c.Close()

		tbl.Row(subs, events,
			metrics.Rate(events, publishElapsed)/1000,
			delivered.Load(),
			lat.Summary())
	}
	tbl.Write(os.Stdout)
	fmt.Println("shape: deliveries scale linearly with fan-out while publishers never block;")
	fmt.Println("delivery latency grows with fan-out (subscriptions share cores).")
}
