package main

import (
	"fmt"
	"log"
	"os"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/event"
	"repro/internal/metrics"
	"repro/internal/schema"
	"repro/internal/workload"
)

// producedEvent is one published event of the E4 stream.
type producedEvent struct {
	gid   event.GlobalID
	class event.ClassID
}

// scenarioPlatform provisions an in-memory controller with the full
// Trentino roster and the standard policy set.
func scenarioPlatform() (*core.Controller, *workload.Platform) {
	c, err := core.New(core.Config{DefaultConsent: true})
	if err != nil {
		log.Fatal(err)
	}
	p, err := workload.Provision(c)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := p.StandardPolicies(); err != nil {
		log.Fatal(err)
	}
	return c, p
}

// sensitiveFieldsByClass maps each domain class to its sensitive fields.
func sensitiveFieldsByClass() map[event.ClassID]map[event.FieldName]bool {
	out := map[event.ClassID]map[event.FieldName]bool{}
	for _, s := range schema.Domain() {
		m := map[event.FieldName]bool{}
		for _, f := range s.FieldsWith(schema.Sensitive) {
			m[f] = true
		}
		out[s.Class()] = m
	}
	return out
}

// runE4 compares sensitive-data exposure between the two-phase CSS
// protocol and the one-phase baselines (full-document point-to-point and
// centralized warehouse), sweeping the fraction of events whose details
// the consumer actually requests.
func runE4(quick bool) {
	events := pick(quick, 500, 5000)
	rates := []float64{0.01, 0.05, 0.20, 1.00}
	const fanout = 3 // interested parties per event in the baselines
	sensitiveOf := sensitiveFieldsByClass()

	tbl := metrics.NewTable("approach", "detail-rate", "payload bytes moved", "sensitive bytes exposed", "vs CSS sensitive")
	for _, rate := range rates {
		// --- CSS two-phase ---------------------------------------------
		ctrl, platform := scenarioPlatform()
		gen := workload.NewGenerator(workload.Config{Seed: 4, People: 500})
		var stream []producedEvent
		var notifBytes uint64
		for i := 0; i < events; i++ {
			n, d := gen.Next()
			gid, err := platform.Produce(n, d)
			if err != nil {
				log.Fatal(err)
			}
			wire, _ := event.EncodeNotification(n)
			notifBytes += uint64(len(wire))
			stream = append(stream, producedEvent{gid, n.Class})
		}
		// The family doctor requests details for a fraction of events;
		// count the sensitive bytes in each permitted response.
		requested := int(rate * float64(events))
		if requested > len(stream) {
			requested = len(stream)
		}
		var cssSensitive uint64
		for i := 0; i < requested; i++ {
			ev := stream[i]
			d, err := ctrl.RequestDetails(&event.DetailRequest{
				Requester: "family-doctor", Class: ev.class,
				EventID: ev.gid, Purpose: event.PurposeHealthcareTreatment,
			})
			if err != nil {
				continue // denied: zero exposure
			}
			for f, v := range d.Fields {
				if sensitiveOf[ev.class][f] {
					cssSensitive += uint64(len(v))
				}
			}
		}
		cssMoved := notifBytes
		for _, gw := range platform.Gateways {
			cssMoved += gw.Stats().BytesReleased
		}
		ctrl.Close()

		// --- point-to-point full documents -------------------------------
		p2p := baseline.NewPointToPoint()
		gen2 := workload.NewGenerator(workload.Config{Seed: 4, People: 500})
		for ci := 0; ci < fanout; ci++ {
			for _, prod := range workload.Producers() {
				p2p.Connect(prod.ID, event.Actor(fmt.Sprintf("consumer-%d", ci)))
			}
		}
		for i := 0; i < events; i++ {
			n, d := gen2.Next()
			for ci := 0; ci < fanout; ci++ {
				if _, err := p2p.SendDocument(n.Producer, event.Actor(fmt.Sprintf("consumer-%d", ci)), d, sensitiveOf[d.Class]); err != nil {
					log.Fatal(err)
				}
			}
		}
		p2pStats := p2p.Stats()

		// --- centralized warehouse ----------------------------------------
		wh := baseline.NewWarehouse()
		gen3 := workload.NewGenerator(workload.Config{Seed: 4, People: 500})
		var whSensitive uint64
		for i := 0; i < events; i++ {
			_, d := gen3.Next()
			wh.Load(d)
			for f, v := range d.Fields {
				if sensitiveOf[d.Class][f] {
					whSensitive += uint64(len(v))
				}
			}
		}
		whStats := wh.Stats()

		ratio := func(x uint64) string {
			if cssSensitive == 0 {
				return "inf"
			}
			return fmt.Sprintf("%.1fx", float64(x)/float64(cssSensitive))
		}
		tbl.Row("CSS two-phase", rate, cssMoved, cssSensitive, "1.0x")
		tbl.Row("point-to-point", rate, p2pStats.BytesSent, p2pStats.SensitiveBytes, ratio(p2pStats.SensitiveBytes))
		tbl.Row("warehouse copy", rate, whStats.BytesCopied, whSensitive, ratio(whSensitive))
	}
	tbl.Write(os.Stdout)
	fmt.Println("shape: baselines expose the full sensitive payload of every event regardless")
	fmt.Println("of need; CSS exposure scales with the detail-request rate and the policies'")
	fmt.Println("field selections (the doctor's policies obfuscate e.g. the AIDS test).")
}

// runE7 quantifies the minimal-usage claim: how well three policy
// regimes deliver exactly the fields each consumer task needs.
func runE7(quick bool) {
	events := pick(quick, 300, 2000)

	// Task: the statistics department needs {age, sex, autonomy-score} of
	// autonomy tests — nothing more (the Definition 2 example).
	needed := []event.FieldName{"age", "sex", "autonomy-score"}
	neededSet := map[event.FieldName]bool{}
	for _, f := range needed {
		neededSet[f] = true
	}
	s := schema.AutonomyTest()
	allFields := s.FieldNames()
	ordinary := s.FieldsWith(schema.Ordinary)

	type regime struct {
		name   string
		fields []event.FieldName
	}
	regimes := []regime{
		{"CSS event-level policy", needed},              // exactly the elicited set
		{"all-or-nothing grant", allFields},             // warehouse-style table grant
		{"over-constraining (ordinary only)", ordinary}, // blanket sensitivity ban
	}

	gen := workload.NewGenerator(workload.Config{Seed: 11, People: 300,
		Classes: []*schema.Schema{s}})
	details := make([]*event.Detail, events)
	for i := range details {
		_, d := gen.Next()
		details[i] = d
	}

	tbl := metrics.NewTable("regime", "needed coverage %", "excess fields/event", "excess bytes/event", "task feasible")
	for _, r := range regimes {
		var covered, excessFields, excessBytes int
		for _, d := range details {
			filtered := d.Filter(r.fields)
			for f := range neededSet {
				if _, ok := filtered.Get(f); ok {
					covered++
				}
			}
			for f, v := range filtered.Fields {
				if !neededSet[f] {
					excessFields++
					excessBytes += len(v)
				}
			}
		}
		coverage := 100 * float64(covered) / float64(len(details)*len(needed))
		tbl.Row(r.name, coverage,
			float64(excessFields)/float64(len(details)),
			float64(excessBytes)/float64(len(details)),
			coverage == 100)
	}
	tbl.Write(os.Stdout)
	fmt.Println("shape: event-level policies are the only regime with full task coverage and")
	fmt.Println("zero excess — all-or-nothing over-shares, sensitivity bans under-share")
	fmt.Println("(autonomy-score is sensitive, so the blanket ban breaks the statistics task).")
}

// runE9 reproduces the onboarding-cost claim: integration artifacts for
// N institutions, point-to-point versus through the data controller hub.
func runE9(quick bool) {
	sizes := []int{2, 4, 8, 16, 32, 64}
	tbl := metrics.NewTable("institutions (P=C)", "p2p artifacts", "hub artifacts", "ratio")
	for _, n := range sizes {
		p2p, hub := baseline.ArtifactCount(n, n)
		tbl.Row(2*n, p2p, hub, float64(p2p)/float64(hub))
	}
	tbl.Write(os.Stdout)

	// Measured counterpart: artifacts touched when one more producer
	// joins the live platform — constant, independent of platform size.
	ctrl, _ := scenarioPlatform()
	defer ctrl.Close()
	before := len(ctrl.Catalog().Producers()) + len(ctrl.Catalog().Consumers()) + len(ctrl.Catalog().Classes())
	if err := ctrl.RegisterProducer("new-clinic", "New clinic"); err != nil {
		log.Fatal(err)
	}
	extra := schema.MustNew("clinic.visit", 1, "outpatient visit",
		schema.Field{Name: "patient-id", Type: schema.String, Required: true, Sensitivity: schema.Identifying},
		schema.Field{Name: "report", Type: schema.String, Sensitivity: schema.Sensitive})
	if err := ctrl.DeclareClass("new-clinic", extra); err != nil {
		log.Fatal(err)
	}
	after := len(ctrl.Catalog().Producers()) + len(ctrl.Catalog().Consumers()) + len(ctrl.Catalog().Classes())
	fmt.Printf("measured: onboarding one producer touched %d catalog artifacts (independent of the %d existing members)\n",
		after-before, before)
	fmt.Println("shape: hub artifacts grow O(N), point-to-point O(N²) — the progressive-join")
	fmt.Println("property that motivated the CSS architecture (§1).")
}
