// css-bench regenerates every experiment in EXPERIMENTS.md: the paper
// (an industrial experience report) publishes no quantitative tables, so
// each of its figures and prose claims is mapped to a characterization
// experiment (see DESIGN.md §5). The harness prints one table per
// experiment; EXPERIMENTS.md records a reference run.
//
// Usage:
//
//	css-bench [-exp e1|e2|...|e12|all] [-quick]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"sort"
	"strings"
)

// experiment is one runnable table generator.
type experiment struct {
	id    string
	title string
	run   func(q bool) // q: quick mode (smaller parameters)
}

var experiments = []experiment{
	{"e1", "Fig. 2 — pub/sub routing: publish throughput and delivery latency vs subscribers", runE1},
	{"e2", "Fig. 4 / Algorithms 1-2 — detail request resolution with stage breakdown", runE2},
	{"e3", "Fig. 8 — XACML PDP throughput vs policy repository size", runE3},
	{"e4", "§1 claim — minimal usage: two-phase vs full-publication baselines", runE4},
	{"e5", "§4 — encrypted events index vs plaintext baseline", runE5},
	{"e6", "§4 — audit trail overhead and verification", runE6},
	{"e7", "§1 claim — event-level policies vs all-or-nothing and over-constraining", runE7},
	{"e8", "§4 — events index inquiry scaling", runE8},
	{"e9", "§1 claim — onboarding cost: hub vs point-to-point", runE9},
	{"e10", "§4 — temporal decoupling: detail retrieval months later, source offline", runE10},
	{"e11", "§5.2 — subscription authorization (deny-by-default) throughput", runE11},
	{"e12", "§5.1/§6 — elicitation → XACML compilation round trip", runE12},
	{"e13", "ablation D3 — details at producer vs controller-side cache", runE13},
	{"e14", "ablation — WAL durability modes and recovery", runE14},
	{"e15", "§1 — process monitoring over the notification stream", runE15},
	{"e16", "§2 — accountability aggregates for the governing body", runE16},
	{"e18", "DESIGN §12 — sharded controller: publish scale-out across cluster widths", runE18},
}

func main() {
	exp := flag.String("exp", "all", "experiment id (e1..e12) or 'all'")
	quick := flag.Bool("quick", false, "smaller parameters for a fast pass")
	flag.Parse()

	want := strings.Split(*exp, ",")
	sort.Strings(want)
	matched := 0
	for _, e := range experiments {
		if *exp != "all" && !contains(want, e.id) {
			continue
		}
		matched++
		fmt.Printf("=== %s: %s ===\n", strings.ToUpper(e.id), e.title)
		e.run(*quick)
		fmt.Println()
	}
	if matched == 0 {
		log.Printf("no experiment matches %q; known: e1..e18, all", *exp)
		os.Exit(2)
	}
}

func contains(list []string, s string) bool {
	for _, x := range list {
		if x == s {
			return true
		}
	}
	return false
}

// pick returns quick or full parameters.
func pick[T any](quick bool, q, full T) T {
	if quick {
		return q
	}
	return full
}
