package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/event"
	"repro/internal/gateway"
	"repro/internal/idmap"
	"repro/internal/metrics"
	"repro/internal/policy"
	"repro/internal/schema"
	"repro/internal/store"
	"repro/internal/xacml"
)

// detailRig is the fixture of E2: a controller with one target event and
// a policy repository padded to a given size.
type detailRig struct {
	ctrl *core.Controller
	gid  event.GlobalID
	req  *event.DetailRequest

	// component-level replicas for the stage breakdown
	ids      *idmap.Map
	repo     *policy.Repository
	pdp      *xacml.PDP
	targetID string
	gw       *gateway.Gateway
	src      event.SourceID
}

func newDetailRig(nPolicies int) *detailRig {
	c, err := core.New(core.Config{DefaultConsent: true})
	if err != nil {
		log.Fatal(err)
	}
	if err := c.RegisterProducer("hospital", "H"); err != nil {
		log.Fatal(err)
	}
	if err := c.DeclareClass("hospital", schema.BloodTest()); err != nil {
		log.Fatal(err)
	}
	if err := c.RegisterConsumer("family-doctor", "D"); err != nil {
		log.Fatal(err)
	}
	gw, err := gateway.New("hospital", store.OpenMemory(), c.Catalog())
	if err != nil {
		log.Fatal(err)
	}
	if err := c.AttachGateway("hospital", gw); err != nil {
		log.Fatal(err)
	}

	// Pad the repository with distractor policies for other actors.
	for i := 0; i < nPolicies-1; i++ {
		if _, err := c.DefinePolicy(&policy.Policy{
			Producer: "hospital",
			Actor:    event.Actor(fmt.Sprintf("other-consumer-%06d", i)),
			Class:    schema.ClassBloodTest,
			Purposes: []event.Purpose{event.PurposeAdministration},
			Fields:   []event.FieldName{"patient-id"},
		}); err != nil {
			log.Fatal(err)
		}
	}
	target := &policy.Policy{
		Producer: "hospital",
		Actor:    "family-doctor",
		Class:    schema.ClassBloodTest,
		Purposes: []event.Purpose{event.PurposeHealthcareTreatment},
		Fields:   []event.FieldName{"patient-id", "exam-date", "hemoglobin"},
	}
	if _, err := c.DefinePolicy(target); err != nil {
		log.Fatal(err)
	}

	d := event.NewDetail(schema.ClassBloodTest, "src-1", "hospital").
		Set("patient-id", "PRS-1").
		Set("exam-date", "2010-05-30").
		Set("hemoglobin", "13.5").
		Set("aids-test", "negative").
		Set("lab-notes", "routine")
	if err := gw.Persist(d); err != nil {
		log.Fatal(err)
	}
	gid, err := c.Publish(&event.Notification{
		SourceID: "src-1", Class: schema.ClassBloodTest, PersonID: "PRS-1",
		Summary: "blood test", OccurredAt: time.Now(), Producer: "hospital",
	})
	if err != nil {
		log.Fatal(err)
	}

	// Component replicas for stage timing: same policy load, same data.
	ids := idmap.New(store.OpenMemory())
	ids.Assign("hospital", "src-1", schema.ClassBloodTest)
	repo := policy.NewRepository()
	pdp, _ := xacml.NewPDP(xacml.FirstApplicable)
	for i := 0; i < nPolicies-1; i++ {
		p := &policy.Policy{
			ID:       policy.ID(fmt.Sprintf("pad-%06d", i)),
			Producer: "hospital",
			Actor:    event.Actor(fmt.Sprintf("other-consumer-%06d", i)),
			Class:    schema.ClassBloodTest,
			Purposes: []event.Purpose{event.PurposeAdministration},
			Fields:   []event.FieldName{"patient-id"},
		}
		if _, err := repo.Add(p); err != nil {
			log.Fatal(err)
		}
		compiled, err := xacml.Compile(p)
		if err != nil {
			log.Fatal(err)
		}
		if err := pdp.Add(compiled); err != nil {
			log.Fatal(err)
		}
	}
	target2 := *target
	target2.ID = "target"
	if _, err := repo.Add(&target2); err != nil {
		log.Fatal(err)
	}
	compiled, _ := xacml.Compile(&target2)
	pdp.Add(compiled)

	req := &event.DetailRequest{
		Requester: "family-doctor", Class: schema.ClassBloodTest,
		EventID: gid, Purpose: event.PurposeHealthcareTreatment,
	}
	return &detailRig{ctrl: c, gid: gid, req: req, ids: ids, repo: repo,
		pdp: pdp, targetID: "target", gw: gw, src: "src-1"}
}

// runE2 measures end-to-end detail-request latency and the per-stage
// breakdown of Algorithm 1 as the policy repository grows.
func runE2(quick bool) {
	iters := pick(quick, 500, 5000)
	sizes := pick(quick, []int{10, 1000}, []int{10, 100, 1000, 10000})

	tbl := metrics.NewTable("policies", "e2e mean/p50/p95/p99", "PIP map", "policy match", "XACML eval", "gateway Alg.2", "audit+consent")
	for _, n := range sizes {
		rig := newDetailRig(n)
		e2e := metrics.NewHistogram()
		for i := 0; i < iters; i++ {
			start := time.Now()
			if _, err := rig.ctrl.RequestDetails(rig.req); err != nil {
				log.Fatal(err)
			}
			e2e.Record(time.Since(start))
		}
		// Stage timings on the component replicas, mirroring the actual
		// two-step pipeline: PIP id-map, repository Match (Definition 3),
		// XACML evaluation of the matched policy, gateway filtering.
		pip := metrics.NewHistogram()
		matchH := metrics.NewHistogram()
		evalH := metrics.NewHistogram()
		gwH := metrics.NewHistogram()
		compiledReq := xacml.CompileRequest(rig.req)
		fields := []event.FieldName{"patient-id", "exam-date", "hemoglobin"}
		mapped, _ := rig.ids.Assign("hospital", "src-1", schema.ClassBloodTest)
		for i := 0; i < iters; i++ {
			pip.Time(func() { rig.ids.Resolve(mapped) })
			matchH.Time(func() {
				if _, err := rig.repo.Match(rig.req); err != nil {
					log.Fatal(err)
				}
			})
			evalH.Time(func() {
				if r := rig.pdp.EvaluateOne(rig.targetID, compiledReq); r.Decision != xacml.Permit {
					log.Fatal(r.Decision)
				}
			})
			gwH.Time(func() {
				if _, err := rig.gw.GetResponse(rig.src, fields); err != nil {
					log.Fatal(err)
				}
			})
		}
		overhead := e2e.Mean() - pip.Mean() - matchH.Mean() - evalH.Mean() - gwH.Mean()
		if overhead < 0 {
			overhead = 0
		}
		tbl.Row(n, e2e.Summary(), pip.Mean(), matchH.Mean(), evalH.Mean(), gwH.Mean(), overhead)
		rig.ctrl.Close()
	}
	tbl.Write(os.Stdout)
	fmt.Println("shape: end-to-end stays sub-millisecond at deployment-scale repositories;")
	fmt.Println("only the Definition-3 match grows with the (single-class, worst-case)")
	fmt.Println("repository; PIP, per-policy XACML evaluation and the gateway are flat.")
}
