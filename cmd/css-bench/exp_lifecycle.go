package main

import (
	"fmt"
	"log"
	"math/rand"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/event"
	"repro/internal/gateway"
	"repro/internal/metrics"
	"repro/internal/policy"
	"repro/internal/schema"
	"repro/internal/store"
	"repro/internal/workload"
	"repro/internal/xacml"
)

// runE10 demonstrates temporal decoupling: details stay retrievable from
// the local cooperation gateway months after publication, across producer
// restarts, with outcomes governed by the policies' validity windows.
func runE10(quick bool) {
	events := pick(quick, 50, 500)
	dir, err := os.MkdirTemp("", "css-e10-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	now := time.Date(2010, 1, 15, 9, 0, 0, 0, time.UTC)
	clock := func() time.Time { return now }

	ctrl, err := core.New(core.Config{DefaultConsent: true, DataDir: dir, Now: clock,
		MasterKey: benchKeyringMaster()})
	if err != nil {
		log.Fatal(err)
	}
	if err := ctrl.RegisterProducer("hospital", "H"); err != nil {
		log.Fatal(err)
	}
	if err := ctrl.DeclareClass("hospital", schema.BloodTest()); err != nil {
		log.Fatal(err)
	}
	if err := ctrl.RegisterConsumer("family-doctor", "D"); err != nil {
		log.Fatal(err)
	}
	if err := ctrl.RegisterConsumer("caring-coop", "Coop"); err != nil {
		log.Fatal(err)
	}
	gwStore, err := store.Open(dir+"/gw.wal", store.Options{})
	if err != nil {
		log.Fatal(err)
	}
	gw, err := gateway.New("hospital", gwStore, ctrl.Catalog())
	if err != nil {
		log.Fatal(err)
	}
	if err := ctrl.AttachGateway("hospital", gw); err != nil {
		log.Fatal(err)
	}
	// Unbounded policy for the doctor; contract-bounded for the coop.
	if _, err := ctrl.DefinePolicy(&policy.Policy{
		Producer: "hospital", Actor: "family-doctor", Class: schema.ClassBloodTest,
		Purposes: []event.Purpose{event.PurposeHealthcareTreatment},
		Fields:   []event.FieldName{"patient-id", "hemoglobin"},
	}); err != nil {
		log.Fatal(err)
	}
	if _, err := ctrl.DefinePolicy(&policy.Policy{
		Producer: "hospital", Actor: "caring-coop", Class: schema.ClassBloodTest,
		Purposes: []event.Purpose{event.PurposeSocialAssistance},
		Fields:   []event.FieldName{"patient-id"},
		NotAfter: time.Date(2010, 12, 31, 23, 59, 59, 0, time.UTC),
	}); err != nil {
		log.Fatal(err)
	}

	gids := make([]event.GlobalID, events)
	for i := range gids {
		src := event.SourceID(fmt.Sprintf("src-%06d", i))
		d := event.NewDetail(schema.ClassBloodTest, src, "hospital").
			Set("patient-id", fmt.Sprintf("PRS-%04d", i)).
			Set("exam-date", "2010-01-15").
			Set("hemoglobin", "13.0")
		if err := gw.Persist(d); err != nil {
			log.Fatal(err)
		}
		gid, err := ctrl.Publish(&event.Notification{
			SourceID: src, Class: schema.ClassBloodTest,
			PersonID: fmt.Sprintf("PRS-%04d", i), Summary: "blood test",
			OccurredAt: now, Producer: "hospital",
		})
		if err != nil {
			log.Fatal(err)
		}
		gids[i] = gid
	}

	// "The source system goes offline": only the gateway store survives.
	// Simulate by restarting the whole producer side (close + reopen).
	gwStore.Close()

	tbl := metrics.NewTable("request lag", "requester", "success", "denied (contract)", "retrieval mean")
	for _, lag := range []struct {
		name string
		d    time.Duration
	}{
		{"1 day", 24 * time.Hour},
		{"1 month", 30 * 24 * time.Hour},
		{"6 months", 182 * 24 * time.Hour},
		{"2 years", 730 * 24 * time.Hour},
	} {
		now = time.Date(2010, 1, 15, 9, 0, 0, 0, time.UTC).Add(lag.d)
		// Producer restart at each epoch: reopen the gateway from disk.
		st, err := store.Open(dir+"/gw.wal", store.Options{})
		if err != nil {
			log.Fatal(err)
		}
		gw2, err := gateway.New("hospital", st, ctrl.Catalog())
		if err != nil {
			log.Fatal(err)
		}
		if err := ctrl.AttachGateway("hospital", gw2); err != nil {
			log.Fatal(err)
		}

		for _, who := range []struct {
			actor   event.Actor
			purpose event.Purpose
		}{
			{"family-doctor", event.PurposeHealthcareTreatment},
			{"caring-coop", event.PurposeSocialAssistance},
		} {
			lat := metrics.NewHistogram()
			ok, denied := 0, 0
			for _, gid := range gids {
				start := time.Now()
				_, err := ctrl.RequestDetails(&event.DetailRequest{
					Requester: who.actor, Class: schema.ClassBloodTest,
					EventID: gid, Purpose: who.purpose,
				})
				lat.Record(time.Since(start))
				if err != nil {
					denied++
				} else {
					ok++
				}
			}
			tbl.Row(lag.name, who.actor, ok, denied, lat.Mean())
		}
		st.Close()
	}
	tbl.Write(os.Stdout)
	ctrl.Close()
	fmt.Println("shape: the doctor retrieves 100% at any lag (gateway persistence survives")
	fmt.Println("producer restarts); the cooperative loses access once its contract expires —")
	fmt.Println("requests months after publication resolve per the policy at request time.")
}

func benchKeyringMaster() []byte {
	key := make([]byte, 32)
	for i := range key {
		key[i] = byte(i * 7)
	}
	return key
}

// runE11 measures subscription authorization throughput: the §5.2
// deny-by-default decision over a mixed granted/ungranted population.
func runE11(quick bool) {
	attempts := pick(quick, 500, 2000)

	tbl := metrics.NewTable("policies", "granted subs/s", "denied subs/s", "grant ratio")
	for _, nPolicies := range pick(quick, []int{10, 1000}, []int{10, 100, 1000, 10000}) {
		ctrl, err := core.New(core.Config{DefaultConsent: true})
		if err != nil {
			log.Fatal(err)
		}
		if err := ctrl.RegisterProducer("hospital", "H"); err != nil {
			log.Fatal(err)
		}
		if err := ctrl.DeclareClass("hospital", schema.BloodTest()); err != nil {
			log.Fatal(err)
		}
		if err := ctrl.RegisterConsumer("org", "Org"); err != nil {
			log.Fatal(err)
		}
		for i := 0; i < nPolicies; i++ {
			if _, err := ctrl.DefinePolicy(&policy.Policy{
				Producer: "hospital",
				Actor:    event.Actor(fmt.Sprintf("org/dept-%06d", i)),
				Class:    schema.ClassBloodTest,
				Purposes: []event.Purpose{event.PurposeHealthcareTreatment},
				Fields:   []event.FieldName{"patient-id"},
			}); err != nil {
				log.Fatal(err)
			}
		}

		grantStart := time.Now()
		granted := 0
		for i := 0; i < attempts; i++ {
			actor := event.Actor(fmt.Sprintf("org/dept-%06d", i%nPolicies))
			sub, err := ctrl.Subscribe(actor, schema.ClassBloodTest, func(*event.Notification) {})
			if err == nil {
				granted++
				sub.Cancel()
			}
		}
		grantElapsed := time.Since(grantStart)

		denyStart := time.Now()
		denied := 0
		for i := 0; i < attempts; i++ {
			actor := event.Actor(fmt.Sprintf("org/ungranted-%06d", i))
			if _, err := ctrl.Subscribe(actor, schema.ClassBloodTest, func(*event.Notification) {}); err != nil {
				denied++
			}
		}
		denyElapsed := time.Since(denyStart)
		ctrl.Close()

		tbl.Row(nPolicies,
			metrics.Rate(granted, grantElapsed),
			metrics.Rate(denied, denyElapsed),
			fmt.Sprintf("%d/%d", granted, attempts))
	}
	tbl.Write(os.Stdout)
	fmt.Println("shape: both decisions scan the class's policy list; denial costs the full")
	fmt.Println("scan, so deny-by-default is the slower path — and still thousands/sec.")
}

// runE12 measures the elicitation pipeline: compile throughput, XML
// round-trip, and the equivalence rate between native Definition-3
// matching and compiled-XACML evaluation over randomized policies.
func runE12(quick bool) {
	nPolicies := pick(quick, 2000, 20000)
	checks := pick(quick, 2000, 20000)

	// Compile + XML round-trip throughput over the standard policy set
	// shapes, randomized.
	rnd := rand.New(rand.NewSource(12))
	domain := schema.Domain()
	consumers := workload.Consumers()
	purposes := []event.Purpose{
		event.PurposeHealthcareTreatment, event.PurposeStatisticalAnalysis,
		event.PurposeAdministration, event.PurposeSocialAssistance,
	}
	randPolicy := func(i int) *policy.Policy {
		s := domain[rnd.Intn(len(domain))]
		fields := s.FieldNames()
		k := 1 + rnd.Intn(len(fields))
		return &policy.Policy{
			ID:       policy.ID(fmt.Sprintf("p-%06d", i)),
			Producer: "prod",
			Actor:    consumers[rnd.Intn(len(consumers))].Actor,
			Class:    s.Class(),
			Purposes: []event.Purpose{purposes[rnd.Intn(len(purposes))]},
			Fields:   fields[:k],
		}
	}

	compileStart := time.Now()
	policies := make([]*policy.Policy, nPolicies)
	compiled := make([]*xacml.Policy, nPolicies)
	for i := range policies {
		policies[i] = randPolicy(i)
		x, err := xacml.Compile(policies[i])
		if err != nil {
			log.Fatal(err)
		}
		compiled[i] = x
	}
	compileElapsed := time.Since(compileStart)

	xmlStart := time.Now()
	roundTripOK := 0
	for _, x := range compiled {
		data, err := xacml.Encode(x)
		if err != nil {
			log.Fatal(err)
		}
		if _, err := xacml.Decode(data); err == nil {
			roundTripOK++
		}
	}
	xmlElapsed := time.Since(xmlStart)

	// Equivalence: native Matches vs compiled evaluation on random
	// requests.
	agree := 0
	for i := 0; i < checks; i++ {
		p := policies[rnd.Intn(len(policies))]
		pdp, _ := xacml.NewPDP(xacml.FirstApplicable)
		_ = pdp
		req := &event.DetailRequest{
			Requester: consumers[rnd.Intn(len(consumers))].Actor,
			Class:     domain[rnd.Intn(len(domain))].Class(),
			EventID:   "evt-x",
			Purpose:   purposes[rnd.Intn(len(purposes))],
			At:        time.Date(2010, 6, 1, 0, 0, 0, 0, time.UTC),
		}
		d, _ := xacml.NewPDP(xacml.FirstApplicable)
		x, _ := xacml.Compile(p)
		d.Add(x)
		resp := d.Evaluate(xacml.CompileRequest(req))
		if p.Matches(req) == (resp.Decision == xacml.Permit) {
			agree++
		}
	}

	tbl := metrics.NewTable("metric", "value")
	tbl.Row("policies compiled", nPolicies)
	tbl.Row("compile k-pol/s", metrics.Rate(nPolicies, compileElapsed)/1000)
	tbl.Row("XACML XML round-trip k-pol/s", metrics.Rate(nPolicies, xmlElapsed)/1000)
	tbl.Row("round-trip success", fmt.Sprintf("%d/%d", roundTripOK, nPolicies))
	tbl.Row("native vs XACML agreement", fmt.Sprintf("%d/%d (%.2f%%)", agree, checks, 100*float64(agree)/float64(checks)))
	tbl.Write(os.Stdout)
	fmt.Println("shape: compilation and serialization are bulk operations (thousands/sec);")
	fmt.Println("agreement must be 100% — the elicited rule IS the enforced rule.")
}
