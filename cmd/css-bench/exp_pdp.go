package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"repro/internal/event"
	"repro/internal/metrics"
	"repro/internal/policy"
	"repro/internal/xacml"
)

// buildPDP installs n compiled policies spread over nClasses event
// classes and returns the PDP plus a matching and a non-matching request.
func buildPDP(n, nClasses int) (*xacml.PDP, *xacml.Request, *xacml.Request) {
	pdp, err := xacml.NewPDP(xacml.FirstApplicable)
	if err != nil {
		log.Fatal(err)
	}
	for i := 0; i < n; i++ {
		p := &policy.Policy{
			ID:       policy.ID(fmt.Sprintf("pol-%07d", i)),
			Producer: "prod",
			Actor:    event.Actor(fmt.Sprintf("actor-%06d", i)),
			Class:    event.ClassID(fmt.Sprintf("class.c%04d", i%nClasses)),
			Purposes: []event.Purpose{"care"},
			Fields:   []event.FieldName{"f1", "f2"},
		}
		compiled, err := xacml.Compile(p)
		if err != nil {
			log.Fatal(err)
		}
		if err := pdp.Add(compiled); err != nil {
			log.Fatal(err)
		}
	}
	// Matching request: the last policy installed.
	match := xacml.CompileRequest(&event.DetailRequest{
		Requester: event.Actor(fmt.Sprintf("actor-%06d", n-1)),
		Class:     event.ClassID(fmt.Sprintf("class.c%04d", (n-1)%nClasses)),
		EventID:   "evt-x",
		Purpose:   "care",
	})
	miss := xacml.CompileRequest(&event.DetailRequest{
		Requester: "nobody",
		Class:     event.ClassID(fmt.Sprintf("class.c%04d", 0)),
		EventID:   "evt-x",
		Purpose:   "care",
	})
	return pdp, match, miss
}

// runE3 measures PDP evaluation throughput against repository size and
// class spread (the resource index is what keeps deployment-scale
// repositories fast).
func runE3(quick bool) {
	iters := pick(quick, 2000, 20000)
	type cfg struct{ policies, classes int }
	cfgs := pick(quick,
		[]cfg{{100, 10}, {10000, 10}},
		[]cfg{{10, 1}, {100, 10}, {1000, 10}, {10000, 10}, {100000, 100}, {100000, 1}},
	)

	tbl := metrics.NewTable("policies", "classes", "policies/class", "match k-ops/s", "deny k-ops/s")
	for _, c := range cfgs {
		pdp, match, miss := buildPDP(c.policies, c.classes)
		// Scale iterations down for worst-case candidate lists so the
		// heavy configurations finish in bounded time.
		iters := iters
		if perClass := c.policies / c.classes; perClass > 1000 {
			iters = iters * 1000 / perClass
			if iters < 100 {
				iters = 100
			}
		}
		start := time.Now()
		for i := 0; i < iters; i++ {
			if r := pdp.Evaluate(match); r.Decision != xacml.Permit {
				log.Fatalf("expected Permit, got %v", r.Decision)
			}
		}
		matchRate := metrics.Rate(iters, time.Since(start)) / 1000

		start = time.Now()
		for i := 0; i < iters; i++ {
			if r := pdp.Evaluate(miss); r.Decision == xacml.Permit {
				log.Fatal("unexpected Permit")
			}
		}
		missRate := metrics.Rate(iters, time.Since(start)) / 1000
		tbl.Row(c.policies, c.classes, c.policies/c.classes, matchRate, missRate)
	}
	tbl.Write(os.Stdout)
	fmt.Println("shape: cost tracks policies-per-class (the PDP indexes by event class),")
	fmt.Println("so even 100k-policy repositories stay fast when spread over many classes.")
}
