package main

import (
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"time"

	"repro/internal/baseline"
	"repro/internal/event"
	"repro/internal/gateway"
	"repro/internal/metrics"
	"repro/internal/store"
	"repro/internal/transport"
)

// runE13 ablates design decision D3 (details stay at the producer's
// gateway) against the rejected alternative (a controller-side detail
// cache), and quantifies the deployment cost of remoteness: retrieval
// latency in-process vs over HTTP, and the sensitive bytes held by the
// central node under each design.
func runE13(quick bool) {
	n := pick(quick, 500, 5000)
	lookups := pick(quick, 500, 5000)

	// Shared corpus of details.
	mkDetail := func(i int) *event.Detail {
		return event.NewDetail("c.x", event.SourceID(fmt.Sprintf("s-%06d", i)), "hospital").
			Set("patient-id", fmt.Sprintf("PRS-%05d", i)).
			Set("diagnosis", "chronic condition with a long free-text description").
			Set("therapy", "complex therapy plan 0123456789")
	}
	payloadBytes := 0
	for _, v := range mkDetail(0).Fields {
		payloadBytes += len(v)
	}
	fields := []event.FieldName{"patient-id"}

	// (a) D3 as designed: local gateway.
	gwLocal, err := gateway.New("hospital", store.OpenMemory(), nil)
	if err != nil {
		log.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if err := gwLocal.Persist(mkDetail(i)); err != nil {
			log.Fatal(err)
		}
	}
	localLat := metrics.NewHistogram()
	for i := 0; i < lookups; i++ {
		src := event.SourceID(fmt.Sprintf("s-%06d", i%n))
		localLat.Time(func() {
			if _, err := gwLocal.GetResponse(src, fields); err != nil {
				log.Fatal(err)
			}
		})
	}

	// (b) D3 deployed: the same gateway behind HTTP on loopback.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	srv := &http.Server{Handler: transport.NewGatewayServer(gwLocal)}
	go srv.Serve(ln)
	defer srv.Close()
	remote := transport.NewRemoteGateway("http://"+ln.Addr().String(), nil)
	remoteLat := metrics.NewHistogram()
	for i := 0; i < lookups; i++ {
		src := event.SourceID(fmt.Sprintf("s-%06d", i%n))
		remoteLat.Time(func() {
			if _, err := remote.GetResponse(src, fields); err != nil {
				log.Fatal(err)
			}
		})
	}

	// (c) the ablated design: a controller-side cache of full details.
	cache := baseline.NewWarehouse()
	cache.Grant("consumer", "c.x")
	var centralBytes uint64
	for i := 0; i < n; i++ {
		centralBytes += uint64(cache.Load(mkDetail(i)))
	}
	cacheLat := metrics.NewHistogram()
	for i := 0; i < lookups; i++ {
		src := event.SourceID(fmt.Sprintf("s-%06d", i%n))
		cacheLat.Time(func() {
			if _, err := cache.Query("consumer", "c.x", src); err != nil {
				log.Fatal(err)
			}
		})
	}

	tbl := metrics.NewTable("design", "retrieval mean/p50/p95/p99", "sensitive bytes at controller", "legal under dup. prohibition")
	tbl.Row("D3: gateway, in-process", localLat.Summary(), 0, true)
	tbl.Row("D3: gateway, over HTTP", remoteLat.Summary(), 0, true)
	tbl.Row("ablation: controller cache", cacheLat.Summary(), centralBytes, false)
	tbl.Write(os.Stdout)
	fmt.Printf("(corpus: %d details × %d payload bytes)\n", n, payloadBytes)
	fmt.Println("shape: the central cache is fastest but duplicates every sensitive byte")
	fmt.Println("outside the owner's control — prohibited by the regulations the paper cites;")
	fmt.Println("the HTTP hop prices D3's compliance at a fraction of a millisecond.")
}

// runE14 ablates the storage durability mode: WAL append throughput with
// and without fsync-per-write, and recovery time by WAL size.
func runE14(quick bool) {
	n := pick(quick, 2000, 20000)
	dir, err := os.MkdirTemp("", "css-e14-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	tbl := metrics.NewTable("mode", "records", "put k-ops/s", "put mean", "reopen (replay)")
	for _, mode := range []struct {
		name string
		sync bool
		n    int
	}{
		{"buffered (default)", false, n},
		{"fsync per write", true, pick(quick, 200, 2000)},
	} {
		path := filepath.Join(dir, mode.name+".wal")
		st, err := store.Open(path, store.Options{SyncEvery: mode.sync})
		if err != nil {
			log.Fatal(err)
		}
		lat := metrics.NewHistogram()
		start := time.Now()
		for i := 0; i < mode.n; i++ {
			key := fmt.Sprintf("k-%08d", i)
			s := time.Now()
			if err := st.Put(key, []byte("a detail-sized value for the wal record payload")); err != nil {
				log.Fatal(err)
			}
			lat.Record(time.Since(s))
		}
		elapsed := time.Since(start)
		st.Close()

		reopenStart := time.Now()
		r, err := store.Open(path, store.Options{})
		if err != nil {
			log.Fatal(err)
		}
		reopen := time.Since(reopenStart)
		if cnt, _ := r.Len(); cnt != mode.n {
			log.Fatalf("recovery lost records: %d != %d", cnt, mode.n)
		}
		r.Close()
		tbl.Row(mode.name, mode.n, metrics.Rate(mode.n, elapsed)/1000, lat.Mean(), reopen)
	}
	tbl.Write(os.Stdout)
	fmt.Println("shape: fsync-per-write buys power-loss durability at orders of magnitude in")
	fmt.Println("throughput; the deployment default (buffered + crash-safe replay with torn-")
	fmt.Println("tail truncation) matches the paper's availability needs.")
}
