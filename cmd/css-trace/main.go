// css-trace reconstructs distributed flows from exported spans. It
// reads one or more span sources — JSONL export files written by the
// daemons' -span-file exporters, or live /debug/spans endpoints — and
// renders each trace as a parent-linked tree with a waterfall of stage
// timings, so a publish→notify→detail flow that crossed the
// controller, a gateway and a consumer reads as one timeline.
//
// Usage:
//
//	css-trace [flags] <source>...
//
// A source is a span JSONL file path or an http(s):// URL of a
// /debug/spans endpoint (the endpoint path is appended when missing).
//
//	-trace ID       show the waterfall of one trace
//	-stages         aggregate: slowest stages across all traces
//	-stage PREFIX   keep only spans whose stage has this prefix
//	-min-duration D keep only spans at least this slow (e.g. 50ms)
//	-errors-only    keep only spans that recorded an error
//	-limit N        max traces listed (default 50, newest first)
//
// Without -trace or -stages it lists traces: one line per trace with
// span count, processes involved, total wall time and error count.
//
// Exit status is 2 when a requested trace has orphan spans (a parent
// ID that is missing from the trace) — the signal an instrumentation
// regression broke the tree.
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"sort"
	"strings"
	"time"

	"repro/internal/telemetry"
)

func main() {
	traceID := flag.String("trace", "", "show the waterfall of one trace")
	stages := flag.Bool("stages", false, "aggregate slowest stages across all traces")
	stagePrefix := flag.String("stage", "", "filter: stage prefix")
	minDur := flag.Duration("min-duration", 0, "filter: keep spans at least this slow")
	errorsOnly := flag.Bool("errors-only", false, "filter: keep only spans with errors")
	limit := flag.Int("limit", 50, "max traces listed")
	flag.Parse()
	if flag.NArg() == 0 {
		flag.Usage()
		os.Exit(2)
	}

	var spans []telemetry.SpanRecord
	for _, src := range flag.Args() {
		recs, err := load(src)
		if err != nil {
			log.Fatalf("load %s: %v", src, err)
		}
		spans = append(spans, recs...)
	}
	spans = filter(spans, *stagePrefix, *minDur, *errorsOnly)
	if len(spans) == 0 {
		fmt.Println("no spans matched")
		return
	}

	switch {
	case *traceID != "":
		if !printWaterfall(spans, *traceID) {
			os.Exit(2)
		}
	case *stages:
		printStages(spans)
	default:
		printTraces(spans, *limit)
	}
}

// load reads a span source: a JSONL file or a /debug/spans URL.
func load(src string) ([]telemetry.SpanRecord, error) {
	if strings.HasPrefix(src, "http://") || strings.HasPrefix(src, "https://") {
		if !strings.Contains(src, "/debug/spans") {
			src = strings.TrimRight(src, "/") + "/debug/spans"
		}
		resp, err := http.Get(src)
		if err != nil {
			return nil, err
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			io.Copy(io.Discard, resp.Body)
			return nil, fmt.Errorf("%s answered %s", src, resp.Status)
		}
		return telemetry.DecodeSpans(resp.Body)
	}
	f, err := os.Open(src)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return telemetry.DecodeSpans(f)
}

func filter(spans []telemetry.SpanRecord, stagePrefix string, minDur time.Duration, errorsOnly bool) []telemetry.SpanRecord {
	out := spans[:0]
	for _, s := range spans {
		if stagePrefix != "" && !strings.HasPrefix(s.Stage, stagePrefix) {
			continue
		}
		if minDur > 0 && time.Duration(s.Duration)*time.Microsecond < minDur {
			continue
		}
		if errorsOnly && s.Error == "" {
			continue
		}
		out = append(out, s)
	}
	return out
}

// traceSummary aggregates one trace for the listing view.
type traceSummary struct {
	trace  string
	spans  int
	errors int
	start  time.Time
	end    time.Time
	procs  map[string]bool
}

func printTraces(spans []telemetry.SpanRecord, limit int) {
	byTrace := map[string]*traceSummary{}
	for _, s := range spans {
		t := byTrace[s.Trace]
		if t == nil {
			t = &traceSummary{trace: s.Trace, start: s.Start, procs: map[string]bool{}}
			byTrace[s.Trace] = t
		}
		t.spans++
		if s.Error != "" {
			t.errors++
		}
		if s.Start.Before(t.start) {
			t.start = s.Start
		}
		if end := s.Start.Add(time.Duration(s.Duration) * time.Microsecond); end.After(t.end) {
			t.end = end
		}
		if s.Proc != "" {
			t.procs[s.Proc] = true
		}
	}
	list := make([]*traceSummary, 0, len(byTrace))
	for _, t := range byTrace {
		list = append(list, t)
	}
	sort.Slice(list, func(i, j int) bool { return list[i].start.After(list[j].start) })
	if limit > 0 && len(list) > limit {
		list = list[:limit]
	}
	for _, t := range list {
		procs := make([]string, 0, len(t.procs))
		for p := range t.procs {
			procs = append(procs, p)
		}
		sort.Strings(procs)
		line := fmt.Sprintf("%s  %s  spans=%-3d wall=%-12s procs=%s",
			t.trace, t.start.Format("15:04:05.000"), t.spans,
			t.end.Sub(t.start).Round(time.Microsecond), strings.Join(procs, ","))
		if t.errors > 0 {
			line += fmt.Sprintf("  errors=%d", t.errors)
		}
		fmt.Println(line)
	}
	fmt.Printf("(%d traces)\n", len(list))
}

// printWaterfall renders one trace as an indented parent-linked tree
// with proportional duration bars. Returns false when the trace has
// orphan spans (parent recorded but absent), which signals a broken
// propagation chain.
func printWaterfall(spans []telemetry.SpanRecord, trace string) (ok bool) {
	var flow []telemetry.SpanRecord
	for _, s := range spans {
		if s.Trace == trace {
			flow = append(flow, s)
		}
	}
	if len(flow) == 0 {
		fmt.Printf("trace %s: no spans\n", trace)
		return false
	}
	sort.SliceStable(flow, func(i, j int) bool { return flow[i].Start.Before(flow[j].Start) })

	ids := map[string]bool{}
	for _, s := range flow {
		if s.ID != "" {
			ids[s.ID] = true
		}
	}
	children := map[string][]telemetry.SpanRecord{}
	var roots, orphans []telemetry.SpanRecord
	for _, s := range flow {
		switch {
		case s.Parent == "":
			roots = append(roots, s)
		case ids[s.Parent]:
			children[s.Parent] = append(children[s.Parent], s)
		default:
			orphans = append(orphans, s)
		}
	}

	t0 := flow[0].Start
	var tEnd time.Time
	for _, s := range flow {
		if end := s.Start.Add(time.Duration(s.Duration) * time.Microsecond); end.After(tEnd) {
			tEnd = end
		}
	}
	wall := tEnd.Sub(t0)
	if wall <= 0 {
		wall = time.Microsecond
	}
	fmt.Printf("trace %s — %d spans, wall %s\n", trace, len(flow), wall.Round(time.Microsecond))

	var walk func(s telemetry.SpanRecord, depth int)
	walk = func(s telemetry.SpanRecord, depth int) {
		printSpan(s, depth, t0, wall)
		for _, c := range children[s.ID] {
			walk(c, depth+1)
		}
	}
	for _, r := range roots {
		walk(r, 0)
	}
	if len(orphans) > 0 {
		fmt.Printf("ORPHAN SPANS (%d) — parent missing from trace:\n", len(orphans))
		for _, s := range orphans {
			printSpan(s, 1, t0, wall)
		}
		return false
	}
	return true
}

// printSpan renders one waterfall line: indented stage, offset bar,
// duration, process, error.
func printSpan(s telemetry.SpanRecord, depth int, t0 time.Time, wall time.Duration) {
	const barWidth = 30
	dur := time.Duration(s.Duration) * time.Microsecond
	offset := s.Start.Sub(t0)
	lead := int(int64(barWidth) * int64(offset) / int64(wall))
	fill := int(int64(barWidth) * int64(dur) / int64(wall))
	if fill < 1 {
		fill = 1
	}
	if lead+fill > barWidth {
		lead = barWidth - fill
		if lead < 0 {
			lead = 0
			fill = barWidth
		}
	}
	bar := strings.Repeat(" ", lead) + strings.Repeat("▇", fill) + strings.Repeat(" ", barWidth-lead-fill)
	name := strings.Repeat("  ", depth) + s.Stage
	line := fmt.Sprintf("  %-44s |%s| %10s", name, bar, dur.Round(time.Microsecond))
	if s.Proc != "" {
		line += "  " + s.Proc
	}
	for _, a := range s.Attrs {
		line += fmt.Sprintf("  %s=%s", a.Key, a.Value)
	}
	if s.Error != "" {
		line += fmt.Sprintf("  ERROR=%q", s.Error)
	}
	fmt.Println(line)
}

// stageAgg aggregates durations per stage for the -stages view.
type stageAgg struct {
	stage  string
	count  int
	errors int
	total  time.Duration
	max    time.Duration
}

func printStages(spans []telemetry.SpanRecord) {
	byStage := map[string]*stageAgg{}
	for _, s := range spans {
		a := byStage[s.Stage]
		if a == nil {
			a = &stageAgg{stage: s.Stage}
			byStage[s.Stage] = a
		}
		d := time.Duration(s.Duration) * time.Microsecond
		a.count++
		a.total += d
		if d > a.max {
			a.max = d
		}
		if s.Error != "" {
			a.errors++
		}
	}
	list := make([]*stageAgg, 0, len(byStage))
	for _, a := range byStage {
		list = append(list, a)
	}
	sort.Slice(list, func(i, j int) bool { return list[i].total > list[j].total })
	fmt.Printf("%-32s %8s %12s %12s %12s %7s\n", "stage", "count", "total", "mean", "max", "errors")
	for _, a := range list {
		mean := a.total / time.Duration(a.count)
		fmt.Printf("%-32s %8d %12s %12s %12s %7d\n",
			a.stage, a.count, a.total.Round(time.Microsecond),
			mean.Round(time.Microsecond), a.max.Round(time.Microsecond), a.errors)
	}
}
