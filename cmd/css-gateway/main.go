// css-gateway runs a producer's local cooperation gateway as a web
// service. The gateway persists every detail message the source system
// hands it (POST /gw/persist) and answers the data controller's filtered
// retrievals (POST /gw/get-response), so details remain available even
// when the source system is offline.
//
// Usage:
//
//	css-gateway -producer hospital -data ./hospital-gw [flags]
//
//	-addr        listen address (default :8081)
//	-producer    owning producer id (required)
//	-data        data directory for the detail store (default: in-memory)
//	-controller  controller base URL; when set, the gateway fetches the
//	             event catalog, validates persisted details against it,
//	             and mounts POST /gw/publish — a publish relay that
//	             forwards notifications to the controller and parks them
//	             in a durable outbox (outbox.wal under -data) while the
//	             controller is unreachable
//	-pprof       expose net/http/pprof under /debug/pprof/ (opt-in)
//	-log-json    structured JSON logs on stderr (default: text)
//
// The gateway always serves /metrics (Prometheus text format) and
// /healthz alongside the /gw/ API.
package main

import (
	"context"
	"encoding/hex"
	"flag"
	"fmt"
	"log"
	"log/slog"
	"net/http"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/event"
	"repro/internal/gateway"
	"repro/internal/identity"
	"repro/internal/resilience"
	"repro/internal/schema"
	"repro/internal/store"
	"repro/internal/telemetry"
	"repro/internal/transport"
)

// fetchedCatalog adapts a fetched schema list to gateway.SchemaSource.
type fetchedCatalog map[event.ClassID]*schema.Schema

func (c fetchedCatalog) Schema(id event.ClassID) (*schema.Schema, error) {
	s, ok := c[id]
	if !ok {
		return nil, fmt.Errorf("class %s not in the fetched catalog", id)
	}
	return s, nil
}

func main() {
	addr := flag.String("addr", ":8081", "listen address")
	producer := flag.String("producer", "", "owning producer id (required)")
	dataDir := flag.String("data", "", "data directory (empty: in-memory)")
	controller := flag.String("controller", "", "controller base URL for catalog fetch")
	token := flag.String("token", "", "bearer token for the catalog fetch (auth-enabled controller)")
	authKeyFile := flag.String("auth-key-file", "", "identity authority key (hex); restricts get-response to the controller's token and persist to the producer's")
	controllerActor := flag.String("controller-actor", "data-controller", "actor the data controller's tokens are issued for")
	pprofFlag := flag.Bool("pprof", false, "expose net/http/pprof under /debug/pprof/")
	logJSON := flag.Bool("log-json", false, "structured JSON logs on stderr")
	flag.Parse()
	if *producer == "" {
		log.Fatal("-producer is required")
	}
	telemetry.SetLogger(telemetry.NewLogger(*logJSON, slog.LevelInfo))

	var st *store.Store
	var err error
	if *dataDir == "" {
		st = store.OpenMemory()
	} else {
		st, err = store.Open(filepath.Join(*dataDir, "gateway.wal"), store.Options{})
		if err != nil {
			log.Fatalf("store: %v", err)
		}
	}
	defer st.Close()

	var schemas gateway.SchemaSource
	var client *transport.Client
	resMetrics := resilience.NewMetrics(telemetry.Default())
	if *controller != "" {
		breakers := resilience.NewGroup(resilience.BreakerConfig{Metrics: resMetrics})
		client = transport.NewClient(*controller, nil,
			transport.WithRetrier(resilience.NewRetrier(resilience.RetryPolicy{Metrics: resMetrics})),
			transport.WithBreakerGroup(breakers))
		if *token != "" {
			client = client.WithToken(*token)
		}
		list, err := client.Catalog(context.Background())
		if err != nil {
			log.Fatalf("fetch catalog: %v", err)
		}
		cat := fetchedCatalog{}
		for _, s := range list {
			cat[s.Class()] = s
		}
		schemas = cat
		log.Printf("validating against %d catalog classes", len(cat))
	}

	gw, err := gateway.New(event.ProducerID(*producer), st, schemas)
	if err != nil {
		log.Fatalf("gateway: %v", err)
	}
	srv := transport.NewGatewayServerWithRegistry(gw, telemetry.Default())
	if client != nil {
		// With a controller configured, the gateway also relays the source
		// system's publishes: POST /gw/publish forwards to the controller
		// and parks notifications in a durable outbox during outages.
		var obStore *store.Store
		if *dataDir == "" {
			obStore = store.OpenMemory()
		} else {
			obStore, err = store.Open(filepath.Join(*dataDir, "outbox.wal"), store.Options{})
			if err != nil {
				log.Fatalf("outbox store: %v", err)
			}
		}
		defer obStore.Close()
		qp, err := transport.NewQueuedPublisher(client, obStore, resMetrics, 0)
		if err != nil {
			log.Fatalf("outbox: %v", err)
		}
		defer qp.Close()
		srv.EnablePublishRelay(qp)
		telemetry.Logger().Info("publish relay enabled",
			"controller", *controller, "outbox_depth", qp.Depth())
	}
	if *authKeyFile != "" {
		raw, err := os.ReadFile(*authKeyFile)
		if err != nil {
			log.Fatalf("auth key: %v", err)
		}
		key, err := hex.DecodeString(strings.TrimSpace(string(raw)))
		if err != nil {
			log.Fatalf("auth key: %v", err)
		}
		authority, err := identity.NewAuthority(key)
		if err != nil {
			log.Fatalf("authority: %v", err)
		}
		srv.RequireAuth(authority, event.Actor(*controllerActor))
		telemetry.Logger().Info("bearer-token authentication enabled", "controller_actor", *controllerActor)
	}

	mux := http.NewServeMux()
	mux.Handle("/", srv)
	if *pprofFlag {
		telemetry.RegisterPprof(mux)
		telemetry.Logger().Info("pprof profiling enabled", "path", "/debug/pprof/")
	}
	telemetry.Logger().Info("local cooperation gateway listening",
		"producer", *producer, "addr", *addr,
		"metrics", "/metrics", "healthz", "/healthz")
	if err := http.ListenAndServe(*addr, mux); err != nil {
		log.Fatal(err)
	}
}
