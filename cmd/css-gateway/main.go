// css-gateway runs a producer's local cooperation gateway as a web
// service. The gateway persists every detail message the source system
// hands it (POST /gw/persist) and answers the data controller's filtered
// retrievals (POST /gw/get-response), so details remain available even
// when the source system is offline.
//
// Usage:
//
//	css-gateway -producer hospital -data ./hospital-gw [flags]
//
//	-addr        listen address (default :8081)
//	-producer    owning producer id (required)
//	-data        data directory for the detail store (default: in-memory)
//	-controller  controller base URL; when set, the gateway fetches the
//	             event catalog, validates persisted details against it,
//	             and mounts POST /gw/publish — a publish relay that
//	             forwards notifications to the controller and parks them
//	             in a durable outbox (outbox.wal under -data) while the
//	             controller is unreachable. A sharded controller (one
//	             serving GET /ws/shardmap) upgrades the relay to a
//	             shard-routing client automatically
//	-pprof       expose net/http/pprof under /debug/pprof/ (opt-in)
//	-log-json    structured JSON logs on stderr (default: text)
//	-max-inflight   global concurrent-request budget (default 256)
//	-actor-rps      per-actor admission rate, requests/second (default 50)
//	-drain-timeout  graceful-shutdown budget on SIGTERM (default 10s):
//	                stop admitting, drain the outbox toward the
//	                controller, fsync and close the stores
//	-span-file      durable span export file (JSONL ring; empty: disabled)
//	-span-sample    head-sampling rate for span recording and export (default 0.1)
//	-span-slow      tail-keep threshold for exported spans (default 100ms)
//	-codec       wire codec toward the controller for the publish relay
//	             and catalog fetch: "xml" (default) or "binary"
//
// The gateway always serves /metrics (Prometheus text format),
// /healthz, /slo and /debug/spans alongside the /gw/ API.
package main

import (
	"context"
	"encoding/hex"
	"flag"
	"fmt"
	"log"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"repro/internal/cluster"
	"repro/internal/event"
	"repro/internal/gateway"
	"repro/internal/identity"
	"repro/internal/overload"
	"repro/internal/resilience"
	"repro/internal/schema"
	"repro/internal/store"
	"repro/internal/telemetry"
	"repro/internal/transport"
)

// fetchedCatalog adapts a fetched schema list to gateway.SchemaSource.
type fetchedCatalog map[event.ClassID]*schema.Schema

func (c fetchedCatalog) Schema(id event.ClassID) (*schema.Schema, error) {
	s, ok := c[id]
	if !ok {
		return nil, fmt.Errorf("class %s not in the fetched catalog", id)
	}
	return s, nil
}

func main() {
	addr := flag.String("addr", ":8081", "listen address")
	producer := flag.String("producer", "", "owning producer id (required)")
	dataDir := flag.String("data", "", "data directory (empty: in-memory)")
	controller := flag.String("controller", "", "controller base URL for catalog fetch")
	token := flag.String("token", "", "bearer token for the catalog fetch (auth-enabled controller)")
	authKeyFile := flag.String("auth-key-file", "", "identity authority key (hex); restricts get-response to the controller's token and persist to the producer's")
	controllerActor := flag.String("controller-actor", "data-controller", "actor the data controller's tokens are issued for")
	pprofFlag := flag.Bool("pprof", false, "expose net/http/pprof under /debug/pprof/")
	logJSON := flag.Bool("log-json", false, "structured JSON logs on stderr")
	maxInflight := flag.Int("max-inflight", overload.DefaultMaxInFlight, "global concurrent-request budget (negative: unbounded)")
	actorRPS := flag.Float64("actor-rps", overload.DefaultActorRPS, "per-actor admission rate, requests/second (negative: unlimited)")
	drainTimeout := flag.Duration("drain-timeout", 10*time.Second, "graceful-shutdown budget on SIGTERM")
	spanFile := flag.String("span-file", "", "durable span export file (JSONL ring; empty: disabled)")
	spanSample := flag.Float64("span-sample", telemetry.DefaultSampleRate, "head-sampling rate for span recording and export (0..1)")
	spanSlow := flag.Duration("span-slow", telemetry.DefaultSlowTail, "tail-keep exported spans at least this slow (negative: disabled)")
	codecName := flag.String("codec", "", `wire codec toward the controller: "xml" (default) or "binary"`)
	flag.Parse()
	if *producer == "" {
		log.Fatal("-producer is required")
	}
	codec, err := event.CodecByName(*codecName)
	if err != nil {
		log.Fatalf("-codec: %v", err)
	}
	telemetry.SetLogger(telemetry.NewLogger(*logJSON, slog.LevelInfo))

	var st *store.Store
	if *dataDir == "" {
		st = store.OpenMemory()
	} else {
		st, err = store.Open(filepath.Join(*dataDir, "gateway.wal"), store.Options{})
		if err != nil {
			log.Fatalf("store: %v", err)
		}
	}
	defer st.Close()

	var schemas gateway.SchemaSource
	var client *transport.Client
	var relay transport.EventPublisher
	resMetrics := resilience.NewMetrics(telemetry.Default())
	if *controller != "" {
		breakers := resilience.NewGroup(resilience.BreakerConfig{Metrics: resMetrics})
		client = transport.NewClient(*controller, nil,
			transport.WithCodec(codec),
			transport.WithRetrier(resilience.NewRetrier(resilience.RetryPolicy{Metrics: resMetrics})),
			transport.WithBreakerGroup(breakers))
		if *token != "" {
			client = client.WithToken(*token)
		}
		list, err := client.Catalog(context.Background())
		if err != nil {
			log.Fatalf("fetch catalog: %v", err)
		}
		cat := fetchedCatalog{}
		for _, s := range list {
			cat[s.Class()] = s
		}
		schemas = cat
		log.Printf("validating against %d catalog classes", len(cat))

		// A sharded controller answers GET /ws/shardmap with its cluster
		// topology: upgrade the publish relay to a shard-routing client,
		// so relayed notifications land on (or get redirected to) the
		// owning shard. An unsharded controller answers not-found and the
		// plain client stays.
		relay = client
		if m, merr := client.ShardMap(context.Background()); merr == nil {
			sc, serr := transport.NewShardedClient(m, func(info cluster.ShardInfo) *transport.Client {
				c := transport.NewClient(info.Addr, nil,
					transport.WithCodec(codec),
					transport.WithRetrier(resilience.NewRetrier(resilience.RetryPolicy{Metrics: resMetrics})),
					transport.WithBreakerGroup(resilience.NewGroup(resilience.BreakerConfig{Metrics: resMetrics})))
				if *token != "" {
					c = c.WithToken(*token)
				}
				return c
			})
			if serr != nil {
				log.Fatalf("sharded controller: %v", serr)
			}
			relay = sc
			telemetry.Logger().Info("controller is sharded; publish relay routes by shard",
				"map_version", m.Version(), "shards", len(m.Shards()))
		}
	}

	gw, err := gateway.New(event.ProducerID(*producer), st, schemas)
	if err != nil {
		log.Fatalf("gateway: %v", err)
	}
	srv := transport.NewGatewayServerWithRegistry(gw, telemetry.Default())
	srv.Tracer().SetSampleRate(*spanSample)
	var spanExporter *telemetry.Exporter
	if *spanFile != "" {
		spanExporter, err = telemetry.NewExporter(telemetry.ExporterConfig{
			Path:       *spanFile,
			SampleRate: *spanSample,
			SlowTail:   *spanSlow,
		}, "gateway")
		if err != nil {
			log.Fatalf("span exporter: %v", err)
		}
		srv.Tracer().SetExporter(spanExporter)
		telemetry.Logger().Info("span export enabled",
			"file", *spanFile, "sample", *spanSample, "slow_tail", spanSlow.String())
	}
	// The gateway's latency objective rides its own HTTP histogram: the
	// filtered-retrieval endpoint is the producer-side stage of the
	// detail flow.
	slo := telemetry.NewSLO(telemetry.SLOConfig{},
		telemetry.Objective{Name: "gw-get-response", Target: 0.25, Goal: 0.99,
			Hist:        telemetry.Default().Histogram("css_gateway_http_request_seconds", "", "route"),
			LabelValues: []string{"/gw/get-response"}},
	)
	srv.SetSLO(slo)
	var qp *transport.QueuedPublisher
	if client != nil {
		// With a controller configured, the gateway also relays the source
		// system's publishes: POST /gw/publish forwards to the controller
		// and parks notifications in a durable outbox during outages.
		var obStore *store.Store
		if *dataDir == "" {
			obStore = store.OpenMemory()
		} else {
			obStore, err = store.Open(filepath.Join(*dataDir, "outbox.wal"), store.Options{})
			if err != nil {
				log.Fatalf("outbox store: %v", err)
			}
		}
		defer obStore.Close()
		qp, err = transport.NewQueuedPublisher(relay, obStore, resMetrics, 0)
		if err != nil {
			log.Fatalf("outbox: %v", err)
		}
		defer qp.Close()
		srv.EnablePublishRelay(qp)
		telemetry.Logger().Info("publish relay enabled",
			"controller", *controller, "outbox_depth", qp.Depth())
	}
	if *authKeyFile != "" {
		raw, err := os.ReadFile(*authKeyFile)
		if err != nil {
			log.Fatalf("auth key: %v", err)
		}
		key, err := hex.DecodeString(strings.TrimSpace(string(raw)))
		if err != nil {
			log.Fatalf("auth key: %v", err)
		}
		authority, err := identity.NewAuthority(key)
		if err != nil {
			log.Fatalf("authority: %v", err)
		}
		srv.RequireAuth(authority, event.Actor(*controllerActor))
		telemetry.Logger().Info("bearer-token authentication enabled", "controller_actor", *controllerActor)
	}

	gate := overload.NewGate(overload.Config{
		MaxInFlight: *maxInflight,
		ActorRPS:    *actorRPS,
		Metrics:     telemetry.Default(),
	})
	srv.SetAdmission(gate)

	mux := http.NewServeMux()
	mux.Handle("/", srv)
	if *pprofFlag {
		telemetry.RegisterPprof(mux)
		telemetry.Logger().Info("pprof profiling enabled", "path", "/debug/pprof/")
	}
	telemetry.Logger().Info("local cooperation gateway listening",
		"producer", *producer, "addr", *addr,
		"metrics", "/metrics", "healthz", "/healthz",
		"max_inflight", *maxInflight, "drain_timeout", drainTimeout.String())

	httpSrv := &http.Server{Addr: *addr, Handler: mux}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	go slo.Run(ctx)
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.ListenAndServe() }()
	select {
	case err := <-serveErr:
		log.Fatal(err)
	case <-ctx.Done():
	}

	// Graceful drain: stop admitting, finish in-flight requests, give the
	// outbox one bounded chance to hand its backlog to the controller
	// (entries left behind stay durable in the WAL), then fsync the detail
	// store on Close.
	telemetry.Logger().Info("shutdown signal received, draining", "timeout", drainTimeout.String())
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	steps := []overload.Step{
		{Name: "http-shutdown", Run: httpSrv.Shutdown},
	}
	if qp != nil {
		steps = append(steps, overload.Step{Name: "outbox-drain", Run: qp.DrainContext})
		steps = append(steps, overload.Step{Name: "outbox-close", Run: func(context.Context) error { qp.Close(); return nil }})
	}
	if spanExporter != nil {
		steps = append(steps, overload.Step{Name: "span-flush", Run: func(context.Context) error {
			return spanExporter.Close()
		}})
	}
	steps = append(steps, overload.Step{Name: "store-close", Run: func(context.Context) error { return st.Close() }})
	if err := overload.Drain(drainCtx, gate, steps...); err != nil {
		telemetry.Logger().Error("drain incomplete", "err", err)
		os.Exit(1)
	}
}
