package css

import (
	"fmt"
	"time"

	"repro/internal/process"
)

// Process-monitoring facade: the platform's purpose in the paper is to
// let a governing body monitor multi-organization care processes. A
// ProcessMonitor subscribes — under the monitoring body's own consumer
// identity, so deny-by-default and consent apply unchanged — to every
// event class its pathways mention, and tracks pathway instances from the
// notification stream alone (no sensitive details involved).

// Pathway declares a monitored care process.
type Pathway = process.Pathway

// PathwayStage is one expected step of a pathway.
type PathwayStage = process.Stage

// PathwayInstance is the tracked progress of one person through one
// pathway.
type PathwayInstance = process.Instance

// PathwayReport is a snapshot of all instances.
type PathwayReport = process.Report

// ProcessMonitor tracks pathway instances from live notifications.
type ProcessMonitor struct {
	monitor *process.Monitor
	subs    []*Subscription
}

// MonitorProcesses starts monitoring the given pathways as the consumer.
// The consumer must be authorized (hold policies) on every event class
// the pathways mention — monitoring is an access like any other.
func (c *Consumer) MonitorProcesses(pathways ...*Pathway) (*ProcessMonitor, error) {
	monitor, err := process.NewMonitor(pathways...)
	if err != nil {
		return nil, err
	}
	classes := map[ClassID]bool{}
	for _, p := range pathways {
		classes[p.Trigger] = true
		for _, s := range p.Stages {
			classes[s.Class] = true
		}
	}
	pm := &ProcessMonitor{monitor: monitor}
	for class := range classes {
		sub, err := c.Subscribe(class, func(n *Notification) {
			monitor.Observe(n)
		})
		if err != nil {
			pm.Stop()
			return nil, fmt.Errorf("css: monitoring %s: %w", class, err)
		}
		pm.subs = append(pm.subs, sub)
	}
	return pm, nil
}

// Observe feeds a notification obtained out of band (e.g. an index
// inquiry used to backfill history before the subscriptions started).
func (m *ProcessMonitor) Observe(n *Notification) { m.monitor.Observe(n) }

// Snapshot classifies every instance at the given instant.
func (m *ProcessMonitor) Snapshot(now time.Time) PathwayReport {
	return m.monitor.Snapshot(now)
}

// Stalled returns the overdue instances at the given instant.
func (m *ProcessMonitor) Stalled(now time.Time) []PathwayInstance {
	return m.monitor.Stalled(now)
}

// Stop cancels the monitor's subscriptions.
func (m *ProcessMonitor) Stop() {
	for _, s := range m.subs {
		s.Cancel()
	}
	m.subs = nil
}
