package css_test

import (
	"testing"

	"repro/css"
	"repro/internal/audit"
	"repro/internal/schema"
)

func TestCitizenTimelineAndHistory(t *testing.T) {
	s := newScenario(t)
	s.doctorPolicy(t)
	id1 := s.emit(t, "src-1", "PRS-ANNA")
	s.emit(t, "src-2", "PRS-OTHER")
	id3 := s.emit(t, "src-3", "PRS-ANNA")

	anna, err := s.platform.Citizen("PRS-ANNA")
	if err != nil {
		t.Fatal(err)
	}
	if anna.PersonID() != "PRS-ANNA" {
		t.Errorf("PersonID = %q", anna.PersonID())
	}

	// Timeline: only Anna's events, source ids redacted.
	timeline, err := anna.Timeline(css.Inquiry{})
	if err != nil {
		t.Fatalf("Timeline: %v", err)
	}
	if len(timeline) != 2 {
		t.Fatalf("timeline = %d events", len(timeline))
	}
	seen := map[css.EventID]bool{}
	for _, n := range timeline {
		if n.PersonID != "PRS-ANNA" {
			t.Errorf("foreign event in timeline: %+v", n)
		}
		if n.SourceID != "" {
			t.Error("source id leaked in timeline")
		}
		seen[n.ID] = true
	}
	if !seen[id1] || !seen[id3] {
		t.Error("timeline missing own events")
	}

	// The doctor accesses one of Anna's events; Anna sees it.
	if _, err := s.doctor.RequestDetails(id1, schema.ClassBloodTest, css.PurposeHealthcareTreatment); err != nil {
		t.Fatal(err)
	}
	history, err := anna.AccessHistory()
	if err != nil {
		t.Fatalf("AccessHistory: %v", err)
	}
	var detailAccesses int
	for _, r := range history {
		if r.Kind == audit.KindDetailRequest {
			detailAccesses++
			if r.Actor != "family-doctor" || r.Purpose != css.PurposeHealthcareTreatment {
				t.Errorf("history record = %+v", r)
			}
		}
	}
	if detailAccesses != 1 {
		t.Errorf("detail accesses in history = %d", detailAccesses)
	}
}

func TestCitizenConsentManagement(t *testing.T) {
	s := newScenario(t)
	s.doctorPolicy(t)
	id := s.emit(t, "src-1", "PRS-ANNA")

	anna, err := s.platform.Citizen("PRS-ANNA")
	if err != nil {
		t.Fatal(err)
	}
	if err := anna.OptOut(css.ConsentScope{Consumer: "family-doctor"}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.doctor.RequestDetails(id, schema.ClassBloodTest, css.PurposeHealthcareTreatment); err == nil {
		t.Error("opt-out via citizen handle not enforced")
	}
	if err := anna.OptIn(css.ConsentScope{Consumer: "family-doctor", Class: schema.ClassBloodTest}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.doctor.RequestDetails(id, schema.ClassBloodTest, css.PurposeHealthcareTreatment); err != nil {
		t.Errorf("narrow opt-in not honored: %v", err)
	}
	if got := anna.Directives(); len(got) != 2 {
		t.Errorf("Directives = %d", len(got))
	}
	// Her own timeline is unaffected by her opt-outs.
	timeline, err := anna.Timeline(css.Inquiry{})
	if err != nil || len(timeline) != 1 {
		t.Errorf("timeline after opt-out = %d, %v", len(timeline), err)
	}
}

func TestCitizenValidation(t *testing.T) {
	s := newScenario(t)
	if _, err := s.platform.Citizen(""); err == nil {
		t.Error("empty person id accepted")
	}
	// A citizen with no events has an empty, not failing, view.
	ghost, err := s.platform.Citizen("PRS-NOBODY")
	if err != nil {
		t.Fatal(err)
	}
	if tl, err := ghost.Timeline(css.Inquiry{}); err != nil || len(tl) != 0 {
		t.Errorf("ghost timeline = %d, %v", len(tl), err)
	}
	if h, err := ghost.AccessHistory(); err != nil || len(h) != 0 {
		t.Errorf("ghost history = %d, %v", len(h), err)
	}
}
