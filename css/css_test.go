package css_test

import (
	"errors"
	"sync"
	"testing"
	"time"

	"repro/css"
	"repro/internal/audit"
	"repro/internal/bus"
	"repro/internal/schema"
)

// scenario wires the Fig. 8 world: a hospital producing blood tests and
// a family doctor.
type scenario struct {
	platform *css.Platform
	hospital *css.Producer
	doctor   *css.Consumer
}

func newScenario(t *testing.T) *scenario {
	t.Helper()
	p, err := css.NewPlatform()
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { p.Close() })
	hospital, err := p.RegisterProducer("hospital", "Hospital S. Maria")
	if err != nil {
		t.Fatal(err)
	}
	if err := hospital.DeclareClass(schema.BloodTest()); err != nil {
		t.Fatal(err)
	}
	doctor, err := p.RegisterConsumer("family-doctor", "Family doctors")
	if err != nil {
		t.Fatal(err)
	}
	return &scenario{platform: p, hospital: hospital, doctor: doctor}
}

func (s *scenario) emit(t *testing.T, src css.SourceID, person string) css.EventID {
	t.Helper()
	n := &css.Notification{
		SourceID:   src,
		Class:      schema.ClassBloodTest,
		PersonID:   person,
		Summary:    "blood test completed",
		OccurredAt: time.Date(2010, 5, 30, 9, 0, 0, 0, time.UTC),
		Producer:   "hospital",
	}
	d := css.NewDetail(schema.ClassBloodTest, src, "hospital").
		Set("patient-id", person).
		Set("exam-date", "2010-05-30").
		Set("hemoglobin", "13.9").
		Set("aids-test", "negative").
		Set("lab-notes", "fasting sample")
	id, err := s.hospital.Emit(n, d)
	if err != nil {
		t.Fatal(err)
	}
	return id
}

func (s *scenario) doctorPolicy(t *testing.T) []*css.Policy {
	t.Helper()
	policies, err := s.hospital.Policy(schema.BloodTest()).
		SelectAllFieldsExcept("aids-test", "lab-notes").
		SelectConsumers("family-doctor").
		SelectPurposes(css.PurposeHealthcareTreatment).
		Label("doctor on blood tests", "AIDS test obfuscated").
		Apply()
	if err != nil {
		t.Fatal(err)
	}
	return policies
}

func TestPublicAPITwoPhaseFlow(t *testing.T) {
	s := newScenario(t)
	s.doctorPolicy(t)

	var mu sync.Mutex
	var notified []*css.Notification
	if _, err := s.doctor.Subscribe(schema.ClassBloodTest, func(n *css.Notification) {
		mu.Lock()
		notified = append(notified, n)
		mu.Unlock()
	}); err != nil {
		t.Fatal(err)
	}

	id := s.emit(t, "src-1", "PRS-1")
	if !s.platform.Flush(5 * time.Second) {
		t.Fatal("Flush timed out")
	}
	mu.Lock()
	if len(notified) != 1 || notified[0].ID != id {
		t.Fatalf("notifications = %+v", notified)
	}
	mu.Unlock()

	d, err := s.doctor.RequestDetails(id, schema.ClassBloodTest, css.PurposeHealthcareTreatment)
	if err != nil {
		t.Fatalf("RequestDetails: %v", err)
	}
	if v, _ := d.Get("hemoglobin"); v != "13.9" {
		t.Errorf("hemoglobin = %q", v)
	}
	if _, leaked := d.Get("aids-test"); leaked {
		t.Error("aids-test leaked")
	}
}

func TestPublicAPIDenyByDefault(t *testing.T) {
	s := newScenario(t)
	id := s.emit(t, "src-1", "PRS-1")
	if _, err := s.doctor.RequestDetails(id, schema.ClassBloodTest, css.PurposeHealthcareTreatment); !errors.Is(err, css.ErrDenied) {
		t.Errorf("no policy = %v, want css.ErrDenied", err)
	}
	if _, err := s.doctor.Subscribe(schema.ClassBloodTest, func(*css.Notification) {}); !errors.Is(err, css.ErrSubscriptionDenied) {
		t.Errorf("subscribe = %v, want css.ErrSubscriptionDenied", err)
	}
}

func TestPublicAPIConsent(t *testing.T) {
	s := newScenario(t)
	s.doctorPolicy(t)
	id := s.emit(t, "src-1", "PRS-1")
	if err := s.platform.OptOut("PRS-1", css.ConsentScope{}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.doctor.RequestDetails(id, schema.ClassBloodTest, css.PurposeHealthcareTreatment); !errors.Is(err, css.ErrConsentDenied) {
		t.Errorf("opt-out = %v, want css.ErrConsentDenied", err)
	}
	// Opt back in, narrowly.
	if err := s.platform.OptIn("PRS-1", css.ConsentScope{Consumer: "family-doctor"}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.doctor.RequestDetails(id, schema.ClassBloodTest, css.PurposeHealthcareTreatment); err != nil {
		t.Errorf("after scoped opt-in = %v", err)
	}
}

func TestPublicAPIDepartmentsAndValidity(t *testing.T) {
	s := newScenario(t)
	// Grant the whole welfare org; a department inherits.
	if _, err := s.platform.RegisterConsumer("social-welfare", "Welfare"); err != nil {
		t.Fatal(err)
	}
	until := time.Date(2010, 12, 31, 0, 0, 0, 0, time.UTC)
	if _, err := s.hospital.Policy(schema.BloodTest()).
		SelectFields("patient-id", "exam-date").
		SelectConsumers("social-welfare").
		SelectPurposes(css.PurposeAdministration).
		ValidUntil(until).
		Apply(); err != nil {
		t.Fatal(err)
	}
	id := s.emit(t, "src-1", "PRS-1")
	dept, err := s.platform.Department("social-welfare/home-care")
	if err != nil {
		t.Fatal(err)
	}
	in := time.Date(2010, 7, 1, 0, 0, 0, 0, time.UTC)
	if _, err := dept.RequestDetailsAt(id, schema.ClassBloodTest, css.PurposeAdministration, in); err != nil {
		t.Errorf("department in-window = %v", err)
	}
	out := until.AddDate(0, 1, 0)
	if _, err := dept.RequestDetailsAt(id, schema.ClassBloodTest, css.PurposeAdministration, out); !errors.Is(err, css.ErrDenied) {
		t.Errorf("department out-of-window = %v", err)
	}
}

func TestPublicAPIEmitValidation(t *testing.T) {
	s := newScenario(t)
	if _, err := s.hospital.Emit(nil, nil); err == nil {
		t.Error("nil emit accepted")
	}
	n := &css.Notification{SourceID: "a", Class: schema.ClassBloodTest, PersonID: "P",
		OccurredAt: time.Now(), Producer: "hospital"}
	d := css.NewDetail(schema.ClassBloodTest, "b", "hospital") // mismatched source
	if _, err := s.hospital.Emit(n, d); err == nil {
		t.Error("mismatched emit accepted")
	}
}

func TestPublicAPIPolicyApplyAtomicity(t *testing.T) {
	s := newScenario(t)
	// Second consumer actor is invalid at Build time? No — use a valid
	// builder but a field the schema lacks, failing before any store.
	_, err := s.hospital.Policy(schema.BloodTest()).
		SelectFields("no-such-field").
		SelectConsumers("family-doctor").
		SelectPurposes(css.PurposeHealthcareTreatment).
		Apply()
	if err == nil {
		t.Fatal("bad policy accepted")
	}
	if got := s.hospital.Policies(); len(got) != 0 {
		t.Errorf("failed Apply left %d policies", len(got))
	}
}

func TestPublicAPIInquireAndAudit(t *testing.T) {
	s := newScenario(t)
	s.doctorPolicy(t)
	s.emit(t, "src-1", "PRS-A")
	s.emit(t, "src-2", "PRS-B")

	res, err := s.doctor.Inquire(css.Inquiry{PersonID: "PRS-A"})
	if err != nil || len(res) != 1 {
		t.Fatalf("Inquire = %d, %v", len(res), err)
	}
	if _, err := s.doctor.RequestDetails(res[0].ID, schema.ClassBloodTest, css.PurposeHealthcareTreatment); err != nil {
		t.Fatal(err)
	}
	recs, err := s.platform.AuditSearch(css.AuditQuery{Kind: audit.KindDetailRequest})
	if err != nil || len(recs) != 1 {
		t.Fatalf("AuditSearch = %d, %v", len(recs), err)
	}
	if recs[0].Outcome != "permit" || recs[0].Actor != "family-doctor" {
		t.Errorf("audit record = %+v", recs[0])
	}
	if err := s.platform.AuditVerify(); err != nil {
		t.Errorf("AuditVerify = %v", err)
	}
}

func TestPublicAPIGatewayStatsAndRevocation(t *testing.T) {
	s := newScenario(t)
	pols := s.doctorPolicy(t)
	id := s.emit(t, "src-1", "PRS-1")
	if _, err := s.doctor.RequestDetails(id, schema.ClassBloodTest, css.PurposeHealthcareTreatment); err != nil {
		t.Fatal(err)
	}
	st := s.hospital.GatewayStats()
	if st.Served != 1 || st.BytesWithheld == 0 {
		t.Errorf("gateway stats = %+v", st)
	}
	for _, p := range pols {
		if err := s.platform.RevokePolicy(p.ID); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := s.doctor.RequestDetails(id, schema.ClassBloodTest, css.PurposeHealthcareTreatment); !errors.Is(err, css.ErrDenied) {
		t.Errorf("after revocation = %v", err)
	}
}

func TestPublicAPIPersistentPlatform(t *testing.T) {
	dir := t.TempDir()
	key := make([]byte, 32)
	for i := range key {
		key[i] = byte(i)
	}
	open := func() (*css.Platform, *css.Producer, *css.Consumer) {
		p, err := css.NewPlatform(css.WithDataDir(dir), css.WithMasterKey(key))
		if err != nil {
			t.Fatal(err)
		}
		hospital, err := p.RegisterProducer("hospital", "Hospital")
		if err != nil {
			t.Fatal(err)
		}
		if err := hospital.DeclareClass(schema.BloodTest()); err != nil {
			t.Fatal(err)
		}
		doctor, err := p.RegisterConsumer("family-doctor", "Doctors")
		if err != nil {
			t.Fatal(err)
		}
		return p, hospital, doctor
	}

	p1, hospital1, _ := open()
	n := &css.Notification{SourceID: "src-1", Class: schema.ClassBloodTest, PersonID: "PRS-1",
		OccurredAt: time.Date(2010, 3, 1, 0, 0, 0, 0, time.UTC), Producer: "hospital"}
	d := css.NewDetail(schema.ClassBloodTest, "src-1", "hospital").
		Set("patient-id", "PRS-1").Set("exam-date", "2010-03-01").Set("hemoglobin", "12.5")
	id, err := hospital1.Emit(n, d)
	if err != nil {
		t.Fatal(err)
	}
	p1.Close()

	p2, hospital2, doctor2 := open()
	defer p2.Close()
	if _, err := hospital2.Policy(schema.BloodTest()).
		SelectFields("patient-id", "hemoglobin").
		SelectConsumers("family-doctor").
		SelectPurposes(css.PurposeHealthcareTreatment).
		Apply(); err != nil {
		t.Fatal(err)
	}
	got, err := doctor2.RequestDetails(id, schema.ClassBloodTest, css.PurposeHealthcareTreatment)
	if err != nil {
		t.Fatalf("details after restart: %v", err)
	}
	if v, _ := got.Get("hemoglobin"); v != "12.5" {
		t.Errorf("hemoglobin = %q", v)
	}
}

func TestPublicAPIPendingRequests(t *testing.T) {
	s := newScenario(t)
	id := s.emit(t, "src-1", "PRS-1")
	// The doctor asks before any policy exists: denied and queued for the
	// hospital's privacy expert.
	s.doctor.RequestDetails(id, schema.ClassBloodTest, css.PurposeHealthcareTreatment)
	pending := s.hospital.PendingRequests()
	if len(pending) != 1 {
		t.Fatalf("pending = %d", len(pending))
	}
	if pending[0].Actor != "family-doctor" || pending[0].Purpose != css.PurposeHealthcareTreatment {
		t.Errorf("pending entry = %+v", pending[0])
	}
	// Eliciting the policy resolves the pending request and unblocks the
	// consumer.
	s.doctorPolicy(t)
	if got := s.hospital.PendingRequests(); len(got) != 0 {
		t.Errorf("pending after elicitation = %+v", got)
	}
	if _, err := s.doctor.RequestDetails(id, schema.ClassBloodTest, css.PurposeHealthcareTreatment); err != nil {
		t.Errorf("request after elicitation: %v", err)
	}
}

func TestPublicAPIAccessorsAndOptions(t *testing.T) {
	fixed := time.Date(2010, 1, 1, 0, 0, 0, 0, time.UTC)
	p, err := css.NewPlatform(
		css.WithDefaultConsent(true),
		css.WithClock(func() time.Time { return fixed }),
		css.WithBusOptions(bus.Options{MaxAttempts: 2}),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	if p.Controller() == nil {
		t.Fatal("Controller() = nil")
	}
	if got := p.Controller().Now(); !got.Equal(fixed) {
		t.Errorf("injected clock ignored: %v", got)
	}
	hospital, err := p.RegisterProducer("hospital", "H")
	if err != nil {
		t.Fatal(err)
	}
	if hospital.ID() != "hospital" {
		t.Errorf("Producer.ID = %q", hospital.ID())
	}
	doctor, err := p.RegisterConsumer("family-doctor", "D")
	if err != nil {
		t.Fatal(err)
	}
	if doctor.Actor() != "family-doctor" {
		t.Errorf("Consumer.Actor = %q", doctor.Actor())
	}
	if _, err := p.Department("bad//actor"); err == nil {
		t.Error("Department accepted bad actor")
	}
	// Schema constructors.
	if _, err := css.NewSchema("c.x", 1, "d"); err == nil {
		t.Error("NewSchema accepted empty field list")
	}
	s := css.MustSchema("c.x", 1, "d", css.Field{Name: "f", Type: css.Int})
	if !s.Has("f") {
		t.Error("MustSchema lost field")
	}
	// ValidFrom on the policy builder.
	if err := hospital.DeclareClass(s); err != nil {
		t.Fatal(err)
	}
	pols, err := hospital.Policy(s).
		SelectFields("f").
		SelectConsumers("family-doctor").
		SelectPurposes("p").
		ValidFrom(fixed.AddDate(1, 0, 0)).
		Apply()
	if err != nil {
		t.Fatal(err)
	}
	if !pols[0].NotBefore.Equal(fixed.AddDate(1, 0, 0)) {
		t.Errorf("ValidFrom = %v", pols[0].NotBefore)
	}
	// Not yet valid: subscription denied at the fixed clock.
	if _, err := doctor.Subscribe("c.x", func(*css.Notification) {}); !errors.Is(err, css.ErrSubscriptionDenied) {
		t.Errorf("pre-validity subscribe = %v", err)
	}
	// ErrUnknownEvent surfaces through the facade.
	if _, err := doctor.RequestDetailsAt("evt-ghost", "c.x", "p", fixed.AddDate(2, 0, 0)); !errors.Is(err, css.ErrUnknownEvent) {
		t.Errorf("unknown event = %v", err)
	}
	// RecordConsent through the platform handle.
	if _, err := p.RecordConsent(css.ConsentDirective{PersonID: "P", Allow: true}); err != nil {
		t.Errorf("RecordConsent = %v", err)
	}
	if got := p.Controller().ConsentDirectives("P"); len(got) != 1 {
		t.Errorf("ConsentDirectives = %d", len(got))
	}
}
