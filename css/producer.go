package css

import (
	"errors"
	"time"

	"repro/internal/core"
	"repro/internal/gateway"
	"repro/internal/policy"
)

// Producer is a data source admitted to the platform, with its local
// cooperation gateway. It declares event classes, emits events, and
// elicits the privacy policies that govern them.
type Producer struct {
	platform *Platform
	id       ProducerID
	gw       *gateway.Gateway
}

// ID returns the producer identifier.
func (p *Producer) ID() ProducerID { return p.id }

// DeclareClass installs an event class schema in the catalog.
func (p *Producer) DeclareClass(s *Schema) error {
	return p.platform.ctrl.DeclareClass(p.id, s)
}

// Emit performs one full producer cycle: the detail message is persisted
// in the local cooperation gateway (it never leaves the producer), and
// the notification is published to the data controller, which assigns and
// returns the global event id.
func (p *Producer) Emit(n *Notification, d *Detail) (EventID, error) {
	if n == nil || d == nil {
		return "", errors.New("css: nil notification or detail")
	}
	if n.SourceID != d.SourceID || n.Class != d.Class {
		return "", errors.New("css: notification and detail do not describe the same event")
	}
	if err := p.gw.Persist(d); err != nil {
		return "", err
	}
	return p.platform.ctrl.Publish(n)
}

// Policy starts the elicitation of privacy rules for one of the
// producer's event classes — the programmatic Privacy Requirements
// Elicitation Tool. Terminate the chain with Apply.
func (p *Producer) Policy(s *Schema) *PolicyBuilder {
	return &PolicyBuilder{
		platform: p.platform,
		builder:  policy.NewBuilder(p.id, s),
	}
}

// Policies lists the producer's stored policies.
func (p *Producer) Policies() []*Policy {
	return p.platform.ctrl.Policies(p.id)
}

// PendingRequest is a consumer access attempt denied for lack of a
// policy, awaiting the producer's elicitation decision (paper §5).
type PendingRequest = core.PendingRequest

// PendingRequests lists the unresolved access requests on this producer's
// classes, most recent first. Applying a policy that satisfies an entry
// clears it.
func (p *Producer) PendingRequests() []PendingRequest {
	return p.platform.ctrl.PendingRequests(p.id)
}

// GatewayStats reports the gateway's exposure counters.
func (p *Producer) GatewayStats() gateway.Stats { return p.gw.Stats() }

// PolicyBuilder elicits privacy policy rules step by step (Figs 6-7 of
// the paper) and stores them on Apply.
type PolicyBuilder struct {
	platform *Platform
	builder  *policy.Builder
}

// SelectFields adds event fields to release.
func (b *PolicyBuilder) SelectFields(fields ...FieldName) *PolicyBuilder {
	b.builder.SelectFields(fields...)
	return b
}

// SelectAllFieldsExcept releases every field except the listed ones.
func (b *PolicyBuilder) SelectAllFieldsExcept(excluded ...FieldName) *PolicyBuilder {
	b.builder.SelectAllFieldsExcept(excluded...)
	return b
}

// SelectConsumers adds the consumer units the rule applies to.
func (b *PolicyBuilder) SelectConsumers(consumers ...Actor) *PolicyBuilder {
	b.builder.SelectConsumers(consumers...)
	return b
}

// SelectPurposes adds the admissible purposes of use.
func (b *PolicyBuilder) SelectPurposes(purposes ...Purpose) *PolicyBuilder {
	b.builder.SelectPurposes(purposes...)
	return b
}

// Label names the rule.
func (b *PolicyBuilder) Label(name, description string) *PolicyBuilder {
	b.builder.Label(name, description)
	return b
}

// ValidFrom bounds the rule's validity start.
func (b *PolicyBuilder) ValidFrom(t time.Time) *PolicyBuilder {
	b.builder.ValidFrom(t)
	return b
}

// ValidUntil bounds the rule's validity end (e.g. a care contract term).
func (b *PolicyBuilder) ValidUntil(t time.Time) *PolicyBuilder {
	b.builder.ValidUntil(t)
	return b
}

// Apply validates the elicited rules and stores them (one policy per
// selected consumer), returning the stored policies.
func (b *PolicyBuilder) Apply() ([]*Policy, error) {
	policies, err := b.builder.Build()
	if err != nil {
		return nil, err
	}
	stored := make([]*Policy, 0, len(policies))
	for _, p := range policies {
		s, err := b.platform.ctrl.DefinePolicy(p)
		if err != nil {
			// Roll back the rules stored so far so Apply is atomic.
			for _, done := range stored {
				b.platform.ctrl.RevokePolicy(done.ID)
			}
			return nil, err
		}
		stored = append(stored, s)
	}
	return stored, nil
}
