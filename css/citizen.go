package css

import (
	"errors"

	"repro/internal/audit"
)

// Citizen is the data subject's own handle on the platform — the
// Personalized Health Record direction the paper names as the system's
// next step (§7: "The system can be used also directly by the citizens to
// specify and control their consent on data exchanges ... the CSS is the
// backbone for the implementation of a Personalized Health Records (PHR)
// in Trentino").
//
// A citizen can review the timeline of their own events, inspect who
// accessed their data and why, and manage their consent directives. The
// identity of the citizen is assumed authenticated by the national
// identity layer the paper defers to; here the handle is created from the
// verified person identifier.
type Citizen struct {
	platform *Platform
	personID string
}

// Citizen returns the handle of a data subject.
func (p *Platform) Citizen(personID string) (*Citizen, error) {
	if personID == "" {
		return nil, errors.New("css: empty person id")
	}
	return &Citizen{platform: p, personID: personID}, nil
}

// PersonID returns the citizen's identifier.
func (c *Citizen) PersonID() string { return c.personID }

// Timeline returns the citizen's own notifications — the sequence of
// "snapshots" that §4 describes as the person's social and health
// profile. It bypasses consumer authorization (the data subject always
// sees her own index entries) but redacts producer-local identifiers.
func (c *Citizen) Timeline(q Inquiry) ([]*Notification, error) {
	q.PersonID = c.personID
	raw, err := c.platform.ctrl.InquireOwn(c.personID, q)
	if err != nil {
		return nil, err
	}
	return raw, nil
}

// AccessHistory answers the data subject's auditing inquiry (§2: "to be
// able to answer to auditing inquiry by the privacy guarantor or the data
// subject herself"): every detail request and index access that touched
// one of her events.
func (c *Citizen) AccessHistory() ([]AuditRecord, error) {
	timeline, err := c.Timeline(Inquiry{})
	if err != nil {
		return nil, err
	}
	var out []AuditRecord
	for _, n := range timeline {
		recs, err := c.platform.ctrl.Audit().Search(audit.Query{EventID: n.ID})
		if err != nil {
			return nil, err
		}
		out = append(out, recs...)
	}
	return out, nil
}

// OptOut records a denial for the citizen, optionally scoped.
func (c *Citizen) OptOut(scope ConsentScope) error {
	return c.platform.OptOut(c.personID, scope)
}

// OptIn records a permission for the citizen, optionally scoped.
func (c *Citizen) OptIn(scope ConsentScope) error {
	return c.platform.OptIn(c.personID, scope)
}

// Directives lists the citizen's recorded consent decisions.
func (c *Citizen) Directives() []ConsentDirective {
	return c.platform.ctrl.ConsentDirectives(c.personID)
}
