package css_test

import (
	"errors"
	"testing"
	"time"

	"repro/css"
	"repro/internal/schema"
)

func TestMonitorProcessesRequiresAuthorization(t *testing.T) {
	s := newScenario(t)
	pathway := &css.Pathway{
		Name:    "exam follow-up",
		Trigger: schema.ClassBloodTest,
		Stages:  []css.PathwayStage{{Name: "repeat test", Class: schema.ClassBloodTest, Within: 24 * time.Hour}},
	}
	// No policy: the monitoring body cannot subscribe (deny-by-default
	// applies to monitoring like any other access).
	if _, err := s.doctor.MonitorProcesses(pathway); !errors.Is(err, css.ErrSubscriptionDenied) {
		t.Fatalf("unauthorized monitoring = %v", err)
	}
	s.doctorPolicy(t)
	m, err := s.doctor.MonitorProcesses(pathway)
	if err != nil {
		t.Fatalf("authorized monitoring = %v", err)
	}
	defer m.Stop()

	s.emit(t, "src-1", "PRS-1")
	if !s.platform.Flush(5 * time.Second) {
		t.Fatal("Flush timed out")
	}
	report := m.Snapshot(time.Date(2010, 5, 30, 10, 0, 0, 0, time.UTC))
	if len(report.Active) != 1 || report.Active[0].PersonID != "PRS-1" {
		t.Fatalf("active = %+v", report.Active)
	}
	// The repeat test completes the instance.
	s.emit(t, "src-2", "PRS-1")
	if !s.platform.Flush(5 * time.Second) {
		t.Fatal("Flush timed out")
	}
	report = m.Snapshot(time.Date(2010, 5, 30, 11, 0, 0, 0, time.UTC))
	if len(report.Completed) != 1 {
		t.Fatalf("completed = %+v", report.Completed)
	}

	// After Stop, further events no longer feed the monitor.
	m.Stop()
	s.emit(t, "src-3", "PRS-2")
	s.platform.Flush(5 * time.Second)
	report = m.Snapshot(time.Date(2010, 5, 30, 12, 0, 0, 0, time.UTC))
	if len(report.Active) != 0 {
		t.Errorf("monitor observed after Stop: %+v", report.Active)
	}
}

func TestMonitorProcessesBackfillViaObserve(t *testing.T) {
	s := newScenario(t)
	s.doctorPolicy(t)
	// Events published before the monitor existed...
	id := s.emit(t, "src-1", "PRS-1")
	_ = id
	pathway := &css.Pathway{
		Name:    "exam follow-up",
		Trigger: schema.ClassBloodTest,
		Stages:  []css.PathwayStage{{Name: "repeat", Class: schema.ClassBloodTest}},
	}
	m, err := s.doctor.MonitorProcesses(pathway)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Stop()
	// ...are backfilled from an authorized index inquiry.
	history, err := s.doctor.Inquire(css.Inquiry{})
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range history {
		m.Observe(n)
	}
	report := m.Snapshot(time.Now())
	if len(report.Active) != 1 {
		t.Errorf("active after backfill = %+v", report.Active)
	}
}
