package css

import (
	"path/filepath"
	"time"

	"repro/internal/bus"
	"repro/internal/core"
	"repro/internal/enforcer"
	"repro/internal/gateway"
	"repro/internal/store"
)

// Re-exported sentinel errors, so callers can errors.Is against the
// public package only.
var (
	// ErrDenied reports a detail request refused by the privacy policies
	// (deny-by-default included).
	ErrDenied = enforcer.ErrDenied
	// ErrConsentDenied reports a flow blocked by the data subject's
	// consent.
	ErrConsentDenied = core.ErrConsentDeny
	// ErrSubscriptionDenied reports a subscription without an authorizing
	// policy.
	ErrSubscriptionDenied = core.ErrSubscriptionDeny
	// ErrUnknownEvent reports a request for an event id the platform
	// never assigned.
	ErrUnknownEvent = enforcer.ErrUnknownEvent
)

// Option configures NewPlatform.
type Option func(*core.Config)

// WithDataDir persists the platform state under dir.
func WithDataDir(dir string) Option {
	return func(c *core.Config) { c.DataDir = dir }
}

// WithMasterKey supplies the 32-byte key protecting person identifiers.
func WithMasterKey(key []byte) Option {
	return func(c *core.Config) { c.MasterKey = key }
}

// WithDefaultConsent sets the decision with no recorded directive
// (default: allow — opt-out model).
func WithDefaultConsent(allow bool) Option {
	return func(c *core.Config) { c.DefaultConsent = allow }
}

// WithClock injects a clock for simulated time.
func WithClock(now func() time.Time) Option {
	return func(c *core.Config) { c.Now = now }
}

// WithBusOptions tunes the event distribution fabric.
func WithBusOptions(o bus.Options) Option {
	return func(c *core.Config) { c.Bus = o }
}

// Platform is one CSS deployment: the data controller plus the producer
// gateways created through it. Safe for concurrent use.
type Platform struct {
	ctrl    *core.Controller
	dataDir string
}

// NewPlatform creates a platform. By default everything is in-memory
// with a random master key and opt-out consent; see the Options.
func NewPlatform(opts ...Option) (*Platform, error) {
	cfg := core.Config{DefaultConsent: true}
	for _, o := range opts {
		o(&cfg)
	}
	ctrl, err := core.New(cfg)
	if err != nil {
		return nil, err
	}
	return &Platform{ctrl: ctrl, dataDir: cfg.DataDir}, nil
}

// Close shuts the platform down.
func (p *Platform) Close() error { return p.ctrl.Close() }

// Controller exposes the underlying data controller for advanced use
// (transport binding, direct flows).
func (p *Platform) Controller() *core.Controller { return p.ctrl }

// RegisterProducer admits a data source and provisions its local
// cooperation gateway (persistent when the platform has a data
// directory).
func (p *Platform) RegisterProducer(id ProducerID, name string) (*Producer, error) {
	if err := p.ctrl.RegisterProducer(id, name); err != nil {
		return nil, err
	}
	var st *store.Store
	if p.dataDir == "" {
		st = store.OpenMemory()
	} else {
		var err error
		st, err = store.Open(filepath.Join(p.dataDir, "gateway-"+string(id)+".wal"), store.Options{})
		if err != nil {
			return nil, err
		}
	}
	gw, err := gateway.New(id, st, p.ctrl.Catalog())
	if err != nil {
		return nil, err
	}
	if err := p.ctrl.AttachGateway(id, gw); err != nil {
		return nil, err
	}
	return &Producer{platform: p, id: id, gw: gw}, nil
}

// RegisterConsumer admits a consumer organization (and thereby its
// departments).
func (p *Platform) RegisterConsumer(actor Actor, name string) (*Consumer, error) {
	if err := p.ctrl.RegisterConsumer(actor, name); err != nil {
		return nil, err
	}
	return &Consumer{platform: p, actor: actor}, nil
}

// Department returns a Consumer handle for a department of an already
// registered organization (e.g. "hospital/laboratory").
func (p *Platform) Department(actor Actor) (*Consumer, error) {
	if err := actor.Validate(); err != nil {
		return nil, err
	}
	return &Consumer{platform: p, actor: actor}, nil
}

// RecordConsent stores a citizen consent directive.
func (p *Platform) RecordConsent(d ConsentDirective) (ConsentDirective, error) {
	return p.ctrl.RecordConsent(d)
}

// OptOut records a denial for person, optionally scoped.
func (p *Platform) OptOut(personID string, scope ConsentScope) error {
	_, err := p.ctrl.RecordConsent(ConsentDirective{PersonID: personID, Allow: false, Scope: scope})
	return err
}

// OptIn records a permission for person, optionally scoped.
func (p *Platform) OptIn(personID string, scope ConsentScope) error {
	_, err := p.ctrl.RecordConsent(ConsentDirective{PersonID: personID, Allow: true, Scope: scope})
	return err
}

// AuditSearch queries the access log — the inquiry interface of the
// privacy guarantor.
func (p *Platform) AuditSearch(q AuditQuery) ([]AuditRecord, error) {
	return p.ctrl.Audit().Search(q)
}

// AuditVerify checks the integrity of the hash-chained access log.
func (p *Platform) AuditVerify() error { return p.ctrl.Audit().Verify() }

// Flush waits for all pending notification deliveries (useful in tests
// and batch jobs).
func (p *Platform) Flush(timeout time.Duration) bool { return p.ctrl.Flush(timeout) }

// RevokePolicy removes a stored policy.
func (p *Platform) RevokePolicy(id PolicyID) error { return p.ctrl.RevokePolicy(id) }
