package css

import (
	"time"

	"repro/internal/core"
	"repro/internal/event"
)

// Consumer is a consumer organizational unit: it subscribes to event
// classes, inquires the events index, and requests details with a stated
// purpose.
type Consumer struct {
	platform *Platform
	actor    Actor
}

// Actor returns the consumer's organizational path.
func (c *Consumer) Actor() Actor { return c.actor }

// Subscription is a live notification subscription.
type Subscription = core.Subscription

// Subscribe registers for the notifications of a class. With no policy
// authorizing this consumer on the class, the subscription is rejected
// (deny-by-default).
func (c *Consumer) Subscribe(class ClassID, h func(n *Notification)) (*Subscription, error) {
	return c.platform.ctrl.Subscribe(c.actor, class, h)
}

// RequestDetails asks for the details of a notified event, stating the
// purpose of use. Only the fields allowed by the matching privacy policy
// are returned; everything else never leaves the producer.
func (c *Consumer) RequestDetails(id EventID, class ClassID, purpose Purpose) (*Detail, error) {
	return c.platform.ctrl.RequestDetails(&event.DetailRequest{
		Requester: c.actor,
		Class:     class,
		EventID:   id,
		Purpose:   purpose,
	})
}

// RequestDetailsAt is RequestDetails at an explicit instant (simulated
// time, validity-window evaluation).
func (c *Consumer) RequestDetailsAt(id EventID, class ClassID, purpose Purpose, at time.Time) (*Detail, error) {
	return c.platform.ctrl.RequestDetails(&event.DetailRequest{
		Requester: c.actor,
		Class:     class,
		EventID:   id,
		Purpose:   purpose,
		At:        at,
	})
}

// Inquire queries the events index for the notifications this consumer
// is authorized to see.
func (c *Consumer) Inquire(q Inquiry) ([]*Notification, error) {
	return c.platform.ctrl.InquireIndex(c.actor, q)
}
