package css_test

import (
	"fmt"
	"log"
	"time"

	"repro/css"
)

// Example walks the full summary-then-request protocol: declare a class,
// elicit a policy that obfuscates a sensitive field, emit an event, and
// request its details with a stated purpose.
func Example() {
	platform, err := css.NewPlatform()
	if err != nil {
		log.Fatal(err)
	}
	defer platform.Close()

	exam := css.MustSchema("clinic.exam", 1, "Clinical exam",
		css.Field{Name: "patient-id", Type: css.String, Required: true, Sensitivity: css.Identifying},
		css.Field{Name: "result", Type: css.String, Sensitivity: css.Sensitive},
		css.Field{Name: "notes", Type: css.String, Sensitivity: css.Sensitive},
	)
	clinic, err := platform.RegisterProducer("clinic", "The clinic")
	if err != nil {
		log.Fatal(err)
	}
	if err := clinic.DeclareClass(exam); err != nil {
		log.Fatal(err)
	}
	doctor, err := platform.RegisterConsumer("doctor", "The doctor")
	if err != nil {
		log.Fatal(err)
	}
	if _, err := clinic.Policy(exam).
		SelectFields("patient-id", "result").
		SelectConsumers("doctor").
		SelectPurposes(css.PurposeHealthcareTreatment).
		Apply(); err != nil {
		log.Fatal(err)
	}

	id, err := clinic.Emit(
		&css.Notification{
			SourceID: "exam-1", Class: "clinic.exam", PersonID: "PRS-1",
			Summary: "exam done", OccurredAt: time.Date(2010, 6, 1, 9, 0, 0, 0, time.UTC),
			Producer: "clinic",
		},
		css.NewDetail("clinic.exam", "exam-1", "clinic").
			Set("patient-id", "PRS-1").
			Set("result", "all clear").
			Set("notes", "internal remarks"),
	)
	if err != nil {
		log.Fatal(err)
	}

	d, err := doctor.RequestDetails(id, "clinic.exam", css.PurposeHealthcareTreatment)
	if err != nil {
		log.Fatal(err)
	}
	result, _ := d.Get("result")
	_, notesReleased := d.Get("notes")
	fmt.Printf("result=%s notes-released=%v\n", result, notesReleased)
	// Output: result=all clear notes-released=false
}
