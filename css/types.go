// Package css is the public API of the CSS platform — a privacy-
// preserving, event-driven integration layer for cooperating social and
// health systems, reproducing Armellin et al., "Privacy Preserving Event
// Driven Integration for Interoperating Social and Health Systems"
// (SDM @ VLDB 2010).
//
// The platform follows the paper's summary-then-request protocol: source
// systems publish non-sensitive notification messages (who/what/when/
// where) through a central data controller, which indexes them with
// encrypted person identifiers and routes them to authorized subscribers;
// the sensitive detail messages never leave the producing source until an
// authorized, purpose-stated request for details arrives, and even then
// only the fields allowed by the producer's privacy policy are released.
//
// A minimal session:
//
//	platform, _ := css.NewPlatform()
//	defer platform.Close()
//
//	hospital, _ := platform.RegisterProducer("hospital", "Hospital")
//	hospital.DeclareClass(bloodTestSchema)
//	doctor, _ := platform.RegisterConsumer("family-doctor", "Doctors")
//
//	hospital.Policy(bloodTestSchema).
//	    SelectAllFieldsExcept("aids-test").
//	    SelectConsumers("family-doctor").
//	    SelectPurposes(css.PurposeHealthcareTreatment).
//	    Apply()
//
//	doctor.Subscribe("hospital.blood-test", func(n *css.Notification) { ... })
//	id, _ := hospital.Emit(notification, detail)
//	detail, _ := doctor.RequestDetails(id, "hospital.blood-test", css.PurposeHealthcareTreatment)
package css

import (
	"repro/internal/audit"
	"repro/internal/consent"
	"repro/internal/event"
	"repro/internal/index"
	"repro/internal/policy"
	"repro/internal/schema"
)

// Core event-model types, re-exported for single-import use.
type (
	// Notification is the non-sensitive summary message of an event.
	Notification = event.Notification
	// Detail is the sensitive payload, released field-by-field.
	Detail = event.Detail
	// DetailRequest asks for the details of a notified event.
	DetailRequest = event.DetailRequest
	// EventID is the controller-assigned global event identifier.
	EventID = event.GlobalID
	// SourceID is the producer-local event identifier.
	SourceID = event.SourceID
	// ClassID names a class of events in the catalog.
	ClassID = event.ClassID
	// FieldName names a field of an event details class.
	FieldName = event.FieldName
	// ProducerID identifies a data source organization.
	ProducerID = event.ProducerID
	// Actor identifies a consumer organizational unit (hierarchical).
	Actor = event.Actor
	// Purpose is a declared purpose of use.
	Purpose = event.Purpose
)

// Schema types.
type (
	// Schema declares the structure of an event details class.
	Schema = schema.Schema
	// Field is one typed, sensitivity-labelled schema field.
	Field = schema.Field
)

// Policy and governance types.
type (
	// Policy is a Definition-2 privacy policy {Actor, Class, Purposes, Fields}.
	Policy = policy.Policy
	// PolicyID identifies a stored policy.
	PolicyID = policy.ID
	// ConsentDirective is a citizen opt-in/opt-out decision.
	ConsentDirective = consent.Directive
	// ConsentScope delimits a directive (class/consumer/purpose).
	ConsentScope = consent.Scope
	// AuditRecord is one entry of the hash-chained access log.
	AuditRecord = audit.Record
	// AuditQuery filters the audit trail.
	AuditQuery = audit.Query
	// Inquiry filters an events index query.
	Inquiry = index.Inquiry
)

// Well-known purposes of the social and health scenario.
const (
	PurposeHealthcareTreatment = event.PurposeHealthcareTreatment
	PurposeStatisticalAnalysis = event.PurposeStatisticalAnalysis
	PurposeAdministration      = event.PurposeAdministration
	PurposeSocialAssistance    = event.PurposeSocialAssistance
	PurposeAudit               = event.PurposeAudit
)

// Field type and sensitivity constants for schema construction.
const (
	String   = schema.String
	Int      = schema.Int
	Float    = schema.Float
	Bool     = schema.Bool
	Date     = schema.Date
	DateTime = schema.DateTime
	Code     = schema.Code

	Ordinary    = schema.Ordinary
	Identifying = schema.Identifying
	Sensitive   = schema.Sensitive
)

// NewSchema declares an event class schema.
func NewSchema(class ClassID, version int, doc string, fields ...Field) (*Schema, error) {
	return schema.New(class, version, doc, fields...)
}

// MustSchema is NewSchema that panics on error, for statically known
// schemas.
func MustSchema(class ClassID, version int, doc string, fields ...Field) *Schema {
	return schema.MustNew(class, version, doc, fields...)
}

// NewDetail starts a detail message for an event.
func NewDetail(class ClassID, src SourceID, producer ProducerID) *Detail {
	return event.NewDetail(class, src, producer)
}
