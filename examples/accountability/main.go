// Accountability: the governing body's aggregated reporting (paper §2:
// providers report "detailed vs aggregated data to the governing body
// (province or ministry of health and finance) for accountability and
// reimbursement purposes").
//
// The province aggregates a year of service notifications into the
// monthly reimbursement table — services delivered, citizens served, mean
// intensity — per provider and service. No detail request is ever issued
// and no identifier appears in the report.
//
// Run: go run ./examples/accountability
package main

import (
	"fmt"
	"log"
	"time"

	"repro/css"
	"repro/internal/reporting"
	"repro/internal/workload"
)

func main() {
	platform, err := css.NewPlatform()
	if err != nil {
		log.Fatal(err)
	}
	defer platform.Close()
	world, err := workload.Provision(platform.Controller())
	if err != nil {
		log.Fatal(err)
	}
	if _, err := world.StandardPolicies(); err != nil {
		log.Fatal(err)
	}

	// The province is admitted and granted notification-level access to
	// every class (one policy per producer/class pair — patient-id only).
	if err := platform.Controller().RegisterConsumer("province", "Autonomous Province"); err != nil {
		log.Fatal(err)
	}
	for _, spec := range workload.Producers() {
		for _, s := range spec.Classes {
			if _, err := platform.Controller().DefinePolicy(&css.Policy{
				Producer: spec.ID,
				Actor:    "province",
				Class:    s.Class(),
				Purposes: []css.Purpose{css.PurposeAdministration},
				Fields:   []css.FieldName{"patient-id"},
			}); err != nil {
				log.Fatal(err)
			}
		}
	}
	province, err := platform.Department("province")
	if err != nil {
		log.Fatal(err)
	}

	// The province subscribes to everything through its aggregator.
	agg := reporting.NewAggregator(reporting.Quarterly)
	for _, spec := range workload.Producers() {
		for _, s := range spec.Classes {
			if _, err := province.Subscribe(s.Class(), func(n *css.Notification) {
				agg.Observe(n)
			}); err != nil {
				log.Fatal(err)
			}
		}
	}

	// A year of service delivery across all institutions.
	gen := workload.NewGenerator(workload.Config{Seed: 99, People: 400})
	const events = 3000
	for i := 0; i < events; i++ {
		n, d := gen.Next()
		if _, err := world.Produce(n, d); err != nil {
			log.Fatal(err)
		}
	}
	if !platform.Flush(10 * time.Second) {
		log.Fatal("deliveries did not drain")
	}

	fmt.Println("quarter   provider             service                          services  citizens  per-citizen")
	for _, row := range agg.Report() {
		if row.Bucket > "2010-Q2" {
			continue // print the first half year
		}
		fmt.Printf("%-9s %-20s %-32s %-9d %-9d %.2f\n",
			row.Bucket, row.Producer, row.Class, row.Services, row.Citizens, row.ServicesPerCitizen)
	}
	for _, spec := range workload.Producers() {
		services, buckets := agg.Totals(spec.ID)
		fmt.Printf("reimbursement basis for %-22s %5d services over %d quarters\n",
			spec.ID+":", services, buckets)
	}

	// The aggregate required zero detail requests.
	recs, _ := platform.AuditSearch(css.AuditQuery{Actor: "province", Kind: "detail-request"})
	fmt.Printf("\ndetail requests issued by the province: %d\n", len(recs))
}
