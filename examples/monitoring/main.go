// Monitoring: the governing body's process view — the reason CSS exists
// (paper §1: projects "to monitor, control and trace the clinical and
// assistive processes with a fine-grained control on the access and
// dissemination of sensitive information").
//
// The social welfare department monitors the post-discharge care pathway
// (hospital discharge → home care within 7 days → nursing within 14
// days) across every institution, using only notification messages: it
// learns who is stuck where — and never sees a diagnosis.
//
// Run: go run ./examples/monitoring
package main

import (
	"fmt"
	"log"
	"time"

	"repro/css"
	"repro/internal/schema"
	"repro/internal/workload"
)

func main() {
	clock := time.Date(2010, 3, 1, 8, 0, 0, 0, time.UTC)
	platform, err := css.NewPlatform(css.WithClock(func() time.Time { return clock }))
	if err != nil {
		log.Fatal(err)
	}
	defer platform.Close()
	world, err := workload.Provision(platform.Controller())
	if err != nil {
		log.Fatal(err)
	}
	if _, err := world.StandardPolicies(); err != nil {
		log.Fatal(err)
	}

	// Monitoring is an access like any other: the welfare department
	// needs policies on the monitored classes (deny-by-default). The
	// hospital and the social services grant notification-level access.
	monitorOn := func(producer string, s *css.Schema) {
		pols, err := platform.Controller().DefinePolicy(&css.Policy{
			Producer: css.ProducerID(producer),
			Actor:    "social-welfare",
			Class:    s.Class(),
			Purposes: []css.Purpose{css.PurposeAdministration},
			Fields:   []css.FieldName{"patient-id"},
		})
		_ = pols
		if err != nil {
			log.Fatal(err)
		}
	}
	monitorOn("hospital-s-maria", schema.Discharge())
	monitorOn("social-services", schema.NursingService())
	// Home care is already granted to social-welfare/home-care by the
	// standard set; grant the parent unit too.
	monitorOn("municipality-trento", schema.HomeCare())

	welfare, err := platform.Department("social-welfare")
	if err != nil {
		log.Fatal(err)
	}
	pathway := &css.Pathway{
		Name:    "post-discharge care",
		Trigger: schema.ClassDischarge,
		Stages: []css.PathwayStage{
			{Name: "home care activated", Class: schema.ClassHomeCare, Within: 7 * 24 * time.Hour},
			{Name: "first nursing visit", Class: schema.ClassNursingService, Within: 14 * 24 * time.Hour},
		},
	}
	monitor, err := welfare.MonitorProcesses(pathway)
	if err != nil {
		log.Fatal(err)
	}
	defer monitor.Stop()

	// Three patients leave the hospital; their care continues unevenly.
	emit := func(producer string, class css.ClassID, src css.SourceID, person string, at time.Time, detail *css.Detail) {
		gw := world.Gateways[css.ProducerID(producer)]
		if err := gw.Persist(detail); err != nil {
			log.Fatal(err)
		}
		if _, err := platform.Controller().Publish(&css.Notification{
			SourceID: src, Class: class, PersonID: person,
			Summary: string(class), OccurredAt: at, Producer: css.ProducerID(producer),
		}); err != nil {
			log.Fatal(err)
		}
	}
	discharge := func(src css.SourceID, person string, at time.Time) {
		emit("hospital-s-maria", schema.ClassDischarge, src, person, at,
			css.NewDetail(schema.ClassDischarge, src, "hospital-s-maria").
				Set("patient-id", person).Set("ward", "geriatrics").
				Set("admission-date", "2010-02-20").Set("discharge-date", at.Format("2006-01-02")).
				Set("diagnosis", "confidential"))
	}
	homeCare := func(src css.SourceID, person string, at time.Time) {
		emit("municipality-trento", schema.ClassHomeCare, src, person, at,
			css.NewDetail(schema.ClassHomeCare, src, "municipality-trento").
				Set("patient-id", person).Set("name", "N").Set("surname", "S").
				Set("service-type", "nursing"))
	}
	nursing := func(src css.SourceID, person string, at time.Time) {
		emit("social-services", schema.ClassNursingService, src, person, at,
			css.NewDetail(schema.ClassNursingService, src, "social-services").
				Set("patient-id", person).Set("intervention-date", at.Format("2006-01-02")))
	}

	day := func(d int) time.Time { return clock.Add(time.Duration(d) * 24 * time.Hour) }
	discharge("d-1", "PRS-ANNA", day(0))
	discharge("d-2", "PRS-BRUNO", day(0))
	discharge("d-3", "PRS-CARLA", day(1))
	homeCare("h-1", "PRS-ANNA", day(2))  // on time
	nursing("n-1", "PRS-ANNA", day(9))   // on time → completed
	homeCare("h-2", "PRS-BRUNO", day(5)) // on time, but no nursing follows
	// Carla gets nothing at all.

	platform.Flush(5 * time.Second)

	// Three weeks later the welfare department reviews the pathway.
	now := day(22)
	report := monitor.Snapshot(now)
	fmt.Printf("post-discharge pathway on %s:\n", now.Format("2006-01-02"))
	fmt.Printf("  completed: %d\n", len(report.Completed))
	for _, i := range report.Completed {
		fmt.Printf("    %-10s discharged %s, completed %s\n",
			i.PersonID, i.StartedAt.Format("01-02"), i.CompletedAt.Format("01-02"))
	}
	fmt.Printf("  stalled:   %d\n", len(report.Stalled))
	for _, i := range report.Stalled {
		fmt.Printf("    %-10s stuck awaiting stage %d since deadline %s\n",
			i.PersonID, i.NextStage, i.Deadline.Format("01-02"))
	}
	fmt.Printf("  active:    %d\n", len(report.Active))

	// The privacy guarantee: the monitor never touched details.
	recs, _ := platform.AuditSearch(css.AuditQuery{Actor: "social-welfare"})
	details := 0
	for _, r := range recs {
		if r.Kind == "detail-request" {
			details++
		}
	}
	fmt.Printf("\ndetail requests issued by the monitoring body: %d (monitoring runs on notifications alone)\n", details)
}
