// Quickstart: the summary-then-request protocol in one file.
//
// A hospital publishes a blood-test event. The family doctor receives the
// non-sensitive notification, then requests the details for healthcare
// treatment — and gets exactly the fields the hospital's privacy policy
// allows: the AIDS test result never leaves the hospital.
//
// Run: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"repro/css"
)

func main() {
	platform, err := css.NewPlatform()
	if err != nil {
		log.Fatal(err)
	}
	defer platform.Close()

	// 1. The hospital joins the platform and declares its event class.
	bloodTest := css.MustSchema("hospital.blood-test", 1, "Blood test completed by the laboratory",
		css.Field{Name: "patient-id", Type: css.String, Required: true, Sensitivity: css.Identifying},
		css.Field{Name: "exam-date", Type: css.Date, Required: true, Sensitivity: css.Ordinary},
		css.Field{Name: "hemoglobin", Type: css.Float, Sensitivity: css.Sensitive},
		css.Field{Name: "aids-test", Type: css.Code, Sensitivity: css.Sensitive,
			Codes: []string{"negative", "positive", "inconclusive"}},
	)
	hospital, err := platform.RegisterProducer("hospital", "Hospital S. Maria")
	if err != nil {
		log.Fatal(err)
	}
	if err := hospital.DeclareClass(bloodTest); err != nil {
		log.Fatal(err)
	}

	// 2. The family doctor joins as a consumer.
	doctor, err := platform.RegisterConsumer("family-doctor", "Family doctors network")
	if err != nil {
		log.Fatal(err)
	}

	// 3. The hospital elicits its privacy policy: the doctor may see
	//    everything except the AIDS test, for healthcare treatment only.
	if _, err := hospital.Policy(bloodTest).
		SelectAllFieldsExcept("aids-test").
		SelectConsumers("family-doctor").
		SelectPurposes(css.PurposeHealthcareTreatment).
		Label("family doctor access", "AIDS test obfuscated").
		Apply(); err != nil {
		log.Fatal(err)
	}

	// 4. The doctor subscribes (authorized because the policy exists).
	notifications := make(chan *css.Notification, 1)
	if _, err := doctor.Subscribe("hospital.blood-test", func(n *css.Notification) {
		notifications <- n
	}); err != nil {
		log.Fatal(err)
	}

	// 5. The hospital emits an event: the detail stays in its gateway,
	//    the notification goes through the data controller.
	eventID, err := hospital.Emit(
		&css.Notification{
			SourceID:   "lab-2010-000123",
			Class:      "hospital.blood-test",
			PersonID:   "PRS-000042",
			Summary:    "blood test completed",
			OccurredAt: time.Date(2010, 5, 30, 9, 15, 0, 0, time.UTC),
			Producer:   "hospital",
		},
		css.NewDetail("hospital.blood-test", "lab-2010-000123", "hospital").
			Set("patient-id", "PRS-000042").
			Set("exam-date", "2010-05-30").
			Set("hemoglobin", "13.9").
			Set("aids-test", "negative"),
	)
	if err != nil {
		log.Fatal(err)
	}

	// 6. The doctor is notified (who/what/when/where — no payload)...
	n := <-notifications
	fmt.Printf("notification: person=%s class=%s when=%s from=%s\n",
		n.PersonID, n.Class, n.OccurredAt.Format("2006-01-02"), n.Producer)

	// 7. ...and requests the details with an explicit purpose.
	detail, err := doctor.RequestDetails(eventID, "hospital.blood-test", css.PurposeHealthcareTreatment)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("details released to the doctor:")
	for _, f := range []css.FieldName{"patient-id", "exam-date", "hemoglobin"} {
		v, _ := detail.Get(f)
		fmt.Printf("  %-12s = %s\n", f, v)
	}
	if _, leaked := detail.Get("aids-test"); !leaked {
		fmt.Println("  aids-test    = (never left the hospital)")
	}

	// 8. A request for an unauthorized purpose is denied and audited.
	if _, err := doctor.RequestDetails(eventID, "hospital.blood-test", css.PurposeStatisticalAnalysis); err != nil {
		fmt.Printf("statistics request: %v\n", err)
	}
	recs, _ := platform.AuditSearch(css.AuditQuery{})
	fmt.Printf("audit trail: %d records, chain valid: %v\n", len(recs), platform.AuditVerify() == nil)
}
