// Audit trail: the privacy guarantor's inquiry (paper §1, §4).
//
// The platform logs every access request — who, what, when, for which
// purpose, with which outcome — in a hash-chained trail. This program
// generates mixed traffic (permits, purpose denials, a consent denial),
// answers the two inquiries the paper motivates ("who accessed the data
// of person X and why?", "what did consumer Y do?"), and demonstrates
// that tampering with the trail is detected.
//
// Run: go run ./examples/audittrail
package main

import (
	"fmt"
	"log"
	"time"

	"repro/css"
	"repro/internal/audit"
	"repro/internal/schema"
	"repro/internal/workload"
)

func main() {
	platform, err := css.NewPlatform()
	if err != nil {
		log.Fatal(err)
	}
	defer platform.Close()

	// Provision the full scenario through the workload helper.
	world, err := workload.Provision(platform.Controller())
	if err != nil {
		log.Fatal(err)
	}
	if _, err := world.StandardPolicies(); err != nil {
		log.Fatal(err)
	}
	doctor, err := platform.Department("family-doctor")
	if err != nil {
		log.Fatal(err)
	}
	welfare, err := platform.Department("social-welfare/home-care")
	if err != nil {
		log.Fatal(err)
	}

	// Generate traffic.
	gen := workload.NewGenerator(workload.Config{Seed: 7, People: 10,
		Classes: []*schema.Schema{schema.HomeCare()}})
	var events []css.EventID
	var persons []string
	for i := 0; i < 10; i++ {
		n, d := gen.Next()
		id, err := world.Produce(n, d)
		if err != nil {
			log.Fatal(err)
		}
		events = append(events, id)
		persons = append(persons, n.PersonID)
	}

	// One citizen in the stream opts out of the welfare department seeing
	// their events. Consent is evaluated at access time, so the directive
	// covers already-published events too.
	optedOut := persons[len(persons)-1]
	if err := platform.OptOut(optedOut, css.ConsentScope{Consumer: "social-welfare"}); err != nil {
		log.Fatal(err)
	}
	for i, id := range events {
		// Doctor: permitted purpose.
		doctor.RequestDetails(id, schema.ClassHomeCare, css.PurposeHealthcareTreatment)
		// Doctor: denied purpose (statistics not in the policy).
		if i%3 == 0 {
			doctor.RequestDetails(id, schema.ClassHomeCare, css.PurposeStatisticalAnalysis)
		}
		// Welfare unit: denied by Bruno's consent where applicable.
		welfare.RequestDetails(id, schema.ClassHomeCare, css.PurposeSocialAssistance)
	}

	// --- Inquiry 1: who accessed person X's data, and why? -------------
	subject := persons[0]
	fmt.Printf("== accesses concerning %s ==\n", subject)
	// Find the events of the subject first (via the doctor's authorized
	// index view), then pull their audit records.
	notifs, err := doctor.Inquire(css.Inquiry{PersonID: subject})
	if err != nil {
		log.Fatal(err)
	}
	for _, n := range notifs {
		recs, err := platform.AuditSearch(css.AuditQuery{EventID: n.ID, Kind: audit.KindDetailRequest})
		if err != nil {
			log.Fatal(err)
		}
		for _, r := range recs {
			fmt.Printf("  %s  %-28s purpose=%-22s outcome=%s\n",
				r.At.Format(time.TimeOnly), r.Actor, r.Purpose, r.Outcome)
		}
	}

	// --- Inquiry 2: what did the doctor do, and how often denied? ------
	permits, _ := platform.AuditSearch(css.AuditQuery{Actor: "family-doctor", Outcome: "permit", Kind: audit.KindDetailRequest})
	denials, _ := platform.AuditSearch(css.AuditQuery{Actor: "family-doctor", Outcome: "deny", Kind: audit.KindDetailRequest})
	fmt.Printf("\nfamily doctor: %d permitted and %d denied detail requests\n", len(permits), len(denials))
	if len(denials) > 0 {
		fmt.Printf("  first denial: purpose=%s note=%q\n", denials[0].Purpose, denials[0].Note)
	}

	// --- Consent denials are visible too -------------------------------
	consentDenials, _ := platform.AuditSearch(css.AuditQuery{Actor: "social-welfare/home-care", Outcome: "deny"})
	fmt.Printf("welfare unit: %d denials (consent + policy)\n", len(consentDenials))

	// --- Chain integrity ------------------------------------------------
	if err := platform.AuditVerify(); err != nil {
		log.Fatalf("audit chain broken: %v", err)
	}
	all, _ := platform.AuditSearch(css.AuditQuery{})
	fmt.Printf("\naudit chain: %d records, integrity verified\n", len(all))
	fmt.Println("(any in-place edit, gap or truncation of the trail fails Verify —")
	fmt.Println(" see internal/audit tests for the tampering scenarios)")
}
