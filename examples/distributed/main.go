// Distributed: the platform as separate web services (paper Fig. 2).
//
// This program runs, inside one process but over real HTTP on loopback
// ports, the full distributed deployment:
//
//   - the data controller as a web-service endpoint;
//   - the hospital's local cooperation gateway as its own endpoint,
//     attached to the controller remotely;
//   - a consumer with a notification callback endpoint, using the client
//     SDK against the controller.
//
// Run: go run ./examples/distributed
package main

import (
	"context"
	"fmt"
	"log"
	"net"
	"net/http"
	"time"

	"repro/css"
	"repro/internal/event"
	"repro/internal/gateway"
	"repro/internal/index"
	"repro/internal/policy"
	"repro/internal/schema"
	"repro/internal/store"
	"repro/internal/transport"
)

func main() {
	// --- data controller service ---------------------------------------
	platform, err := css.NewPlatform()
	if err != nil {
		log.Fatal(err)
	}
	defer platform.Close()
	ctrl := platform.Controller()
	if err := ctrl.RegisterProducer("hospital", "Hospital S. Maria"); err != nil {
		log.Fatal(err)
	}
	if err := ctrl.RegisterConsumer("family-doctor", "Family doctors"); err != nil {
		log.Fatal(err)
	}
	if err := ctrl.DeclareClass("hospital", schema.BloodTest()); err != nil {
		log.Fatal(err)
	}
	ctrlURL := serve(transport.NewServer(ctrl))
	fmt.Printf("data controller listening at %s\n", ctrlURL)

	// --- hospital gateway service ----------------------------------------
	gw, err := gateway.New("hospital", store.OpenMemory(), ctrl.Catalog())
	if err != nil {
		log.Fatal(err)
	}
	gwURL := serve(transport.NewGatewayServer(gw))
	fmt.Printf("hospital gateway listening at %s\n", gwURL)
	// The controller reaches the gateway over HTTP, like in the field.
	if err := ctrl.AttachGateway("hospital", transport.NewRemoteGateway(gwURL, nil)); err != nil {
		log.Fatal(err)
	}

	// --- consumer: callback endpoint + client SDK -----------------------
	notifications := make(chan *css.Notification, 16)
	cbURL := serve(transport.NewNotificationReceiver(func(n *event.Notification) {
		notifications <- n
	}))
	fmt.Printf("doctor callback listening at %s\n\n", cbURL)

	ctx := context.Background()
	client := transport.NewClient(ctrlURL, nil)

	// The hospital (also a remote party) elicits its policy via the API.
	if _, err := client.DefinePolicy(ctx, &policy.Policy{
		Producer: "hospital",
		Actor:    "family-doctor",
		Class:    schema.ClassBloodTest,
		Purposes: []event.Purpose{css.PurposeHealthcareTreatment},
		Fields:   []event.FieldName{"patient-id", "exam-date", "hemoglobin"},
	}); err != nil {
		log.Fatal(err)
	}
	subID, err := client.Subscribe(ctx, "family-doctor", schema.ClassBloodTest, cbURL)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("doctor subscribed (id %s)\n", subID)

	// The hospital produces: persist locally, publish remotely.
	d := css.NewDetail(schema.ClassBloodTest, "lab-777", "hospital").
		Set("patient-id", "PRS-000042").
		Set("exam-date", "2010-06-01").
		Set("hemoglobin", "14.1").
		Set("aids-test", "negative")
	if err := gw.Persist(d); err != nil {
		log.Fatal(err)
	}
	eventID, err := client.Publish(ctx, &css.Notification{
		SourceID: "lab-777", Class: schema.ClassBloodTest, PersonID: "PRS-000042",
		Summary: "blood test completed", OccurredAt: time.Date(2010, 6, 1, 9, 0, 0, 0, time.UTC),
		Producer: "hospital",
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("published event %s\n", eventID)

	select {
	case n := <-notifications:
		fmt.Printf("callback delivered: person=%s class=%s\n", n.PersonID, n.Class)
	case <-time.After(5 * time.Second):
		log.Fatal("no callback within 5s")
	}

	// Detail request across three services: client → controller → gateway.
	detail, err := client.RequestDetails(ctx, &event.DetailRequest{
		Requester: "family-doctor", Class: schema.ClassBloodTest,
		EventID: eventID, Purpose: css.PurposeHealthcareTreatment,
	})
	if err != nil {
		log.Fatal(err)
	}
	hb, _ := detail.Get("hemoglobin")
	_, leaked := detail.Get("aids-test")
	fmt.Printf("details over the wire: hemoglobin=%s, aids-test withheld=%v\n", hb, !leaked)

	// Index inquiry over the wire.
	res, err := client.InquireIndex(ctx, "family-doctor", index.Inquiry{PersonID: "PRS-000042"})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("remote index inquiry: %d notification(s) for the patient\n", len(res))
}

// serve starts an HTTP server on an ephemeral loopback port.
func serve(h http.Handler) string {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	srv := &http.Server{Handler: h}
	go srv.Serve(ln)
	return "http://" + ln.Addr().String()
}
