// Home care: the paper's Fig. 8 scenario end to end.
//
// The municipality delivers home-care services and publishes
// HomeCareServiceEvent notifications. Three consumers hold different
// rights elicited by the municipality:
//
//   - the family doctor sees only PatientId, Name and Surname (the exact
//     policy of the paper's Fig. 8 XACML listing);
//   - the home-care unit of the social welfare department sees everything
//     for social assistance and administration;
//   - a private caring cooperative sees identity and service type, but
//     only until its contract expires (validity window).
//
// One citizen opts out of sharing with the cooperative entirely: consent
// overrides policies.
//
// Run: go run ./examples/homecare
package main

import (
	"errors"
	"fmt"
	"log"
	"time"

	"repro/css"
	"repro/internal/schema"
)

func main() {
	// The scenario plays out in 2010; pin the platform clock so the
	// cooperative's contract window behaves as it did in the field.
	today := time.Date(2010, 6, 20, 12, 0, 0, 0, time.UTC)
	platform, err := css.NewPlatform(css.WithClock(func() time.Time { return today }))
	if err != nil {
		log.Fatal(err)
	}
	defer platform.Close()

	municipality, err := platform.RegisterProducer("municipality-trento", "Municipality of Trento")
	if err != nil {
		log.Fatal(err)
	}
	homeCare := schema.HomeCare()
	if err := municipality.DeclareClass(homeCare); err != nil {
		log.Fatal(err)
	}

	doctor := mustConsumer(platform, "family-doctor", "Family doctors network")
	welfareUnit := mustConsumer(platform, "social-welfare", "Social welfare department")
	coop := mustConsumer(platform, "caring-coop", "Private caring cooperative")

	// --- privacy policy elicitation (the Figs 6-7 tool, in code) -------
	contractEnd := time.Date(2010, 12, 31, 23, 59, 59, 0, time.UTC)

	apply(municipality.Policy(homeCare).
		SelectFields("patient-id", "name", "surname"). // Fig. 8: lines 25-36
		SelectConsumers("family-doctor").
		SelectPurposes(css.PurposeHealthcareTreatment).
		Label("HomeCareServiceEvent for family doctors", "identity fields only"))

	apply(municipality.Policy(homeCare).
		SelectAllFieldsExcept().
		SelectConsumers("social-welfare").
		SelectPurposes(css.PurposeSocialAssistance, css.PurposeAdministration).
		Label("welfare department full access", ""))

	apply(municipality.Policy(homeCare).
		SelectFields("patient-id", "name", "surname", "service-type").
		SelectConsumers("caring-coop").
		SelectPurposes(css.PurposeSocialAssistance).
		ValidUntil(contractEnd).
		Label("cooperative contract access", "expires with the 2010 contract"))

	// --- one citizen opts out of the cooperative ----------------------
	if err := platform.OptOut("PRS-000007", css.ConsentScope{Consumer: "caring-coop"}); err != nil {
		log.Fatal(err)
	}

	// --- the municipality delivers services and emits events ----------
	emit := func(src css.SourceID, person, name, surname, service string) css.EventID {
		id, err := municipality.Emit(
			&css.Notification{
				SourceID: src, Class: homeCare.Class(), PersonID: person,
				Summary:    fmt.Sprintf("%s service delivered", service),
				OccurredAt: time.Date(2010, 6, 15, 10, 0, 0, 0, time.UTC),
				Producer:   "municipality-trento",
			},
			css.NewDetail(homeCare.Class(), src, "municipality-trento").
				Set("patient-id", person).
				Set("name", name).
				Set("surname", surname).
				Set("service-type", service).
				Set("operator", "op-77").
				Set("duration-minutes", "45").
				Set("care-notes", "patient weak, needs follow-up").
				Set("health-status", "fragile"),
		)
		if err != nil {
			log.Fatal(err)
		}
		return id
	}
	evAnna := emit("hc-001", "PRS-000001", "Anna", "Rossi", "nursing")
	evBruno := emit("hc-002", "PRS-000007", "Bruno", "Conti", "meal")

	show := func(who string, d *css.Detail, err error) {
		if err != nil {
			fmt.Printf("%-28s DENIED: %v\n", who, err)
			return
		}
		fmt.Printf("%-28s fields: %d released", who, len(d.Fields))
		if v, ok := d.Get("care-notes"); ok {
			fmt.Printf(" (incl. care-notes=%q)", v)
		}
		fmt.Println()
	}

	fmt.Println("== Anna's nursing event ==")
	d, err := doctor.RequestDetails(evAnna, homeCare.Class(), css.PurposeHealthcareTreatment)
	show("family doctor:", d, err)
	if d != nil {
		if _, ok := d.Get("care-notes"); ok {
			log.Fatal("BUG: doctor saw care notes")
		}
	}
	d, err = welfareUnit.RequestDetails(evAnna, homeCare.Class(), css.PurposeSocialAssistance)
	show("welfare department:", d, err)
	d, err = coop.RequestDetailsAt(evAnna, homeCare.Class(), css.PurposeSocialAssistance,
		time.Date(2010, 7, 1, 0, 0, 0, 0, time.UTC))
	show("cooperative (in contract):", d, err)
	d, err = coop.RequestDetailsAt(evAnna, homeCare.Class(), css.PurposeSocialAssistance,
		time.Date(2011, 2, 1, 0, 0, 0, 0, time.UTC))
	show("cooperative (2011):", d, err)
	if !errors.Is(err, css.ErrDenied) {
		log.Fatal("BUG: expired contract still grants access")
	}

	fmt.Println("\n== Bruno's meal event (Bruno opted out of the cooperative) ==")
	d, err = welfareUnit.RequestDetails(evBruno, homeCare.Class(), css.PurposeSocialAssistance)
	show("welfare department:", d, err)
	d, err = coop.RequestDetailsAt(evBruno, homeCare.Class(), css.PurposeSocialAssistance,
		time.Date(2010, 7, 1, 0, 0, 0, 0, time.UTC))
	show("cooperative:", d, err)
	if !errors.Is(err, css.ErrConsentDenied) {
		log.Fatal("BUG: consent opt-out not enforced")
	}

	// The cooperative's subscription also never sees Bruno.
	seen := map[string]bool{}
	done := make(chan struct{})
	if _, err := coop.Subscribe(homeCare.Class(), func(n *css.Notification) {
		seen[n.PersonID] = true
		close(done)
	}); err != nil {
		log.Fatal(err)
	}
	emit("hc-003", "PRS-000001", "Anna", "Rossi", "cleaning")
	emit("hc-004", "PRS-000007", "Bruno", "Conti", "nursing")
	<-done
	platform.Flush(5 * time.Second)
	fmt.Printf("\ncooperative's notifications: Anna=%v Bruno=%v (consent filters routing too)\n",
		seen["PRS-000001"], seen["PRS-000007"])
}

func mustConsumer(p *css.Platform, actor css.Actor, name string) *css.Consumer {
	c, err := p.RegisterConsumer(actor, name)
	if err != nil {
		log.Fatal(err)
	}
	return c
}

func apply(b *css.PolicyBuilder) {
	if _, err := b.Apply(); err != nil {
		log.Fatal(err)
	}
}
