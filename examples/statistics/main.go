// Statistics: the paper's Definition 2 example at scale.
//
// The provincial social services assess the autonomy of elderly people.
// The national governance's statistics department is allowed to access
// ONLY {age, sex, autonomy-score} of each autonomy-test event, for the
// purpose of statistical analysis — never the person's identity. This
// program streams a synthetic year of assessments through the platform,
// lets the statistics department collect its privacy-filtered view, and
// prints the aggregate the paper's example motivates: the needs of
// elderly people by age band and sex.
//
// Run: go run ./examples/statistics
package main

import (
	"fmt"
	"log"
	"strconv"

	"repro/css"
	"repro/internal/schema"
	"repro/internal/workload"
)

func main() {
	platform, err := css.NewPlatform()
	if err != nil {
		log.Fatal(err)
	}
	defer platform.Close()

	social, err := platform.RegisterProducer("social-services", "Provincial social services")
	if err != nil {
		log.Fatal(err)
	}
	autonomy := schema.AutonomyTest()
	if err := social.DeclareClass(autonomy); err != nil {
		log.Fatal(err)
	}
	stats, err := platform.RegisterConsumer("national-governance", "National governance")
	if err != nil {
		log.Fatal(err)
	}
	statsDept, err := platform.Department("national-governance/statistics")
	if err != nil {
		log.Fatal(err)
	}
	_ = stats

	// The Definition 2 policy:
	// p = {National Governance, autonomy test, statistical analysis,
	//      ⟨age, sex, autonomy-score⟩}
	if _, err := social.Policy(autonomy).
		SelectFields("age", "sex", "autonomy-score").
		SelectConsumers("national-governance/statistics").
		SelectPurposes(css.PurposeStatisticalAnalysis).
		Label("autonomy statistics", "needs of elderly people").
		Apply(); err != nil {
		log.Fatal(err)
	}

	// A year of synthetic assessments.
	gen := workload.NewGenerator(workload.Config{
		Seed: 2010, People: 500,
		Classes: []*schema.Schema{autonomy},
	})
	const events = 400
	ids := make([]css.EventID, 0, events)
	for i := 0; i < events; i++ {
		n, d := gen.Next()
		id, err := social.Emit(n, d)
		if err != nil {
			log.Fatal(err)
		}
		ids = append(ids, id)
	}
	fmt.Printf("published %d autonomy assessments\n", events)

	// The statistics department pulls its authorized view of each event.
	type bandKey struct {
		band string
		sex  string
	}
	sum := map[bandKey]int{}
	cnt := map[bandKey]int{}
	identityLeaks := 0
	for _, id := range ids {
		d, err := statsDept.RequestDetails(id, autonomy.Class(), css.PurposeStatisticalAnalysis)
		if err != nil {
			log.Fatalf("detail request: %v", err)
		}
		if _, ok := d.Get("patient-id"); ok {
			identityLeaks++
		}
		if _, ok := d.Get("assessment-notes"); ok {
			identityLeaks++
		}
		age, _ := strconv.Atoi(get(d, "age"))
		score, _ := strconv.Atoi(get(d, "autonomy-score"))
		k := bandKey{band: band(age), sex: get(d, "sex")}
		sum[k] += score
		cnt[k]++
	}
	if identityLeaks > 0 {
		log.Fatalf("BUG: %d identity/sensitive leaks to the statistics department", identityLeaks)
	}
	fmt.Println("identity fields released to statistics: 0 (by policy)")

	fmt.Println("\nmean autonomy score by age band and sex:")
	fmt.Println("band    sex  n    mean-score")
	for _, b := range []string{"60-69", "70-79", "80-89", "90+"} {
		for _, s := range []string{"f", "m"} {
			k := bandKey{b, s}
			if cnt[k] == 0 {
				continue
			}
			fmt.Printf("%-7s %-4s %-4d %.1f\n", b, s, cnt[k], float64(sum[k])/float64(cnt[k]))
		}
	}

	// The guarantor can see every one of those accesses, with purpose.
	recs, err := platform.AuditSearch(css.AuditQuery{Actor: "national-governance/statistics"})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\naudited statistics-department accesses: %d (all purpose=%s)\n",
		len(recs), css.PurposeStatisticalAnalysis)
}

func get(d *css.Detail, f css.FieldName) string {
	v, _ := d.Get(f)
	return v
}

func band(age int) string {
	switch {
	case age < 70:
		return "60-69"
	case age < 80:
		return "70-79"
	case age < 90:
		return "80-89"
	default:
		return "90+"
	}
}
