// PHR: the citizen-facing view the paper names as CSS's next step (§7:
// "the CSS is the backbone for the implementation of a Personalized
// Health Records (PHR) in Trentino", and the citizen "can specify and
// control their consent on data exchanges").
//
// Anna reviews her own care timeline across every institution, sees who
// accessed her data and why, and tightens her consent — all through the
// data subject's handle.
//
// Run: go run ./examples/phr
package main

import (
	"fmt"
	"log"

	"repro/css"
	"repro/internal/audit"
	"repro/internal/schema"
	"repro/internal/workload"
)

func main() {
	platform, err := css.NewPlatform()
	if err != nil {
		log.Fatal(err)
	}
	defer platform.Close()

	// Provision the full Trentino scenario and its policy set.
	world, err := workload.Provision(platform.Controller())
	if err != nil {
		log.Fatal(err)
	}
	if _, err := world.StandardPolicies(); err != nil {
		log.Fatal(err)
	}

	// A year of events across all institutions; Anna is the most active
	// citizen of the skewed population.
	gen := workload.NewGenerator(workload.Config{Seed: 21, People: 200})
	const annaID = "PRS-000001"
	var annaEvents []css.EventID
	var annaClasses []css.ClassID
	for i := 0; i < 600; i++ {
		n, d := gen.Next()
		id, err := world.Produce(n, d)
		if err != nil {
			log.Fatal(err)
		}
		if n.PersonID == annaID {
			annaEvents = append(annaEvents, id)
			annaClasses = append(annaClasses, n.Class)
		}
	}

	// Caregivers access some of Anna's events.
	doctor, err := platform.Department("family-doctor")
	if err != nil {
		log.Fatal(err)
	}
	for i, id := range annaEvents {
		if i%2 == 0 {
			doctor.RequestDetails(id, annaClasses[i], css.PurposeHealthcareTreatment)
		}
	}

	// --- Anna opens her PHR ---------------------------------------------
	anna, err := platform.Citizen(annaID)
	if err != nil {
		log.Fatal(err)
	}

	timeline, err := anna.Timeline(css.Inquiry{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Anna's care timeline: %d events across the platform\n", len(timeline))
	byClass := map[css.ClassID]int{}
	for _, n := range timeline {
		byClass[n.Class]++
	}
	for class, count := range byClass {
		fmt.Printf("  %-32s %d\n", class, count)
	}

	history, err := anna.AccessHistory()
	if err != nil {
		log.Fatal(err)
	}
	var permits, denials int
	for _, r := range history {
		if r.Kind != audit.KindDetailRequest {
			continue
		}
		if r.Outcome == "permit" {
			permits++
		} else {
			denials++
		}
	}
	fmt.Printf("\nwho touched Anna's data: %d permitted detail accesses, %d denied\n", permits, denials)

	// Anna opts out of the private cooperative entirely.
	if err := anna.OptOut(css.ConsentScope{Consumer: "caring-coop"}); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Anna recorded %d consent directive(s)\n", len(anna.Directives()))

	// The cooperative is now blind to Anna, old events included.
	coop, err := platform.Department("caring-coop")
	if err != nil {
		log.Fatal(err)
	}
	blocked := 0
	for i, id := range annaEvents {
		if annaClasses[i] != schema.ClassHomeCare {
			continue
		}
		if _, err := coop.RequestDetails(id, annaClasses[i], css.PurposeSocialAssistance); err != nil {
			blocked++
		}
	}
	fmt.Printf("cooperative requests on Anna's past home-care events: all %d blocked by her consent\n", blocked)
}
