package cluster

import (
	"errors"
	"testing"
)

func replicatedShards() []ShardInfo {
	return []ShardInfo{
		{ID: 0, Addr: "http://p0", Replicas: []string{"http://r0a", "http://r0b"}, Epoch: 3},
		{ID: 1, Addr: "http://p1", Replicas: []string{"http://r1a"}, Epoch: 1},
	}
}

// Follower→primary promotion must bump the map version exactly once and
// the shard's fencing epoch exactly once, in the same derived map.
func TestWithPromotedReplica(t *testing.T) {
	m, err := NewMap(7, 0, replicatedShards())
	if err != nil {
		t.Fatal(err)
	}
	next, err := m.WithPromotedReplica(0, "http://r0b")
	if err != nil {
		t.Fatal(err)
	}
	if next.Version() != 8 {
		t.Fatalf("promotion bumped version %d → %d, want exactly one bump to 8", m.Version(), next.Version())
	}
	s0, _ := next.Shard(0)
	if s0.Addr != "http://r0b" {
		t.Fatalf("promoted primary = %q, want http://r0b", s0.Addr)
	}
	if s0.Epoch != 4 {
		t.Fatalf("promoted epoch = %d, want 4 (exactly one bump)", s0.Epoch)
	}
	if len(s0.Replicas) != 1 || s0.Replicas[0] != "http://r0a" {
		t.Fatalf("surviving replicas = %v, want [http://r0a] (deposed primary dropped)", s0.Replicas)
	}
	// The untouched shard is carried over unchanged.
	s1, _ := next.Shard(1)
	if !equalInfo(s1, replicatedShards()[1]) {
		t.Fatalf("shard 1 changed across promotion: %+v", s1)
	}
	// Consistent hashing ignores addresses: ownership must not move.
	for _, key := range []string{"alpha", "beta", "gamma", "delta"} {
		if m.Owner(key) != next.Owner(key) {
			t.Fatalf("promotion moved ownership of %q: %v → %v", key, m.Owner(key), next.Owner(key))
		}
	}

	if _, err := m.WithPromotedReplica(9, "http://r0a"); err == nil {
		t.Fatal("promotion on unknown shard succeeded")
	}
	if _, err := m.WithPromotedReplica(0, "http://not-a-replica"); err == nil {
		t.Fatal("promotion of a non-replica succeeded")
	}
}

// The promoted map survives the wire: replicas and epochs round-trip
// through the binary shard-map frame.
func TestPromotedMapFrameRoundTrip(t *testing.T) {
	m, err := NewMap(7, 16, replicatedShards())
	if err != nil {
		t.Fatal(err)
	}
	next, err := m.WithPromotedReplica(0, "http://r0a")
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeMapFrame(next.EncodeFrame())
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(next) {
		t.Fatalf("frame round-trip changed promoted map:\n got %+v\nwant %+v", got.Shards(), next.Shards())
	}
	s0, _ := got.Shard(0)
	if s0.Epoch != 4 || s0.Addr != "http://r0a" {
		t.Fatalf("decoded shard 0 = %+v", s0)
	}
}

func TestNotPrimaryError(t *testing.T) {
	err := error(&NotPrimaryError{Shard: 2, Version: 9})
	if !errors.Is(err, ErrNotPrimary) {
		t.Fatal("NotPrimaryError does not match ErrNotPrimary")
	}
	var np *NotPrimaryError
	if !errors.As(err, &np) || np.Shard != 2 || np.Version != 9 {
		t.Fatalf("errors.As lost the redirect hint: %+v", np)
	}
}
