// Scatter-gather: fan a person or notification query out to every
// shard concurrently, bound each shard call by its own deadline budget
// under the parent deadline, and merge the replies into one stably
// ordered result. A shard that fails does not void the others — the
// caller gets the merged partial result plus a typed PartialError
// naming exactly which shards failed and why.
package cluster

import (
	"context"
	"errors"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/event"
)

// ErrPartialResult is the sentinel identity of PartialError: at least
// one shard of a scatter-gather failed, so the merged result may be
// incomplete. errors.Is(err, ErrPartialResult) matches it.
var ErrPartialResult = errors.New("cluster: partial scatter-gather result")

// PartialError reports the shards that failed during a scatter-gather,
// with the per-shard cause. The merged result built from the shards
// that did answer accompanies it — callers decide whether a partial
// view is acceptable for their use.
type PartialError struct {
	// Failed maps each failed shard to its error.
	Failed map[ShardID]error
}

// Error lists the failed shards in id order.
func (e *PartialError) Error() string {
	ids := make([]ShardID, 0, len(e.Failed))
	for id := range e.Failed {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	var b strings.Builder
	b.WriteString("cluster: partial scatter-gather result (")
	for i, id := range ids {
		if i > 0 {
			b.WriteString("; ")
		}
		b.WriteString(id.String())
		b.WriteString(": ")
		b.WriteString(e.Failed[id].Error())
	}
	b.WriteString(")")
	return b.String()
}

// Is makes errors.Is(err, ErrPartialResult) match.
func (e *PartialError) Is(target error) bool { return target == ErrPartialResult }

// Unwrap exposes the per-shard causes to errors.Is/As chains, so e.g.
// errors.Is(err, context.DeadlineExceeded) still answers whether any
// shard timed out.
func (e *PartialError) Unwrap() []error {
	errs := make([]error, 0, len(e.Failed))
	for _, err := range e.Failed {
		errs = append(errs, err)
	}
	return errs
}

// Gather calls fn once per shard concurrently and collects the
// results. Each call runs under a child context whose deadline is the
// earlier of (parent deadline, now+budget): the per-shard budget caps
// how long one slow shard can hold the fan-out open, and it can never
// extend past the parent deadline. budget <= 0 means parent-only.
//
// Gather returns the results of every shard that succeeded. If any
// shard failed it also returns a *PartialError; if all shards failed,
// results is empty and only the error speaks.
func Gather[T any](ctx context.Context, shards []ShardInfo, budget time.Duration,
	fn func(ctx context.Context, shard ShardInfo) (T, error)) (map[ShardID]T, error) {

	type reply struct {
		id  ShardID
		res T
		err error
	}
	replies := make([]reply, len(shards))
	var wg sync.WaitGroup
	for i, s := range shards {
		wg.Add(1)
		go func(i int, s ShardInfo) {
			defer wg.Done()
			sctx := ctx
			var cancel context.CancelFunc
			if budget > 0 {
				// context.WithTimeout keeps the parent deadline when it
				// is sooner, so the budget only ever tightens.
				sctx, cancel = context.WithTimeout(ctx, budget)
				defer cancel()
			}
			res, err := fn(sctx, s)
			replies[i] = reply{id: s.ID, res: res, err: err}
		}(i, s)
	}
	wg.Wait()

	results := make(map[ShardID]T, len(shards))
	var failed map[ShardID]error
	for _, r := range replies {
		if r.err != nil {
			if failed == nil {
				failed = make(map[ShardID]error)
			}
			failed[r.id] = r.err
			continue
		}
		results[r.id] = r.res
	}
	if failed != nil {
		return results, &PartialError{Failed: failed}
	}
	return results, nil
}

// MergeNotifications merges per-shard notification lists into one list
// with stable ordering — ascending (OccurredAt, ID), matching the
// single-shard index scan order — independent of the order shards
// replied in. Duplicate IDs (possible transiently while a reshard's
// donor still holds shipped keys) collapse to one occurrence. limit
// > 0 truncates the merged result.
func MergeNotifications(perShard map[ShardID][]*event.Notification, limit int) []*event.Notification {
	// Merge in shard-id order so equal-key ties resolve identically on
	// every call, whatever order the map iterates.
	ids := make([]ShardID, 0, len(perShard))
	total := 0
	for id, list := range perShard {
		ids = append(ids, id)
		total += len(list)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })

	merged := make([]*event.Notification, 0, total)
	for _, id := range ids {
		merged = append(merged, perShard[id]...)
	}
	sort.SliceStable(merged, func(i, j int) bool {
		if !merged[i].OccurredAt.Equal(merged[j].OccurredAt) {
			return merged[i].OccurredAt.Before(merged[j].OccurredAt)
		}
		return merged[i].ID < merged[j].ID
	})

	// Dedupe by global id after the sort: duplicates are adjacent.
	out := merged[:0]
	var last event.GlobalID
	for _, n := range merged {
		if n.ID != "" && n.ID == last {
			continue
		}
		last = n.ID
		out = append(out, n)
	}
	if limit > 0 && len(out) > limit {
		out = out[:limit]
	}
	return out
}
