// Package cluster partitions the data controller horizontally: N
// controller shards each own a slice of the person-pseudonym space,
// assigned by consistent hashing over a versioned vnode ring. The
// events index, the bus routing and the audit chain of a person's
// events all live on the shard that owns her pseudonym, so every
// publish touches exactly one shard and the single-node publish path
// (PR 7) is preserved per shard.
//
// The package is deliberately low-level: it knows nothing about the
// controller or the transport. It provides
//
//   - the versioned shard map (ring layout + binary frame codec),
//   - the typed routing errors (ErrWrongShard with the owner hint,
//     ErrResharding for the freeze window),
//   - the scatter-gather engine for cross-shard inquiries (per-shard
//     deadline budgets, stable merge, typed partial results), and
//   - the live-reshard coordinator (freeze → drain → ship → flip)
//     over a small Node interface the controller implements.
//
// Higher layers compose it: internal/core enforces ownership on the
// publish path, internal/registry serves the map, internal/transport
// routes by it and honors the redirects.
package cluster

import (
	"errors"
	"fmt"
	"hash/fnv"
	"sort"
	"strconv"
)

// ShardID identifies one controller shard. IDs are small dense
// integers assigned by the operator; they never change across map
// versions (a reshard adds or removes IDs, it does not renumber).
type ShardID int

// String renders the id for labels and log lines.
func (id ShardID) String() string { return "shard-" + strconv.Itoa(int(id)) }

// ShardInfo names one shard and where to reach it. With replication
// enabled it also records the shard's read replicas and the fencing
// epoch of the current primary: every promotion installs a successor
// map whose entry carries Epoch+1, and replicated frames stamped with
// an older epoch are rejected by followers, so a deposed primary that
// keeps running cannot overwrite history (see internal/replication).
type ShardInfo struct {
	ID   ShardID
	Addr string // base URL of the shard's primary web-service binding
	// Replicas are base URLs of the shard's read replicas (may be empty).
	Replicas []string
	// Epoch is the fencing token of the primary at Addr. Zero in
	// unreplicated deployments.
	Epoch uint64
}

// equalInfo compares two entries field-wise (ShardInfo holds a slice,
// so == does not apply).
func equalInfo(a, b ShardInfo) bool {
	if a.ID != b.ID || a.Addr != b.Addr || a.Epoch != b.Epoch || len(a.Replicas) != len(b.Replicas) {
		return false
	}
	for i := range a.Replicas {
		if a.Replicas[i] != b.Replicas[i] {
			return false
		}
	}
	return true
}

// DefaultVNodes is the number of virtual nodes each shard contributes
// to the ring. 64 vnodes keep the max/mean key imbalance under ~1.25
// for small clusters while the ring stays tiny (N*64 points).
const DefaultVNodes = 64

// ErrWrongShard is the sentinel identity of WrongShardError: a request
// landed on a shard that does not own the person key. errors.Is works
// locally and across the wire (transport maps it to a fault code).
var ErrWrongShard = errors.New("cluster: wrong shard for key")

// ErrResharding reports a publish refused during the freeze window of
// a live reshard: the key range is mid-handoff and writable nowhere
// until the map version flips. It is transient by construction — the
// transport marks it retryable and producers back off and retry.
var ErrResharding = errors.New("cluster: key range frozen for resharding")

// ErrStaleMap reports an attempt to install a shard map whose version
// is not newer than the one already held.
var ErrStaleMap = errors.New("cluster: stale shard map version")

// WrongShardError carries the redirect hint: which shard owns the key
// and under which map version, so the client refreshes its cached map
// when it is behind and retries at the owner.
type WrongShardError struct {
	Owner   ShardID
	Version uint64
}

// Error implements the error interface.
func (e *WrongShardError) Error() string {
	return "cluster: wrong shard for key (owner " + e.Owner.String() +
		", map v" + strconv.FormatUint(e.Version, 10) + ")"
}

// Is makes errors.Is(err, ErrWrongShard) match the typed redirect.
func (e *WrongShardError) Is(target error) bool { return target == ErrWrongShard }

// Map is a versioned assignment of the pseudonym space to shards: a
// consistent-hash ring of VNodes virtual points per shard. A Map is
// immutable after construction (derive a successor with WithShards);
// methods are safe for concurrent use.
type Map struct {
	version uint64
	vnodes  int
	shards  []ShardInfo // sorted by ID

	ring []ringPoint // sorted by hash
}

type ringPoint struct {
	hash  uint64
	shard ShardID
}

// NewMap builds a shard map. vnodes <= 0 means DefaultVNodes. Shard
// IDs must be unique and non-negative; at least one shard is required.
func NewMap(version uint64, vnodes int, shards []ShardInfo) (*Map, error) {
	if len(shards) == 0 {
		return nil, errors.New("cluster: shard map needs at least one shard")
	}
	if vnodes <= 0 {
		vnodes = DefaultVNodes
	}
	sorted := make([]ShardInfo, len(shards))
	copy(sorted, shards)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].ID < sorted[j].ID })
	for i, s := range sorted {
		if s.ID < 0 {
			return nil, fmt.Errorf("cluster: negative shard id %d", s.ID)
		}
		if i > 0 && sorted[i-1].ID == s.ID {
			return nil, fmt.Errorf("cluster: duplicate shard id %d", s.ID)
		}
	}
	m := &Map{version: version, vnodes: vnodes, shards: sorted}
	m.buildRing()
	return m, nil
}

// buildRing places vnodes points per shard, hashed from the shard id
// and vnode ordinal only — deterministic across processes, so every
// node holding the same (version, vnodes, shard set) computes the
// identical assignment without any coordination.
func (m *Map) buildRing() {
	m.ring = make([]ringPoint, 0, len(m.shards)*m.vnodes)
	for _, s := range m.shards {
		for v := 0; v < m.vnodes; v++ {
			m.ring = append(m.ring, ringPoint{hash: vnodeHash(s.ID, v), shard: s.ID})
		}
	}
	sort.Slice(m.ring, func(i, j int) bool {
		if m.ring[i].hash != m.ring[j].hash {
			return m.ring[i].hash < m.ring[j].hash
		}
		// Hash ties (vanishingly rare) break by shard id so the ring
		// order stays deterministic everywhere.
		return m.ring[i].shard < m.ring[j].shard
	})
}

func vnodeHash(id ShardID, vnode int) uint64 {
	h := fnv.New64a()
	var buf [24]byte
	b := strconv.AppendInt(buf[:0], int64(id), 10)
	b = append(b, '#')
	b = strconv.AppendInt(b, int64(vnode), 10)
	h.Write(b)
	return h.Sum64()
}

// Version returns the map version. Versions are strictly increasing
// across reshards; a higher version always supersedes a lower one.
func (m *Map) Version() uint64 { return m.version }

// VNodes returns the per-shard virtual node count.
func (m *Map) VNodes() int { return m.vnodes }

// Shards returns the member shards, sorted by ID. The caller must not
// mutate the returned slice.
func (m *Map) Shards() []ShardInfo { return m.shards }

// Shard returns the info for one shard id.
func (m *Map) Shard(id ShardID) (ShardInfo, bool) {
	i := sort.Search(len(m.shards), func(i int) bool { return m.shards[i].ID >= id })
	if i < len(m.shards) && m.shards[i].ID == id {
		return m.shards[i], true
	}
	return ShardInfo{}, false
}

// Owner returns the shard owning a person pseudonym: the first vnode
// clockwise of the key's hash on the ring.
func (m *Map) Owner(pseudonym string) ShardID {
	h := fnv.New64a()
	h.Write([]byte(pseudonym))
	key := h.Sum64()
	i := sort.Search(len(m.ring), func(i int) bool { return m.ring[i].hash >= key })
	if i == len(m.ring) {
		i = 0 // wrap around
	}
	return m.ring[i].shard
}

// WithShards derives the successor map (version+1) over a new shard
// set — the split (adding shards) or merge (removing shards) a live
// reshard flips to.
func (m *Map) WithShards(shards []ShardInfo) (*Map, error) {
	return NewMap(m.version+1, m.vnodes, shards)
}

// Equal reports whether two maps describe the identical assignment.
func (m *Map) Equal(o *Map) bool {
	if m == nil || o == nil {
		return m == o
	}
	if m.version != o.version || m.vnodes != o.vnodes || len(m.shards) != len(o.shards) {
		return false
	}
	for i := range m.shards {
		if !equalInfo(m.shards[i], o.shards[i]) {
			return false
		}
	}
	return true
}

// ErrNotPrimary is the sentinel identity of NotPrimaryError: a write
// reached a read replica (or a deposed primary refusing writes). Like
// ErrWrongShard it survives the wire as a typed fault, and the client
// reacts the same way — refresh the map and retry at the shard's
// current primary.
var ErrNotPrimary = errors.New("cluster: not the primary for writes")

// NotPrimaryError carries the redirect hint for a write that landed on
// a replica: the shard it belongs to and the replica's map version, so
// a client that is behind refreshes before retrying.
type NotPrimaryError struct {
	Shard   ShardID
	Version uint64
}

// Error implements the error interface.
func (e *NotPrimaryError) Error() string {
	return "cluster: not the primary for writes (" + e.Shard.String() +
		", map v" + strconv.FormatUint(e.Version, 10) + ")"
}

// Is makes errors.Is(err, ErrNotPrimary) match the typed redirect.
func (e *NotPrimaryError) Is(target error) bool { return target == ErrNotPrimary }

// WithPromotedReplica derives the successor map a failover installs:
// shard id's primary becomes promoted (which must be one of its
// replicas), the dead primary's address is dropped, the remaining
// replicas are kept, and the shard's fencing epoch is bumped by one.
// Exactly one version bump covers the whole transition.
func (m *Map) WithPromotedReplica(id ShardID, promoted string) (*Map, error) {
	cur, ok := m.Shard(id)
	if !ok {
		return nil, fmt.Errorf("cluster: promote: unknown shard %d", id)
	}
	rest := make([]string, 0, len(cur.Replicas))
	found := false
	for _, r := range cur.Replicas {
		if r == promoted {
			found = true
			continue
		}
		rest = append(rest, r)
	}
	if !found {
		return nil, fmt.Errorf("cluster: promote: %s is not a replica of shard %d", promoted, id)
	}
	shards := make([]ShardInfo, len(m.shards))
	copy(shards, m.shards)
	for i := range shards {
		if shards[i].ID == id {
			shards[i] = ShardInfo{ID: id, Addr: promoted, Replicas: rest, Epoch: cur.Epoch + 1}
		}
	}
	return NewMap(m.version+1, m.vnodes, shards)
}
