package cluster

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"repro/internal/event"
)

func mkNote(id string, at time.Time) *event.Notification {
	return &event.Notification{ID: event.GlobalID(id), OccurredAt: at}
}

// TestMergeStableUnderShuffledReplies: however the per-shard reply map
// is populated or ordered, the merged list must come out identical —
// ascending (OccurredAt, ID), matching a single-shard index scan.
func TestMergeStableUnderShuffledReplies(t *testing.T) {
	base := time.Date(2026, 8, 1, 12, 0, 0, 0, time.UTC)
	all := make([]*event.Notification, 0, 60)
	for i := 0; i < 60; i++ {
		// Duplicate timestamps every 3 events force the ID tiebreak.
		all = append(all, mkNote(fmt.Sprintf("evt-%04d", i), base.Add(time.Duration(i/3)*time.Second)))
	}

	var want []string
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 20; trial++ {
		// Random assignment of events to 4 shards, random reply order.
		perShard := map[ShardID][]*event.Notification{}
		shuffled := make([]*event.Notification, len(all))
		copy(shuffled, all)
		rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
		for _, n := range shuffled {
			id := ShardID(rng.Intn(4))
			perShard[id] = append(perShard[id], n)
		}
		merged := MergeNotifications(perShard, 0)
		got := make([]string, len(merged))
		for i, n := range merged {
			got[i] = string(n.ID)
		}
		if trial == 0 {
			want = got
			for i := 1; i < len(merged); i++ {
				a, b := merged[i-1], merged[i]
				if b.OccurredAt.Before(a.OccurredAt) ||
					(b.OccurredAt.Equal(a.OccurredAt) && b.ID < a.ID) {
					t.Fatalf("merge out of order at %d: %s then %s", i, a.ID, b.ID)
				}
			}
			continue
		}
		if len(got) != len(want) {
			t.Fatalf("trial %d: %d results, want %d", trial, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("trial %d: order diverged at %d: %s vs %s", trial, i, got[i], want[i])
			}
		}
	}
}

// TestMergeDedupesAndLimits: a gid present on two shards (transient
// reshard overlap) must appear once, and limit truncates after merge.
func TestMergeDedupesAndLimits(t *testing.T) {
	at := time.Date(2026, 8, 1, 12, 0, 0, 0, time.UTC)
	perShard := map[ShardID][]*event.Notification{
		0: {mkNote("evt-a", at), mkNote("evt-c", at.Add(2*time.Second))},
		1: {mkNote("evt-a", at), mkNote("evt-b", at.Add(time.Second))},
	}
	merged := MergeNotifications(perShard, 0)
	if len(merged) != 3 {
		t.Fatalf("got %d results, want 3 (dedup failed): %v", len(merged), merged)
	}
	if merged[0].ID != "evt-a" || merged[1].ID != "evt-b" || merged[2].ID != "evt-c" {
		t.Fatalf("wrong order: %s %s %s", merged[0].ID, merged[1].ID, merged[2].ID)
	}
	if got := MergeNotifications(perShard, 2); len(got) != 2 || got[1].ID != "evt-b" {
		t.Fatalf("limit=2 gave %d results", len(got))
	}
}

// TestGatherPartialFailure: one failing shard must not void the
// others; the error must be a typed *PartialError matching
// ErrPartialResult and naming the failed shard with its cause.
func TestGatherPartialFailure(t *testing.T) {
	shards := testShards(3)
	boom := errors.New("shard 1 is down")
	res, err := Gather(context.Background(), shards, 0,
		func(ctx context.Context, s ShardInfo) (string, error) {
			if s.ID == 1 {
				return "", boom
			}
			return "ok-" + s.ID.String(), nil
		})
	if !errors.Is(err, ErrPartialResult) {
		t.Fatalf("err = %v, want ErrPartialResult", err)
	}
	var pe *PartialError
	if !errors.As(err, &pe) {
		t.Fatal("error is not a *PartialError")
	}
	if len(pe.Failed) != 1 || !errors.Is(pe.Failed[1], boom) {
		t.Fatalf("per-shard detail wrong: %+v", pe.Failed)
	}
	if len(res) != 2 || res[0] != "ok-shard-0" || res[2] != "ok-shard-2" {
		t.Fatalf("surviving results wrong: %+v", res)
	}
}

// TestGatherBudgetUnderParentDeadline: the per-shard child deadline
// must be min(parent, now+budget) — a generous budget can never extend
// past the parent, and a tight budget must bite before it.
func TestGatherBudgetUnderParentDeadline(t *testing.T) {
	parent, cancel := context.WithTimeout(context.Background(), 80*time.Millisecond)
	defer cancel()
	parentDL, _ := parent.Deadline()

	// Budget far beyond the parent: child deadline == parent deadline.
	_, err := Gather(parent, testShards(2), time.Hour,
		func(ctx context.Context, s ShardInfo) (struct{}, error) {
			dl, ok := ctx.Deadline()
			if !ok {
				t.Error("child context has no deadline")
			} else if dl.After(parentDL) {
				t.Errorf("shard %s deadline %v exceeds parent %v", s.ID, dl, parentDL)
			}
			return struct{}{}, nil
		})
	if err != nil {
		t.Fatal(err)
	}

	// Tight budget: a slow shard is cut off near the budget, long
	// before the parent deadline, and reports DeadlineExceeded.
	start := time.Now()
	parent2, cancel2 := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel2()
	_, err = Gather(parent2, testShards(2), 30*time.Millisecond,
		func(ctx context.Context, s ShardInfo) (struct{}, error) {
			if s.ID == 1 {
				<-ctx.Done() // simulate a hung shard
				return struct{}{}, ctx.Err()
			}
			return struct{}{}, nil
		})
	elapsed := time.Since(start)
	if elapsed > 2*time.Second {
		t.Fatalf("budget did not bite: gather took %v", elapsed)
	}
	var pe *PartialError
	if !errors.As(err, &pe) || !errors.Is(pe.Failed[1], context.DeadlineExceeded) {
		t.Fatalf("want DeadlineExceeded for the hung shard, got %v", err)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatal("PartialError.Unwrap does not surface the shard cause")
	}
}
