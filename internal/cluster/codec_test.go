package cluster

import (
	"bytes"
	"testing"
)

func TestMapFrameRoundTrip(t *testing.T) {
	m, err := NewMap(42, 64, testShards(4))
	if err != nil {
		t.Fatal(err)
	}
	frame := m.EncodeFrame()
	got, err := DecodeMapFrame(frame)
	if err != nil {
		t.Fatal(err)
	}
	if !m.Equal(got) {
		t.Fatalf("round-trip changed the map: %+v vs %+v", m, got)
	}
	for i := 0; i < 100; i++ {
		k := string(rune('a'+i%26)) + "-key"
		if m.Owner(k) != got.Owner(k) {
			t.Fatalf("decoded map routes %q differently", k)
		}
	}
}

func TestMapFrameTornRejected(t *testing.T) {
	m, err := NewMap(7, 32, testShards(3))
	if err != nil {
		t.Fatal(err)
	}
	frame := m.EncodeFrame()
	for cut := 0; cut < len(frame); cut++ {
		if _, err := DecodeMapFrame(frame[:cut]); err == nil {
			t.Fatalf("truncated frame of %d/%d bytes decoded cleanly", cut, len(frame))
		}
	}
	if _, err := DecodeMapFrame(append(bytes.Clone(frame), 0x00)); err == nil {
		t.Fatal("trailing garbage accepted")
	}
}

func TestMapFrameHostileInputs(t *testing.T) {
	cases := map[string][]byte{
		"empty":                     {},
		"bad magic":                 {0x00, 0x00, 0x01, byte(FrameShardMap)},
		"wrong type (notification)": {0xC5, 0x5F, 0x01, 0x01},
		// version=1, vnodes=1, count claims 2^62 shards.
		"length bomb": append([]byte{0xC5, 0x5F, 0x01, byte(FrameShardMap), 0x01, 0x01},
			0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x3f),
		// vnodes=0 would make an unroutable ring.
		"zero vnodes": {0xC5, 0x5F, 0x01, byte(FrameShardMap), 0x01, 0x00, 0x01, 0x00, 0x00},
		// count=0 shards decodes structurally but fails NewMap.
		"no shards": {0xC5, 0x5F, 0x01, byte(FrameShardMap), 0x01, 0x01, 0x00},
	}
	for name, data := range cases {
		if _, err := DecodeMapFrame(data); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestHandoffFrameRoundTrip(t *testing.T) {
	batch := []byte{0x01, 0x02, 0x03, 0xfe, 0xff}
	frame := EncodeHandoffFrame("index", batch)
	store, got, err := DecodeHandoffFrame(frame)
	if err != nil {
		t.Fatal(err)
	}
	if store != "index" || !bytes.Equal(got, batch) {
		t.Fatalf("round-trip: store=%q batch=%x", store, got)
	}
	for cut := 0; cut < len(frame); cut++ {
		if _, _, err := DecodeHandoffFrame(frame[:cut]); err == nil {
			t.Fatalf("truncated handoff frame of %d/%d bytes accepted", cut, len(frame))
		}
	}
	if _, _, err := DecodeHandoffFrame(append(bytes.Clone(frame), 0xAA)); err == nil {
		t.Fatal("trailing garbage accepted")
	}
}
