package cluster

import (
	"bytes"
	"testing"
)

// FuzzShardMapFrame hammers the shard-map decoder with arbitrary
// bytes. Any input that decodes cleanly must re-encode to a frame that
// decodes to an equal map (canonical round-trip), and the decoder must
// never panic or accept torn frames.
func FuzzShardMapFrame(f *testing.F) {
	small, _ := NewMap(1, 8, []ShardInfo{{ID: 0, Addr: "http://a"}})
	big, _ := NewMap(900, 64, []ShardInfo{
		{ID: 0, Addr: "http://shard-0.local:8080"},
		{ID: 3, Addr: "http://shard-3.local:8080"},
		{ID: 7, Addr: ""},
	})
	f.Add(small.EncodeFrame())
	f.Add(big.EncodeFrame())
	f.Add([]byte{0xC5, 0x5F, 0x01, byte(FrameShardMap)})
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := DecodeMapFrame(data)
		if err != nil {
			return
		}
		re := m.EncodeFrame()
		m2, err := DecodeMapFrame(re)
		if err != nil {
			t.Fatalf("re-encode of valid map does not decode: %v", err)
		}
		if !m.Equal(m2) {
			t.Fatalf("round-trip changed map: %+v vs %+v", m, m2)
		}
		// Torn frames of a valid encoding must never decode.
		if len(re) > 0 {
			if _, err := DecodeMapFrame(re[:len(re)-1]); err == nil {
				t.Fatal("torn frame accepted")
			}
		}
		if _, err := DecodeMapFrame(append(bytes.Clone(re), 0)); err == nil {
			t.Fatal("trailing garbage accepted")
		}
	})
}
