// Binary frame codec for the shard map and the reshard handoff
// stream, built on the event package's frame primitives (same magic,
// version byte and hardened-decode discipline as the PR 7 wire codec).
//
// Shard-map frame (type 8):
//
//	header | uvarint version | uvarint vnodes | uvarint count |
//	count × (uvarint shardID, string addr, uvarint epoch,
//	         uvarint replicaCount, replicaCount × string)
//
// The per-shard epoch and replica list (both zero/empty outside
// replicated deployments) ride in the same versioned frame, so the
// failover protocol's primary claim is published through the exact
// channel clients already refresh from.
//
// Handoff frame (type 9) wraps one WAL-encoded store.Batch together
// with the name of the store it applies to — the index and idmap
// stores are separate, so every shipped batch must say which store
// replays it:
//
//	header | string storeName | string batchFrame
//
// where batchFrame is the store package's length+CRC framed batch
// (store.Batch.EncodeFrame). Decoders validate every claimed length
// against the bytes present before allocating, and reject trailing
// garbage, so torn frames fail cleanly (fuzzed in codec_fuzz_test.go).
package cluster

import (
	"encoding/binary"
	"errors"

	"repro/internal/event"
)

// Frame types claimed by the cluster layer. The event layer owns 1-7.
const (
	// FrameShardMap carries a versioned shard map.
	FrameShardMap = event.FrameType(8)
	// FrameHandoff carries one store-tagged WAL batch of a reshard
	// handoff stream.
	FrameHandoff = event.FrameType(9)
)

var (
	errCodecVarint = errors.New("cluster: shard map frame has malformed varint")
	errCodecBomb   = errors.New("cluster: shard map frame claims more shards than payload can hold")
	errCodecTrail  = errors.New("cluster: frame has trailing garbage")
	errCodecShard  = errors.New("cluster: shard map frame has invalid shard id")
)

// EncodeFrame renders the map as a binary shard-map frame, sized up
// front and filled in one allocation.
func (m *Map) EncodeFrame() []byte {
	size := event.FrameHeaderLen +
		uvarintLen(m.version) +
		uvarintLen(uint64(m.vnodes)) +
		uvarintLen(uint64(len(m.shards)))
	for _, s := range m.shards {
		size += uvarintLen(uint64(s.ID)) + uvarintLen(uint64(len(s.Addr))) + len(s.Addr) +
			uvarintLen(s.Epoch) + uvarintLen(uint64(len(s.Replicas)))
		for _, r := range s.Replicas {
			size += uvarintLen(uint64(len(r))) + len(r)
		}
	}
	dst := make([]byte, 0, size)
	dst = event.AppendFrameHeader(dst, FrameShardMap)
	dst = binary.AppendUvarint(dst, m.version)
	dst = binary.AppendUvarint(dst, uint64(m.vnodes))
	dst = binary.AppendUvarint(dst, uint64(len(m.shards)))
	for _, s := range m.shards {
		dst = binary.AppendUvarint(dst, uint64(s.ID))
		dst = event.AppendFrameString(dst, s.Addr)
		dst = binary.AppendUvarint(dst, s.Epoch)
		dst = binary.AppendUvarint(dst, uint64(len(s.Replicas)))
		for _, r := range s.Replicas {
			dst = event.AppendFrameString(dst, r)
		}
	}
	return dst
}

func uvarintLen(x uint64) int {
	n := 1
	for x >= 0x80 {
		x >>= 7
		n++
	}
	return n
}

// DecodeMapFrame parses a shard-map frame and rebuilds the ring. All
// NewMap validation (non-empty, unique non-negative IDs) applies, so a
// frame that decodes cleanly always yields a routable map.
func DecodeMapFrame(data []byte) (*Map, error) {
	p, err := event.FrameBody(data, FrameShardMap)
	if err != nil {
		return nil, err
	}
	version, n := binary.Uvarint(p)
	if n <= 0 {
		return nil, errCodecVarint
	}
	p = p[n:]
	vnodes, n := binary.Uvarint(p)
	if n <= 0 {
		return nil, errCodecVarint
	}
	if vnodes == 0 || vnodes > 1<<16 {
		return nil, errors.New("cluster: shard map frame has invalid vnode count")
	}
	p = p[n:]
	count, n := binary.Uvarint(p)
	if n <= 0 {
		return nil, errCodecVarint
	}
	p = p[n:]
	// Each shard entry needs at least four bytes (one-byte id varint, a
	// zero-length addr, a zero epoch and a zero replica count), so a
	// count beyond len(p)/4 cannot be satisfied: reject before sizing
	// the slice from wire input.
	if count > uint64(len(p))/4 {
		return nil, errCodecBomb
	}
	shards := make([]ShardInfo, 0, count)
	for i := uint64(0); i < count; i++ {
		id, n := binary.Uvarint(p)
		if n <= 0 {
			return nil, errCodecVarint
		}
		if id > 1<<30 {
			return nil, errCodecShard
		}
		p = p[n:]
		var addr string
		if addr, p, err = event.FrameString(p); err != nil {
			return nil, err
		}
		epoch, n := binary.Uvarint(p)
		if n <= 0 {
			return nil, errCodecVarint
		}
		p = p[n:]
		rcount, n := binary.Uvarint(p)
		if n <= 0 {
			return nil, errCodecVarint
		}
		p = p[n:]
		// A replica entry needs at least its one-byte length varint.
		if rcount > uint64(len(p)) {
			return nil, errCodecBomb
		}
		var replicas []string
		for j := uint64(0); j < rcount; j++ {
			var r string
			if r, p, err = event.FrameString(p); err != nil {
				return nil, err
			}
			replicas = append(replicas, r)
		}
		shards = append(shards, ShardInfo{ID: ShardID(id), Addr: addr, Epoch: epoch, Replicas: replicas})
	}
	if len(p) != 0 {
		return nil, errCodecTrail
	}
	return NewMap(version, int(vnodes), shards)
}

// EncodeHandoffFrame wraps one WAL-framed store batch with the name of
// the store that must replay it.
func EncodeHandoffFrame(storeName string, batchFrame []byte) []byte {
	size := event.FrameHeaderLen +
		uvarintLen(uint64(len(storeName))) + len(storeName) +
		uvarintLen(uint64(len(batchFrame))) + len(batchFrame)
	dst := make([]byte, 0, size)
	dst = event.AppendFrameHeader(dst, FrameHandoff)
	dst = event.AppendFrameString(dst, storeName)
	dst = binary.AppendUvarint(dst, uint64(len(batchFrame)))
	return append(dst, batchFrame...)
}

// DecodeHandoffFrame splits a handoff frame into the target store name
// and the raw WAL batch frame (still carrying its own length+CRC,
// validated by store.DecodeBatchFrame on replay).
func DecodeHandoffFrame(data []byte) (storeName string, batchFrame []byte, err error) {
	p, err := event.FrameBody(data, FrameHandoff)
	if err != nil {
		return "", nil, err
	}
	if storeName, p, err = event.FrameString(p); err != nil {
		return "", nil, err
	}
	l, n := binary.Uvarint(p)
	if n <= 0 {
		return "", nil, errCodecVarint
	}
	p = p[n:]
	if l > uint64(len(p)) {
		return "", nil, errors.New("cluster: handoff frame batch length exceeds payload")
	}
	batchFrame = p[:l]
	if len(p[l:]) != 0 {
		return "", nil, errCodecTrail
	}
	return storeName, batchFrame, nil
}
