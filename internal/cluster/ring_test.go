package cluster

import (
	"errors"
	"fmt"
	"testing"
)

func testShards(n int) []ShardInfo {
	s := make([]ShardInfo, n)
	for i := range s {
		s[i] = ShardInfo{ID: ShardID(i), Addr: fmt.Sprintf("http://127.0.0.1:%d", 9000+i)}
	}
	return s
}

func TestMapValidation(t *testing.T) {
	if _, err := NewMap(1, 0, nil); err == nil {
		t.Fatal("empty shard set accepted")
	}
	if _, err := NewMap(1, 0, []ShardInfo{{ID: 0}, {ID: 0}}); err == nil {
		t.Fatal("duplicate shard id accepted")
	}
	if _, err := NewMap(1, 0, []ShardInfo{{ID: -1}}); err == nil {
		t.Fatal("negative shard id accepted")
	}
	m, err := NewMap(1, 0, testShards(3))
	if err != nil {
		t.Fatal(err)
	}
	if m.VNodes() != DefaultVNodes {
		t.Fatalf("vnodes = %d, want default %d", m.VNodes(), DefaultVNodes)
	}
	if _, ok := m.Shard(2); !ok {
		t.Fatal("Shard(2) not found")
	}
	if _, ok := m.Shard(9); ok {
		t.Fatal("Shard(9) found")
	}
}

func TestOwnerDeterministic(t *testing.T) {
	a, err := NewMap(3, 64, testShards(4))
	if err != nil {
		t.Fatal(err)
	}
	// A second map built from the same inputs (different slice order)
	// must agree on every key — nodes never coordinate assignments.
	shuffled := []ShardInfo{testShards(4)[2], testShards(4)[0], testShards(4)[3], testShards(4)[1]}
	b, err := NewMap(3, 64, shuffled)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Equal(b) {
		t.Fatal("maps from same shard set not equal")
	}
	for i := 0; i < 1000; i++ {
		k := fmt.Sprintf("pseudonym-%04d", i)
		if a.Owner(k) != b.Owner(k) {
			t.Fatalf("owner disagreement for %s", k)
		}
	}
}

func TestRingBalance(t *testing.T) {
	m, err := NewMap(1, DefaultVNodes, testShards(4))
	if err != nil {
		t.Fatal(err)
	}
	counts := map[ShardID]int{}
	const keys = 20000
	for i := 0; i < keys; i++ {
		counts[m.Owner(fmt.Sprintf("hmac-pseudonym-%06d", i))]++
	}
	mean := keys / 4
	for id, c := range counts {
		if c == 0 {
			t.Fatalf("shard %s owns no keys", id)
		}
		if float64(c) > 1.6*float64(mean) || float64(c) < 0.4*float64(mean) {
			t.Fatalf("shard %s owns %d of %d keys — ring badly imbalanced", id, c, keys)
		}
	}
}

// TestSplitStability: growing 2→4 shards must move only keys whose
// owner actually changes, and never shuffle a key between surviving
// shards — the consistent-hash property the handoff cost rides on.
func TestSplitStability(t *testing.T) {
	old, err := NewMap(1, DefaultVNodes, testShards(2))
	if err != nil {
		t.Fatal(err)
	}
	next, err := old.WithShards(testShards(4))
	if err != nil {
		t.Fatal(err)
	}
	if next.Version() != 2 {
		t.Fatalf("version = %d, want 2", next.Version())
	}
	const keys = 20000
	moved := 0
	for i := 0; i < keys; i++ {
		k := fmt.Sprintf("hmac-pseudonym-%06d", i)
		before, after := old.Owner(k), next.Owner(k)
		if before != after {
			moved++
			// A key may only move TO one of the newly added shards.
			if after != 2 && after != 3 {
				t.Fatalf("key %s moved between surviving shards %s→%s", k, before, after)
			}
		}
	}
	// Doubling the cluster should move roughly half the keys.
	if moved < keys/4 || moved > 3*keys/4 {
		t.Fatalf("split moved %d of %d keys, want ≈ half", moved, keys)
	}
}

func TestWrongShardError(t *testing.T) {
	err := error(&WrongShardError{Owner: 3, Version: 7})
	if !errors.Is(err, ErrWrongShard) {
		t.Fatal("WrongShardError does not match ErrWrongShard")
	}
	var wse *WrongShardError
	if !errors.As(err, &wse) || wse.Owner != 3 || wse.Version != 7 {
		t.Fatalf("errors.As lost details: %+v", wse)
	}
}
