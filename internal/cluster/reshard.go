// Live resharding: split or merge the cluster by flipping from the
// current map to a successor map without dropping or double-indexing a
// publish. The protocol is freeze → drain → ship → flip → sweep:
//
//  1. Freeze. Every donor shard starts rejecting publishes whose
//     pseudonym moves under the next map with ErrResharding — a
//     transient fault the transport retries, so producers stall
//     briefly instead of failing. Publishes for keys that stay put
//     proceed untouched.
//  2. Drain. The donor waits out publishes already in flight (a
//     read-write barrier in the controller), so the export below sees
//     every acknowledged write.
//  3. Ship. The donor scans its index and id-map for moved keys and
//     streams them to each recipient as store-tagged WAL batch frames
//     (handoff frames wrapping store.Batch.EncodeFrame bytes). The
//     recipient applies them through the same WAL apply path as a
//     normal write — CRC-checked, torn frames rejected.
//  4. Flip. Recipients adopt the next map first, then donors. From the
//     donor's adoption on, a publish for a moved key answers with the
//     ErrWrongShard redirect naming the new owner; because recipients
//     adopted first, the redirected retry lands on a shard that
//     accepts it. At every instant each key is writable on at most one
//     shard, and producers retry the freeze window, so nothing is
//     dropped and nothing indexes twice.
//  5. Sweep. The donor deletes the moved keys it shipped, so scatter
//     queries stop seeing them twice. (Until the sweep completes the
//     scatter merge's id-dedupe hides the brief overlap.)
//
// The coordinator below drives in-process nodes — the form the smoke
// and chaos suites exercise. Cross-process resharding ships the same
// frames over the peer transport; the node protocol is identical.
package cluster

import (
	"context"
	"errors"
	"fmt"
)

// Node is the per-shard surface the reshard coordinator drives. The
// controller implements it.
type Node interface {
	// Self returns this node's shard id.
	Self() ShardID
	// CurrentMap returns the map the node is routing by.
	CurrentMap() *Map
	// BeginReshard freezes publishes for keys that move under next
	// (they fail with ErrResharding until the flip) and drains
	// in-flight publishes so a subsequent export is complete.
	BeginReshard(next *Map) error
	// ExportMoved scans the node's stores for keys whose owner changes
	// under next and streams them as handoff frames to ship, tagged
	// with the recipient shard. It returns the number of moved events.
	ExportMoved(next *Map, ship func(target ShardID, frame []byte) error) (int, error)
	// ImportFrame applies one handoff frame produced by ExportMoved on
	// another node. Idempotent: re-applying a frame is harmless.
	ImportFrame(frame []byte) error
	// AdoptMap atomically switches the node to the next map and lifts
	// the freeze. Moved keys answer with ErrWrongShard redirects after.
	AdoptMap(next *Map) error
	// AbortReshard lifts the freeze without adopting, restoring the
	// pre-reshard state (shipped copies on recipients are inert — the
	// map never flipped, so they are unreachable and re-shipped by a
	// future attempt).
	AbortReshard() error
	// SweepMoved deletes keys this node no longer owns under its
	// current map, returning how many events it removed. Called on
	// donors after the flip.
	SweepMoved() (int, error)
}

// ReshardStats summarizes one completed reshard.
type ReshardStats struct {
	// Moved counts events shipped donor→recipient.
	Moved int
	// Swept counts events deleted from donors after the flip.
	Swept int
}

// Reshard drives a split or merge across the given nodes: every shard
// of the current map and every shard of the next map must be present.
// On error before the flip the donors are unfrozen and the cluster
// stays on the current map; the flip itself is per-node-atomic and
// ordered recipients-first so redirected publishes always land on a
// shard that accepts them.
func Reshard(ctx context.Context, nodes map[ShardID]Node, next *Map) (ReshardStats, error) {
	var stats ReshardStats
	if next == nil {
		return stats, errors.New("cluster: reshard needs a next map")
	}
	var cur *Map
	for _, n := range nodes {
		m := n.CurrentMap()
		if cur == nil {
			cur = m
		} else if !cur.Equal(m) {
			return stats, fmt.Errorf("cluster: nodes disagree on current map (v%d vs v%d)", cur.Version(), m.Version())
		}
	}
	if cur == nil {
		return stats, errors.New("cluster: reshard needs at least one node")
	}
	if next.Version() <= cur.Version() {
		return stats, ErrStaleMap
	}
	for _, s := range cur.Shards() {
		if _, ok := nodes[s.ID]; !ok {
			return stats, fmt.Errorf("cluster: reshard missing donor node %s", s.ID)
		}
	}
	for _, s := range next.Shards() {
		if _, ok := nodes[s.ID]; !ok {
			return stats, fmt.Errorf("cluster: reshard missing recipient node %s", s.ID)
		}
	}

	donors := cur.Shards()

	// Freeze + drain every donor. On failure, unfreeze the ones already
	// frozen and abort with the cluster unchanged.
	frozen := make([]Node, 0, len(donors))
	abort := func() {
		for _, n := range frozen {
			_ = n.AbortReshard()
		}
	}
	for _, s := range donors {
		if err := ctx.Err(); err != nil {
			abort()
			return stats, err
		}
		n := nodes[s.ID]
		if err := n.BeginReshard(next); err != nil {
			abort()
			return stats, fmt.Errorf("cluster: freeze %s: %w", s.ID, err)
		}
		frozen = append(frozen, n)
	}

	// Ship moved keys donor→recipient while everything is quiescent.
	for _, s := range donors {
		if err := ctx.Err(); err != nil {
			abort()
			return stats, err
		}
		moved, err := nodes[s.ID].ExportMoved(next, func(target ShardID, frame []byte) error {
			rec, ok := nodes[target]
			if !ok {
				return fmt.Errorf("cluster: handoff targets unknown shard %s", target)
			}
			return rec.ImportFrame(frame)
		})
		if err != nil {
			abort()
			return stats, fmt.Errorf("cluster: export from %s: %w", s.ID, err)
		}
		stats.Moved += moved
	}

	// Flip: recipients first, donors second. Past this point there is
	// no rollback — the map version only moves forward.
	isDonor := make(map[ShardID]bool, len(donors))
	for _, s := range donors {
		isDonor[s.ID] = true
	}
	for _, s := range next.Shards() {
		if !isDonor[s.ID] {
			if err := nodes[s.ID].AdoptMap(next); err != nil {
				abort()
				return stats, fmt.Errorf("cluster: adopt on %s: %w", s.ID, err)
			}
		}
	}
	for _, s := range donors {
		if err := nodes[s.ID].AdoptMap(next); err != nil {
			return stats, fmt.Errorf("cluster: adopt on donor %s: %w", s.ID, err)
		}
	}

	// Sweep donors that remain in the cluster. Failures here leave
	// duplicates the scatter merge dedupes; report them anyway.
	for _, s := range next.Shards() {
		if !isDonor[s.ID] {
			continue
		}
		swept, err := nodes[s.ID].SweepMoved()
		if err != nil {
			return stats, fmt.Errorf("cluster: sweep on %s: %w", s.ID, err)
		}
		stats.Swept += swept
	}
	return stats, nil
}
