package replication

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"

	"repro/internal/telemetry"
)

// FollowerConfig configures the applying side.
type FollowerConfig struct {
	// Stores to apply into, in the same order as the primary's.
	Stores []NamedStore
	// Epoch is the highest primary epoch this follower has seen; data
	// frames stamped lower are denied (fencing).
	Epoch uint64
	// OnApply, when set, runs after every applied segment with the
	// store's name — the controller refreshes derived in-memory state
	// (consent directives, catalog, policies) here.
	OnApply func(storeName string)
	// Metrics registers css_repl_* instruments when set.
	Metrics *telemetry.Registry
	// Logf receives replication lifecycle events; nil discards them.
	Logf func(format string, args ...any)
}

// Follower listens for a primary's replication stream and applies the
// shipped WAL segments into its local stores, fsyncing before every
// acknowledgement. It holds the node's fencing epoch: a frame from an
// older epoch is denied and the connection dropped.
type Follower struct {
	cfg   FollowerConfig
	ln    net.Listener
	epoch atomic.Uint64
	logf  func(format string, args ...any)

	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup

	applied    *telemetry.Counter
	fenced     *telemetry.Counter
	epochGauge *telemetry.Gauge
}

// NewFollower listens on addr (host:port, port 0 for ephemeral) and
// serves replication connections until Close.
func NewFollower(addr string, cfg FollowerConfig) (*Follower, error) {
	if len(cfg.Stores) == 0 {
		return nil, errors.New("replication: follower needs at least one store")
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("replication: listen %s: %w", addr, err)
	}
	f := &Follower{cfg: cfg, ln: ln, logf: cfg.Logf, conns: make(map[net.Conn]struct{})}
	f.epoch.Store(cfg.Epoch)
	if f.logf == nil {
		f.logf = func(string, ...any) {}
	}
	if m := cfg.Metrics; m != nil {
		f.applied = m.Counter("css_repl_applied_bytes_total", "Replicated WAL bytes applied, per store.", "store")
		f.fenced = m.Counter("css_repl_fenced_total", "Frames or connections rejected for a stale epoch.")
		f.epochGauge = m.Gauge("css_repl_epoch", "Fencing epoch this node ships or applies under.")
		f.epochGauge.Set(float64(cfg.Epoch))
	}
	f.wg.Add(1)
	go f.acceptLoop()
	return f, nil
}

// Addr returns the bound listen address (for -replicate-to flags and
// test wiring).
func (f *Follower) Addr() string { return f.ln.Addr().String() }

// Epoch returns the highest primary epoch seen.
func (f *Follower) Epoch() uint64 { return f.epoch.Load() }

// SetEpoch raises the fencing epoch — promotion calls this on the
// surviving followers (directly or via the promoted primary's first
// frame) so the deposed primary is denied everywhere.
func (f *Follower) SetEpoch(e uint64) {
	for {
		cur := f.epoch.Load()
		if e <= cur || f.epoch.CompareAndSwap(cur, e) {
			break
		}
	}
	if f.epochGauge != nil {
		f.epochGauge.Set(float64(f.epoch.Load()))
	}
}

// Offsets snapshots the per-store WAL offsets — the catch-up cursor
// this follower would announce, and the measure of "most caught up"
// during failover.
func (f *Follower) Offsets() map[string]int64 {
	out := make(map[string]int64, len(f.cfg.Stores))
	for _, ns := range f.cfg.Stores {
		out[ns.Name] = ns.Store.WALOffset()
	}
	return out
}

func (f *Follower) acceptLoop() {
	defer f.wg.Done()
	for {
		conn, err := f.ln.Accept()
		if err != nil {
			return // listener closed
		}
		f.mu.Lock()
		if f.closed {
			f.mu.Unlock()
			conn.Close()
			return
		}
		f.conns[conn] = struct{}{}
		f.wg.Add(1)
		f.mu.Unlock()
		go func() {
			defer f.wg.Done()
			err := f.handleConn(conn)
			conn.Close()
			f.mu.Lock()
			delete(f.conns, conn)
			f.mu.Unlock()
			if err != nil && !errors.Is(err, net.ErrClosed) {
				f.logf("repl: primary %s: %v", conn.RemoteAddr(), err)
			}
		}()
	}
}

// handleConn serves one primary connection: announce cursors, then
// apply data frames, fsync, acknowledge.
func (f *Follower) handleConn(conn net.Conn) error {
	offsets := make([]storeOffset, len(f.cfg.Stores))
	for i, ns := range f.cfg.Stores {
		offsets[i] = storeOffset{name: ns.Name, offset: ns.Store.WALOffset()}
	}
	if err := writeMsg(conn, encodeHello(f.epoch.Load(), offsets)); err != nil {
		return fmt.Errorf("hello: %w", err)
	}
	// Certify the pre-existing prefix: fsync everything and ack every
	// store once, so quorum accounting on the primary starts from the
	// true durable state instead of waiting for each store's next write.
	for _, ns := range f.cfg.Stores {
		if err := ns.Store.SyncWAL(); err != nil {
			return err
		}
		if err := writeMsg(conn, encodeAck(ns.Name, ns.Store.WALOffset())); err != nil {
			return err
		}
	}

	br := bufio.NewReader(conn)
	touched := make(map[int]struct{})
	for {
		msg, err := readMsg(br)
		if err != nil {
			return err
		}
		name, epoch, offset, seg, err := decodeData(msg)
		if err != nil {
			return fmt.Errorf("data: %w", err)
		}
		cur := f.epoch.Load()
		if epoch < cur {
			// Fencing: a deposed primary is still shipping. Deny and
			// drop the stream; nothing from it is applied.
			if f.fenced != nil {
				f.fenced.Inc()
			}
			writeMsg(conn, encodeDeny(cur))
			return fmt.Errorf("denied stale epoch %d (holding %d)", epoch, cur)
		}
		if epoch > cur {
			f.SetEpoch(epoch)
		}
		idx := -1
		for i, ns := range f.cfg.Stores {
			if ns.Name == name {
				idx = i
				break
			}
		}
		if idx < 0 {
			return fmt.Errorf("data for unknown store %q", name)
		}
		if _, err := f.cfg.Stores[idx].Store.ApplyWALSegment(offset, seg); err != nil {
			return fmt.Errorf("apply %s at %d: %w", name, offset, err)
		}
		if f.applied != nil {
			f.applied.Add(uint64(len(seg)), name)
		}
		if f.cfg.OnApply != nil {
			f.cfg.OnApply(name)
		}
		touched[idx] = struct{}{}
		// Batch the fsync+ack over every frame already buffered: under
		// a storm one fsync covers many segments (group commit shape).
		if br.Buffered() > 0 {
			continue
		}
		for i := range touched {
			ns := f.cfg.Stores[i]
			if err := ns.Store.SyncWAL(); err != nil {
				return err
			}
			if err := writeMsg(conn, encodeAck(ns.Name, ns.Store.WALOffset())); err != nil {
				return err
			}
		}
		clear(touched)
	}
}

// Close stops accepting and drops every primary connection.
// Idempotent.
func (f *Follower) Close() error {
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		return nil
	}
	f.closed = true
	for c := range f.conns {
		c.Close()
	}
	f.mu.Unlock()
	err := f.ln.Close()
	f.wg.Wait()
	return err
}
