package replication

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"

	"repro/internal/store"
	"repro/internal/telemetry"
)

// FollowerConfig configures the applying side.
type FollowerConfig struct {
	// Stores to apply into, in the same order as the primary's.
	Stores []NamedStore
	// Epoch is the highest primary epoch this follower has seen; data
	// frames stamped lower are denied (fencing).
	Epoch uint64
	// OnApply, when set, runs after every applied segment with the
	// store's name — the controller refreshes derived in-memory state
	// (consent directives, catalog, policies) here.
	OnApply func(storeName string)
	// Metrics registers css_repl_* instruments when set.
	Metrics *telemetry.Registry
	// Logf receives replication lifecycle events; nil discards them.
	Logf func(format string, args ...any)
}

// Follower listens for a primary's replication stream and applies the
// shipped WAL segments into its local stores, fsyncing before every
// acknowledgement. It holds the node's fencing epoch: a frame from an
// older epoch is denied and the connection dropped. It is also the
// election endpoint: a candidate dials the same listener, reads the
// hello, and sends a campaign frame; whether the vote is granted is
// decided by the hook the election manager installs.
type Follower struct {
	cfg   FollowerConfig
	ln    net.Listener
	epoch atomic.Uint64
	logf  func(format string, args ...any)

	// contact is invoked (when installed) every time a live primary at
	// an acceptable epoch is heard from — heartbeat or data frame. The
	// election manager's failure detector samples arrivals through it.
	contact atomic.Pointer[func(epoch uint64)]
	// vote decides a campaign after the follower's own up-to-date check
	// passed: it must durably persist the promised epoch before
	// returning true. Nil (never installed) denies every campaign.
	vote atomic.Pointer[func(epoch uint64) bool]

	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup

	applied    *telemetry.Counter
	fenced     *telemetry.Counter
	epochGauge *telemetry.Gauge
	truncates  *telemetry.Counter
}

// NewFollower listens on addr (host:port, port 0 for ephemeral) and
// serves replication connections until Close.
func NewFollower(addr string, cfg FollowerConfig) (*Follower, error) {
	if len(cfg.Stores) == 0 {
		return nil, errors.New("replication: follower needs at least one store")
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("replication: listen %s: %w", addr, err)
	}
	f := &Follower{cfg: cfg, ln: ln, logf: cfg.Logf, conns: make(map[net.Conn]struct{})}
	f.epoch.Store(cfg.Epoch)
	if f.logf == nil {
		f.logf = func(string, ...any) {}
	}
	if m := cfg.Metrics; m != nil {
		f.applied = m.Counter("css_repl_applied_bytes_total", "Replicated WAL bytes applied, per store.", "store")
		f.fenced = m.Counter("css_repl_fenced_total", "Frames or connections rejected for a stale epoch.")
		f.epochGauge = m.Gauge("css_repl_epoch", "Fencing epoch this node ships or applies under.")
		f.epochGauge.Set(float64(cfg.Epoch))
		f.truncates = m.Counter("css_repl_truncates_total", "WAL truncations performed while rejoining as follower.")
	}
	f.wg.Add(1)
	go f.acceptLoop()
	return f, nil
}

// Addr returns the bound listen address (for -replicate-to flags and
// test wiring).
func (f *Follower) Addr() string { return f.ln.Addr().String() }

// Epoch returns the highest primary epoch seen.
func (f *Follower) Epoch() uint64 { return f.epoch.Load() }

// SetEpoch raises the fencing epoch — promotion calls this on the
// surviving followers (directly or via the promoted primary's first
// frame) so the deposed primary is denied everywhere.
func (f *Follower) SetEpoch(e uint64) {
	for {
		cur := f.epoch.Load()
		if e <= cur || f.epoch.CompareAndSwap(cur, e) {
			break
		}
	}
	if f.epochGauge != nil {
		f.epochGauge.Set(float64(f.epoch.Load()))
	}
}

// SetContactHook installs fn to be called on every heartbeat or data
// frame from a primary holding an acceptable epoch — the failure
// detector's sample source. Pass nil to uninstall.
func (f *Follower) SetContactHook(fn func(epoch uint64)) {
	if fn == nil {
		f.contact.Store(nil)
		return
	}
	f.contact.Store(&fn)
}

// SetVoteHook installs the campaign decision. The hook runs after the
// follower's own checks (candidate epoch strictly above the current
// fencing epoch, candidate cursors at or past this node's on every
// store); it must durably persist the promised epoch before returning
// true. While no hook is installed every campaign is denied, so a
// non-electing deployment never grants votes.
func (f *Follower) SetVoteHook(fn func(epoch uint64) bool) {
	if fn == nil {
		f.vote.Store(nil)
		return
	}
	f.vote.Store(&fn)
}

// Offsets snapshots the per-store WAL offsets — the catch-up cursor
// this follower would announce, and the measure of "most caught up"
// during failover.
func (f *Follower) Offsets() map[string]int64 {
	out := make(map[string]int64, len(f.cfg.Stores))
	for _, ns := range f.cfg.Stores {
		out[ns.Name] = ns.Store.WALOffset()
	}
	return out
}

func (f *Follower) acceptLoop() {
	defer f.wg.Done()
	for {
		conn, err := f.ln.Accept()
		if err != nil {
			return // listener closed
		}
		f.mu.Lock()
		if f.closed {
			f.mu.Unlock()
			conn.Close()
			return
		}
		f.conns[conn] = struct{}{}
		f.wg.Add(1)
		f.mu.Unlock()
		go func() {
			defer f.wg.Done()
			err := f.handleConn(conn)
			conn.Close()
			f.mu.Lock()
			delete(f.conns, conn)
			f.mu.Unlock()
			if err != nil && !errors.Is(err, net.ErrClosed) {
				f.logf("repl: primary %s: %v", conn.RemoteAddr(), err)
			}
		}()
	}
}

// noteContact feeds the failure detector, if one is listening.
func (f *Follower) noteContact(epoch uint64) {
	if fn := f.contact.Load(); fn != nil {
		(*fn)(epoch)
	}
}

// checkEpoch applies the fencing rule to an incoming frame: deny and
// drop anything below the current epoch, adopt anything above it.
// Returns an error when the connection must be closed.
func (f *Follower) checkEpoch(conn net.Conn, epoch uint64) error {
	cur := f.epoch.Load()
	if epoch < cur {
		if f.fenced != nil {
			f.fenced.Inc()
		}
		writeMsg(conn, encodeDeny(cur))
		return fmt.Errorf("denied stale epoch %d (holding %d)", epoch, cur)
	}
	if epoch > cur {
		f.SetEpoch(epoch)
	}
	return nil
}

// handleConn serves one primary (or candidate) connection: announce
// cursors with prefix CRCs, then dispatch frames. A healthy primary
// sends sync-start and streams data; a primary that found this node's
// log diverged (a rejoining deposed primary) first walks the digest
// exchange and orders a truncate; a candidate sends one campaign frame
// and reads the grant.
func (f *Follower) handleConn(conn net.Conn) error {
	offsets := make([]storeOffset, len(f.cfg.Stores))
	for i, ns := range f.cfg.Stores {
		off := ns.Store.WALOffset()
		var crc uint32
		if off > 0 {
			var err error
			if crc, err = ns.Store.CRCWAL(ns.Store.WALGen(), 0, off); err != nil {
				return fmt.Errorf("hello crc %s: %w", ns.Name, err)
			}
		}
		offsets[i] = storeOffset{name: ns.Name, offset: off, crc: crc}
	}
	if err := writeMsg(conn, encodeHello(f.epoch.Load(), offsets)); err != nil {
		return fmt.Errorf("hello: %w", err)
	}

	br := bufio.NewReader(conn)
	touched := make(map[int]struct{})
	for {
		msg, err := readMsg(br)
		if err != nil {
			return err
		}
		switch frameKind(msg) {
		case FrameSyncStart:
			if err := decodeSyncStart(msg); err != nil {
				return err
			}
			// Certify the (possibly truncated) prefix: fsync everything
			// and ack every store once, so quorum accounting on the
			// primary starts from the true durable state instead of
			// waiting for each store's next write.
			for _, ns := range f.cfg.Stores {
				if err := ns.Store.SyncWAL(); err != nil {
					return err
				}
				if err := writeMsg(conn, encodeAck(ns.Name, ns.Store.WALOffset())); err != nil {
					return err
				}
			}

		case FrameHeartbeat:
			epoch, err := decodeHeartbeat(msg)
			if err != nil {
				return err
			}
			if err := f.checkEpoch(conn, epoch); err != nil {
				return err
			}
			f.noteContact(epoch)

		case FrameCampaign:
			epoch, theirs, err := decodeCampaign(msg)
			if err != nil {
				return err
			}
			granted := f.decideVote(epoch, theirs)
			if err := writeMsg(conn, encodeGrant(granted, f.epoch.Load())); err != nil {
				return err
			}

		case FrameDigestReq:
			name, from, max, err := decodeDigestReq(msg)
			if err != nil {
				return err
			}
			st := f.storeNamed(name)
			if st == nil {
				return fmt.Errorf("digest request for unknown store %q", name)
			}
			if max <= 0 || max > 4096 {
				max = 4096
			}
			ds, err := st.DigestWAL(st.WALGen(), from, max)
			if err != nil {
				return fmt.Errorf("digest %s from %d: %w", name, from, err)
			}
			wire := make([]recordDigest, len(ds))
			end := from
			for i, d := range ds {
				wire[i] = recordDigest{end: d.End, crc: d.CRC}
				end = d.End
			}
			done := len(ds) < max || end >= st.WALOffset()
			if err := writeMsg(conn, encodeDigests(name, done, wire)); err != nil {
				return err
			}

		case FrameTruncate:
			name, offset, err := decodeTruncate(msg)
			if err != nil {
				return err
			}
			st := f.storeNamed(name)
			if st == nil {
				return fmt.Errorf("truncate for unknown store %q", name)
			}
			f.logf("repl: truncating %s back to %d (diverged old-epoch suffix)", name, offset)
			if err := st.TruncateWAL(offset); err != nil {
				return fmt.Errorf("truncate %s to %d: %w", name, offset, err)
			}
			if f.truncates != nil {
				f.truncates.Inc()
			}
			if f.cfg.OnApply != nil {
				f.cfg.OnApply(name)
			}
			if err := writeMsg(conn, encodeAck(name, offset)); err != nil {
				return err
			}

		case FrameData:
			name, epoch, offset, seg, err := decodeData(msg)
			if err != nil {
				return fmt.Errorf("data: %w", err)
			}
			if err := f.checkEpoch(conn, epoch); err != nil {
				return err
			}
			f.noteContact(epoch)
			idx := -1
			for i, ns := range f.cfg.Stores {
				if ns.Name == name {
					idx = i
					break
				}
			}
			if idx < 0 {
				return fmt.Errorf("data for unknown store %q", name)
			}
			if _, err := f.cfg.Stores[idx].Store.ApplyWALSegment(offset, seg); err != nil {
				return fmt.Errorf("apply %s at %d: %w", name, offset, err)
			}
			if f.applied != nil {
				f.applied.Add(uint64(len(seg)), name)
			}
			if f.cfg.OnApply != nil {
				f.cfg.OnApply(name)
			}
			touched[idx] = struct{}{}
			// Batch the fsync+ack over every frame already buffered: under
			// a storm one fsync covers many segments (group commit shape).
			if br.Buffered() > 0 {
				continue
			}
			for i := range touched {
				ns := f.cfg.Stores[i]
				if err := ns.Store.SyncWAL(); err != nil {
					return err
				}
				if err := writeMsg(conn, encodeAck(ns.Name, ns.Store.WALOffset())); err != nil {
					return err
				}
			}
			clear(touched)

		default:
			return fmt.Errorf("unexpected frame type %d", frameKind(msg))
		}
	}
}

// decideVote applies the election rules to one campaign: the candidate
// must claim an epoch strictly above this node's fencing epoch (a
// deposed primary re-campaigning with its old epoch always loses), its
// cursors must be at or past this node's on every store (a stale
// replica can never be elected over a more caught-up voter), and the
// installed vote hook must durably persist the promise. Granting raises
// the fencing epoch to the promised one, so a second candidate at the
// same epoch is denied — at most one grant per epoch per voter.
func (f *Follower) decideVote(epoch uint64, theirs []storeOffset) bool {
	cur := f.epoch.Load()
	if epoch <= cur {
		if f.fenced != nil {
			f.fenced.Inc()
		}
		f.logf("repl: denying campaign at epoch %d (holding %d)", epoch, cur)
		return false
	}
	cursor := make(map[string]int64, len(theirs))
	for _, o := range theirs {
		cursor[o.name] = o.offset
	}
	for _, ns := range f.cfg.Stores {
		if cursor[ns.Name] < ns.Store.WALOffset() {
			f.logf("repl: denying campaign at epoch %d: candidate %s cursor %d behind ours %d",
				epoch, ns.Name, cursor[ns.Name], ns.Store.WALOffset())
			return false
		}
	}
	hook := f.vote.Load()
	if hook == nil {
		f.logf("repl: denying campaign at epoch %d: no vote hook installed", epoch)
		return false
	}
	if !(*hook)(epoch) {
		return false
	}
	// The promise is durable; fence everything below it.
	f.SetEpoch(epoch)
	f.logf("repl: granted epoch %d", epoch)
	return true
}

// storeNamed finds a replicated store by name, nil when unknown.
func (f *Follower) storeNamed(name string) *store.Store {
	for _, ns := range f.cfg.Stores {
		if ns.Name == name {
			return ns.Store
		}
	}
	return nil
}

// Close stops accepting, drops every primary connection, and fsyncs
// each store so the applied-offset checkpoint survives the restart — a
// gracefully drained follower must never re-request frames it already
// durably applied. Idempotent.
func (f *Follower) Close() error {
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		return nil
	}
	f.closed = true
	for c := range f.conns {
		c.Close()
	}
	f.mu.Unlock()
	err := f.ln.Close()
	f.wg.Wait()
	for _, ns := range f.cfg.Stores {
		if serr := ns.Store.SyncWAL(); serr != nil && err == nil {
			err = serr
		}
	}
	return err
}
