package replication

import (
	"context"
	"fmt"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// walCRC is the whole-log CRC of one store — byte-identity witness.
func walCRC(t *testing.T, ns NamedStore) uint32 {
	t.Helper()
	crc, err := ns.Store.CRCWAL(ns.Store.WALGen(), 0, ns.Store.WALOffset())
	if err != nil {
		t.Fatalf("%s crc: %v", ns.Name, err)
	}
	return crc
}

// TestRejoinTruncatesDivergedPrimary is the deposed-primary round trip:
// the old primary keeps writing after its last shipped frame (an
// unreplicated old-epoch suffix), the follower is promoted and takes
// new writes, and when the deposed node reconnects as a follower the
// new primary locates the divergence, orders a truncate back to the
// common prefix, and re-ships until the logs are byte-identical.
func TestRejoinTruncatesDivergedPrimary(t *testing.T) {
	dir := t.TempDir()
	ps := openStores(t, filepath.Join(dir, "p"))
	fs := openStores(t, filepath.Join(dir, "f"))

	fol, err := NewFollower("127.0.0.1:0", FollowerConfig{Stores: fs, Epoch: 1})
	if err != nil {
		t.Fatal(err)
	}
	pri, err := NewPrimary(PrimaryConfig{Stores: ps, Epoch: 1})
	if err != nil {
		t.Fatal(err)
	}
	pri.AddFollower(fol.Addr())
	for i := 0; i < 10; i++ {
		ps[0].Store.Put(fmt.Sprintf("id-%03d", i), []byte("shared"))
		ps[2].Store.Put(fmt.Sprintf("a-%03d", i), []byte("audit"))
	}
	waitCaughtUp(t, ps, fs, 5*time.Second)

	// The primary "crashes": shipping stops, but the process wrote a
	// little more that never reached the follower.
	pri.Close()
	ps[0].Store.Put("rogue-id", []byte("unreplicated"))
	ps[2].Store.Put("rogue-audit", []byte("unreplicated"))

	// Failover: the follower becomes the primary at the next epoch and
	// takes new writes, so the histories genuinely diverge.
	fol.Close()
	newPri, err := NewPrimary(PrimaryConfig{Stores: fs, Epoch: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer newPri.Close()
	fs[0].Store.Put("post-failover", []byte("new-history"))
	fs[2].Store.Put("post-failover-audit", []byte("new-history"))

	// The deposed primary restarts as a follower at its old epoch and
	// rejoins.
	rejoin, err := NewFollower("127.0.0.1:0", FollowerConfig{Stores: ps, Epoch: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer rejoin.Close()
	newPri.AddFollower(rejoin.Addr())

	waitCaughtUp(t, fs, ps, 5*time.Second)
	for i := range fs {
		if got, want := walCRC(t, ps[i]), walCRC(t, fs[i]); got != want {
			t.Fatalf("%s logs differ after rejoin: %08x vs %08x", fs[i].Name, got, want)
		}
	}
	if _, ok := get(t, ps, "idmap", "rogue-id"); ok {
		t.Fatal("unreplicated old-epoch suffix survived the rejoin")
	}
	if v, ok := get(t, ps, "idmap", "post-failover"); !ok || v != "new-history" {
		t.Fatalf("rejoined node missing new history: %q %v", v, ok)
	}
	if v, ok := get(t, ps, "idmap", "id-007"); !ok || v != "shared" {
		t.Fatalf("rejoined node lost the common prefix: %q %v", v, ok)
	}
	if rejoin.Epoch() != 2 {
		t.Fatalf("rejoined node at epoch %d, want 2", rejoin.Epoch())
	}
}

// TestGracefulDrainCheckpointsOffsets is the satellite-2 regression: a
// follower closed gracefully must fsync its applied offsets, so a
// reopened store resumes from exactly where replication stopped instead
// of re-requesting durably applied frames.
func TestGracefulDrainCheckpointsOffsets(t *testing.T) {
	dir := t.TempDir()
	ps := openStores(t, filepath.Join(dir, "p"))
	fdir := filepath.Join(dir, "f")
	fs := openStores(t, fdir)

	fol, err := NewFollower("127.0.0.1:0", FollowerConfig{Stores: fs, Epoch: 1})
	if err != nil {
		t.Fatal(err)
	}
	pri, err := NewPrimary(PrimaryConfig{Stores: ps, Epoch: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer pri.Close()
	pri.AddFollower(fol.Addr())
	for i := 0; i < 25; i++ {
		ps[0].Store.Put(fmt.Sprintf("k-%03d", i), []byte("v"))
	}
	waitCaughtUp(t, ps, fs, 5*time.Second)

	// Graceful drain: Close must leave the durable checkpoint equal to
	// the applied offset on every store.
	if err := fol.Close(); err != nil {
		t.Fatal(err)
	}
	for _, ns := range fs {
		if synced, off := ns.Store.WALSynced(), ns.Store.WALOffset(); synced != off {
			t.Fatalf("%s: synced %d != applied %d after graceful drain", ns.Name, synced, off)
		}
	}

	// Crash-restart: reopen the data directory; the announced cursor
	// must resume at the applied offset (nothing is re-requested).
	wantOffset := fs[0].Store.WALOffset()
	for _, ns := range fs {
		ns.Store.Close()
	}
	re, err := NewFollower("127.0.0.1:0", FollowerConfig{Stores: openStores(t, fdir), Epoch: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if got := re.Offsets()["idmap"]; got != wantOffset {
		t.Fatalf("restarted follower announces idmap offset %d, want %d", got, wantOffset)
	}
}

// TestHeartbeatsFeedContactHook: a primary with HeartbeatEvery set
// keeps the follower's contact hook firing even with zero writes.
func TestHeartbeatsFeedContactHook(t *testing.T) {
	dir := t.TempDir()
	ps := openStores(t, filepath.Join(dir, "p"))
	fs := openStores(t, filepath.Join(dir, "f"))

	var contacts atomic.Int64
	fol, err := NewFollower("127.0.0.1:0", FollowerConfig{Stores: fs, Epoch: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer fol.Close()
	fol.SetContactHook(func(epoch uint64) {
		if epoch != 1 {
			t.Errorf("heartbeat at epoch %d, want 1", epoch)
		}
		contacts.Add(1)
	})

	pri, err := NewPrimary(PrimaryConfig{Stores: ps, Epoch: 1, HeartbeatEvery: 10 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer pri.Close()
	pri.AddFollower(fol.Addr())

	deadline := time.Now().Add(5 * time.Second)
	for contacts.Load() < 5 {
		if time.Now().After(deadline) {
			t.Fatalf("only %d heartbeats in 5s", contacts.Load())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestCampaignVoting covers the epoch-fencing election edge cases at
// the wire level (satellite 3): a deposed primary campaigning with its
// old epoch, simultaneous candidates at equal epochs, a candidate with
// stale cursors, and a follower with no vote hook must all lose
// deterministically.
func TestCampaignVoting(t *testing.T) {
	newVoter := func(t *testing.T, epoch uint64, seedKeys int) (*Follower, []NamedStore) {
		t.Helper()
		fs := openStores(t, t.TempDir())
		for i := 0; i < seedKeys; i++ {
			fs[0].Store.Put(fmt.Sprintf("seed-%03d", i), []byte("x"))
		}
		fol, err := NewFollower("127.0.0.1:0", FollowerConfig{Stores: fs, Epoch: epoch})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { fol.Close() })
		return fol, fs
	}
	// grantAll is a vote hook with the EpochStore's raise-only promise
	// semantics, in memory.
	grantAll := func() func(uint64) bool {
		var mu sync.Mutex
		var promised uint64
		return func(e uint64) bool {
			mu.Lock()
			defer mu.Unlock()
			if e <= promised {
				return false
			}
			promised = e
			return true
		}
	}
	ctx := context.Background()
	caughtUp := func(fol *Follower) map[string]int64 { return fol.Offsets() }

	t.Run("deposed primary with old epoch loses", func(t *testing.T) {
		fol, _ := newVoter(t, 5, 0)
		fol.SetVoteHook(grantAll())
		for _, epoch := range []uint64{4, 5} {
			granted, voterEpoch, err := Campaign(ctx, nil, fol.Addr(), epoch, caughtUp(fol))
			if err != nil {
				t.Fatal(err)
			}
			if granted {
				t.Fatalf("voter at epoch 5 granted epoch %d", epoch)
			}
			if voterEpoch != 5 {
				t.Fatalf("voter reports epoch %d, want 5", voterEpoch)
			}
		}
		if granted, _, err := Campaign(ctx, nil, fol.Addr(), 6, caughtUp(fol)); err != nil || !granted {
			t.Fatalf("epoch 6 campaign = %v, %v; want granted", granted, err)
		}
	})

	t.Run("simultaneous candidates at equal epochs get one grant", func(t *testing.T) {
		fol, _ := newVoter(t, 1, 0)
		fol.SetVoteHook(grantAll())
		const candidates = 4
		var granted atomic.Int64
		var wg sync.WaitGroup
		for i := 0; i < candidates; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				g, _, err := Campaign(ctx, nil, fol.Addr(), 2, caughtUp(fol))
				if err != nil {
					t.Error(err)
					return
				}
				if g {
					granted.Add(1)
				}
			}()
		}
		wg.Wait()
		if granted.Load() != 1 {
			t.Fatalf("%d grants for epoch 2, want exactly 1", granted.Load())
		}
		if fol.Epoch() != 2 {
			t.Fatalf("voter epoch %d after granting 2, want 2", fol.Epoch())
		}
	})

	t.Run("stale candidate cursors are denied", func(t *testing.T) {
		fol, fs := newVoter(t, 1, 10)
		fol.SetVoteHook(grantAll())
		stale := map[string]int64{"idmap": 0, "index": 0, "audit": 0}
		granted, _, err := Campaign(ctx, nil, fol.Addr(), 2, stale)
		if err != nil {
			t.Fatal(err)
		}
		if granted {
			t.Fatal("voter granted a candidate whose log is behind its own")
		}
		// The same claim with caught-up cursors wins.
		upToDate := map[string]int64{
			"idmap": fs[0].Store.WALOffset(),
			"index": fs[1].Store.WALOffset(),
			"audit": fs[2].Store.WALOffset(),
		}
		if granted, _, err := Campaign(ctx, nil, fol.Addr(), 2, upToDate); err != nil || !granted {
			t.Fatalf("caught-up campaign = %v, %v; want granted", granted, err)
		}
	})

	t.Run("no vote hook denies everything", func(t *testing.T) {
		fol, _ := newVoter(t, 1, 0)
		if granted, _, err := Campaign(ctx, nil, fol.Addr(), 99, caughtUp(fol)); err != nil || granted {
			t.Fatalf("hookless voter granted = %v, %v; want deny", granted, err)
		}
		if fol.Epoch() != 1 {
			t.Fatalf("denied campaign raised voter epoch to %d", fol.Epoch())
		}
	})
}
