package replication

import (
	"bufio"
	"context"
	"fmt"
	"net"
	"sort"
	"time"
)

// Campaign dials a follower's replication listener and submits an
// election claim: it reads the voter's hello (epoch and cursors), sends
// a campaign frame carrying the candidate's epoch and per-store
// cursors, and reads back the grant. The connection is closed before
// returning. ctx bounds the whole exchange — it is the candidate's
// lease window, so a grant that cannot arrive before the deadline is
// an error here and never counts as a vote.
func Campaign(ctx context.Context, dial func(addr string) (net.Conn, error), addr string, epoch uint64, cursors map[string]int64) (granted bool, voterEpoch uint64, err error) {
	if dial == nil {
		dial = func(addr string) (net.Conn, error) {
			return net.DialTimeout("tcp", addr, 5*time.Second)
		}
	}
	conn, err := dial(addr)
	if err != nil {
		return false, 0, fmt.Errorf("replication: campaign dial %s: %w", addr, err)
	}
	defer conn.Close()
	if dl, ok := ctx.Deadline(); ok {
		conn.SetDeadline(dl)
	}
	done := make(chan struct{})
	defer close(done)
	go func() {
		select {
		case <-ctx.Done():
			conn.Close()
		case <-done:
		}
	}()

	br := bufio.NewReader(conn)
	msg, err := readMsg(br)
	if err != nil {
		return false, 0, fmt.Errorf("replication: campaign %s: hello: %w", addr, err)
	}
	voterEpoch, _, err = decodeHello(msg)
	if err != nil {
		return false, 0, fmt.Errorf("replication: campaign %s: hello: %w", addr, err)
	}

	offsets := make([]storeOffset, 0, len(cursors))
	for name, off := range cursors {
		offsets = append(offsets, storeOffset{name: name, offset: off})
	}
	sort.Slice(offsets, func(i, j int) bool { return offsets[i].name < offsets[j].name })
	if err := writeMsg(conn, encodeCampaign(epoch, offsets)); err != nil {
		return false, 0, fmt.Errorf("replication: campaign %s: %w", addr, err)
	}
	msg, err = readMsg(br)
	if err != nil {
		return false, 0, fmt.Errorf("replication: campaign %s: grant: %w", addr, err)
	}
	granted, voterEpoch, err = decodeGrant(msg)
	if err != nil {
		return false, 0, fmt.Errorf("replication: campaign %s: grant: %w", addr, err)
	}
	return granted, voterEpoch, nil
}
