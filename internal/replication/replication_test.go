package replication

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/store"
)

// openStores opens the canonical three-store set (write-path dependency
// order) under dir.
func openStores(t *testing.T, dir string) []NamedStore {
	t.Helper()
	out := make([]NamedStore, 0, 3)
	for _, name := range []string{"idmap", "index", "audit"} {
		st, err := store.Open(filepath.Join(dir, name+".wal"), store.Options{})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { st.Close() })
		out = append(out, NamedStore{Name: name, Store: st})
	}
	return out
}

func get(t *testing.T, ns []NamedStore, store, key string) (string, bool) {
	t.Helper()
	for _, s := range ns {
		if s.Name == store {
			v, ok, err := s.Store.Get(key)
			if err != nil {
				t.Fatal(err)
			}
			return string(v), ok
		}
	}
	t.Fatalf("no store %q", store)
	return "", false
}

func waitCaughtUp(t *testing.T, primary []NamedStore, follower []NamedStore, within time.Duration) {
	t.Helper()
	deadline := time.Now().Add(within)
	for {
		ok := true
		for i := range primary {
			if follower[i].Store.WALOffset() != primary[i].Store.WALOffset() {
				ok = false
				break
			}
		}
		if ok {
			return
		}
		if time.Now().After(deadline) {
			for i := range primary {
				t.Logf("%s: primary %d follower %d", primary[i].Name,
					primary[i].Store.WALOffset(), follower[i].Store.WALOffset())
			}
			t.Fatal("follower never caught up")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestShipAndCatchUp(t *testing.T) {
	dir := t.TempDir()
	ps := openStores(t, filepath.Join(dir, "p"))
	fs := openStores(t, filepath.Join(dir, "f"))

	// Data written before the follower even exists must catch up from
	// offset zero.
	for i := 0; i < 20; i++ {
		ps[0].Store.Put(fmt.Sprintf("pre-%03d", i), []byte("before"))
	}

	applied := make(chan string, 256)
	fol, err := NewFollower("127.0.0.1:0", FollowerConfig{
		Stores:  fs,
		OnApply: func(name string) { applied <- name },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer fol.Close()

	pri, err := NewPrimary(PrimaryConfig{Stores: ps, Epoch: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer pri.Close()
	pri.AddFollower(fol.Addr())

	waitCaughtUp(t, ps, fs, 5*time.Second)
	if v, ok := get(t, fs, "idmap", "pre-007"); !ok || v != "before" {
		t.Fatalf("follower idmap pre-007 = %q %v", v, ok)
	}
	select {
	case <-applied:
	default:
		t.Fatal("OnApply never ran")
	}

	// Live writes across all stores, including batches.
	for i := 0; i < 30; i++ {
		ps[0].Store.Put(fmt.Sprintf("id-%03d", i), []byte("x"))
		var b store.Batch
		b.Put(fmt.Sprintf("ev-%03d", i), bytes.Repeat([]byte{byte(i)}, 50))
		b.Put(fmt.Sprintf("pe-%03d", i), []byte("y"))
		if _, err := ps[1].Store.StageApply(&b); err != nil {
			t.Fatal(err)
		}
		ps[2].Store.Put(fmt.Sprintf("a-%03d", i), []byte("audit"))
	}
	waitCaughtUp(t, ps, fs, 5*time.Second)
	if v, ok := get(t, fs, "index", "ev-029"); !ok || len(v) != 50 {
		t.Fatalf("follower index ev-029 = %d bytes, %v", len(v), ok)
	}
	if v, ok := get(t, fs, "audit", "a-029"); !ok || v != "audit" {
		t.Fatalf("follower audit a-029 = %q %v", v, ok)
	}

	// The WALs are byte-identical prefixes (here: fully equal).
	for i := range ps {
		if ps[i].Store.WALOffset() != fs[i].Store.WALOffset() {
			t.Fatalf("%s offsets diverge", ps[i].Name)
		}
	}
}

func TestQuorumBarrier(t *testing.T) {
	dir := t.TempDir()
	ps := openStores(t, filepath.Join(dir, "p"))
	fs1 := openStores(t, filepath.Join(dir, "f1"))
	fs2 := openStores(t, filepath.Join(dir, "f2"))

	f1, err := NewFollower("127.0.0.1:0", FollowerConfig{Stores: fs1})
	if err != nil {
		t.Fatal(err)
	}
	defer f1.Close()

	pri, err := NewPrimary(PrimaryConfig{Stores: ps, Epoch: 1, Quorum: true})
	if err != nil {
		t.Fatal(err)
	}
	defer pri.Close()
	pri.AddFollower(f1.Addr())
	// Second follower not yet listening: quorum of 2 followers is 1, so
	// barriers must pass on f1 alone.
	deadAddr := "127.0.0.1:1"
	pri.AddFollower(deadAddr)

	for i := 0; i < 10; i++ {
		ps[0].Store.Put(fmt.Sprintf("k-%d", i), []byte("v"))
		ps[2].Store.Put(fmt.Sprintf("a-%d", i), []byte("v"))
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := pri.Barrier(ctx); err != nil {
		t.Fatalf("Barrier with one live follower: %v", err)
	}
	// Everything covered by the barrier is fsynced on f1.
	for i := range ps {
		if fs1[i].Store.WALOffset() < ps[i].Store.WALOffset() {
			t.Fatalf("%s: barrier returned before follower held the bytes", ps[i].Name)
		}
	}

	// Kill the only live follower: the next barrier must block until
	// its context expires.
	f1.Close()
	time.Sleep(50 * time.Millisecond)
	ps[0].Store.Put("after-death", []byte("v"))
	short, cancel2 := context.WithTimeout(context.Background(), 200*time.Millisecond)
	defer cancel2()
	if err := pri.Barrier(short); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Barrier with no live followers = %v, want deadline exceeded", err)
	}
	_ = fs2
}

func TestFencingRejectsDeposedPrimary(t *testing.T) {
	dir := t.TempDir()
	ps := openStores(t, filepath.Join(dir, "p"))
	fs := openStores(t, filepath.Join(dir, "f"))

	fol, err := NewFollower("127.0.0.1:0", FollowerConfig{Stores: fs, Epoch: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer fol.Close()

	old, err := NewPrimary(PrimaryConfig{Stores: ps, Epoch: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer old.Close()
	old.AddFollower(fol.Addr())

	ps[0].Store.Put("legit", []byte("v"))
	waitCaughtUp(t, ps, fs, 5*time.Second)

	// Failover happened elsewhere: the follower learns the promoted
	// primary's epoch. The deposed primary keeps shipping at epoch 1.
	fol.SetEpoch(2)
	before := fs[0].Store.WALOffset()

	ps[0].Store.Put("late-write", []byte("poison"))
	deadline := time.Now().Add(5 * time.Second)
	for !old.Fenced() {
		if time.Now().After(deadline) {
			t.Fatal("deposed primary never observed the fence")
		}
		time.Sleep(5 * time.Millisecond)
	}
	// The late write never lands, no matter how long the deposed
	// primary retries.
	time.Sleep(100 * time.Millisecond)
	if fs[0].Store.WALOffset() != before {
		t.Fatal("fenced primary's late write was applied")
	}
	if _, ok := get(t, fs, "idmap", "late-write"); ok {
		t.Fatal("poison key visible on fenced follower")
	}

	// A promoted primary at the new epoch is accepted and the follower
	// converges on its log.
	fol2dir := filepath.Join(dir, "p2")
	p2s := openStores(t, fol2dir)
	// Rebuild the new primary's state from the follower's bytes (the
	// promoted node IS a follower in real failover; here a fresh one).
	for i, ns := range fs {
		seg, err := ns.Store.ReadWAL(ns.Store.WALGen(), 0, 1<<20)
		if err != nil {
			t.Fatal(err)
		}
		if seg != nil {
			if _, err := p2s[i].Store.ApplyWALSegment(0, seg); err != nil {
				t.Fatal(err)
			}
		}
	}
	neo, err := NewPrimary(PrimaryConfig{Stores: p2s, Epoch: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer neo.Close()
	neo.AddFollower(fol.Addr())
	p2s[0].Store.Put("new-era", []byte("v"))
	waitCaughtUp(t, p2s, fs, 5*time.Second)
	if v, ok := get(t, fs, "idmap", "new-era"); !ok || v != "v" {
		t.Fatalf("follower missing promoted primary's write: %q %v", v, ok)
	}
}

func TestCodecRoundTrips(t *testing.T) {
	he := encodeHello(7, []storeOffset{{name: "idmap", offset: 123}, {name: "audit", offset: 0}})
	ep, offs, err := decodeHello(he)
	if err != nil || ep != 7 || len(offs) != 2 || offs[0].offset != 123 || offs[1].name != "audit" {
		t.Fatalf("hello round-trip: %v %d %+v", err, ep, offs)
	}
	seg := bytes.Repeat([]byte{0xAB}, 37)
	da := encodeData("index", 9, 456, seg)
	name, ep2, off, got, err := decodeData(da)
	if err != nil || name != "index" || ep2 != 9 || off != 456 || !bytes.Equal(got, seg) {
		t.Fatalf("data round-trip: %v %s %d %d", err, name, ep2, off)
	}
	ak := encodeAck("audit", 789)
	aname, aoff, err := decodeAck(ak)
	if err != nil || aname != "audit" || aoff != 789 {
		t.Fatalf("ack round-trip: %v %s %d", err, aname, aoff)
	}
	de := encodeDeny(4)
	dep, err := decodeDeny(de)
	if err != nil || dep != 4 {
		t.Fatalf("deny round-trip: %v %d", err, dep)
	}
	// Cross-type decode must fail loudly.
	if _, _, err := decodeAck(he); err == nil {
		t.Fatal("hello decoded as ack")
	}
	// Truncations fail cleanly.
	for cut := 0; cut < len(da); cut++ {
		if _, _, _, _, err := decodeData(da[:cut]); err == nil {
			t.Fatalf("truncated data frame (%d bytes) decoded", cut)
		}
	}
}
