// Package replication ships a primary controller's write-ahead logs to
// follower replicas and promotes the most-caught-up follower when the
// primary dies.
//
// The unit of replication is the raw CRC'd WAL record the store already
// writes (PR 2): the primary tails each of its stores' logs and streams
// byte ranges to every follower, which appends the identical bytes to
// its own log and applies the decoded mutations — a follower's WAL is
// at all times a byte-identical prefix of the primary's, so a cursor is
// just (store, byte offset) and catch-up after a reconnect starts from
// the offsets the follower announces in its hello.
//
// Durability modes:
//
//   - async: the publish path never waits for followers; the bounded
//     loss window is visible as css_repl_lag_bytes per follower.
//   - quorum: Primary.Barrier blocks until ⌈N/2⌉ followers have fsynced
//     everything staged before the barrier. The controller overlaps the
//     barrier with bus fan-out exactly like the PR 7 group-commit wait,
//     so it costs one network round trip off the latency path.
//
// Fencing: every data frame carries the primary's epoch. A follower
// that has seen a higher epoch (because a promoted primary reached it
// first, or the operator raised it during failover) answers with a deny
// frame and drops the connection, so a deposed primary's late writes
// can never land. Epochs are recorded per shard in the versioned shard
// map (cluster.ShardInfo.Epoch) — the promotion that bumps the map
// version is the lease claim.
//
// Cross-store consistency: a publish touches idmap, then index, then
// audit. The shipper captures per-store targets in *reverse* dependency
// order and ships segments in forward order, so any record visible in a
// later store implies its prerequisites in earlier stores were captured
// in the same round — a follower cut never holds an index entry without
// its pseudonym mapping, or an audit record without its index entry.
//
// Wire format: each message is a 4-byte little-endian length followed
// by one binary frame using the event package's header conventions
// (same magic/version as the PR 7 codec; the cluster layer owns frame
// types 8-9, replication claims 10-13):
//
//	hello (10):  uvarint epoch | uvarint count | count × (string store, uvarint offset, [4]crc32 of the WAL prefix)
//	data  (11):  string store | uvarint epoch | uvarint offset | uvarint len | raw WAL records
//	ack   (12):  string store | uvarint offset fsynced through
//	deny  (13):  uvarint epoch the follower holds (fencing rejection)
//
// PR 10 adds self-healing failover frames (14-20). The hello's per-store
// CRC lets the primary spot a diverged rejoiner (a deposed primary whose
// log carries an unreplicated old-epoch suffix) in one round trip; the
// digest frames then walk the log record by record to the first
// divergence, and truncate cuts the rejoiner back to the common prefix:
//
//	heartbeat (14): uvarint epoch — primary liveness, feeds the failure detector
//	campaign  (15): uvarint epoch | uvarint count | count × (string store, uvarint offset) — candidate's claim + cursors
//	grant     (16): uvarint granted (0|1) | uvarint epoch the voter now holds
//	digestreq (17): string store | uvarint from | uvarint max
//	digests   (18): string store | uvarint done (0|1) | uvarint count | count × (uvarint end, [4]crc32 of the record)
//	truncate  (19): string store | uvarint offset — cut the log back to offset (acked)
//	syncstart (20): (empty) — negotiation over; follower certifies its prefix and the data stream begins
package replication

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"repro/internal/event"
)

// Frame types claimed by the replication layer (event owns 1-7,
// cluster owns 8-9).
const (
	// FrameHello announces a follower's epoch and per-store cursors.
	FrameHello = event.FrameType(10)
	// FrameData carries one raw WAL segment for one store.
	FrameData = event.FrameType(11)
	// FrameAck acknowledges a follower fsync through an offset.
	FrameAck = event.FrameType(12)
	// FrameDeny rejects a stale-epoch primary (fencing).
	FrameDeny = event.FrameType(13)
	// FrameHeartbeat is a primary liveness beacon carrying its epoch.
	FrameHeartbeat = event.FrameType(14)
	// FrameCampaign is a candidate's election claim: the epoch it wants
	// plus its per-store cursors (the voter's up-to-date check).
	FrameCampaign = event.FrameType(15)
	// FrameGrant answers a campaign: granted or not, and the epoch the
	// voter holds after deciding.
	FrameGrant = event.FrameType(16)
	// FrameDigestReq asks a rejoining follower for per-record WAL
	// digests starting at an offset.
	FrameDigestReq = event.FrameType(17)
	// FrameDigests carries a batch of per-record WAL digests.
	FrameDigests = event.FrameType(18)
	// FrameTruncate orders a rejoining follower to cut a store's WAL
	// back to the common prefix.
	FrameTruncate = event.FrameType(19)
	// FrameSyncStart ends rejoin negotiation: the follower certifies its
	// (possibly truncated) prefix and the data stream begins.
	FrameSyncStart = event.FrameType(20)
)

// maxMessage bounds a wire message; segments are shipped in chunks far
// below it, so anything larger is corruption, not load.
const maxMessage = 64 << 20

var (
	errCodecVarint = errors.New("replication: frame has malformed varint")
	errCodecTrail  = errors.New("replication: frame has trailing garbage")
	errCodecBomb   = errors.New("replication: frame claims more than the payload holds")
)

// writeMsg frames and writes one message: 4-byte LE length + frame.
func writeMsg(w io.Writer, frame []byte) error {
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(frame)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(frame)
	return err
}

// readMsg reads one length-prefixed message.
func readMsg(br *bufio.Reader) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	if n > maxMessage {
		return nil, fmt.Errorf("replication: message of %d bytes exceeds limit", n)
	}
	msg := make([]byte, n)
	if _, err := io.ReadFull(br, msg); err != nil {
		return nil, err
	}
	return msg, nil
}

// frameKind peeks the frame type of a raw message without validating
// the body (0 when the message is too short to carry a header).
func frameKind(msg []byte) event.FrameType {
	if len(msg) < event.FrameHeaderLen {
		return 0
	}
	return event.FrameType(msg[3])
}

// storeOffset is one (store, byte offset) cursor in a hello or campaign
// frame. In a hello, crc is the CRC-32 of the follower's whole WAL
// prefix [0, offset) — the primary's one-round-trip divergence check;
// campaigns carry offsets only (crc is zero and unused).
type storeOffset struct {
	name   string
	offset int64
	crc    uint32
}

func uvarintLen(x uint64) int {
	n := 1
	for x >= 0x80 {
		x >>= 7
		n++
	}
	return n
}

func encodeHello(epoch uint64, offsets []storeOffset) []byte {
	size := event.FrameHeaderLen + uvarintLen(epoch) + uvarintLen(uint64(len(offsets)))
	for _, o := range offsets {
		size += uvarintLen(uint64(len(o.name))) + len(o.name) + uvarintLen(uint64(o.offset)) + 4
	}
	dst := make([]byte, 0, size)
	dst = event.AppendFrameHeader(dst, FrameHello)
	dst = binary.AppendUvarint(dst, epoch)
	dst = binary.AppendUvarint(dst, uint64(len(offsets)))
	for _, o := range offsets {
		dst = event.AppendFrameString(dst, o.name)
		dst = binary.AppendUvarint(dst, uint64(o.offset))
		dst = binary.LittleEndian.AppendUint32(dst, o.crc)
	}
	return dst
}

func decodeHello(data []byte) (epoch uint64, offsets []storeOffset, err error) {
	p, err := event.FrameBody(data, FrameHello)
	if err != nil {
		return 0, nil, err
	}
	epoch, n := binary.Uvarint(p)
	if n <= 0 {
		return 0, nil, errCodecVarint
	}
	p = p[n:]
	count, n := binary.Uvarint(p)
	if n <= 0 {
		return 0, nil, errCodecVarint
	}
	p = p[n:]
	// Each entry needs at least a one-byte name length and a one-byte
	// offset varint.
	if count > uint64(len(p))/2 {
		return 0, nil, errCodecBomb
	}
	offsets = make([]storeOffset, 0, count)
	for i := uint64(0); i < count; i++ {
		var name string
		if name, p, err = event.FrameString(p); err != nil {
			return 0, nil, err
		}
		off, n := binary.Uvarint(p)
		if n <= 0 {
			return 0, nil, errCodecVarint
		}
		p = p[n:]
		if len(p) < 4 {
			return 0, nil, errCodecBomb
		}
		crc := binary.LittleEndian.Uint32(p)
		p = p[4:]
		offsets = append(offsets, storeOffset{name: name, offset: int64(off), crc: crc})
	}
	if len(p) != 0 {
		return 0, nil, errCodecTrail
	}
	return epoch, offsets, nil
}

func encodeData(store string, epoch uint64, offset int64, seg []byte) []byte {
	size := event.FrameHeaderLen +
		uvarintLen(uint64(len(store))) + len(store) +
		uvarintLen(epoch) + uvarintLen(uint64(offset)) +
		uvarintLen(uint64(len(seg))) + len(seg)
	dst := make([]byte, 0, size)
	dst = event.AppendFrameHeader(dst, FrameData)
	dst = event.AppendFrameString(dst, store)
	dst = binary.AppendUvarint(dst, epoch)
	dst = binary.AppendUvarint(dst, uint64(offset))
	dst = binary.AppendUvarint(dst, uint64(len(seg)))
	return append(dst, seg...)
}

func decodeData(data []byte) (store string, epoch uint64, offset int64, seg []byte, err error) {
	p, err := event.FrameBody(data, FrameData)
	if err != nil {
		return "", 0, 0, nil, err
	}
	if store, p, err = event.FrameString(p); err != nil {
		return "", 0, 0, nil, err
	}
	epoch, n := binary.Uvarint(p)
	if n <= 0 {
		return "", 0, 0, nil, errCodecVarint
	}
	p = p[n:]
	off, n := binary.Uvarint(p)
	if n <= 0 {
		return "", 0, 0, nil, errCodecVarint
	}
	p = p[n:]
	l, n := binary.Uvarint(p)
	if n <= 0 {
		return "", 0, 0, nil, errCodecVarint
	}
	p = p[n:]
	if l != uint64(len(p)) {
		return "", 0, 0, nil, errCodecBomb
	}
	return store, epoch, int64(off), p, nil
}

func encodeAck(store string, offset int64) []byte {
	size := event.FrameHeaderLen + uvarintLen(uint64(len(store))) + len(store) + uvarintLen(uint64(offset))
	dst := make([]byte, 0, size)
	dst = event.AppendFrameHeader(dst, FrameAck)
	dst = event.AppendFrameString(dst, store)
	return binary.AppendUvarint(dst, uint64(offset))
}

func decodeAck(data []byte) (store string, offset int64, err error) {
	p, err := event.FrameBody(data, FrameAck)
	if err != nil {
		return "", 0, err
	}
	if store, p, err = event.FrameString(p); err != nil {
		return "", 0, err
	}
	off, n := binary.Uvarint(p)
	if n <= 0 {
		return "", 0, errCodecVarint
	}
	if len(p[n:]) != 0 {
		return "", 0, errCodecTrail
	}
	return store, int64(off), nil
}

func encodeDeny(epoch uint64) []byte {
	dst := make([]byte, 0, event.FrameHeaderLen+uvarintLen(epoch))
	dst = event.AppendFrameHeader(dst, FrameDeny)
	return binary.AppendUvarint(dst, epoch)
}

func decodeDeny(data []byte) (epoch uint64, err error) {
	p, err := event.FrameBody(data, FrameDeny)
	if err != nil {
		return 0, err
	}
	epoch, n := binary.Uvarint(p)
	if n <= 0 {
		return 0, errCodecVarint
	}
	if len(p[n:]) != 0 {
		return 0, errCodecTrail
	}
	return epoch, nil
}

func encodeHeartbeat(epoch uint64) []byte {
	dst := make([]byte, 0, event.FrameHeaderLen+uvarintLen(epoch))
	dst = event.AppendFrameHeader(dst, FrameHeartbeat)
	return binary.AppendUvarint(dst, epoch)
}

func decodeHeartbeat(data []byte) (epoch uint64, err error) {
	p, err := event.FrameBody(data, FrameHeartbeat)
	if err != nil {
		return 0, err
	}
	epoch, n := binary.Uvarint(p)
	if n <= 0 {
		return 0, errCodecVarint
	}
	if len(p[n:]) != 0 {
		return 0, errCodecTrail
	}
	return epoch, nil
}

func encodeCampaign(epoch uint64, offsets []storeOffset) []byte {
	size := event.FrameHeaderLen + uvarintLen(epoch) + uvarintLen(uint64(len(offsets)))
	for _, o := range offsets {
		size += uvarintLen(uint64(len(o.name))) + len(o.name) + uvarintLen(uint64(o.offset))
	}
	dst := make([]byte, 0, size)
	dst = event.AppendFrameHeader(dst, FrameCampaign)
	dst = binary.AppendUvarint(dst, epoch)
	dst = binary.AppendUvarint(dst, uint64(len(offsets)))
	for _, o := range offsets {
		dst = event.AppendFrameString(dst, o.name)
		dst = binary.AppendUvarint(dst, uint64(o.offset))
	}
	return dst
}

func decodeCampaign(data []byte) (epoch uint64, offsets []storeOffset, err error) {
	p, err := event.FrameBody(data, FrameCampaign)
	if err != nil {
		return 0, nil, err
	}
	epoch, n := binary.Uvarint(p)
	if n <= 0 {
		return 0, nil, errCodecVarint
	}
	p = p[n:]
	count, n := binary.Uvarint(p)
	if n <= 0 {
		return 0, nil, errCodecVarint
	}
	p = p[n:]
	if count > uint64(len(p))/2 {
		return 0, nil, errCodecBomb
	}
	offsets = make([]storeOffset, 0, count)
	for i := uint64(0); i < count; i++ {
		var name string
		if name, p, err = event.FrameString(p); err != nil {
			return 0, nil, err
		}
		off, n := binary.Uvarint(p)
		if n <= 0 {
			return 0, nil, errCodecVarint
		}
		p = p[n:]
		offsets = append(offsets, storeOffset{name: name, offset: int64(off)})
	}
	if len(p) != 0 {
		return 0, nil, errCodecTrail
	}
	return epoch, offsets, nil
}

func encodeGrant(granted bool, epoch uint64) []byte {
	g := uint64(0)
	if granted {
		g = 1
	}
	dst := make([]byte, 0, event.FrameHeaderLen+1+uvarintLen(epoch))
	dst = event.AppendFrameHeader(dst, FrameGrant)
	dst = binary.AppendUvarint(dst, g)
	return binary.AppendUvarint(dst, epoch)
}

func decodeGrant(data []byte) (granted bool, epoch uint64, err error) {
	p, err := event.FrameBody(data, FrameGrant)
	if err != nil {
		return false, 0, err
	}
	g, n := binary.Uvarint(p)
	if n <= 0 {
		return false, 0, errCodecVarint
	}
	p = p[n:]
	epoch, n = binary.Uvarint(p)
	if n <= 0 {
		return false, 0, errCodecVarint
	}
	if len(p[n:]) != 0 {
		return false, 0, errCodecTrail
	}
	return g == 1, epoch, nil
}

func encodeDigestReq(store string, from int64, max int) []byte {
	size := event.FrameHeaderLen + uvarintLen(uint64(len(store))) + len(store) +
		uvarintLen(uint64(from)) + uvarintLen(uint64(max))
	dst := make([]byte, 0, size)
	dst = event.AppendFrameHeader(dst, FrameDigestReq)
	dst = event.AppendFrameString(dst, store)
	dst = binary.AppendUvarint(dst, uint64(from))
	return binary.AppendUvarint(dst, uint64(max))
}

func decodeDigestReq(data []byte) (store string, from int64, max int, err error) {
	p, err := event.FrameBody(data, FrameDigestReq)
	if err != nil {
		return "", 0, 0, err
	}
	if store, p, err = event.FrameString(p); err != nil {
		return "", 0, 0, err
	}
	f, n := binary.Uvarint(p)
	if n <= 0 {
		return "", 0, 0, errCodecVarint
	}
	p = p[n:]
	m, n := binary.Uvarint(p)
	if n <= 0 {
		return "", 0, 0, errCodecVarint
	}
	if len(p[n:]) != 0 {
		return "", 0, 0, errCodecTrail
	}
	return store, int64(f), int(m), nil
}

// recordDigest mirrors store.WALRecordDigest on the wire: the byte
// offset just past one record and the CRC-32 of its framed bytes.
type recordDigest struct {
	end int64
	crc uint32
}

func encodeDigests(store string, done bool, ds []recordDigest) []byte {
	d := uint64(0)
	if done {
		d = 1
	}
	size := event.FrameHeaderLen + uvarintLen(uint64(len(store))) + len(store) +
		1 + uvarintLen(uint64(len(ds)))
	for _, r := range ds {
		size += uvarintLen(uint64(r.end)) + 4
	}
	dst := make([]byte, 0, size)
	dst = event.AppendFrameHeader(dst, FrameDigests)
	dst = event.AppendFrameString(dst, store)
	dst = binary.AppendUvarint(dst, d)
	dst = binary.AppendUvarint(dst, uint64(len(ds)))
	for _, r := range ds {
		dst = binary.AppendUvarint(dst, uint64(r.end))
		dst = binary.LittleEndian.AppendUint32(dst, r.crc)
	}
	return dst
}

func decodeDigests(data []byte) (store string, done bool, ds []recordDigest, err error) {
	p, err := event.FrameBody(data, FrameDigests)
	if err != nil {
		return "", false, nil, err
	}
	if store, p, err = event.FrameString(p); err != nil {
		return "", false, nil, err
	}
	d, n := binary.Uvarint(p)
	if n <= 0 {
		return "", false, nil, errCodecVarint
	}
	p = p[n:]
	count, n := binary.Uvarint(p)
	if n <= 0 {
		return "", false, nil, errCodecVarint
	}
	p = p[n:]
	// Each entry needs at least a one-byte end varint and a 4-byte CRC.
	if count > uint64(len(p))/5 {
		return "", false, nil, errCodecBomb
	}
	ds = make([]recordDigest, 0, count)
	for i := uint64(0); i < count; i++ {
		end, n := binary.Uvarint(p)
		if n <= 0 {
			return "", false, nil, errCodecVarint
		}
		p = p[n:]
		if len(p) < 4 {
			return "", false, nil, errCodecBomb
		}
		crc := binary.LittleEndian.Uint32(p)
		p = p[4:]
		ds = append(ds, recordDigest{end: int64(end), crc: crc})
	}
	if len(p) != 0 {
		return "", false, nil, errCodecTrail
	}
	return store, d == 1, ds, nil
}

func encodeTruncate(store string, offset int64) []byte {
	size := event.FrameHeaderLen + uvarintLen(uint64(len(store))) + len(store) + uvarintLen(uint64(offset))
	dst := make([]byte, 0, size)
	dst = event.AppendFrameHeader(dst, FrameTruncate)
	dst = event.AppendFrameString(dst, store)
	return binary.AppendUvarint(dst, uint64(offset))
}

func decodeTruncate(data []byte) (store string, offset int64, err error) {
	p, err := event.FrameBody(data, FrameTruncate)
	if err != nil {
		return "", 0, err
	}
	if store, p, err = event.FrameString(p); err != nil {
		return "", 0, err
	}
	off, n := binary.Uvarint(p)
	if n <= 0 {
		return "", 0, errCodecVarint
	}
	if len(p[n:]) != 0 {
		return "", 0, errCodecTrail
	}
	return store, int64(off), nil
}

func encodeSyncStart() []byte {
	return event.AppendFrameHeader(make([]byte, 0, event.FrameHeaderLen), FrameSyncStart)
}

func decodeSyncStart(data []byte) error {
	p, err := event.FrameBody(data, FrameSyncStart)
	if err != nil {
		return err
	}
	if len(p) != 0 {
		return errCodecTrail
	}
	return nil
}
