package replication

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/store"
	"repro/internal/telemetry"
)

// NamedStore pairs a store with the name it replicates under. The
// slice order given to PrimaryConfig/FollowerConfig is the dependency
// order of the write path (idmap before index before audit): the
// shipper relies on it for cross-store consistency, and both ends must
// agree on it.
type NamedStore struct {
	Name  string
	Store *store.Store
}

// ErrClosed reports an operation on a closed Primary.
var ErrClosed = errors.New("replication: closed")

// ErrFenced reports that a follower denied this primary's epoch — a
// newer primary has been promoted and this one must stop claiming the
// role.
var ErrFenced = errors.New("replication: fenced by a newer epoch")

// segmentBytes is the shipping chunk size; a single WAL record larger
// than this still ships whole.
const segmentBytes = 256 << 10

// PrimaryConfig configures the shipping side.
type PrimaryConfig struct {
	// Stores to replicate, in write-path dependency order.
	Stores []NamedStore
	// Epoch is the fencing token stamped on every shipped frame.
	Epoch uint64
	// Quorum makes Barrier wait for ⌈N/2⌉ follower fsyncs (N = number
	// of registered followers); false means async shipping and Barrier
	// is a no-op.
	Quorum bool
	// HeartbeatEvery, when positive, sends liveness heartbeats on every
	// follower link at roughly this interval (±20% jitter so a fleet's
	// beats never synchronize). Heartbeats carry the epoch and feed the
	// followers' failure detectors; zero disables them.
	HeartbeatEvery time.Duration
	// Metrics registers css_repl_* instruments when set.
	Metrics *telemetry.Registry
	// Dial overrides the follower dialer (chaos tests inject faults
	// here); nil means plain TCP with a 5s connect timeout.
	Dial func(addr string) (net.Conn, error)
	// Logf receives replication lifecycle events; nil discards them.
	Logf func(format string, args ...any)
}

// Primary tails the configured stores' WALs and streams them to every
// registered follower, tracking per-follower fsync cursors for the
// quorum barrier and the lag gauge.
type Primary struct {
	cfg   PrimaryConfig
	epoch atomic.Uint64
	dial  func(addr string) (net.Conn, error)
	logf  func(format string, args ...any)

	mu        sync.Mutex
	cond      *sync.Cond
	followers []*followerLink
	closed    bool
	wg        sync.WaitGroup

	lag        *telemetry.Gauge
	acks       *telemetry.Counter
	fenced     *telemetry.Counter
	epochGauge *telemetry.Gauge
	quorumWait *telemetry.Histogram
}

// followerLink is one follower's replication state. acked offsets are
// guarded by Primary.mu; the ship loop runs in its own goroutine.
type followerLink struct {
	addr      string
	acked     []int64 // per store, parallel to cfg.Stores; fsynced through
	connected bool
	denied    bool // follower fenced us (saw a newer epoch)
	conn      net.Conn
	stop      chan struct{}
}

// NewPrimary builds the shipping side. Followers are added with
// AddFollower; Close stops everything.
func NewPrimary(cfg PrimaryConfig) (*Primary, error) {
	if len(cfg.Stores) == 0 {
		return nil, errors.New("replication: primary needs at least one store")
	}
	p := &Primary{cfg: cfg, dial: cfg.Dial, logf: cfg.Logf}
	p.cond = sync.NewCond(&p.mu)
	p.epoch.Store(cfg.Epoch)
	if p.dial == nil {
		p.dial = func(addr string) (net.Conn, error) {
			return net.DialTimeout("tcp", addr, 5*time.Second)
		}
	}
	if p.logf == nil {
		p.logf = func(string, ...any) {}
	}
	if m := cfg.Metrics; m != nil {
		p.lag = m.Gauge("css_repl_lag_bytes", "Unacked WAL bytes per follower (primary view).", "follower")
		p.acks = m.Counter("css_repl_acks_total", "Follower fsync acknowledgements received.", "follower")
		p.fenced = m.Counter("css_repl_fenced_total", "Frames or connections rejected for a stale epoch.")
		p.epochGauge = m.Gauge("css_repl_epoch", "Fencing epoch this node ships or applies under.")
		p.quorumWait = m.Histogram("css_repl_quorum_wait_seconds", "Time publishes spent in the quorum barrier.")
		p.epochGauge.Set(float64(cfg.Epoch))
	}
	return p, nil
}

// Epoch returns the fencing token currently stamped on shipped frames.
func (p *Primary) Epoch() uint64 { return p.epoch.Load() }

// Quorum reports whether Barrier waits for follower fsyncs. The publish
// path checks it before spending a goroutine on the overlapped barrier.
func (p *Primary) Quorum() bool { return p.cfg.Quorum }

// SetEpoch changes the stamped epoch — promotion raises it; a deposed
// primary in tests keeps its stale one.
func (p *Primary) SetEpoch(e uint64) {
	p.epoch.Store(e)
	if p.epochGauge != nil {
		p.epochGauge.Set(float64(e))
	}
}

// AddFollower registers a follower address and starts shipping to it
// (connecting, catching up from the follower's announced offsets, and
// reconnecting with backoff for as long as the Primary lives).
func (p *Primary) AddFollower(addr string) {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	link := &followerLink{
		addr:  addr,
		acked: make([]int64, len(p.cfg.Stores)),
		stop:  make(chan struct{}),
	}
	p.followers = append(p.followers, link)
	p.wg.Add(1)
	p.mu.Unlock()
	go p.runFollower(link)
}

// Followers returns the registered follower count (the N in ⌈N/2⌉).
func (p *Primary) Followers() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.followers)
}

// runFollower is the per-follower connect/ship/reconnect loop.
func (p *Primary) runFollower(link *followerLink) {
	defer p.wg.Done()
	backoff := 50 * time.Millisecond
	for {
		select {
		case <-link.stop:
			return
		default:
		}
		conn, err := p.dial(link.addr)
		if err == nil {
			backoff = 50 * time.Millisecond
			p.mu.Lock()
			link.conn = conn
			link.connected = true
			p.mu.Unlock()
			err = p.serve(link, conn)
			conn.Close()
			p.mu.Lock()
			link.conn = nil
			link.connected = false
			p.mu.Unlock()
		}
		if err != nil && !errors.Is(err, net.ErrClosed) {
			p.logf("repl: follower %s: %v", link.addr, err)
		}
		select {
		case <-link.stop:
			return
		case <-time.After(backoff):
		}
		if backoff < time.Second {
			backoff *= 2
		}
	}
}

// serve runs one connection: read the follower's hello, negotiate the
// resume point for every store (ordering a truncate when the follower's
// log diverged — a rejoining deposed primary), then ship WAL segments
// as the stores grow, while a sibling goroutine folds acks into the
// link state.
func (p *Primary) serve(link *followerLink, conn net.Conn) error {
	br := bufio.NewReader(conn)
	msg, err := readMsg(br)
	if err != nil {
		return fmt.Errorf("hello: %w", err)
	}
	theirEpoch, offsets, err := decodeHello(msg)
	if err != nil {
		return fmt.Errorf("hello: %w", err)
	}
	if theirEpoch > p.epoch.Load() {
		p.markFenced(link)
		return fmt.Errorf("%w (follower at epoch %d, we ship %d)", ErrFenced, theirEpoch, p.epoch.Load())
	}

	n := len(p.cfg.Stores)
	gens := make([]uint64, n)
	for i, ns := range p.cfg.Stores {
		gens[i] = ns.Store.WALGen()
	}
	cursors, err := p.negotiate(link, conn, br, gens, offsets)
	if err != nil {
		return err
	}
	// Reset the ack state: the hello only proves the follower *applied*
	// those bytes, not that they are fsynced. Quorum counts only acks
	// received on this connection, each of which certifies an fsync.
	p.mu.Lock()
	for i := range link.acked {
		link.acked[i] = 0
	}
	p.mu.Unlock()
	// Negotiation over: the follower certifies its (possibly truncated)
	// prefix and the data stream begins.
	if err := writeMsg(conn, encodeSyncStart()); err != nil {
		return fmt.Errorf("syncstart: %w", err)
	}

	wake := make(chan struct{}, 1)
	for _, ns := range p.cfg.Stores {
		ns.Store.WatchWAL(wake)
	}
	defer func() {
		for _, ns := range p.cfg.Stores {
			ns.Store.UnwatchWAL(wake)
		}
	}()

	ackErr := make(chan error, 1)
	go func() {
		ackErr <- p.readAcks(link, br)
		conn.Close() // unblock a ship-loop write
	}()

	// Heartbeat cadence: first beat immediately (the follower's detector
	// should start sampling as soon as the link is up), then every
	// HeartbeatEvery ±20% jitter.
	var nextBeat time.Time
	hb := p.cfg.HeartbeatEvery
	jittered := func() time.Duration {
		return time.Duration(float64(hb) * (0.8 + 0.4*rand.Float64()))
	}

	targets := make([]int64, n)
	for {
		select {
		case <-link.stop:
			return nil
		case err := <-ackErr:
			return err
		default:
		}
		if hb > 0 && !time.Now().Before(nextBeat) {
			if err := writeMsg(conn, encodeHeartbeat(p.epoch.Load())); err != nil {
				return fmt.Errorf("heartbeat: %w", err)
			}
			nextBeat = time.Now().Add(jittered())
		}
		progress := false
		// Capture targets in reverse dependency order, ship in forward
		// order: a record visible in a later store was staged before
		// that store's capture, so its prerequisites in earlier stores
		// fall under their (later) captures — every shipped round is a
		// consistent cut.
		for i := n - 1; i >= 0; i-- {
			targets[i] = p.cfg.Stores[i].Store.WALOffset()
		}
		for i, ns := range p.cfg.Stores {
			for cursors[i] < targets[i] {
				seg, err := ns.Store.ReadWAL(gens[i], cursors[i], segmentBytes)
				if err != nil {
					return fmt.Errorf("read %s wal at %d: %w", ns.Name, cursors[i], err)
				}
				if seg == nil {
					break
				}
				frame := encodeData(ns.Name, p.epoch.Load(), cursors[i], seg)
				if err := writeMsg(conn, frame); err != nil {
					return fmt.Errorf("ship %s: %w", ns.Name, err)
				}
				cursors[i] += int64(len(seg))
				progress = true
			}
		}
		p.updateLag(link, targets)
		if !progress {
			idle := 500 * time.Millisecond
			if hb > 0 {
				if until := time.Until(nextBeat); until < idle {
					idle = until
				}
				if idle < time.Millisecond {
					idle = time.Millisecond
				}
			}
			select {
			case <-wake:
			case <-link.stop:
				return nil
			case err := <-ackErr:
				return err
			case <-time.After(idle):
				// Periodic pass so the lag gauge stays fresh (and the
				// heartbeat fires) even when idle, and a missed edge
				// trigger cannot wedge the loop.
			}
		}
	}
}

// digestBatch bounds one digest request during rejoin negotiation.
const digestBatch = 1024

// negotiate derives the shipping resume point for every store from the
// follower's hello. The fast path is one CRC comparison: when the
// follower's whole-prefix CRC matches the same range of our log, its
// log is a clean prefix and shipping resumes at its offset. Otherwise
// the follower is a rejoining deposed primary whose log carries an
// unreplicated old-epoch suffix: walk its per-record digests against
// our own to the first divergent record — exactly the comparison
// `css-audit -compare` runs over audit chains — and order a truncate
// back to the common prefix before shipping.
func (p *Primary) negotiate(link *followerLink, conn net.Conn, br *bufio.Reader, gens []uint64, offsets []storeOffset) ([]int64, error) {
	cursors := make([]int64, len(p.cfg.Stores))
	for i, ns := range p.cfg.Stores {
		var theirs storeOffset
		for _, o := range offsets {
			if o.name == ns.Name {
				theirs = o
				break
			}
		}
		if theirs.offset == 0 {
			continue // empty follower log: ship from the start
		}
		ourOff := ns.Store.WALOffset()
		if theirs.offset <= ourOff {
			ourCRC, err := ns.Store.CRCWAL(gens[i], 0, theirs.offset)
			if err != nil {
				return nil, fmt.Errorf("crc %s: %w", ns.Name, err)
			}
			if ourCRC == theirs.crc {
				cursors[i] = theirs.offset
				continue
			}
		}
		common, err := p.firstDivergence(conn, br, ns, gens[i], min64(theirs.offset, ourOff))
		if err != nil {
			return nil, fmt.Errorf("digest walk %s: %w", ns.Name, err)
		}
		if common < theirs.offset {
			p.logf("repl: follower %s diverged on %s at %d (its log ends at %d): ordering truncate",
				link.addr, ns.Name, common, theirs.offset)
			if err := writeMsg(conn, encodeTruncate(ns.Name, common)); err != nil {
				return nil, fmt.Errorf("truncate %s: %w", ns.Name, err)
			}
			name, acked, err := p.readAck(br)
			if err != nil {
				return nil, fmt.Errorf("truncate ack %s: %w", ns.Name, err)
			}
			if name != ns.Name || acked != common {
				return nil, fmt.Errorf("truncate %s to %d acknowledged as (%s, %d)", ns.Name, common, name, acked)
			}
		}
		cursors[i] = common
	}
	return cursors, nil
}

// firstDivergence walks the follower's per-record digests against our
// own log and returns the end offset of the last record both sides
// agree on (the truncation point), never past limit.
func (p *Primary) firstDivergence(conn net.Conn, br *bufio.Reader, ns NamedStore, gen uint64, limit int64) (int64, error) {
	var common int64
	pos := int64(0)
	for pos < limit {
		if err := writeMsg(conn, encodeDigestReq(ns.Name, pos, digestBatch)); err != nil {
			return 0, err
		}
		msg, err := readMsg(br)
		if err != nil {
			return 0, err
		}
		name, done, theirs, err := decodeDigests(msg)
		if err != nil {
			return 0, err
		}
		if name != ns.Name {
			return 0, fmt.Errorf("digests for %q while walking %q", name, ns.Name)
		}
		if len(theirs) == 0 {
			return common, nil
		}
		ours, err := ns.Store.DigestWAL(gen, pos, len(theirs))
		if err != nil {
			return 0, err
		}
		for j := range theirs {
			if j >= len(ours) || theirs[j].end != ours[j].End || theirs[j].crc != ours[j].CRC {
				return common, nil
			}
			common = ours[j].End
		}
		pos = common
		if done {
			return common, nil
		}
	}
	return common, nil
}

// readAck reads one frame and expects it to be an ack — the truncate
// confirmation during rejoin negotiation. A deny frame fences us;
// anything else is a protocol error.
func (p *Primary) readAck(br *bufio.Reader) (string, int64, error) {
	msg, err := readMsg(br)
	if err != nil {
		return "", 0, err
	}
	if ep, derr := decodeDeny(msg); derr == nil {
		return "", 0, fmt.Errorf("%w (follower holds epoch %d)", ErrFenced, ep)
	}
	name, offset, err := decodeAck(msg)
	if err != nil {
		return "", 0, err
	}
	return name, offset, nil
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

// readAcks folds the follower's ack stream into the link state until
// the connection breaks or the follower fences us.
func (p *Primary) readAcks(link *followerLink, br *bufio.Reader) error {
	for {
		msg, err := readMsg(br)
		if err != nil {
			return err
		}
		if ep, derr := decodeDeny(msg); derr == nil {
			p.markFenced(link)
			return fmt.Errorf("%w (follower %s holds epoch %d)", ErrFenced, link.addr, ep)
		}
		name, offset, err := decodeAck(msg)
		if err != nil {
			return fmt.Errorf("ack: %w", err)
		}
		idx := -1
		for i, ns := range p.cfg.Stores {
			if ns.Name == name {
				idx = i
				break
			}
		}
		if idx < 0 {
			return fmt.Errorf("ack for unknown store %q", name)
		}
		p.mu.Lock()
		if offset > link.acked[idx] {
			link.acked[idx] = offset
		}
		p.cond.Broadcast()
		p.mu.Unlock()
		if p.acks != nil {
			p.acks.Inc(link.addr)
		}
	}
}

func (p *Primary) markFenced(link *followerLink) {
	p.mu.Lock()
	link.denied = true
	p.cond.Broadcast()
	p.mu.Unlock()
	if p.fenced != nil {
		p.fenced.Inc()
	}
}

// Fenced reports whether any follower rejected this primary's epoch —
// the signal a deposed primary uses to stand down.
func (p *Primary) Fenced() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, l := range p.followers {
		if l.denied {
			return true
		}
	}
	return false
}

func (p *Primary) updateLag(link *followerLink, targets []int64) {
	if p.lag == nil {
		return
	}
	var total, acked int64
	p.mu.Lock()
	for i := range targets {
		total += targets[i]
		acked += link.acked[i]
	}
	p.mu.Unlock()
	lag := total - acked
	if lag < 0 {
		lag = 0
	}
	p.lag.Set(float64(lag), link.addr)
}

// Barrier implements the quorum durability mode: it blocks until
// ⌈N/2⌉ followers have fsynced every byte staged in every store before
// the call, then returns. In async mode (or with no followers) it
// returns immediately. The publish path overlaps it with bus fan-out,
// so in the common case the acks have already arrived by the time the
// barrier is reached.
func (p *Primary) Barrier(ctx context.Context) error {
	if !p.cfg.Quorum {
		return nil
	}
	n := len(p.cfg.Stores)
	targets := make([]int64, n)
	for i := n - 1; i >= 0; i-- {
		targets[i] = p.cfg.Stores[i].Store.WALOffset()
	}
	p.mu.Lock()
	need := (len(p.followers) + 1) / 2
	p.mu.Unlock()
	if need == 0 {
		return nil
	}
	start := time.Now()
	stopWatch := make(chan struct{})
	defer close(stopWatch)
	go func() {
		select {
		case <-ctx.Done():
			p.mu.Lock()
			p.cond.Broadcast()
			p.mu.Unlock()
		case <-stopWatch:
		}
	}()
	p.mu.Lock()
	defer p.mu.Unlock()
	for {
		if p.closed {
			return ErrClosed
		}
		covered := 0
		for _, l := range p.followers {
			ok := true
			for i := range targets {
				if l.acked[i] < targets[i] {
					ok = false
					break
				}
			}
			if ok {
				covered++
			}
		}
		if covered >= need {
			if p.quorumWait != nil {
				p.quorumWait.ObserveDuration(time.Since(start))
			}
			return nil
		}
		// Followers that denied this primary's epoch will never ack: when
		// the survivors cannot reach quorum, the barrier cannot complete.
		// Failing fast here is what actually rejects a deposed primary's
		// writes — waiting out the caller's deadline would just stall the
		// split brain instead of stopping it.
		denied := 0
		for _, l := range p.followers {
			if l.denied {
				denied++
			}
		}
		if len(p.followers)-denied < need {
			return fmt.Errorf("replication: quorum barrier: %w", ErrFenced)
		}
		if err := ctx.Err(); err != nil {
			return fmt.Errorf("replication: quorum barrier: %w", err)
		}
		p.cond.Wait()
	}
}

// FollowerStatus is one follower's view for Status.
type FollowerStatus struct {
	Addr      string
	Connected bool
	Fenced    bool
	Acked     map[string]int64
	LagBytes  int64
}

// Status is a point-in-time snapshot for operators (served by the
// transport's replication-status endpoint).
type Status struct {
	Epoch     uint64
	Quorum    bool
	Offsets   map[string]int64
	Followers []FollowerStatus
}

// Status snapshots the primary's shipping state.
func (p *Primary) Status() Status {
	st := Status{Epoch: p.epoch.Load(), Quorum: p.cfg.Quorum, Offsets: make(map[string]int64, len(p.cfg.Stores))}
	var total int64
	for _, ns := range p.cfg.Stores {
		off := ns.Store.WALOffset()
		st.Offsets[ns.Name] = off
		total += off
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, l := range p.followers {
		fs := FollowerStatus{Addr: l.addr, Connected: l.connected, Fenced: l.denied, Acked: make(map[string]int64, len(l.acked))}
		var acked int64
		for i, ns := range p.cfg.Stores {
			fs.Acked[ns.Name] = l.acked[i]
			acked += l.acked[i]
		}
		fs.LagBytes = total - acked
		if fs.LagBytes < 0 {
			fs.LagBytes = 0
		}
		st.Followers = append(st.Followers, fs)
	}
	return st
}

// Close stops every follower loop and wakes barrier waiters with
// ErrClosed. Idempotent.
func (p *Primary) Close() error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil
	}
	p.closed = true
	for _, l := range p.followers {
		close(l.stop)
		if l.conn != nil {
			l.conn.Close()
		}
	}
	p.cond.Broadcast()
	p.mu.Unlock()
	p.wg.Wait()
	return nil
}
