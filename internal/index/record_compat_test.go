package index

import (
	"encoding/base64"
	"encoding/json"
	"fmt"
	"testing"
	"time"

	"repro/internal/event"
)

// The hand-rolled record encoding must stay decodable into the record
// struct with every value intact — including awkward summaries — so
// stores written by either implementation read back identically.
func TestAppendRecordJSONCompat(t *testing.T) {
	n := &event.Notification{
		ID:          "evt-abc",
		Class:       "hospital.blood-test",
		PersonID:    "PRS-1",
		Summary:     "tricky \"summary\"\nwith <&> and \\ chars",
		OccurredAt:  time.Date(2026, 8, 7, 9, 0, 0, 987654321, time.UTC),
		Producer:    "hospital",
		PublishedAt: time.Date(2026, 8, 7, 9, 0, 1, 0, time.UTC),
	}
	for _, encrypted := range []bool{false, true} {
		personVal := n.PersonID
		var sealed []byte
		if encrypted {
			personVal = "c2VhbGVkLWJhc2U2NA==" // what a sealed id looks like
			sealed, _ = base64.URLEncoding.DecodeString(personVal)
		}
		raw := appendRecordJSON(n, sealed)
		if !json.Valid(raw) {
			t.Fatalf("invalid JSON: %s", raw)
		}
		var r record
		if err := json.Unmarshal(raw, &r); err != nil {
			t.Fatalf("unmarshal: %v\n%s", err, raw)
		}
		want := record{
			ID: n.ID, Class: n.Class, PersonID: personVal, Encrypted: encrypted,
			Summary: n.Summary, OccurredAt: n.OccurredAt, Producer: n.Producer,
			PublishedAt: n.PublishedAt,
		}
		if r.ID != want.ID || r.Class != want.Class || r.PersonID != want.PersonID ||
			r.Encrypted != want.Encrypted || r.Summary != want.Summary ||
			r.Producer != want.Producer ||
			!r.OccurredAt.Equal(want.OccurredAt) || !r.PublishedAt.Equal(want.PublishedAt) {
			t.Fatalf("decoded record mismatch:\nwant %+v\n got %+v", want, r)
		}
		// And the reference encoder's output must decode the same way the
		// hand-rolled bytes do (shared wire compatibility).
		ref, err := json.Marshal(&want)
		if err != nil {
			t.Fatal(err)
		}
		var r2 record
		if err := json.Unmarshal(ref, &r2); err != nil {
			t.Fatal(err)
		}
		if r2.Summary != r.Summary || r2.PersonID != r.PersonID {
			t.Fatalf("reference and hand-rolled decode diverge: %+v vs %+v", r2, r)
		}
	}
}

func TestTimeKeyMatchesReferenceFormat(t *testing.T) {
	cases := []time.Time{
		time.Unix(0, 0),
		time.Unix(0, 1),
		time.Date(2026, 8, 7, 10, 0, 0, 123456789, time.UTC),
		time.Date(1969, 12, 31, 23, 59, 59, 0, time.UTC), // negative UnixNano
		time.Date(1901, 1, 1, 0, 0, 0, 0, time.UTC),
	}
	for _, tc := range cases {
		if got, want := timeKey(tc), fmt.Sprintf("%020d", tc.UnixNano()); got != want {
			t.Fatalf("timeKey(%v) = %q, want %q", tc, got, want)
		}
	}
}
