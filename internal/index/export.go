// Reshard handoff support: exporting the full key set of the events
// whose person pseudonym moves to another shard, and sweeping those
// keys away after the shard map flips. The scatter-gather and publish
// routing layers also need the pseudonym itself, so it is exported
// here rather than widening the keyring's surface elsewhere.
package index

import (
	"encoding/json"
	"fmt"

	"repro/internal/event"
	"repro/internal/store"
)

// Pseudonym returns the keyed pseudonym routing and partitioning use
// for a person identifier, through the same read cache as the index
// paths. In the plaintext-baseline mode (nil keyring) the identifier
// is its own pseudonym.
func (ix *Index) Pseudonym(person string) string {
	if ix.keys == nil {
		return person
	}
	return ix.pseudonym(person)
}

// movedEvent is one event whose owner changes under the next shard
// map, with everything needed to rebuild its four index keys.
type movedEvent struct {
	id        event.GlobalID
	pseudonym string
	ts        string
	class     event.ClassID
	producer  event.ProducerID
	value     []byte // raw persisted record (person id still sealed)
}

// collectMoved scans the person index and returns every event whose
// pseudonym satisfies moved. Values are copied out of the read
// transaction. Events indexed under several persons never exist here
// (one notification names one person), so the scan is exhaustive and
// duplicate-free.
func (ix *Index) collectMoved(moved func(pseudonym string) bool) ([]movedEvent, error) {
	var out []movedEvent
	var innerErr error
	err := ix.st.View(func(tx store.Tx) error {
		tx.AscendPrefix("p/", func(k string, v []byte) bool {
			pseud, ts, ok := splitPersonKey(k)
			if !ok {
				innerErr = fmt.Errorf("index: malformed person index key %q", k)
				return false
			}
			if !moved(pseud) {
				return true
			}
			id := event.GlobalID(v)
			raw, ok := tx.Get(eventKey(id))
			if !ok {
				innerErr = fmt.Errorf("%w: dangling index entry %s", ErrNotFound, id)
				return false
			}
			var r record
			if err := json.Unmarshal(raw, &r); err != nil {
				innerErr = fmt.Errorf("index: corrupt record %s: %w", id, err)
				return false
			}
			out = append(out, movedEvent{
				id:        id,
				pseudonym: pseud,
				ts:        ts,
				class:     r.Class,
				producer:  r.Producer,
				value:     append([]byte(nil), raw...),
			})
			return true
		})
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, innerErr
}

// ExportMoved streams every event whose pseudonym satisfies moved as
// one store batch each — the primary record plus its three secondary
// keys, exactly as PutStaged wrote them — and returns the count and
// the moved global ids (so the caller can ship the matching id-map
// entries alongside). The records travel with the person id still
// sealed: the handoff never exposes plaintext identifiers, and donor
// and recipient share the cluster master key.
func (ix *Index) ExportMoved(moved func(pseudonym string) bool,
	ship func(gid event.GlobalID, pseudonym string, b *store.Batch) error) (int, []event.GlobalID, error) {

	events, err := ix.collectMoved(moved)
	if err != nil {
		return 0, nil, err
	}
	gids := make([]event.GlobalID, 0, len(events))
	for _, ev := range events {
		var b store.Batch
		b.Put(eventKey(ev.id), ev.value)
		idVal := []byte(ev.id)
		b.Put(personIdxKey(ev.pseudonym, ev.ts, ev.id), idVal)
		b.Put(classIdxKey(ev.class, ev.ts, ev.id), idVal)
		b.Put(producerIdxKey(ev.producer, ev.id), idVal)
		if err := ship(ev.id, ev.pseudonym, &b); err != nil {
			return len(gids), gids, err
		}
		gids = append(gids, ev.id)
	}
	return len(gids), gids, nil
}

// ApplyHandoff applies one handoff batch shipped by a donor's
// ExportMoved. Re-applying the same batch is harmless (pure puts of
// identical values).
func (ix *Index) ApplyHandoff(b *store.Batch) error {
	return ix.st.Apply(b)
}

// SweepMoved deletes every event whose pseudonym satisfies moved —
// the donor's post-flip cleanup after a handoff — and invalidates the
// read cache for the removed ids. It returns the global ids removed so
// the caller can sweep the matching id-map entries.
func (ix *Index) SweepMoved(moved func(pseudonym string) bool) ([]event.GlobalID, error) {
	events, err := ix.collectMoved(moved)
	if err != nil {
		return nil, err
	}
	var b store.Batch
	gids := make([]event.GlobalID, 0, len(events))
	for _, ev := range events {
		b.Delete(eventKey(ev.id))
		b.Delete(personIdxKey(ev.pseudonym, ev.ts, ev.id))
		b.Delete(classIdxKey(ev.class, ev.ts, ev.id))
		b.Delete(producerIdxKey(ev.producer, ev.id))
		gids = append(gids, ev.id)
	}
	if b.Len() == 0 {
		return nil, nil
	}
	if err := ix.st.Apply(&b); err != nil {
		return nil, err
	}
	for _, ev := range events {
		ix.notif.Delete(ev.id)
	}
	return gids, nil
}

// splitPersonKey splits "p/<pseudonym>/<ts>/<id>" into its pseudonym
// and timestamp components. The timestamp is the fixed-width timeKey
// form and the id follows it, so the last two separators are
// unambiguous even though a pseudonym could in principle contain '/'
// (base64url pseudonyms and plaintext baseline ids do not).
func splitPersonKey(k string) (pseudonym, ts string, ok bool) {
	const tsLen = 20
	if len(k) < 2+tsLen+2 || k[:2] != "p/" {
		return "", "", false
	}
	rest := k[2:]
	// Find the id separator scanning from the end, then the ts before it.
	idSep := -1
	for i := len(rest) - 1; i >= 0; i-- {
		if rest[i] == '/' {
			idSep = i
			break
		}
	}
	if idSep < tsLen+1 {
		return "", "", false
	}
	tsStart := idSep - tsLen
	if rest[tsStart-1] != '/' {
		return "", "", false
	}
	return rest[:tsStart-1], rest[tsStart:idSep], true
}
