// Package index implements the events index of the data controller: the
// store of all notification messages published by the producers (paper
// §4). Per the privacy regulations, "the identifying information of the
// person specified in the notification is stored in encrypted form": the
// person identifier is sealed at rest and indexed through a deterministic
// keyed pseudonym, so the index supports "all events of person X" queries
// without ever holding the identifier in the clear.
//
// The index answers the event index inquiries of §5.2: a consumer may
// query it to obtain the list of notifications it is authorized to see
// without necessarily subscribing (the authorization check itself is the
// controller's job; the index is the storage and query layer).
package index

import (
	"encoding/base64"
	"encoding/json"
	"errors"
	"fmt"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cache"
	"repro/internal/crypto"
	"repro/internal/event"
	"repro/internal/jsonx"
	"repro/internal/store"
)

// ErrNotFound reports an unknown event id.
var ErrNotFound = errors.New("index: not found")

// CacheObserver receives the outcome of one read cache lookup ("index.
// notification" or "index.pseudonym"). Alias form so wiring code can
// duck-type SetCacheObserver across packages.
type CacheObserver = func(cache string, hit bool)

// Read cache bounds. Notifications are small (a record struct with a few
// strings); pseudonym entries are two short strings.
const (
	notifCacheSize     = 4096
	pseudonymCacheSize = 4096
)

// Index is the notification store. Safe for concurrent use; durable when
// backed by a persistent store. With a nil keyring the index stores
// person identifiers in the clear — that mode exists solely as the
// baseline of experiment E5 and must not be used in a deployment.
//
// Two read caches sit in front of the store. The notification cache
// memoizes decrypt+decode results so repeated Get/Inquire hits stop
// paying AES-GCM + JSON per record: entries are filled only inside a
// store read transaction (the store's read lock orders the fill before
// any later write) and deleted after every Put of the same id, so the
// cache can never hold a value the store has moved past. The pseudonym
// cache memoizes the keyed HMAC of person identifiers — a deterministic
// function, so it needs no invalidation. Cached notifications never
// escape: callers always receive clones. Caching notifications (not
// event details!) controller-side is legal: the notification is exactly
// what the controller already stores and routes; details stay at the
// producer (E13).
type Index struct {
	st   *store.Store
	keys *crypto.Keyring

	notif *cache.LRU[event.GlobalID, *event.Notification]
	pseud *cache.LRU[string, string]
	obs   atomic.Pointer[CacheObserver]
}

// record is the persisted form of a notification. PersonID holds either
// the sealed ciphertext (encrypted mode) or the plaintext (baseline
// mode); Pseudo marks which.
type record struct {
	ID          event.GlobalID   `json:"id"`
	Class       event.ClassID    `json:"class"`
	PersonID    string           `json:"personId"`
	Encrypted   bool             `json:"encrypted"`
	Summary     string           `json:"summary"`
	OccurredAt  time.Time        `json:"occurredAt"`
	Producer    event.ProducerID `json:"producer"`
	PublishedAt time.Time        `json:"publishedAt"`
}

// New creates an index on st. Keys may be nil only for the E5 plaintext
// baseline.
func New(st *store.Store, keys *crypto.Keyring) *Index {
	return &Index{
		st:    st,
		keys:  keys,
		notif: cache.NewLRU[event.GlobalID, *event.Notification](notifCacheSize),
		pseud: cache.NewLRU[string, string](pseudonymCacheSize),
	}
}

// SetCacheObserver installs the cache hit/miss observer (nil disables).
func (ix *Index) SetCacheObserver(o CacheObserver) {
	if o == nil {
		ix.obs.Store(nil)
		return
	}
	ix.obs.Store(&o)
}

func (ix *Index) noteCache(cache string, hit bool) {
	if o := ix.obs.Load(); o != nil {
		(*o)(cache, hit)
	}
}

// pseudonym returns the keyed pseudonym of a person identifier through
// the read cache. Must only be called with a non-nil keyring.
func (ix *Index) pseudonym(person string) string {
	if p, ok := ix.pseud.Get(person); ok {
		ix.noteCache("index.pseudonym", true)
		return p
	}
	ix.noteCache("index.pseudonym", false)
	p := ix.keys.Pseudonym(person)
	ix.pseud.Put(person, p)
	return p
}

// Put stores a published notification. The notification must carry its
// controller-assigned global ID. Put is idempotent on the global ID.
// Put is PutStaged followed immediately by the commit barrier.
func (ix *Index) Put(n *event.Notification) error {
	c, err := ix.PutStaged(n)
	if err != nil {
		return err
	}
	return c.Wait()
}

// batchPool recycles the batch (and its ops slice) across puts.
var batchPool = sync.Pool{New: func() any { return new(store.Batch) }}

// PutStaged stores a published notification but returns before the
// store's fsync barrier: the record and its secondary keys are visible
// and in the WAL, and the returned Commit's Wait makes them durable.
// The controller overlaps that fsync with audit append and bus fan-out,
// acking the publisher only after the barrier — exactly-once indexing
// is unaffected because a crash before the barrier loses the whole
// batch and the unacked publisher retries under the same global ID.
func (ix *Index) PutStaged(n *event.Notification) (store.Commit, error) {
	if n.ID == "" {
		return store.Commit{}, errors.New("index: notification without global id")
	}
	if err := n.Class.Validate(); err != nil {
		return store.Commit{}, err
	}
	personKey := n.PersonID
	var sealed []byte
	if ix.keys != nil {
		var err error
		sealed, err = ix.keys.Seal([]byte(n.PersonID))
		if err != nil {
			return store.Commit{}, err
		}
		personKey = ix.pseudonym(n.PersonID)
	}
	data := appendRecordJSON(n, sealed)
	// The primary record and its three secondary keys commit as one
	// store batch: one lock acquisition, one WAL frame, and — because a
	// batch frame replays all-or-nothing — no crash window in which a
	// notification exists without its index entries (or vice versa).
	// All values are freshly built per call, so they transfer to the
	// store without defensive copies; the three secondary entries share
	// one id slice.
	ts := timeKey(n.OccurredAt)
	idVal := []byte(n.ID)
	b := batchPool.Get().(*store.Batch)
	b.Reset()
	b.PutOwned(eventKey(n.ID), data)
	b.PutOwned(personIdxKey(personKey, ts, n.ID), idVal)
	b.PutOwned(classIdxKey(n.Class, ts, n.ID), idVal)
	b.PutOwned(producerIdxKey(n.Producer, n.ID), idVal)
	c, err := ix.st.StageApply(b)
	batchPool.Put(b)
	if err != nil {
		return store.Commit{}, err
	}
	// Invalidate after the write is visible. Readers fill the cache only
	// while holding the store's read lock, so any fill of the old value
	// finished before StageApply took the write lock — this delete
	// removes it; fills that start after see the new value.
	ix.notif.Delete(n.ID)
	return c, nil
}

// appendRecordJSON renders the persisted record by hand, with the same
// field set, tags and value encoding the json.Marshal of record
// produced, so existing stores decode identically. One exact-guess
// allocation instead of reflection. A non-nil sealed ciphertext is
// base64-encoded straight into the record (the URL-safe alphabet never
// needs JSON escaping), producing the byte-identical personId value
// SealString used to build through an intermediate string.
func appendRecordJSON(n *event.Notification, sealed []byte) []byte {
	personLen := len(n.PersonID)
	if sealed != nil {
		personLen = base64.URLEncoding.EncodedLen(len(sealed))
	}
	dst := make([]byte, 0, len(n.ID)+len(n.Class)+personLen+len(n.Summary)+
		len(n.Producer)+2*len(time.RFC3339Nano)+112)
	dst = append(dst, `{"id":`...)
	dst = jsonx.AppendString(dst, string(n.ID))
	dst = append(dst, `,"class":`...)
	dst = jsonx.AppendString(dst, string(n.Class))
	dst = append(dst, `,"personId":`...)
	if sealed != nil {
		dst = append(dst, '"')
		dst = base64.URLEncoding.AppendEncode(dst, sealed)
		dst = append(dst, '"')
		dst = append(dst, `,"encrypted":true`...)
	} else {
		dst = jsonx.AppendString(dst, n.PersonID)
		dst = append(dst, `,"encrypted":false`...)
	}
	dst = append(dst, `,"summary":`...)
	dst = jsonx.AppendString(dst, n.Summary)
	dst = append(dst, `,"occurredAt":"`...)
	dst = n.OccurredAt.AppendFormat(dst, time.RFC3339Nano)
	dst = append(dst, `","producer":`...)
	dst = jsonx.AppendString(dst, string(n.Producer))
	dst = append(dst, `,"publishedAt":"`...)
	dst = n.PublishedAt.AppendFormat(dst, time.RFC3339Nano)
	dst = append(dst, `"}`...)
	return dst
}

// Get returns the notification with the given global ID, with the person
// identifier decrypted. The caller owns the returned notification (it is
// never aliased by the cache).
func (ix *Index) Get(id event.GlobalID) (*event.Notification, error) {
	if n, ok := ix.notif.Get(id); ok {
		ix.noteCache("index.notification", true)
		return n.Clone(), nil
	}
	ix.noteCache("index.notification", false)
	var n *event.Notification
	err := ix.st.View(func(tx store.Tx) error {
		v, ok := tx.Get(eventKey(id))
		if !ok {
			return fmt.Errorf("%w: %s", ErrNotFound, id)
		}
		// decode copies everything it keeps, so the no-copy slice does
		// not escape the transaction. The fill happens inside the read
		// transaction so it is ordered before any later Put of this id
		// (whose post-commit delete then removes this entry).
		var derr error
		n, derr = ix.decode(v)
		if derr == nil {
			ix.notif.Put(id, n.Clone())
		}
		return derr
	})
	if err != nil {
		return nil, err
	}
	return n, nil
}

func (ix *Index) decode(v []byte) (*event.Notification, error) {
	var r record
	if err := json.Unmarshal(v, &r); err != nil {
		return nil, fmt.Errorf("index: corrupt record: %w", err)
	}
	person := r.PersonID
	if r.Encrypted {
		if ix.keys == nil {
			return nil, errors.New("index: encrypted record but no keyring")
		}
		pt, err := ix.keys.OpenString(r.PersonID)
		if err != nil {
			return nil, fmt.Errorf("index: decrypt person id: %w", err)
		}
		person = pt
	}
	return &event.Notification{
		ID:          r.ID,
		Class:       r.Class,
		PersonID:    person,
		Summary:     r.Summary,
		OccurredAt:  r.OccurredAt,
		Producer:    r.Producer,
		PublishedAt: r.PublishedAt,
	}, nil
}

// Inquiry filters an index query. Zero values match anything.
type Inquiry struct {
	// PersonID selects the events of one data subject (plaintext; the
	// index translates it to the pseudonym internally).
	PersonID string
	// Class selects one event class.
	Class event.ClassID
	// Producer selects one source.
	Producer event.ProducerID
	// From/To bound the occurrence time (inclusive).
	From, To time.Time
	// Limit bounds the result size; 0 means unlimited.
	Limit int
}

// Inquire returns the notifications matching q in occurrence-time order
// (within the chosen access path). It uses the person index when a
// person is given, else the class index, else a full scan.
func (ix *Index) Inquire(q Inquiry) ([]*event.Notification, error) {
	switch {
	case q.PersonID != "":
		personKey := q.PersonID
		if ix.keys != nil {
			personKey = ix.pseudonym(q.PersonID)
		}
		return ix.scanIdx("p/"+personKey+"/", q)
	case q.Class != "":
		return ix.scanIdx("c/"+string(q.Class)+"/", q)
	default:
		return ix.scanAll(q)
	}
}

// scanIdx walks a secondary index prefix, bounding the scan by the time
// window encoded in the keys, and resolves the primary records inside
// the same read transaction — one lock acquisition for the whole scan
// and no per-entry value copy (decode copies whatever it keeps).
func (ix *Index) scanIdx(prefix string, q Inquiry) ([]*event.Notification, error) {
	from := prefix
	if !q.From.IsZero() {
		from = prefix + timeKey(q.From)
	}
	var out []*event.Notification
	var innerErr error
	err := ix.st.View(func(tx store.Tx) error {
		tx.AscendRange(from, "", func(k string, v []byte) bool {
			if len(k) < len(prefix) || k[:len(prefix)] != prefix {
				return false // left the prefix: stop
			}
			id := event.GlobalID(v)
			var n *event.Notification
			if hit, ok := ix.notif.Get(id); ok {
				ix.noteCache("index.notification", true)
				n = hit.Clone()
			} else {
				ix.noteCache("index.notification", false)
				pv, ok := tx.Get(eventKey(id))
				if !ok {
					innerErr = fmt.Errorf("%w: dangling index entry %s", ErrNotFound, id)
					return false
				}
				var err error
				n, err = ix.decode(pv)
				if err != nil {
					innerErr = err
					return false
				}
				ix.notif.Put(id, n.Clone())
			}
			if !matches(n, q) {
				// Keys are time-ordered: once past To we can stop.
				if !q.To.IsZero() && n.OccurredAt.After(q.To) {
					return false
				}
				return true
			}
			out = append(out, n)
			return q.Limit <= 0 || len(out) < q.Limit
		})
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, innerErr
}

func (ix *Index) scanAll(q Inquiry) ([]*event.Notification, error) {
	var out []*event.Notification
	var innerErr error
	err := ix.st.View(func(tx store.Tx) error {
		tx.AscendPrefix("e/", func(k string, v []byte) bool {
			n, err := ix.decode(v)
			if err != nil {
				innerErr = err
				return false
			}
			if !matches(n, q) {
				return true
			}
			out = append(out, n)
			return q.Limit <= 0 || len(out) < q.Limit
		})
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, innerErr
}

func matches(n *event.Notification, q Inquiry) bool {
	if q.PersonID != "" && n.PersonID != q.PersonID {
		return false
	}
	if q.Class != "" && n.Class != q.Class {
		return false
	}
	if q.Producer != "" && n.Producer != q.Producer {
		return false
	}
	if !q.From.IsZero() && n.OccurredAt.Before(q.From) {
		return false
	}
	if !q.To.IsZero() && n.OccurredAt.After(q.To) {
		return false
	}
	return true
}

// Len returns the number of stored notifications.
func (ix *Index) Len() (int, error) {
	n := 0
	err := ix.st.View(func(tx store.Tx) error {
		tx.AscendPrefix("e/", func(string, []byte) bool {
			n++
			return true
		})
		return nil
	})
	return n, err
}

func eventKey(id event.GlobalID) string { return "e/" + string(id) }

func personIdxKey(person, ts string, id event.GlobalID) string {
	return "p/" + person + "/" + ts + "/" + string(id)
}

func classIdxKey(c event.ClassID, ts string, id event.GlobalID) string {
	return "c/" + string(c) + "/" + ts + "/" + string(id)
}

func producerIdxKey(p event.ProducerID, id event.GlobalID) string {
	return "s/" + string(p) + "/" + string(id)
}

// timeKey renders an instant as a fixed-width sortable key component
// ("%020d" of the UnixNano).
func timeKey(t time.Time) string {
	v := t.UnixNano()
	if v < 0 {
		// Pre-1970 instants: replicate fmt's sign-then-zero-pad layout.
		s := strconv.FormatInt(v, 10)
		if len(s) >= 20 {
			return s
		}
		var b [20]byte
		b[0] = '-'
		pad := len(b) - len(s)
		for i := 1; i <= pad; i++ {
			b[i] = '0'
		}
		copy(b[1+pad:], s[1:])
		return string(b[:])
	}
	var b [20]byte
	u := uint64(v)
	for i := len(b) - 1; i >= 0; i-- {
		b[i] = byte('0' + u%10)
		u /= 10
	}
	return string(b[:])
}
