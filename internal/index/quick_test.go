package index

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/crypto"
	"repro/internal/event"
	"repro/internal/store"
)

// TestQuickInquireMatchesNaiveFilter: for random data and random
// inquiries, the index (with its secondary-index access paths) returns
// exactly what a naive linear filter over the inserted notifications
// would.
func TestQuickInquireMatchesNaiveFilter(t *testing.T) {
	keys, err := crypto.NewKeyring(bytes.Repeat([]byte{6}, crypto.KeySize))
	if err != nil {
		t.Fatal(err)
	}
	base := time.Date(2010, 1, 1, 0, 0, 0, 0, time.UTC)

	f := func(seed int64) bool {
		rnd := rand.New(rand.NewSource(seed))
		ix := New(store.OpenMemory(), keys)
		n := 20 + rnd.Intn(80)
		var all []*event.Notification
		for i := 0; i < n; i++ {
			notif := &event.Notification{
				ID:         event.GlobalID(fmt.Sprintf("evt-%06d", i)),
				Class:      event.ClassID(fmt.Sprintf("c%d.x", rnd.Intn(3))),
				PersonID:   fmt.Sprintf("P-%d", rnd.Intn(8)),
				Summary:    "s",
				OccurredAt: base.Add(time.Duration(rnd.Intn(1000)) * time.Hour),
				Producer:   event.ProducerID(fmt.Sprintf("prod-%d", rnd.Intn(2))),
			}
			if err := ix.Put(notif); err != nil {
				return false
			}
			all = append(all, notif)
		}

		// Random inquiry with random combination of filters.
		q := Inquiry{}
		if rnd.Intn(2) == 0 {
			q.PersonID = fmt.Sprintf("P-%d", rnd.Intn(8))
		}
		if rnd.Intn(2) == 0 {
			q.Class = event.ClassID(fmt.Sprintf("c%d.x", rnd.Intn(3)))
		}
		if rnd.Intn(2) == 0 {
			q.Producer = event.ProducerID(fmt.Sprintf("prod-%d", rnd.Intn(2)))
		}
		if rnd.Intn(2) == 0 {
			q.From = base.Add(time.Duration(rnd.Intn(500)) * time.Hour)
		}
		if rnd.Intn(2) == 0 {
			q.To = base.Add(time.Duration(500+rnd.Intn(500)) * time.Hour)
		}

		got, err := ix.Inquire(q)
		if err != nil {
			return false
		}
		want := map[event.GlobalID]bool{}
		for _, notif := range all {
			if q.PersonID != "" && notif.PersonID != q.PersonID {
				continue
			}
			if q.Class != "" && notif.Class != q.Class {
				continue
			}
			if q.Producer != "" && notif.Producer != q.Producer {
				continue
			}
			if !q.From.IsZero() && notif.OccurredAt.Before(q.From) {
				continue
			}
			if !q.To.IsZero() && notif.OccurredAt.After(q.To) {
				continue
			}
			want[notif.ID] = true
		}
		if len(got) != len(want) {
			t.Logf("seed %d: got %d, want %d for %+v", seed, len(got), len(want), q)
			return false
		}
		for _, g := range got {
			if !want[g.ID] {
				t.Logf("seed %d: unexpected result %s", seed, g.ID)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
