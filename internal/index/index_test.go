package index

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/crypto"
	"repro/internal/event"
	"repro/internal/store"
)

func keyring(t *testing.T) *crypto.Keyring {
	t.Helper()
	k, err := crypto.NewKeyring(bytes.Repeat([]byte{3}, crypto.KeySize))
	if err != nil {
		t.Fatal(err)
	}
	return k
}

func newIndex(t *testing.T) *Index {
	t.Helper()
	return New(store.OpenMemory(), keyring(t))
}

func notif(id string, person string, class event.ClassID, at time.Time) *event.Notification {
	return &event.Notification{
		ID:          event.GlobalID(id),
		Class:       class,
		PersonID:    person,
		Summary:     "something happened",
		OccurredAt:  at,
		Producer:    "hospital",
		PublishedAt: at.Add(time.Minute),
	}
}

var t0 = time.Date(2010, 3, 1, 8, 0, 0, 0, time.UTC)

func TestPutGetRoundTrip(t *testing.T) {
	ix := newIndex(t)
	n := notif("evt-1", "PRS-0001", "hospital.blood-test", t0)
	if err := ix.Put(n); err != nil {
		t.Fatalf("Put: %v", err)
	}
	got, err := ix.Get("evt-1")
	if err != nil {
		t.Fatalf("Get: %v", err)
	}
	if got.PersonID != "PRS-0001" || got.Class != n.Class || !got.OccurredAt.Equal(n.OccurredAt) {
		t.Errorf("Get = %+v", got)
	}
	if _, err := ix.Get("evt-404"); !errors.Is(err, ErrNotFound) {
		t.Errorf("Get(unknown) = %v", err)
	}
}

func TestPutValidation(t *testing.T) {
	ix := newIndex(t)
	n := notif("", "p", "c.x", t0)
	if err := ix.Put(n); err == nil {
		t.Error("Put accepted notification without global id")
	}
	bad := notif("evt-1", "p", "Bad Class", t0)
	if err := ix.Put(bad); err == nil {
		t.Error("Put accepted bad class")
	}
}

func TestPersonIDEncryptedAtRest(t *testing.T) {
	st := store.OpenMemory()
	ix := New(st, keyring(t))
	if err := ix.Put(notif("evt-1", "PRS-SECRET-0001", "c.x", t0)); err != nil {
		t.Fatal(err)
	}
	// No key or value anywhere in the store may contain the identifier.
	leaked := false
	st.AscendPrefix("", func(k string, v []byte) bool {
		if strings.Contains(k, "PRS-SECRET") || strings.Contains(string(v), "PRS-SECRET") {
			leaked = true
			return false
		}
		return true
	})
	if leaked {
		t.Error("person identifier stored in the clear")
	}
}

func TestPlaintextBaselineMode(t *testing.T) {
	st := store.OpenMemory()
	ix := New(st, nil)
	if err := ix.Put(notif("evt-1", "PRS-1", "c.x", t0)); err != nil {
		t.Fatal(err)
	}
	got, err := ix.Get("evt-1")
	if err != nil || got.PersonID != "PRS-1" {
		t.Fatalf("Get = %+v, %v", got, err)
	}
	res, err := ix.Inquire(Inquiry{PersonID: "PRS-1"})
	if err != nil || len(res) != 1 {
		t.Errorf("Inquire = %d, %v", len(res), err)
	}
}

func TestInquireByPerson(t *testing.T) {
	ix := newIndex(t)
	for i := 0; i < 10; i++ {
		person := "PRS-A"
		if i%2 == 1 {
			person = "PRS-B"
		}
		n := notif(fmt.Sprintf("evt-%d", i), person, "c.x", t0.Add(time.Duration(i)*time.Hour))
		if err := ix.Put(n); err != nil {
			t.Fatal(err)
		}
	}
	got, err := ix.Inquire(Inquiry{PersonID: "PRS-A"})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 5 {
		t.Fatalf("Inquire(person) = %d", len(got))
	}
	for i, n := range got {
		if n.PersonID != "PRS-A" {
			t.Errorf("result %d has person %s", i, n.PersonID)
		}
		if i > 0 && got[i].OccurredAt.Before(got[i-1].OccurredAt) {
			t.Error("results out of time order")
		}
	}
	if got, _ := ix.Inquire(Inquiry{PersonID: "PRS-NOBODY"}); len(got) != 0 {
		t.Errorf("unknown person = %d results", len(got))
	}
}

func TestInquireByClassAndProducer(t *testing.T) {
	ix := newIndex(t)
	for i := 0; i < 6; i++ {
		class := event.ClassID("c.one")
		if i >= 3 {
			class = "c.two"
		}
		n := notif(fmt.Sprintf("evt-%d", i), "P", class, t0.Add(time.Duration(i)*time.Hour))
		if i == 5 {
			n.Producer = "other-producer"
		}
		ix.Put(n)
	}
	if got, _ := ix.Inquire(Inquiry{Class: "c.one"}); len(got) != 3 {
		t.Errorf("Inquire(class) = %d", len(got))
	}
	got, _ := ix.Inquire(Inquiry{Class: "c.two", Producer: "other-producer"})
	if len(got) != 1 || got[0].ID != "evt-5" {
		t.Errorf("Inquire(class+producer) = %+v", got)
	}
	// Full scan path.
	if got, _ := ix.Inquire(Inquiry{Producer: "hospital"}); len(got) != 5 {
		t.Errorf("Inquire(producer only) = %d", len(got))
	}
	if got, _ := ix.Inquire(Inquiry{}); len(got) != 6 {
		t.Errorf("Inquire(all) = %d", len(got))
	}
}

func TestInquireTimeWindow(t *testing.T) {
	ix := newIndex(t)
	for i := 0; i < 10; i++ {
		ix.Put(notif(fmt.Sprintf("evt-%d", i), "P", "c.x", t0.Add(time.Duration(i)*time.Hour)))
	}
	got, err := ix.Inquire(Inquiry{PersonID: "P", From: t0.Add(3 * time.Hour), To: t0.Add(6 * time.Hour)})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 4 {
		t.Fatalf("window = %d results", len(got))
	}
	if got[0].ID != "evt-3" || got[3].ID != "evt-6" {
		t.Errorf("window bounds = %s..%s", got[0].ID, got[3].ID)
	}
	// Window on the class path and the scan path.
	if got, _ := ix.Inquire(Inquiry{Class: "c.x", From: t0.Add(8 * time.Hour)}); len(got) != 2 {
		t.Errorf("class window = %d", len(got))
	}
	if got, _ := ix.Inquire(Inquiry{To: t0}); len(got) != 1 {
		t.Errorf("scan window = %d", len(got))
	}
}

func TestInquireLimit(t *testing.T) {
	ix := newIndex(t)
	for i := 0; i < 10; i++ {
		ix.Put(notif(fmt.Sprintf("evt-%d", i), "P", "c.x", t0.Add(time.Duration(i)*time.Minute)))
	}
	for _, q := range []Inquiry{
		{PersonID: "P", Limit: 3},
		{Class: "c.x", Limit: 3},
		{Limit: 3},
	} {
		if got, _ := ix.Inquire(q); len(got) != 3 {
			t.Errorf("Limit ignored for %+v: %d", q, len(got))
		}
	}
}

func TestLen(t *testing.T) {
	ix := newIndex(t)
	for i := 0; i < 7; i++ {
		ix.Put(notif(fmt.Sprintf("evt-%d", i), "P", "c.x", t0))
	}
	// Idempotent overwrite of the same id does not grow the index.
	ix.Put(notif("evt-0", "P", "c.x", t0))
	if n, _ := ix.Len(); n != 7 {
		t.Errorf("Len = %d", n)
	}
}

func TestDurability(t *testing.T) {
	path := filepath.Join(t.TempDir(), "index.wal")
	st, err := store.Open(path, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ix := New(st, keyring(t))
	ix.Put(notif("evt-1", "PRS-1", "c.x", t0))
	st.Close()

	st2, err := store.Open(path, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	ix2 := New(st2, keyring(t))
	got, err := ix2.Get("evt-1")
	if err != nil || got.PersonID != "PRS-1" {
		t.Errorf("after reopen: %+v, %v", got, err)
	}
	if res, _ := ix2.Inquire(Inquiry{PersonID: "PRS-1"}); len(res) != 1 {
		t.Error("person index lost after reopen")
	}
}

func TestWrongKeyringCannotRead(t *testing.T) {
	st := store.OpenMemory()
	ix := New(st, keyring(t))
	ix.Put(notif("evt-1", "PRS-1", "c.x", t0))

	other, err := crypto.NewKeyring(bytes.Repeat([]byte{9}, crypto.KeySize))
	if err != nil {
		t.Fatal(err)
	}
	ix2 := New(st, other)
	if _, err := ix2.Get("evt-1"); err == nil {
		t.Error("Get under wrong keyring succeeded")
	}
	// And the pseudonym differs, so the person index finds nothing.
	if res, _ := ix2.Inquire(Inquiry{PersonID: "PRS-1"}); len(res) != 0 {
		t.Errorf("wrong-key inquiry = %d results", len(res))
	}
}

// TestPutAtomicityAcrossCrash asserts the all-or-nothing guarantee of
// the batched Put: truncating the WAL at any byte boundary inside the
// last Put's frame (the crash model) recovers either the full set —
// primary record plus person/class/producer index keys — or none of it.
// Before the batch rewrite, a crash between the four store puts could
// leave a primary record without its secondary keys (or, on replay of a
// torn multi-record sequence, secondary keys pointing at nothing).
func TestPutAtomicityAcrossCrash(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "index.wal")
	st, err := store.Open(path, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	keys := keyring(t)
	ix := New(st, keys)
	if err := ix.Put(notif("evt-settled", "PRS-0001", "hospital.blood-test", t0)); err != nil {
		t.Fatal(err)
	}
	settledSize := walSize(t, path)
	if err := ix.Put(notif("evt-torn", "PRS-0002", "hospital.blood-test", t0.Add(time.Hour))); err != nil {
		t.Fatal(err)
	}
	st.Close()
	full := walSize(t, path)

	for cut := settledSize; cut <= full; cut++ {
		torn := filepath.Join(t.TempDir(), "torn.wal")
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(torn, data[:cut], 0o600); err != nil {
			t.Fatal(err)
		}
		rst, err := store.Open(torn, store.Options{})
		if err != nil {
			t.Fatalf("cut %d: reopen: %v", cut, err)
		}
		rix := New(rst, keys)

		// The settled event is always fully present.
		if _, err := rix.Get("evt-settled"); err != nil {
			t.Fatalf("cut %d: settled event lost: %v", cut, err)
		}
		// The torn event is either fully present or fully absent.
		_, getErr := rix.Get("evt-torn")
		entries := secondaryEntries(t, rst, "evt-torn")
		switch {
		case getErr == nil && entries == 3: // fully applied
		case errors.Is(getErr, ErrNotFound) && entries == 0: // fully dropped
		default:
			t.Fatalf("cut %d: partial index state: get=%v secondaries=%d", cut, getErr, entries)
		}
		rst.Close()
	}
}

func walSize(t *testing.T, path string) int64 {
	t.Helper()
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	return fi.Size()
}

// secondaryEntries counts the person/class/producer index keys that
// reference the given event id.
func secondaryEntries(t *testing.T, st *store.Store, id string) int {
	t.Helper()
	count := 0
	for _, prefix := range []string{"p/", "c/", "s/"} {
		err := st.AscendPrefix(prefix, func(k string, v []byte) bool {
			if string(v) == id {
				count++
			}
			return true
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	return count
}
