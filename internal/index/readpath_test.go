package index

import (
	"testing"
)

func TestGetCachesDecodedNotification(t *testing.T) {
	ix := newIndex(t)
	var hits, misses int
	ix.SetCacheObserver(func(cache string, hit bool) {
		if cache != "index.notification" {
			return
		}
		if hit {
			hits++
		} else {
			misses++
		}
	})
	if err := ix.Put(notif("evt-1", "PRS-1", "c.x", t0)); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := ix.Get("evt-1"); err != nil {
			t.Fatalf("Get %d: %v", i, err)
		}
	}
	if misses != 1 || hits != 2 {
		t.Errorf("notification cache: %d misses / %d hits, want 1/2", misses, hits)
	}
}

func TestGetReturnsPrivateClones(t *testing.T) {
	ix := newIndex(t)
	if err := ix.Put(notif("evt-1", "PRS-1", "c.x", t0)); err != nil {
		t.Fatal(err)
	}
	a, err := ix.Get("evt-1")
	if err != nil {
		t.Fatal(err)
	}
	a.Summary = "tampered by caller"
	b, err := ix.Get("evt-1")
	if err != nil {
		t.Fatal(err)
	}
	if b.Summary != "something happened" {
		t.Errorf("caller mutation leaked into the cache: %q", b.Summary)
	}
	if a == b {
		t.Error("two Get calls returned the same *Notification instance")
	}
}

func TestPutInvalidatesCachedNotification(t *testing.T) {
	ix := newIndex(t)
	n := notif("evt-1", "PRS-1", "c.x", t0)
	if err := ix.Put(n); err != nil {
		t.Fatal(err)
	}
	if _, err := ix.Get("evt-1"); err != nil { // fill the cache
		t.Fatal(err)
	}
	updated := notif("evt-1", "PRS-1", "c.x", t0)
	updated.Summary = "amended report"
	if err := ix.Put(updated); err != nil {
		t.Fatal(err)
	}
	got, err := ix.Get("evt-1")
	if err != nil {
		t.Fatal(err)
	}
	if got.Summary != "amended report" {
		t.Errorf("Get after re-Put = %q, want the amended record (stale cache)", got.Summary)
	}
}

func TestPseudonymCacheAvoidsRecomputation(t *testing.T) {
	ix := newIndex(t)
	var hits, misses int
	ix.SetCacheObserver(func(cache string, hit bool) {
		if cache != "index.pseudonym" {
			return
		}
		if hit {
			hits++
		} else {
			misses++
		}
	})
	for i := 0; i < 4; i++ {
		if err := ix.Put(notif(string(rune('a'+i))+"-evt", "PRS-SAME", "c.x", t0)); err != nil {
			t.Fatal(err)
		}
	}
	if misses != 1 || hits != 3 {
		t.Errorf("pseudonym cache: %d misses / %d hits, want 1/3", misses, hits)
	}
	// Same person must keep mapping to one pseudonym: all four events are
	// found under a single person inquiry.
	ns, err := ix.Inquire(Inquiry{PersonID: "PRS-SAME"})
	if err != nil {
		t.Fatal(err)
	}
	if len(ns) != 4 {
		t.Errorf("person inquiry found %d notifications, want 4", len(ns))
	}
}

func TestInquireWarmPathUsesNotificationCache(t *testing.T) {
	ix := newIndex(t)
	for i := 0; i < 3; i++ {
		if err := ix.Put(notif(string(rune('a'+i))+"-evt", "PRS-1", "c.x", t0)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := ix.Inquire(Inquiry{PersonID: "PRS-1"}); err != nil { // cold: fills
		t.Fatal(err)
	}
	var hits int
	ix.SetCacheObserver(func(cache string, hit bool) {
		if cache == "index.notification" && hit {
			hits++
		}
	})
	ns, err := ix.Inquire(Inquiry{PersonID: "PRS-1"})
	if err != nil {
		t.Fatal(err)
	}
	if len(ns) != 3 || hits != 3 {
		t.Errorf("warm inquiry: %d notifications, %d cache hits, want 3/3", len(ns), hits)
	}
}
