// Package crypto provides the cryptographic primitives the data
// controller uses to comply with the privacy regulations: "the
// identifying information of the person specified in the notification is
// stored in encrypted form" (paper §4).
//
// Two primitives are offered:
//
//   - Sealer: authenticated encryption (AES-256-GCM) of person
//     identifiers (and any other identifying value) at rest in the events
//     index;
//   - Pseudonymizer: a deterministic keyed pseudonym (HMAC-SHA-256) of a
//     person identifier, enabling equality search over the encrypted index
//     (find all events of person X) without revealing the identifier.
//
// Both are derived from a single 32-byte master key through domain
// separation, so the sealing key and the pseudonym key are independent.
package crypto

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/hmac"
	"crypto/rand"
	"crypto/sha256"
	"encoding/base64"
	"errors"
	"fmt"
	"hash"
	"io"
	"sync"
)

// KeySize is the size in bytes of the master key.
const KeySize = 32

// ErrDecrypt reports an undecryptable or tampered ciphertext.
var ErrDecrypt = errors.New("crypto: message authentication failed")

// Keyring holds the derived keys of one data controller deployment.
type Keyring struct {
	aead    cipher.AEAD
	pseuKey []byte
	// hmacPool recycles HMAC states for Pseudonym.
	hmacPool sync.Pool
}

// NewKeyring derives the sealing and pseudonym keys from a master key.
func NewKeyring(master []byte) (*Keyring, error) {
	if len(master) != KeySize {
		return nil, fmt.Errorf("crypto: master key must be %d bytes, got %d", KeySize, len(master))
	}
	sealKey := derive(master, "css/seal/v1")
	pseuKey := derive(master, "css/pseudonym/v1")
	block, err := aes.NewCipher(sealKey)
	if err != nil {
		return nil, fmt.Errorf("crypto: %w", err)
	}
	aead, err := cipher.NewGCM(block)
	if err != nil {
		return nil, fmt.Errorf("crypto: %w", err)
	}
	k := &Keyring{aead: aead, pseuKey: pseuKey}
	k.hmacPool.New = func() any { return hmac.New(sha256.New, k.pseuKey) }
	return k, nil
}

// NewRandomKeyring generates a fresh random master key and returns the
// keyring along with the key (so it can be persisted by the operator).
func NewRandomKeyring() (*Keyring, []byte, error) {
	master := make([]byte, KeySize)
	if _, err := io.ReadFull(rand.Reader, master); err != nil {
		return nil, nil, fmt.Errorf("crypto: generate key: %w", err)
	}
	k, err := NewKeyring(master)
	if err != nil {
		return nil, nil, err
	}
	return k, master, nil
}

// derive computes HMAC-SHA-256(master, label) for domain separation.
func derive(master []byte, label string) []byte {
	m := hmac.New(sha256.New, master)
	m.Write([]byte(label))
	return m.Sum(nil)
}

// Seal encrypts plaintext with a fresh random nonce. The result is
// nonce‖ciphertext‖tag and is safe to store or transmit. The buffer is
// sized for the whole sealed message up front so the AEAD appends in
// place instead of reallocating.
func (k *Keyring) Seal(plaintext []byte) ([]byte, error) {
	ns := k.aead.NonceSize()
	nonce := make([]byte, ns, ns+len(plaintext)+k.aead.Overhead())
	if _, err := io.ReadFull(rand.Reader, nonce); err != nil {
		return nil, fmt.Errorf("crypto: nonce: %w", err)
	}
	return k.aead.Seal(nonce, nonce, plaintext, nil), nil
}

// Open decrypts a value produced by Seal.
func (k *Keyring) Open(sealed []byte) ([]byte, error) {
	ns := k.aead.NonceSize()
	if len(sealed) < ns+k.aead.Overhead() {
		return nil, ErrDecrypt
	}
	pt, err := k.aead.Open(nil, sealed[:ns], sealed[ns:], nil)
	if err != nil {
		return nil, ErrDecrypt
	}
	return pt, nil
}

// SealString encrypts a string and encodes the result in URL-safe base64
// so it can live inside XML attributes and store keys.
func (k *Keyring) SealString(s string) (string, error) {
	sealed, err := k.Seal([]byte(s))
	if err != nil {
		return "", err
	}
	return base64.URLEncoding.EncodeToString(sealed), nil
}

// OpenString reverses SealString.
func (k *Keyring) OpenString(s string) (string, error) {
	sealed, err := base64.URLEncoding.DecodeString(s)
	if err != nil {
		return "", ErrDecrypt
	}
	pt, err := k.Open(sealed)
	if err != nil {
		return "", err
	}
	return string(pt), nil
}

// Pseudonym returns the deterministic keyed pseudonym of a person
// identifier: equal identifiers map to equal pseudonyms (enabling index
// lookups), while the identifier cannot be recovered without the key.
// The HMAC state is pooled and the digest staged on the stack: one
// pseudonym runs per indexed notification, and a fresh HMAC-SHA-256
// costs several allocations that Reset makes recoverable.
func (k *Keyring) Pseudonym(personID string) string {
	m := k.hmacPool.Get().(hash.Hash)
	m.Reset()
	m.Write([]byte(personID))
	var sum [sha256.Size]byte
	m.Sum(sum[:0])
	k.hmacPool.Put(m)
	var out [24]byte // base64 of 18 digest bytes
	base64.URLEncoding.Encode(out[:], sum[:18])
	return string(out[:])
}
