package crypto

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"
)

func testKeyring(t *testing.T) *Keyring {
	t.Helper()
	master := bytes.Repeat([]byte{7}, KeySize)
	k, err := NewKeyring(master)
	if err != nil {
		t.Fatalf("NewKeyring: %v", err)
	}
	return k
}

func TestNewKeyringRejectsBadKey(t *testing.T) {
	for _, n := range []int{0, 16, 31, 33, 64} {
		if _, err := NewKeyring(make([]byte, n)); err == nil {
			t.Errorf("NewKeyring accepted %d-byte key", n)
		}
	}
}

func TestNewRandomKeyring(t *testing.T) {
	k1, m1, err := NewRandomKeyring()
	if err != nil {
		t.Fatal(err)
	}
	k2, m2, err := NewRandomKeyring()
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(m1, m2) {
		t.Error("two random master keys are equal")
	}
	if k1.Pseudonym("x") == k2.Pseudonym("x") {
		t.Error("different keys give equal pseudonyms")
	}
	// The returned master key must reconstruct the same keyring.
	k1b, err := NewKeyring(m1)
	if err != nil {
		t.Fatal(err)
	}
	if k1.Pseudonym("x") != k1b.Pseudonym("x") {
		t.Error("keyring not reproducible from returned master key")
	}
}

func TestSealOpenRoundTrip(t *testing.T) {
	k := testKeyring(t)
	for _, msg := range []string{"", "a", "PRS-00042", strings.Repeat("long ", 100)} {
		sealed, err := k.Seal([]byte(msg))
		if err != nil {
			t.Fatalf("Seal(%q): %v", msg, err)
		}
		pt, err := k.Open(sealed)
		if err != nil {
			t.Fatalf("Open: %v", err)
		}
		if string(pt) != msg {
			t.Errorf("round trip = %q, want %q", pt, msg)
		}
	}
}

func TestSealIsRandomized(t *testing.T) {
	k := testKeyring(t)
	a, _ := k.Seal([]byte("same"))
	b, _ := k.Seal([]byte("same"))
	if bytes.Equal(a, b) {
		t.Error("two seals of the same plaintext are identical (nonce reuse?)")
	}
}

func TestOpenRejectsTampering(t *testing.T) {
	k := testKeyring(t)
	sealed, _ := k.Seal([]byte("secret"))
	for i := range sealed {
		mutated := append([]byte(nil), sealed...)
		mutated[i] ^= 0x01
		if _, err := k.Open(mutated); err == nil {
			t.Fatalf("Open accepted ciphertext with byte %d flipped", i)
		}
	}
	if _, err := k.Open(nil); err == nil {
		t.Error("Open accepted nil")
	}
	if _, err := k.Open([]byte("short")); err == nil {
		t.Error("Open accepted short input")
	}
}

func TestOpenRejectsOtherKey(t *testing.T) {
	k1 := testKeyring(t)
	k2, err := NewKeyring(bytes.Repeat([]byte{9}, KeySize))
	if err != nil {
		t.Fatal(err)
	}
	sealed, _ := k1.Seal([]byte("secret"))
	if _, err := k2.Open(sealed); err == nil {
		t.Error("Open under a different key succeeded")
	}
}

func TestSealStringRoundTrip(t *testing.T) {
	k := testKeyring(t)
	enc, err := k.SealString("PRS-0001")
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(enc, "PRS") {
		t.Error("sealed string leaks plaintext")
	}
	got, err := k.OpenString(enc)
	if err != nil || got != "PRS-0001" {
		t.Errorf("OpenString = %q, %v", got, err)
	}
	if _, err := k.OpenString("!!!not-base64!!!"); err == nil {
		t.Error("OpenString accepted non-base64 input")
	}
}

func TestPseudonymProperties(t *testing.T) {
	k := testKeyring(t)
	a := k.Pseudonym("PRS-0001")
	if a != k.Pseudonym("PRS-0001") {
		t.Error("pseudonym not deterministic")
	}
	if a == k.Pseudonym("PRS-0002") {
		t.Error("distinct ids collide")
	}
	if strings.Contains(a, "PRS") {
		t.Error("pseudonym leaks identifier")
	}
	if len(a) == 0 || len(a) > 32 {
		t.Errorf("pseudonym has unexpected length %d", len(a))
	}
}

func TestQuickSealOpenIdentity(t *testing.T) {
	k := testKeyring(t)
	f := func(msg []byte) bool {
		sealed, err := k.Seal(msg)
		if err != nil {
			return false
		}
		pt, err := k.Open(sealed)
		if err != nil {
			return false
		}
		return bytes.Equal(pt, msg)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestQuickPseudonymInjectiveOnSamples(t *testing.T) {
	k := testKeyring(t)
	seen := map[string]string{}
	f := func(id string) bool {
		p := k.Pseudonym(id)
		if prev, ok := seen[p]; ok && prev != id {
			return false // collision between distinct ids
		}
		seen[p] = id
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
