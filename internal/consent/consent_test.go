package consent

import (
	"path/filepath"
	"sync"
	"testing"

	"repro/internal/event"
	"repro/internal/store"
)

func openRegistry(t *testing.T, defaultAllow bool) *Registry {
	t.Helper()
	r, err := Open(store.OpenMemory(), defaultAllow)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestDefaultApplies(t *testing.T) {
	allow := openRegistry(t, true)
	if !allow.Allows("p1", "c.x", "consumer", "care") {
		t.Error("default-allow registry denied without directives")
	}
	deny := openRegistry(t, false)
	if deny.Allows("p1", "c.x", "consumer", "care") {
		t.Error("default-deny registry allowed without directives")
	}
}

func TestGlobalOptOut(t *testing.T) {
	r := openRegistry(t, true)
	if _, err := r.Record(Directive{PersonID: "p1", Allow: false}); err != nil {
		t.Fatal(err)
	}
	if r.Allows("p1", "c.x", "anyone", "any-purpose") {
		t.Error("global opt-out ignored")
	}
	if r.Allows("p1", "c.x", "anyone", "") {
		t.Error("global opt-out ignored for routing check")
	}
	if !r.Allows("p2", "c.x", "anyone", "care") {
		t.Error("opt-out leaked to another person")
	}
}

func TestClassScopedOptOut(t *testing.T) {
	r := openRegistry(t, true)
	r.Record(Directive{PersonID: "p1", Allow: false, Scope: Scope{Class: "hospital.blood-test"}})
	if r.Allows("p1", "hospital.blood-test", "x", "care") {
		t.Error("class opt-out ignored")
	}
	if !r.Allows("p1", "social.home-care-service", "x", "care") {
		t.Error("class opt-out over-applied")
	}
}

func TestConsumerScopedOptOutIsHierarchical(t *testing.T) {
	r := openRegistry(t, true)
	r.Record(Directive{PersonID: "p1", Allow: false, Scope: Scope{Consumer: "insurance-co"}})
	if r.Allows("p1", "c.x", "insurance-co", "") {
		t.Error("consumer opt-out ignored")
	}
	if r.Allows("p1", "c.x", "insurance-co/claims", "") {
		t.Error("consumer opt-out does not cover departments")
	}
	if !r.Allows("p1", "c.x", "family-doctor", "") {
		t.Error("consumer opt-out over-applied")
	}
}

func TestPurposeScopedDirectiveSkipsRouting(t *testing.T) {
	r := openRegistry(t, true)
	r.Record(Directive{PersonID: "p1", Allow: false, Scope: Scope{Purpose: "statistical-analysis"}})
	// Routing check (purpose ""): the purpose-scoped opt-out does not apply.
	if !r.Allows("p1", "c.x", "gov", "") {
		t.Error("purpose-scoped opt-out blocked routing")
	}
	// Detail request with that purpose: denied.
	if r.Allows("p1", "c.x", "gov", "statistical-analysis") {
		t.Error("purpose-scoped opt-out ignored on detail request")
	}
	if !r.Allows("p1", "c.x", "gov", "healthcare-treatment") {
		t.Error("purpose-scoped opt-out over-applied")
	}
}

func TestMostSpecificWins(t *testing.T) {
	r := openRegistry(t, true)
	// Global opt-out, but opt back in for the family doctor on home care.
	r.Record(Directive{PersonID: "p1", Allow: false})
	r.Record(Directive{PersonID: "p1", Allow: true,
		Scope: Scope{Class: "social.home-care-service", Consumer: "family-doctor"}})
	if !r.Allows("p1", "social.home-care-service", "family-doctor", "care") {
		t.Error("specific opt-in lost to global opt-out")
	}
	if r.Allows("p1", "hospital.blood-test", "family-doctor", "care") {
		t.Error("global opt-out ignored outside the specific opt-in")
	}
	if r.Allows("p1", "social.home-care-service", "insurance-co", "care") {
		t.Error("opt-in leaked to other consumer")
	}
}

func TestLatestWinsOnEqualSpecificity(t *testing.T) {
	r := openRegistry(t, true)
	r.Record(Directive{PersonID: "p1", Allow: false, Scope: Scope{Class: "c.x"}})
	r.Record(Directive{PersonID: "p1", Allow: true, Scope: Scope{Class: "c.x"}})
	if !r.Allows("p1", "c.x", "any", "any") {
		t.Error("newer directive did not supersede older one")
	}
	r.Record(Directive{PersonID: "p1", Allow: false, Scope: Scope{Class: "c.x"}})
	if r.Allows("p1", "c.x", "any", "any") {
		t.Error("third directive did not supersede")
	}
}

func TestRecordValidation(t *testing.T) {
	r := openRegistry(t, true)
	if _, err := r.Record(Directive{}); err == nil {
		t.Error("directive without person accepted")
	}
	if _, err := r.Record(Directive{PersonID: "p", Scope: Scope{Class: "Bad Class"}}); err == nil {
		t.Error("bad class accepted")
	}
	if _, err := r.Record(Directive{PersonID: "p", Scope: Scope{Consumer: "a//b"}}); err == nil {
		t.Error("bad consumer accepted")
	}
	d, err := r.Record(Directive{PersonID: "p", Allow: true})
	if err != nil {
		t.Fatal(err)
	}
	if d.Seq == 0 || d.RecordedAt.IsZero() {
		t.Errorf("Record did not assign seq/time: %+v", d)
	}
}

func TestDirectivesAndLen(t *testing.T) {
	r := openRegistry(t, true)
	r.Record(Directive{PersonID: "p1", Allow: false})
	r.Record(Directive{PersonID: "p1", Allow: true, Scope: Scope{Class: "c.x"}})
	r.Record(Directive{PersonID: "p2", Allow: false})
	if got := r.Directives("p1"); len(got) != 2 || got[0].Seq >= got[1].Seq {
		t.Errorf("Directives(p1) = %+v", got)
	}
	if r.Len() != 3 {
		t.Errorf("Len = %d", r.Len())
	}
}

func TestDurability(t *testing.T) {
	path := filepath.Join(t.TempDir(), "consent.wal")
	st, err := store.Open(path, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	r, _ := Open(st, true)
	r.Record(Directive{PersonID: "p1", Allow: false, Scope: Scope{Consumer: "insurance-co"}})
	st.Close()

	st2, err := store.Open(path, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	r2, err := Open(st2, true)
	if err != nil {
		t.Fatal(err)
	}
	if r2.Allows("p1", "c.x", "insurance-co", "") {
		t.Error("opt-out lost after reopen")
	}
	// Seq must continue after recovery.
	d, _ := r2.Record(Directive{PersonID: "p1", Allow: true})
	if d.Seq != 2 {
		t.Errorf("Seq after recovery = %d, want 2", d.Seq)
	}
}

func TestConcurrent(t *testing.T) {
	r := openRegistry(t, true)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			person := "p"
			for i := 0; i < 50; i++ {
				if _, err := r.Record(Directive{PersonID: person, Allow: i%2 == 0,
					Scope: Scope{Class: event.ClassID("c.x")}}); err != nil {
					t.Errorf("Record: %v", err)
					return
				}
				r.Allows(person, "c.x", "consumer", "care")
			}
		}(g)
	}
	wg.Wait()
	if r.Len() != 400 {
		t.Errorf("Len = %d", r.Len())
	}
}
