package consent

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/event"
	"repro/internal/store"
)

// referenceAllows reimplements the consent decision naively: iterate all
// directives, keep those applicable, pick max (specificity, seq).
func referenceAllows(directives []Directive, defaultAllow bool, class event.ClassID, consumer event.Actor, purpose event.Purpose) bool {
	var best *Directive
	for i := range directives {
		d := directives[i]
		if d.Scope.Class != "" && d.Scope.Class != class {
			continue
		}
		if d.Scope.Consumer != "" && (consumer == "" || !d.Scope.Consumer.Contains(consumer)) {
			continue
		}
		if d.Scope.Purpose != "" && d.Scope.Purpose != purpose {
			continue
		}
		if best == nil {
			best = &directives[i]
			continue
		}
		ds, bs := d.Scope.specificity(), best.Scope.specificity()
		if ds > bs || (ds == bs && d.Seq > best.Seq) {
			best = &directives[i]
		}
	}
	if best == nil {
		return defaultAllow
	}
	return best.Allow
}

// TestQuickAllowsMatchesReference: the registry's decision equals the
// naive reference for random directive sets and random queries.
func TestQuickAllowsMatchesReference(t *testing.T) {
	classes := []event.ClassID{"", "c0.x", "c1.x"}
	consumers := []event.Actor{"", "org-a", "org-a/d1", "org-b"}
	purposes := []event.Purpose{"", "care", "stats"}

	f := func(seed int64) bool {
		rnd := rand.New(rand.NewSource(seed))
		defaultAllow := rnd.Intn(2) == 0
		r, err := Open(store.OpenMemory(), defaultAllow)
		if err != nil {
			return false
		}
		person := "P-1"
		var recorded []Directive
		for i := 0; i < rnd.Intn(10); i++ {
			d := Directive{
				PersonID: person,
				Allow:    rnd.Intn(2) == 0,
				Scope: Scope{
					Class:    classes[rnd.Intn(len(classes))],
					Consumer: consumers[rnd.Intn(len(consumers))],
					Purpose:  purposes[rnd.Intn(len(purposes))],
				},
			}
			stored, err := r.Record(d)
			if err != nil {
				return false
			}
			recorded = append(recorded, stored)
		}
		for i := 0; i < 20; i++ {
			class := event.ClassID(fmt.Sprintf("c%d.x", rnd.Intn(2)))
			consumer := consumers[1+rnd.Intn(len(consumers)-1)]
			purpose := purposes[rnd.Intn(len(purposes))]
			got := r.Allows(person, class, consumer, purpose)
			want := referenceAllows(recorded, defaultAllow, class, consumer, purpose)
			if got != want {
				t.Logf("seed %d: Allows(%s,%s,%s) = %v, reference %v; directives %+v",
					seed, class, consumer, purpose, got, want, recorded)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
