// Package consent implements citizen/patient consent collection at data
// source level (paper §1: "achieve patient/citizen empowerment by
// supporting consent collection at data source level (opt-in, opt-out
// options to share the events and their content)", and §7: "The system
// can be used also directly by the citizens to specify and control their
// consent on data exchanges").
//
// A directive is an opt-in (allow) or opt-out (deny) recorded by the data
// subject, scoped by event class, consumer and purpose — each scope field
// optionally left empty to mean "any". The most specific applicable
// directive wins; among equally specific ones, the most recent. With no
// applicable directive, the registry's default applies.
package consent

import (
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/event"
	"repro/internal/store"
)

// Scope delimits what a directive covers. Empty fields mean "any".
type Scope struct {
	// Class restricts the directive to one event class.
	Class event.ClassID `json:"class,omitempty"`
	// Consumer restricts it to one consumer subtree (hierarchical match).
	Consumer event.Actor `json:"consumer,omitempty"`
	// Purpose restricts it to one purpose of use. Purpose-scoped
	// directives apply only to detail requests, never to notification
	// routing (routing is purpose-agnostic).
	Purpose event.Purpose `json:"purpose,omitempty"`
}

// specificity counts the populated scope fields; deeper consumer paths do
// not increase it (class/consumer/purpose presence is what the citizen
// chose to pin down).
func (s Scope) specificity() int {
	n := 0
	if s.Class != "" {
		n++
	}
	if s.Consumer != "" {
		n++
	}
	if s.Purpose != "" {
		n++
	}
	return n
}

// Directive is one recorded consent decision.
type Directive struct {
	// Seq orders directives of the same person (assigned by Record).
	Seq uint64 `json:"seq"`
	// PersonID is the data subject.
	PersonID string `json:"personId"`
	// Allow is true for opt-in, false for opt-out.
	Allow bool `json:"allow"`
	// Scope delimits the decision.
	Scope Scope `json:"scope"`
	// RecordedAt is when the decision was collected.
	RecordedAt time.Time `json:"recordedAt"`
}

// matches reports whether the directive applies to the query. A
// zero-valued query field means "any" and only matches directives that
// also leave that field unscoped.
func (d *Directive) matches(class event.ClassID, consumer event.Actor, purpose event.Purpose) bool {
	if d.Scope.Class != "" && d.Scope.Class != class {
		return false
	}
	if d.Scope.Consumer != "" && (consumer == "" || !d.Scope.Consumer.Contains(consumer)) {
		return false
	}
	if d.Scope.Purpose != "" && d.Scope.Purpose != purpose {
		return false
	}
	return true
}

// Registry stores directives and answers consent checks. Safe for
// concurrent use; durable when backed by a persistent store.
type Registry struct {
	// DefaultAllow is the decision with no applicable directive. CSS
	// deployments default to true: joining the platform implies baseline
	// consent collected on paper, with opt-outs recorded electronically.
	defaultAllow bool

	mu   sync.RWMutex
	st   *store.Store
	byID map[string][]*Directive // personID → directives in seq order
	seq  uint64
}

// Open creates a registry on st, recovering persisted directives. Keys
// use the "d/" prefix.
func Open(st *store.Store, defaultAllow bool) (*Registry, error) {
	r := &Registry{defaultAllow: defaultAllow, st: st, byID: make(map[string][]*Directive)}
	var derr error
	err := st.AscendPrefix("d/", func(k string, v []byte) bool {
		var d Directive
		if err := json.Unmarshal(v, &d); err != nil {
			derr = fmt.Errorf("consent: corrupt directive %s: %w", k, err)
			return false
		}
		r.byID[d.PersonID] = append(r.byID[d.PersonID], &d)
		if d.Seq > r.seq {
			r.seq = d.Seq
		}
		return true
	})
	if err != nil {
		return nil, err
	}
	if derr != nil {
		return nil, derr
	}
	return r, nil
}

// Reload replaces the in-memory view with a fresh scan of the persisted
// directives. A read replica calls this after its replication follower
// applies a consent write, so directives recorded on the primary govern
// the replica's filtering without a restart.
func (r *Registry) Reload() error {
	byID := make(map[string][]*Directive)
	var seq uint64
	var derr error
	err := r.st.AscendPrefix("d/", func(k string, v []byte) bool {
		var d Directive
		if err := json.Unmarshal(v, &d); err != nil {
			derr = fmt.Errorf("consent: corrupt directive %s: %w", k, err)
			return false
		}
		byID[d.PersonID] = append(byID[d.PersonID], &d)
		if d.Seq > seq {
			seq = d.Seq
		}
		return true
	})
	if err != nil {
		return err
	}
	if derr != nil {
		return derr
	}
	r.mu.Lock()
	r.byID = byID
	r.seq = seq
	r.mu.Unlock()
	return nil
}

// Record stores a directive. Seq and RecordedAt are assigned if unset.
func (r *Registry) Record(d Directive) (Directive, error) {
	if d.PersonID == "" {
		return Directive{}, errors.New("consent: directive without person id")
	}
	if d.Scope.Class != "" {
		if err := d.Scope.Class.Validate(); err != nil {
			return Directive{}, fmt.Errorf("consent: %w", err)
		}
	}
	if d.Scope.Consumer != "" {
		if err := d.Scope.Consumer.Validate(); err != nil {
			return Directive{}, fmt.Errorf("consent: %w", err)
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.seq++
	d.Seq = r.seq
	if d.RecordedAt.IsZero() {
		d.RecordedAt = time.Now()
	}
	data, err := json.Marshal(&d)
	if err != nil {
		return Directive{}, fmt.Errorf("consent: encode: %w", err)
	}
	if err := r.st.Put(fmt.Sprintf("d/%020d", d.Seq), data); err != nil {
		return Directive{}, err
	}
	stored := d
	r.byID[d.PersonID] = append(r.byID[d.PersonID], &stored)
	return stored, nil
}

// Allows answers a consent check: may data about person flow to consumer
// for the given class and purpose? Pass purpose "" for notification
// routing (purpose-agnostic). The most specific applicable directive
// wins; ties go to the most recently recorded one; with none, the
// registry default applies.
func (r *Registry) Allows(personID string, class event.ClassID, consumer event.Actor, purpose event.Purpose) bool {
	r.mu.RLock()
	defer r.mu.RUnlock()
	var best *Directive
	for _, d := range r.byID[personID] {
		if !d.matches(class, consumer, purpose) {
			continue
		}
		if best == nil {
			best = d
			continue
		}
		ds, bs := d.Scope.specificity(), best.Scope.specificity()
		if ds > bs || (ds == bs && d.Seq > best.Seq) {
			best = d
		}
	}
	if best == nil {
		return r.defaultAllow
	}
	return best.Allow
}

// Directives returns the directives of a person in record order.
func (r *Registry) Directives(personID string) []Directive {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]Directive, 0, len(r.byID[personID]))
	for _, d := range r.byID[personID] {
		out = append(out, *d)
	}
	return out
}

// Len returns the total number of directives.
func (r *Registry) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	n := 0
	for _, ds := range r.byID {
		n += len(ds)
	}
	return n
}
