package bus

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

const flushTimeout = 5 * time.Second

// collector is a handler that records delivered bodies.
type collector struct {
	mu   sync.Mutex
	msgs []*Message
}

func (c *collector) handle(m *Message) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.msgs = append(c.msgs, m)
	return nil
}

func (c *collector) count() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.msgs)
}

func (c *collector) bodies() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]string, len(c.msgs))
	for i, m := range c.msgs {
		out[i] = string(m.Body)
	}
	return out
}

func TestPublishDeliversToSubscriber(t *testing.T) {
	b := New(Options{})
	defer b.Close()
	var c collector
	if _, err := b.Subscribe("t1", "sub", c.handle); err != nil {
		t.Fatalf("Subscribe: %v", err)
	}
	seq, err := b.Publish("t1", []byte("hello"))
	if err != nil || seq == 0 {
		t.Fatalf("Publish = %d, %v", seq, err)
	}
	if !b.Flush(flushTimeout) {
		t.Fatal("Flush timed out")
	}
	if c.count() != 1 || c.bodies()[0] != "hello" {
		t.Errorf("delivered = %v", c.bodies())
	}
	st := b.Stats()
	if st.Published != 1 || st.Delivered != 1 || st.DeadLetters != 0 {
		t.Errorf("stats = %+v", st)
	}
}

func TestTopicIsolation(t *testing.T) {
	b := New(Options{})
	defer b.Close()
	var c1, c2 collector
	b.Subscribe("a", "s", c1.handle)
	b.Subscribe("b", "s", c2.handle)
	b.Publish("a", []byte("for-a"))
	b.Flush(flushTimeout)
	if c1.count() != 1 || c2.count() != 0 {
		t.Errorf("topic leak: a=%d b=%d", c1.count(), c2.count())
	}
}

func TestFanOut(t *testing.T) {
	b := New(Options{})
	defer b.Close()
	const subs = 16
	cols := make([]collector, subs)
	for i := range cols {
		if _, err := b.Subscribe("t", fmt.Sprintf("s%d", i), cols[i].handle); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 10; i++ {
		b.Publish("t", []byte{byte(i)})
	}
	if !b.Flush(flushTimeout) {
		t.Fatal("Flush timed out")
	}
	for i := range cols {
		if cols[i].count() != 10 {
			t.Errorf("subscriber %d received %d messages, want 10", i, cols[i].count())
		}
	}
}

func TestPerSubscriptionOrdering(t *testing.T) {
	b := New(Options{})
	defer b.Close()
	var c collector
	b.Subscribe("t", "s", c.handle)
	const n = 500
	for i := 0; i < n; i++ {
		b.Publish("t", []byte(fmt.Sprintf("%05d", i)))
	}
	if !b.Flush(flushTimeout) {
		t.Fatal("Flush timed out")
	}
	got := c.bodies()
	if len(got) != n {
		t.Fatalf("received %d, want %d", len(got), n)
	}
	for i := 1; i < n; i++ {
		if got[i] <= got[i-1] {
			t.Fatalf("out of order at %d: %q after %q", i, got[i], got[i-1])
		}
	}
}

func TestRetryThenSuccess(t *testing.T) {
	b := New(Options{MaxAttempts: 3, RetryBackoff: time.Microsecond})
	defer b.Close()
	var calls atomic.Int32
	b.Subscribe("t", "flaky", func(m *Message) error {
		if calls.Add(1) < 3 {
			return errors.New("transient")
		}
		if m.Attempt != 3 {
			t.Errorf("Attempt = %d, want 3", m.Attempt)
		}
		return nil
	})
	b.Publish("t", []byte("x"))
	if !b.Flush(flushTimeout) {
		t.Fatal("Flush timed out")
	}
	if calls.Load() != 3 {
		t.Errorf("handler called %d times, want 3", calls.Load())
	}
	st := b.Stats()
	if st.Delivered != 1 || st.Redelivered != 2 || st.DeadLetters != 0 {
		t.Errorf("stats = %+v", st)
	}
}

func TestDeadLetterAfterExhaustion(t *testing.T) {
	b := New(Options{MaxAttempts: 2, RetryBackoff: time.Microsecond})
	defer b.Close()
	sub, _ := b.Subscribe("t", "angry", func(m *Message) error {
		return errors.New("always fails")
	})
	b.Publish("t", []byte("poison"))
	b.Publish("t", []byte("fine-too")) // also poisoned by this handler
	if !b.Flush(flushTimeout) {
		t.Fatal("Flush timed out")
	}
	dls := sub.DeadLetters()
	if len(dls) != 2 {
		t.Fatalf("dead letters = %d, want 2", len(dls))
	}
	if string(dls[0].Body) != "poison" {
		t.Errorf("dead letter body = %q", dls[0].Body)
	}
	if st := b.Stats(); st.DeadLetters != 2 || st.Delivered != 0 {
		t.Errorf("stats = %+v", st)
	}
}

func TestHandlerPanicIsContained(t *testing.T) {
	b := New(Options{MaxAttempts: 2, RetryBackoff: time.Microsecond})
	defer b.Close()
	var c collector
	sub, _ := b.Subscribe("t", "panicky", func(m *Message) error {
		if string(m.Body) == "boom" {
			panic("kaboom")
		}
		return c.handle(m)
	})
	b.Publish("t", []byte("boom"))
	b.Publish("t", []byte("ok"))
	if !b.Flush(flushTimeout) {
		t.Fatal("Flush timed out")
	}
	if c.count() != 1 {
		t.Errorf("survivor message not delivered after panic: %d", c.count())
	}
	if len(sub.DeadLetters()) != 1 {
		t.Errorf("panicking message not dead-lettered")
	}
}

func TestUnsubscribeStopsDelivery(t *testing.T) {
	b := New(Options{})
	defer b.Close()
	var c collector
	b.Subscribe("t", "s", c.handle)
	b.Publish("t", []byte("1"))
	b.Flush(flushTimeout)
	if err := b.Unsubscribe("t", "s"); err != nil {
		t.Fatalf("Unsubscribe: %v", err)
	}
	b.Publish("t", []byte("2"))
	b.Flush(flushTimeout)
	if c.count() != 1 {
		t.Errorf("received %d after unsubscribe, want 1", c.count())
	}
	if err := b.Unsubscribe("t", "s"); err == nil {
		t.Error("second Unsubscribe succeeded")
	}
}

func TestSubscribeValidation(t *testing.T) {
	b := New(Options{})
	defer b.Close()
	if _, err := b.Subscribe("", "s", func(*Message) error { return nil }); err == nil {
		t.Error("empty topic accepted")
	}
	if _, err := b.Subscribe("t", "", func(*Message) error { return nil }); err == nil {
		t.Error("empty name accepted")
	}
	if _, err := b.Subscribe("t", "s", nil); err == nil {
		t.Error("nil handler accepted")
	}
	if _, err := b.Subscribe("t", "s", func(*Message) error { return nil }); err != nil {
		t.Errorf("valid subscribe failed: %v", err)
	}
	if _, err := b.Subscribe("t", "s", func(*Message) error { return nil }); err == nil {
		t.Error("duplicate subscription accepted")
	}
	if _, err := b.Publish("", nil); err == nil {
		t.Error("empty topic publish accepted")
	}
}

func TestSubscriptionsListing(t *testing.T) {
	b := New(Options{})
	defer b.Close()
	h := func(*Message) error { return nil }
	b.Subscribe("t", "a", h)
	b.Subscribe("t", "b", h)
	names := b.Subscriptions("t")
	if len(names) != 2 {
		t.Errorf("Subscriptions = %v", names)
	}
	if got := b.Subscriptions("empty-topic"); len(got) != 0 {
		t.Errorf("Subscriptions(empty) = %v", got)
	}
}

func TestPublishToTopicWithoutSubscribers(t *testing.T) {
	b := New(Options{})
	defer b.Close()
	if _, err := b.Publish("nobody-listens", []byte("x")); err != nil {
		t.Errorf("Publish without subscribers = %v", err)
	}
	if st := b.Stats(); st.Published != 1 {
		t.Errorf("Published = %d", st.Published)
	}
}

func TestClosedBroker(t *testing.T) {
	b := New(Options{})
	var c collector
	sub, _ := b.Subscribe("t", "s", c.handle)
	b.Publish("t", []byte("pre-close"))
	b.Flush(flushTimeout)
	b.Close()
	b.Close() // idempotent
	if _, err := b.Publish("t", nil); err != ErrClosed {
		t.Errorf("Publish after Close = %v", err)
	}
	if _, err := b.Subscribe("t", "s2", c.handle); err != ErrClosed {
		t.Errorf("Subscribe after Close = %v", err)
	}
	if c.count() != 1 {
		t.Errorf("pre-close message lost: %d", c.count())
	}
	_ = sub
}

func TestSubscriptionAccessors(t *testing.T) {
	b := New(Options{})
	defer b.Close()
	block := make(chan struct{})
	sub, _ := b.Subscribe("topic-x", "name-y", func(*Message) error {
		<-block
		return nil
	})
	if sub.Topic() != "topic-x" || sub.Name() != "name-y" {
		t.Errorf("accessors: %s/%s", sub.Topic(), sub.Name())
	}
	for i := 0; i < 5; i++ {
		b.Publish("topic-x", []byte("m"))
	}
	// One message in flight, some pending.
	deadline := time.Now().Add(flushTimeout)
	for sub.Pending() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if p := sub.Pending(); p == 0 {
		t.Error("Pending never became non-zero while handler blocked")
	}
	close(block)
	if !b.Flush(flushTimeout) {
		t.Fatal("Flush timed out")
	}
	if sub.Pending() != 0 {
		t.Errorf("Pending after flush = %d", sub.Pending())
	}
}

func TestConcurrentPublishers(t *testing.T) {
	b := New(Options{})
	defer b.Close()
	var c collector
	b.Subscribe("t", "s", c.handle)
	var wg sync.WaitGroup
	const pubs, per = 8, 100
	for p := 0; p < pubs; p++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				if _, err := b.Publish("t", []byte("m")); err != nil {
					t.Errorf("Publish: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if !b.Flush(flushTimeout) {
		t.Fatal("Flush timed out")
	}
	if c.count() != pubs*per {
		t.Errorf("delivered %d, want %d", c.count(), pubs*per)
	}
	// Sequence numbers must be unique and monotonic per publish.
	if st := b.Stats(); st.Published != pubs*per {
		t.Errorf("Published = %d", st.Published)
	}
}

func TestFlushTimesOutOnStuckHandler(t *testing.T) {
	b := New(Options{})
	defer b.Close()
	release := make(chan struct{})
	b.Subscribe("t", "stuck", func(*Message) error {
		<-release
		return nil
	})
	b.Publish("t", []byte("x"))
	if b.Flush(10 * time.Millisecond) {
		t.Error("Flush reported drained while handler stuck")
	}
	close(release)
	if !b.Flush(flushTimeout) {
		t.Error("Flush failed after release")
	}
}

func TestRedrive(t *testing.T) {
	b := New(Options{MaxAttempts: 1})
	defer b.Close()
	var c collector
	broken := true
	sub, _ := b.Subscribe("t", "s", func(m *Message) error {
		if broken {
			return errors.New("consumer down")
		}
		return c.handle(m)
	})
	b.Publish("t", []byte("m1"))
	b.Publish("t", []byte("m2"))
	if !b.Flush(flushTimeout) {
		t.Fatal("Flush timed out")
	}
	if len(sub.DeadLetters()) != 2 {
		t.Fatalf("dead letters = %d", len(sub.DeadLetters()))
	}
	// Operator fixes the consumer and redrives.
	broken = false
	if n := sub.Redrive(); n != 2 {
		t.Fatalf("Redrive = %d", n)
	}
	if !b.Flush(flushTimeout) {
		t.Fatal("Flush timed out after redrive")
	}
	if c.count() != 2 {
		t.Errorf("redelivered %d, want 2", c.count())
	}
	if len(sub.DeadLetters()) != 0 {
		t.Errorf("dead letters after redrive = %d", len(sub.DeadLetters()))
	}
	got := c.bodies()
	if got[0] != "m1" || got[1] != "m2" {
		t.Errorf("redrive order = %v", got)
	}
	// Redrive with an empty DLQ is a no-op.
	if n := sub.Redrive(); n != 0 {
		t.Errorf("empty Redrive = %d", n)
	}
}

func TestMaxPendingOverflowsToDLQ(t *testing.T) {
	b := New(Options{MaxPending: 3})
	defer b.Close()
	release := make(chan struct{})
	var c collector
	sub, _ := b.Subscribe("t", "slow", func(m *Message) error {
		<-release
		return c.handle(m)
	})
	// One message goes in flight, three queue, the rest overflow.
	const published = 10
	for i := 0; i < published; i++ {
		b.Publish("t", []byte(fmt.Sprintf("m%02d", i)))
	}
	deadline := time.Now().Add(flushTimeout)
	for b.Stats().Overflowed == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	close(release)
	if !b.Flush(flushTimeout) {
		t.Fatal("Flush timed out")
	}
	st := b.Stats()
	if st.Overflowed == 0 {
		t.Fatal("no overflow recorded")
	}
	if st.Delivered+st.Overflowed != published {
		t.Errorf("delivered %d + overflowed %d != %d", st.Delivered, st.Overflowed, published)
	}
	// The overflowed messages are recoverable.
	if n := sub.Redrive(); uint64(n) != st.Overflowed {
		t.Errorf("Redrive = %d, want %d", n, st.Overflowed)
	}
	if !b.Flush(flushTimeout) {
		t.Fatal("Flush after redrive timed out")
	}
	if c.count() != published {
		t.Errorf("total delivered after redrive = %d, want %d", c.count(), published)
	}
}

// TestPublishPayloadSharedAcrossSubscriptions: the decoded payload fans
// out by reference — every subscription of the topic sees the very same
// value, and plain Publish leaves it nil.
func TestPublishPayloadSharedAcrossSubscriptions(t *testing.T) {
	b := New(Options{})
	defer b.Close()
	type decoded struct{ ID string }
	cols := make([]*collector, 3)
	for i := range cols {
		cols[i] = &collector{}
		if _, err := b.Subscribe("t", fmt.Sprintf("s%d", i), cols[i].handle); err != nil {
			t.Fatal(err)
		}
	}
	want := &decoded{ID: "evt-1"}
	if _, err := b.PublishPayload("t", []byte("<wire/>"), want); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Publish("t", []byte("<bare/>")); err != nil {
		t.Fatal(err)
	}
	if !b.Flush(flushTimeout) {
		t.Fatal("broker did not drain")
	}
	for i, c := range cols {
		c.mu.Lock()
		if len(c.msgs) != 2 {
			t.Fatalf("sub %d got %d messages, want 2", i, len(c.msgs))
		}
		if got, ok := c.msgs[0].Payload.(*decoded); !ok || got != want {
			t.Errorf("sub %d payload = %v, want the shared instance", i, c.msgs[0].Payload)
		}
		if c.msgs[1].Payload != nil {
			t.Errorf("sub %d: plain Publish carried payload %v", i, c.msgs[1].Payload)
		}
		c.mu.Unlock()
	}
}

func TestFlushContextNamesWedgedHandler(t *testing.T) {
	b := New(Options{})
	defer b.Close()
	release := make(chan struct{})
	b.Subscribe("labs", "slow-consumer", func(*Message) error {
		<-release
		return nil
	})
	b.Publish("labs", []byte("x"))
	b.Publish("labs", []byte("y"))

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	err := b.FlushContext(ctx)
	if err == nil {
		t.Fatal("FlushContext returned nil while a handler was wedged")
	}
	// The error must say who is stuck, not just that something timed out.
	for _, want := range []string{"labs/slow-consumer", "in flight"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("FlushContext error %q does not mention %q", err, want)
		}
	}

	close(release)
	if err := b.FlushContext(context.Background()); err != nil {
		t.Fatalf("FlushContext after release: %v", err)
	}
}

func TestFlushContextCancel(t *testing.T) {
	b := New(Options{})
	defer b.Close()
	release := make(chan struct{})
	defer close(release)
	b.Subscribe("t", "stuck", func(*Message) error {
		<-release
		return nil
	})
	b.Publish("t", []byte("x"))

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- b.FlushContext(ctx) }()
	cancel()
	select {
	case err := <-done:
		if !errors.Is(ctx.Err(), context.Canceled) || err == nil {
			t.Fatalf("FlushContext after cancel = %v", err)
		}
	case <-time.After(flushTimeout):
		t.Fatal("FlushContext did not return after cancel")
	}
}

func TestFlushContextEmptyBus(t *testing.T) {
	b := New(Options{})
	defer b.Close()
	if err := b.FlushContext(context.Background()); err != nil {
		t.Fatalf("FlushContext on idle bus: %v", err)
	}
}
