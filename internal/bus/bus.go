// Package bus implements the event distribution fabric of the CSS
// platform — the role played by the ServiceMix enterprise service bus in
// the paper's deployment. It is a topic-based publish/subscribe broker
// with named (durable) subscriptions, at-least-once delivery, bounded
// retries with backoff, and a dead-letter queue per subscription.
//
// Publishers never block: each subscription owns an unbounded FIFO queue
// drained by a dedicated delivery goroutine, so a slow consumer delays
// only itself (the decoupling property that motivates EDA over
// point-to-point SOA in §3 of the paper).
package bus

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Message is one unit of distribution: an opaque body published to a
// topic. The CSS controller publishes XML-encoded notification messages.
type Message struct {
	// Topic the message was published to.
	Topic string
	// Seq is the broker-assigned, per-broker monotonic sequence number.
	Seq uint64
	// Body is the payload.
	Body []byte
	// Payload optionally carries the publisher's already-decoded form of
	// Body (see PublishPayload). All subscriptions of the topic receive
	// the same Payload value, so it must be treated as immutable.
	Payload any
	// PublishedAt is when the broker accepted the message.
	PublishedAt time.Time
	// Attempt is the 1-based delivery attempt number, visible to handlers.
	Attempt int
}

// Handler consumes a delivered message. Returning an error triggers a
// redelivery (at-least-once semantics) until MaxAttempts is exhausted,
// after which the message moves to the subscription's dead-letter queue.
type Handler func(m *Message) error

// ErrClosed is returned when operating on a closed broker.
var ErrClosed = errors.New("bus: broker closed")

// Options configure a Broker.
type Options struct {
	// MaxAttempts bounds delivery attempts per message per subscription.
	// Zero means DefaultMaxAttempts.
	MaxAttempts int
	// RetryBackoff is the pause between redelivery attempts. Zero means
	// DefaultRetryBackoff.
	RetryBackoff time.Duration
	// MaxPending bounds each subscription's queue. When a queue is full
	// the newest message is diverted straight to the subscription's
	// dead-letter queue (publishers still never block; the overflow is
	// observable and redrivable). Zero means unbounded.
	MaxPending int
}

// Defaults for Options.
const (
	DefaultMaxAttempts  = 3
	DefaultRetryBackoff = time.Millisecond
)

// Broker routes published messages to the subscriptions of their topic.
type Broker struct {
	opts Options
	seq  atomic.Uint64

	mu     sync.RWMutex
	topics map[string]map[string]*Subscription // topic → name → sub
	closed bool

	published atomic.Uint64
	delivered atomic.Uint64
	redeliver atomic.Uint64
	dead      atomic.Uint64
	overflow  atomic.Uint64
}

// New creates a broker.
func New(opts Options) *Broker {
	if opts.MaxAttempts <= 0 {
		opts.MaxAttempts = DefaultMaxAttempts
	}
	if opts.RetryBackoff <= 0 {
		opts.RetryBackoff = DefaultRetryBackoff
	}
	return &Broker{opts: opts, topics: make(map[string]map[string]*Subscription)}
}

// Stats reports cumulative broker counters.
type Stats struct {
	Published   uint64 // messages accepted
	Delivered   uint64 // successful handler completions
	Redelivered uint64 // retry attempts after handler errors
	DeadLetters uint64 // messages exhausted and dead-lettered
	Overflowed  uint64 // messages diverted to DLQs by full queues
}

// Stats returns a snapshot of the broker counters.
func (b *Broker) Stats() Stats {
	return Stats{
		Published:   b.published.Load(),
		Delivered:   b.delivered.Load(),
		Redelivered: b.redeliver.Load(),
		DeadLetters: b.dead.Load(),
		Overflowed:  b.overflow.Load(),
	}
}

// Subscribe registers a named durable subscription on a topic. The name
// identifies the subscription for Unsubscribe and diagnostics; (topic,
// name) pairs must be unique. The handler runs on the subscription's own
// goroutine, one message at a time, in publish order.
func (b *Broker) Subscribe(topic, name string, h Handler) (*Subscription, error) {
	if topic == "" || name == "" {
		return nil, errors.New("bus: empty topic or subscription name")
	}
	if h == nil {
		return nil, errors.New("bus: nil handler")
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return nil, ErrClosed
	}
	subs := b.topics[topic]
	if subs == nil {
		subs = make(map[string]*Subscription)
		b.topics[topic] = subs
	}
	if _, dup := subs[name]; dup {
		return nil, fmt.Errorf("bus: subscription %q already exists on topic %q", name, topic)
	}
	s := &Subscription{
		broker:  b,
		topic:   topic,
		name:    name,
		handler: h,
		wake:    make(chan struct{}, 1),
		stop:    make(chan struct{}),
		done:    make(chan struct{}),
	}
	subs[name] = s
	go s.run()
	return s, nil
}

// Unsubscribe removes a subscription, stopping its delivery goroutine
// after the in-flight message (if any) completes. Pending undelivered
// messages are dropped.
func (b *Broker) Unsubscribe(topic, name string) error {
	b.mu.Lock()
	s := b.topics[topic][name]
	if s != nil {
		delete(b.topics[topic], name)
	}
	b.mu.Unlock()
	if s == nil {
		return fmt.Errorf("bus: no subscription %q on topic %q", name, topic)
	}
	s.shutdown()
	return nil
}

// Publish delivers body to every subscription of topic. It never blocks
// on consumers. The assigned sequence number is returned.
func (b *Broker) Publish(topic string, body []byte) (uint64, error) {
	return b.PublishPayload(topic, body, nil)
}

// PublishPayload is Publish with an already-decoded form of body riding
// along. The broker fans the one payload value out to every subscription
// of the topic without copying, so consumers can skip re-decoding the
// wire bytes; in exchange, everyone downstream must treat it as
// read-only. The body remains the authoritative wire representation
// (transports that re-encode or relay use it, not the payload).
func (b *Broker) PublishPayload(topic string, body []byte, payload any) (uint64, error) {
	if topic == "" {
		return 0, errors.New("bus: empty topic")
	}
	b.mu.RLock()
	if b.closed {
		b.mu.RUnlock()
		return 0, ErrClosed
	}
	seq := b.seq.Add(1)
	m := &Message{Topic: topic, Seq: seq, Body: body, Payload: payload, PublishedAt: time.Now()}
	for _, s := range b.topics[topic] {
		s.enqueue(m)
	}
	b.mu.RUnlock()
	b.published.Add(1)
	return seq, nil
}

// Subscriptions returns the subscription names currently registered on a
// topic, in unspecified order.
func (b *Broker) Subscriptions(topic string) []string {
	b.mu.RLock()
	defer b.mu.RUnlock()
	names := make([]string, 0, len(b.topics[topic]))
	for n := range b.topics[topic] {
		names = append(names, n)
	}
	return names
}

// Flush blocks until every subscription's queue is empty and no handler
// is running, or the timeout elapses. It reports whether the broker
// drained. Tests and graceful shutdown use it.
func (b *Broker) Flush(timeout time.Duration) bool {
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	return b.FlushContext(ctx) == nil
}

// FlushContext is Flush under a context: it blocks until the broker is
// drained or ctx is done. On abort it returns an error naming every
// wedged subscription (topic, name, queue depth, whether a handler is
// still in flight), so a hung drain in a test points at its culprit
// instead of a bare timeout.
//
// The poll interval backs off exponentially from 200µs to 5ms: a broker
// that drains quickly is noticed almost immediately, while a long drain
// does not pin a CPU busy-polling.
func (b *Broker) FlushContext(ctx context.Context) error {
	const (
		minPoll = 200 * time.Microsecond
		maxPoll = 5 * time.Millisecond
	)
	poll := minPoll
	for {
		if b.idle() {
			return nil
		}
		select {
		case <-ctx.Done():
			return fmt.Errorf("bus: flush aborted (%v): %s", ctx.Err(), b.busyReport())
		case <-time.After(poll):
		}
		if poll < maxPoll {
			poll *= 2
			if poll > maxPoll {
				poll = maxPoll
			}
		}
	}
}

// busyReport describes every non-idle subscription for flush failures.
func (b *Broker) busyReport() string {
	b.mu.RLock()
	defer b.mu.RUnlock()
	var sb strings.Builder
	n := 0
	for topic, subs := range b.topics {
		for name, s := range subs {
			queued, inFlight := s.busy()
			if queued == 0 && !inFlight {
				continue
			}
			if n > 0 {
				sb.WriteString("; ")
			}
			n++
			fmt.Fprintf(&sb, "%s/%s: %d queued", topic, name, queued)
			if inFlight {
				sb.WriteString(", handler in flight")
			}
		}
	}
	if n == 0 {
		return "no busy subscriptions (drained after the deadline)"
	}
	return sb.String()
}

func (b *Broker) idle() bool {
	b.mu.RLock()
	defer b.mu.RUnlock()
	for _, subs := range b.topics {
		for _, s := range subs {
			if !s.idle() {
				return false
			}
		}
	}
	return true
}

// Close stops all subscriptions and rejects further operations.
func (b *Broker) Close() {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return
	}
	b.closed = true
	var all []*Subscription
	for _, subs := range b.topics {
		for _, s := range subs {
			all = append(all, s)
		}
	}
	b.topics = make(map[string]map[string]*Subscription)
	b.mu.Unlock()
	for _, s := range all {
		s.shutdown()
	}
}
