// Package bus implements the event distribution fabric of the CSS
// platform — the role played by the ServiceMix enterprise service bus in
// the paper's deployment. It is a topic-based publish/subscribe broker
// with named (durable) subscriptions, at-least-once delivery, bounded
// retries with backoff, and a dead-letter queue per subscription.
//
// Each subscription owns a FIFO queue drained by a dedicated delivery
// goroutine, so a slow consumer delays only itself (the decoupling
// property that motivates EDA over point-to-point SOA in §3 of the
// paper). Queues are bounded by MaxPending with a configurable overflow
// policy — shed-newest / shed-oldest to the DLQ, reject, or
// block-with-deadline — and the dead-letter queue itself is capped
// (MaxDead) with an eviction counter, so neither a wedged consumer nor a
// poison one can grow broker memory without bound.
package bus

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Message is one unit of distribution: an opaque body published to a
// topic. The CSS controller publishes encoded notification messages.
//
// A topic's subscriptions all receive the same *Message on their first
// delivery attempt (retries get a private copy), so handlers must treat
// the whole message as read-only — the same contract Payload always
// had. Sharing the first attempt is what keeps the publish fan-out free
// of per-subscription allocations.
type Message struct {
	// Topic the message was published to.
	Topic string
	// Seq is the broker-assigned, per-broker monotonic sequence number.
	Seq uint64
	// Body is the payload.
	Body []byte
	// Payload optionally carries the publisher's already-decoded form of
	// Body (see PublishPayload). All subscriptions of the topic receive
	// the same Payload value, so it must be treated as immutable.
	Payload any
	// PublishedAt is when the broker accepted the message.
	PublishedAt time.Time
	// Attempt is the 1-based delivery attempt number, visible to handlers.
	Attempt int
	// SpanParent optionally carries the span ID of the publisher's
	// "bus.publish" span, so delivery-side spans parent under it and a
	// cross-goroutine trace stays one tree. The broker never interprets
	// it.
	SpanParent string
}

// Handler consumes a delivered message. Returning an error triggers a
// redelivery (at-least-once semantics) until MaxAttempts is exhausted,
// after which the message moves to the subscription's dead-letter queue.
type Handler func(m *Message) error

// ErrClosed is returned when operating on a closed broker.
var ErrClosed = errors.New("bus: broker closed")

// OverflowPolicy selects what a full subscription queue does with load.
type OverflowPolicy int

const (
	// ShedNewest diverts the arriving message to the DLQ (default). The
	// publisher never blocks; the overflow is observable and redrivable.
	ShedNewest OverflowPolicy = iota
	// ShedOldest evicts the head of the queue to the DLQ and enqueues
	// the arriving message: consumers prefer fresh notifications, the
	// displaced ones stay recoverable via Redrive or the events index.
	ShedOldest
	// Reject refuses the arriving message outright: nothing is queued or
	// dead-lettered for this subscription and Publish reports
	// ErrQueueFull (other subscriptions of the topic still received it).
	Reject
	// Block parks the publisher until the queue has space or
	// BlockTimeout elapses, then falls back to ShedNewest. Backpressure
	// for in-process publishers that prefer waiting over shedding.
	Block
)

// String names the policy for overflow observers.
func (p OverflowPolicy) String() string {
	switch p {
	case ShedOldest:
		return "shed-oldest"
	case Reject:
		return "reject"
	case Block:
		return "block"
	default:
		return "shed-newest"
	}
}

// Observer receives broker load signals. All callbacks must be fast and
// non-blocking (they run on publish and delivery paths); any field may
// be nil. The controller wires them to css_bus_* telemetry.
type Observer struct {
	// QueueDepth reports enqueue (+1) / dequeue (-1) transitions summed
	// over all subscriptions.
	QueueDepth func(delta int)
	// QueueHWM reports a new broker-wide queue-depth high-water mark.
	QueueHWM func(depth int)
	// Overflow reports one message diverted, evicted or rejected by a
	// full queue, labeled with the policy that applied.
	Overflow func(policy string)
	// DLQEvicted reports one dead letter dropped by the MaxDead cap.
	DLQEvicted func()
}

// Options configure a Broker.
type Options struct {
	// MaxAttempts bounds delivery attempts per message per subscription.
	// Zero means DefaultMaxAttempts.
	MaxAttempts int
	// RetryBackoff is the pause between redelivery attempts. Zero means
	// DefaultRetryBackoff.
	RetryBackoff time.Duration
	// MaxPending bounds each subscription's queue; Policy selects the
	// overflow behavior when it fills. Zero means unbounded.
	MaxPending int
	// Policy is the overflow policy of full queues (default ShedNewest).
	Policy OverflowPolicy
	// BlockTimeout bounds how long a Block-policy publish waits for
	// space. Zero means DefaultBlockTimeout.
	BlockTimeout time.Duration
	// MaxDead caps each subscription's dead-letter queue: when full, the
	// oldest dead letter is evicted (counted, not silently) to admit the
	// new one. Zero means DefaultMaxDead; negative means unbounded.
	MaxDead int
	// Observer receives load signals (queue depth, high-water marks,
	// overflow and DLQ evictions).
	Observer Observer
}

// Defaults for Options.
const (
	DefaultMaxAttempts  = 3
	DefaultRetryBackoff = time.Millisecond
	DefaultBlockTimeout = 50 * time.Millisecond
	DefaultMaxDead      = 4096
)

// ErrQueueFull is returned by Publish under the Reject policy when at
// least one subscription refused the message.
var ErrQueueFull = errors.New("bus: subscription queue full")

// Broker routes published messages to the subscriptions of their topic.
type Broker struct {
	opts Options
	seq  atomic.Uint64

	mu     sync.RWMutex
	topics map[string]map[string]*Subscription // topic → name → sub
	closed bool

	published atomic.Uint64
	delivered atomic.Uint64
	redeliver atomic.Uint64
	dead      atomic.Uint64
	overflow  atomic.Uint64
	rejected  atomic.Uint64
	dlqEvict  atomic.Uint64
	depth     atomic.Int64 // queued messages across all subscriptions
	depthHWM  atomic.Int64 // high-water mark of depth

	drainMu sync.Mutex
	drained []*Message // queued messages captured at Close
}

// New creates a broker.
func New(opts Options) *Broker {
	if opts.MaxAttempts <= 0 {
		opts.MaxAttempts = DefaultMaxAttempts
	}
	if opts.RetryBackoff <= 0 {
		opts.RetryBackoff = DefaultRetryBackoff
	}
	if opts.BlockTimeout <= 0 {
		opts.BlockTimeout = DefaultBlockTimeout
	}
	if opts.MaxDead == 0 {
		opts.MaxDead = DefaultMaxDead
	}
	return &Broker{opts: opts, topics: make(map[string]map[string]*Subscription)}
}

// Stats reports cumulative broker counters.
type Stats struct {
	Published   uint64 // messages accepted
	Delivered   uint64 // successful handler completions
	Redelivered uint64 // retry attempts after handler errors
	DeadLetters uint64 // messages exhausted and dead-lettered
	Overflowed  uint64 // messages diverted/evicted to DLQs by full queues
	Rejected    uint64 // messages refused by the Reject overflow policy
	DLQEvicted  uint64 // dead letters dropped by the MaxDead cap
	QueueDepth  int64  // currently queued messages, all subscriptions
	QueueHWM    int64  // high-water mark of QueueDepth
}

// Stats returns a snapshot of the broker counters.
func (b *Broker) Stats() Stats {
	return Stats{
		Published:   b.published.Load(),
		Delivered:   b.delivered.Load(),
		Redelivered: b.redeliver.Load(),
		DeadLetters: b.dead.Load(),
		Overflowed:  b.overflow.Load(),
		Rejected:    b.rejected.Load(),
		DLQEvicted:  b.dlqEvict.Load(),
		QueueDepth:  b.depth.Load(),
		QueueHWM:    b.depthHWM.Load(),
	}
}

// noteEnqueue updates the depth accounting (and its high-water mark) for
// one message entering a subscription queue.
func (b *Broker) noteEnqueue() {
	d := b.depth.Add(1)
	if fn := b.opts.Observer.QueueDepth; fn != nil {
		fn(1)
	}
	for {
		hwm := b.depthHWM.Load()
		if d <= hwm {
			return
		}
		if b.depthHWM.CompareAndSwap(hwm, d) {
			if fn := b.opts.Observer.QueueHWM; fn != nil {
				fn(int(d))
			}
			return
		}
	}
}

// noteDequeue is the counterpart of noteEnqueue.
func (b *Broker) noteDequeue(n int) {
	if n == 0 {
		return
	}
	b.depth.Add(int64(-n))
	if fn := b.opts.Observer.QueueDepth; fn != nil {
		fn(-n)
	}
}

// noteOverflow counts one message a full queue could not take normally.
func (b *Broker) noteOverflow(rejected bool) {
	if rejected {
		b.rejected.Add(1)
	} else {
		b.overflow.Add(1)
	}
	if fn := b.opts.Observer.Overflow; fn != nil {
		fn(b.opts.Policy.String())
	}
}

// Subscribe registers a named durable subscription on a topic. The name
// identifies the subscription for Unsubscribe and diagnostics; (topic,
// name) pairs must be unique. The handler runs on the subscription's own
// goroutine, one message at a time, in publish order.
func (b *Broker) Subscribe(topic, name string, h Handler) (*Subscription, error) {
	if topic == "" || name == "" {
		return nil, errors.New("bus: empty topic or subscription name")
	}
	if h == nil {
		return nil, errors.New("bus: nil handler")
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return nil, ErrClosed
	}
	subs := b.topics[topic]
	if subs == nil {
		subs = make(map[string]*Subscription)
		b.topics[topic] = subs
	}
	if _, dup := subs[name]; dup {
		return nil, fmt.Errorf("bus: subscription %q already exists on topic %q", name, topic)
	}
	s := &Subscription{
		broker:  b,
		topic:   topic,
		name:    name,
		handler: h,
		wake:    make(chan struct{}, 1),
		stop:    make(chan struct{}),
		done:    make(chan struct{}),
	}
	s.space = sync.NewCond(&s.qmu)
	subs[name] = s
	go s.run()
	return s, nil
}

// Unsubscribe removes a subscription, stopping its delivery goroutine
// after the in-flight message (if any) completes. Pending undelivered
// messages are dropped.
func (b *Broker) Unsubscribe(topic, name string) error {
	b.mu.Lock()
	s := b.topics[topic][name]
	if s != nil {
		delete(b.topics[topic], name)
	}
	b.mu.Unlock()
	if s == nil {
		return fmt.Errorf("bus: no subscription %q on topic %q", name, topic)
	}
	s.shutdown()
	return nil
}

// Publish delivers body to every subscription of topic. Only the Block
// overflow policy can make it wait on consumers (bounded by
// BlockTimeout); every other policy keeps publishers non-blocking. The
// assigned sequence number is returned.
func (b *Broker) Publish(topic string, body []byte) (uint64, error) {
	return b.PublishPayload(topic, body, nil)
}

// PublishPayload is Publish with an already-decoded form of body riding
// along. The broker fans the one payload value out to every subscription
// of the topic without copying, so consumers can skip re-decoding the
// wire bytes; in exchange, everyone downstream must treat it as
// read-only. The body remains the authoritative wire representation
// (transports that re-encode or relay use it, not the payload).
//
// Under the Reject overflow policy a full subscription refuses the
// message: the publish still reaches the topic's other subscriptions,
// the message is accepted (a sequence number is returned), and the error
// satisfies errors.Is(err, ErrQueueFull) so the publisher can slow down.
func (b *Broker) PublishPayload(topic string, body []byte, payload any) (uint64, error) {
	return b.PublishPayloadSpan(topic, body, payload, "")
}

// PublishPayloadSpan is PublishPayload with the publisher's span ID
// riding on the message (see Message.SpanParent).
func (b *Broker) PublishPayloadSpan(topic string, body []byte, payload any, spanParent string) (uint64, error) {
	if topic == "" {
		return 0, errors.New("bus: empty topic")
	}
	b.mu.RLock()
	if b.closed {
		b.mu.RUnlock()
		return 0, ErrClosed
	}
	seq := b.seq.Add(1)
	// Attempt is preset to 1 before the message becomes visible to any
	// delivery goroutine: first attempts then hand this shared message to
	// handlers as-is (no copy, no post-publish writes, no race).
	m := &Message{Topic: topic, Seq: seq, Body: body, Payload: payload, PublishedAt: time.Now(), Attempt: 1, SpanParent: spanParent}
	// Snapshot the fan-out set, then enqueue outside the broker lock: a
	// Block-policy enqueue may park until the consumer makes space, and
	// that wait must not hold up Subscribe/Close on the broker mutex.
	// The snapshot buffer is pooled — fan-out runs once per publish and
	// the slice never escapes this call.
	sp := fanoutPool.Get().(*[]*Subscription)
	subs := (*sp)[:0]
	for _, s := range b.topics[topic] {
		subs = append(subs, s)
	}
	b.mu.RUnlock()
	var rejected int
	for _, s := range subs {
		if !s.enqueue(m) {
			rejected++
		}
	}
	total := len(subs)
	clear(subs)
	*sp = subs[:0]
	fanoutPool.Put(sp)
	b.published.Add(1)
	if rejected > 0 {
		return seq, fmt.Errorf("%w: %d of %d subscriptions refused seq %d on %s",
			ErrQueueFull, rejected, total, seq, topic)
	}
	return seq, nil
}

// fanoutPool recycles the per-publish subscription snapshot buffers.
var fanoutPool = sync.Pool{New: func() any { s := make([]*Subscription, 0, 16); return &s }}

// Subscriptions returns the subscription names currently registered on a
// topic, in unspecified order.
func (b *Broker) Subscriptions(topic string) []string {
	b.mu.RLock()
	defer b.mu.RUnlock()
	names := make([]string, 0, len(b.topics[topic]))
	for n := range b.topics[topic] {
		names = append(names, n)
	}
	return names
}

// Flush blocks until every subscription's queue is empty and no handler
// is running, or the timeout elapses. It reports whether the broker
// drained. Tests and graceful shutdown use it.
func (b *Broker) Flush(timeout time.Duration) bool {
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	return b.FlushContext(ctx) == nil
}

// FlushContext is Flush under a context: it blocks until the broker is
// drained or ctx is done. On abort it returns an error naming every
// wedged subscription (topic, name, queue depth, whether a handler is
// still in flight), so a hung drain in a test points at its culprit
// instead of a bare timeout.
//
// The poll interval backs off exponentially from 200µs to 5ms: a broker
// that drains quickly is noticed almost immediately, while a long drain
// does not pin a CPU busy-polling.
func (b *Broker) FlushContext(ctx context.Context) error {
	const (
		minPoll = 200 * time.Microsecond
		maxPoll = 5 * time.Millisecond
	)
	poll := minPoll
	for {
		if b.idle() {
			return nil
		}
		select {
		case <-ctx.Done():
			return fmt.Errorf("bus: flush aborted (%v): %s", ctx.Err(), b.busyReport())
		case <-time.After(poll):
		}
		if poll < maxPoll {
			poll *= 2
			if poll > maxPoll {
				poll = maxPoll
			}
		}
	}
}

// busyReport describes every non-idle subscription for flush failures.
func (b *Broker) busyReport() string {
	b.mu.RLock()
	defer b.mu.RUnlock()
	var sb strings.Builder
	n := 0
	for topic, subs := range b.topics {
		for name, s := range subs {
			queued, inFlight := s.busy()
			if queued == 0 && !inFlight {
				continue
			}
			if n > 0 {
				sb.WriteString("; ")
			}
			n++
			fmt.Fprintf(&sb, "%s/%s: %d queued", topic, name, queued)
			if inFlight {
				sb.WriteString(", handler in flight")
			}
		}
	}
	if n == 0 {
		return "no busy subscriptions (drained after the deadline)"
	}
	return sb.String()
}

func (b *Broker) idle() bool {
	b.mu.RLock()
	defer b.mu.RUnlock()
	for _, subs := range b.topics {
		for _, s := range subs {
			if !s.idle() {
				return false
			}
		}
	}
	return true
}

// Close stops all subscriptions and rejects further operations. The
// in-flight delivery of each subscription completes; messages still
// queued are captured in the drain snapshot (DrainSnapshot) rather than
// silently dropped, so a graceful shutdown can account for them.
func (b *Broker) Close() {
	b.CloseContext(context.Background())
}

// CloseContext is Close bounded by a deadline: a subscription whose
// handler is wedged mid-delivery is abandoned once ctx expires instead
// of blocking shutdown forever (the process is exiting; the goroutine
// leaks into it deliberately). Queued messages are still captured in
// the drain snapshot either way. It returns the first timeout hit, nil
// when every subscription settled.
func (b *Broker) CloseContext(ctx context.Context) error {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return nil
	}
	b.closed = true
	var all []*Subscription
	for _, subs := range b.topics {
		for _, s := range subs {
			all = append(all, s)
		}
	}
	b.topics = make(map[string]map[string]*Subscription)
	b.mu.Unlock()
	var first error
	for _, s := range all {
		if err := s.shutdownContext(ctx); err != nil && first == nil {
			first = fmt.Errorf("bus: subscription %s on %s still delivering at close: %w", s.name, s.topic, err)
		}
		if rest := s.drainRemaining(); len(rest) > 0 {
			b.drainMu.Lock()
			b.drained = append(b.drained, rest...)
			b.drainMu.Unlock()
		}
	}
	return first
}

// DrainSnapshot returns the messages that were still queued (accepted
// but undelivered) when Close stopped their subscriptions. Shutdown
// sequences use it to log or persist what the drain deadline cut off.
func (b *Broker) DrainSnapshot() []*Message {
	b.drainMu.Lock()
	defer b.drainMu.Unlock()
	out := make([]*Message, len(b.drained))
	copy(out, b.drained)
	return out
}
