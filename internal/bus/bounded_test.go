package bus

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// gate is a handler that blocks deliveries until released, recording
// what got through.
type gate struct {
	c       collector
	release chan struct{}
	entered chan struct{} // closed once the first delivery is in the handler
	once    sync.Once
}

func newGate() *gate {
	return &gate{release: make(chan struct{}), entered: make(chan struct{})}
}

func (g *gate) handle(m *Message) error {
	g.once.Do(func() { close(g.entered) })
	<-g.release
	return g.c.handle(m)
}

// fillQueue publishes until one message is in flight and the queue holds
// exactly max messages, so the next publish must overflow.
func fillQueue(t *testing.T, b *Broker, sub *Subscription, g *gate, max int) {
	t.Helper()
	b.Publish("t", []byte("inflight"))
	select {
	case <-g.entered:
	case <-time.After(flushTimeout):
		t.Fatal("handler never entered")
	}
	for i := 0; i < max; i++ {
		b.Publish("t", []byte(fmt.Sprintf("q%02d", i)))
	}
	deadline := time.Now().Add(flushTimeout)
	for sub.Pending() < max && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if p := sub.Pending(); p != max {
		t.Fatalf("queue depth = %d, want %d", p, max)
	}
}

func TestShedOldestEvictsHead(t *testing.T) {
	b := New(Options{MaxPending: 2, Policy: ShedOldest})
	defer b.Close()
	g := newGate()
	sub, _ := b.Subscribe("t", "slow", g.handle)
	fillQueue(t, b, sub, g, 2) // in flight + [q00 q01]
	b.Publish("t", []byte("newest"))
	// q00 (the oldest queued) was displaced to the DLQ.
	dls := sub.DeadLetters()
	if len(dls) != 1 || string(dls[0].Body) != "q00" {
		t.Fatalf("DLQ after shed-oldest = %v", bodiesOf(dls))
	}
	close(g.release)
	if !b.Flush(flushTimeout) {
		t.Fatal("Flush timed out")
	}
	got := g.c.bodies()
	if len(got) != 3 || got[len(got)-1] != "newest" {
		t.Errorf("delivered = %v, want the fresh message last", got)
	}
	if st := b.Stats(); st.Overflowed != 1 {
		t.Errorf("Overflowed = %d", st.Overflowed)
	}
}

func TestRejectPolicyReturnsErrQueueFull(t *testing.T) {
	b := New(Options{MaxPending: 1, Policy: Reject})
	defer b.Close()
	g := newGate()
	var fast collector
	fastSub, _ := b.Subscribe("t", "fast", fast.handle)
	// The healthy subscription shares the broker's MaxPending bound, so
	// let it drain before each publish: only the wedged peer may reject.
	waitEmpty := func() {
		t.Helper()
		deadline := time.Now().Add(flushTimeout)
		for fastSub.Pending() > 0 && time.Now().Before(deadline) {
			time.Sleep(100 * time.Microsecond)
		}
		if p := fastSub.Pending(); p > 0 {
			t.Fatalf("healthy subscription never drained (%d pending)", p)
		}
	}
	sub, _ := b.Subscribe("t", "slow", g.handle)
	b.Publish("t", []byte("inflight"))
	<-g.entered
	waitEmpty()
	b.Publish("t", []byte("q00"))
	deadline := time.Now().Add(flushTimeout)
	for sub.Pending() < 1 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	waitEmpty()
	seq, err := b.Publish("t", []byte("extra"))
	if !errors.Is(err, ErrQueueFull) {
		t.Fatalf("Publish on full Reject queue = %v, want ErrQueueFull", err)
	}
	if seq == 0 {
		t.Fatal("rejected publish lost its sequence number")
	}
	// The rejecting subscription holds nothing extra and nothing was
	// dead-lettered; the healthy subscription still received the message.
	if len(sub.DeadLetters()) != 0 {
		t.Errorf("Reject dead-lettered: %v", bodiesOf(sub.DeadLetters()))
	}
	close(g.release)
	if !b.Flush(flushTimeout) {
		t.Fatal("Flush timed out")
	}
	found := false
	for _, body := range fast.bodies() {
		if body == "extra" {
			found = true
		}
	}
	if !found {
		t.Error("healthy subscription missed the message a full peer rejected")
	}
	if st := b.Stats(); st.Rejected != 1 {
		t.Errorf("Rejected = %d", st.Rejected)
	}
}

func TestBlockPolicyWaitsForSpace(t *testing.T) {
	b := New(Options{MaxPending: 1, Policy: Block, BlockTimeout: flushTimeout})
	defer b.Close()
	g := newGate()
	b.Subscribe("t", "slow", g.handle)
	b.Publish("t", []byte("inflight"))
	<-g.entered
	b.Publish("t", []byte("queued"))
	done := make(chan struct{})
	go func() {
		// Queue is full: this publish parks until the consumer drains.
		b.Publish("t", []byte("parked"))
		close(done)
	}()
	select {
	case <-done:
		t.Fatal("Block publish returned while the queue was full")
	case <-time.After(20 * time.Millisecond):
	}
	close(g.release)
	select {
	case <-done:
	case <-time.After(flushTimeout):
		t.Fatal("Block publish never unparked after space opened")
	}
	if !b.Flush(flushTimeout) {
		t.Fatal("Flush timed out")
	}
	got := g.c.bodies()
	if len(got) != 3 {
		t.Errorf("delivered = %v, want all three (none shed)", got)
	}
	if st := b.Stats(); st.Overflowed != 0 {
		t.Errorf("Overflowed = %d under Block with space", st.Overflowed)
	}
}

func TestBlockPolicyTimeoutShedsNewest(t *testing.T) {
	b := New(Options{MaxPending: 1, Policy: Block, BlockTimeout: 10 * time.Millisecond})
	defer b.Close()
	g := newGate()
	sub, _ := b.Subscribe("t", "wedged", g.handle)
	fillQueue(t, b, sub, g, 1)
	start := time.Now()
	b.Publish("t", []byte("doomed")) // parks, times out, sheds
	if elapsed := time.Since(start); elapsed < 10*time.Millisecond {
		t.Errorf("Block publish returned after %v, before the timeout", elapsed)
	}
	dls := sub.DeadLetters()
	if len(dls) != 1 || string(dls[0].Body) != "doomed" {
		t.Fatalf("DLQ after Block timeout = %v", bodiesOf(dls))
	}
	close(g.release)
	b.Flush(flushTimeout)
}

func TestMaxDeadCapEvictsOldest(t *testing.T) {
	b := New(Options{MaxAttempts: 1, MaxDead: 2})
	var evicted atomic.Int64
	b.opts.Observer.DLQEvicted = func() { evicted.Add(1) }
	defer b.Close()
	sub, _ := b.Subscribe("t", "angry", func(*Message) error {
		return errors.New("always fails")
	})
	for i := 0; i < 5; i++ {
		b.Publish("t", []byte(fmt.Sprintf("m%d", i)))
	}
	if !b.Flush(flushTimeout) {
		t.Fatal("Flush timed out")
	}
	dls := sub.DeadLetters()
	if len(dls) != 2 {
		t.Fatalf("DLQ length = %d, want the MaxDead cap of 2", len(dls))
	}
	// The survivors are the newest dead letters.
	if string(dls[0].Body) != "m3" || string(dls[1].Body) != "m4" {
		t.Errorf("DLQ survivors = %v, want [m3 m4]", bodiesOf(dls))
	}
	if st := b.Stats(); st.DLQEvicted != 3 {
		t.Errorf("DLQEvicted = %d, want 3", st.DLQEvicted)
	}
	if evicted.Load() != 3 {
		t.Errorf("observer saw %d evictions, want 3", evicted.Load())
	}
}

func TestQueueDepthAndHighWaterMark(t *testing.T) {
	var depth atomic.Int64
	var hwm atomic.Int64
	b := New(Options{Observer: Observer{
		QueueDepth: func(d int) { depth.Add(int64(d)) },
		QueueHWM:   func(d int) { hwm.Store(int64(d)) },
	}})
	defer b.Close()
	g := newGate()
	b.Subscribe("t", "slow", g.handle)
	const n = 8
	for i := 0; i < n; i++ {
		b.Publish("t", []byte("m"))
	}
	deadline := time.Now().Add(flushTimeout)
	for b.Stats().QueueHWM < n-1 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if got := b.Stats().QueueHWM; got < n-1 {
		// One message may dequeue into the handler before the rest land.
		t.Errorf("QueueHWM = %d, want >= %d", got, n-1)
	}
	close(g.release)
	if !b.Flush(flushTimeout) {
		t.Fatal("Flush timed out")
	}
	if got := b.Stats().QueueDepth; got != 0 {
		t.Errorf("QueueDepth after drain = %d", got)
	}
	if depth.Load() != 0 {
		t.Errorf("observer depth sum = %d after drain, want 0", depth.Load())
	}
	if hwm.Load() < n-1 {
		t.Errorf("observer HWM = %d, want >= %d", hwm.Load(), n-1)
	}
}

// TestCloseCapturesQueuedMessages: Close lets the in-flight delivery
// complete, and everything still queued lands in the drain snapshot
// instead of vanishing.
func TestCloseCapturesQueuedMessages(t *testing.T) {
	b := New(Options{})
	g := newGate()
	b.Subscribe("t", "slow", g.handle)
	b.Publish("t", []byte("inflight"))
	<-g.entered
	const queued = 5
	for i := 0; i < queued; i++ {
		b.Publish("t", []byte(fmt.Sprintf("q%d", i)))
	}
	closed := make(chan struct{})
	go func() {
		b.Close() // blocks on the in-flight handler
		close(closed)
	}()
	select {
	case <-closed:
		t.Fatal("Close returned while a delivery was in flight")
	case <-time.After(20 * time.Millisecond):
	}
	close(g.release)
	select {
	case <-closed:
	case <-time.After(flushTimeout):
		t.Fatal("Close never returned after the handler finished")
	}
	if got := g.c.count(); got != 1 {
		t.Errorf("in-flight deliveries completed = %d, want 1", got)
	}
	snap := b.DrainSnapshot()
	if len(snap) != queued {
		t.Fatalf("DrainSnapshot = %v, want %d messages", bodiesOf(snap), queued)
	}
	for i, m := range snap {
		if want := fmt.Sprintf("q%d", i); string(m.Body) != want {
			t.Errorf("snapshot[%d] = %q, want %q", i, m.Body, want)
		}
	}
	if got := b.Stats().QueueDepth; got != 0 {
		t.Errorf("QueueDepth after Close = %d", got)
	}
}

// TestFlushContextDuringClose: a flush racing Close must return (either
// drained or with an error), never deadlock.
func TestFlushContextDuringClose(t *testing.T) {
	b := New(Options{})
	g := newGate()
	b.Subscribe("t", "slow", g.handle)
	b.Publish("t", []byte("inflight"))
	<-g.entered
	for i := 0; i < 3; i++ {
		b.Publish("t", []byte("q"))
	}
	ctx, cancel := context.WithTimeout(context.Background(), flushTimeout)
	defer cancel()
	flushed := make(chan error, 1)
	go func() { flushed <- b.FlushContext(ctx) }()
	closed := make(chan struct{})
	go func() {
		b.Close()
		close(closed)
	}()
	time.Sleep(10 * time.Millisecond)
	close(g.release)
	select {
	case <-closed:
	case <-time.After(flushTimeout):
		t.Fatal("Close deadlocked against FlushContext")
	}
	select {
	case <-flushed: // drained (nil) or aborted — both fine, just not stuck
	case <-time.After(flushTimeout):
		t.Fatal("FlushContext never returned during Close")
	}
}

// TestBlockedPublisherSurvivesClose: a publisher parked by the Block
// policy while the broker closes routes its message to the drain
// snapshot rather than hanging or losing it.
func TestBlockedPublisherSurvivesClose(t *testing.T) {
	b := New(Options{MaxPending: 1, Policy: Block, BlockTimeout: flushTimeout})
	g := newGate()
	b.Subscribe("t", "wedged", g.handle)
	b.Publish("t", []byte("inflight"))
	<-g.entered
	b.Publish("t", []byte("queued"))
	parked := make(chan struct{})
	go func() {
		b.Publish("t", []byte("parked"))
		close(parked)
	}()
	time.Sleep(10 * time.Millisecond)
	go func() {
		time.Sleep(10 * time.Millisecond)
		close(g.release)
	}()
	b.Close()
	select {
	case <-parked:
	case <-time.After(flushTimeout):
		t.Fatal("blocked publisher never returned after Close")
	}
	// Everything accepted is accounted for: delivered, snapshotted, or in
	// a DLQ — nothing simply vanished.
	snap := b.DrainSnapshot()
	total := g.c.count() + len(snap)
	if total != 3 {
		t.Errorf("delivered %d + snapshot %v: %d accounted, want 3",
			g.c.count(), bodiesOf(snap), total)
	}
}

// TestConcurrentPublishersBoundedQueue: under -race, hammering a bounded
// queue from many goroutines keeps the depth accounting exact.
func TestConcurrentPublishersBoundedQueue(t *testing.T) {
	b := New(Options{MaxPending: 4, Policy: ShedOldest})
	defer b.Close()
	var c collector
	b.Subscribe("t", "s", c.handle)
	var wg sync.WaitGroup
	const pubs, per = 8, 50
	for p := 0; p < pubs; p++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				b.Publish("t", []byte("m"))
			}
		}()
	}
	wg.Wait()
	if !b.Flush(flushTimeout) {
		t.Fatal("Flush timed out")
	}
	if got := b.Stats().QueueDepth; got != 0 {
		t.Errorf("QueueDepth after drain = %d", got)
	}
	st := b.Stats()
	if st.Delivered+st.Overflowed != pubs*per {
		t.Errorf("delivered %d + overflowed %d != %d", st.Delivered, st.Overflowed, pubs*per)
	}
}

func bodiesOf(msgs []*Message) []string {
	out := make([]string, len(msgs))
	for i, m := range msgs {
		out[i] = string(m.Body)
	}
	return out
}
