package bus

import (
	"sync"
	"time"
)

// Subscription is one durable consumer of a topic. Messages are delivered
// in publish order, one at a time, with bounded retries; exhausted
// messages land in the dead-letter queue.
type Subscription struct {
	broker  *Broker
	topic   string
	name    string
	handler Handler

	qmu      sync.Mutex
	queue    []*Message // FIFO of pending messages
	inFlight bool

	dlmu sync.Mutex
	dead []*Message

	wake chan struct{}
	stop chan struct{}
	done chan struct{}

	stopOnce sync.Once
}

// Topic returns the subscribed topic.
func (s *Subscription) Topic() string { return s.topic }

// Name returns the subscription name.
func (s *Subscription) Name() string { return s.name }

// Pending returns the number of queued, not-yet-delivered messages.
func (s *Subscription) Pending() int {
	s.qmu.Lock()
	defer s.qmu.Unlock()
	return len(s.queue)
}

// DeadLetters returns a snapshot of the messages that exhausted their
// delivery attempts.
func (s *Subscription) DeadLetters() []*Message {
	s.dlmu.Lock()
	defer s.dlmu.Unlock()
	out := make([]*Message, len(s.dead))
	copy(out, s.dead)
	return out
}

// Redrive moves the dead letters back onto the subscription's queue for
// a fresh round of delivery attempts (an operator action after fixing
// the consumer). It returns the number of messages requeued.
func (s *Subscription) Redrive() int {
	s.dlmu.Lock()
	dead := s.dead
	s.dead = nil
	s.dlmu.Unlock()
	for _, m := range dead {
		cp := *m
		cp.Attempt = 0
		// Bypass MaxPending: redrive is a deliberate operator action and
		// must not bounce straight back to the DLQ.
		s.qmu.Lock()
		s.queue = append(s.queue, &cp)
		s.qmu.Unlock()
		select {
		case s.wake <- struct{}{}:
		default:
		}
	}
	return len(dead)
}

func (s *Subscription) enqueue(m *Message) {
	max := s.broker.opts.MaxPending
	s.qmu.Lock()
	if max > 0 && len(s.queue) >= max {
		s.qmu.Unlock()
		// Queue full: divert to the DLQ instead of growing without bound.
		// The message stays recoverable via Redrive once the consumer
		// catches up.
		s.deadLetter(m)
		s.broker.overflow.Add(1)
		return
	}
	s.queue = append(s.queue, m)
	s.qmu.Unlock()
	select {
	case s.wake <- struct{}{}:
	default:
	}
}

func (s *Subscription) idle() bool {
	s.qmu.Lock()
	defer s.qmu.Unlock()
	return len(s.queue) == 0 && !s.inFlight
}

// busy snapshots the queue depth and in-flight flag for flush reports.
func (s *Subscription) busy() (queued int, inFlight bool) {
	s.qmu.Lock()
	defer s.qmu.Unlock()
	return len(s.queue), s.inFlight
}

func (s *Subscription) dequeue() *Message {
	s.qmu.Lock()
	defer s.qmu.Unlock()
	if len(s.queue) == 0 {
		return nil
	}
	m := s.queue[0]
	s.queue = s.queue[1:]
	s.inFlight = true
	return m
}

func (s *Subscription) settled() {
	s.qmu.Lock()
	s.inFlight = false
	s.qmu.Unlock()
}

// run is the delivery loop.
func (s *Subscription) run() {
	defer close(s.done)
	for {
		m := s.dequeue()
		if m == nil {
			select {
			case <-s.wake:
				continue
			case <-s.stop:
				return
			}
		}
		s.deliver(m)
		s.settled()
	}
}

// deliver attempts the message up to MaxAttempts times. A copy of the
// message is handed to the handler per attempt so that Attempt is
// accurate and handlers cannot corrupt the queued message.
func (s *Subscription) deliver(m *Message) {
	max := s.broker.opts.MaxAttempts
	for attempt := 1; attempt <= max; attempt++ {
		cp := *m
		cp.Attempt = attempt
		err := s.safeHandle(&cp)
		if err == nil {
			s.broker.delivered.Add(1)
			return
		}
		if attempt < max {
			s.broker.redeliver.Add(1)
			select {
			case <-time.After(s.broker.opts.RetryBackoff):
			case <-s.stop:
				// Shutting down mid-retry: dead-letter so it is not lost
				// silently.
				s.deadLetter(m)
				return
			}
		}
	}
	s.deadLetter(m)
}

// safeHandle runs the handler, converting a panic into an error so one
// bad consumer cannot take down the broker (cf. Effective Go's server
// recovery pattern).
func (s *Subscription) safeHandle(m *Message) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = panicError{r}
		}
	}()
	return s.handler(m)
}

type panicError struct{ v any }

func (p panicError) Error() string { return "bus: handler panic" }

func (s *Subscription) deadLetter(m *Message) {
	s.dlmu.Lock()
	s.dead = append(s.dead, m)
	s.dlmu.Unlock()
	s.broker.dead.Add(1)
}

func (s *Subscription) shutdown() {
	s.stopOnce.Do(func() { close(s.stop) })
	<-s.done
}
