package bus

import (
	"context"
	"sync"
	"time"
)

// Subscription is one durable consumer of a topic. Messages are delivered
// in publish order, one at a time, with bounded retries; exhausted
// messages land in the dead-letter queue (itself capped by MaxDead).
type Subscription struct {
	broker  *Broker
	topic   string
	name    string
	handler Handler

	qmu      sync.Mutex
	queue    []*Message // FIFO ring: live entries are queue[head:]
	head     int        // index of the next message to dequeue
	inFlight bool
	stopped  bool       // set while shutting down: no further enqueues
	space    *sync.Cond // signaled on dequeue for Block-policy publishers

	dlmu sync.Mutex
	dead []*Message

	wake chan struct{}
	stop chan struct{}
	done chan struct{}

	stopOnce sync.Once
}

// Topic returns the subscribed topic.
func (s *Subscription) Topic() string { return s.topic }

// Name returns the subscription name.
func (s *Subscription) Name() string { return s.name }

// Pending returns the number of queued, not-yet-delivered messages.
func (s *Subscription) Pending() int {
	s.qmu.Lock()
	defer s.qmu.Unlock()
	return len(s.queue) - s.head
}

// qlenLocked reports the live queue depth; qmu must be held.
func (s *Subscription) qlenLocked() int { return len(s.queue) - s.head }

// DeadLetters returns a snapshot of the messages that exhausted their
// delivery attempts (or were diverted by a full queue).
func (s *Subscription) DeadLetters() []*Message {
	s.dlmu.Lock()
	defer s.dlmu.Unlock()
	out := make([]*Message, len(s.dead))
	copy(out, s.dead)
	return out
}

// Redrive moves the dead letters back onto the subscription's queue for
// a fresh round of delivery attempts (an operator action after fixing
// the consumer). It returns the number of messages requeued. The
// requeued batch is bounded by the MaxDead cap, and it deliberately
// bypasses MaxPending: a redriven message must not bounce straight back
// to the DLQ.
func (s *Subscription) Redrive() int {
	s.dlmu.Lock()
	dead := s.dead
	s.dead = nil
	s.dlmu.Unlock()
	for _, m := range dead {
		cp := *m
		cp.Attempt = 1
		s.qmu.Lock()
		if s.stopped {
			s.qmu.Unlock()
			// Shutting down: park it back as a dead letter instead of
			// losing it on a queue nobody will drain.
			s.deadLetter(&cp)
			continue
		}
		s.queue = append(s.queue, &cp)
		s.qmu.Unlock()
		s.broker.noteEnqueue()
		select {
		case s.wake <- struct{}{}:
		default:
		}
	}
	return len(dead)
}

// enqueue places m on the queue, applying the overflow policy when the
// queue is at MaxPending. It reports false only when the message was
// rejected outright (Reject policy); diverted and evicted messages count
// as accepted — they are observable in the DLQ.
func (s *Subscription) enqueue(m *Message) bool {
	max := s.broker.opts.MaxPending
	s.qmu.Lock()
	if s.stopped {
		// The subscription is shutting down (broker Close). Keep the
		// accepted message observable in the drain snapshot.
		s.qmu.Unlock()
		s.broker.drainMu.Lock()
		s.broker.drained = append(s.broker.drained, m)
		s.broker.drainMu.Unlock()
		return true
	}
	if max > 0 && s.qlenLocked() >= max {
		switch s.broker.opts.Policy {
		case ShedOldest:
			// Evict the head to the DLQ, then enqueue m below.
			oldest := s.queue[s.head]
			s.queue[s.head] = nil
			s.head++
			s.qmu.Unlock()
			s.broker.noteDequeue(1)
			s.deadLetter(oldest)
			s.broker.noteOverflow(false)
			s.qmu.Lock()
		case Reject:
			s.qmu.Unlock()
			s.broker.noteOverflow(true)
			return false
		case Block:
			if !s.waitForSpaceLocked(max) {
				stopped := s.stopped
				s.qmu.Unlock()
				if stopped {
					// The subscription went away while we were parked:
					// hand the message to the Close drain snapshot.
					s.broker.drainMu.Lock()
					s.broker.drained = append(s.broker.drained, m)
					s.broker.drainMu.Unlock()
					return true
				}
				// Still full at the deadline: fall back to shed-newest.
				s.deadLetter(m)
				s.broker.noteOverflow(false)
				return true
			}
		default: // ShedNewest
			s.qmu.Unlock()
			// Queue full: divert to the DLQ instead of growing without
			// bound. The message stays recoverable via Redrive once the
			// consumer catches up.
			s.deadLetter(m)
			s.broker.noteOverflow(false)
			return true
		}
	}
	s.queue = append(s.queue, m)
	s.qmu.Unlock()
	s.broker.noteEnqueue()
	select {
	case s.wake <- struct{}{}:
	default:
	}
	return true
}

// waitForSpaceLocked blocks (qmu held, via the cond) until the queue is
// below max, the subscription stops, or BlockTimeout elapses. It returns
// with qmu held and reports whether space opened up.
func (s *Subscription) waitForSpaceLocked(max int) bool {
	deadline := time.Now().Add(s.broker.opts.BlockTimeout)
	// sync.Cond has no timed wait; a timer broadcast bounds the park.
	timer := time.AfterFunc(s.broker.opts.BlockTimeout, func() {
		s.qmu.Lock()
		s.qmu.Unlock() //nolint:staticcheck // pairs the broadcast with the waiter's critical section
		s.space.Broadcast()
	})
	defer timer.Stop()
	for s.qlenLocked() >= max && !s.stopped {
		if !time.Now().Before(deadline) {
			return false
		}
		s.space.Wait()
	}
	return !s.stopped
}

func (s *Subscription) idle() bool {
	s.qmu.Lock()
	defer s.qmu.Unlock()
	return s.qlenLocked() == 0 && !s.inFlight
}

// busy snapshots the queue depth and in-flight flag for flush reports.
func (s *Subscription) busy() (queued int, inFlight bool) {
	s.qmu.Lock()
	defer s.qmu.Unlock()
	return s.qlenLocked(), s.inFlight
}

func (s *Subscription) dequeue() *Message {
	s.qmu.Lock()
	if s.qlenLocked() == 0 {
		s.qmu.Unlock()
		return nil
	}
	m := s.queue[s.head]
	s.queue[s.head] = nil // release the slot for GC
	s.head++
	if s.head == len(s.queue) {
		// Drained: reset so the backing array is reused from the front
		// instead of the slice marching through memory (queue[1:] kept the
		// prefix reachable and forced append to reallocate every cycle).
		s.queue = s.queue[:0]
		s.head = 0
	}
	s.inFlight = true
	s.space.Broadcast()
	s.qmu.Unlock()
	s.broker.noteDequeue(1)
	return m
}

func (s *Subscription) settled() {
	s.qmu.Lock()
	s.inFlight = false
	s.qmu.Unlock()
}

// drainRemaining marks the subscription stopped and hands back whatever
// was still queued, for the broker's Close drain snapshot. Must only be
// called after the delivery goroutine exited.
func (s *Subscription) drainRemaining() []*Message {
	s.qmu.Lock()
	s.stopped = true
	rest := s.queue[s.head:]
	s.queue = nil
	s.head = 0
	s.space.Broadcast()
	s.qmu.Unlock()
	s.broker.noteDequeue(len(rest))
	return rest
}

// run is the delivery loop. It checks stop before each dequeue so that
// shutdown halts after the in-flight delivery: the remaining queue is
// captured by drainRemaining, not raced out by this loop.
func (s *Subscription) run() {
	defer close(s.done)
	for {
		select {
		case <-s.stop:
			return
		default:
		}
		m := s.dequeue()
		if m == nil {
			select {
			case <-s.wake:
				continue
			case <-s.stop:
				return
			}
		}
		s.deliver(m)
		s.settled()
	}
}

// deliver attempts the message up to MaxAttempts times. The first
// attempt hands the queued message to the handler directly — it already
// carries Attempt == 1 and handlers are bound by the read-only contract
// (see Message), so the common success path delivers to every
// subscription with zero copies. Retries are rare, so they take a
// private copy to stamp an accurate Attempt without racing sibling
// subscriptions that share the same message.
func (s *Subscription) deliver(m *Message) {
	max := s.broker.opts.MaxAttempts
	for attempt := 1; attempt <= max; attempt++ {
		h := m
		if attempt > 1 {
			cp := *m
			cp.Attempt = attempt
			h = &cp
		}
		err := s.safeHandle(h)
		if err == nil {
			s.broker.delivered.Add(1)
			return
		}
		if attempt < max {
			s.broker.redeliver.Add(1)
			select {
			case <-time.After(s.broker.opts.RetryBackoff):
			case <-s.stop:
				// Shutting down mid-retry: dead-letter so it is not lost
				// silently.
				s.deadLetter(m)
				return
			}
		}
	}
	s.deadLetter(m)
}

// safeHandle runs the handler, converting a panic into an error so one
// bad consumer cannot take down the broker (cf. Effective Go's server
// recovery pattern).
func (s *Subscription) safeHandle(m *Message) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = panicError{r}
		}
	}()
	return s.handler(m)
}

type panicError struct{ v any }

func (p panicError) Error() string { return "bus: handler panic" }

// deadLetter parks m on the DLQ, evicting the oldest dead letter when
// the MaxDead cap is reached — a poison consumer must not OOM the broker
// through its dead letters either. Evictions are counted
// (Stats.DLQEvicted, css_bus_dlq_evicted_total), never silent.
func (s *Subscription) deadLetter(m *Message) {
	max := s.broker.opts.MaxDead
	s.dlmu.Lock()
	if max > 0 && len(s.dead) >= max {
		evicted := len(s.dead) - max + 1
		s.dead = append(s.dead[:0], s.dead[evicted:]...)
		s.dlmu.Unlock()
		s.broker.dlqEvict.Add(uint64(evicted))
		for i := 0; i < evicted; i++ {
			if fn := s.broker.opts.Observer.DLQEvicted; fn != nil {
				fn()
			}
		}
		s.dlmu.Lock()
	}
	s.dead = append(s.dead, m)
	s.dlmu.Unlock()
	s.broker.dead.Add(1)
}

func (s *Subscription) shutdown() {
	s.shutdownContext(context.Background())
}

// shutdownContext stops the delivery loop and waits for any in-flight
// delivery to settle, giving up when ctx expires. On timeout the
// delivery goroutine is abandoned to the exiting process — the wedged
// handler still holds its message, so nothing accepted is silently
// dropped; it simply never settled.
func (s *Subscription) shutdownContext(ctx context.Context) error {
	s.stopOnce.Do(func() { close(s.stop) })
	select {
	case <-s.done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
