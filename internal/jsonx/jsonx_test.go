package jsonx

import (
	"encoding/json"
	"testing"
)

func TestAppendStringRoundTrips(t *testing.T) {
	cases := []string{
		"",
		"plain",
		`with "quotes" and \backslashes\`,
		"control\n\r\t\x00\x1fchars",
		"unicode ☃ and html <&>",
		"trailing\\",
	}
	for _, in := range cases {
		enc := AppendString(nil, in)
		if !json.Valid(enc) {
			t.Fatalf("AppendString(%q) produced invalid JSON: %s", in, enc)
		}
		var got string
		if err := json.Unmarshal(enc, &got); err != nil {
			t.Fatalf("AppendString(%q) does not unmarshal: %v", in, err)
		}
		if got != in {
			t.Fatalf("round trip mismatch: %q -> %s -> %q", in, enc, got)
		}
	}
}

func TestAppendStringMatchesEncodingJSON(t *testing.T) {
	// For strings with nothing to escape the bytes must match
	// encoding/json exactly.
	for _, in := range []string{"", "abc", "evt-123", "hospital.blood-test"} {
		want, _ := json.Marshal(in)
		if got := AppendString(nil, in); string(got) != string(want) {
			t.Fatalf("AppendString(%q) = %s, want %s", in, got, want)
		}
	}
}
