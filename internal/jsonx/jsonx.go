// Package jsonx holds the tiny append-style JSON encoding helpers used
// by hot paths that hand-roll their JSON (audit records, index records)
// instead of paying encoding/json's reflection on every write. Decoding
// stays on encoding/json; these helpers only ever produce output its
// decoder understands.
package jsonx

const hexDigits = "0123456789abcdef"

// AppendString appends s as a quoted JSON string, escaping only what
// validity requires: quotes, backslashes and control characters. HTML
// escaping (<, >, &) is deliberately skipped — it is an encoding/json
// default for browser embedding, not a JSON validity rule.
func AppendString(dst []byte, s string) []byte {
	dst = append(dst, '"')
	start := 0
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c != '"' && c != '\\' && c >= 0x20 {
			continue
		}
		dst = append(dst, s[start:i]...)
		switch c {
		case '"':
			dst = append(dst, '\\', '"')
		case '\\':
			dst = append(dst, '\\', '\\')
		case '\n':
			dst = append(dst, '\\', 'n')
		case '\r':
			dst = append(dst, '\\', 'r')
		case '\t':
			dst = append(dst, '\\', 't')
		default:
			dst = append(dst, '\\', 'u', '0', '0', hexDigits[c>>4], hexDigits[c&0xF])
		}
		start = i + 1
	}
	dst = append(dst, s[start:]...)
	return append(dst, '"')
}
