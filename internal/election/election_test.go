package election

import (
	"context"
	"errors"
	"fmt"
	"path/filepath"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/replication"
	"repro/internal/store"
)

func TestDetectorPhiGrowsWithSilence(t *testing.T) {
	d := NewDetector(100 * time.Millisecond)
	base := time.Unix(1000, 0)
	if got := d.Phi(base); got != 0 {
		t.Fatalf("phi before first contact = %v, want 0", got)
	}
	// Steady 100ms heartbeats: phi right after a beat is tiny.
	now := base
	for i := 0; i < 20; i++ {
		d.Observe(now)
		now = now.Add(100 * time.Millisecond)
	}
	last := now.Add(-100 * time.Millisecond)
	if phi := d.Phi(last.Add(10 * time.Millisecond)); phi > 1 {
		t.Fatalf("phi 10ms after a beat = %v, want small", phi)
	}
	short := d.Phi(last.Add(200 * time.Millisecond))
	long := d.Phi(last.Add(2 * time.Second))
	if !(long > short && short > 0) {
		t.Fatalf("phi not monotone in silence: %v then %v", short, long)
	}
	if long < 8 {
		t.Fatalf("phi after 20 missed beats = %v, want well past threshold 8", long)
	}
	if el := d.Elapsed(last.Add(2 * time.Second)); el != 2*time.Second {
		t.Fatalf("elapsed = %v, want 2s", el)
	}
}

func TestDetectorAdaptsToSlowCadence(t *testing.T) {
	d := NewDetector(100 * time.Millisecond)
	base := time.Unix(1000, 0)
	now := base
	// The link is actually beating once per second: the same 2s of
	// silence that damned the fast link must look mild here.
	for i := 0; i < 20; i++ {
		d.Observe(now)
		now = now.Add(time.Second)
	}
	last := now.Add(-time.Second)
	if phi := d.Phi(last.Add(2 * time.Second)); phi > 2 {
		t.Fatalf("phi after one missed slow beat = %v, want < 2", phi)
	}
}

func TestEpochStorePersists(t *testing.T) {
	path := filepath.Join(t.TempDir(), "election.epoch")
	es, err := OpenEpochStore(path)
	if err != nil {
		t.Fatal(err)
	}
	if es.Promised() != 0 {
		t.Fatalf("fresh store promised %d", es.Promised())
	}
	for _, tc := range []struct {
		epoch uint64
		want  bool
	}{{3, true}, {3, false}, {2, false}, {7, true}, {7, false}} {
		got, err := es.Promise(tc.epoch)
		if err != nil {
			t.Fatal(err)
		}
		if got != tc.want {
			t.Fatalf("Promise(%d) = %v, want %v", tc.epoch, got, tc.want)
		}
	}
	// Crash-restart: the promise file must come back.
	re, err := OpenEpochStore(path)
	if err != nil {
		t.Fatal(err)
	}
	if re.Promised() != 7 {
		t.Fatalf("reopened store promised %d, want 7", re.Promised())
	}
}

// managerConfig is a fast deterministic base config; tests override the
// campaign/promote hooks.
func managerConfig(t *testing.T, peers int) Config {
	t.Helper()
	es, err := OpenEpochStore(filepath.Join(t.TempDir(), "election.epoch"))
	if err != nil {
		t.Fatal(err)
	}
	addrs := make([]string, peers)
	for i := range addrs {
		addrs[i] = fmt.Sprintf("peer-%d", i)
	}
	return Config{
		Peers:          addrs,
		HeartbeatEvery: 10 * time.Millisecond,
		SuspectAfter:   30 * time.Millisecond,
		Phi:            0.01, // silence floor does the gating in tests
		LeaseFor:       80 * time.Millisecond,
		Backoff:        10 * time.Millisecond,
		Epochs:         es,
		CurrentEpoch:   func() uint64 { return 1 },
		Offsets:        func() map[string]int64 { return nil },
		Seed:           42,
	}
}

// TestLeaseExpiryDiscardsLateGrant is the satellite-3 lease case: a
// grant that arrives after the lease window must never count, so a
// candidate whose voters all answer late deterministically loses.
func TestLeaseExpiryDiscardsLateGrant(t *testing.T) {
	cfg := managerConfig(t, 2) // cluster of 3: needs 1 peer grant
	var calls atomic.Int64
	cfg.Campaign = func(ctx context.Context, addr string, epoch uint64, cursors map[string]int64) (bool, uint64, error) {
		calls.Add(1)
		<-ctx.Done() // the grant "arrives" only after the lease closed
		return true, epoch, nil
	}
	promoted := make(chan uint64, 1)
	cfg.Promote = func(epoch uint64) error {
		promoted <- epoch
		return nil
	}
	m, err := NewManager(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	deadline := time.Now().Add(5 * time.Second)
	for m.Status().Campaigns < 2 {
		select {
		case epoch := <-promoted:
			t.Fatalf("promoted at epoch %d on grants that arrived after the lease", epoch)
		default:
		}
		if time.Now().After(deadline) {
			t.Fatalf("only %d campaigns in 5s", m.Status().Campaigns)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if won := m.Status().Won; won != 0 {
		t.Fatalf("won %d campaigns with only late grants", won)
	}
	if calls.Load() == 0 {
		t.Fatal("campaign hook never called")
	}

	// Control: the identical cluster with prompt grants elects.
	cfg2 := managerConfig(t, 2)
	cfg2.Campaign = func(ctx context.Context, addr string, epoch uint64, cursors map[string]int64) (bool, uint64, error) {
		return true, epoch, nil
	}
	promoted2 := make(chan uint64, 1)
	cfg2.Promote = func(epoch uint64) error {
		promoted2 <- epoch
		return nil
	}
	m2, err := NewManager(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Close()
	select {
	case epoch := <-promoted2:
		if epoch < 2 {
			t.Fatalf("promoted at epoch %d, want >= 2", epoch)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("prompt grants never elected a leader")
	}
	if st := m2.Status(); st.State != StateLeader || st.Won != 1 {
		t.Fatalf("winner status = %+v", st)
	}
}

// TestProbeSuppressesCampaign: a silent heartbeat channel alone must not
// trigger an election while the primary still answers the HTTP probe.
func TestProbeSuppressesCampaign(t *testing.T) {
	cfg := managerConfig(t, 2)
	var probes atomic.Int64
	cfg.Probe = func(ctx context.Context) error {
		probes.Add(1)
		return nil // the primary is reachable over HTTP
	}
	cfg.Campaign = func(ctx context.Context, addr string, epoch uint64, cursors map[string]int64) (bool, uint64, error) {
		t.Error("campaigned despite a healthy probe channel")
		return false, 0, errors.New("no")
	}
	cfg.Promote = func(epoch uint64) error { return nil }
	m, err := NewManager(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	deadline := time.Now().Add(2 * time.Second)
	for probes.Load() < 3 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if probes.Load() < 3 {
		t.Fatalf("only %d probes fired", probes.Load())
	}
	if st := m.Status(); st.Campaigns != 0 || st.State != StateWatching {
		t.Fatalf("status = %+v, want watching with 0 campaigns", st)
	}
}

// TestExternalPromotionStandsDown: a manual /ws/promote that races the
// manager must make it stand down as leader instead of campaigning.
func TestExternalPromotionStandsDown(t *testing.T) {
	cfg := managerConfig(t, 2)
	cfg.Promoted = func() bool { return true }
	cfg.Campaign = func(ctx context.Context, addr string, epoch uint64, cursors map[string]int64) (bool, uint64, error) {
		t.Error("campaigned after external promotion")
		return false, 0, nil
	}
	cfg.Promote = func(epoch uint64) error { return nil }
	m, err := NewManager(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	deadline := time.Now().Add(2 * time.Second)
	for m.Status().State != StateLeader {
		if time.Now().After(deadline) {
			t.Fatalf("state = %s, want leader", m.Status().State)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestManagerElectsOverWire is the end-to-end loop against real
// replication followers: the primary dies silently, the manager detects
// it, collects durable grants from a quorum over the campaign frames,
// and promotes — and the grants raise the voters' fencing epochs.
func TestManagerElectsOverWire(t *testing.T) {
	dir := t.TempDir()
	openSet := func(sub string) []replication.NamedStore {
		out := make([]replication.NamedStore, 0, 3)
		for _, name := range []string{"idmap", "index", "audit"} {
			st, err := store.Open(filepath.Join(dir, sub, name+".wal"), store.Options{})
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(func() { st.Close() })
			out = append(out, replication.NamedStore{Name: name, Store: st})
		}
		return out
	}

	// Two voter replicas, each with its own durable promise store.
	voters := make([]*replication.Follower, 2)
	voterEpochs := make([]*EpochStore, 2)
	for i := range voters {
		fol, err := replication.NewFollower("127.0.0.1:0", replication.FollowerConfig{
			Stores: openSet(fmt.Sprintf("v%d", i)),
			Epoch:  1,
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { fol.Close() })
		es, err := OpenEpochStore(filepath.Join(dir, fmt.Sprintf("v%d.epoch", i)))
		if err != nil {
			t.Fatal(err)
		}
		esi := es
		fol.SetVoteHook(func(epoch uint64) bool {
			ok, err := esi.Promise(epoch)
			return err == nil && ok
		})
		voters[i] = fol
		voterEpochs[i] = es
	}

	// The candidate replica (its own follower stores feed the cursors).
	cand := openSet("cand")
	candFol, err := replication.NewFollower("127.0.0.1:0", replication.FollowerConfig{Stores: cand, Epoch: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer candFol.Close()

	es, err := OpenEpochStore(filepath.Join(dir, "cand.epoch"))
	if err != nil {
		t.Fatal(err)
	}
	promoted := make(chan uint64, 1)
	mgr, err := NewManager(Config{
		Peers:          []string{voters[0].Addr(), voters[1].Addr()},
		HeartbeatEvery: 10 * time.Millisecond,
		SuspectAfter:   30 * time.Millisecond,
		Phi:            0.01,
		LeaseFor:       500 * time.Millisecond,
		Backoff:        10 * time.Millisecond,
		Epochs:         es,
		CurrentEpoch:   candFol.Epoch,
		Offsets:        candFol.Offsets,
		Campaign: func(ctx context.Context, addr string, epoch uint64, cursors map[string]int64) (bool, uint64, error) {
			return replication.Campaign(ctx, nil, addr, epoch, cursors)
		},
		Promote: func(epoch uint64) error {
			promoted <- epoch
			return nil
		},
		Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer mgr.Close()

	var epoch uint64
	select {
	case epoch = <-promoted:
	case <-time.After(10 * time.Second):
		t.Fatal("no election within 10s of primary silence")
	}
	if epoch != 2 {
		t.Fatalf("elected at epoch %d, want 2", epoch)
	}
	if st := mgr.Status(); st.State != StateLeader || st.Won != 1 || st.Promised != epoch {
		t.Fatalf("winner status = %+v", st)
	}
	// At least a quorum's worth of voters durably promised the epoch,
	// and every voter that granted also raised its fencing epoch.
	durable := 0
	for i, ves := range voterEpochs {
		if ves.Promised() == epoch {
			durable++
			if voters[i].Epoch() != epoch {
				t.Fatalf("voter %d granted %d but fences at %d", i, epoch, voters[i].Epoch())
			}
		}
	}
	if durable < 1 {
		t.Fatalf("no voter holds a durable promise for epoch %d", epoch)
	}
}
