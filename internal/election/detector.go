// Package election closes PR 9's failover loop: a phi-accrual-style
// failure detector watches the primary's heartbeats (and an optional
// HTTP status probe), and when both channels go silent the replica
// campaigns for the next epoch, collecting durably promised grants from
// a majority of the replica set before self-promoting through the same
// Promote path the manual runbook used. Split-brain safety rests on the
// fencing epochs PR 9 introduced: a voter that grants epoch E raises
// its own fencing epoch to E, so a deposed primary's frames — and any
// rival candidate at the same epoch — are denied by the very quorum
// that elected the winner.
package election

import (
	"math"
	"sync"
	"time"
)

// Detector is a phi-accrual-style failure detector (Hayashibara et
// al.): it keeps a sliding window of heartbeat inter-arrival times and
// converts "time since last contact" into a suspicion level
//
//	phi(t) = (t - last) / (mean · ln 10)
//
// — the exponential-arrival form of the accrual detector, where phi = k
// means the silence is about k decades less likely than a normal gap.
// Because the mean adapts to the observed cadence, a slow or jittery
// link raises the bar automatically instead of hair-triggering; a
// configured floor on elapsed silence guards the other direction, where
// a burst of rapid-fire arrivals would otherwise shrink the mean toward
// zero and make any pause look fatal.
type Detector struct {
	mu        sync.Mutex
	last      time.Time
	intervals [64]float64 // seconds, ring buffer
	n, idx    int
	sum       float64
	prior     float64 // expected interval before enough samples arrive
}

// NewDetector builds a detector primed with the expected heartbeat
// interval — the mean used until real arrivals accumulate.
func NewDetector(expected time.Duration) *Detector {
	if expected <= 0 {
		expected = 100 * time.Millisecond
	}
	return &Detector{prior: expected.Seconds()}
}

// Observe records one contact (heartbeat, data frame, or successful
// probe) at time now.
func (d *Detector) Observe(now time.Time) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if !d.last.IsZero() {
		iv := now.Sub(d.last).Seconds()
		if iv >= 0 {
			if d.n == len(d.intervals) {
				d.sum -= d.intervals[d.idx]
			} else {
				d.n++
			}
			d.intervals[d.idx] = iv
			d.sum += iv
			d.idx = (d.idx + 1) % len(d.intervals)
		}
	}
	if now.After(d.last) {
		d.last = now
	}
}

// Phi returns the current suspicion level. Before the first contact it
// reports zero: a primary that never spoke is the probe channel's
// problem, not a crash of something the detector was tracking.
func (d *Detector) Phi(now time.Time) float64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.last.IsZero() {
		return 0
	}
	mean := d.prior
	// Blend the prior until the window has a few real samples, so one
	// freak short interval cannot collapse the mean.
	if d.n >= 4 {
		mean = d.sum / float64(d.n)
	} else if d.n > 0 {
		mean = (d.sum + d.prior*float64(4-d.n)) / 4
	}
	if mean <= 0 {
		mean = d.prior
	}
	elapsed := now.Sub(d.last).Seconds()
	if elapsed <= 0 {
		return 0
	}
	return elapsed / (mean * math.Ln10)
}

// Elapsed returns the silence since the last contact (zero before the
// first contact).
func (d *Detector) Elapsed(now time.Time) time.Duration {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.last.IsZero() {
		return 0
	}
	return now.Sub(d.last)
}
