package election

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/telemetry"
)

// Config wires a Manager to its node. Campaign, Promote, CurrentEpoch,
// Offsets and Epochs are required; everything else has defaults.
type Config struct {
	// Peers are the other voting replicas' replication listener
	// addresses — the electorate besides this node.
	Peers []string
	// ClusterSize is the number of voting replicas including this node;
	// a candidate needs floor(ClusterSize/2)+1 grants, its own durable
	// self-grant included. Defaults to len(Peers)+1. The floor form is
	// a strict majority for every N — for odd N it equals the issue's
	// ⌈N/2⌉, and for even N it is one more, closing the 2-replica hole
	// where ⌈N/2⌉ = N/2 grants would let both sides win.
	ClusterSize int
	// HeartbeatEvery is the expected primary heartbeat cadence (the
	// detector's prior mean). Default 100ms.
	HeartbeatEvery time.Duration
	// SuspectAfter is the silence floor: suspicion never fires before
	// this much time since the last contact, however high phi climbs.
	// Default 2s.
	SuspectAfter time.Duration
	// Phi is the accrual suspicion threshold. Default 8.
	Phi float64
	// LeaseFor bounds one campaign: grants that arrive after the lease
	// window are discarded, never counted. Default 1s.
	LeaseFor time.Duration
	// Backoff is the base for the jittered pre-campaign delay and the
	// post-loss retry delay (Raft-style randomized timeouts, so two
	// candidates that tied at epoch E diverge at E+1). Default
	// LeaseFor/2.
	Backoff time.Duration
	// Epochs durably records promises (grants and own claims). Required.
	Epochs *EpochStore
	// CurrentEpoch returns the node's replication fencing epoch.
	CurrentEpoch func() uint64
	// Offsets snapshots the node's per-store WAL cursors — shipped in
	// the campaign for the voters' up-to-date check.
	Offsets func() map[string]int64
	// Campaign submits one claim to one peer within ctx's lease window
	// (replication.Campaign adapted; chaos tests inject partitions
	// here). Required.
	Campaign func(ctx context.Context, addr string, epoch uint64, cursors map[string]int64) (granted bool, voterEpoch uint64, err error)
	// Promote turns this node into the primary at the given epoch once
	// a majority granted it — the same path the manual /ws/promote
	// override drives. Required.
	Promote func(epoch uint64) error
	// Probe, when set, is the second failure-detection channel: an HTTP
	// check of the primary (GET /ws/replstatus). It runs only once the
	// heartbeat channel is already suspect, and a success counts as
	// contact — the manager campaigns only when both channels are
	// silent.
	Probe func(ctx context.Context) error
	// Promoted, when set, reports that the node already holds the
	// primary role (e.g. a manual promotion raced us); the manager then
	// stands down.
	Promoted func() bool
	// Seed fixes the jitter source for deterministic tests; 0 seeds
	// from the clock.
	Seed int64
	// Metrics registers css_election_* instruments when set.
	Metrics *telemetry.Registry
	// Tracer, when set, records one span per campaign with grant/outcome
	// events, linked into the exported span stream.
	Tracer *telemetry.Tracer
	// Logf receives election lifecycle events; nil discards them.
	Logf func(format string, args ...any)
}

// Manager states, exported through Status for the replstatus surface.
const (
	StateWatching    = "watching"
	StateCampaigning = "campaigning"
	StateLeader      = "leader"
)

var stateNames = [...]string{StateWatching, StateCampaigning, StateLeader}

// Manager runs the failure-detection → campaign → promote loop for one
// replica. Wire its Observe method into the Follower's contact hook and
// its Vote method into the Follower's vote hook, then it runs until the
// node wins an election (and promotes), is promoted externally, or is
// closed.
type Manager struct {
	cfg  Config
	det  *Detector
	logf func(format string, args ...any)

	state atomic.Int32
	won   atomic.Uint64 // campaigns won (0 or 1 in practice)
	lost  atomic.Uint64

	rngMu sync.Mutex
	rng   *rand.Rand

	stop chan struct{}
	wg   sync.WaitGroup

	stateGauge *telemetry.Gauge
	campaigns  *telemetry.Counter
	suspicions *telemetry.Counter
	grants     *telemetry.Counter
}

// NewManager validates cfg, applies defaults, and starts the loop.
func NewManager(cfg Config) (*Manager, error) {
	if cfg.Epochs == nil {
		return nil, errors.New("election: config needs an EpochStore")
	}
	if cfg.Campaign == nil || cfg.Promote == nil || cfg.CurrentEpoch == nil || cfg.Offsets == nil {
		return nil, errors.New("election: config needs Campaign, Promote, CurrentEpoch and Offsets")
	}
	if cfg.ClusterSize <= 0 {
		cfg.ClusterSize = len(cfg.Peers) + 1
	}
	if cfg.HeartbeatEvery <= 0 {
		cfg.HeartbeatEvery = 100 * time.Millisecond
	}
	if cfg.SuspectAfter <= 0 {
		cfg.SuspectAfter = 2 * time.Second
	}
	if cfg.Phi <= 0 {
		cfg.Phi = 8
	}
	if cfg.LeaseFor <= 0 {
		cfg.LeaseFor = time.Second
	}
	if cfg.Backoff <= 0 {
		cfg.Backoff = cfg.LeaseFor / 2
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = time.Now().UnixNano()
	}
	m := &Manager{
		cfg:  cfg,
		det:  NewDetector(cfg.HeartbeatEvery),
		logf: cfg.Logf,
		rng:  rand.New(rand.NewSource(seed)),
		stop: make(chan struct{}),
	}
	if m.logf == nil {
		m.logf = func(string, ...any) {}
	}
	// Prime the detector at boot: a primary that never makes contact is
	// suspect once the boot silence crosses the threshold, so a replica
	// restarted into a dead cluster can still call the election.
	m.det.Observe(time.Now())
	if reg := cfg.Metrics; reg != nil {
		m.stateGauge = reg.Gauge("css_election_state", "Election state: 0 watching, 1 campaigning, 2 leader.")
		m.campaigns = reg.Counter("css_election_campaigns_total", "Campaigns run, by outcome.", "outcome")
		m.suspicions = reg.Counter("css_election_suspicions_total", "Times the failure detector crossed the suspicion threshold.")
		m.grants = reg.Counter("css_election_grants_total", "Votes this node granted to campaigning candidates.")
	}
	m.wg.Add(1)
	go m.run()
	return m, nil
}

// Observe is the Follower contact hook: every heartbeat or data frame
// from a live primary feeds the detector.
func (m *Manager) Observe(epoch uint64) {
	_ = epoch
	m.det.Observe(time.Now())
}

// Vote is the Follower vote hook: durably promise the epoch (raise-only)
// and grant. The Follower has already checked the candidate's cursors
// and fencing epoch; this adds the at-most-one-grant-per-epoch rule,
// shared with the node's own campaign claims so a candidate can never
// also grant a rival at its claimed epoch. A node that holds the leader
// role refuses outright: the cluster already has a primary, and a
// partitioned rival must not be voted into a second one — operators
// keep POST /ws/promote for deliberate depositions.
func (m *Manager) Vote(epoch uint64) bool {
	if m.state.Load() == 2 {
		return false
	}
	ok, err := m.cfg.Epochs.Promise(epoch)
	if err != nil {
		m.logf("election: persisting promise for epoch %d: %v", epoch, err)
		return false
	}
	if ok && m.grants != nil {
		m.grants.Inc()
	}
	return ok
}

// Status is the operator surface, merged into /ws/replstatus.
type Status struct {
	State     string
	Phi       float64
	Promised  uint64
	Campaigns uint64 // total campaigns run
	Won       uint64
}

// Status snapshots the manager.
func (m *Manager) Status() Status {
	return Status{
		State:     stateNames[m.state.Load()],
		Phi:       m.det.Phi(time.Now()),
		Promised:  m.cfg.Epochs.Promised(),
		Campaigns: m.won.Load() + m.lost.Load(),
		Won:       m.won.Load(),
	}
}

// Close stops the loop. Idempotent is not required; call once.
func (m *Manager) Close() {
	close(m.stop)
	m.wg.Wait()
}

func (m *Manager) setState(s int32) {
	m.state.Store(s)
	if m.stateGauge != nil {
		m.stateGauge.Set(float64(s))
	}
}

// jitter returns a uniformly random duration in [0, d).
func (m *Manager) jitter(d time.Duration) time.Duration {
	if d <= 0 {
		return 0
	}
	m.rngMu.Lock()
	defer m.rngMu.Unlock()
	return time.Duration(m.rng.Int63n(int64(d)))
}

// sleep waits for d or until Close; it reports false when closing.
func (m *Manager) sleep(d time.Duration) bool {
	select {
	case <-m.stop:
		return false
	case <-time.After(d):
		return true
	}
}

// suspect reports whether the heartbeat channel is silent past both the
// phi threshold and the hard floor.
func (m *Manager) suspect(now time.Time) bool {
	return m.det.Elapsed(now) >= m.cfg.SuspectAfter && m.det.Phi(now) >= m.cfg.Phi
}

// run is the detection loop: tick at half the heartbeat cadence
// (jittered), and when the primary is suspect on the heartbeat channel,
// confirm over the probe channel before campaigning.
func (m *Manager) run() {
	defer m.wg.Done()
	for {
		tick := m.cfg.HeartbeatEvery/2 + m.jitter(m.cfg.HeartbeatEvery/4)
		if tick < 5*time.Millisecond {
			tick = 5 * time.Millisecond
		}
		if !m.sleep(tick) {
			return
		}
		if m.cfg.Promoted != nil && m.cfg.Promoted() {
			m.setState(2)
			m.logf("election: node was promoted externally; standing down")
			return
		}
		if !m.suspect(time.Now()) {
			continue
		}
		if m.cfg.Probe != nil {
			pctx, cancel := context.WithTimeout(context.Background(), m.probeTimeout())
			err := m.cfg.Probe(pctx)
			cancel()
			if err == nil {
				// The primary answers HTTP: only the repl link is hurt.
				// Count it as contact so phi resets.
				m.det.Observe(time.Now())
				continue
			}
		}
		if m.suspicions != nil {
			m.suspicions.Inc()
		}
		m.logf("election: primary suspect (phi %.1f, silent %s); campaigning",
			m.det.Phi(time.Now()), m.det.Elapsed(time.Now()).Round(time.Millisecond))
		if m.campaign() {
			return // won and promoted: this node is the primary now
		}
	}
}

func (m *Manager) probeTimeout() time.Duration {
	t := m.cfg.SuspectAfter / 2
	if t > time.Second {
		t = time.Second
	}
	if t < 50*time.Millisecond {
		t = 50 * time.Millisecond
	}
	return t
}

// campaign runs one election round. Returns true when this node won and
// promoted itself.
func (m *Manager) campaign() bool {
	// Randomized pre-campaign delay so simultaneous suspicions diverge;
	// if the primary comes back during it, stand down.
	if !m.sleep(m.jitter(m.cfg.Backoff)) {
		return false
	}
	if !m.suspect(time.Now()) {
		return false
	}

	epoch := m.cfg.CurrentEpoch()
	if p := m.cfg.Epochs.Promised(); p > epoch {
		epoch = p
	}
	epoch++
	// The self-grant: durably claim the epoch before asking anyone.
	// Through the shared EpochStore this also blocks this node from
	// granting any rival the same epoch.
	ok, err := m.cfg.Epochs.Promise(epoch)
	if err != nil {
		m.logf("election: claiming epoch %d: %v", epoch, err)
		m.outcome("error")
		m.sleep(m.cfg.Backoff + m.jitter(m.cfg.Backoff))
		return false
	}
	if !ok {
		// A rival's campaign reached us between reading Promised and
		// claiming: retry from the higher promise next round.
		m.outcome("lost")
		m.sleep(m.jitter(m.cfg.Backoff))
		return false
	}

	m.setState(1)
	wonRound := false
	defer func() {
		if !wonRound {
			m.setState(0)
		}
	}()
	_, span := m.cfg.Tracer.StartSpan(context.Background(), "election.campaign")
	if span != nil {
		span.SetAttr("epoch", fmt.Sprint(epoch))
		defer span.End()
	}

	cursors := m.cfg.Offsets()
	need := m.cfg.ClusterSize/2 + 1
	votes := 1 // self, durably promised above
	m.logf("election: campaigning for epoch %d (%d grants needed of %d voters)", epoch, need, m.cfg.ClusterSize)

	ctx, cancel := context.WithTimeout(context.Background(), m.cfg.LeaseFor)
	defer cancel()
	results := make(chan bool, len(m.cfg.Peers))
	for _, addr := range m.cfg.Peers {
		go func(addr string) {
			granted, voterEpoch, err := m.cfg.Campaign(ctx, addr, epoch, cursors)
			if err != nil {
				m.logf("election: peer %s: %v", addr, err)
			} else if !granted {
				m.logf("election: peer %s denied epoch %d (holds %d)", addr, epoch, voterEpoch)
				if span != nil {
					span.AddEvent("election.denied", telemetry.Attr{Key: "peer", Value: addr})
				}
			}
			results <- err == nil && granted
		}(addr)
	}

	// The lease window: grants still in flight when it closes are
	// discarded — they never count, deterministically.
	lease := time.NewTimer(m.cfg.LeaseFor)
	defer lease.Stop()
	pending := len(m.cfg.Peers)
	for votes < need && pending > 0 {
		select {
		case g := <-results:
			pending--
			if g {
				votes++
			}
		case <-lease.C:
			pending = 0
		case <-m.stop:
			return false
		}
	}

	if votes < need {
		m.logf("election: lost epoch %d (%d/%d grants)", epoch, votes, need)
		m.outcome("lost")
		if span != nil {
			span.AddEvent("election.lost", telemetry.Attr{Key: "votes", Value: fmt.Sprint(votes)})
		}
		m.sleep(m.jitter(m.cfg.Backoff))
		return false
	}

	m.logf("election: won epoch %d with %d/%d grants; promoting", epoch, votes, m.cfg.ClusterSize)
	if span != nil {
		span.AddEvent("election.won", telemetry.Attr{Key: "votes", Value: fmt.Sprint(votes)})
	}
	// Assume the leader role before promoting: from here the Vote hook
	// refuses rivals, so the window where a freshly won quorum could
	// still be voted against closes before shipping starts. A failed
	// promote reverts through the deferred state reset.
	m.setState(2)
	if err := m.cfg.Promote(epoch); err != nil {
		m.logf("election: promote at epoch %d: %v", epoch, err)
		m.outcome("error")
		if span != nil {
			span.SetError(err)
		}
		m.sleep(m.cfg.Backoff + m.jitter(m.cfg.Backoff))
		return false
	}
	m.outcome("won")
	m.won.Add(1)
	wonRound = true
	return true
}

func (m *Manager) outcome(o string) {
	if o == "lost" {
		m.lost.Add(1)
	}
	if m.campaigns != nil {
		m.campaigns.Inc(o)
	}
}
