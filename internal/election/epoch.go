package election

import (
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"sync"
)

// EpochStore durably records the highest epoch this node has promised —
// by granting a vote or by claiming an epoch for its own campaign. The
// promise must survive a crash: a voter that forgot a grant could vote
// twice in the same epoch and hand two candidates a majority. The store
// is a single 8-byte big-endian file, replaced atomically (write to a
// temp file, fsync, rename, fsync the directory).
type EpochStore struct {
	path string

	mu       sync.Mutex
	promised uint64
}

// OpenEpochStore opens (creating if absent) the promise file at path.
func OpenEpochStore(path string) (*EpochStore, error) {
	s := &EpochStore{path: path}
	raw, err := os.ReadFile(path)
	switch {
	case os.IsNotExist(err):
		// First boot: nothing promised yet.
	case err != nil:
		return nil, fmt.Errorf("election: read epoch store: %w", err)
	case len(raw) != 8:
		return nil, fmt.Errorf("election: epoch store %s is %d bytes, want 8", path, len(raw))
	default:
		s.promised = binary.BigEndian.Uint64(raw)
	}
	return s, nil
}

// Promised returns the highest durably promised epoch.
func (s *EpochStore) Promised() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.promised
}

// Promise durably records epoch if it is strictly above every earlier
// promise, returning whether the promise was made. The fsync completes
// before Promise returns true — the caller may only then grant the vote
// (or count its own self-grant).
func (s *EpochStore) Promise(epoch uint64) (bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if epoch <= s.promised {
		return false, nil
	}
	var buf [8]byte
	binary.BigEndian.PutUint64(buf[:], epoch)
	tmp := s.path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o600)
	if err != nil {
		return false, fmt.Errorf("election: promise: %w", err)
	}
	if _, err := f.Write(buf[:]); err != nil {
		f.Close()
		return false, fmt.Errorf("election: promise: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return false, fmt.Errorf("election: promise: sync: %w", err)
	}
	if err := f.Close(); err != nil {
		return false, fmt.Errorf("election: promise: %w", err)
	}
	if err := os.Rename(tmp, s.path); err != nil {
		return false, fmt.Errorf("election: promise: %w", err)
	}
	if dir, err := os.Open(filepath.Dir(s.path)); err == nil {
		dir.Sync()
		dir.Close()
	}
	s.promised = epoch
	return true, nil
}
