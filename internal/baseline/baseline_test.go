package baseline

import (
	"testing"

	"repro/internal/event"
)

func sampleDetail() *event.Detail {
	return event.NewDetail("c.x", "src-1", "prod").
		Set("patient-id", "PRS-1").     // 5 bytes
		Set("diagnosis", "pneumonia").  // 9 bytes, sensitive
		Set("therapy", "antibiotics10") // 13 bytes, sensitive
}

var sensitive = map[event.FieldName]bool{"diagnosis": true, "therapy": true}

func TestPointToPointChannels(t *testing.T) {
	p := NewPointToPoint()
	p.Connect("prod-a", "cons-1")
	p.Connect("prod-a", "cons-2")
	p.Connect("prod-b", "cons-1")
	p.Connect("prod-a", "cons-1") // duplicate: same artifact
	if st := p.Stats(); st.Channels != 3 {
		t.Errorf("Channels = %d, want 3", st.Channels)
	}
}

func TestPointToPointSendsFullDocument(t *testing.T) {
	p := NewPointToPoint()
	p.Connect("prod", "cons")
	n, err := p.SendDocument("prod", "cons", sampleDetail(), sensitive)
	if err != nil {
		t.Fatalf("SendDocument: %v", err)
	}
	if n != 5+9+13 {
		t.Errorf("bytes shipped = %d, want full document", n)
	}
	st := p.Stats()
	if st.Documents != 1 || st.BytesSent != uint64(n) {
		t.Errorf("stats = %+v", st)
	}
	if st.SensitiveBytes != 9+13 {
		t.Errorf("SensitiveBytes = %d, want 22", st.SensitiveBytes)
	}
	// No channel, no exchange.
	if _, err := p.SendDocument("prod", "stranger", sampleDetail(), nil); err == nil {
		t.Error("send over missing channel succeeded")
	}
}

func TestArtifactCount(t *testing.T) {
	cases := []struct{ p, c, wantP2P, wantHub int }{
		{1, 1, 1, 2},
		{4, 6, 24, 10},
		{32, 32, 1024, 64},
	}
	for _, tc := range cases {
		p2p, hub := ArtifactCount(tc.p, tc.c)
		if p2p != tc.wantP2P || hub != tc.wantHub {
			t.Errorf("ArtifactCount(%d,%d) = %d,%d want %d,%d", tc.p, tc.c, p2p, hub, tc.wantP2P, tc.wantHub)
		}
	}
	// Hub must win for any non-trivial roster.
	for n := 3; n <= 64; n *= 2 {
		p2p, hub := ArtifactCount(n, n)
		if hub >= p2p {
			t.Errorf("hub (%d) not cheaper than p2p (%d) at n=%d", hub, p2p, n)
		}
	}
}

func TestWarehouseLoadAndQuery(t *testing.T) {
	w := NewWarehouse()
	copied := w.Load(sampleDetail())
	if copied != 27 {
		t.Errorf("Load copied %d bytes", copied)
	}
	// No grant: denied.
	if _, err := w.Query("cons", "c.x", "src-1"); err == nil {
		t.Error("ungranted query succeeded")
	}
	w.Grant("cons", "c.x")
	got, err := w.Query("cons", "c.x", "src-1")
	if err != nil {
		t.Fatalf("Query: %v", err)
	}
	// All-or-nothing: the sensitive fields come along.
	if _, ok := got.Get("diagnosis"); !ok {
		t.Error("warehouse did not serve the full row")
	}
	// Wrong class or missing row.
	if _, err := w.Query("cons", "c.y", "src-1"); err == nil {
		t.Error("wrong-class query succeeded")
	}
	w.Grant("cons", "c.y")
	if _, err := w.Query("cons", "c.y", "src-404"); err == nil {
		t.Error("missing-row query succeeded")
	}
	st := w.Stats()
	if st.Rows != 1 || st.BytesCopied != 27 || st.BytesServed != 27 || st.Queries != 4 {
		t.Errorf("stats = %+v", st)
	}
}

func TestWarehouseClones(t *testing.T) {
	w := NewWarehouse()
	d := sampleDetail()
	w.Load(d)
	d.Set("patient-id", "MUTATED")
	w.Grant("cons", "c.x")
	got, _ := w.Query("cons", "c.x", "src-1")
	if v, _ := got.Get("patient-id"); v != "PRS-1" {
		t.Error("warehouse shares state with caller")
	}
	got.Set("diagnosis", "MUTATED")
	again, _ := w.Query("cons", "c.x", "src-1")
	if v, _ := again.Get("diagnosis"); v != "pneumonia" {
		t.Error("Query exposes internal state")
	}
}
