// Package baseline implements the comparators the paper argues against:
//
//   - PointToPoint models the status quo of Fig. 1 — every pair of
//     institutions exchanges full documents directly (mail, fax, email),
//     with no central control, no fine-grained filtering and no audit;
//   - Warehouse models the rejected centralized alternative of §1 — a
//     single data collector holding full copies of every detail message.
//
// Both exist to quantify the paper's motivating claims (experiments E4
// and E9): integration artifacts grow O(N²) point-to-point versus O(N)
// through the hub, and one-phase full publication transfers the entire
// sensitive payload where the two-phase protocol transfers only the
// requested, policy-filtered fields.
package baseline

import (
	"errors"
	"fmt"
	"sync"

	"repro/internal/event"
)

// PointToPoint is the document-exchange integrator: every producer keeps
// a bilateral channel to every consumer it serves, and each event is sent
// as a full document on every such channel.
type PointToPoint struct {
	mu        sync.Mutex
	channels  map[string]bool // "producer→consumer"
	producers map[event.ProducerID]bool
	consumers map[event.Actor]bool

	documents uint64
	bytesSent uint64
	sensitive uint64 // sensitive-classified bytes sent (computed by caller weights)
}

// NewPointToPoint creates an empty point-to-point world.
func NewPointToPoint() *PointToPoint {
	return &PointToPoint{
		channels:  make(map[string]bool),
		producers: make(map[event.ProducerID]bool),
		consumers: make(map[event.Actor]bool),
	}
}

// Connect establishes the bilateral integration between a producer and a
// consumer. In the real world each such channel is a bespoke artifact
// (interface agreement, document template, address book entry, often a
// paper workflow); the count of channels is the integration cost metric
// of E9.
func (p *PointToPoint) Connect(prod event.ProducerID, cons event.Actor) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.producers[prod] = true
	p.consumers[cons] = true
	p.channels[channelKey(prod, cons)] = true
}

func channelKey(prod event.ProducerID, cons event.Actor) string {
	return string(prod) + "\x00" + string(cons)
}

// SendDocument ships the full detail document over one channel. The
// channel must exist. It returns the number of payload bytes shipped —
// always the entire document: a fax machine cannot blank a field.
func (p *PointToPoint) SendDocument(prod event.ProducerID, cons event.Actor, d *event.Detail, sensitiveFields map[event.FieldName]bool) (int, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if !p.channels[channelKey(prod, cons)] {
		return 0, fmt.Errorf("baseline: no channel %s → %s", prod, cons)
	}
	total, sens := 0, 0
	for name, v := range d.Fields {
		total += len(v)
		if sensitiveFields[name] {
			sens += len(v)
		}
	}
	p.documents++
	p.bytesSent += uint64(total)
	p.sensitive += uint64(sens)
	return total, nil
}

// PointToPointStats are the cumulative counters of the baseline.
type PointToPointStats struct {
	Channels       int    // bilateral integration artifacts
	Documents      uint64 // full documents shipped
	BytesSent      uint64 // payload bytes shipped
	SensitiveBytes uint64 // sensitive payload bytes shipped
}

// Stats returns a snapshot.
func (p *PointToPoint) Stats() PointToPointStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return PointToPointStats{
		Channels:       len(p.channels),
		Documents:      p.documents,
		BytesSent:      p.bytesSent,
		SensitiveBytes: p.sensitive,
	}
}

// ArtifactCount models the E9 onboarding-cost comparison analytically:
// integrating nProducers sources with nConsumers destinations requires
// one artifact per pair point-to-point, versus one artifact per
// institution through the hub (its single connection to the data
// controller).
func ArtifactCount(nProducers, nConsumers int) (pointToPoint, hub int) {
	return nProducers * nConsumers, nProducers + nConsumers
}

// ErrNoChannel reports document exchange over a missing channel.
var ErrNoChannel = errors.New("baseline: no channel")
