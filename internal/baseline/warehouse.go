package baseline

import (
	"fmt"
	"sync"

	"repro/internal/event"
)

// Warehouse is the centralized full-copy alternative: every detail
// message is replicated into the central store at publication time (the
// one-phase protocol), and consumers query the center directly. Access
// control is coarse: a consumer is either granted a class or not — the
// all-or-nothing model the paper calls over-constraining or over-sharing.
type Warehouse struct {
	mu      sync.Mutex
	rows    map[event.SourceID]*event.Detail
	grants  map[string]bool // "actor→class"
	copied  uint64          // payload bytes copied centrally at publish
	served  uint64          // payload bytes served to consumers
	queries uint64
}

// NewWarehouse creates an empty warehouse.
func NewWarehouse() *Warehouse {
	return &Warehouse{
		rows:   make(map[event.SourceID]*event.Detail),
		grants: make(map[string]bool),
	}
}

// Grant gives an actor full access to a class (table-level grant).
func (w *Warehouse) Grant(actor event.Actor, class event.ClassID) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.grants[grantKey(actor, class)] = true
}

func grantKey(actor event.Actor, class event.ClassID) string {
	return string(actor) + "\x00" + string(class)
}

// Load replicates a full detail into the center (the publish-time copy
// the CSS architecture exists to avoid). It returns the copied bytes.
func (w *Warehouse) Load(d *event.Detail) int {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.rows[d.SourceID] = d.Clone()
	n := 0
	for _, v := range d.Fields {
		n += len(v)
	}
	w.copied += uint64(n)
	return n
}

// Query returns the full row for an event: all fields or nothing.
func (w *Warehouse) Query(actor event.Actor, class event.ClassID, src event.SourceID) (*event.Detail, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.queries++
	if !w.grants[grantKey(actor, class)] {
		return nil, fmt.Errorf("baseline: %s has no grant on %s", actor, class)
	}
	d, ok := w.rows[src]
	if !ok || d.Class != class {
		return nil, fmt.Errorf("baseline: no row %s of class %s", src, class)
	}
	for _, v := range d.Fields {
		w.served += uint64(len(v))
	}
	return d.Clone(), nil
}

// WarehouseStats are the cumulative counters.
type WarehouseStats struct {
	Rows        int
	BytesCopied uint64 // sensitive payload duplicated centrally
	BytesServed uint64
	Queries     uint64
}

// Stats returns a snapshot.
func (w *Warehouse) Stats() WarehouseStats {
	w.mu.Lock()
	defer w.mu.Unlock()
	return WarehouseStats{
		Rows:        len(w.rows),
		BytesCopied: w.copied,
		BytesServed: w.served,
		Queries:     w.queries,
	}
}
