// Package reporting implements the accountability aggregates of the
// scenario (paper §2): "each service provider has to provide data at
// different level of granularity (detailed vs aggregated data) to the
// governing body (province or ministry of health and finance) for
// accountability and reimbursement purposes. The governing body also uses
// the data to assess the efficiency of the services being delivered."
//
// The Aggregator consumes notification messages — the non-sensitive
// who/what/when/where — and produces per-producer, per-class, per-period
// service counts and coverage figures. Person identifiers are used only
// for distinct-citizen counting and never appear in reports, so the
// governing body's accountability view requires no detail requests.
package reporting

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/event"
)

// Period is a reporting granularity.
type Period int

const (
	// Monthly buckets by calendar month (the reimbursement cycle).
	Monthly Period = iota
	// Quarterly buckets by calendar quarter.
	Quarterly
	// Yearly buckets by calendar year.
	Yearly
)

// bucket renders the period key of an instant.
func (p Period) bucket(t time.Time) string {
	switch p {
	case Yearly:
		return fmt.Sprintf("%04d", t.Year())
	case Quarterly:
		return fmt.Sprintf("%04d-Q%d", t.Year(), (int(t.Month())-1)/3+1)
	default:
		return t.Format("2006-01")
	}
}

// Row is one aggregate of the accountability report.
type Row struct {
	// Bucket is the reporting period (e.g. "2010-03", "2010-Q1", "2010").
	Bucket string
	// Producer is the accountable service provider.
	Producer event.ProducerID
	// Class is the service (event class) delivered.
	Class event.ClassID
	// Services is the number of service events delivered.
	Services int
	// Citizens is the number of distinct persons served.
	Citizens int
	// ServicesPerCitizen is the mean intensity of service.
	ServicesPerCitizen float64
}

// Aggregator accumulates notifications into accountability aggregates.
// Safe for concurrent use.
type Aggregator struct {
	period Period

	mu      sync.Mutex
	counts  map[rowKey]int
	persons map[rowKey]map[string]bool
}

type rowKey struct {
	bucket   string
	producer event.ProducerID
	class    event.ClassID
}

// NewAggregator creates an aggregator at the given granularity.
func NewAggregator(period Period) *Aggregator {
	return &Aggregator{
		period:  period,
		counts:  make(map[rowKey]int),
		persons: make(map[rowKey]map[string]bool),
	}
}

// Observe feeds one notification.
func (a *Aggregator) Observe(n *event.Notification) {
	k := rowKey{a.period.bucket(n.OccurredAt), n.Producer, n.Class}
	a.mu.Lock()
	defer a.mu.Unlock()
	a.counts[k]++
	set := a.persons[k]
	if set == nil {
		set = make(map[string]bool)
		a.persons[k] = set
	}
	set[n.PersonID] = true
}

// Report returns the aggregates, sorted by bucket, producer, class.
// No person identifier appears in the output.
func (a *Aggregator) Report() []Row {
	a.mu.Lock()
	defer a.mu.Unlock()
	rows := make([]Row, 0, len(a.counts))
	for k, count := range a.counts {
		citizens := len(a.persons[k])
		row := Row{
			Bucket:   k.bucket,
			Producer: k.producer,
			Class:    k.class,
			Services: count,
			Citizens: citizens,
		}
		if citizens > 0 {
			row.ServicesPerCitizen = float64(count) / float64(citizens)
		}
		rows = append(rows, row)
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].Bucket != rows[j].Bucket {
			return rows[i].Bucket < rows[j].Bucket
		}
		if rows[i].Producer != rows[j].Producer {
			return rows[i].Producer < rows[j].Producer
		}
		return rows[i].Class < rows[j].Class
	})
	return rows
}

// Totals sums a producer's services across all buckets and classes — the
// reimbursement bottom line.
func (a *Aggregator) Totals(producer event.ProducerID) (services int, buckets int) {
	a.mu.Lock()
	defer a.mu.Unlock()
	seen := map[string]bool{}
	for k, count := range a.counts {
		if k.producer != producer {
			continue
		}
		services += count
		seen[k.bucket] = true
	}
	return services, len(seen)
}
