package reporting

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/event"
)

func notif(producer event.ProducerID, class event.ClassID, person string, at time.Time) *event.Notification {
	return &event.Notification{
		ID: "e", SourceID: "s", Class: class, PersonID: person,
		OccurredAt: at, Producer: producer,
	}
}

var rt0 = time.Date(2010, 1, 10, 9, 0, 0, 0, time.UTC)

func TestMonthlyAggregation(t *testing.T) {
	a := NewAggregator(Monthly)
	a.Observe(notif("muni", "c.home-care", "P1", rt0))
	a.Observe(notif("muni", "c.home-care", "P1", rt0.Add(24*time.Hour)))
	a.Observe(notif("muni", "c.home-care", "P2", rt0.Add(48*time.Hour)))
	a.Observe(notif("muni", "c.home-care", "P1", rt0.AddDate(0, 1, 0))) // Feb
	a.Observe(notif("hosp", "c.blood", "P1", rt0))

	rows := a.Report()
	if len(rows) != 3 {
		t.Fatalf("rows = %d: %+v", len(rows), rows)
	}
	// Sorted: 2010-01/hosp, 2010-01/muni, 2010-02/muni.
	if rows[0].Producer != "hosp" || rows[0].Services != 1 || rows[0].Citizens != 1 {
		t.Errorf("row0 = %+v", rows[0])
	}
	jan := rows[1]
	if jan.Bucket != "2010-01" || jan.Services != 3 || jan.Citizens != 2 {
		t.Errorf("jan = %+v", jan)
	}
	if jan.ServicesPerCitizen != 1.5 {
		t.Errorf("ServicesPerCitizen = %v", jan.ServicesPerCitizen)
	}
	if rows[2].Bucket != "2010-02" || rows[2].Services != 1 {
		t.Errorf("feb = %+v", rows[2])
	}
}

func TestPeriodBuckets(t *testing.T) {
	cases := []struct {
		p    Period
		at   time.Time
		want string
	}{
		{Monthly, rt0, "2010-01"},
		{Quarterly, rt0, "2010-Q1"},
		{Quarterly, time.Date(2010, 4, 1, 0, 0, 0, 0, time.UTC), "2010-Q2"},
		{Quarterly, time.Date(2010, 12, 31, 0, 0, 0, 0, time.UTC), "2010-Q4"},
		{Yearly, rt0, "2010"},
	}
	for _, tc := range cases {
		if got := tc.p.bucket(tc.at); got != tc.want {
			t.Errorf("bucket(%v, %v) = %q, want %q", tc.p, tc.at, got, tc.want)
		}
	}
}

func TestReportCarriesNoIdentifiers(t *testing.T) {
	a := NewAggregator(Yearly)
	a.Observe(notif("muni", "c.x", "PRS-SECRET", rt0))
	rows := a.Report()
	for _, r := range rows {
		for _, s := range []string{r.Bucket, string(r.Producer), string(r.Class)} {
			if s == "PRS-SECRET" {
				t.Fatal("identifier leaked into report")
			}
		}
	}
}

func TestTotals(t *testing.T) {
	a := NewAggregator(Monthly)
	for m := 0; m < 3; m++ {
		for i := 0; i < 5; i++ {
			a.Observe(notif("muni", "c.x", fmt.Sprintf("P%d", i), rt0.AddDate(0, m, 0)))
		}
	}
	a.Observe(notif("other", "c.x", "P1", rt0))
	services, buckets := a.Totals("muni")
	if services != 15 || buckets != 3 {
		t.Errorf("Totals = %d services, %d buckets", services, buckets)
	}
	if s, b := a.Totals("nobody"); s != 0 || b != 0 {
		t.Errorf("Totals(nobody) = %d, %d", s, b)
	}
}

func TestConcurrentObserve(t *testing.T) {
	a := NewAggregator(Monthly)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				a.Observe(notif("muni", "c.x", fmt.Sprintf("P%d", i%10), rt0))
				a.Report()
			}
		}(g)
	}
	wg.Wait()
	rows := a.Report()
	if len(rows) != 1 || rows[0].Services != 800 || rows[0].Citizens != 10 {
		t.Errorf("rows = %+v", rows)
	}
}
