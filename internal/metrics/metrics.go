// Package metrics provides the lightweight measurement utilities of the
// benchmark harness: duration histograms with quantiles, rate
// computation, and an aligned table printer for the experiment reports in
// EXPERIMENTS.md.
package metrics

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"time"
)

// Histogram collects duration samples. Safe for concurrent use.
type Histogram struct {
	mu      sync.Mutex
	samples []time.Duration
	sorted  bool
}

// NewHistogram creates an empty histogram.
func NewHistogram() *Histogram { return &Histogram{} }

// Record adds a sample.
func (h *Histogram) Record(d time.Duration) {
	h.mu.Lock()
	h.samples = append(h.samples, d)
	h.sorted = false
	h.mu.Unlock()
}

// Time measures fn and records its duration.
func (h *Histogram) Time(fn func()) {
	start := time.Now()
	fn()
	h.Record(time.Since(start))
}

// Count returns the number of samples.
func (h *Histogram) Count() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.samples)
}

func (h *Histogram) sortLocked() {
	if !h.sorted {
		sort.Slice(h.samples, func(i, j int) bool { return h.samples[i] < h.samples[j] })
		h.sorted = true
	}
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) of the samples, or 0 with
// no samples.
func (h *Histogram) Quantile(q float64) time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	if len(h.samples) == 0 {
		return 0
	}
	h.sortLocked()
	if q <= 0 {
		return h.samples[0]
	}
	if q >= 1 {
		return h.samples[len(h.samples)-1]
	}
	idx := int(q * float64(len(h.samples)-1))
	return h.samples[idx]
}

// Mean returns the arithmetic mean of the samples.
func (h *Histogram) Mean() time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	if len(h.samples) == 0 {
		return 0
	}
	var sum time.Duration
	for _, s := range h.samples {
		sum += s
	}
	return sum / time.Duration(len(h.samples))
}

// Summary renders "mean / p50 / p95 / p99".
func (h *Histogram) Summary() string {
	return fmt.Sprintf("%v / %v / %v / %v",
		round(h.Mean()), round(h.Quantile(0.50)), round(h.Quantile(0.95)), round(h.Quantile(0.99)))
}

// round trims durations to a readable precision.
func round(d time.Duration) time.Duration {
	switch {
	case d >= time.Second:
		return d.Round(time.Millisecond)
	case d >= time.Millisecond:
		return d.Round(10 * time.Microsecond)
	default:
		return d.Round(100 * time.Nanosecond)
	}
}

// Rate returns ops/sec for n operations over elapsed.
func Rate(n int, elapsed time.Duration) float64 {
	if elapsed <= 0 {
		return 0
	}
	return float64(n) / elapsed.Seconds()
}

// Table renders aligned experiment tables.
type Table struct {
	header []string
	rows   [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(header ...string) *Table {
	return &Table{header: header}
}

// Row appends a row; values are formatted with %v.
func (t *Table) Row(values ...any) {
	row := make([]string, len(values))
	for i, v := range values {
		switch x := v.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.2f", x)
		default:
			row[i] = fmt.Sprintf("%v", v)
		}
	}
	t.rows = append(t.rows, row)
}

// Write renders the table.
func (t *Table) Write(w io.Writer) {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			if i < len(widths) {
				parts[i] = pad(c, widths[i])
			} else {
				parts[i] = c
			}
		}
		fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(t.header)
	sep := make([]string, len(t.header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.rows {
		line(row)
	}
}

// String renders the table to a string.
func (t *Table) String() string {
	var b strings.Builder
	t.Write(&b)
	return b.String()
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}
