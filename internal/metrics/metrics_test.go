package metrics

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestHistogramQuantiles(t *testing.T) {
	h := NewHistogram()
	if h.Quantile(0.5) != 0 || h.Mean() != 0 || h.Count() != 0 {
		t.Error("empty histogram misreports")
	}
	for i := 1; i <= 100; i++ {
		h.Record(time.Duration(i) * time.Millisecond)
	}
	if h.Count() != 100 {
		t.Errorf("Count = %d", h.Count())
	}
	if got := h.Quantile(0); got != time.Millisecond {
		t.Errorf("q0 = %v", got)
	}
	if got := h.Quantile(1); got != 100*time.Millisecond {
		t.Errorf("q1 = %v", got)
	}
	p50 := h.Quantile(0.5)
	if p50 < 45*time.Millisecond || p50 > 55*time.Millisecond {
		t.Errorf("p50 = %v", p50)
	}
	p99 := h.Quantile(0.99)
	if p99 < 95*time.Millisecond {
		t.Errorf("p99 = %v", p99)
	}
	mean := h.Mean()
	if mean < 50*time.Millisecond || mean > 51*time.Millisecond {
		t.Errorf("mean = %v", mean)
	}
	if !strings.Contains(h.Summary(), "/") {
		t.Errorf("Summary = %q", h.Summary())
	}
}

func TestHistogramInterleavedRecordAndQuantile(t *testing.T) {
	h := NewHistogram()
	h.Record(3 * time.Millisecond)
	h.Record(time.Millisecond)
	_ = h.Quantile(0.5) // forces sort
	h.Record(2 * time.Millisecond)
	if got := h.Quantile(0); got != time.Millisecond {
		t.Errorf("min after re-record = %v", got)
	}
	if got := h.Quantile(1); got != 3*time.Millisecond {
		t.Errorf("max after re-record = %v", got)
	}
}

func TestHistogramTime(t *testing.T) {
	h := NewHistogram()
	h.Time(func() { time.Sleep(time.Millisecond) })
	if h.Count() != 1 || h.Quantile(1) < time.Millisecond {
		t.Errorf("Time recorded %v", h.Quantile(1))
	}
}

func TestHistogramConcurrent(t *testing.T) {
	h := NewHistogram()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				h.Record(time.Microsecond)
				h.Quantile(0.5)
			}
		}()
	}
	wg.Wait()
	if h.Count() != 800 {
		t.Errorf("Count = %d", h.Count())
	}
}

func TestRate(t *testing.T) {
	if got := Rate(100, time.Second); got != 100 {
		t.Errorf("Rate = %v", got)
	}
	if got := Rate(100, 0); got != 0 {
		t.Errorf("Rate(0 elapsed) = %v", got)
	}
}

func TestTable(t *testing.T) {
	tbl := NewTable("name", "value", "ratio")
	tbl.Row("alpha", 42, 1.5)
	tbl.Row("a-much-longer-name", 7, 0.25)
	out := tbl.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 {
		t.Fatalf("table lines = %d:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[0], "name") || !strings.Contains(lines[1], "---") {
		t.Errorf("header/separator wrong:\n%s", out)
	}
	if !strings.Contains(out, "1.50") || !strings.Contains(out, "0.25") {
		t.Errorf("float formatting wrong:\n%s", out)
	}
	// Alignment: the "value" column must start at the same offset.
	idx0 := strings.Index(lines[2], "42")
	idx1 := strings.Index(lines[3], "7")
	if idx0 != idx1 {
		t.Errorf("columns misaligned:\n%s", out)
	}
}
