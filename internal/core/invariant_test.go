package core_test

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/core"
	"repro/internal/enforcer"
	"repro/internal/event"
	"repro/internal/policy"
	"repro/internal/schema"
	"repro/internal/workload"
)

// TestQuickSystemPrivacySafety is the system-level statement of the
// paper's central guarantee: for random event streams, random elicited
// policies and random requests, every detail response the platform
// releases is privacy safe (Definition 4) with respect to the most
// specific matching policy, and every request without a matching policy
// is denied. This exercises the full pipeline — catalog, idmap, index,
// PDP, gateway — not the filter function in isolation. A parallel
// policy.Repository serves as the Definition-3 oracle.
func TestQuickSystemPrivacySafety(t *testing.T) {
	consumers := []event.Actor{"org-a", "org-a/dept", "org-b", "org-c"}
	purposes := []event.Purpose{"care", "stats", "admin"}

	f := func(seed int64) bool {
		rnd := rand.New(rand.NewSource(seed))
		c, err := core.New(core.Config{DefaultConsent: true})
		if err != nil {
			return false
		}
		defer c.Close()
		platform, err := workload.Provision(c)
		if err != nil {
			return false
		}
		for _, cons := range consumers {
			c.RegisterConsumer(cons, "synthetic")
		}

		domain := schema.Domain()
		owner := map[event.ClassID]event.ProducerID{}
		for _, p := range workload.Producers() {
			for _, s := range p.Classes {
				owner[s.Class()] = p.ID
			}
		}
		oracle := policy.NewRepository()
		nPolicies := 1 + rnd.Intn(6)
		for i := 0; i < nPolicies; i++ {
			s := domain[rnd.Intn(len(domain))]
			fields := s.FieldNames()
			var chosen []event.FieldName
			for _, fname := range fields {
				if rnd.Intn(2) == 0 {
					chosen = append(chosen, fname)
				}
			}
			if len(chosen) == 0 {
				chosen = fields[:1]
			}
			pol := &policy.Policy{
				Producer: owner[s.Class()],
				Actor:    consumers[rnd.Intn(len(consumers))],
				Class:    s.Class(),
				Purposes: []event.Purpose{purposes[rnd.Intn(len(purposes))]},
				Fields:   chosen,
			}
			stored, err := c.DefinePolicy(pol)
			if err != nil {
				return false
			}
			// Mirror the stored policy (same ID and CreatedAt) in the oracle.
			if _, err := oracle.Add(stored); err != nil {
				return false
			}
		}

		gen := workload.NewGenerator(workload.Config{Seed: seed, People: 30})
		type ev struct {
			gid   event.GlobalID
			class event.ClassID
		}
		var stream []ev
		for i := 0; i < 20; i++ {
			n, d := gen.Next()
			gid, err := platform.Produce(n, d)
			if err != nil {
				return false
			}
			stream = append(stream, ev{gid, n.Class})
		}

		for i := 0; i < 30; i++ {
			e := stream[rnd.Intn(len(stream))]
			req := &event.DetailRequest{
				Requester: consumers[rnd.Intn(len(consumers))],
				Class:     e.class,
				EventID:   e.gid,
				Purpose:   purposes[rnd.Intn(len(purposes))],
				At:        time.Date(2010, 6, 1, 0, 0, 0, 0, time.UTC),
			}
			matched, matchErr := oracle.Match(req)
			d, err := c.RequestDetails(req)
			if matchErr != nil {
				if !errors.Is(err, enforcer.ErrDenied) {
					t.Logf("seed %d: expected deny, got %v", seed, err)
					return false
				}
				continue
			}
			if err != nil {
				t.Logf("seed %d: matched policy %s but denied: %v", seed, matched.ID, err)
				return false
			}
			if !d.ExposesOnly(matched.Fields) {
				t.Logf("seed %d: response exposes beyond policy %s: %v vs %v",
					seed, matched.ID, d.FieldNames(), matched.Fields)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// TestQuickRoutingAuthorization: subscriptions succeed exactly for the
// classes the consumer holds an authorizing policy on, whatever the
// random grant assignment — deny-by-default at the routing layer.
func TestQuickRoutingAuthorization(t *testing.T) {
	f := func(seed int64) bool {
		rnd := rand.New(rand.NewSource(seed))
		c, err := core.New(core.Config{DefaultConsent: true})
		if err != nil {
			return false
		}
		defer c.Close()
		if err := c.RegisterProducer("prod", "P"); err != nil {
			return false
		}
		nClasses := 2 + rnd.Intn(3)
		var classes []event.ClassID
		for i := 0; i < nClasses; i++ {
			s := schema.MustNew(event.ClassID(fmt.Sprintf("c%d.x", i)), 1, "d",
				schema.Field{Name: "patient-id", Type: schema.String, Required: true})
			if err := c.DeclareClass("prod", s); err != nil {
				return false
			}
			classes = append(classes, s.Class())
		}
		if err := c.RegisterConsumer("org", "O"); err != nil {
			return false
		}
		granted := map[event.ClassID]bool{}
		for _, class := range classes {
			if rnd.Intn(2) == 0 {
				granted[class] = true
				if _, err := c.DefinePolicy(&policy.Policy{
					Producer: "prod", Actor: "org", Class: class,
					Purposes: []event.Purpose{"care"},
					Fields:   []event.FieldName{"patient-id"},
				}); err != nil {
					return false
				}
			}
		}
		for _, class := range classes {
			_, err := c.Subscribe("org", class, func(*event.Notification) {})
			if granted[class] && err != nil {
				return false
			}
			if !granted[class] && !errors.Is(err, core.ErrSubscriptionDeny) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
