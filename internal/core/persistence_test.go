package core

import (
	"bytes"
	"testing"
	"time"

	"repro/internal/crypto"
	"repro/internal/event"
	"repro/internal/gateway"
	"repro/internal/index"
	"repro/internal/policy"
	"repro/internal/schema"
	"repro/internal/store"
)

// TestControllerPersistenceAcrossRestart exercises the deployment story:
// the controller restarts (e.g. maintenance) and a consumer still
// retrieves details of an event published before the restart, months
// later — the temporal decoupling of §4.
func TestControllerPersistenceAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	gwStore := dir + "/gw.wal"
	key := bytes.Repeat([]byte{8}, crypto.KeySize)
	now := time.Date(2010, 2, 1, 10, 0, 0, 0, time.UTC)
	clock := func() time.Time { return now }

	boot := func() (*Controller, *gateway.Gateway) {
		c, err := New(Config{MasterKey: key, DataDir: dir, DefaultConsent: true, Now: clock})
		if err != nil {
			t.Fatal(err)
		}
		if err := c.RegisterProducer("hospital", "Hospital"); err != nil {
			t.Fatal(err)
		}
		if err := c.RegisterConsumer("family-doctor", "Doctors"); err != nil {
			t.Fatal(err)
		}
		if err := c.DeclareClass("hospital", schema.BloodTest()); err != nil {
			t.Fatal(err)
		}
		st, err := store.Open(gwStore, store.Options{})
		if err != nil {
			t.Fatal(err)
		}
		gw, err := gateway.New("hospital", st, c.Catalog())
		if err != nil {
			t.Fatal(err)
		}
		if err := c.AttachGateway("hospital", gw); err != nil {
			t.Fatal(err)
		}
		return c, gw
	}

	// First life: publish an event.
	c1, gw1 := boot()
	d := event.NewDetail(schema.ClassBloodTest, "src-1", "hospital").
		Set("patient-id", "PRS-1").
		Set("exam-date", "2010-01-31").
		Set("hemoglobin", "12.1")
	if err := gw1.Persist(d); err != nil {
		t.Fatal(err)
	}
	gid, err := c1.Publish(&event.Notification{
		SourceID: "src-1", Class: schema.ClassBloodTest, PersonID: "PRS-1",
		Summary: "blood test", OccurredAt: now.Add(-time.Hour), Producer: "hospital",
	})
	if err != nil {
		t.Fatal(err)
	}
	audLen := c1.Audit().Len()
	if err := c1.Close(); err != nil {
		t.Fatal(err)
	}

	// Second life, four months later: the old event is still resolvable.
	// (This test defines the policy only in the second life; see
	// TestCatalogAndPoliciesSurviveRestart for reload of stored policies.)
	now = now.AddDate(0, 4, 0)
	c2, _ := boot()
	defer c2.Close()
	if _, err := c2.DefinePolicy(&policy.Policy{
		Producer: "hospital", Actor: "family-doctor", Class: schema.ClassBloodTest,
		Purposes: []event.Purpose{event.PurposeHealthcareTreatment},
		Fields:   []event.FieldName{"patient-id", "hemoglobin"},
	}); err != nil {
		t.Fatal(err)
	}

	// The events index survived (encrypted person id intact).
	res, err := c2.InquireIndex("family-doctor", index.Inquiry{PersonID: "PRS-1"})
	if err != nil {
		t.Fatalf("InquireIndex after restart: %v", err)
	}
	if len(res) != 1 || res[0].ID != gid {
		t.Fatalf("inquiry after restart = %+v", res)
	}

	// The detail request months later succeeds end to end.
	got, err := c2.RequestDetails(&event.DetailRequest{
		Requester: "family-doctor", Class: schema.ClassBloodTest,
		EventID: gid, Purpose: event.PurposeHealthcareTreatment,
	})
	if err != nil {
		t.Fatalf("RequestDetails after restart: %v", err)
	}
	if v, _ := got.Get("hemoglobin"); v != "12.1" {
		t.Errorf("hemoglobin = %q", v)
	}
	if _, ok := got.Get("exam-date"); ok {
		t.Error("unauthorized field released after restart")
	}

	// The audit chain continued across the restart and verifies.
	if c2.Audit().Len() <= audLen {
		t.Errorf("audit chain did not grow: %d <= %d", c2.Audit().Len(), audLen)
	}
	if err := c2.Audit().Verify(); err != nil {
		t.Errorf("audit Verify after restart: %v", err)
	}

	// Publishing the same source event again still maps to the same id.
	gid2, err := c2.Publish(&event.Notification{
		SourceID: "src-1", Class: schema.ClassBloodTest, PersonID: "PRS-1",
		Summary: "blood test", OccurredAt: now.Add(-time.Hour), Producer: "hospital",
	})
	if err != nil || gid2 != gid {
		t.Errorf("re-publish after restart = %q, %v (want %q)", gid2, err, gid)
	}
}

// TestCatalogAndPoliciesSurviveRestart asserts the full-state reload: a
// restarted controller knows its members, classes and policies without
// any re-provisioning.
func TestCatalogAndPoliciesSurviveRestart(t *testing.T) {
	dir := t.TempDir()
	key := bytes.Repeat([]byte{9}, crypto.KeySize)

	c1, err := New(Config{MasterKey: key, DataDir: dir, DefaultConsent: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := c1.RegisterProducer("hospital", "Hospital"); err != nil {
		t.Fatal(err)
	}
	if err := c1.RegisterConsumer("family-doctor", "Doctors"); err != nil {
		t.Fatal(err)
	}
	if err := c1.DeclareClass("hospital", schema.BloodTest()); err != nil {
		t.Fatal(err)
	}
	stored, err := c1.DefinePolicy(&policy.Policy{
		Producer: "hospital", Actor: "family-doctor", Class: schema.ClassBloodTest,
		Purposes: []event.Purpose{event.PurposeHealthcareTreatment},
		Fields:   []event.FieldName{"patient-id", "hemoglobin"},
	})
	if err != nil {
		t.Fatal(err)
	}
	revoked, err := c1.DefinePolicy(&policy.Policy{
		Producer: "hospital", Actor: "someone-else", Class: schema.ClassBloodTest,
		Purposes: []event.Purpose{"x"}, Fields: []event.FieldName{"patient-id"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := c1.RevokePolicy(revoked.ID); err != nil {
		t.Fatal(err)
	}
	gw1, err := gateway.New("hospital", store.OpenMemory(), c1.Catalog())
	if err != nil {
		t.Fatal(err)
	}
	if err := c1.AttachGateway("hospital", gw1); err != nil {
		t.Fatal(err)
	}
	gid, err := c1.Publish(&event.Notification{
		SourceID: "s-1", Class: schema.ClassBloodTest, PersonID: "PRS-1",
		OccurredAt: time.Date(2010, 4, 1, 0, 0, 0, 0, time.UTC), Producer: "hospital",
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := c1.Close(); err != nil {
		t.Fatal(err)
	}

	// Second life: NOTHING is re-provisioned except the gateway wiring.
	c2, err := New(Config{MasterKey: key, DataDir: dir, DefaultConsent: true})
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	if !c2.Catalog().HasProducer("hospital") || !c2.Catalog().HasConsumer("family-doctor") {
		t.Fatal("membership lost across restart")
	}
	s, err := c2.Catalog().Schema(schema.ClassBloodTest)
	if err != nil || !s.Has("aids-test") {
		t.Fatalf("class declaration lost: %v", err)
	}
	pols := c2.Policies("hospital")
	if len(pols) != 1 || pols[0].ID != stored.ID {
		t.Fatalf("policies after restart = %+v (revoked policy must stay gone)", pols)
	}
	// The reloaded policy enforces: reattach a gateway holding the detail.
	gw2, err := gateway.New("hospital", store.OpenMemory(), c2.Catalog())
	if err != nil {
		t.Fatal(err)
	}
	d := event.NewDetail(schema.ClassBloodTest, "s-1", "hospital").
		Set("patient-id", "PRS-1").Set("exam-date", "2010-04-01").Set("hemoglobin", "11.9")
	if err := gw2.Persist(d); err != nil {
		t.Fatal(err)
	}
	if err := c2.AttachGateway("hospital", gw2); err != nil {
		t.Fatal(err)
	}
	got, err := c2.RequestDetails(&event.DetailRequest{
		Requester: "family-doctor", Class: schema.ClassBloodTest,
		EventID: gid, Purpose: event.PurposeHealthcareTreatment,
	})
	if err != nil {
		t.Fatalf("details via reloaded policy: %v", err)
	}
	if v, _ := got.Get("hemoglobin"); v != "11.9" {
		t.Errorf("hemoglobin = %q", v)
	}
	// New policies after reload get fresh, non-colliding ids.
	another, err := c2.DefinePolicy(&policy.Policy{
		Producer: "hospital", Actor: "third-party", Class: schema.ClassBloodTest,
		Purposes: []event.Purpose{"y"}, Fields: []event.FieldName{"patient-id"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if another.ID == stored.ID {
		t.Error("policy id collision after reload")
	}
	// Idempotent re-provisioning still works.
	if err := c2.RegisterProducer("hospital", "Hospital"); err != nil {
		t.Errorf("idempotent re-register = %v", err)
	}
	if err := c2.DeclareClass("hospital", schema.BloodTest()); err != nil {
		t.Errorf("idempotent re-declare = %v", err)
	}
	// But a foreign takeover still fails.
	if err := c2.RegisterProducer("other", "O"); err != nil {
		t.Fatal(err)
	}
	if err := c2.DeclareClass("other", schema.BloodTest()); err == nil {
		t.Error("class takeover accepted after reload")
	}
}
