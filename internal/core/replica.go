// Replication role of the controller: a read replica applies a
// primary's WAL stream into the same stores a primary writes, serves
// index inquiries from them, refuses every write flow with a
// not-primary redirect, and can be promoted in place when the primary
// dies. A primary exposes its persistent stores in write-path
// dependency order for the replication shipper and, in quorum mode,
// overlaps the follower fsync barrier with bus fan-out on every
// publish.
package core

import (
	"errors"

	"strings"

	"repro/internal/audit"
	"repro/internal/cluster"
	"repro/internal/event"
	"repro/internal/policy"
	"repro/internal/replication"
	"repro/internal/schema"
	"repro/internal/telemetry"
)

// Replication-role errors.
var (
	// ErrNotReplica reports Promote on a controller already primary.
	ErrNotReplica = errors.New("core: controller is not a replica")
	// ErrNotPersistent reports replication wiring on an in-memory
	// controller — WAL shipping needs WALs.
	ErrNotPersistent = errors.New("core: replication requires a data directory")
)

// IsReplica reports whether this controller currently runs as a read
// replica (refusing writes).
func (c *Controller) IsReplica() bool { return c.replica.Load() }

// ReplicationEpoch returns the fencing epoch this node last adopted or
// was promoted at (0 until either happens).
func (c *Controller) ReplicationEpoch() uint64 { return c.replEpoch.Load() }

// notPrimary builds the redirect fault a replica answers write flows
// with. Under a shard map it names this shard and the map version so the
// client can re-resolve the primary; unsharded replicas answer the
// zero-valued hint.
func (c *Controller) notPrimary() error {
	e := &cluster.NotPrimaryError{}
	if c.shard != nil {
		e.Shard = c.shard.id
		if m := c.reg.ShardMap(); m != nil {
			e.Version = m.Version()
		}
	}
	return e
}

// auditRead appends a read-flow audit record unless this controller is
// a read replica: a replica's audit store is a byte-identical prefix of
// the primary's chain, so a local append would fork it (and be
// clobbered by the next applied segment). Replica-served reads remain
// observable through css_index_inquiries_total.
func (c *Controller) auditRead(r audit.Record) {
	if c.replica.Load() {
		return
	}
	c.aud.Append(r)
}

// ReplStores returns the controller's persistent stores in write-path
// dependency order — the exact slice both ends of a replication link
// must be configured with. Only a controller with a DataDir has WALs to
// ship.
func (c *Controller) ReplStores() ([]replication.NamedStore, error) {
	if len(c.replStores) == 0 {
		return nil, ErrNotPersistent
	}
	out := make([]replication.NamedStore, len(c.replStores))
	copy(out, c.replStores)
	return out, nil
}

// AttachReplication connects the publish path to the replication
// primary shipping this controller's WALs: in quorum mode every
// accepted publish waits for the follower fsync barrier (overlapped
// with bus fan-out, like the group-commit barrier it joins).
func (c *Controller) AttachReplication(p *replication.Primary) {
	c.repl.Store(p)
	if p != nil {
		c.replEpoch.Store(p.Epoch())
	}
}

// OnReplicatedApply returns the follower OnApply callback that keeps a
// replica's derived in-memory state current as replicated segments
// land: consent directives, the audit chain head, and the catalog and
// policy sets are all rebuilt from the stores the stream just wrote.
// idmap and index reads go straight to their stores, so they need no
// refresh.
func (c *Controller) OnReplicatedApply() func(storeName string) {
	return func(storeName string) {
		var err error
		switch storeName {
		case "consent":
			err = c.con.Reload()
		case "audit":
			err = c.aud.Recover()
		case "catalog", "policies":
			err = c.reloadDerived()
		}
		if err != nil {
			telemetry.Logger().Error("repl: refresh after apply failed",
				"store", storeName, "err", err)
		}
	}
}

// Promote flips a read replica into the primary role at the given
// fencing epoch: the audit chain head and every derived in-memory view
// are recovered from the replicated stores, then write flows are
// accepted. The caller records the epoch in the shard map (the lease
// claim) and wires a replication.Primary shipping at it; a deposed
// primary still streaming at a lower epoch is fenced by the followers.
func (c *Controller) Promote(epoch uint64) error {
	if !c.replica.Load() {
		return ErrNotReplica
	}
	if err := c.aud.Recover(); err != nil {
		return err
	}
	if err := c.con.Reload(); err != nil {
		return err
	}
	if err := c.reloadDerived(); err != nil {
		return err
	}
	c.replEpoch.Store(epoch)
	c.replica.Store(false)
	return nil
}

// reloadDerived re-syncs the registry and the policy set from the
// catalog and policy stores, tolerating entries that are already
// loaded — unlike the boot-time reload, it runs against live state (a
// replica refreshing after an applied segment, or a promotion), so
// duplicates are the common case, and policies deleted on the primary
// are revoked here too.
func (c *Controller) reloadDerived() error {
	if c.persist.catalog == nil {
		return nil
	}
	var rerr error
	err := c.persist.catalog.AscendPrefix("prod/", func(k string, v []byte) bool {
		if err := c.reg.RegisterProducer(event.ProducerID(strings.TrimPrefix(k, "prod/")), string(v)); err != nil && !registryDuplicate(err) {
			rerr = err
			return false
		}
		return true
	})
	if err != nil {
		return err
	}
	if rerr != nil {
		return rerr
	}
	err = c.persist.catalog.AscendPrefix("cons/", func(k string, v []byte) bool {
		if err := c.reg.RegisterConsumer(event.Actor(strings.TrimPrefix(k, "cons/")), string(v)); err != nil && !registryDuplicate(err) {
			rerr = err
			return false
		}
		return true
	})
	if err != nil {
		return err
	}
	if rerr != nil {
		return rerr
	}
	err = c.persist.catalog.AscendPrefix("class/", func(k string, v []byte) bool {
		sep := -1
		for i, b := range v {
			if b == 0 {
				sep = i
				break
			}
		}
		if sep < 0 {
			rerr = errors.New("core: corrupt class record " + k)
			return false
		}
		producer := event.ProducerID(v[:sep])
		s, err := schema.Decode(v[sep+1:])
		if err != nil {
			rerr = err
			return false
		}
		if err := c.reg.DeclareClass(producer, s); err != nil {
			// Identical re-declaration by the same owner is the steady
			// state of a refresh; anything else is real.
			if existing, gerr := c.reg.Class(s.Class()); gerr != nil ||
				existing.Producer != producer || existing.Schema.Version() != s.Version() {
				rerr = err
				return false
			}
		}
		return true
	})
	if err != nil {
		return err
	}
	if rerr != nil {
		return rerr
	}

	if c.persist.policies == nil {
		return nil
	}
	present := make(map[policy.ID]bool)
	err = c.persist.policies.AscendPrefix("p/", func(k string, v []byte) bool {
		p, err := policy.Decode(v)
		if err != nil {
			rerr = err
			return false
		}
		present[p.ID] = true
		if _, err := c.enf.Repository().Get(p.ID); err == nil {
			return true // already installed
		}
		if _, err := c.enf.AddPolicy(p); err != nil {
			rerr = err
			return false
		}
		return true
	})
	if err != nil {
		return err
	}
	if rerr != nil {
		return rerr
	}
	// Policies revoked on the primary are gone from the replicated store;
	// drop them from the live PDP too.
	for _, p := range c.enf.Repository().All() {
		if !present[p.ID] {
			if err := c.enf.RemovePolicy(p.ID); err != nil {
				return err
			}
		}
	}
	return nil
}
