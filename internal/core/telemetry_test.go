package core

import (
	"strings"
	"sync"
	"testing"

	"repro/internal/audit"
	"repro/internal/event"
	"repro/internal/index"
	"repro/internal/schema"
)

// TestTraceCorrelatesTwoPhaseFlow is the observability acceptance test:
// the trace ID minted at Publish rides on the delivered notification, and
// when the consumer quotes it on the follow-up detail request, every
// audit record of both phases — publish, permitted request, denied
// request — carries that same trace.
func TestTraceCorrelatesTwoPhaseFlow(t *testing.T) {
	w := newWorld(t)
	w.doctorPolicy(t)

	var mu sync.Mutex
	var delivered []*event.Notification
	if _, err := w.c.Subscribe("family-doctor", schema.ClassBloodTest, func(n *event.Notification) {
		mu.Lock()
		delivered = append(delivered, n)
		mu.Unlock()
	}); err != nil {
		t.Fatal(err)
	}

	gid := w.producePublish(t, "src-1", "PRS-1")
	if !w.c.Flush(flushTimeout) {
		t.Fatal("Flush timed out")
	}
	mu.Lock()
	if len(delivered) != 1 {
		mu.Unlock()
		t.Fatalf("delivered %d notifications", len(delivered))
	}
	trace := delivered[0].Trace
	mu.Unlock()
	if len(trace) != 16 {
		t.Fatalf("delivered notification trace = %q, want 16 hex chars", trace)
	}

	pubRecs, err := w.c.Audit().Search(audit.Query{Kind: audit.KindPublish, EventID: gid})
	if err != nil {
		t.Fatal(err)
	}
	if len(pubRecs) != 1 || pubRecs[0].Trace != trace {
		t.Fatalf("publish audit trace = %+v, want trace %s", pubRecs, trace)
	}

	// Phase two, permitted: the consumer quotes the notification's trace.
	req := w.request(gid)
	req.Trace = trace
	if _, err := w.c.RequestDetails(req); err != nil {
		t.Fatal(err)
	}
	permits, err := w.c.Audit().Search(audit.Query{
		Kind: audit.KindDetailRequest, Outcome: "permit", Trace: trace,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(permits) != 1 {
		t.Fatalf("permit audit records for trace %s = %d, want 1", trace, len(permits))
	}

	// Phase two, denied: an unauthorized purpose under the same trace.
	denyReq := w.request(gid)
	denyReq.Purpose = event.PurposeStatisticalAnalysis
	denyReq.Trace = trace
	if _, err := w.c.RequestDetails(denyReq); err == nil {
		t.Fatal("statistical-analysis purpose should be denied")
	}
	denies, err := w.c.Audit().Search(audit.Query{
		Kind: audit.KindDetailRequest, Outcome: "deny", Trace: trace,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(denies) != 1 {
		t.Fatalf("deny audit records for trace %s = %d, want 1", trace, len(denies))
	}
}

func TestDetailRequestMintsTraceWhenAbsent(t *testing.T) {
	w := newWorld(t)
	w.doctorPolicy(t)
	gid := w.producePublish(t, "src-1", "PRS-1")
	if _, err := w.c.RequestDetails(w.request(gid)); err != nil {
		t.Fatal(err)
	}
	recs, err := w.c.Audit().Search(audit.Query{Kind: audit.KindDetailRequest})
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || len(recs[0].Trace) != 16 {
		t.Fatalf("audit records = %+v, want one with a minted 16-char trace", recs)
	}
}

func TestSpansCoverFlowStages(t *testing.T) {
	w := newWorld(t)
	w.doctorPolicy(t)
	gid := w.producePublish(t, "src-1", "PRS-1")

	pubRecs, err := w.c.Audit().Search(audit.Query{Kind: audit.KindPublish, EventID: gid})
	if err != nil || len(pubRecs) != 1 {
		t.Fatalf("publish audit = %+v, %v", pubRecs, err)
	}
	stages := func(trace string) map[string]bool {
		m := make(map[string]bool)
		for _, s := range w.c.Spans().ByTrace(trace) {
			m[s.Stage] = true
		}
		return m
	}
	pub := stages(pubRecs[0].Trace)
	for _, want := range []string{"index.put", "audit.append", "bus.publish"} {
		if !pub[want] {
			t.Errorf("publish trace missing stage %q (got %v)", want, pub)
		}
	}

	req := w.request(gid)
	req.Trace = "feedc0de00000001"
	if _, err := w.c.RequestDetails(req); err != nil {
		t.Fatal(err)
	}
	det := stages("feedc0de00000001")
	for _, want := range []string{"consent.check", "pdp.decide", "gateway.fetch"} {
		if !det[want] {
			t.Errorf("detail trace missing stage %q (got %v)", want, det)
		}
	}
}

func TestStatsIsCompatViewOverRegistry(t *testing.T) {
	w := newWorld(t)
	w.doctorPolicy(t)
	gid := w.producePublish(t, "src-1", "PRS-1")
	if _, err := w.c.RequestDetails(w.request(gid)); err != nil {
		t.Fatal(err)
	}
	deny := w.request(gid)
	deny.Purpose = event.PurposeStatisticalAnalysis
	if _, err := w.c.RequestDetails(deny); err == nil {
		t.Fatal("expected deny")
	}
	if _, err := w.c.InquireIndex("family-doctor", index.Inquiry{PersonID: "PRS-1"}); err != nil {
		t.Fatal(err)
	}

	st := w.c.Stats()
	if st.Published != 1 || st.DetailPermits != 1 || st.DetailDenials != 1 || st.Inquiries != 1 {
		t.Fatalf("Stats = %+v", st)
	}
	var b strings.Builder
	if err := w.c.Metrics().WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"css_publish_total 1",
		`css_detail_decisions_total{outcome="deny"} 1`,
		`css_detail_decisions_total{outcome="permit"} 1`,
		"css_index_inquiries_total 1",
		"css_publish_seconds_count 1",
		`css_detail_request_seconds_count{outcome="permit"} 1`,
		`css_stage_seconds_count{stage="index.put"} 1`,
		`css_stage_seconds_count{stage="bus.publish"} 1`,
		`css_stage_seconds_count{stage="consent.check"} 2`,
		`css_stage_seconds_count{stage="pdp.decide"} 2`,
		`css_stage_seconds_count{stage="gateway.fetch"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("controller metrics missing %q:\n%s", want, out)
		}
	}
}

func TestControllersDoNotShareDefaultRegistry(t *testing.T) {
	a := newWorld(t)
	b := newWorld(t)
	a.producePublish(t, "src-1", "PRS-1")
	if got := b.c.Stats().Published; got != 0 {
		t.Fatalf("second controller Published = %d, want 0", got)
	}
	if err := a.c.Healthy(); err != nil {
		t.Fatalf("Healthy() on open controller = %v", err)
	}
	b.c.Close()
	if err := b.c.Healthy(); err == nil {
		t.Fatal("Healthy() on closed controller should fail")
	}
}
