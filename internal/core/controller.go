// Package core implements the data controller of the CSS platform — the
// paper's central rooting node (§4, Fig. 2). The controller:
//
//   - supports producers and consumers in joining the platform (event
//     catalog, contracts);
//   - receives and stores notification messages (events index, person
//     identifiers encrypted at rest) and delivers them to authorized
//     subscribers through the service bus;
//   - resolves requests for details by enforcing the producers' privacy
//     policies and retrieving from the source only the accessible fields;
//   - resolves events index inquiries;
//   - maintains logs of every access request for auditing purposes;
//   - records citizen consent directives and honors them on every flow.
package core

import (
	"context"
	"errors"
	"fmt"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/audit"
	"repro/internal/bus"
	"repro/internal/cluster"
	"repro/internal/consent"
	"repro/internal/crypto"
	"repro/internal/enforcer"
	"repro/internal/event"
	"repro/internal/idmap"
	"repro/internal/index"
	"repro/internal/policy"
	"repro/internal/registry"
	"repro/internal/replication"
	"repro/internal/schema"
	"repro/internal/store"
	"repro/internal/telemetry"
)

// Errors reported by the controller.
var (
	ErrNotProducer       = errors.New("core: not a registered producer")
	ErrNotConsumer       = errors.New("core: not a registered consumer")
	ErrSubscriptionDeny  = errors.New("core: subscription rejected (no authorizing policy)")
	ErrConsentDeny       = errors.New("core: denied by the data subject's consent")
	ErrNotClassOwner     = errors.New("core: only the producing source may define policies for a class")
	ErrUnknownClass      = errors.New("core: class not declared in the event catalog")
	ErrClosed            = errors.New("core: controller closed")
	ErrPlaintextConflict = errors.New("core: plaintext index requested together with a master key")
	// ErrCancelled reports a flow abandoned by its caller (context
	// cancelled or deadline exceeded) — deliberately distinct from every
	// denial error: an abandoned request is not a policy decision, and
	// the audit trail records it as outcome "cancelled", never "deny".
	ErrCancelled = errors.New("core: request cancelled")
)

// Config configures a Controller.
type Config struct {
	// MasterKey is the 32-byte key protecting person identifiers in the
	// events index. Nil generates a fresh random key.
	MasterKey []byte
	// DataDir persists the controller state (index, id map, audit trail,
	// consent registry) under this directory. Empty means in-memory.
	DataDir string
	// Bus configures the event distribution fabric.
	Bus bus.Options
	// DefaultConsent is the consent decision with no recorded directive.
	// CSS deployments use opt-out (true): baseline consent is collected
	// on paper at care intake.
	DefaultConsent bool
	// Now injects a clock, used for publication stamps and validity
	// checks. Nil means time.Now.
	Now func() time.Time
	// PlaintextIndex disables identifier encryption in the events index.
	// It exists only as the baseline of experiment E5.
	PlaintextIndex bool
	// SyncWrites forces fsync-per-write on persistent stores.
	SyncWrites bool
	// Metrics is the telemetry registry the controller records into.
	// Nil creates a private registry (so embedded controllers and tests
	// never share counters); daemons pass telemetry.Default().
	Metrics *telemetry.Registry
	// SpanCapacity bounds the in-process span recorder (0 means
	// telemetry.DefaultSpanCapacity).
	SpanCapacity int
	// SpanSampleRate is the head-sampling fraction of traces whose
	// spans are recorded (ring + export). 0 means
	// telemetry.DefaultSampleRate; set 1 to record every span
	// (integration tests, debugging), negative to record none.
	// Latency metrics are observed for every span regardless, and
	// failed or slow spans are tail-kept past the draw.
	SpanSampleRate float64
	// Codec encodes the notification wire body that rides the service
	// bus (and is re-served to pull consumers / callback posts that do
	// not negotiate their own). Nil means event.XML — the paper's wire
	// format; daemons pass event.Binary via -codec=binary for the
	// compact framing.
	Codec event.Codec
	// ShardMap makes this controller one shard of a cluster: publishes
	// for person pseudonyms owned by other shards are redirected
	// (cluster.ErrWrongShard), and the controller participates in live
	// resharding. Nil (the default) runs unsharded with zero cluster
	// overhead. All shards of one cluster must share MasterKey — the
	// pseudonym partitioning assumes one HMAC keyspace.
	ShardMap *cluster.Map
	// ShardID is this controller's identity within ShardMap. Only
	// meaningful when ShardMap is set. An id absent from the map boots
	// cold — owning no keys until a reshard flips in a map naming it.
	ShardID cluster.ShardID
	// Replica starts the controller as a read replica: its stores are
	// fed by a replication follower applying the primary's WAL stream,
	// index inquiries are served locally, and every write flow answers
	// cluster.NotPrimaryError until Promote. Requires DataDir (WAL
	// shipping needs WALs).
	Replica bool
}

// Stats aggregates controller counters. It is a compatibility view over
// the telemetry registry (the single source of truth, see Metrics).
type Stats struct {
	Published           uint64 // notifications accepted
	Delivered           uint64 // notifications handed to subscriber handlers
	ConsentDrops        uint64 // deliveries suppressed by consent
	SubscriptionDenials uint64 // subscription requests rejected
	DetailPermits       uint64 // detail requests permitted
	DetailDenials       uint64 // detail requests denied
	Inquiries           uint64 // index inquiries answered
}

// instruments are the controller's registered telemetry metrics.
type instruments struct {
	published    *telemetry.Counter // css_publish_total
	delivered    *telemetry.Counter // css_deliveries_total
	consentDrops *telemetry.Counter // css_consent_drops_total
	subDenials   *telemetry.Counter // css_subscription_denials_total
	decisions    *telemetry.Counter // css_detail_decisions_total{outcome}
	inquiries    *telemetry.Counter // css_index_inquiries_total
	cacheEvents  *telemetry.Counter // css_cache_events_total{cache,result}

	busDepth      *telemetry.Gauge   // css_bus_queue_depth
	busHWM        *telemetry.Gauge   // css_bus_queue_depth_hwm
	busOverflow   *telemetry.Counter // css_bus_overflow_total{policy}
	busDLQEvicted *telemetry.Counter // css_bus_dlq_evicted_total

	// The publish and delivery histograms are unlabeled and observed on
	// every publish (deliverySeconds once per subscriber), so they are
	// held as pre-resolved children: no label join, lock or child-map
	// lookup on the hot path.
	publishSeconds  *telemetry.HistogramChild // css_publish_seconds
	deliverySeconds *telemetry.HistogramChild // css_delivery_seconds
	detailSeconds   *telemetry.Histogram      // css_detail_request_seconds{outcome}
	stageSeconds    *telemetry.Histogram      // css_stage_seconds{stage}

	clusterWrongShard     *telemetry.Counter // css_cluster_wrong_shard_total
	clusterReshardRejects *telemetry.Counter // css_cluster_reshard_rejects_total
	clusterHandoff        *telemetry.Counter // css_cluster_handoff_events_total{direction}
	clusterMapVersion     *telemetry.Gauge   // css_cluster_map_version
}

// composeBusObserver chains a caller-supplied bus observer with the
// controller's metric wiring; either side's nil callbacks are skipped.
func composeBusObserver(user, met bus.Observer) bus.Observer {
	pick := func(a, b func(int)) func(int) {
		switch {
		case a == nil:
			return b
		case b == nil:
			return a
		default:
			return func(v int) { a(v); b(v) }
		}
	}
	pickS := func(a, b func(string)) func(string) {
		switch {
		case a == nil:
			return b
		case b == nil:
			return a
		default:
			return func(v string) { a(v); b(v) }
		}
	}
	pick0 := func(a, b func()) func() {
		switch {
		case a == nil:
			return b
		case b == nil:
			return a
		default:
			return func() { a(); b() }
		}
	}
	return bus.Observer{
		QueueDepth: pick(user.QueueDepth, met.QueueDepth),
		QueueHWM:   pick(user.QueueHWM, met.QueueHWM),
		Overflow:   pickS(user.Overflow, met.Overflow),
		DLQEvicted: pick0(user.DLQEvicted, met.DLQEvicted),
	}
}

func newInstruments(reg *telemetry.Registry) instruments {
	return instruments{
		published: reg.Counter("css_publish_total",
			"Notifications accepted by the data controller."),
		delivered: reg.Counter("css_deliveries_total",
			"Notifications handed to subscriber handlers."),
		consentDrops: reg.Counter("css_consent_drops_total",
			"Deliveries suppressed by consent or revoked authorization."),
		subDenials: reg.Counter("css_subscription_denials_total",
			"Subscription requests rejected (no authorizing policy)."),
		decisions: reg.Counter("css_detail_decisions_total",
			"Detail-request decisions, by outcome (permit/deny).", "outcome"),
		inquiries: reg.Counter("css_index_inquiries_total",
			"Events-index inquiries answered."),
		cacheEvents: reg.Counter("css_cache_events_total",
			"Read-path cache lookups, by cache (pdp.decision, index.notification, "+
				"index.pseudonym, gateway.detail, gateway.flight) and result; for "+
				"gateway.flight a hit means the fetch coalesced onto an in-flight twin.",
			"cache", "result"),
		busDepth: reg.Gauge("css_bus_queue_depth",
			"Messages currently queued across all bus subscriptions."),
		busHWM: reg.Gauge("css_bus_queue_depth_hwm",
			"High-water mark of css_bus_queue_depth since start."),
		busOverflow: reg.Counter("css_bus_overflow_total",
			"Messages a full subscription queue diverted, evicted or rejected, by policy.",
			"policy"),
		busDLQEvicted: reg.Counter("css_bus_dlq_evicted_total",
			"Dead letters dropped by the per-subscription DLQ cap."),
		publishSeconds: reg.Histogram("css_publish_seconds",
			"Publish latency (validate, index, audit, route) in seconds.").Child(),
		deliverySeconds: reg.Histogram("css_delivery_seconds",
			"Per-subscriber delivery latency (consent check + handler) in seconds.").Child(),
		detailSeconds: reg.Histogram("css_detail_request_seconds",
			"Detail-request latency in seconds, by outcome.", "outcome"),
		stageSeconds: reg.Histogram("css_stage_seconds",
			"Per-stage latency of traced flows in seconds, by stage.", "stage"),
		clusterWrongShard: reg.Counter("css_cluster_wrong_shard_total",
			"Publishes refused with a wrong-shard redirect to the owning shard."),
		clusterReshardRejects: reg.Counter("css_cluster_reshard_rejects_total",
			"Publishes refused transiently because their key range was frozen for resharding."),
		clusterHandoff: reg.Counter("css_cluster_handoff_events_total",
			"Reshard handoff progress, by direction (shipped/adopted/swept).", "direction"),
		clusterMapVersion: reg.Gauge("css_cluster_map_version",
			"Version of the shard map this controller routes by (0 = unsharded)."),
	}
}

// Controller is the data controller. Safe for concurrent use.
type Controller struct {
	cfg   Config
	now   func() time.Time
	keys  *crypto.Keyring
	codec event.Codec

	reg     *registry.Registry
	enf     *enforcer.Enforcer
	ids     *idmap.Map
	idx     *index.Index
	brk     *bus.Broker
	aud     *audit.Log
	con     *consent.Registry
	pending *pendingBook

	persist persistence

	tel    *telemetry.Registry
	tracer *telemetry.Tracer
	met    instruments

	// shard is the cluster identity; nil when unsharded (see cluster.go).
	shard *shardState

	// Replication role (see replica.go): replica gates the write flows,
	// repl carries the attached shipping primary for the quorum barrier,
	// replStores lists the persistent stores in write-path dependency
	// order for replication wiring.
	replica    atomic.Bool
	replEpoch  atomic.Uint64
	repl       atomic.Pointer[replication.Primary]
	replStores []replication.NamedStore

	mu     sync.Mutex
	subSeq int
	subs   map[string]*Subscription
	closed bool
	stores []*store.Store
}

// New creates a controller.
func New(cfg Config) (*Controller, error) {
	if cfg.PlaintextIndex && cfg.MasterKey != nil {
		return nil, ErrPlaintextConflict
	}
	if cfg.Replica && cfg.DataDir == "" {
		return nil, ErrNotPersistent
	}
	c := &Controller{cfg: cfg, subs: make(map[string]*Subscription)}
	c.replica.Store(cfg.Replica)
	c.now = cfg.Now
	if c.now == nil {
		c.now = time.Now
	}
	c.codec = cfg.Codec
	if c.codec == nil {
		c.codec = event.XML
	}
	c.tel = cfg.Metrics
	if c.tel == nil {
		c.tel = telemetry.NewRegistry()
	}
	c.tracer = telemetry.NewTracer(cfg.SpanCapacity)
	switch {
	case cfg.SpanSampleRate == 0:
		c.tracer.SetSampleRate(telemetry.DefaultSampleRate)
	case cfg.SpanSampleRate < 0:
		c.tracer.SetSampleRate(0)
	default:
		c.tracer.SetSampleRate(cfg.SpanSampleRate)
	}
	c.met = newInstruments(c.tel)
	// Every finished span feeds the per-stage latency histogram, with the
	// trace as exemplar — one recording path for ring, histogram and (when
	// a daemon attaches one) the durable exporter. The hook runs once per
	// span (19 times per 16-subscriber publish), so the per-stage series
	// handles are cached instead of re-resolving labels on every call.
	var stageChildren sync.Map // stage name -> *telemetry.HistogramChild
	c.tracer.SetOnEnd(func(s *telemetry.Span) {
		ch, ok := stageChildren.Load(s.Stage)
		if !ok {
			ch, _ = stageChildren.LoadOrStore(s.Stage, c.met.stageSeconds.Child(s.Stage))
		}
		ch.(*telemetry.HistogramChild).ObserveDurationTrace(s.Duration, s.Trace)
	})

	if !cfg.PlaintextIndex {
		var err error
		if cfg.MasterKey != nil {
			c.keys, err = crypto.NewKeyring(cfg.MasterKey)
		} else {
			c.keys, _, err = crypto.NewRandomKeyring()
		}
		if err != nil {
			return nil, err
		}
	}

	open := func(name string) (*store.Store, error) {
		if cfg.DataDir == "" {
			return store.OpenMemory(), nil
		}
		st, err := store.Open(filepath.Join(cfg.DataDir, name+".wal"), store.Options{SyncEvery: cfg.SyncWrites})
		if err != nil {
			return nil, err
		}
		c.stores = append(c.stores, st)
		// The open order below (idmap, index, audit, consent, catalog,
		// policies) is the write-path dependency order replication ships
		// in; see ReplStores.
		c.replStores = append(c.replStores, replication.NamedStore{Name: name, Store: st})
		return st, nil
	}

	idStore, err := open("idmap")
	if err != nil {
		return nil, err
	}
	idxStore, err := open("index")
	if err != nil {
		return nil, err
	}
	audStore, err := open("audit")
	if err != nil {
		return nil, err
	}
	conStore, err := open("consent")
	if err != nil {
		return nil, err
	}

	c.reg = registry.New()
	c.ids = idmap.New(idStore)
	c.idx = index.New(idxStore, c.keys)
	c.aud, err = audit.Open(audStore)
	if err != nil {
		return nil, err
	}
	c.con, err = consent.Open(conStore, cfg.DefaultConsent)
	if err != nil {
		return nil, err
	}
	c.enf, err = enforcer.New(policy.NewRepository(), c.ids)
	if err != nil {
		return nil, err
	}
	c.enf.SetCacheObserver(c.recordCacheEvent)
	c.idx.SetCacheObserver(c.recordCacheEvent)
	// Export the broker's load signals as css_bus_* metrics, composing
	// with (not replacing) any observer the caller installed.
	cfg.Bus.Observer = composeBusObserver(cfg.Bus.Observer, bus.Observer{
		QueueDepth: func(delta int) { c.met.busDepth.Add(float64(delta)) },
		QueueHWM:   func(depth int) { c.met.busHWM.Set(float64(depth)) },
		Overflow:   func(policy string) { c.met.busOverflow.Inc(policy) },
		DLQEvicted: func() { c.met.busDLQEvicted.Inc() },
	})
	c.brk = bus.New(cfg.Bus)
	c.pending = newPendingBook()

	if cfg.ShardMap != nil {
		if err := c.initCluster(cfg.ShardID, cfg.ShardMap); err != nil {
			return nil, err
		}
	}

	if cfg.DataDir != "" {
		if c.persist.catalog, err = open("catalog"); err != nil {
			return nil, err
		}
		if c.persist.policies, err = open("policies"); err != nil {
			return nil, err
		}
		if err := c.reload(); err != nil {
			return nil, err
		}
	}
	return c, nil
}

// Close flushes and shuts down the controller, waiting indefinitely for
// in-flight bus deliveries to settle.
func (c *Controller) Close() error {
	return c.CloseContext(context.Background())
}

// CloseContext is Close bounded by a deadline: a consumer handler wedged
// mid-delivery is abandoned once ctx expires so the stores still fsync
// and close — a graceful drain must not hang on one stuck subscriber.
// Messages still queued at close are captured in the bus drain snapshot.
func (c *Controller) CloseContext(ctx context.Context) error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	c.mu.Unlock()
	first := c.brk.CloseContext(ctx)
	for _, st := range c.stores {
		if err := st.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

func (c *Controller) isClosed() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.closed
}

// --- membership & catalog -------------------------------------------------

// RegisterProducer admits a data source to the platform. Re-registering
// an existing producer is idempotent (the contract is simply confirmed),
// so provisioning scripts can run against a reloaded controller.
func (c *Controller) RegisterProducer(id event.ProducerID, name string) error {
	if c.isClosed() {
		return ErrClosed
	}
	if c.replica.Load() {
		return c.notPrimary()
	}
	if err := c.reg.RegisterProducer(id, name); err != nil {
		if registryDuplicate(err) {
			return nil
		}
		return err
	}
	return c.persistProducer(id, name)
}

// RegisterConsumer admits a consumer organization. Idempotent like
// RegisterProducer.
func (c *Controller) RegisterConsumer(actor event.Actor, name string) error {
	if c.isClosed() {
		return ErrClosed
	}
	if c.replica.Load() {
		return c.notPrimary()
	}
	if err := c.reg.RegisterConsumer(actor, name); err != nil {
		if registryDuplicate(err) {
			return nil
		}
		return err
	}
	return c.persistConsumer(actor, name)
}

// DeclareClass installs an event class declaration in the catalog.
// Re-declaring the identical version by the same producer is idempotent;
// a newer version upgrades as usual.
func (c *Controller) DeclareClass(producer event.ProducerID, s *schema.Schema) error {
	if c.isClosed() {
		return ErrClosed
	}
	if c.replica.Load() {
		return c.notPrimary()
	}
	if err := c.reg.DeclareClass(producer, s); err != nil {
		if s != nil {
			if existing, gerr := c.reg.Class(s.Class()); gerr == nil &&
				existing.Producer == producer && existing.Schema.Version() == s.Version() {
				return nil // idempotent re-declaration
			}
		}
		return err
	}
	return c.persistClass(producer, s)
}

// AttachGateway connects a producer's local cooperation gateway (direct
// or via the web service transport) for detail retrieval. An in-process
// gateway exposing a cache observer hook reports its decoded-detail
// cache into this controller's registry.
func (c *Controller) AttachGateway(p event.ProducerID, g enforcer.DetailSource) error {
	if c.isClosed() {
		return ErrClosed
	}
	if !c.reg.HasProducer(p) {
		return fmt.Errorf("%w: %s", ErrNotProducer, p)
	}
	if cg, ok := g.(interface{ SetCacheObserver(func(string, bool)) }); ok {
		cg.SetCacheObserver(c.recordCacheEvent)
	}
	return c.enf.AttachGateway(p, g)
}

// Catalog exposes the event catalog for discovery.
func (c *Controller) Catalog() *registry.Registry { return c.reg }

// Codec returns the wire codec notifications are encoded with on the
// service bus (never nil; defaults to event.XML).
func (c *Controller) Codec() event.Codec { return c.codec }

// Audit exposes the audit log for inquiry and verification.
func (c *Controller) Audit() *audit.Log { return c.aud }

// --- policies ---------------------------------------------------------------

// DefinePolicy stores a privacy policy elicited by a data producer. The
// producer must own the class, and the field set must be a subset of the
// class schema (Definition 2: F ⊆ e_j).
func (c *Controller) DefinePolicy(p *policy.Policy) (*policy.Policy, error) {
	if c.isClosed() {
		return nil, ErrClosed
	}
	if c.replica.Load() {
		return nil, c.notPrimary()
	}
	decl, err := c.reg.Class(p.Class)
	if err != nil {
		return nil, fmt.Errorf("%w: %s", ErrUnknownClass, p.Class)
	}
	if decl.Producer != p.Producer {
		return nil, fmt.Errorf("%w: %s is owned by %s", ErrNotClassOwner, p.Class, decl.Producer)
	}
	if err := decl.Schema.CheckFields(p.Fields); err != nil {
		return nil, err
	}
	stored, err := c.enf.AddPolicy(p)
	if err != nil {
		return nil, err
	}
	if err := c.persistPolicy(stored); err != nil {
		c.enf.RemovePolicy(stored.ID)
		return nil, err
	}
	// The new policy may satisfy pending access requests (§5: the
	// producer defines the policy in response to the pending request).
	c.pending.resolveBy(stored)
	return stored, nil
}

// RevokePolicy removes a policy.
func (c *Controller) RevokePolicy(id policy.ID) error {
	if c.isClosed() {
		return ErrClosed
	}
	if c.replica.Load() {
		return c.notPrimary()
	}
	if err := c.enf.RemovePolicy(id); err != nil {
		return err
	}
	return c.unpersistPolicy(id)
}

// Policies returns the policies defined by a producer.
func (c *Controller) Policies(producer event.ProducerID) []*policy.Policy {
	return c.enf.Repository().ByProducer(producer)
}

// --- consent ---------------------------------------------------------------

// RecordConsent stores a citizen consent directive. Consent is checked
// live on every flow (it is never part of a cached decision), but the
// enforcer's decision epoch is bumped anyway as defense in depth: no
// cache entry outlives any authorization-relevant change.
func (c *Controller) RecordConsent(d consent.Directive) (consent.Directive, error) {
	if c.isClosed() {
		return consent.Directive{}, ErrClosed
	}
	if c.replica.Load() {
		return consent.Directive{}, c.notPrimary()
	}
	stored, err := c.con.Record(d)
	if err == nil {
		c.enf.InvalidateDecisions()
	}
	return stored, err
}

// ConsentDirectives lists the directives of a data subject.
func (c *Controller) ConsentDirectives(personID string) []consent.Directive {
	return c.con.Directives(personID)
}

// --- stats & telemetry ------------------------------------------------------

// Stats returns a snapshot of the controller counters. It is a
// compatibility view computed from the telemetry registry.
func (c *Controller) Stats() Stats {
	return Stats{
		Published:           c.met.published.Value(),
		Delivered:           c.met.delivered.Value(),
		ConsentDrops:        c.met.consentDrops.Value(),
		SubscriptionDenials: c.met.subDenials.Value(),
		DetailPermits:       c.met.decisions.Value("permit"),
		DetailDenials:       c.met.decisions.Value("deny"),
		Inquiries:           c.met.inquiries.Value(),
	}
}

// Metrics exposes the controller's telemetry registry (the serving layer
// mounts it at /metrics).
func (c *Controller) Metrics() *telemetry.Registry { return c.tel }

// Spans exposes the in-process span recorder with the per-stage timings
// of recent traced flows.
func (c *Controller) Spans() *telemetry.SpanLog { return c.tracer.Spans() }

// Tracer exposes the controller's tracer; the serving layer attaches it
// to request contexts and daemons attach the durable span exporter.
func (c *Controller) Tracer() *telemetry.Tracer { return c.tracer }

// recordCacheEvent counts one read-path cache lookup; it is the cache
// observer wired into the enforcer, the events index, and any
// in-process gateway.
func (c *Controller) recordCacheEvent(cache string, hit bool) {
	if hit {
		c.met.cacheEvents.Inc(cache, "hit")
	} else {
		c.met.cacheEvents.Inc(cache, "miss")
	}
}

// Healthy reports whether the controller can serve traffic; it backs the
// /healthz endpoint.
func (c *Controller) Healthy() error {
	if c.isClosed() {
		return ErrClosed
	}
	return nil
}

// Flush waits until the bus drained all pending deliveries.
func (c *Controller) Flush(timeout time.Duration) bool {
	return c.brk.Flush(timeout)
}

// FlushContext is Flush under a context; on abort the error names the
// wedged subscriptions (see bus.FlushContext).
func (c *Controller) FlushContext(ctx context.Context) error {
	return c.brk.FlushContext(ctx)
}

// HasSubscription reports whether the subscription id is currently
// registered. Subscriptions live in controller memory, so a restarted
// controller forgets them; remote consumers poll this (GET
// /ws/subscription) to detect the loss and re-subscribe.
func (c *Controller) HasSubscription(id string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	_, ok := c.subs[id]
	return ok
}
