package core

import (
	"sort"
	"sync"
	"time"

	"repro/internal/event"
	"repro/internal/policy"
)

// PendingRequest records an access attempt that was denied for lack of a
// policy, so the owning data producer can be "notified of the pending
// access request and ... guided by the Privacy Requirements Elicitation
// Tool to define a privacy policy" (paper §5). Repeated attempts by the
// same (actor, class, purpose) coalesce into one entry with a counter.
type PendingRequest struct {
	// Actor is the consumer that asked.
	Actor event.Actor
	// Class is the event class it asked about.
	Class event.ClassID
	// Purpose is the declared purpose; empty for subscription attempts
	// (subscription is purpose-agnostic).
	Purpose event.Purpose
	// Count is how many attempts coalesced here.
	Count int
	// FirstAt/LastAt bound the attempts in time.
	FirstAt time.Time
	LastAt  time.Time
}

// pendingKey identifies a coalesced entry.
type pendingKey struct {
	actor   event.Actor
	class   event.ClassID
	purpose event.Purpose
}

// pendingBook tracks pending access requests per owning producer.
type pendingBook struct {
	mu      sync.Mutex
	entries map[pendingKey]*PendingRequest
}

func newPendingBook() *pendingBook {
	return &pendingBook{entries: make(map[pendingKey]*PendingRequest)}
}

func (b *pendingBook) note(actor event.Actor, class event.ClassID, purpose event.Purpose, at time.Time) {
	b.mu.Lock()
	defer b.mu.Unlock()
	k := pendingKey{actor, class, purpose}
	if e, ok := b.entries[k]; ok {
		e.Count++
		e.LastAt = at
		return
	}
	b.entries[k] = &PendingRequest{
		Actor: actor, Class: class, Purpose: purpose,
		Count: 1, FirstAt: at, LastAt: at,
	}
}

// resolveBy removes entries a newly defined policy satisfies.
func (b *pendingBook) resolveBy(p *policy.Policy) {
	b.mu.Lock()
	defer b.mu.Unlock()
	for k := range b.entries {
		if k.class != p.Class {
			continue
		}
		if !p.Actor.Contains(k.actor) {
			continue
		}
		if k.purpose != "" && !p.AllowsPurpose(k.purpose) {
			continue
		}
		delete(b.entries, k)
	}
}

func (b *pendingBook) list(class func(event.ClassID) bool) []PendingRequest {
	b.mu.Lock()
	defer b.mu.Unlock()
	var out []PendingRequest
	for _, e := range b.entries {
		if class(e.Class) {
			out = append(out, *e)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if !out[i].LastAt.Equal(out[j].LastAt) {
			return out[i].LastAt.After(out[j].LastAt)
		}
		if out[i].Actor != out[j].Actor {
			return out[i].Actor < out[j].Actor
		}
		return out[i].Class < out[j].Class
	})
	return out
}

// PendingRequests returns the unresolved access requests on classes owned
// by producer, most recent first. Defining a policy that satisfies an
// entry removes it.
func (c *Controller) PendingRequests(producer event.ProducerID) []PendingRequest {
	return c.pending.list(func(class event.ClassID) bool {
		decl, err := c.reg.Class(class)
		return err == nil && decl.Producer == producer
	})
}
