package core

import (
	"bytes"
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/audit"
	"repro/internal/consent"
	"repro/internal/crypto"
	"repro/internal/enforcer"
	"repro/internal/event"
	"repro/internal/gateway"
	"repro/internal/index"
	"repro/internal/policy"
	"repro/internal/schema"
	"repro/internal/store"
)

const flushTimeout = 5 * time.Second

// world is a fully wired test platform: a controller, the hospital
// producer with its gateway, and the family-doctor consumer.
type world struct {
	c   *Controller
	gw  *gateway.Gateway
	now time.Time
}

func newWorld(t *testing.T) *world {
	t.Helper()
	w := &world{now: time.Date(2010, 6, 1, 9, 0, 0, 0, time.UTC)}
	c, err := New(Config{
		MasterKey:      bytes.Repeat([]byte{5}, crypto.KeySize),
		DefaultConsent: true,
		Now:            func() time.Time { return w.now },
		SpanSampleRate: 1, // tests assert on recorded spans
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	w.c = c

	if err := c.RegisterProducer("hospital", "Hospital S. Maria"); err != nil {
		t.Fatal(err)
	}
	if err := c.RegisterConsumer("family-doctor", "Family doctors"); err != nil {
		t.Fatal(err)
	}
	if err := c.DeclareClass("hospital", schema.BloodTest()); err != nil {
		t.Fatal(err)
	}
	gw, err := gateway.New("hospital", store.OpenMemory(), c.Catalog())
	if err != nil {
		t.Fatal(err)
	}
	if err := c.AttachGateway("hospital", gw); err != nil {
		t.Fatal(err)
	}
	w.gw = gw
	return w
}

// producePublish persists the detail at the gateway and publishes the
// notification, as a source system would.
func (w *world) producePublish(t *testing.T, src event.SourceID, person string) event.GlobalID {
	t.Helper()
	d := event.NewDetail(schema.ClassBloodTest, src, "hospital").
		Set("patient-id", person).
		Set("exam-date", "2010-05-30").
		Set("hemoglobin", "13.5").
		Set("aids-test", "negative").
		Set("lab-notes", "routine")
	if err := w.gw.Persist(d); err != nil {
		t.Fatal(err)
	}
	gid, err := w.c.Publish(&event.Notification{
		SourceID:   src,
		Class:      schema.ClassBloodTest,
		PersonID:   person,
		Summary:    "blood test completed",
		OccurredAt: w.now.Add(-time.Hour),
		Producer:   "hospital",
	})
	if err != nil {
		t.Fatal(err)
	}
	return gid
}

// doctorPolicy authorizes the family doctor on blood tests.
func (w *world) doctorPolicy(t *testing.T, fields ...event.FieldName) *policy.Policy {
	t.Helper()
	if len(fields) == 0 {
		fields = []event.FieldName{"patient-id", "exam-date", "hemoglobin"}
	}
	p, err := w.c.DefinePolicy(&policy.Policy{
		Producer: "hospital",
		Actor:    "family-doctor",
		Class:    schema.ClassBloodTest,
		Purposes: []event.Purpose{event.PurposeHealthcareTreatment},
		Fields:   fields,
	})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func (w *world) request(gid event.GlobalID) *event.DetailRequest {
	return &event.DetailRequest{
		Requester: "family-doctor",
		Class:     schema.ClassBloodTest,
		EventID:   gid,
		Purpose:   event.PurposeHealthcareTreatment,
	}
}

func TestNewConfigValidation(t *testing.T) {
	if _, err := New(Config{PlaintextIndex: true, MasterKey: make([]byte, 32)}); !errors.Is(err, ErrPlaintextConflict) {
		t.Errorf("plaintext+key = %v", err)
	}
	if _, err := New(Config{MasterKey: []byte("short")}); err == nil {
		t.Error("bad key accepted")
	}
	c, err := New(Config{})
	if err != nil {
		t.Fatalf("default config: %v", err)
	}
	c.Close()
}

func TestPublishGuards(t *testing.T) {
	w := newWorld(t)
	n := &event.Notification{
		SourceID: "s", Class: schema.ClassBloodTest, PersonID: "P",
		OccurredAt: w.now, Producer: "hospital",
	}
	// Unknown producer.
	bad := *n
	bad.Producer = "ghost"
	if _, err := w.c.Publish(&bad); !errors.Is(err, ErrNotProducer) {
		t.Errorf("unknown producer = %v", err)
	}
	// Undeclared class.
	bad2 := *n
	bad2.Class = "never.declared"
	if _, err := w.c.Publish(&bad2); !errors.Is(err, ErrUnknownClass) {
		t.Errorf("undeclared class = %v", err)
	}
	// Class owned by someone else.
	w.c.RegisterProducer("other", "Other")
	bad3 := *n
	bad3.Producer = "other"
	if _, err := w.c.Publish(&bad3); !errors.Is(err, ErrNotClassOwner) {
		t.Errorf("foreign class = %v", err)
	}
	// Invalid notification.
	bad4 := *n
	bad4.PersonID = ""
	if _, err := w.c.Publish(&bad4); err == nil {
		t.Error("invalid notification accepted")
	}
	// Valid one.
	gid, err := w.c.Publish(n)
	if err != nil || gid == "" {
		t.Fatalf("Publish = %q, %v", gid, err)
	}
	// Idempotent retry.
	gid2, err := w.c.Publish(n)
	if err != nil || gid2 != gid {
		t.Errorf("retry = %q, %v (want %q)", gid2, err, gid)
	}
}

func TestSubscribeDenyByDefaultThenPermit(t *testing.T) {
	w := newWorld(t)
	handler := func(*event.Notification) {}
	// No policy yet: rejected.
	if _, err := w.c.Subscribe("family-doctor", schema.ClassBloodTest, handler); !errors.Is(err, ErrSubscriptionDeny) {
		t.Fatalf("subscribe without policy = %v", err)
	}
	if w.c.Stats().SubscriptionDenials != 1 {
		t.Error("denial not counted")
	}
	w.doctorPolicy(t)
	sub, err := w.c.Subscribe("family-doctor", schema.ClassBloodTest, handler)
	if err != nil {
		t.Fatalf("subscribe with policy = %v", err)
	}
	if sub.Actor() != "family-doctor" || sub.Class() != schema.ClassBloodTest || sub.ID() == "" {
		t.Errorf("subscription = %+v", sub)
	}
}

func TestSubscribeGuards(t *testing.T) {
	w := newWorld(t)
	w.doctorPolicy(t)
	h := func(*event.Notification) {}
	if _, err := w.c.Subscribe("never-registered", schema.ClassBloodTest, h); !errors.Is(err, ErrNotConsumer) {
		t.Errorf("unregistered consumer = %v", err)
	}
	if _, err := w.c.Subscribe("family-doctor", "never.declared", h); !errors.Is(err, ErrUnknownClass) {
		t.Errorf("unknown class = %v", err)
	}
	if _, err := w.c.Subscribe("family-doctor", schema.ClassBloodTest, nil); err == nil {
		t.Error("nil handler accepted")
	}
	if _, err := w.c.Subscribe("bad//actor", schema.ClassBloodTest, h); err == nil {
		t.Error("invalid actor accepted")
	}
}

func TestEndToEndNotificationDelivery(t *testing.T) {
	w := newWorld(t)
	w.doctorPolicy(t)
	var mu sync.Mutex
	var got []*event.Notification
	_, err := w.c.Subscribe("family-doctor", schema.ClassBloodTest, func(n *event.Notification) {
		mu.Lock()
		got = append(got, n)
		mu.Unlock()
	})
	if err != nil {
		t.Fatal(err)
	}
	gid := w.producePublish(t, "src-1", "PRS-1")
	if !w.c.Flush(flushTimeout) {
		t.Fatal("Flush timed out")
	}
	mu.Lock()
	defer mu.Unlock()
	if len(got) != 1 {
		t.Fatalf("delivered %d notifications", len(got))
	}
	n := got[0]
	if n.ID != gid || n.PersonID != "PRS-1" || n.Class != schema.ClassBloodTest {
		t.Errorf("notification = %+v", n)
	}
	if n.SourceID != "" {
		t.Error("source id leaked to consumer")
	}
	if w.c.Stats().Delivered != 1 {
		t.Errorf("stats = %+v", w.c.Stats())
	}
}

func TestDeliveryHonorsConsentOptOut(t *testing.T) {
	w := newWorld(t)
	w.doctorPolicy(t)
	if _, err := w.c.RecordConsent(consent.Directive{PersonID: "PRS-OPTOUT", Allow: false}); err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	count := 0
	w.c.Subscribe("family-doctor", schema.ClassBloodTest, func(*event.Notification) {
		mu.Lock()
		count++
		mu.Unlock()
	})
	w.producePublish(t, "src-1", "PRS-OPTOUT")
	w.producePublish(t, "src-2", "PRS-OK")
	if !w.c.Flush(flushTimeout) {
		t.Fatal("Flush timed out")
	}
	mu.Lock()
	defer mu.Unlock()
	if count != 1 {
		t.Errorf("delivered %d, want 1 (opt-out suppressed)", count)
	}
	if w.c.Stats().ConsentDrops != 1 {
		t.Errorf("ConsentDrops = %d", w.c.Stats().ConsentDrops)
	}
}

func TestSubscriptionCancelAndRevocation(t *testing.T) {
	w := newWorld(t)
	p := w.doctorPolicy(t)
	var mu sync.Mutex
	count := 0
	sub, _ := w.c.Subscribe("family-doctor", schema.ClassBloodTest, func(*event.Notification) {
		mu.Lock()
		count++
		mu.Unlock()
	})
	w.producePublish(t, "src-1", "P1")
	w.c.Flush(flushTimeout)

	// Revoking the policy stops deliveries on the live subscription.
	if err := w.c.RevokePolicy(p.ID); err != nil {
		t.Fatal(err)
	}
	w.producePublish(t, "src-2", "P2")
	w.c.Flush(flushTimeout)
	mu.Lock()
	if count != 1 {
		t.Errorf("delivered %d after revocation, want 1", count)
	}
	mu.Unlock()

	if err := sub.Cancel(); err != nil {
		t.Fatalf("Cancel: %v", err)
	}
	w.producePublish(t, "src-3", "P3")
	w.c.Flush(flushTimeout)
	mu.Lock()
	if count != 1 {
		t.Errorf("delivered %d after cancel", count)
	}
	mu.Unlock()
}

func TestRequestDetailsTwoPhase(t *testing.T) {
	w := newWorld(t)
	w.doctorPolicy(t, "patient-id", "hemoglobin")
	gid := w.producePublish(t, "src-1", "PRS-1")

	d, err := w.c.RequestDetails(w.request(gid))
	if err != nil {
		t.Fatalf("RequestDetails: %v", err)
	}
	if v, _ := d.Get("hemoglobin"); v != "13.5" {
		t.Errorf("hemoglobin = %q", v)
	}
	for _, hidden := range []event.FieldName{"aids-test", "lab-notes", "exam-date"} {
		if _, ok := d.Get(hidden); ok {
			t.Errorf("unauthorized field %s released", hidden)
		}
	}
	if w.c.Stats().DetailPermits != 1 {
		t.Errorf("stats = %+v", w.c.Stats())
	}
}

func TestRequestDetailsDenials(t *testing.T) {
	w := newWorld(t)
	gid := w.producePublish(t, "src-1", "PRS-1")

	// Deny-by-default (no policy).
	if _, err := w.c.RequestDetails(w.request(gid)); !errors.Is(err, enforcer.ErrDenied) {
		t.Errorf("no policy = %v", err)
	}
	w.doctorPolicy(t)
	// Unknown requester.
	r := w.request(gid)
	r.Requester = "never-registered"
	if _, err := w.c.RequestDetails(r); !errors.Is(err, ErrNotConsumer) {
		t.Errorf("unknown requester = %v", err)
	}
	// Unknown event.
	r2 := w.request("evt-ghost")
	if _, err := w.c.RequestDetails(r2); !errors.Is(err, enforcer.ErrUnknownEvent) {
		t.Errorf("unknown event = %v", err)
	}
	// Consent opt-out for this purpose.
	w.c.RecordConsent(consent.Directive{PersonID: "PRS-1", Allow: false,
		Scope: consent.Scope{Purpose: event.PurposeHealthcareTreatment}})
	if _, err := w.c.RequestDetails(w.request(gid)); !errors.Is(err, ErrConsentDeny) {
		t.Errorf("consent opt-out = %v", err)
	}
	st := w.c.Stats()
	if st.DetailDenials != 3 || st.DetailPermits != 0 {
		t.Errorf("stats = %+v", st)
	}
}

func TestRequestDetailsValidityWindowWithSimulatedClock(t *testing.T) {
	w := newWorld(t)
	p, err := w.c.DefinePolicy(&policy.Policy{
		Producer: "hospital",
		Actor:    "family-doctor",
		Class:    schema.ClassBloodTest,
		Purposes: []event.Purpose{event.PurposeHealthcareTreatment},
		Fields:   []event.FieldName{"patient-id"},
		NotAfter: w.now.AddDate(0, 6, 0), // contract ends in 6 months
	})
	if err != nil {
		t.Fatal(err)
	}
	_ = p
	gid := w.producePublish(t, "src-1", "PRS-1")

	if _, err := w.c.RequestDetails(w.request(gid)); err != nil {
		t.Fatalf("in-contract request: %v", err)
	}
	// Months later (temporal decoupling): the contract has expired.
	w.now = w.now.AddDate(1, 0, 0)
	if _, err := w.c.RequestDetails(w.request(gid)); !errors.Is(err, enforcer.ErrDenied) {
		t.Errorf("post-contract request = %v", err)
	}
}

func TestDefinePolicyGuards(t *testing.T) {
	w := newWorld(t)
	base := policy.Policy{
		Producer: "hospital",
		Actor:    "family-doctor",
		Class:    schema.ClassBloodTest,
		Purposes: []event.Purpose{event.PurposeHealthcareTreatment},
		Fields:   []event.FieldName{"patient-id"},
	}
	// Unknown class.
	bad := base
	bad.Class = "never.declared"
	if _, err := w.c.DefinePolicy(&bad); !errors.Is(err, ErrUnknownClass) {
		t.Errorf("unknown class = %v", err)
	}
	// Not the class owner.
	w.c.RegisterProducer("other", "Other")
	bad2 := base
	bad2.Producer = "other"
	if _, err := w.c.DefinePolicy(&bad2); !errors.Is(err, ErrNotClassOwner) {
		t.Errorf("foreign producer = %v", err)
	}
	// Field outside the schema (F ⊆ e_j violated).
	bad3 := base
	bad3.Fields = []event.FieldName{"no-such-field"}
	if _, err := w.c.DefinePolicy(&bad3); err == nil {
		t.Error("out-of-schema field accepted")
	}
	if got, err := w.c.DefinePolicy(&base); err != nil || got.ID == "" {
		t.Errorf("valid policy = %+v, %v", got, err)
	}
	if len(w.c.Policies("hospital")) != 1 {
		t.Error("Policies listing wrong")
	}
}

func TestInquireIndex(t *testing.T) {
	w := newWorld(t)
	w.doctorPolicy(t)
	gidA := w.producePublish(t, "src-1", "PRS-A")
	w.producePublish(t, "src-2", "PRS-B")
	w.producePublish(t, "src-3", "PRS-A")

	// Person-scoped inquiry.
	got, err := w.c.InquireIndex("family-doctor", index.Inquiry{PersonID: "PRS-A"})
	if err != nil {
		t.Fatalf("InquireIndex: %v", err)
	}
	if len(got) != 2 {
		t.Fatalf("inquiry = %d results", len(got))
	}
	if got[0].ID != gidA && got[1].ID != gidA {
		t.Error("expected event missing")
	}
	for _, n := range got {
		if n.SourceID != "" {
			t.Error("source id leaked in inquiry result")
		}
	}
	// Class-scoped inquiry without authorization is rejected outright.
	w.c.RegisterConsumer("insurance-co", "Insurance")
	if _, err := w.c.InquireIndex("insurance-co", index.Inquiry{Class: schema.ClassBloodTest}); !errors.Is(err, ErrSubscriptionDeny) {
		t.Errorf("unauthorized class inquiry = %v", err)
	}
	// Open inquiry by an unauthorized consumer yields nothing.
	res, err := w.c.InquireIndex("insurance-co", index.Inquiry{})
	if err != nil || len(res) != 0 {
		t.Errorf("unauthorized open inquiry = %d, %v", len(res), err)
	}
	// Consent opt-out filters inquiry results.
	w.c.RecordConsent(consent.Directive{PersonID: "PRS-A", Allow: false})
	res2, _ := w.c.InquireIndex("family-doctor", index.Inquiry{})
	if len(res2) != 1 {
		t.Errorf("inquiry after opt-out = %d, want 1", len(res2))
	}
	// Limit applies after authorization filtering.
	res3, _ := w.c.InquireIndex("family-doctor", index.Inquiry{Limit: 1})
	if len(res3) != 1 {
		t.Errorf("limited inquiry = %d", len(res3))
	}
	// Unknown consumer.
	if _, err := w.c.InquireIndex("ghost", index.Inquiry{}); !errors.Is(err, ErrNotConsumer) {
		t.Errorf("unknown consumer = %v", err)
	}
}

func TestAuditTrailCoversAllFlows(t *testing.T) {
	w := newWorld(t)
	w.doctorPolicy(t)
	gid := w.producePublish(t, "src-1", "PRS-1")
	w.c.Subscribe("family-doctor", schema.ClassBloodTest, func(*event.Notification) {})
	w.c.RequestDetails(w.request(gid))
	r := w.request(gid)
	r.Purpose = event.PurposeStatisticalAnalysis // will be denied
	w.c.RequestDetails(r)
	w.c.InquireIndex("family-doctor", index.Inquiry{PersonID: "PRS-1"})

	log := w.c.Audit()
	if err := log.Verify(); err != nil {
		t.Fatalf("audit Verify: %v", err)
	}
	count := func(q audit.Query) int {
		recs, err := log.Search(q)
		if err != nil {
			t.Fatal(err)
		}
		return len(recs)
	}
	if n := count(audit.Query{Kind: audit.KindPublish}); n != 1 {
		t.Errorf("publish records = %d", n)
	}
	if n := count(audit.Query{Kind: audit.KindSubscribe, Outcome: "permit"}); n != 1 {
		t.Errorf("subscribe permits = %d", n)
	}
	if n := count(audit.Query{Kind: audit.KindDetailRequest, Outcome: "permit"}); n != 1 {
		t.Errorf("detail permits = %d", n)
	}
	if n := count(audit.Query{Kind: audit.KindDetailRequest, Outcome: "deny"}); n != 1 {
		t.Errorf("detail denials = %d", n)
	}
	if n := count(audit.Query{Kind: audit.KindIndexInquiry}); n != 1 {
		t.Errorf("inquiries = %d", n)
	}
	// The denied record must name the purpose for the guarantor.
	denied, _ := log.Search(audit.Query{Kind: audit.KindDetailRequest, Outcome: "deny"})
	if denied[0].Purpose != event.PurposeStatisticalAnalysis {
		t.Errorf("denied record purpose = %q", denied[0].Purpose)
	}
}

func TestClosedController(t *testing.T) {
	w := newWorld(t)
	w.c.Close()
	if err := w.c.RegisterProducer("x", "x"); !errors.Is(err, ErrClosed) {
		t.Errorf("RegisterProducer after close = %v", err)
	}
	if _, err := w.c.Publish(&event.Notification{}); !errors.Is(err, ErrClosed) {
		t.Errorf("Publish after close = %v", err)
	}
	if _, err := w.c.Subscribe("a", "c.x", func(*event.Notification) {}); !errors.Is(err, ErrClosed) {
		t.Errorf("Subscribe after close = %v", err)
	}
	if _, err := w.c.RequestDetails(&event.DetailRequest{}); !errors.Is(err, ErrClosed) {
		t.Errorf("RequestDetails after close = %v", err)
	}
	if _, err := w.c.InquireIndex("a", index.Inquiry{}); !errors.Is(err, ErrClosed) {
		t.Errorf("InquireIndex after close = %v", err)
	}
	if err := w.c.Close(); err != nil {
		t.Errorf("double Close = %v", err)
	}
}
