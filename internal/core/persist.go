package core

import (
	"errors"
	"fmt"
	"strings"

	"repro/internal/event"
	"repro/internal/policy"
	"repro/internal/registry"
	"repro/internal/schema"
	"repro/internal/store"
)

// Catalog and policy persistence: with a data directory configured, the
// controller writes every membership registration, class declaration and
// privacy policy through to its stores and reloads them at startup, so a
// restarted controller resumes with the full platform state (the events
// index, id map, audit trail and consent registry are persistent
// already). Gateway attachments are process-level wiring and are
// re-established by the operator at boot.
//
// Key layout in the catalog store:
//
//	prod/<id>     → producer display name
//	cons/<actor>  → consumer display name
//	class/<class> → <producer> NUL <schema XML>
//
// and in the policy store:
//
//	p/<policy id> → compact policy XML
type persistence struct {
	catalog  *store.Store // nil: in-memory controller
	policies *store.Store
}

func (c *Controller) persistProducer(id event.ProducerID, name string) error {
	if c.persist.catalog == nil {
		return nil
	}
	return c.persist.catalog.Put("prod/"+string(id), []byte(name))
}

func (c *Controller) persistConsumer(actor event.Actor, name string) error {
	if c.persist.catalog == nil {
		return nil
	}
	return c.persist.catalog.Put("cons/"+string(actor), []byte(name))
}

func (c *Controller) persistClass(producer event.ProducerID, s *schema.Schema) error {
	if c.persist.catalog == nil {
		return nil
	}
	data, err := schema.Encode(s)
	if err != nil {
		return err
	}
	val := append([]byte(string(producer)+"\x00"), data...)
	return c.persist.catalog.Put("class/"+string(s.Class()), val)
}

func (c *Controller) persistPolicy(p *policy.Policy) error {
	if c.persist.policies == nil {
		return nil
	}
	data, err := policy.Encode(p)
	if err != nil {
		return err
	}
	return c.persist.policies.Put("p/"+string(p.ID), data)
}

func (c *Controller) unpersistPolicy(id policy.ID) error {
	if c.persist.policies == nil {
		return nil
	}
	return c.persist.policies.Delete("p/" + string(id))
}

// reload restores catalog and policies from the stores. Called once from
// New, before the controller is visible to callers.
func (c *Controller) reload() error {
	if c.persist.catalog != nil {
		var rerr error
		err := c.persist.catalog.AscendPrefix("prod/", func(k string, v []byte) bool {
			rerr = c.reg.RegisterProducer(event.ProducerID(strings.TrimPrefix(k, "prod/")), string(v))
			return rerr == nil
		})
		if err != nil {
			return err
		}
		if rerr != nil {
			return fmt.Errorf("core: reload producers: %w", rerr)
		}
		err = c.persist.catalog.AscendPrefix("cons/", func(k string, v []byte) bool {
			rerr = c.reg.RegisterConsumer(event.Actor(strings.TrimPrefix(k, "cons/")), string(v))
			return rerr == nil
		})
		if err != nil {
			return err
		}
		if rerr != nil {
			return fmt.Errorf("core: reload consumers: %w", rerr)
		}
		err = c.persist.catalog.AscendPrefix("class/", func(k string, v []byte) bool {
			sep := strings.IndexByte(string(v), 0)
			if sep < 0 {
				rerr = errors.New("core: corrupt class record " + k)
				return false
			}
			producer := event.ProducerID(v[:sep])
			s, err := schema.Decode(v[sep+1:])
			if err != nil {
				rerr = fmt.Errorf("core: reload class %s: %w", k, err)
				return false
			}
			rerr = c.reg.DeclareClass(producer, s)
			return rerr == nil
		})
		if err != nil {
			return err
		}
		if rerr != nil {
			return rerr
		}
	}
	if c.persist.policies != nil {
		var rerr error
		err := c.persist.policies.AscendPrefix("p/", func(k string, v []byte) bool {
			p, err := policy.Decode(v)
			if err != nil {
				rerr = fmt.Errorf("core: reload policy %s: %w", k, err)
				return false
			}
			if _, err := c.enf.AddPolicy(p); err != nil {
				rerr = fmt.Errorf("core: reload policy %s: %w", k, err)
				return false
			}
			return true
		})
		if err != nil {
			return err
		}
		if rerr != nil {
			return rerr
		}
	}
	return nil
}

// registryDuplicate reports the benign idempotent-rejoin case.
func registryDuplicate(err error) bool {
	return errors.Is(err, registry.ErrDuplicate)
}
