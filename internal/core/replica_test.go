package core

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/consent"
	"repro/internal/crypto"
	"repro/internal/event"
	"repro/internal/index"
	"repro/internal/policy"
	"repro/internal/replication"
	"repro/internal/schema"
)

// replRig wires a primary controller to a replica controller over a
// real replication link.
type replRig struct {
	primary *Controller
	replica *Controller
	pri     *replication.Primary
	fol     *replication.Follower
}

func newReplRig(t *testing.T, quorum bool) *replRig {
	t.Helper()
	key := bytes.Repeat([]byte{7}, crypto.KeySize)
	primary, err := New(Config{DataDir: t.TempDir(), MasterKey: key, DefaultConsent: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { primary.Close() })
	replica, err := New(Config{DataDir: t.TempDir(), MasterKey: key, DefaultConsent: true, Replica: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { replica.Close() })

	rs, err := replica.ReplStores()
	if err != nil {
		t.Fatal(err)
	}
	fol, err := replication.NewFollower("127.0.0.1:0", replication.FollowerConfig{
		Stores:  rs,
		Epoch:   1,
		OnApply: replica.OnReplicatedApply(),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { fol.Close() })

	ps, err := primary.ReplStores()
	if err != nil {
		t.Fatal(err)
	}
	pri, err := replication.NewPrimary(replication.PrimaryConfig{
		Stores: ps,
		Epoch:  1,
		Quorum: quorum,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { pri.Close() })
	primary.AttachReplication(pri)
	pri.AddFollower(fol.Addr())
	return &replRig{primary: primary, replica: replica, pri: pri, fol: fol}
}

// waitReplicated blocks until the replica's stores hold everything the
// primary's do.
func (r *replRig) waitReplicated(t *testing.T) {
	t.Helper()
	ps, _ := r.primary.ReplStores()
	deadline := time.Now().Add(5 * time.Second)
	for {
		caught := true
		offs := r.fol.Offsets()
		for _, ns := range ps {
			if offs[ns.Name] != ns.Store.WALOffset() {
				caught = false
				break
			}
		}
		if caught {
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("replica never caught up")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func provision(t *testing.T, c *Controller) {
	t.Helper()
	if err := c.RegisterProducer("hospital", "Hospital"); err != nil {
		t.Fatal(err)
	}
	if err := c.RegisterConsumer("family-doctor", "Family doctors"); err != nil {
		t.Fatal(err)
	}
	if err := c.DeclareClass("hospital", schema.BloodTest()); err != nil {
		t.Fatal(err)
	}
	if _, err := c.DefinePolicy(&policy.Policy{
		Producer: "hospital",
		Actor:    "family-doctor",
		Class:    schema.ClassBloodTest,
		Purposes: []event.Purpose{event.PurposeHealthcareTreatment},
		Fields:   []event.FieldName{"patient-id"},
	}); err != nil {
		t.Fatal(err)
	}
}

func publishN(t *testing.T, c *Controller, n int) []event.GlobalID {
	t.Helper()
	gids := make([]event.GlobalID, 0, n)
	for i := 0; i < n; i++ {
		gid, err := c.Publish(&event.Notification{
			Producer: "hospital", SourceID: event.SourceID(fmt.Sprintf("src-%03d", i)),
			Class: schema.ClassBloodTest, PersonID: fmt.Sprintf("person-%02d", i%7),
			OccurredAt: time.Now(),
		})
		if err != nil {
			t.Fatal(err)
		}
		gids = append(gids, gid)
	}
	return gids
}

func TestReplicaServesReadsRefusesWrites(t *testing.T) {
	rig := newReplRig(t, true)
	provision(t, rig.primary)
	publishN(t, rig.primary, 25)
	rig.waitReplicated(t)

	// The replicated catalog and policies authorize the consumer on the
	// replica, so index inquiries are served locally.
	got, err := rig.replica.InquireIndex("family-doctor", index.Inquiry{Class: schema.ClassBloodTest})
	if err != nil {
		t.Fatalf("replica inquiry: %v", err)
	}
	if len(got) != 25 {
		t.Fatalf("replica inquiry returned %d notifications, want 25", len(got))
	}
	own, err := rig.replica.InquireOwn("person-03", index.Inquiry{})
	if err != nil || len(own) == 0 {
		t.Fatalf("replica own inquiry: %d, %v", len(own), err)
	}
	// Replica reads never touch the replicated audit chain.
	primLen := rig.primary.Audit().Len()
	rig.waitReplicated(t)
	if err := rig.replica.Audit().Recover(); err != nil {
		t.Fatal(err)
	}
	if rl := rig.replica.Audit().Len(); rl != primLen {
		t.Fatalf("replica audit len %d != primary %d (replica reads must not append)", rl, primLen)
	}

	// Every write flow answers the not-primary redirect.
	var np *cluster.NotPrimaryError
	if _, err := rig.replica.Publish(&event.Notification{
		Producer: "hospital", SourceID: "x", Class: schema.ClassBloodTest, PersonID: "p", OccurredAt: time.Now(),
	}); !errors.As(err, &np) {
		t.Fatalf("replica publish = %v, want NotPrimaryError", err)
	}
	if _, err := rig.replica.RecordConsent(consent.Directive{PersonID: "p"}); !errors.As(err, &np) {
		t.Fatalf("replica consent = %v, want NotPrimaryError", err)
	}
	if err := rig.replica.RegisterProducer("lab", "Lab"); !errors.As(err, &np) {
		t.Fatalf("replica register = %v, want NotPrimaryError", err)
	}
	if _, err := rig.replica.Subscribe("family-doctor", schema.ClassBloodTest, func(*event.Notification) {}); !errors.As(err, &np) {
		t.Fatalf("replica subscribe = %v, want NotPrimaryError", err)
	}
	if _, err := rig.replica.RequestDetails(&event.DetailRequest{
		Requester: "family-doctor", EventID: "e", Class: schema.ClassBloodTest,
		Purpose: event.PurposeHealthcareTreatment,
	}); !errors.As(err, &np) {
		t.Fatalf("replica details = %v, want NotPrimaryError", err)
	}

	// Consent recorded on the primary reaches the replica's filtering.
	if _, err := rig.primary.RecordConsent(consent.Directive{
		PersonID: "person-03", Allow: false,
	}); err != nil {
		t.Fatal(err)
	}
	rig.waitReplicated(t)
	got, err = rig.replica.InquireIndex("family-doctor", index.Inquiry{Class: schema.ClassBloodTest})
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range got {
		if n.PersonID == "person-03" {
			t.Fatal("opted-out subject still visible on replica")
		}
	}
}

func TestPromoteReplicaAcceptsWritesWithIntactChain(t *testing.T) {
	rig := newReplRig(t, false)
	provision(t, rig.primary)
	gids := publishN(t, rig.primary, 40)
	rig.waitReplicated(t)

	// Primary dies; the surviving replica is promoted at the next epoch.
	rig.pri.Close()
	rig.primary.Close()
	if err := rig.replica.Promote(2); err != nil {
		t.Fatal(err)
	}
	if rig.replica.IsReplica() {
		t.Fatal("promoted node still reports replica")
	}
	if rig.replica.ReplicationEpoch() != 2 {
		t.Fatalf("promoted epoch = %d, want 2", rig.replica.ReplicationEpoch())
	}

	// The replicated audit chain verifies end-to-end on the promoted
	// node, and new appends extend it without a fork.
	if err := rig.replica.Audit().Verify(); err != nil {
		t.Fatalf("audit chain on promoted node: %v", err)
	}
	before := rig.replica.Audit().Len()
	gid, err := rig.replica.Publish(&event.Notification{
		Producer: "hospital", SourceID: "post-failover", Class: schema.ClassBloodTest,
		PersonID: "person-99", OccurredAt: time.Now(),
	})
	if err != nil {
		t.Fatalf("publish on promoted node: %v", err)
	}
	if err := rig.replica.Audit().Verify(); err != nil {
		t.Fatalf("audit chain after post-failover publish: %v", err)
	}
	if rig.replica.Audit().Len() != before+1 {
		t.Fatal("post-failover publish did not extend the chain")
	}

	// Exactly-once across failover: every pre-failover event is present
	// exactly once, and a producer retry of an old source id gets its
	// original global id back.
	n, err := rig.replica.IndexLen()
	if err != nil {
		t.Fatal(err)
	}
	if n != len(gids)+1 {
		t.Fatalf("promoted index holds %d events, want %d", n, len(gids)+1)
	}
	retry, err := rig.replica.Publish(&event.Notification{
		Producer: "hospital", SourceID: "src-005", Class: schema.ClassBloodTest,
		PersonID: "person-05", OccurredAt: time.Now(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if retry != gids[5] {
		t.Fatalf("retried publish minted a new id %s (want %s)", retry, gids[5])
	}
	if gid == retry {
		t.Fatal("fresh publish reused an old id")
	}

	// Promote is a one-way door.
	if err := rig.replica.Promote(3); !errors.Is(err, ErrNotReplica) {
		t.Fatalf("second promote = %v, want ErrNotReplica", err)
	}
}
