package core

import (
	"testing"

	"repro/internal/consent"
	"repro/internal/event"
	"repro/internal/schema"
)

func consentOptOut(person string) consent.Directive {
	return consent.Directive{PersonID: person, Allow: false}
}

func TestPendingRequestsFromDeniedSubscription(t *testing.T) {
	w := newWorld(t)
	h := func(*event.Notification) {}
	w.c.Subscribe("family-doctor", schema.ClassBloodTest, h) // denied
	w.c.Subscribe("family-doctor", schema.ClassBloodTest, h) // coalesces

	pending := w.c.PendingRequests("hospital")
	if len(pending) != 1 {
		t.Fatalf("pending = %d, want 1 coalesced entry", len(pending))
	}
	p := pending[0]
	if p.Actor != "family-doctor" || p.Class != schema.ClassBloodTest || p.Purpose != "" {
		t.Errorf("entry = %+v", p)
	}
	if p.Count != 2 {
		t.Errorf("Count = %d, want 2", p.Count)
	}
	if p.FirstAt.IsZero() || p.LastAt.Before(p.FirstAt) {
		t.Errorf("timestamps = %v..%v", p.FirstAt, p.LastAt)
	}
	// Another producer sees nothing.
	w.c.RegisterProducer("other", "O")
	if got := w.c.PendingRequests("other"); len(got) != 0 {
		t.Errorf("foreign producer sees %d entries", len(got))
	}
}

func TestPendingRequestsFromDeniedDetails(t *testing.T) {
	w := newWorld(t)
	gid := w.producePublish(t, "src-1", "PRS-1")
	r := w.request(gid)
	r.Purpose = event.PurposeStatisticalAnalysis
	w.c.RequestDetails(r) // denied: no policy at all

	pending := w.c.PendingRequests("hospital")
	if len(pending) != 1 {
		t.Fatalf("pending = %d", len(pending))
	}
	if pending[0].Purpose != event.PurposeStatisticalAnalysis {
		t.Errorf("purpose = %q", pending[0].Purpose)
	}
}

func TestPendingNotRecordedForConsentOrUnknownEvent(t *testing.T) {
	w := newWorld(t)
	w.doctorPolicy(t)
	gid := w.producePublish(t, "src-1", "PRS-1")
	// Unknown event: not a policy gap.
	r := w.request("evt-ghost")
	w.c.RequestDetails(r)
	// Consent denial: not a policy gap.
	w.c.RecordConsent(consentOptOut("PRS-1"))
	w.c.RequestDetails(w.request(gid))
	if got := w.c.PendingRequests("hospital"); len(got) != 0 {
		t.Errorf("pending after consent/unknown denials = %+v", got)
	}
}

func TestPendingResolvedByNewPolicy(t *testing.T) {
	w := newWorld(t)
	gid := w.producePublish(t, "src-1", "PRS-1")
	w.c.RequestDetails(w.request(gid)) // detail gap
	w.c.Subscribe("family-doctor", schema.ClassBloodTest,
		func(*event.Notification) {}) // subscription gap
	if got := w.c.PendingRequests("hospital"); len(got) != 2 {
		t.Fatalf("pending = %d, want 2", len(got))
	}

	// The hospital responds to the notification by eliciting the policy.
	w.doctorPolicy(t)
	if got := w.c.PendingRequests("hospital"); len(got) != 0 {
		t.Errorf("pending after policy definition = %+v", got)
	}
	// And the flows now succeed.
	if _, err := w.c.RequestDetails(w.request(gid)); err != nil {
		t.Errorf("details after resolution: %v", err)
	}
	if _, err := w.c.Subscribe("family-doctor", schema.ClassBloodTest, func(*event.Notification) {}); err != nil {
		t.Errorf("subscribe after resolution: %v", err)
	}
}

func TestPendingPartialResolution(t *testing.T) {
	w := newWorld(t)
	gid := w.producePublish(t, "src-1", "PRS-1")
	// Two gaps with different purposes.
	w.c.RequestDetails(w.request(gid)) // healthcare-treatment
	r := w.request(gid)
	r.Purpose = event.PurposeStatisticalAnalysis
	w.c.RequestDetails(r)
	if got := w.c.PendingRequests("hospital"); len(got) != 2 {
		t.Fatalf("pending = %d", len(got))
	}
	// The policy only covers healthcare treatment.
	w.doctorPolicy(t)
	got := w.c.PendingRequests("hospital")
	if len(got) != 1 || got[0].Purpose != event.PurposeStatisticalAnalysis {
		t.Errorf("pending after partial resolution = %+v", got)
	}
}
