package core_test

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/consent"
	"repro/internal/core"
	"repro/internal/event"
	"repro/internal/policy"
	"repro/internal/schema"
	"repro/internal/workload"
)

// TestControllerStress drives publishers, detail requesters, policy churn
// and consent churn concurrently and asserts the end-state invariants:
// counters reconcile, the audit chain verifies, and no released detail
// ever violated privacy safety (checked inline by requesters).
func TestControllerStress(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test")
	}
	c, err := core.New(core.Config{DefaultConsent: true})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	platform, err := workload.Provision(c)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := platform.StandardPolicies(); err != nil {
		t.Fatal(err)
	}

	const (
		producers   = 4
		perStream   = 150
		requesters  = 4
		churners    = 2
		subChurners = 2
	)

	// Shared pool of published events.
	var mu sync.Mutex
	type published struct {
		gid   event.GlobalID
		class event.ClassID
	}
	var pool []published

	var wg sync.WaitGroup
	var violations atomic.Int64

	// Publishers.
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			gen := workload.NewGenerator(workload.Config{Seed: int64(p), People: 50})
			for i := 0; i < perStream; i++ {
				n, d := gen.Next()
				gid, err := platform.Produce(n, d)
				if err != nil {
					t.Errorf("produce: %v", err)
					return
				}
				mu.Lock()
				pool = append(pool, published{gid, n.Class})
				mu.Unlock()
			}
		}(p)
	}

	// Requesters: pull random events as the family doctor, verify
	// privacy safety of every permitted response.
	allowedByClass := map[event.ClassID]map[event.FieldName]bool{}
	for _, pol := range c.Policies("hospital-s-maria") {
		addAllowed(allowedByClass, pol)
	}
	for _, prod := range workload.Producers() {
		for _, pol := range c.Policies(prod.ID) {
			if pol.Actor == "family-doctor" {
				addAllowed(allowedByClass, pol)
			}
		}
	}
	for r := 0; r < requesters; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; i < perStream; i++ {
				mu.Lock()
				var pick *published
				if len(pool) > 0 {
					p := pool[(r*perStream+i)%len(pool)]
					pick = &p
				}
				mu.Unlock()
				if pick == nil {
					time.Sleep(time.Millisecond)
					continue
				}
				d, err := c.RequestDetails(&event.DetailRequest{
					Requester: "family-doctor", Class: pick.class,
					EventID: pick.gid, Purpose: event.PurposeHealthcareTreatment,
				})
				if err != nil {
					continue // denial is fine (consent/policy churn)
				}
				// The doctor's standard policies never include the
				// obfuscated blood-test fields.
				if pick.class == schema.ClassBloodTest {
					if _, leak := d.Get("aids-test"); leak {
						violations.Add(1)
					}
				}
			}
		}(r)
	}

	// Churners: consent flip-flops and throwaway policy add/revoke.
	for ch := 0; ch < churners; ch++ {
		wg.Add(1)
		go func(ch int) {
			defer wg.Done()
			for i := 0; i < perStream; i++ {
				person := fmt.Sprintf("PRS-%06d", i%50+1)
				if _, err := c.RecordConsent(consent.Directive{
					PersonID: person, Allow: i%2 == 0,
					Scope: consent.Scope{Consumer: event.Actor(fmt.Sprintf("churn-org-%d", ch))},
				}); err != nil {
					t.Errorf("consent: %v", err)
					return
				}
				stored, err := c.DefinePolicy(&policy.Policy{
					Producer: "telecare-co",
					Actor:    event.Actor(fmt.Sprintf("churn-org-%d-%d", ch, i)),
					Class:    schema.ClassTelecare,
					Purposes: []event.Purpose{event.PurposeAdministration},
					Fields:   []event.FieldName{"patient-id"},
				})
				if err != nil {
					t.Errorf("define: %v", err)
					return
				}
				if err := c.RevokePolicy(stored.ID); err != nil {
					t.Errorf("revoke: %v", err)
					return
				}
			}
		}(ch)
	}

	// Subscription churners: repeatedly subscribe and cancel while the
	// publishers are fanning out, so deliveries race subscription
	// setup/teardown and every handler reads the shared notification
	// instance concurrently with its siblings (the zero-copy fan-out
	// contract: shared and immutable — the race detector enforces it).
	var deliveries atomic.Int64
	for sc := 0; sc < subChurners; sc++ {
		wg.Add(1)
		go func(sc int) {
			defer wg.Done()
			for i := 0; i < perStream/3; i++ {
				sub, err := c.Subscribe("family-doctor", schema.ClassBloodTest, func(n *event.Notification) {
					if n.ID == "" || n.PersonID == "" {
						violations.Add(1) // redacted fan-out must keep these
					}
					if n.SourceID != "" {
						violations.Add(1) // Redact() must have stripped it
					}
					deliveries.Add(1)
				})
				if err != nil {
					t.Errorf("subscribe: %v", err)
					return
				}
				if err := sub.Cancel(); err != nil {
					t.Errorf("cancel: %v", err)
					return
				}
			}
		}(sc)
	}

	wg.Wait()
	if violations.Load() != 0 {
		t.Fatalf("%d privacy violations under concurrency", violations.Load())
	}
	st := c.Stats()
	if st.Published != producers*perStream {
		t.Errorf("Published = %d, want %d", st.Published, producers*perStream)
	}
	if st.DetailPermits+st.DetailDenials == 0 {
		t.Error("no detail requests recorded")
	}
	if err := c.Audit().Verify(); err != nil {
		t.Errorf("audit chain after stress: %v", err)
	}
	// Churned policies are all gone: whatever the standard set installed
	// for telecare, no churn-org policy may remain.
	for _, p := range c.Policies("telecare-co") {
		if strings.HasPrefix(string(p.Actor), "churn-org") {
			t.Errorf("leftover churn policy %s", p.ID)
		}
	}
}

func addAllowed(m map[event.ClassID]map[event.FieldName]bool, pol *policy.Policy) {
	set := m[pol.Class]
	if set == nil {
		set = map[event.FieldName]bool{}
		m[pol.Class] = set
	}
	for _, f := range pol.Fields {
		set[f] = true
	}
}
