package core

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/audit"
	"repro/internal/enforcer"
	"repro/internal/event"
)

// countingSource wraps a detail source, counting fetches that reach the
// producer side.
type countingSource struct {
	inner enforcer.DetailSource
	calls atomic.Int64
}

func (s *countingSource) GetResponse(src event.SourceID, fields []event.FieldName) (*event.Detail, error) {
	s.calls.Add(1)
	return s.inner.GetResponse(src, fields)
}

// TestCancelledDetailRequestStopsBeforeGatewayFetch: a detail request
// whose context is already cancelled must not reach the producer's
// gateway, and the audit trail must record outcome "cancelled" — never
// "deny", because no policy decision was rendered against the consumer.
func TestCancelledDetailRequestStopsBeforeGatewayFetch(t *testing.T) {
	w := newWorld(t)
	gid := w.producePublish(t, "bt-cancel", "PERSON-C")
	w.doctorPolicy(t)

	counting := &countingSource{inner: w.gw}
	if err := w.c.AttachGateway("hospital", counting); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel() // the consumer hung up before the request was processed

	d, err := w.c.RequestDetailsContext(ctx, w.request(gid))
	if d != nil {
		t.Fatal("cancelled request released a detail")
	}
	if !errors.Is(err, ErrCancelled) {
		t.Fatalf("err = %v, want ErrCancelled", err)
	}
	if errors.Is(err, enforcer.ErrDenied) {
		t.Fatal("cancellation surfaced as a policy denial")
	}
	if got := counting.calls.Load(); got != 0 {
		t.Fatalf("gateway fetched %d times for a cancelled request", got)
	}

	recs, aerr := w.c.Audit().Search(audit.Query{Kind: audit.KindDetailRequest})
	if aerr != nil {
		t.Fatal(aerr)
	}
	if len(recs) != 1 {
		t.Fatalf("audit records = %d, want 1", len(recs))
	}
	if recs[0].Outcome != "cancelled" {
		t.Fatalf("audit outcome = %q, want \"cancelled\"", recs[0].Outcome)
	}

	// The same request with a live context succeeds — nothing about the
	// cancellation poisoned later flows.
	if _, err := w.c.RequestDetailsContext(context.Background(), w.request(gid)); err != nil {
		t.Fatalf("follow-up request failed: %v", err)
	}
	if got := counting.calls.Load(); got != 1 {
		t.Fatalf("gateway fetches after live request = %d, want 1", got)
	}
	denied, _ := w.c.Audit().Search(audit.Query{Kind: audit.KindDetailRequest, Outcome: "deny"})
	if len(denied) != 0 {
		t.Fatalf("deny records = %d, want none", len(denied))
	}
}

// TestCancelledMidFlowAuditsCancelled: a context that expires after the
// consent check but before the enforcer's gateway step still yields
// outcome "cancelled" (the enforcer's pre-fetch check catches it).
func TestCancelledMidFlowAuditsCancelled(t *testing.T) {
	w := newWorld(t)
	gid := w.producePublish(t, "bt-cancel-2", "PERSON-D")
	w.doctorPolicy(t)

	counting := &countingSource{inner: w.gw}
	if err := w.c.AttachGateway("hospital", counting); err != nil {
		t.Fatal(err)
	}

	// A deadline in the past: ctx.Err() is non-nil at the enforcer's
	// pre-fetch check even though entry validation already passed once.
	ctx, cancel := context.WithDeadline(context.Background(), w.now.Add(-time.Hour))
	defer cancel()
	_, err := w.c.RequestDetailsContext(ctx, w.request(gid))
	if !errors.Is(err, ErrCancelled) {
		t.Fatalf("err = %v, want ErrCancelled", err)
	}
	if got := counting.calls.Load(); got != 0 {
		t.Fatalf("gateway fetched %d times past the deadline", got)
	}
}
