package core

import (
	"context"
	"errors"
	"fmt"
	"strconv"
	"sync"
	"time"

	"repro/internal/audit"
	"repro/internal/bus"
	"repro/internal/enforcer"
	"repro/internal/event"
	"repro/internal/index"
	"repro/internal/telemetry"
)

// --- publish ---------------------------------------------------------------

// Publish accepts a notification from a producer: it assigns the global
// event id, stores the notification in the events index (identifier
// encrypted at rest), audits the publication, and routes the redacted
// notification to the authorized subscribers of its class. The assigned
// global id is returned; the producer keeps it alongside its local id.
//
// Publish is idempotent on (producer, source id): retries return the
// original global id without duplicating index entries or deliveries
// beyond the bus's at-least-once semantics.
func (c *Controller) Publish(n *event.Notification) (event.GlobalID, error) {
	return c.PublishContext(context.Background(), n)
}

// PublishContext is Publish under a request context. The context gates
// admission only: a publication already cancelled on arrival is refused
// before any state changes, but once accepted the flow runs to
// completion — a publish that assigned an id and touched the index must
// be fully indexed, audited and routed, never half-aborted.
func (c *Controller) PublishContext(ctx context.Context, n *event.Notification) (event.GlobalID, error) {
	if err := ctx.Err(); err != nil {
		return "", fmt.Errorf("%w: %w", ErrCancelled, err)
	}
	if c.isClosed() {
		return "", ErrClosed
	}
	if c.replica.Load() {
		return "", c.notPrimary()
	}
	if err := n.Validate(); err != nil {
		return "", err
	}
	if !c.reg.HasProducer(n.Producer) {
		return "", fmt.Errorf("%w: %s", ErrNotProducer, n.Producer)
	}
	decl, err := c.reg.Class(n.Class)
	if err != nil {
		return "", fmt.Errorf("%w: %s", ErrUnknownClass, n.Class)
	}
	if decl.Producer != n.Producer {
		return "", fmt.Errorf("%w: %s is owned by %s", ErrNotClassOwner, n.Class, decl.Producer)
	}
	// Clustered deployments enforce pseudonym ownership before any state
	// changes (critically: before the global id is assigned), and hold
	// the shard's drain barrier for the rest of the flow so a reshard
	// freeze can wait this publish out. Unsharded: one nil check.
	if c.shard != nil {
		release, err := c.shardAdmit(n.PersonID)
		if err != nil {
			return "", err
		}
		defer release()
	}

	// Mint the flow's trace ID unless the producer supplied one; it rides
	// on the stamped notification through the bus and onto every audit
	// record and span of the flow. The root "publish" span is one of the
	// two sanctioned flow roots; every stage below hangs off it — opened
	// detached because nothing below reads the context, which skips the
	// span-in-context allocations on the hottest flow in the system.
	trace := n.Trace
	if trace == "" {
		trace = telemetry.NewTraceID()
	}
	var parent string
	if telemetry.TraceFrom(ctx) == trace {
		parent = telemetry.SpanIDFrom(ctx)
	}
	pubSpan := c.tracer.StartDetached("publish", trace, parent)
	if c.shard != nil {
		pubSpan.SetAttr("shard", c.shard.label)
	}
	start := time.Now()
	fail := func(err error) (event.GlobalID, error) {
		pubSpan.SetError(err)
		pubSpan.End()
		return "", err
	}

	// The id assignment stays fully synchronous (assign + fsync before
	// anything else): if a global id were handed out before its mapping
	// was durable, a crash plus producer retry could mint two ids for one
	// source event.
	gid, err := c.ids.Assign(n.Producer, n.SourceID, n.Class)
	if err != nil {
		return fail(err)
	}
	stamped := n.Clone()
	stamped.ID = gid
	stamped.Trace = trace
	stamped.PublishedAt = c.now()
	// Pipelined group commit: the index batch and the audit record are
	// staged (written to their WALs, visible to reads) and their fsyncs
	// kicked in the background, so encoding and bus fan-out overlap the
	// disk barrier instead of queueing behind it. The publisher is acked
	// only after both Waits below — exactly-once indexing holds because a
	// crash before the barrier loses whole WAL frames and the unacked
	// producer retries under the same global id (Assign is idempotent).
	putSpan := pubSpan.StartChild("index.put")
	idxCommit, err := c.idx.PutStaged(stamped)
	putSpan.SetError(err)
	putSpan.End()
	if err != nil {
		return fail(err)
	}
	if idxCommit.Pending() {
		// A failed background fsync never advances the WAL's sync mark, so
		// its error (discarded here) resurfaces from the barrier Wait.
		go idxCommit.Wait()
	}
	audSpan := pubSpan.StartChild("audit.append")
	_, audCommit, err := c.aud.AppendStaged(audit.Record{
		Kind:    audit.KindPublish,
		Actor:   string(n.Producer),
		EventID: gid,
		Class:   n.Class,
		Outcome: "ok",
		Trace:   trace,
	})
	audSpan.SetError(err)
	audSpan.End()
	if err != nil {
		return fail(err)
	}
	if audCommit.Pending() {
		go audCommit.Wait()
	}
	// Quorum replication: the follower fsync barrier is kicked here and
	// joined after the local commit barrier below, so the follower round
	// trip overlaps encoding and bus fan-out exactly like the group
	// commit does — replicated durability rides the same latency window.
	var replDone chan error
	if p := c.repl.Load(); p != nil && p.Quorum() {
		replDone = make(chan error, 1)
		go func() { replDone <- p.Barrier(ctx) }()
	}
	// Route the redacted notification. Per-subscriber consent is applied
	// at delivery time by each subscription's handler wrapper. The decoded
	// form rides the bus alongside the wire bytes: it is encoded (and
	// decoded) exactly once per publication, and every subscription shares
	// the same immutable *event.Notification instead of re-parsing the
	// wire body per delivery. stamped is this flow's private clone and the
	// index does not retain it, so redaction mutates in place — no second
	// clone per publish.
	stamped.SourceID = ""
	redacted := stamped
	wire, err := c.codec.EncodeNotification(redacted)
	if err != nil {
		return fail(err)
	}
	// The bus.publish span ID rides the message so each asynchronous
	// delivery parents its bus.deliver span under it.
	busSpan := pubSpan.StartChild("bus.publish")
	_, err = c.brk.PublishPayloadSpan(classTopic(n.Class), wire, redacted, busSpan.ID())
	busSpan.SetError(err)
	busSpan.End()
	if err != nil {
		return fail(err)
	}
	// Commit barrier: group commit means these usually return instantly,
	// the fsync having been shared with concurrent publishers while the
	// fan-out above ran.
	if err := idxCommit.Wait(); err != nil {
		return fail(err)
	}
	if err := audCommit.Wait(); err != nil {
		return fail(err)
	}
	if replDone != nil {
		if err := <-replDone; err != nil {
			return fail(err)
		}
	}
	pubSpan.End()
	c.met.published.Inc()
	elapsed := time.Since(start)
	c.met.publishSeconds.ObserveDurationTrace(elapsed, trace)
	telemetry.LogIfSlow("publish", trace, elapsed)
	return gid, nil
}

// classTopic maps an event class to its bus topic. The catalog is a
// small, stable set while publishes are unbounded, so the concat is
// cached (process-wide: equal class ids map to equal topics under any
// controller).
func classTopic(class event.ClassID) string {
	if v, ok := topicCache.Load(class); ok {
		return v.(string)
	}
	t := "class/" + string(class)
	topicCache.Store(class, t)
	return t
}

var topicCache sync.Map

// subID renders the zero-padded subscription id ("sub-%06d" by hand —
// this file is on the no-fmt hot-path allowlist).
func subID(n int) string {
	s := strconv.Itoa(n)
	if len(s) >= 6 {
		return "sub-" + s
	}
	buf := []byte("sub-000000")
	copy(buf[len(buf)-len(s):], s)
	return string(buf)
}

// flowRootCtx prepares the context for a flow's root span under trace.
// When the incoming context carries a *different* trace (e.g. the HTTP
// middleware minted one but the request body quoted the originating
// flow's), the context's span would parent the root into a foreign
// trace; clear it so the root starts a clean tree instead of an orphan.
func flowRootCtx(ctx context.Context, trace string) context.Context {
	if telemetry.TraceFrom(ctx) == trace {
		return ctx
	}
	return telemetry.WithTraceSpan(ctx, trace, "")
}

// --- subscribe ---------------------------------------------------------------

// Handler consumes notifications delivered to a subscription. The
// notification instance is shared by every subscription the publication
// fanned out to, so handlers must treat it as immutable; call
// n.Clone() before mutating.
type Handler func(n *event.Notification)

// HandlerCtx is Handler with the delivery context: it carries the
// publication's trace and the "bus.deliver" span as current, so
// handlers that call onward (e.g. the HTTP callback to a remote
// consumer) keep the trace one parent-linked tree.
type HandlerCtx func(ctx context.Context, n *event.Notification)

// Subscription is a consumer's durable subscription to an event class.
type Subscription struct {
	id     string
	actor  event.Actor
	class  event.ClassID
	cancel func() error
}

// ID returns the subscription identifier.
func (s *Subscription) ID() string { return s.id }

// Actor returns the subscribed consumer.
func (s *Subscription) Actor() event.Actor { return s.actor }

// Class returns the subscribed event class.
func (s *Subscription) Class() event.ClassID { return s.class }

// Cancel terminates the subscription.
func (s *Subscription) Cancel() error { return s.cancel() }

// Subscribe registers a consumer for the notifications of a class. Per
// §5.2, the consumer must be authorized by the data producer: with no
// privacy policy regulating the access to the corresponding event details
// for this consumer, the subscription request is rejected (deny by
// default). Each delivery additionally honors the data subject's consent
// and re-checks the authorization, so policy revocations take effect on
// live subscriptions.
func (c *Controller) Subscribe(actor event.Actor, class event.ClassID, h Handler) (*Subscription, error) {
	if h == nil {
		return nil, errors.New("core: nil handler")
	}
	// ctxFree: the handler cannot read the context, so delivery skips
	// building one (the delivery span is opened detached instead).
	return c.subscribe(actor, class, func(_ context.Context, n *event.Notification) { h(n) }, true)
}

// SubscribeCtx is Subscribe for context-aware handlers (see HandlerCtx).
func (c *Controller) SubscribeCtx(actor event.Actor, class event.ClassID, h HandlerCtx) (*Subscription, error) {
	return c.subscribe(actor, class, h, false)
}

func (c *Controller) subscribe(actor event.Actor, class event.ClassID, h HandlerCtx, ctxFree bool) (*Subscription, error) {
	if c.isClosed() {
		return nil, ErrClosed
	}
	if c.replica.Load() {
		// Subscriptions audit and deliver; both are primary duties.
		return nil, c.notPrimary()
	}
	if err := actor.Validate(); err != nil {
		return nil, err
	}
	if h == nil {
		return nil, errors.New("core: nil handler")
	}
	if !c.reg.HasConsumer(actor) {
		return nil, fmt.Errorf("%w: %s", ErrNotConsumer, actor)
	}
	if _, err := c.reg.Class(class); err != nil {
		return nil, fmt.Errorf("%w: %s", ErrUnknownClass, class)
	}
	trace := telemetry.NewTraceID()
	if !c.enf.Repository().AllowsSubscription(actor, class, c.now()) {
		c.met.subDenials.Inc()
		c.aud.Append(audit.Record{
			Kind: audit.KindSubscribe, Actor: string(actor), Class: class, Outcome: "deny",
			Note: "no authorizing policy", Trace: trace,
		})
		// Notify the producer of the pending access request (§5).
		c.pending.note(actor, class, "", c.now())
		return nil, fmt.Errorf("%w: %s on %s", ErrSubscriptionDeny, actor, class)
	}

	c.mu.Lock()
	c.subSeq++
	id := subID(c.subSeq)
	c.mu.Unlock()

	busSub, err := c.brk.Subscribe(classTopic(class), id, func(m *bus.Message) error {
		return c.deliver(actor, class, h, m, ctxFree)
	})
	if err != nil {
		return nil, err
	}
	sub := &Subscription{
		id:    id,
		actor: actor,
		class: class,
		cancel: func() error {
			c.mu.Lock()
			delete(c.subs, id)
			c.mu.Unlock()
			return c.brk.Unsubscribe(busSub.Topic(), busSub.Name())
		},
	}
	c.mu.Lock()
	c.subs[id] = sub
	c.mu.Unlock()
	c.aud.Append(audit.Record{
		Kind: audit.KindSubscribe, Actor: string(actor), Class: class, Outcome: "permit",
		Trace: trace,
	})
	return sub, nil
}

// deliver applies the per-delivery checks and invokes the handler. The
// notification carries the trace minted at publish time, so the delivery
// span and any consent suppression correlate back to the publication.
//
// When the message carries the publisher's decoded payload (the normal
// in-process path), deliver hands that shared instance to the handler
// without re-decoding; the wire body is only parsed as a fallback for
// messages published by other means.
func (c *Controller) deliver(actor event.Actor, class event.ClassID, h HandlerCtx, m *bus.Message, ctxFree bool) error {
	n, ok := m.Payload.(*event.Notification)
	if !ok {
		var err error
		n, err = event.DecodeNotification(m.Body)
		if err != nil {
			return err
		}
	}
	// Delivery runs on a bus goroutine: rebuild the trace context from
	// the notification and parent the span under the publisher's
	// bus.publish span (riding on the message). Context-free handlers
	// (plain Subscribe) never look at the context, so their delivery
	// span is opened detached and the two context allocations are
	// skipped — the dominant per-subscriber cost of the publish fan-out.
	var ctx context.Context
	var span *telemetry.ActiveSpan
	if ctxFree {
		ctx = context.Background()
		span = c.tracer.StartDetached("bus.deliver", n.Trace, m.SpanParent)
	} else {
		ctx, span = c.tracer.StartSpanFrom(context.Background(), "bus.deliver", n.Trace, m.SpanParent)
	}
	span.SetAttr("subscriber", string(actor))
	// Consent: purpose-agnostic routing check.
	if !c.con.Allows(n.PersonID, class, actor, "") {
		c.met.consentDrops.Inc()
		span.SetAttr("outcome", "consent-drop")
		span.End()
		return nil // suppressed, not an error (no redelivery)
	}
	// Authorization may have been revoked since subscription time.
	if !c.enf.Repository().AllowsSubscription(actor, class, c.now()) {
		c.met.consentDrops.Inc()
		span.SetAttr("outcome", "authorization-drop")
		span.End()
		return nil
	}
	h(ctx, n)
	c.met.delivered.Inc()
	// The span's own duration doubles as the delivery latency sample, so
	// the hot path reads the clock once at start and once at End.
	elapsed := span.End()
	c.met.deliverySeconds.ObserveDurationTrace(elapsed, n.Trace)
	if elapsed >= telemetry.SlowThreshold() {
		telemetry.LogIfSlow("deliver "+string(actor), n.Trace, elapsed)
	}
	return nil
}

// --- request for details ------------------------------------------------------

// RequestDetails resolves a consumer's request for event details: consent
// check, then Algorithm 1 (policy matching and evaluation at the PDP,
// field filtering at the producer's gateway), with the outcome audited
// whichever way it goes.
func (c *Controller) RequestDetails(r *event.DetailRequest) (*event.Detail, error) {
	return c.RequestDetailsContext(context.Background(), r)
}

// RequestDetailsContext is RequestDetails under a request context: the
// caller's deadline (or hang-up) propagates through the PDP evaluation
// into the gateway fetch. An abandoned request stops before the producer
// round-trip and is audited with outcome "cancelled" — never "deny",
// since no policy decision was rendered against the consumer.
func (c *Controller) RequestDetailsContext(ctx context.Context, r *event.DetailRequest) (*event.Detail, error) {
	if c.isClosed() {
		return nil, ErrClosed
	}
	if c.replica.Load() {
		// Detail disclosure must be audited on the chain of record (the
		// primary's); replicas serve only index reads.
		return nil, c.notPrimary()
	}
	if err := r.Validate(); err != nil {
		return nil, err
	}
	if !c.reg.HasConsumer(r.Requester) {
		return nil, fmt.Errorf("%w: %s", ErrNotConsumer, r.Requester)
	}
	if r.At.IsZero() || r.Trace == "" {
		// Stamp with the controller clock so simulated time flows into
		// validity windows, and mint the flow's trace ID unless the
		// consumer quoted one (typically the trace of the originating
		// notification, correlating the two phases).
		rc := *r
		if rc.At.IsZero() {
			rc.At = c.now()
		}
		if rc.Trace == "" {
			rc.Trace = telemetry.NewTraceID()
		}
		r = &rc
	}
	// The root "detail.request" span is the second sanctioned flow root;
	// the consent check, PDP decision and gateway fetch nest beneath it.
	ctx, reqSpan := c.tracer.StartSpan(flowRootCtx(ctx, r.Trace), "detail.request")
	reqSpan.SetAttr("requester", string(r.Requester))
	start := time.Now()
	finish := func(outcome string, spanErr error) {
		c.met.decisions.Inc(outcome)
		elapsed := time.Since(start)
		c.met.detailSeconds.ObserveDurationTrace(elapsed, r.Trace, outcome)
		reqSpan.SetAttr("outcome", outcome)
		reqSpan.SetError(spanErr)
		reqSpan.End()
		telemetry.LogIfSlow("request-details", r.Trace, elapsed)
	}

	// A request already abandoned on arrival is stopped before any
	// lookup, decision or fetch runs on its behalf.
	if err := ctx.Err(); err != nil {
		c.auditDetail(r, "cancelled", "", err.Error())
		finish("cancelled", err)
		return nil, fmt.Errorf("%w: %w", ErrCancelled, err)
	}

	// The notification record gives us the data subject for the consent
	// check (and proves the event exists).
	n, err := c.idx.Get(r.EventID)
	if err != nil {
		c.auditDetail(r, "deny", "", "unknown event id")
		finish("deny", nil)
		if errors.Is(err, index.ErrNotFound) {
			return nil, fmt.Errorf("%w: %s", enforcer.ErrUnknownEvent, r.EventID)
		}
		return nil, err
	}
	_, conSpan := telemetry.StartSpan(ctx, "consent.check")
	allowed := c.con.Allows(n.PersonID, r.Class, r.Requester, r.Purpose)
	conSpan.End()
	if !allowed {
		c.auditDetail(r, "deny", "", "data subject consent")
		finish("deny", nil)
		return nil, ErrConsentDeny
	}

	d, out, err := c.enf.GetEventDetailsContext(ctx, r)
	if err != nil {
		// Neither an unreachable source after a permit nor an abandoned
		// request is a denial: the first is a deferred answer the
		// consumer may retry, the second never got a policy decision.
		// The audit trail keeps all three outcomes distinguishable.
		outcome := "deny"
		switch {
		case errors.Is(err, enforcer.ErrSourceUnavailable):
			outcome = "unavailable"
		case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
			outcome = "cancelled"
			err = fmt.Errorf("%w: %w", ErrCancelled, err)
		}
		var spanErr error
		if outcome != "deny" {
			// A policy denial is a rendered decision, not a failure; only
			// unavailable sources and abandoned requests mark the span.
			spanErr = err
		}
		c.auditDetail(r, outcome, out.PolicyID, out.Reason)
		finish(outcome, spanErr)
		if errors.Is(err, enforcer.ErrDenied) {
			// A policy-gap denial (not consent, not a missing event):
			// surface it to the producer as a pending access request.
			c.pending.note(r.Requester, r.Class, r.Purpose, c.now())
		}
		return nil, err
	}
	c.auditDetail(r, "permit", out.PolicyID, "")
	finish("permit", nil)
	return d, nil
}

// PrefetchDetails warms the detail-request read path for r without
// releasing anything to the caller: the consent check and policy
// decision run (and the decision is cached), and on permit one gateway
// fetch is driven whose result is discarded — it populates the
// producer-side decoded-detail cache and coalesces with identical
// concurrent RequestDetails calls. No data is disclosed to any consumer,
// so the flow is not audited as an access; controller-side storage of
// details stays prohibited (E13).
func (c *Controller) PrefetchDetails(r *event.DetailRequest) error {
	return c.PrefetchDetailsContext(context.Background(), r)
}

// PrefetchDetailsContext is PrefetchDetails under a request context. A
// prefetch is speculative by definition, so it honors cancellation at
// every stage and is the first flow an overloaded deployment sheds.
func (c *Controller) PrefetchDetailsContext(ctx context.Context, r *event.DetailRequest) error {
	if err := ctx.Err(); err != nil {
		return fmt.Errorf("%w: %w", ErrCancelled, err)
	}
	if c.isClosed() {
		return ErrClosed
	}
	if c.replica.Load() {
		return c.notPrimary()
	}
	if err := r.Validate(); err != nil {
		return err
	}
	if !c.reg.HasConsumer(r.Requester) {
		return fmt.Errorf("%w: %s", ErrNotConsumer, r.Requester)
	}
	n, err := c.idx.Get(r.EventID)
	if err != nil {
		if errors.Is(err, index.ErrNotFound) {
			return fmt.Errorf("%w: %s", enforcer.ErrUnknownEvent, r.EventID)
		}
		return err
	}
	if !c.con.Allows(n.PersonID, r.Class, r.Requester, r.Purpose) {
		return ErrConsentDeny
	}
	if err := c.enf.PrefetchContext(ctx, r); err != nil {
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			return fmt.Errorf("%w: %w", ErrCancelled, err)
		}
		return err
	}
	return nil
}

func (c *Controller) auditDetail(r *event.DetailRequest, outcome, policyID, note string) {
	c.aud.Append(audit.Record{
		Kind:     audit.KindDetailRequest,
		Actor:    string(r.Requester),
		EventID:  r.EventID,
		Class:    r.Class,
		Purpose:  r.Purpose,
		Outcome:  outcome,
		PolicyID: policyID,
		Note:     note,
		Trace:    r.Trace,
	})
}

// --- index inquiry -------------------------------------------------------------

// InquireIndex answers an events index inquiry: "a data consumer can
// query the events index to get the list of notifications it is
// authorized to see without necessarily subscribing" (§4). Results are
// restricted to classes the consumer holds an authorizing policy for, and
// to data subjects whose consent allows the flow; source identifiers are
// redacted.
func (c *Controller) InquireIndex(actor event.Actor, q index.Inquiry) ([]*event.Notification, error) {
	return c.InquireIndexContext(context.Background(), actor, q)
}

// InquireIndexContext is InquireIndex under a request context: an
// inquiry whose caller is gone is refused up front, and the
// authorization filter loop stops scanning on cancellation instead of
// finishing a potentially large result set for nobody.
func (c *Controller) InquireIndexContext(ctx context.Context, actor event.Actor, q index.Inquiry) ([]*event.Notification, error) {
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("%w: %w", ErrCancelled, err)
	}
	if c.isClosed() {
		return nil, ErrClosed
	}
	if !c.reg.HasConsumer(actor) {
		return nil, fmt.Errorf("%w: %s", ErrNotConsumer, actor)
	}
	now := c.now()
	// Fast-path denial: an inquiry restricted to a class the actor has no
	// policy for is rejected outright, like a subscription (§5.2: "The
	// inquiry of the event index is managed in the same way").
	trace := telemetry.NewTraceID()
	if q.Class != "" && !c.enf.Repository().AllowsSubscription(actor, q.Class, now) {
		c.auditRead(audit.Record{
			Kind: audit.KindIndexInquiry, Actor: string(actor), Class: q.Class, Outcome: "deny",
			Note: "no authorizing policy", Trace: trace,
		})
		return nil, fmt.Errorf("%w: %s on %s", ErrSubscriptionDeny, actor, q.Class)
	}

	limit := q.Limit
	q.Limit = 0 // authorization filtering happens after retrieval
	raw, err := c.idx.Inquire(q)
	if err != nil {
		return nil, err
	}
	var out []*event.Notification
	for i, n := range raw {
		if i%256 == 0 && ctx.Err() != nil {
			return nil, fmt.Errorf("%w: %w", ErrCancelled, ctx.Err())
		}
		if !c.enf.Repository().AllowsSubscription(actor, n.Class, now) {
			continue
		}
		if !c.con.Allows(n.PersonID, n.Class, actor, "") {
			continue
		}
		out = append(out, n.Redact())
		if limit > 0 && len(out) >= limit {
			break
		}
	}
	c.auditRead(audit.Record{
		Kind: audit.KindIndexInquiry, Actor: string(actor), Class: q.Class, Outcome: "permit",
		Note: strconv.Itoa(len(out)) + " notifications", Trace: trace,
	})
	c.met.inquiries.Inc()
	return out, nil
}

// InquireOwn answers a data subject's inquiry over her own events — the
// citizen-facing PHR view of §7. It skips consumer authorization (the
// subject always sees her own index entries) but pins the inquiry to her
// person id and redacts producer-local identifiers. The access is audited
// under the "citizen:" actor prefix.
func (c *Controller) InquireOwn(personID string, q index.Inquiry) ([]*event.Notification, error) {
	if c.isClosed() {
		return nil, ErrClosed
	}
	if personID == "" {
		return nil, errors.New("core: empty person id")
	}
	q.PersonID = personID
	raw, err := c.idx.Inquire(q)
	if err != nil {
		return nil, err
	}
	out := make([]*event.Notification, 0, len(raw))
	for _, n := range raw {
		out = append(out, n.Redact())
	}
	c.auditRead(audit.Record{
		Kind: audit.KindIndexInquiry, Actor: "citizen:" + personID, Outcome: "permit",
		Note: strconv.Itoa(len(out)) + " own notifications", Trace: telemetry.NewTraceID(),
	})
	c.met.inquiries.Inc()
	return out, nil
}

// Now returns the controller's current time (its injected clock).
func (c *Controller) Now() time.Time { return c.now() }
