// Cluster membership of the controller: shard identity, publish-path
// ownership enforcement, and the reshard node protocol (freeze, drain,
// handoff export/import, map flip, sweep) the cluster coordinator
// drives. An unsharded controller (the default) carries none of this —
// c.shard stays nil and the publish path pays one nil check.
package core

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/cluster"
	"repro/internal/event"
	"repro/internal/store"
)

// ErrNotClustered reports a cluster operation on an unsharded
// controller.
var ErrNotClustered = errors.New("core: controller is not clustered")

// Handoff frame store tags: which of the controller's stores a shipped
// batch replays into.
const (
	handoffStoreIndex = "index"
	handoffStoreIdmap = "idmap"
)

// shardState is the controller's cluster identity plus the reshard
// freeze machinery. The RWMutex is the publish drain barrier: every
// clustered publish holds the read side for its full flow, and
// BeginReshard takes the write side once to wait out publishes
// admitted before the freeze was visible.
type shardState struct {
	id    cluster.ShardID
	label string // precomputed id.String() for span attrs

	mu     sync.RWMutex
	frozen atomic.Pointer[cluster.Map] // next map while a reshard is staging
}

// initCluster wires the controller into a shard cluster at
// construction. Called from New when Config.ShardMap is set. A shard
// id absent from the map boots cold: it owns no keys (every publish
// answers the wrong-shard redirect) until a reshard flips in a map
// that names it — the bring-up path for a split's new shard.
func (c *Controller) initCluster(id cluster.ShardID, m *cluster.Map) error {
	if id < 0 {
		return fmt.Errorf("core: invalid shard id %d", id)
	}
	if err := c.reg.SetShardMap(m); err != nil {
		return err
	}
	c.shard = &shardState{id: id, label: id.String()}
	c.met.clusterMapVersion.Set(float64(m.Version()))
	return nil
}

// ShardMap returns the cluster map this controller currently serves,
// or nil when the controller runs unsharded.
func (c *Controller) ShardMap() *cluster.Map { return c.reg.ShardMap() }

// Pseudonym maps a person identifier to the HMAC pseudonym the index
// keys by — the value the shard ring hashes. In-process callers (the
// benchmark harness, the smoke suites) hand it to the sharded client
// so publishes route without a discovery redirect; remote producers
// never see it.
func (c *Controller) Pseudonym(personID string) string { return c.idx.Pseudonym(personID) }

// ShardID returns this controller's shard id; ok is false when the
// controller runs unsharded.
func (c *Controller) ShardID() (cluster.ShardID, bool) {
	if c.shard == nil {
		return 0, false
	}
	return c.shard.id, true
}

// shardAdmit enforces pseudonym ownership at the top of a clustered
// publish. It returns a release closure the publish holds until its
// commit barriers pass — the read side of the drain barrier — or the
// routing error to surface:
//
//   - a key this shard does not own under the current map answers
//     *cluster.WrongShardError naming the owner (the client refreshes
//     its map and retries there);
//   - a key this shard owns but which moves under a staged next map
//     answers cluster.ErrResharding (transient — the producer's
//     retrier backs off past the freeze window).
func (c *Controller) shardAdmit(personID string) (func(), error) {
	s := c.shard
	s.mu.RLock()
	m := c.reg.ShardMap()
	pseud := c.idx.Pseudonym(personID)
	if owner := m.Owner(pseud); owner != s.id {
		s.mu.RUnlock()
		c.met.clusterWrongShard.Inc()
		return nil, &cluster.WrongShardError{Owner: owner, Version: m.Version()}
	}
	if next := s.frozen.Load(); next != nil && next.Owner(pseud) != s.id {
		s.mu.RUnlock()
		c.met.clusterReshardRejects.Inc()
		return nil, cluster.ErrResharding
	}
	return s.mu.RUnlock, nil
}

// --- cluster.Node ----------------------------------------------------------

// Self implements cluster.Node.
func (c *Controller) Self() cluster.ShardID { return c.shard.id }

// CurrentMap implements cluster.Node.
func (c *Controller) CurrentMap() *cluster.Map { return c.reg.ShardMap() }

// BeginReshard implements cluster.Node: it stages next as the freeze
// map — from here on, publishes for keys that move under next are
// refused with ErrResharding — then drains every publish admitted
// before the freeze by passing once through the write side of the
// barrier. When it returns, the stores hold every acknowledged write
// and no in-flight publish can touch a moving key.
func (c *Controller) BeginReshard(next *cluster.Map) error {
	if c.shard == nil {
		return ErrNotClustered
	}
	s := c.shard
	cur := c.reg.ShardMap()
	if next == nil || next.Version() <= cur.Version() {
		return cluster.ErrStaleMap
	}
	if !s.frozen.CompareAndSwap(nil, next) {
		return errors.New("core: reshard already in progress")
	}
	s.mu.Lock()
	//lint:ignore SA2001 the empty critical section IS the drain barrier
	s.mu.Unlock()
	return nil
}

// AbortReshard implements cluster.Node: lift the freeze without
// flipping the map.
func (c *Controller) AbortReshard() error {
	if c.shard == nil {
		return ErrNotClustered
	}
	c.shard.frozen.Store(nil)
	return nil
}

// ExportMoved implements cluster.Node: stream every event whose
// pseudonym leaves this shard under next as store-tagged handoff
// frames — the index key set and the id-map entries of each moved
// event — addressed to the event's new owner.
func (c *Controller) ExportMoved(next *cluster.Map, ship func(target cluster.ShardID, frame []byte) error) (int, error) {
	if c.shard == nil {
		return 0, ErrNotClustered
	}
	self := c.shard.id
	moved, _, err := c.idx.ExportMoved(
		func(pseudonym string) bool { return next.Owner(pseudonym) != self },
		func(gid event.GlobalID, pseudonym string, b *store.Batch) error {
			target := next.Owner(pseudonym)
			if err := ship(target, cluster.EncodeHandoffFrame(handoffStoreIndex, b.EncodeFrame())); err != nil {
				return err
			}
			mb, err := c.ids.ExportFor([]event.GlobalID{gid})
			if err != nil {
				return err
			}
			if err := ship(target, cluster.EncodeHandoffFrame(handoffStoreIdmap, mb.EncodeFrame())); err != nil {
				return err
			}
			c.met.clusterHandoff.Inc("shipped")
			return nil
		})
	return moved, err
}

// ImportFrame implements cluster.Node: decode one handoff frame and
// replay its batch into the named store. Idempotent — frames are pure
// puts of immutable values, so a retried ship is harmless.
func (c *Controller) ImportFrame(frame []byte) error {
	if c.shard == nil {
		return ErrNotClustered
	}
	storeName, batchFrame, err := cluster.DecodeHandoffFrame(frame)
	if err != nil {
		return err
	}
	b, err := store.DecodeBatchFrame(batchFrame)
	if err != nil {
		return err
	}
	switch storeName {
	case handoffStoreIndex:
		err = c.idx.ApplyHandoff(b)
	case handoffStoreIdmap:
		err = c.ids.ApplyHandoff(b)
	default:
		return fmt.Errorf("core: handoff frame for unknown store %q", storeName)
	}
	if err == nil {
		c.met.clusterHandoff.Inc("adopted")
	}
	return err
}

// AdoptMap implements cluster.Node: atomically flip to the next map
// and lift the freeze. From this instant the shard routes (and
// redirects) by the new assignment.
func (c *Controller) AdoptMap(next *cluster.Map) error {
	if c.shard == nil {
		return ErrNotClustered
	}
	if err := c.reg.SetShardMap(next); err != nil {
		return err
	}
	c.shard.frozen.Store(nil)
	c.met.clusterMapVersion.Set(float64(next.Version()))
	return nil
}

// SweepMoved implements cluster.Node: delete every event this shard no
// longer owns under its current map — the donor's cleanup after the
// flip — from both the index and the id map.
func (c *Controller) SweepMoved() (int, error) {
	if c.shard == nil {
		return 0, ErrNotClustered
	}
	self := c.shard.id
	m := c.reg.ShardMap()
	gids, err := c.idx.SweepMoved(func(pseudonym string) bool { return m.Owner(pseudonym) != self })
	if err != nil {
		return 0, err
	}
	if _, err := c.ids.SweepFor(gids); err != nil {
		return len(gids), err
	}
	c.met.clusterHandoff.Add(uint64(len(gids)), "swept")
	return len(gids), nil
}

// IndexLen returns the number of events in this shard's index — the
// exactly-once assertion surface of the chaos and smoke suites.
func (c *Controller) IndexLen() (int, error) { return c.idx.Len() }
