package core

import (
	"context"
	"errors"
	"fmt"
	"testing"

	"repro/internal/audit"
	"repro/internal/enforcer"
	"repro/internal/event"
)

// unavailableSource simulates a producer gateway that never answers.
type unavailableSource struct{}

func (unavailableSource) GetResponse(event.SourceID, []event.FieldName) (*event.Detail, error) {
	return nil, fmt.Errorf("%w: gateway down", enforcer.ErrSourceUnavailable)
}

// TestCancelledAuditRecordCarriesTrace: even a request abandoned before
// any decision ran must leave an audit record joined to the flow's
// trace, and the trace's root span must record the outcome — the
// guarantor reconstructs abandoned flows too.
func TestCancelledAuditRecordCarriesTrace(t *testing.T) {
	w := newWorld(t)
	gid := w.producePublish(t, "bt-trace-cancel", "PERSON-TC")
	w.doctorPolicy(t)

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := w.c.RequestDetailsContext(ctx, w.request(gid)); !errors.Is(err, ErrCancelled) {
		t.Fatalf("err = %v, want ErrCancelled", err)
	}

	recs, err := w.c.Audit().Search(audit.Query{Kind: audit.KindDetailRequest, Outcome: "cancelled"})
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 {
		t.Fatalf("cancelled audit records = %d, want 1", len(recs))
	}
	trace := recs[0].Trace
	if trace == "" {
		t.Fatal("cancelled audit record has no trace id")
	}

	spans := w.c.Spans().ByTrace(trace)
	if len(spans) == 0 {
		t.Fatalf("no spans recorded for cancelled trace %s", trace)
	}
	found := false
	for _, s := range spans {
		if s.Stage != "detail.request" {
			continue
		}
		found = true
		if s.Error == "" {
			t.Fatal("cancelled detail.request span not marked failed")
		}
		outcome := ""
		for _, a := range s.Attrs {
			if a.Key == "outcome" {
				outcome = a.Value
			}
		}
		if outcome != "cancelled" {
			t.Fatalf("detail.request span outcome = %q, want cancelled", outcome)
		}
	}
	if !found {
		t.Fatalf("no detail.request span in trace %s: %+v", trace, spans)
	}
}

// TestUnavailableAuditRecordCarriesTrace: when the producer's gateway is
// unreachable the audit outcome is "unavailable" (not "deny"), and the
// record carries the flow's trace so css-audit -trace -spans can show
// where the flow died.
func TestUnavailableAuditRecordCarriesTrace(t *testing.T) {
	w := newWorld(t)
	gid := w.producePublish(t, "bt-trace-unavail", "PERSON-TU")
	w.doctorPolicy(t)
	if err := w.c.AttachGateway("hospital", unavailableSource{}); err != nil {
		t.Fatal(err)
	}

	_, err := w.c.RequestDetailsContext(context.Background(), w.request(gid))
	if err == nil {
		t.Fatal("request against a dead gateway succeeded")
	}
	if !errors.Is(err, enforcer.ErrSourceUnavailable) {
		t.Fatalf("err = %v, want ErrSourceUnavailable", err)
	}

	recs, aerr := w.c.Audit().Search(audit.Query{Kind: audit.KindDetailRequest, Outcome: "unavailable"})
	if aerr != nil {
		t.Fatal(aerr)
	}
	if len(recs) != 1 {
		t.Fatalf("unavailable audit records = %d, want 1", len(recs))
	}
	trace := recs[0].Trace
	if trace == "" {
		t.Fatal("unavailable audit record has no trace id")
	}
	spans := w.c.Spans().ByTrace(trace)
	var stages []string
	for _, s := range spans {
		stages = append(stages, s.Stage)
	}
	for _, want := range []string{"detail.request", "consent.check", "pdp.decide", "gateway.fetch"} {
		ok := false
		for _, got := range stages {
			if got == want {
				ok = true
			}
		}
		if !ok {
			t.Fatalf("trace %s missing stage %s (has %v)", trace, want, stages)
		}
	}
	for _, s := range spans {
		if s.Stage == "gateway.fetch" && s.Error == "" {
			t.Fatal("gateway.fetch span against a dead source not marked failed")
		}
	}
}
