package core

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/consent"
	"repro/internal/enforcer"
)

func TestConsentOptOutDeniesNextRequest(t *testing.T) {
	w := newWorld(t)
	gid := w.producePublish(t, "src-1", "PRS-1")
	w.doctorPolicy(t)

	// Warm every read-path cache with a permitted request.
	if _, err := w.c.RequestDetails(w.request(gid)); err != nil {
		t.Fatalf("warm-up: %v", err)
	}
	if _, err := w.c.RecordConsent(consent.Directive{PersonID: "PRS-1", Allow: false}); err != nil {
		t.Fatal(err)
	}
	// The VERY NEXT request must be denied — no cache may keep a permit
	// alive across the data subject's opt-out.
	if _, err := w.c.RequestDetails(w.request(gid)); !errors.Is(err, ErrConsentDeny) {
		t.Fatalf("post-opt-out err = %v, want ErrConsentDeny", err)
	}
	// Opting back in restores access on the very next request.
	if _, err := w.c.RecordConsent(consent.Directive{PersonID: "PRS-1", Allow: true}); err != nil {
		t.Fatal(err)
	}
	if _, err := w.c.RequestDetails(w.request(gid)); err != nil {
		t.Fatalf("post-opt-in err = %v, want permit", err)
	}
}

func TestConsentChangeInvalidatesDecisionCache(t *testing.T) {
	w := newWorld(t)
	gid := w.producePublish(t, "src-1", "PRS-1")
	w.doctorPolicy(t)

	w.c.RequestDetails(w.request(gid))
	w.c.RequestDetails(w.request(gid))
	hits := w.c.met.cacheEvents.Value("pdp.decision", "hit")
	if hits != 1 {
		t.Fatalf("pre-consent-change decision hits = %d, want 1", hits)
	}
	// Any consent directive bumps the decision epoch (defense in depth:
	// consent is re-checked per request at the controller anyway).
	if _, err := w.c.RecordConsent(consent.Directive{PersonID: "PRS-1", Allow: true}); err != nil {
		t.Fatal(err)
	}
	w.c.RequestDetails(w.request(gid))
	if h := w.c.met.cacheEvents.Value("pdp.decision", "hit"); h != hits {
		t.Errorf("decision hits after consent change = %d, want still %d (epoch bumped)", h, hits)
	}
	if m := w.c.met.cacheEvents.Value("pdp.decision", "miss"); m != 2 {
		t.Errorf("decision misses = %d, want 2", m)
	}
}

func TestCacheEventsCounterCoversReadPath(t *testing.T) {
	w := newWorld(t)
	gid := w.producePublish(t, "src-1", "PRS-1")
	w.doctorPolicy(t)

	for i := 0; i < 3; i++ {
		if _, err := w.c.RequestDetails(w.request(gid)); err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
	}
	for _, cache := range []string{"pdp.decision", "index.notification", "gateway.detail"} {
		hits := w.c.met.cacheEvents.Value(cache, "hit")
		misses := w.c.met.cacheEvents.Value(cache, "miss")
		if misses == 0 {
			t.Errorf("%s: no misses recorded (cache not wired?)", cache)
		}
		if hits < 2 {
			t.Errorf("%s: hits = %d, want >=2 for 3 identical requests", cache, hits)
		}
	}
}

func TestPrefetchDetails(t *testing.T) {
	w := newWorld(t)
	gid := w.producePublish(t, "src-1", "PRS-1")
	w.doctorPolicy(t)

	if err := w.c.PrefetchDetails(w.request(gid)); err != nil {
		t.Fatalf("PrefetchDetails: %v", err)
	}
	// Prefetch discloses nothing to any consumer, so it is not an access:
	// the access stats and audit trail must not move.
	if st := w.c.Stats(); st.DetailPermits != 0 || st.DetailDenials != 0 {
		t.Errorf("prefetch counted as access: %+v", st)
	}
	// It warmed the decision cache for the real request that follows.
	if _, err := w.c.RequestDetails(w.request(gid)); err != nil {
		t.Fatalf("post-prefetch request: %v", err)
	}
	if h := w.c.met.cacheEvents.Value("pdp.decision", "hit"); h != 1 {
		t.Errorf("decision hits after prefetch+request = %d, want 1", h)
	}
}

func TestPrefetchDetailsEnforcesEveryGuard(t *testing.T) {
	w := newWorld(t)
	gid := w.producePublish(t, "src-1", "PRS-1")

	// Deny-by-default without a policy.
	if err := w.c.PrefetchDetails(w.request(gid)); !errors.Is(err, enforcer.ErrDenied) {
		t.Errorf("no policy: err = %v, want ErrDenied", err)
	}
	w.doctorPolicy(t)
	// Unknown requester.
	r := w.request(gid)
	r.Requester = "never-registered"
	if err := w.c.PrefetchDetails(r); !errors.Is(err, ErrNotConsumer) {
		t.Errorf("unknown requester: err = %v", err)
	}
	// Unknown event.
	if err := w.c.PrefetchDetails(w.request("evt-ghost")); !errors.Is(err, enforcer.ErrUnknownEvent) {
		t.Errorf("unknown event: err = %v", err)
	}
	// Consent opt-out blocks prefetching too.
	if _, err := w.c.RecordConsent(consent.Directive{PersonID: "PRS-1", Allow: false}); err != nil {
		t.Fatal(err)
	}
	if err := w.c.PrefetchDetails(w.request(gid)); !errors.Is(err, ErrConsentDeny) {
		t.Errorf("opted out: err = %v, want ErrConsentDeny", err)
	}
}

// TestNoStalePermitUnderConsentChurn storms RequestDetails while the
// data subject flips consent, proving no cache layer can keep a permit
// alive into a window where the subject had provably opted out. Same seq
// protocol as the enforcer-level policy-churn test: odd = consent may be
// granted from now on, even = the opt-out directive is durably recorded
// and no re-grant has started.
func TestNoStalePermitUnderConsentChurn(t *testing.T) {
	w := newWorld(t)
	gid := w.producePublish(t, "src-1", "PRS-1")
	w.doctorPolicy(t)

	var seq atomic.Uint64
	// Start in the provably-denied state that matches seq 0 (even).
	if _, err := w.c.RecordConsent(consent.Directive{PersonID: "PRS-1", Allow: false}); err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	var cycles atomic.Int64
	var mutWG sync.WaitGroup
	mutWG.Add(1)
	go func() {
		defer mutWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			seq.Add(1) // odd: consent may be granted from now on
			if _, err := w.c.RecordConsent(consent.Directive{PersonID: "PRS-1", Allow: true}); err != nil {
				t.Error(err)
				return
			}
			if _, err := w.c.RecordConsent(consent.Directive{PersonID: "PRS-1", Allow: false}); err != nil {
				t.Error(err)
				return
			}
			seq.Add(1) // even: opt-out recorded, no re-grant started
			cycles.Add(1)
		}
	}()

	const workers = 4
	const perWorker = 2000
	var permits, denies atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < perWorker; j++ {
				s1 := seq.Load()
				_, err := w.c.RequestDetails(w.request(gid))
				switch {
				case err == nil:
					permits.Add(1)
					if s2 := seq.Load(); s1 == s2 && s1%2 == 0 {
						t.Errorf("stale permit at even seq %d (subject had opted out)", s1)
						return
					}
				case errors.Is(err, ErrConsentDeny):
					denies.Add(1)
				default:
					t.Errorf("unexpected error: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(stop)
	mutWG.Wait()
	t.Logf("consent churn: %d cycles, %d permits, %d denies", cycles.Load(), permits.Load(), denies.Load())
}
