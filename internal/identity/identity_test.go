package identity

import (
	"bytes"
	"errors"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/event"
)

func authority(t *testing.T) *Authority {
	t.Helper()
	a, err := NewAuthority(bytes.Repeat([]byte{2}, KeySize))
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestNewAuthorityValidation(t *testing.T) {
	for _, n := range []int{0, 16, 31, 33} {
		if _, err := NewAuthority(make([]byte, n)); err == nil {
			t.Errorf("key size %d accepted", n)
		}
	}
	if _, err := NewRandomAuthority(); err != nil {
		t.Errorf("NewRandomAuthority: %v", err)
	}
}

func TestIssueVerifyRoundTrip(t *testing.T) {
	a := authority(t)
	token, issued, err := a.Issue("hospital/laboratory", []string{"doctor"}, time.Hour)
	if err != nil {
		t.Fatalf("Issue: %v", err)
	}
	if issued.TokenID == "" || issued.ExpiresAt.Before(issued.IssuedAt) {
		t.Errorf("claims = %+v", issued)
	}
	claims, err := a.Verify(token, time.Time{})
	if err != nil {
		t.Fatalf("Verify: %v", err)
	}
	if claims.Actor != "hospital/laboratory" || !claims.HasRole("doctor") || claims.HasRole("admin") {
		t.Errorf("claims = %+v", claims)
	}
	if claims.TokenID != issued.TokenID {
		t.Error("token id mismatch")
	}
}

func TestIssueValidation(t *testing.T) {
	a := authority(t)
	if _, _, err := a.Issue("bad//actor", nil, time.Hour); err == nil {
		t.Error("invalid actor accepted")
	}
	if _, _, err := a.Issue("ok", nil, 0); err == nil {
		t.Error("zero ttl accepted")
	}
	if _, _, err := a.Issue("ok", nil, -time.Hour); err == nil {
		t.Error("negative ttl accepted")
	}
}

func TestVerifyRejectsTampering(t *testing.T) {
	a := authority(t)
	token, _, _ := a.Issue("hospital", nil, time.Hour)
	cases := map[string]string{
		"no dot":        strings.ReplaceAll(token, ".", ""),
		"empty sig":     token[:strings.Index(token, ".")+1],
		"flipped sig":   token[:len(token)-2] + "zz",
		"flipped body":  "A" + token[1:],
		"empty":         "",
		"just dot":      ".",
		"garbage":       "not-a-token",
		"swapped parts": token[strings.Index(token, ".")+1:] + "." + token[:strings.Index(token, ".")],
	}
	for name, bad := range cases {
		if _, err := a.Verify(bad, time.Time{}); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestVerifyRejectsOtherKey(t *testing.T) {
	a := authority(t)
	b, err := NewAuthority(bytes.Repeat([]byte{9}, KeySize))
	if err != nil {
		t.Fatal(err)
	}
	token, _, _ := a.Issue("hospital", nil, time.Hour)
	if _, err := b.Verify(token, time.Time{}); !errors.Is(err, ErrSignature) {
		t.Errorf("foreign key verify = %v", err)
	}
}

func TestVerifyWindow(t *testing.T) {
	a := authority(t)
	token, claims, _ := a.Issue("hospital", nil, time.Hour)
	if _, err := a.Verify(token, claims.IssuedAt.Add(30*time.Minute)); err != nil {
		t.Errorf("in-window = %v", err)
	}
	if _, err := a.Verify(token, claims.ExpiresAt.Add(time.Second)); !errors.Is(err, ErrExpired) {
		t.Errorf("expired = %v", err)
	}
	if _, err := a.Verify(token, claims.IssuedAt.Add(-time.Minute)); !errors.Is(err, ErrNotYet) {
		t.Errorf("pre-issue = %v", err)
	}
	// Boundary instants are valid.
	if _, err := a.Verify(token, claims.ExpiresAt); err != nil {
		t.Errorf("at expiry = %v", err)
	}
}

func TestRevocation(t *testing.T) {
	a := authority(t)
	token, claims, _ := a.Issue("hospital", nil, time.Hour)
	other, _, _ := a.Issue("hospital", nil, time.Hour)
	a.Revoke(claims.TokenID)
	if _, err := a.Verify(token, time.Time{}); !errors.Is(err, ErrRevoked) {
		t.Errorf("revoked verify = %v", err)
	}
	if _, err := a.Verify(other, time.Time{}); err != nil {
		t.Errorf("unrevoked sibling = %v", err)
	}
	a.Revoke("never-issued") // no-op
}

func TestClaimsCovers(t *testing.T) {
	c := Claims{Actor: "hospital"}
	if !c.Covers("hospital") || !c.Covers("hospital/lab") {
		t.Error("org token does not cover itself/departments")
	}
	if c.Covers("hospitality") || c.Covers("other") {
		t.Error("org token covers foreign actors")
	}
	d := Claims{Actor: "hospital/lab"}
	if d.Covers("hospital") {
		t.Error("department token covers the organization")
	}
}

// Property: every issued token verifies and reproduces its claims, and
// any single-character mutation of it fails verification.
func TestQuickTokenIntegrity(t *testing.T) {
	a := authority(t)
	f := func(seed uint8, pos uint16) bool {
		actor := "org-" + string(rune('a'+seed%26))
		token, issued, err := a.Issue(event.Actor(actor), []string{"r"}, time.Hour)
		if err != nil {
			return false
		}
		claims, err := a.Verify(token, time.Time{})
		if err != nil || claims.Actor != event.Actor(actor) || claims.TokenID != issued.TokenID {
			return false
		}
		i := int(pos) % len(token)
		mutated := token[:i] + string(token[i]^0x01) + token[i+1:]
		if mutated == token {
			return true // mutation landed on '.' toggled to '/': still different... guard anyway
		}
		_, err = a.Verify(mutated, time.Time{})
		return err != nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
