// Package identity implements the identity-management extension the
// paper defers to the national infrastructure (§5: "we plan to include as
// future extension of the infrastructure identity management mechanisms
// ... for the identification of the specific users accessing the
// information, to validate their credentials and roles and to manage
// changes and revocation of authorizations").
//
// An Authority issues HMAC-signed bearer tokens binding a principal to an
// organizational actor and a role set, with an expiry; it verifies tokens
// presented on web-service calls and supports revocation. The trusted-
// parties assumption of the paper becomes checkable: a request may only
// act as an actor its token covers.
package identity

import (
	"crypto/hmac"
	"crypto/rand"
	"crypto/sha256"
	"encoding/base64"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"strings"
	"sync"
	"time"

	"repro/internal/event"
)

// KeySize is the authority's signing key size.
const KeySize = 32

// Errors reported by token verification.
var (
	ErrMalformed = errors.New("identity: malformed token")
	ErrSignature = errors.New("identity: invalid signature")
	ErrExpired   = errors.New("identity: token expired")
	ErrRevoked   = errors.New("identity: token revoked")
	ErrNotYet    = errors.New("identity: token not yet valid")
)

// Claims are the verified contents of a token.
type Claims struct {
	// TokenID identifies the token for revocation.
	TokenID string `json:"jti"`
	// Actor is the organizational unit the bearer acts as. The token
	// covers the actor and (for organization-level tokens) its
	// departments.
	Actor event.Actor `json:"actor"`
	// Roles carry functional roles (e.g. "doctor", "privacy-expert");
	// they are informative to the platform, which authorizes by actor.
	Roles []string `json:"roles,omitempty"`
	// IssuedAt / ExpiresAt bound the token's validity.
	IssuedAt  time.Time `json:"iat"`
	ExpiresAt time.Time `json:"exp"`
}

// Covers reports whether the token may act as the requested actor: its
// own actor, or a department thereof.
func (c *Claims) Covers(actor event.Actor) bool {
	return c.Actor.Contains(actor)
}

// HasRole reports whether the claims carry a role.
func (c *Claims) HasRole(role string) bool {
	for _, r := range c.Roles {
		if r == role {
			return true
		}
	}
	return false
}

// Authority issues, verifies and revokes tokens. Safe for concurrent use.
type Authority struct {
	key []byte

	mu      sync.RWMutex
	revoked map[string]bool
}

// NewAuthority creates an authority with the given signing key.
func NewAuthority(key []byte) (*Authority, error) {
	if len(key) != KeySize {
		return nil, fmt.Errorf("identity: key must be %d bytes, got %d", KeySize, len(key))
	}
	return &Authority{key: append([]byte(nil), key...), revoked: make(map[string]bool)}, nil
}

// NewRandomAuthority creates an authority with a fresh random key.
func NewRandomAuthority() (*Authority, error) {
	key := make([]byte, KeySize)
	if _, err := rand.Read(key); err != nil {
		return nil, fmt.Errorf("identity: %w", err)
	}
	return NewAuthority(key)
}

// Issue mints a token for actor with the given roles and time-to-live.
func (a *Authority) Issue(actor event.Actor, roles []string, ttl time.Duration) (string, Claims, error) {
	if err := actor.Validate(); err != nil {
		return "", Claims{}, fmt.Errorf("identity: %w", err)
	}
	if ttl <= 0 {
		return "", Claims{}, errors.New("identity: non-positive ttl")
	}
	var id [12]byte
	if _, err := rand.Read(id[:]); err != nil {
		return "", Claims{}, fmt.Errorf("identity: %w", err)
	}
	now := time.Now().UTC().Truncate(time.Second)
	claims := Claims{
		TokenID:   hex.EncodeToString(id[:]),
		Actor:     actor,
		Roles:     append([]string(nil), roles...),
		IssuedAt:  now,
		ExpiresAt: now.Add(ttl),
	}
	payload, err := json.Marshal(&claims)
	if err != nil {
		return "", Claims{}, fmt.Errorf("identity: encode claims: %w", err)
	}
	body := base64.RawURLEncoding.EncodeToString(payload)
	sig := a.sign(body)
	return body + "." + sig, claims, nil
}

func (a *Authority) sign(body string) string {
	m := hmac.New(sha256.New, a.key)
	m.Write([]byte(body))
	return base64.RawURLEncoding.EncodeToString(m.Sum(nil))
}

// Verify checks a token's signature, validity window and revocation
// status at the given instant (zero means now), returning its claims.
func (a *Authority) Verify(token string, at time.Time) (Claims, error) {
	if at.IsZero() {
		at = time.Now()
	}
	dot := strings.IndexByte(token, '.')
	if dot <= 0 || dot == len(token)-1 {
		return Claims{}, ErrMalformed
	}
	body, sig := token[:dot], token[dot+1:]
	want := a.sign(body)
	if !hmac.Equal([]byte(want), []byte(sig)) {
		return Claims{}, ErrSignature
	}
	payload, err := base64.RawURLEncoding.DecodeString(body)
	if err != nil {
		return Claims{}, ErrMalformed
	}
	var claims Claims
	if err := json.Unmarshal(payload, &claims); err != nil {
		return Claims{}, ErrMalformed
	}
	if at.Before(claims.IssuedAt) {
		return Claims{}, ErrNotYet
	}
	if at.After(claims.ExpiresAt) {
		return Claims{}, ErrExpired
	}
	a.mu.RLock()
	revoked := a.revoked[claims.TokenID]
	a.mu.RUnlock()
	if revoked {
		return Claims{}, ErrRevoked
	}
	return claims, nil
}

// Revoke invalidates a token by its id ("manage changes and revocation
// of authorizations", §5). Revoking an unknown id is a no-op.
func (a *Authority) Revoke(tokenID string) {
	a.mu.Lock()
	a.revoked[tokenID] = true
	a.mu.Unlock()
}
