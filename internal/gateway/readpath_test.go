package gateway

import (
	"testing"

	"repro/internal/event"
)

func countCache(g *Gateway, name string) (hits, misses *int) {
	h, m := new(int), new(int)
	g.SetCacheObserver(func(cache string, hit bool) {
		if cache != name {
			return
		}
		if hit {
			*h++
		} else {
			*m++
		}
	})
	return h, m
}

func TestGetResponseCachesDecodedDetail(t *testing.T) {
	g := newGateway(t)
	hits, misses := countCache(g, "gateway.detail")
	if err := g.Persist(bloodDetail("src-1")); err != nil {
		t.Fatal(err)
	}
	fields := []event.FieldName{"patient-id", "hemoglobin"}
	for i := 0; i < 3; i++ {
		d, err := g.GetResponse("src-1", fields)
		if err != nil {
			t.Fatalf("GetResponse %d: %v", i, err)
		}
		if v, _ := d.Get("hemoglobin"); v != "13.5" {
			t.Fatalf("GetResponse %d: hemoglobin = %q", i, v)
		}
		if _, leaked := d.Get("aids-test"); leaked {
			t.Fatalf("GetResponse %d leaked an unauthorized field", i)
		}
	}
	if *misses != 1 || *hits != 2 {
		t.Errorf("detail cache: %d misses / %d hits, want 1/2", *misses, *hits)
	}
}

func TestPersistInvalidatesCachedDetail(t *testing.T) {
	g := newGateway(t)
	if err := g.Persist(bloodDetail("src-1")); err != nil {
		t.Fatal(err)
	}
	if _, err := g.GetResponse("src-1", []event.FieldName{"hemoglobin"}); err != nil {
		t.Fatal(err) // fills the cache
	}
	amended := bloodDetail("src-1").Set("hemoglobin", "9.9")
	if err := g.Persist(amended); err != nil {
		t.Fatal(err)
	}
	d, err := g.GetResponse("src-1", []event.FieldName{"hemoglobin"})
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := d.Get("hemoglobin"); v != "9.9" {
		t.Errorf("GetResponse after re-Persist = %q, want the amended value (stale cache)", v)
	}
}

func TestCachedDetailIsNotMutatedByFiltering(t *testing.T) {
	g := newGateway(t)
	if err := g.Persist(bloodDetail("src-1")); err != nil {
		t.Fatal(err)
	}
	// A narrow filtered response must not shrink what a later, wider
	// request can see (Filter copies; the cached detail stays complete).
	if _, err := g.GetResponse("src-1", []event.FieldName{"patient-id"}); err != nil {
		t.Fatal(err)
	}
	d, err := g.GetResponse("src-1", []event.FieldName{"patient-id", "hemoglobin", "exam-date"})
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range []event.FieldName{"patient-id", "hemoglobin", "exam-date"} {
		if _, ok := d.Get(f); !ok {
			t.Errorf("field %s missing from the wide response after a narrow one", f)
		}
	}
}
