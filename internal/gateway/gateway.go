// Package gateway implements the Local Cooperation Gateway installed at
// each data producer (paper §4): it persists every detail message the
// source notifies "so that they can be retrieved even when the source
// systems are un-accessible" — requests for details "may arrive to the
// data controller even months after the publication of the notification"
// — and it executes the producer-side half of enforcement, Algorithm 2:
//
//	getResponse(src_eID, F):
//	  1. retrieve the event details from the internal events repository;
//	  2. parse the details to filter out the values of the fields that
//	     are not allowed, producing the privacy-aware event.
//
// Only data accessible to the consumer ever leaves the producer.
package gateway

import (
	"errors"
	"fmt"
	"sync/atomic"

	"repro/internal/cache"
	"repro/internal/event"
	"repro/internal/schema"
	"repro/internal/store"
)

// Errors reported by the gateway.
var (
	ErrNotFound      = errors.New("gateway: event details not found")
	ErrWrongProducer = errors.New("gateway: detail belongs to another producer")
	ErrNoFields      = errors.New("gateway: empty authorized field set")
)

// SchemaSource resolves the schema of an event class; the gateway uses it
// to validate details before persisting them. The event catalog satisfies
// this.
type SchemaSource interface {
	Schema(event.ClassID) (*schema.Schema, error)
}

// CacheObserver receives the outcome of one decoded-detail cache lookup
// ("gateway.detail"). Alias form so wiring code can duck-type
// SetCacheObserver across packages.
type CacheObserver = func(cache string, hit bool)

// detailCacheSize bounds the decoded-detail read cache.
const detailCacheSize = 1024

// Gateway is one producer's local cooperation gateway. Safe for
// concurrent use; durable when backed by a persistent store.
//
// A bounded LRU of decoded details fronts the store, so repeated
// GetResponse calls for a hot event skip the per-request decode and pay
// only the field filtering. Caching full details HERE is legal where it
// would not be at the data controller: the gateway runs at the data
// producer, so the cached copy never leaves the owner's control (the E13
// ablation documents why the controller must not hold one). Entries are
// filled inside a store read transaction and deleted after every Persist
// of the same source id, so a re-persisted detail is never served stale.
type Gateway struct {
	producer event.ProducerID
	st       *store.Store
	schemas  SchemaSource

	details *cache.LRU[event.SourceID, *event.Detail]
	obs     atomic.Pointer[CacheObserver]

	stored    atomic.Uint64
	served    atomic.Uint64
	bytesOut  atomic.Uint64 // payload bytes released (values of authorized fields)
	bytesHeld atomic.Uint64 // payload bytes withheld by filtering
}

// New creates a gateway for producer backed by st. schemas may be nil to
// skip validation (used by baselines only).
func New(producer event.ProducerID, st *store.Store, schemas SchemaSource) (*Gateway, error) {
	if producer == "" {
		return nil, errors.New("gateway: empty producer id")
	}
	if st == nil {
		return nil, errors.New("gateway: nil store")
	}
	return &Gateway{
		producer: producer,
		st:       st,
		schemas:  schemas,
		details:  cache.NewLRU[event.SourceID, *event.Detail](detailCacheSize),
	}, nil
}

// SetCacheObserver installs the cache hit/miss observer (nil disables).
func (g *Gateway) SetCacheObserver(o CacheObserver) {
	if o == nil {
		g.obs.Store(nil)
		return
	}
	g.obs.Store(&o)
}

func (g *Gateway) noteCache(cache string, hit bool) {
	if o := g.obs.Load(); o != nil {
		(*o)(cache, hit)
	}
}

// Producer returns the owning producer.
func (g *Gateway) Producer() event.ProducerID { return g.producer }

// Persist stores a full detail message produced by the source system.
// The detail is validated against its class schema (when a schema source
// is configured) and must belong to this gateway's producer.
func (g *Gateway) Persist(d *event.Detail) error {
	if err := d.Validate(); err != nil {
		return err
	}
	if d.Producer != g.producer {
		return fmt.Errorf("%w: %s", ErrWrongProducer, d.Producer)
	}
	if g.schemas != nil {
		s, err := g.schemas.Schema(d.Class)
		if err != nil {
			return fmt.Errorf("gateway: unknown class %s: %w", d.Class, err)
		}
		if err := s.Validate(d); err != nil {
			return err
		}
	}
	data, err := event.EncodeDetail(d)
	if err != nil {
		return fmt.Errorf("gateway: encode: %w", err)
	}
	if err := g.st.Put(detailKey(d.SourceID), data); err != nil {
		return err
	}
	// Invalidate after the write commits; readers fill only under the
	// store's read lock, so no stale decode can outlive this delete.
	g.details.Delete(d.SourceID)
	g.stored.Add(1)
	return nil
}

// Has reports whether details for the source id are persisted.
func (g *Gateway) Has(src event.SourceID) (bool, error) {
	return g.st.Has(detailKey(src))
}

// load retrieves the full persisted detail through the decoded-detail
// cache. Unexported: full details never cross the package boundary
// unfiltered — GetResponse is the only exit path, mirroring the paper's
// guarantee that "it is never the case that data not accessible by a
// certain data consumer leaves the data producer". The returned detail
// may be cache-shared: callers read it (Filter copies) but never mutate.
func (g *Gateway) load(src event.SourceID) (*event.Detail, error) {
	if d, ok := g.details.Get(src); ok {
		g.noteCache("gateway.detail", true)
		return d, nil
	}
	g.noteCache("gateway.detail", false)
	var d *event.Detail
	err := g.st.View(func(tx store.Tx) error {
		v, ok := tx.Get(detailKey(src))
		if !ok {
			return fmt.Errorf("%w: %s", ErrNotFound, src)
		}
		// DecodeDetail copies out of the no-copy transaction slice; the
		// fill happens inside the read transaction so it is ordered
		// before any later Persist of this source id.
		var derr error
		d, derr = event.DecodeDetail(v)
		if derr == nil {
			g.details.Put(src, d)
		}
		return derr
	})
	if err != nil {
		return nil, err
	}
	return d, nil
}

// GetResponse is Algorithm 2: retrieve the details of src and return the
// privacy-aware event containing only the authorized fields. An empty
// authorized set is rejected (fail closed): the PEP should never have
// permitted such a request.
func (g *Gateway) GetResponse(src event.SourceID, fields []event.FieldName) (*event.Detail, error) {
	if len(fields) == 0 {
		return nil, ErrNoFields
	}
	d, err := g.load(src)
	if err != nil {
		return nil, err
	}
	filtered := d.Filter(fields)
	var out, held uint64
	for name, v := range d.Fields {
		if _, kept := filtered.Fields[name]; kept {
			out += uint64(len(v))
		} else {
			held += uint64(len(v))
		}
	}
	g.served.Add(1)
	g.bytesOut.Add(out)
	g.bytesHeld.Add(held)
	return filtered, nil
}

// Len returns the number of persisted detail messages.
func (g *Gateway) Len() (int, error) {
	n := 0
	err := g.st.AscendPrefix("dt/", func(string, []byte) bool {
		n++
		return true
	})
	return n, err
}

// Stats reports cumulative gateway counters, used by the exposure
// experiments (E4).
type Stats struct {
	Stored        uint64 // details persisted
	Served        uint64 // detail responses released
	BytesReleased uint64 // field-value bytes released to consumers
	BytesWithheld uint64 // field-value bytes filtered out before release
}

// Stats returns a snapshot of the counters.
func (g *Gateway) Stats() Stats {
	return Stats{
		Stored:        g.stored.Load(),
		Served:        g.served.Load(),
		BytesReleased: g.bytesOut.Load(),
		BytesWithheld: g.bytesHeld.Load(),
	}
}

func detailKey(src event.SourceID) string { return "dt/" + string(src) }
