package gateway

import (
	"errors"
	"math/rand"
	"path/filepath"
	"testing"
	"testing/quick"

	"repro/internal/event"
	"repro/internal/registry"
	"repro/internal/schema"
	"repro/internal/store"
)

func catalog(t *testing.T) *registry.Registry {
	t.Helper()
	r := registry.New()
	if err := r.RegisterProducer("hospital", "Hospital"); err != nil {
		t.Fatal(err)
	}
	if err := r.DeclareClass("hospital", schema.BloodTest()); err != nil {
		t.Fatal(err)
	}
	return r
}

func newGateway(t *testing.T) *Gateway {
	t.Helper()
	g, err := New("hospital", store.OpenMemory(), catalog(t))
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func bloodDetail(src event.SourceID) *event.Detail {
	return event.NewDetail(schema.ClassBloodTest, src, "hospital").
		Set("patient-id", "PRS-1").
		Set("exam-date", "2010-03-01").
		Set("hemoglobin", "13.5").
		Set("aids-test", "negative").
		Set("lab-notes", "routine checkup")
}

func TestNewValidation(t *testing.T) {
	if _, err := New("", store.OpenMemory(), nil); err == nil {
		t.Error("empty producer accepted")
	}
	if _, err := New("p", nil, nil); err == nil {
		t.Error("nil store accepted")
	}
}

func TestPersistAndGetResponse(t *testing.T) {
	g := newGateway(t)
	if err := g.Persist(bloodDetail("src-1")); err != nil {
		t.Fatalf("Persist: %v", err)
	}
	if ok, _ := g.Has("src-1"); !ok {
		t.Error("Has(src-1) = false")
	}
	got, err := g.GetResponse("src-1", []event.FieldName{"patient-id", "hemoglobin"})
	if err != nil {
		t.Fatalf("GetResponse: %v", err)
	}
	if v, _ := got.Get("hemoglobin"); v != "13.5" {
		t.Errorf("hemoglobin = %q", v)
	}
	if _, leaked := got.Get("aids-test"); leaked {
		t.Error("unauthorized field released")
	}
	if !got.ExposesOnly([]event.FieldName{"patient-id", "hemoglobin"}) {
		t.Error("response not privacy safe")
	}
}

func TestGetResponseFailClosed(t *testing.T) {
	g := newGateway(t)
	g.Persist(bloodDetail("src-1"))
	if _, err := g.GetResponse("src-1", nil); !errors.Is(err, ErrNoFields) {
		t.Errorf("empty field set = %v, want ErrNoFields", err)
	}
	if _, err := g.GetResponse("src-404", []event.FieldName{"patient-id"}); !errors.Is(err, ErrNotFound) {
		t.Errorf("unknown source = %v, want ErrNotFound", err)
	}
}

func TestPersistValidation(t *testing.T) {
	g := newGateway(t)
	// Wrong producer.
	d := bloodDetail("src-1")
	d.Producer = "someone-else"
	if err := g.Persist(d); !errors.Is(err, ErrWrongProducer) {
		t.Errorf("wrong producer = %v", err)
	}
	// Unknown class.
	u := event.NewDetail("unknown.class", "s", "hospital").Set("f", "v")
	if err := g.Persist(u); err == nil {
		t.Error("unknown class accepted")
	}
	// Schema violation: missing required field.
	bad := event.NewDetail(schema.ClassBloodTest, "s", "hospital").Set("hemoglobin", "13")
	if err := g.Persist(bad); err == nil {
		t.Error("schema-invalid detail accepted")
	}
	// Structural violation.
	empty := &event.Detail{}
	if err := g.Persist(empty); err == nil {
		t.Error("structurally invalid detail accepted")
	}
}

func TestPersistWithoutSchemaSource(t *testing.T) {
	g, err := New("hospital", store.OpenMemory(), nil)
	if err != nil {
		t.Fatal(err)
	}
	d := event.NewDetail("any.class", "s", "hospital").Set("f", "v")
	if err := g.Persist(d); err != nil {
		t.Errorf("Persist without schemas = %v", err)
	}
}

func TestTemporalDecoupling(t *testing.T) {
	// The gateway answers from its own store: details persist across
	// restarts, modeling retrieval months later with the source system
	// offline (E10).
	path := filepath.Join(t.TempDir(), "gw.wal")
	st, err := store.Open(path, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	g, _ := New("hospital", st, catalog(t))
	g.Persist(bloodDetail("src-old"))
	st.Close() // the producer's system goes down

	st2, err := store.Open(path, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	g2, _ := New("hospital", st2, catalog(t))
	got, err := g2.GetResponse("src-old", []event.FieldName{"patient-id"})
	if err != nil {
		t.Fatalf("retrieval after restart: %v", err)
	}
	if v, _ := got.Get("patient-id"); v != "PRS-1" {
		t.Errorf("patient-id = %q", v)
	}
}

func TestLenAndStats(t *testing.T) {
	g := newGateway(t)
	g.Persist(bloodDetail("src-1"))
	g.Persist(bloodDetail("src-2"))
	g.Persist(bloodDetail("src-1")) // overwrite, not growth
	if n, _ := g.Len(); n != 2 {
		t.Errorf("Len = %d", n)
	}
	g.GetResponse("src-1", []event.FieldName{"patient-id"})
	st := g.Stats()
	if st.Stored != 3 || st.Served != 1 {
		t.Errorf("Stats = %+v", st)
	}
	if st.BytesReleased == 0 || st.BytesWithheld == 0 {
		t.Errorf("byte accounting missing: %+v", st)
	}
	if st.BytesReleased != uint64(len("PRS-1")) {
		t.Errorf("BytesReleased = %d, want %d", st.BytesReleased, len("PRS-1"))
	}
}

// Property: whatever the authorized set, the response never exposes a
// field outside it (Definition 4 at the gateway boundary), and authorized
// fields keep their exact values.
func TestQuickGetResponsePrivacySafe(t *testing.T) {
	g, err := New("hospital", store.OpenMemory(), nil)
	if err != nil {
		t.Fatal(err)
	}
	universe := []event.FieldName{"f1", "f2", "f3", "f4", "f5", "f6"}
	f := func(seed int64, mask uint8) bool {
		r := rand.New(rand.NewSource(seed))
		d := event.NewDetail("c.x", event.SourceID(string(rune('a'+r.Intn(26)))), "hospital")
		for _, name := range universe {
			if r.Intn(2) == 0 {
				d.Set(name, string(rune('a'+r.Intn(26))))
			}
		}
		if len(d.Fields) == 0 {
			d.Set("f1", "x")
		}
		if err := g.Persist(d); err != nil {
			return false
		}
		var allowed []event.FieldName
		for i, name := range universe {
			if mask&(1<<i) != 0 {
				allowed = append(allowed, name)
			}
		}
		if len(allowed) == 0 {
			allowed = []event.FieldName{"f1"}
		}
		resp, err := g.GetResponse(d.SourceID, allowed)
		if err != nil {
			return false
		}
		if !resp.ExposesOnly(allowed) {
			return false
		}
		for name, v := range resp.Fields {
			if d.Fields[name] != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
