package policy

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/event"
)

func TestRepositoryAddGetRemove(t *testing.T) {
	r := NewRepository()
	stored, err := r.Add(validPolicy())
	if err != nil {
		t.Fatalf("Add: %v", err)
	}
	if stored.ID == "" {
		t.Fatal("Add did not assign an ID")
	}
	if stored.CreatedAt.IsZero() {
		t.Error("Add did not stamp CreatedAt")
	}
	got, err := r.Get(stored.ID)
	if err != nil || got.Name != stored.Name {
		t.Fatalf("Get = %+v, %v", got, err)
	}
	if r.Len() != 1 {
		t.Errorf("Len = %d", r.Len())
	}
	if err := r.Remove(stored.ID); err != nil {
		t.Fatalf("Remove: %v", err)
	}
	if _, err := r.Get(stored.ID); !errors.Is(err, ErrNotFound) {
		t.Errorf("Get after Remove = %v", err)
	}
	if err := r.Remove(stored.ID); !errors.Is(err, ErrNotFound) {
		t.Errorf("double Remove = %v", err)
	}
	if r.Len() != 0 {
		t.Errorf("Len after Remove = %d", r.Len())
	}
}

func TestRepositoryAddRejectsInvalidAndDuplicateID(t *testing.T) {
	r := NewRepository()
	bad := validPolicy()
	bad.Fields = nil
	if _, err := r.Add(bad); err == nil {
		t.Error("Add accepted invalid policy")
	}
	p := validPolicy()
	p.ID = "fixed-id"
	if _, err := r.Add(p); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Add(p); err == nil {
		t.Error("Add accepted duplicate ID")
	}
}

func TestRepositoryAddStoresCopy(t *testing.T) {
	r := NewRepository()
	p := validPolicy()
	stored, _ := r.Add(p)
	p.Fields[0] = "mutated-after-add"
	got, _ := r.Get(stored.ID)
	if got.Fields[0] != "patient-id" {
		t.Error("repository shares state with caller's policy")
	}
	got.Fields[0] = "mutated-after-get"
	again, _ := r.Get(stored.ID)
	if again.Fields[0] != "patient-id" {
		t.Error("Get exposes internal state")
	}
}

func TestMatchDenyByDefault(t *testing.T) {
	r := NewRepository()
	if _, err := r.Match(request()); !errors.Is(err, ErrNotFound) {
		t.Errorf("Match on empty repo = %v, want ErrNotFound", err)
	}
	r.Add(validPolicy())
	req := request()
	req.Purpose = event.PurposeAdministration
	if _, err := r.Match(req); !errors.Is(err, ErrNotFound) {
		t.Errorf("Match with wrong purpose = %v, want ErrNotFound", err)
	}
}

func TestMatchFindsPolicy(t *testing.T) {
	r := NewRepository()
	want, _ := r.Add(validPolicy())
	got, err := r.Match(request())
	if err != nil {
		t.Fatalf("Match: %v", err)
	}
	if got.ID != want.ID {
		t.Errorf("Match = %s, want %s", got.ID, want.ID)
	}
}

func TestMatchPrefersMostSpecificActor(t *testing.T) {
	r := NewRepository()
	org := validPolicy()
	org.Actor = "hospital"
	org.Fields = []event.FieldName{"patient-id"}
	dept := validPolicy()
	dept.Actor = "hospital/laboratory"
	dept.Fields = []event.FieldName{"patient-id", "name"}
	r.Add(org)
	r.Add(dept)

	req := request()
	req.Requester = "hospital/laboratory"
	got, err := r.Match(req)
	if err != nil {
		t.Fatal(err)
	}
	if got.Actor != "hospital/laboratory" || len(got.Fields) != 2 {
		t.Errorf("Match chose %s with %d fields, want department policy", got.Actor, len(got.Fields))
	}
	// A sibling department only matches the org-level grant.
	req.Requester = "hospital/dermatology"
	got, err = r.Match(req)
	if err != nil {
		t.Fatal(err)
	}
	if got.Actor != "hospital" {
		t.Errorf("sibling matched %s", got.Actor)
	}
}

func TestMatchTieBreaksByNewest(t *testing.T) {
	r := NewRepository()
	older := validPolicy()
	older.CreatedAt = time.Date(2010, 1, 1, 0, 0, 0, 0, time.UTC)
	older.Fields = []event.FieldName{"patient-id"}
	newer := validPolicy()
	newer.CreatedAt = time.Date(2010, 6, 1, 0, 0, 0, 0, time.UTC)
	newer.Fields = []event.FieldName{"patient-id", "name"}
	r.Add(older)
	r.Add(newer)
	got, err := r.Match(request())
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Fields) != 2 {
		t.Error("Match did not prefer the newest policy on actor tie")
	}
}

func TestMatchAll(t *testing.T) {
	r := NewRepository()
	org := validPolicy()
	org.Actor = "hospital"
	dept := validPolicy()
	dept.Actor = "hospital/laboratory"
	r.Add(org)
	r.Add(dept)
	req := request()
	req.Requester = "hospital/laboratory"
	all := r.MatchAll(req)
	if len(all) != 2 {
		t.Fatalf("MatchAll = %d, want 2", len(all))
	}
	if all[0].Actor != "hospital/laboratory" {
		t.Errorf("MatchAll[0] = %s, want most specific first", all[0].Actor)
	}
}

func TestAllowsSubscription(t *testing.T) {
	r := NewRepository()
	now := time.Date(2010, 6, 1, 0, 0, 0, 0, time.UTC)
	if r.AllowsSubscription("family-doctor", "social.home-care-service", now) {
		t.Error("subscription allowed with empty repository (deny-by-default violated)")
	}
	p := validPolicy()
	p.NotAfter = time.Date(2010, 12, 31, 0, 0, 0, 0, time.UTC)
	r.Add(p)
	if !r.AllowsSubscription("family-doctor", "social.home-care-service", now) {
		t.Error("subscription rejected despite matching policy")
	}
	if r.AllowsSubscription("family-doctor", "hospital.blood-test", now) {
		t.Error("subscription allowed for unprotected class")
	}
	if r.AllowsSubscription("someone-else", "social.home-care-service", now) {
		t.Error("subscription allowed for unknown actor")
	}
	expired := time.Date(2011, 6, 1, 0, 0, 0, 0, time.UTC)
	if r.AllowsSubscription("family-doctor", "social.home-care-service", expired) {
		t.Error("subscription allowed outside validity window")
	}
}

func TestByProducerByClassAll(t *testing.T) {
	r := NewRepository()
	p1 := validPolicy()
	p2 := validPolicy()
	p2.Producer = "hospital-s-maria"
	p2.Class = "hospital.blood-test"
	r.Add(p1)
	r.Add(p2)
	if got := r.ByProducer("municipality-trento"); len(got) != 1 {
		t.Errorf("ByProducer = %d", len(got))
	}
	if got := r.ByClass("hospital.blood-test"); len(got) != 1 {
		t.Errorf("ByClass = %d", len(got))
	}
	if got := r.All(); len(got) != 2 || got[0].ID >= got[1].ID {
		t.Errorf("All = %v", got)
	}
}

func TestRepositoryConcurrency(t *testing.T) {
	r := NewRepository()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				p := validPolicy()
				p.Actor = event.Actor(fmt.Sprintf("org-%d-%d", g, i))
				if _, err := r.Add(p); err != nil {
					t.Errorf("Add: %v", err)
					return
				}
				r.Match(request())
				r.All()
			}
		}(g)
	}
	wg.Wait()
	if r.Len() != 400 {
		t.Errorf("Len = %d, want 400", r.Len())
	}
}
