package policy

import (
	"testing"
	"time"

	"repro/internal/event"
	"repro/internal/schema"
)

func TestBuilderHappyPath(t *testing.T) {
	s := schema.HomeCare()
	policies, err := NewBuilder("municipality-trento", s).
		SelectFields("patient-id", "name", "surname").
		SelectConsumers("family-doctor", "social-welfare/home-care").
		SelectPurposes(event.PurposeHealthcareTreatment, event.PurposeSocialAssistance).
		Label("home care basics", "identity-only access for caregivers").
		Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if len(policies) != 2 {
		t.Fatalf("Build returned %d policies, want 2 (one per consumer)", len(policies))
	}
	p := policies[0]
	if p.Producer != "municipality-trento" || p.Class != schema.ClassHomeCare {
		t.Errorf("policy header: %+v", p)
	}
	if len(p.Fields) != 3 || len(p.Purposes) != 2 {
		t.Errorf("policy selections: fields=%d purposes=%d", len(p.Fields), len(p.Purposes))
	}
	if p.Name != "home care basics" {
		t.Errorf("Name = %q", p.Name)
	}
	if policies[0].Actor == policies[1].Actor {
		t.Error("both policies have the same actor")
	}
	// Each built policy must pass full validation.
	for _, p := range policies {
		if err := p.Validate(); err != nil {
			t.Errorf("built policy invalid: %v", err)
		}
	}
}

func TestBuilderSelectAllFieldsExcept(t *testing.T) {
	s := schema.BloodTest()
	policies, err := NewBuilder("hospital-s-maria", s).
		SelectAllFieldsExcept("aids-test", "lab-notes").
		SelectConsumers("family-doctor").
		SelectPurposes(event.PurposeHealthcareTreatment).
		Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	p := policies[0]
	if p.AllowsField("aids-test") || p.AllowsField("lab-notes") {
		t.Error("excluded field present in policy")
	}
	if !p.AllowsField("hemoglobin") || !p.AllowsField("patient-id") {
		t.Error("non-excluded field missing from policy")
	}
	if len(p.Fields) != len(s.FieldNames())-2 {
		t.Errorf("field count = %d", len(p.Fields))
	}
}

func TestBuilderRejectsUnknownField(t *testing.T) {
	if _, err := NewBuilder("p", schema.HomeCare()).
		SelectFields("no-such-field").
		SelectConsumers("x").
		SelectPurposes("y").
		Build(); err == nil {
		t.Error("unknown field accepted")
	}
	if _, err := NewBuilder("p", schema.HomeCare()).
		SelectAllFieldsExcept("no-such-field").
		SelectConsumers("x").
		SelectPurposes("y").
		Build(); err == nil {
		t.Error("unknown excluded field accepted")
	}
}

func TestBuilderRejectsDuplicatesAndEmptiness(t *testing.T) {
	if _, err := NewBuilder("p", schema.HomeCare()).
		SelectFields("name").
		SelectFields("name").
		SelectConsumers("x").
		SelectPurposes("y").
		Build(); err == nil {
		t.Error("duplicate field selection accepted")
	}
	if _, err := NewBuilder("p", schema.HomeCare()).
		SelectFields("name").
		SelectPurposes("y").
		Build(); err == nil {
		t.Error("no consumers accepted")
	}
	if _, err := NewBuilder("p", schema.HomeCare()).
		SelectFields("name").
		SelectConsumers("x").
		Build(); err == nil {
		t.Error("no purposes accepted")
	}
	if _, err := NewBuilder("p", schema.HomeCare()).
		SelectConsumers("x").
		SelectPurposes("y").
		Build(); err == nil {
		t.Error("no fields accepted")
	}
	if _, err := NewBuilder("", schema.HomeCare()).
		SelectFields("name").SelectConsumers("x").SelectPurposes("y").
		Build(); err == nil {
		t.Error("empty producer accepted")
	}
	if _, err := NewBuilder("p", nil).
		Build(); err == nil {
		t.Error("nil schema accepted")
	}
	if _, err := NewBuilder("p", schema.HomeCare()).
		SelectFields("name").
		SelectConsumers("bad//actor").
		SelectPurposes("y").
		Build(); err == nil {
		t.Error("bad consumer actor accepted")
	}
}

func TestBuilderFirstErrorWins(t *testing.T) {
	_, err := NewBuilder("p", schema.HomeCare()).
		SelectFields("no-such-field"). // first error
		SelectConsumers("bad//actor"). // would be a second error
		Build()
	if err == nil || err.Error() == "" {
		t.Fatal("expected error")
	}
	want := "declares no field"
	if got := err.Error(); !contains(got, want) {
		t.Errorf("error = %q, want it to mention %q (first failure)", got, want)
	}
}

func contains(s, sub string) bool {
	return len(s) >= len(sub) && (s == sub || len(sub) == 0 ||
		func() bool {
			for i := 0; i+len(sub) <= len(s); i++ {
				if s[i:i+len(sub)] == sub {
					return true
				}
			}
			return false
		}())
}

func TestBuilderValidityWindow(t *testing.T) {
	from := time.Date(2010, 1, 1, 0, 0, 0, 0, time.UTC)
	until := time.Date(2010, 12, 31, 0, 0, 0, 0, time.UTC)
	policies, err := NewBuilder("p", schema.HomeCare()).
		SelectFields("patient-id").
		SelectConsumers("contractor").
		SelectPurposes(event.PurposeSocialAssistance).
		ValidFrom(from).
		ValidUntil(until).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	p := policies[0]
	if !p.NotBefore.Equal(from) || !p.NotAfter.Equal(until) {
		t.Errorf("window = [%v, %v]", p.NotBefore, p.NotAfter)
	}
	if p.ValidAt(until.AddDate(0, 1, 0)) {
		t.Error("policy valid after contract end")
	}
}

func TestBuilderDefaultLabel(t *testing.T) {
	policies, err := NewBuilder("p", schema.HomeCare()).
		SelectFields("patient-id").
		SelectConsumers("c").
		SelectPurposes("s").
		Build()
	if err != nil {
		t.Fatal(err)
	}
	if policies[0].Name == "" {
		t.Error("Build left Name empty")
	}
}

func TestXMLRoundTrip(t *testing.T) {
	p := validPolicy()
	p.ID = "pol-000123"
	p.NotBefore = time.Date(2010, 1, 1, 0, 0, 0, 0, time.UTC)
	p.NotAfter = time.Date(2010, 12, 31, 0, 0, 0, 0, time.UTC)
	p.CreatedAt = time.Date(2010, 2, 2, 12, 0, 0, 0, time.UTC)
	data, err := Encode(p)
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	got, err := Decode(data)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if got.ID != p.ID || got.Actor != p.Actor || got.Class != p.Class ||
		got.Producer != p.Producer || got.Name != p.Name {
		t.Errorf("header mismatch: %+v", got)
	}
	if len(got.Fields) != len(p.Fields) || len(got.Purposes) != len(p.Purposes) {
		t.Errorf("selection sizes: %d/%d", len(got.Fields), len(got.Purposes))
	}
	if !got.NotBefore.Equal(p.NotBefore) || !got.NotAfter.Equal(p.NotAfter) || !got.CreatedAt.Equal(p.CreatedAt) {
		t.Errorf("times mismatch: %+v", got)
	}
}

func TestXMLRoundTripZeroTimes(t *testing.T) {
	p := validPolicy()
	data, err := Encode(p)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if !got.NotBefore.IsZero() || !got.NotAfter.IsZero() {
		t.Errorf("zero times not preserved: %v %v", got.NotBefore, got.NotAfter)
	}
}

func TestDecodeRejectsInvalid(t *testing.T) {
	if _, err := Decode([]byte("garbage")); err == nil {
		t.Error("Decode accepted garbage")
	}
	// Valid XML, invalid policy (no fields).
	bad := `<privacyPolicy id="x"><producer>p</producer><actor>a</actor><class>c.x</class><purposes><purpose>s</purpose></purposes></privacyPolicy>`
	if _, err := Decode([]byte(bad)); err == nil {
		t.Error("Decode accepted policy with no fields")
	}
	badTime := `<privacyPolicy id="x"><producer>p</producer><actor>a</actor><class>c.x</class><purposes><purpose>s</purpose></purposes><fields><field>f</field></fields><notBefore>not-a-time</notBefore></privacyPolicy>`
	if _, err := Decode([]byte(badTime)); err == nil {
		t.Error("Decode accepted bad timestamp")
	}
}
