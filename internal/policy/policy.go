// Package policy implements the event-based privacy policy model of the
// paper (§5):
//
//	Definition 2: p = {A, e_j, S, F} — actor, event details type, set of
//	purposes, and the subset of fields the actor may access;
//	Definition 3: p matches request r = {A_r, τ_e, s_r} iff the event
//	types coincide, the actor matches, and the purpose is allowed;
//	Definition 4: an event instance is privacy safe for p iff it exposes
//	no non-empty field outside F.
//
// Policies are defined by the data producers (they, not the controller,
// know which parts of an event are sensitive) through the elicitation
// builder, stored in a Repository at the data controller, and matched
// during detail-request resolution and subscription authorization with
// deny-by-default semantics.
package policy

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"repro/internal/event"
)

// ID identifies a policy in the repository.
type ID string

// Policy is one privacy policy rule in the sense of Definition 2,
// extended with the optional validity window of the elicitation tool
// (Fig. 7: "valid until", useful when private companies should access
// events only for the duration of their contract).
type Policy struct {
	// ID is the repository identifier, assigned on Add if empty.
	ID ID
	// Name and Description label the rule in the elicitation tool.
	Name        string
	Description string
	// Producer is the data source that defined (and owns) the policy.
	Producer event.ProducerID
	// Actor is A: the consumer subject the rule applies to. Thanks to the
	// organizational hierarchy, a rule granted to an organization covers
	// all of its departments.
	Actor event.Actor
	// Class is e_j: the event details type the rule protects.
	Class event.ClassID
	// Purposes is S: the admissible purposes of use.
	Purposes []event.Purpose
	// Fields is F ⊆ e_j: the fields the actor may access.
	Fields []event.FieldName
	// NotBefore/NotAfter bound the validity window; zero values mean
	// unbounded on that side.
	NotBefore time.Time
	NotAfter  time.Time
	// CreatedAt is when the rule was stored.
	CreatedAt time.Time
}

// Validate checks structural integrity of the policy.
func (p *Policy) Validate() error {
	if p.Producer == "" {
		return errors.New("policy: missing producer")
	}
	if err := p.Actor.Validate(); err != nil {
		return fmt.Errorf("policy: %w", err)
	}
	if err := p.Class.Validate(); err != nil {
		return fmt.Errorf("policy: %w", err)
	}
	if len(p.Purposes) == 0 {
		return errors.New("policy: no purposes")
	}
	seenPurpose := make(map[event.Purpose]bool, len(p.Purposes))
	for _, s := range p.Purposes {
		if err := s.Validate(); err != nil {
			return fmt.Errorf("policy: %w", err)
		}
		if seenPurpose[s] {
			return fmt.Errorf("policy: duplicate purpose %q", s)
		}
		seenPurpose[s] = true
	}
	if len(p.Fields) == 0 {
		// A policy with no fields would permit the request but release
		// nothing; the elicitation tool prevents it, and so do we: use
		// deny-by-default (no policy) to deny.
		return errors.New("policy: no fields")
	}
	seenField := make(map[event.FieldName]bool, len(p.Fields))
	for _, f := range p.Fields {
		if f == "" {
			return errors.New("policy: empty field name")
		}
		if seenField[f] {
			return fmt.Errorf("policy: duplicate field %q", f)
		}
		seenField[f] = true
	}
	if !p.NotBefore.IsZero() && !p.NotAfter.IsZero() && p.NotAfter.Before(p.NotBefore) {
		return errors.New("policy: validity window ends before it starts")
	}
	return nil
}

// AllowsPurpose reports whether s ∈ S.
func (p *Policy) AllowsPurpose(s event.Purpose) bool {
	for _, allowed := range p.Purposes {
		if allowed == s {
			return true
		}
	}
	return false
}

// AllowsField reports whether f ∈ F.
func (p *Policy) AllowsField(f event.FieldName) bool {
	for _, allowed := range p.Fields {
		if allowed == f {
			return true
		}
	}
	return false
}

// ValidAt reports whether the policy's validity window covers t.
func (p *Policy) ValidAt(t time.Time) bool {
	if !p.NotBefore.IsZero() && t.Before(p.NotBefore) {
		return false
	}
	if !p.NotAfter.IsZero() && t.After(p.NotAfter) {
		return false
	}
	return true
}

// Matches implements Definition 3 over a detail request: same event type,
// actor covered by the policy's actor (exact subject or a department of
// the granted organization), allowed purpose, and — as an extension — a
// valid time window at the request instant.
func (p *Policy) Matches(r *event.DetailRequest) bool {
	if p.Class != r.Class {
		return false
	}
	if !p.Actor.Contains(r.Requester) {
		return false
	}
	if !p.AllowsPurpose(r.Purpose) {
		return false
	}
	at := r.At
	if at.IsZero() {
		at = time.Now()
	}
	return p.ValidAt(at)
}

// Clone returns a deep copy of the policy.
func (p *Policy) Clone() *Policy {
	c := *p
	c.Purposes = append([]event.Purpose(nil), p.Purposes...)
	c.Fields = append([]event.FieldName(nil), p.Fields...)
	return &c
}

// sortedFields returns F sorted by name, for deterministic serialization.
func (p *Policy) sortedFields() []event.FieldName {
	out := append([]event.FieldName(nil), p.Fields...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// sortedPurposes returns S sorted, for deterministic serialization.
func (p *Policy) sortedPurposes() []event.Purpose {
	out := append([]event.Purpose(nil), p.Purposes...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
