package policy

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/event"
	"repro/internal/schema"
)

// Builder is the programmatic form of the Privacy Requirements
// Elicitation Tool (paper §6, Figs 6-7): a step-by-step construction of
// privacy policy rules that requires no knowledge of the enforcement
// notation. The user (a privacy expert at the data source, not a
// technician) picks, for one event class:
//
//  1. the fields of the event details to release,
//  2. one or more consumers (organizational units),
//  3. the admissible purposes,
//  4. a label, an optional description and an optional validity window,
//
// and Build emits one Definition-2 policy per selected consumer, each
// validated against the event schema so a rule can never name a field the
// class does not have.
type Builder struct {
	producer  event.ProducerID
	schema    *schema.Schema
	fields    []event.FieldName
	consumers []event.Actor
	purposes  []event.Purpose
	name      string
	desc      string
	notBefore time.Time
	notAfter  time.Time
	err       error
}

// NewBuilder starts the elicitation of rules for one event class owned by
// producer. The schema drives field validation and is what the tool's UI
// renders as the list of selectable fields.
func NewBuilder(producer event.ProducerID, s *schema.Schema) *Builder {
	b := &Builder{producer: producer, schema: s}
	if producer == "" {
		b.err = errors.New("policy: builder: empty producer")
	}
	if s == nil {
		b.err = errors.New("policy: builder: nil schema")
	}
	return b
}

func (b *Builder) fail(err error) *Builder {
	if b.err == nil {
		b.err = err
	}
	return b
}

// SelectFields adds fields to release ("Select one or more items from the
// list of fields in the event details type").
func (b *Builder) SelectFields(fields ...event.FieldName) *Builder {
	if b.err != nil {
		return b
	}
	if err := b.schema.CheckFields(fields); err != nil {
		return b.fail(err)
	}
	for _, f := range fields {
		for _, have := range b.fields {
			if have == f {
				return b.fail(fmt.Errorf("policy: builder: field %s selected twice", f))
			}
		}
		b.fields = append(b.fields, f)
	}
	return b
}

// SelectAllFieldsExcept releases every schema field except the listed
// ones — the idiom for "obfuscate the AIDS test result, release the rest".
func (b *Builder) SelectAllFieldsExcept(excluded ...event.FieldName) *Builder {
	if b.err != nil {
		return b
	}
	if err := b.schema.CheckFields(excluded); err != nil {
		return b.fail(err)
	}
	skip := make(map[event.FieldName]bool, len(excluded))
	for _, f := range excluded {
		skip[f] = true
	}
	var fields []event.FieldName
	for _, f := range b.schema.FieldNames() {
		if !skip[f] {
			fields = append(fields, f)
		}
	}
	return b.SelectFields(fields...)
}

// SelectConsumers adds the consumer organizational units the rule applies
// to; one policy is emitted per consumer.
func (b *Builder) SelectConsumers(consumers ...event.Actor) *Builder {
	if b.err != nil {
		return b
	}
	for _, c := range consumers {
		if err := c.Validate(); err != nil {
			return b.fail(err)
		}
		b.consumers = append(b.consumers, c)
	}
	return b
}

// SelectPurposes adds the admissible purposes of use.
func (b *Builder) SelectPurposes(purposes ...event.Purpose) *Builder {
	if b.err != nil {
		return b
	}
	for _, s := range purposes {
		if err := s.Validate(); err != nil {
			return b.fail(err)
		}
		b.purposes = append(b.purposes, s)
	}
	return b
}

// Label names the rule ("Privacy rules are saved with a name and a
// description").
func (b *Builder) Label(name, description string) *Builder {
	if b.err != nil {
		return b
	}
	b.name, b.desc = name, description
	return b
}

// ValidUntil bounds the rule in time (Fig. 7 "Valid until"), typically to
// the duration of a private company's care contract.
func (b *Builder) ValidUntil(t time.Time) *Builder {
	if b.err != nil {
		return b
	}
	b.notAfter = t
	return b
}

// ValidFrom sets the start of the validity window.
func (b *Builder) ValidFrom(t time.Time) *Builder {
	if b.err != nil {
		return b
	}
	b.notBefore = t
	return b
}

// Build validates the elicited selections and returns one policy per
// selected consumer.
func (b *Builder) Build() ([]*Policy, error) {
	if b.err != nil {
		return nil, b.err
	}
	if len(b.consumers) == 0 {
		return nil, errors.New("policy: builder: no consumers selected")
	}
	name := b.name
	if name == "" {
		name = fmt.Sprintf("rule for %s", b.schema.Class())
	}
	out := make([]*Policy, 0, len(b.consumers))
	for _, c := range b.consumers {
		p := &Policy{
			Name:        name,
			Description: b.desc,
			Producer:    b.producer,
			Actor:       c,
			Class:       b.schema.Class(),
			Purposes:    append([]event.Purpose(nil), b.purposes...),
			Fields:      append([]event.FieldName(nil), b.fields...),
			NotBefore:   b.notBefore,
			NotAfter:    b.notAfter,
		}
		if err := p.Validate(); err != nil {
			return nil, err
		}
		out = append(out, p)
	}
	return out, nil
}
