package policy

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/event"
)

// ErrNotFound reports a missing policy.
var ErrNotFound = errors.New("policy: not found")

// Repository is the certified store of privacy policies held by the data
// controller (§5: "The data controller acts as guarantor and as
// certificated repository of the privacy policies"). It is safe for
// concurrent use.
type Repository struct {
	mu      sync.RWMutex
	byID    map[ID]*Policy
	byClass map[event.ClassID][]*Policy
	nextID  int
}

// NewRepository creates an empty repository.
func NewRepository() *Repository {
	return &Repository{
		byID:    make(map[ID]*Policy),
		byClass: make(map[event.ClassID][]*Policy),
	}
}

// Add validates and stores a policy. If the policy has no ID one is
// assigned. The stored copy is returned.
func (r *Repository) Add(p *Policy) (*Policy, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	c := p.Clone()
	r.mu.Lock()
	defer r.mu.Unlock()
	if c.ID == "" {
		// Skip identifiers already in use (e.g. policies reloaded from a
		// persistent store carry their original ids).
		for {
			r.nextID++
			c.ID = ID(fmt.Sprintf("pol-%06d", r.nextID))
			if _, used := r.byID[c.ID]; !used {
				break
			}
		}
	}
	if _, dup := r.byID[c.ID]; dup {
		return nil, fmt.Errorf("policy: duplicate id %q", c.ID)
	}
	if c.CreatedAt.IsZero() {
		c.CreatedAt = time.Now()
	}
	r.byID[c.ID] = c
	r.byClass[c.Class] = append(r.byClass[c.Class], c)
	return c.Clone(), nil
}

// Get returns the policy with the given ID.
func (r *Repository) Get(id ID) (*Policy, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	p, ok := r.byID[id]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, id)
	}
	return p.Clone(), nil
}

// Remove deletes the policy with the given ID (revocation).
func (r *Repository) Remove(id ID) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	p, ok := r.byID[id]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNotFound, id)
	}
	delete(r.byID, id)
	list := r.byClass[p.Class]
	for i, q := range list {
		if q.ID == id {
			r.byClass[p.Class] = append(list[:i], list[i+1:]...)
			break
		}
	}
	return nil
}

// Len returns the number of stored policies.
func (r *Repository) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.byID)
}

// Match implements the policy matching phase of §5: it finds the policy
// that matches the request per Definition 3. When several policies match
// (e.g. one granted to the organization and one to the department), the
// most specific actor wins; ties break toward the most recently created
// policy. It returns ErrNotFound when no policy matches — the caller must
// then deny (deny-by-default).
func (r *Repository) Match(req *event.DetailRequest) (*Policy, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	var best *Policy
	for _, p := range r.byClass[req.Class] {
		if !p.Matches(req) {
			continue
		}
		if best == nil || moreSpecific(p, best) {
			best = p
		}
	}
	if best == nil {
		return nil, ErrNotFound
	}
	return best.Clone(), nil
}

// MatchID returns the identifier of the policy Match would select,
// without copying it. The enforcer's hot path needs only the identifier
// (it hands the decision to the PDP by id), so this variant skips the
// deep clone Match pays on every call.
func (r *Repository) MatchID(req *event.DetailRequest) (ID, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	var best *Policy
	for _, p := range r.byClass[req.Class] {
		if !p.Matches(req) {
			continue
		}
		if best == nil || moreSpecific(p, best) {
			best = p
		}
	}
	if best == nil {
		return "", ErrNotFound
	}
	return best.ID, nil
}

// MatchAll returns every policy matching the request, most specific
// first. Diagnostics and the E7 experiment use it.
func (r *Repository) MatchAll(req *event.DetailRequest) []*Policy {
	r.mu.RLock()
	defer r.mu.RUnlock()
	var out []*Policy
	for _, p := range r.byClass[req.Class] {
		if p.Matches(req) {
			out = append(out, p.Clone())
		}
	}
	sort.Slice(out, func(i, j int) bool { return moreSpecific(out[i], out[j]) })
	return out
}

// OrderForEnforcement returns a copy of the policies sorted by the
// resolution order Match uses: most specific actor first, then newest,
// then lexicographic id. Exporters use it so standalone XACML evaluation
// (first-applicable over the ordered set) agrees with the platform.
func OrderForEnforcement(ps []*Policy) []*Policy {
	out := append([]*Policy(nil), ps...)
	sort.Slice(out, func(i, j int) bool { return moreSpecific(out[i], out[j]) })
	return out
}

// moreSpecific orders policies for Match: deeper actor paths first, then
// newer policies, then lexicographic ID for total determinism.
func moreSpecific(a, b *Policy) bool {
	da, db := strings.Count(string(a.Actor), "/"), strings.Count(string(b.Actor), "/")
	if da != db {
		return da > db
	}
	if !a.CreatedAt.Equal(b.CreatedAt) {
		return a.CreatedAt.After(b.CreatedAt)
	}
	return a.ID < b.ID
}

// AllowsSubscription reports whether some policy authorizes actor to
// receive notifications of class at time now. Per §5.2, "in order to
// subscribe to a class of notification events the data consumer should be
// authorized by the data producer[:] there should be a privacy policy
// regulating the access to the corresponding event details for that
// particular data consumer"; with deny-by-default, no policy means the
// subscription request is rejected. Purpose is not part of subscription
// (notifications carry no sensitive payload), so any purpose qualifies.
func (r *Repository) AllowsSubscription(actor event.Actor, class event.ClassID, now time.Time) bool {
	r.mu.RLock()
	defer r.mu.RUnlock()
	for _, p := range r.byClass[class] {
		if p.Actor.Contains(actor) && p.ValidAt(now) {
			return true
		}
	}
	return false
}

// ByProducer returns all policies defined by a producer, sorted by ID.
func (r *Repository) ByProducer(prod event.ProducerID) []*Policy {
	r.mu.RLock()
	defer r.mu.RUnlock()
	var out []*Policy
	for _, p := range r.byID {
		if p.Producer == prod {
			out = append(out, p.Clone())
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// ByClass returns all policies protecting a class, sorted by ID.
func (r *Repository) ByClass(class event.ClassID) []*Policy {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]*Policy, 0, len(r.byClass[class]))
	for _, p := range r.byClass[class] {
		out = append(out, p.Clone())
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// All returns every policy, sorted by ID.
func (r *Repository) All() []*Policy {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]*Policy, 0, len(r.byID))
	for _, p := range r.byID {
		out = append(out, p.Clone())
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}
