package policy

import (
	"encoding/xml"
	"fmt"
	"time"

	"repro/internal/event"
)

// Compact XML persistence form of policies, used by the controller to
// snapshot/restore the repository. The paper-faithful XACML rendering
// (Fig. 8) lives in internal/xacml and is produced by the compiler.

type policyXML struct {
	XMLName     xml.Name          `xml:"privacyPolicy"`
	ID          ID                `xml:"id,attr"`
	Name        string            `xml:"name,omitempty"`
	Description string            `xml:"description,omitempty"`
	Producer    event.ProducerID  `xml:"producer"`
	Actor       event.Actor       `xml:"actor"`
	Class       event.ClassID     `xml:"class"`
	Purposes    []event.Purpose   `xml:"purposes>purpose"`
	Fields      []event.FieldName `xml:"fields>field"`
	NotBefore   string            `xml:"notBefore,omitempty"`
	NotAfter    string            `xml:"notAfter,omitempty"`
	CreatedAt   string            `xml:"createdAt,omitempty"`
}

func fmtTime(t time.Time) string {
	if t.IsZero() {
		return ""
	}
	return t.UTC().Format(time.RFC3339Nano)
}

func parseTime(s string) (time.Time, error) {
	if s == "" {
		return time.Time{}, nil
	}
	return time.Parse(time.RFC3339Nano, s)
}

// Encode serializes a policy to its compact XML form with deterministic
// purpose and field ordering.
func Encode(p *Policy) ([]byte, error) {
	w := policyXML{
		ID:          p.ID,
		Name:        p.Name,
		Description: p.Description,
		Producer:    p.Producer,
		Actor:       p.Actor,
		Class:       p.Class,
		Purposes:    p.sortedPurposes(),
		Fields:      p.sortedFields(),
		NotBefore:   fmtTime(p.NotBefore),
		NotAfter:    fmtTime(p.NotAfter),
		CreatedAt:   fmtTime(p.CreatedAt),
	}
	return xml.MarshalIndent(w, "", "  ")
}

// Decode parses a policy from its compact XML form and re-validates it.
func Decode(data []byte) (*Policy, error) {
	var w policyXML
	if err := xml.Unmarshal(data, &w); err != nil {
		return nil, fmt.Errorf("policy: decode: %w", err)
	}
	nb, err := parseTime(w.NotBefore)
	if err != nil {
		return nil, fmt.Errorf("policy: decode notBefore: %w", err)
	}
	na, err := parseTime(w.NotAfter)
	if err != nil {
		return nil, fmt.Errorf("policy: decode notAfter: %w", err)
	}
	ca, err := parseTime(w.CreatedAt)
	if err != nil {
		return nil, fmt.Errorf("policy: decode createdAt: %w", err)
	}
	p := &Policy{
		ID:          w.ID,
		Name:        w.Name,
		Description: w.Description,
		Producer:    w.Producer,
		Actor:       w.Actor,
		Class:       w.Class,
		Purposes:    w.Purposes,
		Fields:      w.Fields,
		NotBefore:   nb,
		NotAfter:    na,
		CreatedAt:   ca,
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}
