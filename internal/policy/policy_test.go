package policy

import (
	"testing"
	"time"

	"repro/internal/event"
)

func validPolicy() *Policy {
	return &Policy{
		Name:     "family doctor home care access",
		Producer: "municipality-trento",
		Actor:    "family-doctor",
		Class:    "social.home-care-service",
		Purposes: []event.Purpose{event.PurposeHealthcareTreatment},
		Fields:   []event.FieldName{"patient-id", "name", "surname"},
	}
}

func request() *event.DetailRequest {
	return &event.DetailRequest{
		Requester: "family-doctor",
		Class:     "social.home-care-service",
		EventID:   "G-1",
		Purpose:   event.PurposeHealthcareTreatment,
	}
}

func TestPolicyValidate(t *testing.T) {
	if err := validPolicy().Validate(); err != nil {
		t.Fatalf("valid policy rejected: %v", err)
	}
	cases := []struct {
		name   string
		mutate func(*Policy)
	}{
		{"missing producer", func(p *Policy) { p.Producer = "" }},
		{"bad actor", func(p *Policy) { p.Actor = "a//b" }},
		{"bad class", func(p *Policy) { p.Class = "Bad Class" }},
		{"no purposes", func(p *Policy) { p.Purposes = nil }},
		{"empty purpose", func(p *Policy) { p.Purposes = []event.Purpose{""} }},
		{"duplicate purpose", func(p *Policy) {
			p.Purposes = []event.Purpose{"x", "x"}
		}},
		{"no fields", func(p *Policy) { p.Fields = nil }},
		{"empty field", func(p *Policy) { p.Fields = []event.FieldName{""} }},
		{"duplicate field", func(p *Policy) { p.Fields = []event.FieldName{"a", "a"} }},
		{"inverted window", func(p *Policy) {
			p.NotBefore = time.Date(2011, 1, 1, 0, 0, 0, 0, time.UTC)
			p.NotAfter = time.Date(2010, 1, 1, 0, 0, 0, 0, time.UTC)
		}},
	}
	for _, tc := range cases {
		p := validPolicy()
		tc.mutate(p)
		if err := p.Validate(); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}

func TestAllowsPurposeAndField(t *testing.T) {
	p := validPolicy()
	if !p.AllowsPurpose(event.PurposeHealthcareTreatment) {
		t.Error("allowed purpose rejected")
	}
	if p.AllowsPurpose(event.PurposeStatisticalAnalysis) {
		t.Error("disallowed purpose accepted")
	}
	if !p.AllowsField("name") || p.AllowsField("care-notes") {
		t.Error("AllowsField misreports")
	}
}

func TestValidAt(t *testing.T) {
	mk := func(nb, na time.Time) *Policy {
		p := validPolicy()
		p.NotBefore, p.NotAfter = nb, na
		return p
	}
	t1 := time.Date(2010, 6, 1, 0, 0, 0, 0, time.UTC)
	before := t1.AddDate(0, -1, 0)
	after := t1.AddDate(0, 1, 0)
	if !mk(time.Time{}, time.Time{}).ValidAt(t1) {
		t.Error("unbounded policy invalid")
	}
	if !mk(before, after).ValidAt(t1) {
		t.Error("in-window instant invalid")
	}
	if mk(after, time.Time{}).ValidAt(t1) {
		t.Error("instant before NotBefore valid")
	}
	if mk(time.Time{}, before).ValidAt(t1) {
		t.Error("instant after NotAfter valid")
	}
	// Boundary instants are inclusive.
	if !mk(t1, t1).ValidAt(t1) {
		t.Error("boundary instant invalid")
	}
}

func TestMatchesDefinition3(t *testing.T) {
	p := validPolicy()
	if !p.Matches(request()) {
		t.Fatal("exact request does not match")
	}
	r := request()
	r.Class = "hospital.blood-test"
	if p.Matches(r) {
		t.Error("different class matched")
	}
	r = request()
	r.Requester = "social-welfare"
	if p.Matches(r) {
		t.Error("different actor matched")
	}
	r = request()
	r.Purpose = event.PurposeAdministration
	if p.Matches(r) {
		t.Error("disallowed purpose matched")
	}
}

func TestMatchesActorHierarchy(t *testing.T) {
	p := validPolicy()
	p.Actor = "hospital-s-maria"
	r := request()
	r.Requester = "hospital-s-maria/laboratory"
	if !p.Matches(r) {
		t.Error("org-level grant does not cover department")
	}
	p2 := validPolicy()
	p2.Actor = "hospital-s-maria/laboratory"
	r2 := request()
	r2.Requester = "hospital-s-maria"
	if p2.Matches(r2) {
		t.Error("department-level grant covers the whole organization")
	}
}

func TestMatchesValidityWindow(t *testing.T) {
	p := validPolicy()
	p.NotAfter = time.Date(2010, 12, 31, 23, 59, 59, 0, time.UTC)
	r := request()
	r.At = time.Date(2010, 6, 1, 0, 0, 0, 0, time.UTC)
	if !p.Matches(r) {
		t.Error("in-window request rejected")
	}
	r.At = time.Date(2011, 6, 1, 0, 0, 0, 0, time.UTC)
	if p.Matches(r) {
		t.Error("expired policy matched")
	}
	// Zero At means "now": an expired policy must not match.
	r.At = time.Time{}
	if p.Matches(r) {
		t.Error("expired policy matched at implicit now (2026)")
	}
}

func TestClone(t *testing.T) {
	p := validPolicy()
	c := p.Clone()
	c.Fields[0] = "mutated"
	c.Purposes[0] = "mutated"
	if p.Fields[0] != "patient-id" || p.Purposes[0] != event.PurposeHealthcareTreatment {
		t.Error("Clone shares slices with original")
	}
}
