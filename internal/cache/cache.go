// Package cache provides the small concurrency-safe building blocks of
// the read-path acceleration layer: a bounded LRU map (the decoded-
// notification and pseudonym caches of the events index, the decoded-
// detail cache of the cooperation gateway) and a singleflight group that
// coalesces concurrent identical calls (the gateway fetch of the policy
// enforcer and the remote gateway client).
//
// Nothing in this package knows what it stores; every privacy argument
// (what may be cached where, and when an entry must die) lives with the
// caller. The package only guarantees bounded size, LRU eviction and
// race-free access.
package cache

import (
	"container/list"
	"sync"
	"sync/atomic"
)

// LRU is a bounded map with least-recently-used eviction. Safe for
// concurrent use. The zero value is not usable; construct with NewLRU.
type LRU[K comparable, V any] struct {
	mu    sync.Mutex
	cap   int
	ll    *list.List // front = most recently used
	items map[K]*list.Element

	hits, misses atomic.Uint64
}

type lruEntry[K comparable, V any] struct {
	key K
	val V
}

// NewLRU creates an LRU bounded to capacity entries (minimum 1).
func NewLRU[K comparable, V any](capacity int) *LRU[K, V] {
	if capacity < 1 {
		capacity = 1
	}
	return &LRU[K, V]{
		cap:   capacity,
		ll:    list.New(),
		items: make(map[K]*list.Element, capacity),
	}
}

// Get returns the value under k, marking it most recently used.
func (c *LRU[K, V]) Get(k K) (V, bool) {
	c.mu.Lock()
	if el, ok := c.items[k]; ok {
		c.ll.MoveToFront(el)
		v := el.Value.(*lruEntry[K, V]).val
		c.mu.Unlock()
		c.hits.Add(1)
		return v, true
	}
	c.mu.Unlock()
	c.misses.Add(1)
	var zero V
	return zero, false
}

// Put inserts or replaces the value under k, evicting the least recently
// used entry when the cache is full.
func (c *LRU[K, V]) Put(k K, v V) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[k]; ok {
		el.Value.(*lruEntry[K, V]).val = v
		c.ll.MoveToFront(el)
		return
	}
	c.items[k] = c.ll.PushFront(&lruEntry[K, V]{key: k, val: v})
	if c.ll.Len() > c.cap {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*lruEntry[K, V]).key)
	}
}

// Delete removes the entry under k, if present.
func (c *LRU[K, V]) Delete(k K) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[k]; ok {
		c.ll.Remove(el)
		delete(c.items, k)
	}
}

// Purge empties the cache (hit/miss counters keep accumulating).
func (c *LRU[K, V]) Purge() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.ll.Init()
	clear(c.items)
}

// Len returns the current number of entries.
func (c *LRU[K, V]) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Stats returns the cumulative hit and miss counts of Get.
func (c *LRU[K, V]) Stats() (hits, misses uint64) {
	return c.hits.Load(), c.misses.Load()
}
