package cache

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestLRUBasic(t *testing.T) {
	c := NewLRU[string, int](2)
	if _, ok := c.Get("a"); ok {
		t.Fatal("empty cache returned a value")
	}
	c.Put("a", 1)
	c.Put("b", 2)
	if v, ok := c.Get("a"); !ok || v != 1 {
		t.Fatalf("Get(a) = %d, %v; want 1, true", v, ok)
	}
	// "b" is now least recently used; inserting "c" must evict it.
	c.Put("c", 3)
	if _, ok := c.Get("b"); ok {
		t.Fatal("LRU entry b survived eviction")
	}
	if v, ok := c.Get("a"); !ok || v != 1 {
		t.Fatalf("recently used entry a evicted: %d, %v", v, ok)
	}
	if v, ok := c.Get("c"); !ok || v != 3 {
		t.Fatalf("Get(c) = %d, %v; want 3, true", v, ok)
	}
	if c.Len() != 2 {
		t.Fatalf("Len = %d, want 2", c.Len())
	}
}

func TestLRUUpdateExisting(t *testing.T) {
	c := NewLRU[string, int](2)
	c.Put("a", 1)
	c.Put("a", 10)
	if c.Len() != 1 {
		t.Fatalf("Len = %d after double Put, want 1", c.Len())
	}
	if v, _ := c.Get("a"); v != 10 {
		t.Fatalf("Get(a) = %d, want 10", v)
	}
}

func TestLRUDeletePurge(t *testing.T) {
	c := NewLRU[string, int](4)
	c.Put("a", 1)
	c.Put("b", 2)
	c.Delete("a")
	c.Delete("missing") // no-op
	if _, ok := c.Get("a"); ok {
		t.Fatal("deleted entry still present")
	}
	c.Purge()
	if c.Len() != 0 {
		t.Fatalf("Len = %d after Purge, want 0", c.Len())
	}
	if _, ok := c.Get("b"); ok {
		t.Fatal("purged entry still present")
	}
	// Cache must stay usable after Purge.
	c.Put("c", 3)
	if v, ok := c.Get("c"); !ok || v != 3 {
		t.Fatalf("Get(c) after Purge = %d, %v; want 3, true", v, ok)
	}
}

func TestLRUStats(t *testing.T) {
	c := NewLRU[string, int](2)
	c.Put("a", 1)
	c.Get("a")
	c.Get("a")
	c.Get("nope")
	hits, misses := c.Stats()
	if hits != 2 || misses != 1 {
		t.Fatalf("Stats = %d hits, %d misses; want 2, 1", hits, misses)
	}
}

func TestLRUMinimumCapacity(t *testing.T) {
	c := NewLRU[int, int](0)
	c.Put(1, 1)
	c.Put(2, 2)
	if c.Len() != 1 {
		t.Fatalf("Len = %d with clamped capacity, want 1", c.Len())
	}
}

func TestLRUConcurrent(t *testing.T) {
	c := NewLRU[int, int](64)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				k := (seed*31 + i) % 128
				c.Put(k, k)
				c.Get(k)
				if i%97 == 0 {
					c.Delete(k)
				}
			}
		}(g)
	}
	wg.Wait()
	if n := c.Len(); n > 64 {
		t.Fatalf("Len = %d exceeds capacity 64", n)
	}
}

func TestSingleflightCoalesces(t *testing.T) {
	var g Group[string, int]
	var calls atomic.Int32
	release := make(chan struct{})
	started := make(chan struct{})

	const n = 8
	results := make([]int, n)
	shareds := make([]bool, n)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		v, shared, err := g.Do("k", func() (int, error) {
			calls.Add(1)
			close(started)
			<-release
			return 42, nil
		})
		if err != nil {
			t.Errorf("leader err: %v", err)
		}
		results[0], shareds[0] = v, shared
	}()
	<-started
	for i := 1; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, shared, err := g.Do("k", func() (int, error) {
				calls.Add(1)
				return -1, nil
			})
			if err != nil {
				t.Errorf("follower err: %v", err)
			}
			results[i], shareds[i] = v, shared
		}(i)
	}
	// Let the followers reach the wait before releasing the leader.
	for deadline := time.Now().Add(2 * time.Second); g.InFlight() == 0 && time.Now().Before(deadline); {
		time.Sleep(time.Millisecond)
	}
	time.Sleep(10 * time.Millisecond)
	close(release)
	wg.Wait()

	if got := calls.Load(); got != 1 {
		t.Fatalf("fn ran %d times, want 1", got)
	}
	sharedCount := 0
	for i, v := range results {
		if v != 42 {
			t.Fatalf("results[%d] = %d, want 42", i, v)
		}
		if shareds[i] {
			sharedCount++
		}
	}
	if sharedCount != n-1 {
		t.Fatalf("shared count = %d, want %d", sharedCount, n-1)
	}
}

func TestSingleflightDistinctKeys(t *testing.T) {
	var g Group[int, int]
	var calls atomic.Int32
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, _, err := g.Do(i, func() (int, error) {
				calls.Add(1)
				return i * 10, nil
			})
			if err != nil || v != i*10 {
				t.Errorf("Do(%d) = %d, %v", i, v, err)
			}
		}(i)
	}
	wg.Wait()
	if got := calls.Load(); got != 4 {
		t.Fatalf("fn ran %d times for 4 distinct keys, want 4", got)
	}
}

func TestSingleflightError(t *testing.T) {
	var g Group[string, int]
	sentinel := errors.New("boom")
	_, _, err := g.Do("k", func() (int, error) { return 0, sentinel })
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want %v", err, sentinel)
	}
	// The failed flight must not be cached: a retry runs fn again.
	v, shared, err := g.Do("k", func() (int, error) { return 7, nil })
	if err != nil || v != 7 || shared {
		t.Fatalf("retry = %d, shared=%v, err=%v; want 7, false, nil", v, shared, err)
	}
}

func TestSingleflightPanicDoesNotHangWaiters(t *testing.T) {
	var g Group[string, int]
	started := make(chan struct{})
	release := make(chan struct{})

	waiterErr := make(chan error, 1)
	go func() {
		defer func() { recover() }()
		g.Do("k", func() (int, error) {
			close(started)
			<-release
			panic("leader died")
		})
	}()
	<-started
	go func() {
		_, _, err := g.Do("k", func() (int, error) { return 1, nil })
		waiterErr <- err
	}()
	// Give the waiter time to attach to the in-flight call, then kill
	// the leader.
	time.Sleep(10 * time.Millisecond)
	close(release)
	select {
	case err := <-waiterErr:
		// The waiter either joined the doomed flight (abandoned) or
		// raced past the delete and ran its own fn (nil) — both are
		// fine; hanging is not.
		if err != nil && !errors.Is(err, ErrFlightAbandoned) {
			t.Fatalf("waiter err = %v, want nil or ErrFlightAbandoned", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("waiter hung after leader panic")
	}
}
