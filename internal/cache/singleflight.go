package cache

import (
	"errors"
	"sync"
)

// ErrFlightAbandoned is reported to waiters when the leading call
// panicked before producing a result.
var ErrFlightAbandoned = errors.New("cache: in-flight call abandoned")

// Group coalesces concurrent calls that share a key: the first caller
// (the leader) runs fn; callers arriving while it is in flight wait and
// receive the same result. Results are never retained past the in-flight
// window — once the leader returns, the next call runs fn again. That
// makes the group safe for values that must not be cached (the
// controller may coalesce identical gateway detail fetches, but storing
// a detail would duplicate sensitive data outside the producer's
// control; see the E13 ablation).
//
// The zero value is ready to use. Safe for concurrent use.
type Group[K comparable, V any] struct {
	mu    sync.Mutex
	calls map[K]*flight[V]
}

type flight[V any] struct {
	done chan struct{}
	val  V
	err  error
}

// Do runs fn under key, coalescing concurrent duplicates. shared reports
// whether the result was produced by another caller's fn — callers that
// hand the value on must clone it when shared, so no two consumers ever
// alias one mutable result.
func (g *Group[K, V]) Do(key K, fn func() (V, error)) (val V, shared bool, err error) {
	g.mu.Lock()
	if g.calls == nil {
		g.calls = make(map[K]*flight[V])
	}
	if f, ok := g.calls[key]; ok {
		g.mu.Unlock()
		<-f.done
		return f.val, true, f.err
	}
	f := &flight[V]{done: make(chan struct{}), err: ErrFlightAbandoned}
	g.calls[key] = f
	g.mu.Unlock()

	// Even if fn panics the flight is finalized (waiters see
	// ErrFlightAbandoned instead of hanging) and the panic propagates.
	defer func() {
		g.mu.Lock()
		delete(g.calls, key)
		g.mu.Unlock()
		close(f.done)
	}()
	f.val, f.err = fn()
	return f.val, false, f.err
}

// InFlight returns the number of keys currently executing.
func (g *Group[K, V]) InFlight() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return len(g.calls)
}
