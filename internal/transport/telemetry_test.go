package transport

import (
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/event"
	"repro/internal/schema"
	"repro/internal/telemetry"
)

func (r *rig) metrics(t *testing.T) string {
	t.Helper()
	resp, err := http.Get(r.ctrlServer.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status = %d", resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body)
}

func TestMetricsEndpointExposesFlowCounters(t *testing.T) {
	r := newRig(t)
	r.doctorPolicy(t)
	gid := r.produce(t, "src-1", "PRS-1")
	if _, err := r.client.RequestDetails(context.Background(), &event.DetailRequest{
		Requester: "family-doctor", Class: schema.ClassBloodTest,
		EventID: gid, Purpose: event.PurposeHealthcareTreatment,
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := r.client.RequestDetails(context.Background(), &event.DetailRequest{
		Requester: "family-doctor", Class: schema.ClassBloodTest,
		EventID: gid, Purpose: event.PurposeStatisticalAnalysis,
	}); err == nil {
		t.Fatal("statistical-analysis purpose should be denied")
	}

	out := r.metrics(t)
	for _, want := range []string{
		"css_publish_total 1",
		`css_detail_decisions_total{outcome="permit"} 1`,
		`css_detail_decisions_total{outcome="deny"} 1`,
		"# TYPE css_publish_seconds histogram",
		`css_publish_seconds_bucket{le="+Inf"} 1`,
		`css_detail_request_seconds_count{outcome="permit"} 1`,
		`css_http_requests_total{route="/ws/publish",method="POST",code="200"} 1`,
		"# TYPE css_http_request_seconds histogram",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

func TestHealthzEndpoint(t *testing.T) {
	r := newRig(t)
	resp, err := http.Get(r.ctrlServer.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/healthz status = %d, want 200", resp.StatusCode)
	}
	r.ctrl.Close()
	resp, err = http.Get(r.ctrlServer.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("/healthz after Close status = %d, want 503", resp.StatusCode)
	}
}

func TestFailedCallbackDeliveryIsCounted(t *testing.T) {
	r := newRig(t)
	r.doctorPolicy(t)
	broken := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusInternalServerError)
	}))
	defer broken.Close()
	if _, err := r.client.Subscribe(context.Background(), "family-doctor", schema.ClassBloodTest, broken.URL); err != nil {
		t.Fatal(err)
	}
	r.produce(t, "src-1", "PRS-1")
	if !r.ctrl.Flush(5 * time.Second) {
		t.Fatal("Flush timed out")
	}
	// The async callback POST may still be in flight after Flush returns;
	// poll the counter rather than racing it.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if strings.Contains(r.metrics(t), `css_deliveries_failed_total{reason="status"} 1`) {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("css_deliveries_failed_total never incremented:\n%s", r.metrics(t))
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestCallbackCarriesTraceHeaderAndAttr(t *testing.T) {
	r := newRig(t)
	r.doctorPolicy(t)
	var mu sync.Mutex
	var headerTrace string
	var got *event.Notification
	receiver := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		body, _ := io.ReadAll(req.Body)
		n, err := event.DecodeNotification(body)
		mu.Lock()
		headerTrace = req.Header.Get(telemetry.TraceHeader)
		if err == nil {
			got = n
		}
		mu.Unlock()
	}))
	defer receiver.Close()
	if _, err := r.client.Subscribe(context.Background(), "family-doctor", schema.ClassBloodTest, receiver.URL); err != nil {
		t.Fatal(err)
	}
	r.produce(t, "src-1", "PRS-1")

	deadline := time.Now().Add(5 * time.Second)
	for {
		mu.Lock()
		done := got != nil
		mu.Unlock()
		if done || time.Now().After(deadline) {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	mu.Lock()
	defer mu.Unlock()
	if got == nil {
		t.Fatal("callback never delivered")
	}
	if len(got.Trace) != 16 {
		t.Errorf("notification trace attr = %q, want 16 hex chars", got.Trace)
	}
	if headerTrace != got.Trace {
		t.Errorf("X-Trace-Id header = %q, notification trace = %q", headerTrace, got.Trace)
	}
}

func TestGatewayServerMetricsAndHealthz(t *testing.T) {
	r := newRig(t)
	resp, err := http.Get(r.gwServer.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("gateway /healthz status = %d", resp.StatusCode)
	}
	r.produce(t, "src-1", "PRS-1")
	resp, err = http.Get(r.gwServer.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), "css_gateway_http_requests_total") {
		t.Errorf("gateway /metrics missing http counters:\n%s", body)
	}
}
