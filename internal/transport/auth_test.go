package transport

import (
	"bytes"
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/consent"
	"repro/internal/core"
	"repro/internal/crypto"
	"repro/internal/event"
	"repro/internal/gateway"
	"repro/internal/identity"
	"repro/internal/index"
	"repro/internal/policy"
	"repro/internal/schema"
	"repro/internal/store"
)

// authRig is a rig whose controller server requires bearer tokens.
type authRig struct {
	*rig
	authority *identity.Authority
}

func newAuthRig(t *testing.T) *authRig {
	t.Helper()
	ctrl, err := core.New(core.Config{
		MasterKey:      bytes.Repeat([]byte{4}, crypto.KeySize),
		DefaultConsent: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ctrl.Close() })
	if err := ctrl.RegisterProducer("hospital", "Hospital"); err != nil {
		t.Fatal(err)
	}
	if err := ctrl.RegisterConsumer("family-doctor", "Doctors"); err != nil {
		t.Fatal(err)
	}
	if err := ctrl.DeclareClass("hospital", schema.BloodTest()); err != nil {
		t.Fatal(err)
	}
	gw, err := gateway.New("hospital", store.OpenMemory(), ctrl.Catalog())
	if err != nil {
		t.Fatal(err)
	}
	if err := ctrl.AttachGateway("hospital", gw); err != nil {
		t.Fatal(err)
	}
	authority, err := identity.NewRandomAuthority()
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(NewServer(ctrl).RequireAuth(authority))
	t.Cleanup(srv.Close)
	return &authRig{
		rig: &rig{
			ctrl: ctrl, gw: gw, ctrlServer: srv,
			client: NewClient(srv.URL, nil),
		},
		authority: authority,
	}
}

func (r *authRig) token(t *testing.T, actor event.Actor) string {
	t.Helper()
	tok, _, err := r.authority.Issue(actor, nil, time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	return tok
}

func (r *authRig) seed(t *testing.T) event.GlobalID {
	t.Helper()
	d := event.NewDetail(schema.ClassBloodTest, "src-1", "hospital").
		Set("patient-id", "PRS-1").
		Set("exam-date", "2010-06-01").
		Set("hemoglobin", "12.0")
	if err := r.gw.Persist(d); err != nil {
		t.Fatal(err)
	}
	hospital := r.client.WithToken(r.token(t, "hospital"))
	if _, err := hospital.DefinePolicy(context.Background(), &policy.Policy{
		Producer: "hospital", Actor: "family-doctor", Class: schema.ClassBloodTest,
		Purposes: []event.Purpose{event.PurposeHealthcareTreatment},
		Fields:   []event.FieldName{"patient-id", "hemoglobin"},
	}); err != nil {
		t.Fatal(err)
	}
	gid, err := hospital.Publish(context.Background(), &event.Notification{
		SourceID: "src-1", Class: schema.ClassBloodTest, PersonID: "PRS-1",
		OccurredAt: time.Date(2010, 6, 1, 9, 0, 0, 0, time.UTC), Producer: "hospital",
	})
	if err != nil {
		t.Fatal(err)
	}
	return gid
}

func TestAuthRejectsAnonymous(t *testing.T) {
	r := newAuthRig(t)
	// Every endpoint refuses a token-less client.
	if _, err := r.client.Catalog(context.Background()); err == nil {
		t.Error("anonymous catalog accepted")
	}
	if _, err := r.client.Publish(context.Background(), &event.Notification{
		SourceID: "s", Class: schema.ClassBloodTest, PersonID: "P",
		OccurredAt: time.Now(), Producer: "hospital",
	}); !errors.Is(err, ErrUnauthorized) {
		t.Errorf("anonymous publish = %v", err)
	}
	if _, err := r.client.RequestDetails(context.Background(), &event.DetailRequest{
		Requester: "family-doctor", Class: schema.ClassBloodTest,
		EventID: "evt-x", Purpose: "care",
	}); !errors.Is(err, ErrUnauthorized) {
		t.Errorf("anonymous details = %v", err)
	}
	if _, err := r.client.InquireIndex(context.Background(), "family-doctor", index.Inquiry{}); !errors.Is(err, ErrUnauthorized) {
		t.Errorf("anonymous inquire = %v", err)
	}
	if _, err := r.client.Subscribe(context.Background(), "family-doctor", schema.ClassBloodTest, "http://127.0.0.1:1/cb"); !errors.Is(err, ErrUnauthorized) {
		t.Errorf("anonymous subscribe = %v", err)
	}
	if _, err := r.client.RecordConsent(context.Background(), consent.Directive{PersonID: "P", Allow: false}); !errors.Is(err, ErrUnauthorized) {
		t.Errorf("anonymous consent = %v", err)
	}
}

func TestAuthHappyPath(t *testing.T) {
	r := newAuthRig(t)
	gid := r.seed(t)
	doctor := r.client.WithToken(r.token(t, "family-doctor"))
	d, err := doctor.RequestDetails(context.Background(), &event.DetailRequest{
		Requester: "family-doctor", Class: schema.ClassBloodTest,
		EventID: gid, Purpose: event.PurposeHealthcareTreatment,
	})
	if err != nil {
		t.Fatalf("authorized details: %v", err)
	}
	if v, _ := d.Get("hemoglobin"); v != "12.0" {
		t.Errorf("hemoglobin = %q", v)
	}
	if _, err := doctor.Catalog(context.Background()); err != nil {
		t.Errorf("authorized catalog: %v", err)
	}
	if _, err := doctor.InquireIndex(context.Background(), "family-doctor", index.Inquiry{PersonID: "PRS-1"}); err != nil {
		t.Errorf("authorized inquire: %v", err)
	}
}

func TestAuthRejectsImpersonation(t *testing.T) {
	r := newAuthRig(t)
	gid := r.seed(t)
	// A token for another org cannot act as the doctor.
	intruder := r.client.WithToken(r.token(t, "insurance-co"))
	if _, err := intruder.RequestDetails(context.Background(), &event.DetailRequest{
		Requester: "family-doctor", Class: schema.ClassBloodTest,
		EventID: gid, Purpose: event.PurposeHealthcareTreatment,
	}); !errors.Is(err, ErrUnauthorized) {
		t.Errorf("impersonated details = %v", err)
	}
	// A consumer token cannot publish as the hospital.
	doctor := r.client.WithToken(r.token(t, "family-doctor"))
	if _, err := doctor.Publish(context.Background(), &event.Notification{
		SourceID: "s2", Class: schema.ClassBloodTest, PersonID: "P",
		OccurredAt: time.Now(), Producer: "hospital",
	}); !errors.Is(err, ErrUnauthorized) {
		t.Errorf("impersonated publish = %v", err)
	}
	// Nor define policies for the hospital's classes.
	if _, err := doctor.DefinePolicy(context.Background(), &policy.Policy{
		Producer: "hospital", Actor: "family-doctor", Class: schema.ClassBloodTest,
		Purposes: []event.Purpose{"care"}, Fields: []event.FieldName{"patient-id"},
	}); !errors.Is(err, ErrUnauthorized) {
		t.Errorf("impersonated policy = %v", err)
	}
}

func TestAuthOrgTokenCoversDepartment(t *testing.T) {
	r := newAuthRig(t)
	r.seed(t)
	orgToken := r.client.WithToken(r.token(t, "family-doctor"))
	// Department-level inquiry under an org token.
	if _, err := orgToken.InquireIndex(context.Background(), "family-doctor/north-district", index.Inquiry{}); err != nil {
		t.Errorf("org token over department = %v", err)
	}
	// But a department token cannot act as the organization.
	deptToken := r.client.WithToken(r.token(t, "family-doctor/north-district"))
	if _, err := deptToken.InquireIndex(context.Background(), "family-doctor", index.Inquiry{}); !errors.Is(err, ErrUnauthorized) {
		t.Errorf("department token over org = %v", err)
	}
}

func TestAuthRevocationAndExpiry(t *testing.T) {
	r := newAuthRig(t)
	r.seed(t)
	tok, claims, err := r.authority.Issue("family-doctor", nil, time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	doctor := r.client.WithToken(tok)
	if _, err := doctor.InquireIndex(context.Background(), "family-doctor", index.Inquiry{}); err != nil {
		t.Fatalf("pre-revocation: %v", err)
	}
	r.authority.Revoke(claims.TokenID)
	if _, err := doctor.InquireIndex(context.Background(), "family-doctor", index.Inquiry{}); !errors.Is(err, ErrUnauthorized) {
		t.Errorf("post-revocation = %v", err)
	}
	// Garbage token.
	if _, err := r.client.WithToken("junk.token").Catalog(context.Background()); err == nil {
		t.Error("garbage token accepted")
	}
}

func TestAuthPendingRequests(t *testing.T) {
	r := newAuthRig(t)
	// Anonymous polling is refused.
	if _, err := r.client.PendingRequests(context.Background(), "hospital"); !errors.Is(err, ErrUnauthorized) {
		t.Errorf("anonymous pending = %v", err)
	}
	// A consumer token cannot read the hospital's queue.
	doctor := r.client.WithToken(r.token(t, "family-doctor"))
	if _, err := doctor.PendingRequests(context.Background(), "hospital"); !errors.Is(err, ErrUnauthorized) {
		t.Errorf("impersonated pending = %v", err)
	}
	// The hospital's own token works.
	hospital := r.client.WithToken(r.token(t, "hospital"))
	if _, err := hospital.PendingRequests(context.Background(), "hospital"); err != nil {
		t.Errorf("own pending = %v", err)
	}
}

func TestGatewayAuth(t *testing.T) {
	authority, err := identity.NewRandomAuthority()
	if err != nil {
		t.Fatal(err)
	}
	gw, err := gateway.New("hospital", store.OpenMemory(), nil)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(NewGatewayServer(gw).RequireAuth(authority, "data-controller"))
	defer srv.Close()

	mint := func(actor event.Actor) string {
		tok, _, err := authority.Issue(actor, nil, time.Hour)
		if err != nil {
			t.Fatal(err)
		}
		return tok
	}
	d := event.NewDetail("c.x", "src-1", "hospital").Set("patient-id", "PRS-1").Set("secret", "s")

	// Persist requires the producer's token.
	anon := NewRemoteGateway(srv.URL, nil)
	if err := anon.Persist(context.Background(), d); !errors.Is(err, ErrUnauthorized) {
		t.Errorf("anonymous persist = %v", err)
	}
	wrong := anon.WithToken(mint("someone-else"))
	if err := wrong.Persist(context.Background(), d); !errors.Is(err, ErrUnauthorized) {
		t.Errorf("foreign persist = %v", err)
	}
	producer := anon.WithToken(mint("hospital"))
	if err := producer.Persist(context.Background(), d); err != nil {
		t.Fatalf("producer persist = %v", err)
	}

	// GetResponse requires the controller's token — a consumer (or even
	// the producer) cannot pull details around the policy enforcer.
	if _, err := anon.GetResponse("src-1", []event.FieldName{"patient-id"}); !errors.Is(err, ErrUnauthorized) {
		t.Errorf("anonymous get-response = %v", err)
	}
	if _, err := producer.GetResponse("src-1", []event.FieldName{"patient-id"}); !errors.Is(err, ErrUnauthorized) {
		t.Errorf("producer get-response = %v", err)
	}
	controller := anon.WithToken(mint("data-controller"))
	got, err := controller.GetResponse("src-1", []event.FieldName{"patient-id"})
	if err != nil {
		t.Fatalf("controller get-response = %v", err)
	}
	if !got.ExposesOnly([]event.FieldName{"patient-id"}) {
		t.Error("response not privacy safe")
	}
}

func TestAuditEndpointRequiresGuarantorRole(t *testing.T) {
	r := newAuthRig(t)
	r.seed(t)
	get := func(token string) int {
		req, _ := http.NewRequest(http.MethodGet, r.ctrlServer.URL+"/ws/audit", nil)
		if token != "" {
			req.Header.Set("Authorization", "Bearer "+token)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if got := get(""); got != http.StatusUnauthorized {
		t.Errorf("anonymous audit = %d", got)
	}
	plain, _, _ := r.authority.Issue("family-doctor", nil, time.Hour)
	if got := get(plain); got != http.StatusUnauthorized {
		t.Errorf("role-less audit = %d", got)
	}
	guarantor, _, _ := r.authority.Issue("privacy-authority", []string{GuarantorRole}, time.Hour)
	if got := get(guarantor); got != http.StatusOK {
		t.Errorf("guarantor audit = %d", got)
	}
}
