package transport

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/crypto"
	"repro/internal/event"
	"repro/internal/index"
	"repro/internal/policy"
	"repro/internal/resilience"
	"repro/internal/schema"
	"repro/internal/store"
)

// flakyFrontend proxies to a real controller server but can be switched
// into failure mode (everything answers 503) and counts requests.
type flakyFrontend struct {
	next     http.Handler
	failing  atomic.Bool
	requests atomic.Int64
}

func (f *flakyFrontend) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	f.requests.Add(1)
	if f.failing.Load() {
		w.WriteHeader(http.StatusServiceUnavailable)
		return
	}
	f.next.ServeHTTP(w, r)
}

func newResilienceWorld(t *testing.T) (*core.Controller, *flakyFrontend, string) {
	t.Helper()
	ctrl, err := core.New(core.Config{
		MasterKey:      bytes.Repeat([]byte{9}, crypto.KeySize),
		DefaultConsent: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ctrl.Close() })
	if err := ctrl.RegisterProducer("hospital", "Hospital"); err != nil {
		t.Fatal(err)
	}
	if err := ctrl.RegisterConsumer("family-doctor", "Doctors"); err != nil {
		t.Fatal(err)
	}
	if err := ctrl.DeclareClass("hospital", schema.BloodTest()); err != nil {
		t.Fatal(err)
	}
	front := &flakyFrontend{next: NewServer(ctrl)}
	srv := httptest.NewServer(front)
	t.Cleanup(srv.Close)
	return ctrl, front, srv.URL
}

// TestClientRetriesThroughTransientFailures: a 503 burst shorter than
// the retry allowance is invisible to the caller.
// doctorPolicy permits the family doctor the standard blood-test view.
func doctorPolicy() *policy.Policy {
	return &policy.Policy{
		Producer: "hospital",
		Actor:    "family-doctor",
		Class:    schema.ClassBloodTest,
		Purposes: []event.Purpose{event.PurposeHealthcareTreatment},
		Fields:   []event.FieldName{"patient-id", "exam-date", "hemoglobin"},
	}
}

func TestClientRetriesThroughTransientFailures(t *testing.T) {
	_, front, url := newResilienceWorld(t)
	client := NewClient(url, nil, WithRetrier(resilience.NewRetrier(resilience.RetryPolicy{
		MaxAttempts: 5, BaseDelay: time.Millisecond, MaxDelay: 5 * time.Millisecond, Seed: 1,
	})))

	// Fail exactly the first two attempts of the next call.
	front.failing.Store(true)
	fails := front.requests.Load() + 2
	done := make(chan struct{})
	go func() {
		defer close(done)
		for front.requests.Load() < fails {
			time.Sleep(100 * time.Microsecond)
		}
		front.failing.Store(false)
	}()
	if _, err := client.Stats(context.Background()); err != nil {
		t.Fatalf("Stats through transient 503s: %v", err)
	}
	<-done
}

// TestClientWithoutRetrierSurfacesTransients pins the default: no
// retrier means the first failure surfaces, marked retryable so a
// caller can make its own policy.
func TestClientWithoutRetrierSurfacesTransients(t *testing.T) {
	_, front, url := newResilienceWorld(t)
	client := NewClient(url, nil)
	front.failing.Store(true)
	_, err := client.Stats(context.Background())
	if err == nil {
		t.Fatal("Stats succeeded against a 503 frontend")
	}
	if !resilience.Retryable(err) {
		t.Fatalf("transient failure not marked retryable: %v", err)
	}
}

// TestClientBreakerFailsFastWhileOpen: once the breaker trips, calls
// are rejected locally — the dying endpoint stops receiving traffic.
func TestClientBreakerFailsFastWhileOpen(t *testing.T) {
	_, front, url := newResilienceWorld(t)
	client := NewClient(url, nil, WithBreakerGroup(resilience.NewGroup(resilience.BreakerConfig{
		ConsecutiveFailures: 3, ErrorRate: -1, OpenFor: time.Minute,
	})))
	front.failing.Store(true)
	for i := 0; i < 3; i++ {
		if _, err := client.Stats(context.Background()); err == nil {
			t.Fatal("Stats succeeded against a 503 frontend")
		}
	}
	before := front.requests.Load()
	_, err := client.Stats(context.Background())
	if !errors.Is(err, resilience.ErrOpen) {
		t.Fatalf("call after trip = %v, want ErrOpen", err)
	}
	if got := front.requests.Load(); got != before {
		t.Fatalf("open breaker let %d request(s) through", got-before)
	}
	// The rejection carries the cooldown as a retry hint.
	if after, ok := resilience.RetryAfterOf(err); !ok || after <= 0 {
		t.Fatalf("open-breaker error carries no Retry-After hint: %v", err)
	}
}

// TestQueuedPublisherParksAndDrains: publishes during an outage are
// accepted durably and delivered exactly once after recovery.
func TestQueuedPublisherParksAndDrains(t *testing.T) {
	ctrl, front, url := newResilienceWorld(t)
	client := NewClient(url, nil, WithRetrier(resilience.NewRetrier(resilience.RetryPolicy{
		MaxAttempts: 2, BaseDelay: time.Millisecond, MaxDelay: 5 * time.Millisecond, Seed: 1,
	})))
	qp, err := NewQueuedPublisher(client, store.OpenMemory(), nil, 20*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	defer qp.Close()

	front.failing.Store(true)
	for i := 0; i < 3; i++ {
		_, queued, err := qp.Publish(context.Background(), &event.Notification{
			SourceID: event.SourceID(fmt.Sprintf("s%d", i)), Class: schema.ClassBloodTest,
			PersonID: "PRS-Q", Summary: "blood test", Producer: "hospital",
			OccurredAt: time.Date(2010, 5, 30, 9, 0, 0, 0, time.UTC),
		})
		if err != nil {
			t.Fatalf("publish %d: %v", i, err)
		}
		if !queued {
			t.Fatalf("publish %d not parked during the outage", i)
		}
	}
	if d := qp.Depth(); d != 3 {
		t.Fatalf("outbox depth = %d, want 3", d)
	}

	front.failing.Store(false)
	deadline := time.Now().Add(10 * time.Second)
	for qp.Depth() > 0 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if d := qp.Depth(); d != 0 {
		t.Fatalf("outbox depth after recovery = %d", d)
	}
	notes, err := ctrl.InquireOwn("PRS-Q", index.Inquiry{Limit: 10})
	if err != nil {
		t.Fatal(err)
	}
	if len(notes) != 3 {
		t.Fatalf("indexed %d notifications, want 3", len(notes))
	}
}

// TestResubscriberRepairsLostSubscription: a controller restart forgets
// in-memory subscriptions; the prober notices and re-subscribes.
func TestResubscriberRepairsLostSubscription(t *testing.T) {
	ctrlA, _, _ := newResilienceWorld(t)
	ctrlB, _, _ := newResilienceWorld(t)
	for _, c := range []*core.Controller{ctrlA, ctrlB} {
		if _, err := c.DefinePolicy(doctorPolicy()); err != nil {
			t.Fatal(err)
		}
	}

	// One URL, swappable backend — the "same address, restarted process"
	// topology a consumer actually faces.
	var backend atomic.Pointer[Server]
	backend.Store(NewServer(ctrlA))
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		backend.Load().ServeHTTP(w, r)
	}))
	defer srv.Close()

	receiver := httptest.NewServer(NewNotificationReceiver(func(*event.Notification) {}))
	defer receiver.Close()

	changed := make(chan string, 1)
	client := NewClient(srv.URL, nil)
	sub, err := NewResubscriber(context.Background(), client, ResubscribeConfig{
		Actor: "family-doctor", Class: schema.ClassBloodTest, Callback: receiver.URL,
		Interval: 20 * time.Millisecond,
		OnChange: func(oldID, newID string) { changed <- newID },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	firstID := sub.ID()
	if !ctrlA.HasSubscription(firstID) {
		t.Fatalf("controller A does not hold %s", firstID)
	}

	// "Restart": same URL now fronts a controller with no subscriptions.
	backend.Store(NewServer(ctrlB))
	select {
	case newID := <-changed:
		// The id may coincide with the old one (both controllers mint
		// sequential ids); what matters is who holds it now.
		if !ctrlB.HasSubscription(newID) {
			t.Fatalf("controller B does not hold %s", newID)
		}
		if sub.ID() != newID {
			t.Fatalf("ID() = %s, want %s", sub.ID(), newID)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("subscription never re-established after the restart")
	}
}

// TestSubscriptionProbeOverTheWire pins the probe endpoint semantics:
// held ids answer active, unknown ids answer a typed fault that the
// client maps to (false, nil).
func TestSubscriptionProbeOverTheWire(t *testing.T) {
	r := newRig(t)
	if _, err := r.client.DefinePolicy(context.Background(), doctorPolicy()); err != nil {
		t.Fatal(err)
	}
	receiver := httptest.NewServer(NewNotificationReceiver(func(*event.Notification) {}))
	defer receiver.Close()
	id, err := r.client.Subscribe(context.Background(), "family-doctor", schema.ClassBloodTest, receiver.URL)
	if err != nil {
		t.Fatal(err)
	}
	active, err := r.client.SubscriptionActive(context.Background(), id)
	if err != nil || !active {
		t.Fatalf("SubscriptionActive(%s) = %v, %v; want true, nil", id, active, err)
	}
	active, err = r.client.SubscriptionActive(context.Background(), "no-such-subscription")
	if err != nil || active {
		t.Fatalf("SubscriptionActive(unknown) = %v, %v; want false, nil", active, err)
	}
}
