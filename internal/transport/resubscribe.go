package transport

import (
	"context"
	"sync"
	"time"

	"repro/internal/event"
	"repro/internal/telemetry"
)

// DefaultProbeInterval is how often a Resubscriber checks that its
// subscription is still held by the controller.
const DefaultProbeInterval = 2 * time.Second

// Resubscriber keeps a consumer subscription alive across controller
// restarts. Subscriptions are held in controller memory, so a restarted
// controller forgets them silently: callbacks just stop arriving. The
// resubscriber probes the subscription id at an interval and, when the
// controller reports it unknown, re-establishes the subscription and
// reports the new id through the optional OnChange hook.
//
// Probe failures (controller unreachable) are not treated as loss — the
// subscription may well survive on the other side; the prober simply
// tries again next tick.
type Resubscriber struct {
	client   *Client
	actor    event.Actor
	class    event.ClassID
	callback string
	interval time.Duration
	onChange func(oldID, newID string)

	mu sync.Mutex
	id string

	stopOnce sync.Once
	stop     chan struct{}
	done     chan struct{}
}

// ResubscribeConfig parameterizes NewResubscriber. Interval ≤ 0 means
// DefaultProbeInterval; OnChange may be nil.
type ResubscribeConfig struct {
	Actor    event.Actor
	Class    event.ClassID
	Callback string
	Interval time.Duration
	OnChange func(oldID, newID string)
}

// NewResubscriber subscribes once and starts the liveness loop. The
// initial subscribe failing is fatal (returned); later losses are
// repaired in the background.
func NewResubscriber(ctx context.Context, client *Client, cfg ResubscribeConfig) (*Resubscriber, error) {
	id, err := client.Subscribe(ctx, cfg.Actor, cfg.Class, cfg.Callback)
	if err != nil {
		return nil, err
	}
	if cfg.Interval <= 0 {
		cfg.Interval = DefaultProbeInterval
	}
	r := &Resubscriber{
		client:   client,
		actor:    cfg.Actor,
		class:    cfg.Class,
		callback: cfg.Callback,
		interval: cfg.Interval,
		onChange: cfg.OnChange,
		id:       id,
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	go r.loop()
	return r, nil
}

// ID returns the current subscription id.
func (r *Resubscriber) ID() string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.id
}

// Close stops the probe loop. The subscription itself is left in place.
func (r *Resubscriber) Close() {
	r.stopOnce.Do(func() { close(r.stop) })
	<-r.done
}

// loop probes and repairs until closed.
func (r *Resubscriber) loop() {
	defer close(r.done)
	ticker := time.NewTicker(r.interval)
	defer ticker.Stop()
	for {
		select {
		case <-r.stop:
			return
		case <-ticker.C:
		}
		r.probe()
	}
}

// probe checks the subscription and re-subscribes if the controller no
// longer knows it.
func (r *Resubscriber) probe() {
	ctx, cancel := context.WithTimeout(context.Background(), r.interval)
	defer cancel()
	old := r.ID()
	active, err := r.client.SubscriptionActive(ctx, old)
	if err != nil || active {
		// Unreachable controllers prove nothing about the subscription;
		// only a definite "unknown" (active=false, err=nil) triggers repair.
		return
	}
	id, err := r.client.Subscribe(ctx, r.actor, r.class, r.callback)
	if err != nil {
		telemetry.Logger().Error("resubscribe failed",
			"actor", string(r.actor), "class", string(r.class), "err", err)
		return
	}
	r.mu.Lock()
	r.id = id
	r.mu.Unlock()
	telemetry.Logger().Info("subscription re-established",
		"actor", string(r.actor), "class", string(r.class), "old", old, "new", id)
	if r.onChange != nil {
		r.onChange(old, id)
	}
}
