package transport

// Codec negotiation for the web-service binding. XML remains the
// default wire format (paper fidelity: every fixture in the paper's
// appendix is an XML document), and any client that never sends a
// codec header keeps talking XML forever. A client that POSTs
// application/x-css-frame bodies — or asks for them via Accept — gets
// the compact binary framing on the three hot routes (/ws/publish,
// /ws/details, /ws/subscribe) plus binary fault envelopes, cutting the
// per-message encode/decode cost to a single allocation each way.
//
// The control messages of the transport layer (faults, publish and
// subscribe responses, the subscribe request) reuse the event-layer
// frame primitives with their own frame types (4-7), so one magic
// sniff distinguishes every message kind on the wire.

import (
	"encoding/xml"
	"errors"
	"io"
	"net/http"
	"strconv"
	"strings"

	"repro/internal/event"
)

// requestCodec picks the codec that decodes a request body: an explicit
// binary Content-Type wins, otherwise the frame magic is sniffed so
// pre-negotiated peers need no header at all. Everything else is XML.
func requestCodec(r *http.Request, body []byte) event.Codec {
	if strings.HasPrefix(r.Header.Get("Content-Type"), event.ContentTypeBinary) {
		return event.Binary
	}
	if event.IsBinaryFrame(body) {
		return event.Binary
	}
	return event.XML
}

// responseCodec honors an explicit Accept preference and otherwise
// mirrors the request codec — a binary publisher gets a binary ack
// without sending two headers per request.
func responseCodec(r *http.Request, reqCodec event.Codec) event.Codec {
	accept := r.Header.Get("Accept")
	switch {
	case strings.Contains(accept, event.ContentTypeBinary):
		return event.Binary
	case strings.Contains(accept, event.ContentTypeXML):
		return event.XML
	}
	return reqCodec
}

// readRaw reads the size-bounded request body for codec-negotiated
// routes (the codec is chosen after the bytes are in hand).
func readRaw(r *http.Request) ([]byte, error) {
	data, err := io.ReadAll(io.LimitReader(r.Body, maxBodyBytes))
	if err != nil {
		return nil, errors.New("transport: read body: " + err.Error())
	}
	return data, nil
}

// writeBody sends a pre-encoded response body.
func writeBody(w http.ResponseWriter, status int, contentType string, body []byte) {
	w.Header().Set("Content-Type", contentType)
	w.WriteHeader(status)
	w.Write(body)
}

// --- binary control frames -------------------------------------------------

// fault frame: code, message, then (since the sharded transport) the
// optional shard redirect pair — owner id and map version as decimal
// strings, empty when absent. Decoders that predate the pair ignored
// trailing bytes, and this decoder treats a frame ending after the
// message as a pre-shard fault, so both directions stay compatible.
func encodeFaultFrame(f *Fault) []byte {
	out := event.AppendFrameHeader(nil, event.FrameFault)
	out = event.AppendFrameString(out, f.Code)
	out = event.AppendFrameString(out, f.Message)
	if f.Shard != "" || f.MapVersion != 0 {
		out = event.AppendFrameString(out, f.Shard)
		out = event.AppendFrameString(out, strconv.FormatUint(f.MapVersion, 10))
	}
	return out
}

func decodeFaultFrame(data []byte, f *Fault) error {
	p, err := event.FrameBody(data, event.FrameFault)
	if err != nil {
		return err
	}
	if f.Code, p, err = event.FrameString(p); err != nil {
		return err
	}
	if f.Message, p, err = event.FrameString(p); err != nil {
		return err
	}
	if len(p) == 0 {
		return nil // pre-shard fault: no redirect pair
	}
	if f.Shard, p, err = event.FrameString(p); err != nil {
		return err
	}
	var ver string
	if ver, _, err = event.FrameString(p); err != nil {
		return err
	}
	f.MapVersion, _ = strconv.ParseUint(ver, 10, 64)
	return nil
}

// publishResponse frame: event id.
func encodePublishResponseFrame(gid event.GlobalID) []byte {
	out := event.AppendFrameHeader(nil, event.FramePublishResponse)
	return event.AppendFrameString(out, string(gid))
}

func decodePublishResponseFrame(data []byte) (event.GlobalID, error) {
	p, err := event.FrameBody(data, event.FramePublishResponse)
	if err != nil {
		return "", err
	}
	id, _, err := event.FrameString(p)
	return event.GlobalID(id), err
}

// subscribeRequest frame: actor, class, callback URL, callback codec
// name ("" means XML — the same default as the XML form's omitted
// <codec> element).
func encodeSubscribeRequestFrame(req *subscribeRequest) []byte {
	out := event.AppendFrameHeader(nil, event.FrameSubscribeReq)
	out = event.AppendFrameString(out, string(req.Actor))
	out = event.AppendFrameString(out, string(req.Class))
	out = event.AppendFrameString(out, req.Callback)
	out = event.AppendFrameString(out, req.Codec)
	return out
}

func decodeSubscribeRequestFrame(data []byte) (*subscribeRequest, error) {
	p, err := event.FrameBody(data, event.FrameSubscribeReq)
	if err != nil {
		return nil, err
	}
	var req subscribeRequest
	var s string
	if s, p, err = event.FrameString(p); err != nil {
		return nil, err
	}
	req.Actor = event.Actor(s)
	if s, p, err = event.FrameString(p); err != nil {
		return nil, err
	}
	req.Class = event.ClassID(s)
	if req.Callback, p, err = event.FrameString(p); err != nil {
		return nil, err
	}
	if req.Codec, _, err = event.FrameString(p); err != nil {
		return nil, err
	}
	return &req, nil
}

// subscribeResponse frame: subscription id.
func encodeSubscribeResponseFrame(id string) []byte {
	out := event.AppendFrameHeader(nil, event.FrameSubscribeResp)
	return event.AppendFrameString(out, id)
}

func decodeSubscribeResponseFrame(data []byte) (string, error) {
	p, err := event.FrameBody(data, event.FrameSubscribeResp)
	if err != nil {
		return "", err
	}
	id, _, err := event.FrameString(p)
	return id, err
}

// --- negotiated writers ----------------------------------------------------

// writeFaultAs is writeFault in the negotiated codec; the Retry-After
// hint survives negotiation unchanged.
func writeFaultAs(w http.ResponseWriter, codec event.Codec, err error) {
	f, status := faultOf(err)
	if status == http.StatusServiceUnavailable {
		w.Header().Set("Retry-After", "1")
	}
	writeFaultStatusAs(w, codec, status, f)
}

func writeFaultStatusAs(w http.ResponseWriter, codec event.Codec, status int, f *Fault) {
	if codec == event.Binary {
		writeBody(w, status, event.ContentTypeBinary, encodeFaultFrame(f))
		return
	}
	writeXML(w, status, f)
}

func writePublishResponseAs(w http.ResponseWriter, codec event.Codec, status int, gid event.GlobalID) {
	if codec == event.Binary {
		writeBody(w, status, event.ContentTypeBinary, encodePublishResponseFrame(gid))
		return
	}
	writeXML(w, status, &publishResponse{EventID: gid})
}

func writeSubscribeResponseAs(w http.ResponseWriter, codec event.Codec, id string) {
	if codec == event.Binary {
		writeBody(w, http.StatusOK, event.ContentTypeBinary, encodeSubscribeResponseFrame(id))
		return
	}
	writeXML(w, http.StatusOK, &subscribeResponse{ID: id})
}

// decodeAnyPublishResponse sniffs the ack format, so a client behind a
// format-rewriting middleware still lands on its feet.
func decodeAnyPublishResponse(data []byte) (event.GlobalID, error) {
	if event.IsBinaryFrame(data) {
		return decodePublishResponseFrame(data)
	}
	var out publishResponse
	if err := xml.Unmarshal(data, &out); err != nil {
		return "", err
	}
	return out.EventID, nil
}

func decodeAnySubscribeResponse(data []byte) (string, error) {
	if event.IsBinaryFrame(data) {
		return decodeSubscribeResponseFrame(data)
	}
	var out subscribeResponse
	if err := xml.Unmarshal(data, &out); err != nil {
		return "", err
	}
	return out.ID, nil
}
