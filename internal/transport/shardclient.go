package transport

// ShardedClient is the cluster-aware SDK: it speaks to every controller
// shard behind one Client-shaped surface. Publishes route to the shard
// that owns the person's pseudonym; a wrong-shard fault from a stale
// map is followed (bounded hops, with a map refresh when the fault
// names a newer version); person inquiries scatter across the shards
// and merge with stable ordering under a per-shard deadline budget.

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cluster"
	"repro/internal/consent"
	"repro/internal/enforcer"
	"repro/internal/event"
	"repro/internal/index"
	"repro/internal/policy"
)

// maxRedirects bounds how many wrong-shard redirects one publish
// follows before surfacing the routing error. Two hops suffice for any
// single map change (stale guess → named owner); the third absorbs a
// map flip racing the retry.
const maxRedirects = 3

// defaultRouteCacheSize bounds each learned-routing cache (person →
// shard, event → shard). When full the cache is flushed wholesale —
// entries are one redirect away from being relearned, so eviction
// bookkeeping would cost more than the misses it prevents.
const defaultRouteCacheSize = 4096

// ShardedOption configures a ShardedClient.
type ShardedOption func(*shardedOptions)

type shardedOptions struct {
	pseudonym func(string) string
	budget    time.Duration
	cacheSize int
}

// WithPseudonym supplies the pseudonym function (HMAC under the
// cluster's shared master key) so the client computes a publish's
// owning shard locally instead of learning it from redirects. Only
// in-process callers that hold the key can use this — the benchmark
// harness and the smoke suites; remote producers route by redirect.
func WithPseudonym(fn func(personID string) string) ShardedOption {
	return func(o *shardedOptions) { o.pseudonym = fn }
}

// WithShardBudget bounds each per-shard leg of a scatter-gather
// inquiry. The parent context still caps the whole call — the budget
// only tightens, so one slow shard cannot eat the entire deadline.
// Zero (the default) means legs inherit the parent deadline unchanged.
func WithShardBudget(d time.Duration) ShardedOption {
	return func(o *shardedOptions) { o.budget = d }
}

// ShardedClient fans a Client per cluster member out of a factory (so
// each member gets its own breaker group and connection pool) and
// routes between them by the cluster's consistent-hash map: writes go
// to each shard's primary, index inquiries to its read replicas
// (round-robin, primary fallback).
type ShardedClient struct {
	factory func(cluster.ShardInfo) *Client
	opts    shardedOptions

	mu sync.RWMutex
	m  *cluster.Map
	// clients is keyed by member address, not shard id: a failover
	// changes a shard's primary address, and the address key makes the
	// next write route to a fresh client for the promoted node while
	// the old one ages out with its breaker state intact.
	clients map[string]*Client

	rr      atomic.Uint32 // round-robin cursor over a shard's read replicas
	persons *routeCache   // personID → owning shard, learned from acks/redirects
	events  *routeCache   // event gid → shard that acked the publish
}

// NewShardedClient builds a cluster client over the given map. factory
// constructs the per-shard Client — callers install per-shard breaker
// groups and retriers there, exactly as they would for a single
// controller.
func NewShardedClient(m *cluster.Map, factory func(cluster.ShardInfo) *Client, opts ...ShardedOption) (*ShardedClient, error) {
	if m == nil {
		return nil, errors.New("transport: sharded client needs a shard map")
	}
	if factory == nil {
		return nil, errors.New("transport: sharded client needs a client factory")
	}
	o := shardedOptions{cacheSize: defaultRouteCacheSize}
	for _, opt := range opts {
		opt(&o)
	}
	return &ShardedClient{
		factory: factory,
		opts:    o,
		m:       m,
		clients: make(map[string]*Client, len(m.Shards())),
		persons: newRouteCache(o.cacheSize),
		events:  newRouteCache(o.cacheSize),
	}, nil
}

// Map returns the shard map the client currently routes by.
func (sc *ShardedClient) Map() *cluster.Map {
	sc.mu.RLock()
	defer sc.mu.RUnlock()
	return sc.m
}

// clientAt returns (building if needed) the Client for one cluster
// member. Replica clients are synthesized from the owning shard's info
// with the replica's address substituted — the factory sees the same
// shard id either way.
func (sc *ShardedClient) clientAt(info cluster.ShardInfo) *Client {
	sc.mu.RLock()
	cl, ok := sc.clients[info.Addr]
	sc.mu.RUnlock()
	if ok {
		return cl
	}
	sc.mu.Lock()
	defer sc.mu.Unlock()
	if cl, ok := sc.clients[info.Addr]; ok {
		return cl
	}
	cl = sc.factory(info)
	sc.clients[info.Addr] = cl
	return cl
}

// clientFor returns the Client of a shard's primary under the current
// map — the write-path target.
func (sc *ShardedClient) clientFor(id cluster.ShardID) (*Client, error) {
	m := sc.Map()
	info, ok := m.Shard(id)
	if !ok {
		return nil, fmt.Errorf("transport: %w: shard %s not in map v%d", cluster.ErrStaleMap, id, m.Version())
	}
	return sc.clientAt(info), nil
}

// readClientFor returns a Client for one of the shard's read replicas,
// rotating between them, or the primary when the shard has none. The
// second result reports whether a replica was picked, so callers know
// a failure still has the primary to fall back to.
func (sc *ShardedClient) readClientFor(id cluster.ShardID) (*Client, bool, error) {
	m := sc.Map()
	info, ok := m.Shard(id)
	if !ok {
		return nil, false, fmt.Errorf("transport: %w: shard %s not in map v%d", cluster.ErrStaleMap, id, m.Version())
	}
	if len(info.Replicas) == 0 {
		return sc.clientAt(info), false, nil
	}
	i := int(sc.rr.Add(1)-1) % len(info.Replicas)
	replica := info
	replica.Addr = info.Replicas[i]
	return sc.clientAt(replica), true, nil
}

// adoptMap swaps in a newer map and flushes the learned routes (member
// clients persist — they are keyed by address, so a failover's primary
// change routes to the promoted node's client on the next write).
func (sc *ShardedClient) adoptMap(next *cluster.Map) {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	if next.Version() <= sc.m.Version() {
		return
	}
	sc.m = next
	sc.persons.reset()
	sc.events.reset()
}

// RefreshMap fetches the shard map from the given shard (any member
// serves it) and adopts it when newer.
func (sc *ShardedClient) RefreshMap(ctx context.Context, from cluster.ShardID) error {
	cl, err := sc.clientFor(from)
	if err != nil {
		return err
	}
	m, err := cl.ShardMap(ctx)
	if err != nil {
		return err
	}
	sc.adoptMap(m)
	return nil
}

// ownerFor picks the shard a person's publishes should go to: computed
// exactly when the pseudonym function is present, otherwise the cached
// learned route, otherwise a deterministic guess (hash of the raw
// person id over the same ring) that the first redirect corrects.
func (sc *ShardedClient) ownerFor(personID string) cluster.ShardID {
	sc.mu.RLock()
	m := sc.m
	sc.mu.RUnlock()
	if sc.opts.pseudonym != nil {
		return m.Owner(sc.opts.pseudonym(personID))
	}
	if id, ok := sc.persons.get(personID); ok {
		return id
	}
	return m.Owner(personID)
}

// Publish routes the notification to the owning shard's primary,
// following wrong-shard redirects (the authoritative owner travels in
// the fault) and not-primary redirects (a failover moved the shard's
// primary) up to maxRedirects hops. A redirect naming a newer map
// version triggers a map refresh from the node that answered — after a
// failover that is the deposed primary, which holds the successor map
// naming its replacement, so one refresh converges the route without a
// redirect loop.
func (sc *ShardedClient) Publish(ctx context.Context, n *event.Notification) (event.GlobalID, error) {
	target := sc.ownerFor(n.PersonID)
	var lastErr error
	for hop := 0; hop <= maxRedirects; hop++ {
		cl, err := sc.clientFor(target)
		if err != nil {
			return "", err
		}
		gid, err := cl.Publish(ctx, n)
		if err == nil {
			sc.persons.put(n.PersonID, target)
			sc.events.put(string(gid), target)
			return gid, nil
		}
		var np *cluster.NotPrimaryError
		if errors.As(err, &np) {
			// Right shard, wrong role: converge the route and retry the
			// same shard — clientFor then resolves the promoted
			// primary's address.
			lastErr = err
			sc.refreshOnNotPrimary(ctx, target, np.Version)
			continue
		}
		var ws *cluster.WrongShardError
		if !errors.As(err, &ws) {
			// A dead primary answers nothing at all — no fault to follow.
			// Ask the shard's read replicas for a newer map (a failover
			// bumps the version and names the promoted primary) and retry
			// when one arrives; otherwise the error stands.
			if ctx.Err() == nil && sc.refreshFromReplicas(ctx, target) {
				lastErr = err
				continue
			}
			return "", err
		}
		lastErr = err
		sc.refreshIfNewer(ctx, target, ws.Version)
		sc.persons.put(n.PersonID, ws.Owner)
		target = ws.Owner
	}
	return "", fmt.Errorf("transport: publish exceeded %d shard redirects: %w", maxRedirects, lastErr)
}

// refreshIfNewer refreshes the shard map from the given shard when a
// fault named a version newer than the one routed by — unrelated routes
// benefit from the refresh too. Refresh failures are swallowed: the
// bounded redirect loop surfaces the routing error if the stale map
// never improves.
func (sc *ShardedClient) refreshIfNewer(ctx context.Context, from cluster.ShardID, version uint64) {
	if version > sc.Map().Version() {
		sc.RefreshMap(ctx, from)
	}
}

// refreshOnNotPrimary converges the route after a not-primary answer.
// A fault naming a newer map version pulls the map from the answering
// node — after a failover that is the deposed primary holding the
// successor map. But a node that answers not-primary with a stale,
// lower-or-equal version (a deposed primary restarted as a replica
// before learning who replaced it) cannot teach us anything: refreshing
// from it would spin the bounded retry loop against the same stale
// address. Fall back to the shard's other replicas, which carry the
// successor map once the election commits.
func (sc *ShardedClient) refreshOnNotPrimary(ctx context.Context, id cluster.ShardID, version uint64) {
	if version > sc.Map().Version() {
		sc.RefreshMap(ctx, id)
		return
	}
	sc.refreshFromReplicas(ctx, id)
}

// refreshFromReplicas asks a shard's read replicas for a newer shard
// map when its named primary stopped answering — or answered
// not-primary without a newer map to offer. After a failover the
// survivors carry the successor map naming the promoted primary.
// Reports whether a newer map was adopted (so the caller retries).
func (sc *ShardedClient) refreshFromReplicas(ctx context.Context, id cluster.ShardID) bool {
	m := sc.Map()
	info, ok := m.Shard(id)
	if !ok {
		return false
	}
	for _, addr := range info.Replicas {
		replica := info
		replica.Addr = addr
		nm, err := sc.clientAt(replica).ShardMap(ctx)
		if err != nil || nm.Version() <= m.Version() {
			continue
		}
		sc.adoptMap(nm)
		return sc.Map().Version() > m.Version()
	}
	return false
}

// writeRetry runs one write against a shard's primary, following
// not-primary redirects (refresh, then retry at the shard's current
// primary) up to maxRedirects attempts. Broadcast writes wrap each
// per-shard leg in it so a mid-broadcast failover is absorbed.
func (sc *ShardedClient) writeRetry(ctx context.Context, id cluster.ShardID, call func(cl *Client) error) error {
	var lastErr error
	for hop := 0; hop <= maxRedirects; hop++ {
		cl, err := sc.clientFor(id)
		if err != nil {
			return err
		}
		err = call(cl)
		var np *cluster.NotPrimaryError
		if !errors.As(err, &np) {
			return err
		}
		lastErr = err
		sc.refreshOnNotPrimary(ctx, id, np.Version)
	}
	return fmt.Errorf("transport: write exceeded %d not-primary retries: %w", maxRedirects, lastErr)
}

// RequestDetails resolves a detail request. The shard that acked the
// event's publish is tried first (learned route); on a cache miss the
// shards are asked in order, skipping unknown-event answers, so a
// detail request never needs the pseudonym.
func (sc *ShardedClient) RequestDetails(ctx context.Context, r *event.DetailRequest) (*event.Detail, error) {
	if id, ok := sc.events.get(string(r.EventID)); ok {
		if cl, err := sc.clientFor(id); err == nil {
			d, err := cl.RequestDetails(ctx, r)
			if !isUnknownEvent(err) {
				return d, err
			}
			// The event moved in a reshard since the publish: fall
			// through to the sweep and relearn its home.
		}
	}
	var lastErr error = errUnknownEventAll
	for _, info := range sc.Map().Shards() {
		cl, err := sc.clientFor(info.ID)
		if err != nil {
			return nil, err
		}
		d, err := cl.RequestDetails(ctx, r)
		if err == nil {
			sc.events.put(string(r.EventID), info.ID)
			return d, nil
		}
		if !isUnknownEvent(err) {
			return nil, err
		}
		lastErr = err
	}
	return nil, lastErr
}

// errUnknownEventAll is returned when every shard disclaims the event;
// it unwraps to the single-controller sentinel so errors.Is keeps
// working for cluster callers.
var errUnknownEventAll = fmt.Errorf("transport: event unknown to every shard: %w", enforcer.ErrUnknownEvent)

func isUnknownEvent(err error) bool {
	return errors.Is(err, enforcer.ErrUnknownEvent)
}

// InquireIndex queries the events index across the cluster. When the
// pseudonym function is present and the inquiry names a person, only
// the owning shard is asked; otherwise the inquiry scatters to every
// shard under the per-shard budget and the replies merge in stable
// notification order (OccurredAt, then id), deduplicated, capped at
// q.Limit. When some shards fail the merged partial result is returned
// together with a *cluster.PartialError naming the failed shards.
// Index inquiries prefer each shard's read replicas (rotating between
// them) so the primaries' write capacity is not spent on reads; a
// replica failure falls back to the shard's primary within the same
// call.
func (sc *ShardedClient) InquireIndex(ctx context.Context, actor event.Actor, q index.Inquiry) ([]*event.Notification, error) {
	m := sc.Map()
	if q.PersonID != "" && sc.opts.pseudonym != nil {
		return sc.inquireShard(ctx, m.Owner(sc.opts.pseudonym(q.PersonID)), actor, q)
	}
	perShard, err := cluster.Gather(ctx, m.Shards(), sc.opts.budget,
		func(ctx context.Context, info cluster.ShardInfo) ([]*event.Notification, error) {
			return sc.inquireShard(ctx, info.ID, actor, q)
		})
	return cluster.MergeNotifications(perShard, q.Limit), err
}

// inquireShard runs one shard's leg of an index inquiry against a read
// replica when the shard has one, retrying the primary on any replica
// failure — a lagging or dead replica must not fail a read the primary
// can serve.
func (sc *ShardedClient) inquireShard(ctx context.Context, id cluster.ShardID, actor event.Actor, q index.Inquiry) ([]*event.Notification, error) {
	cl, replica, err := sc.readClientFor(id)
	if err != nil {
		return nil, err
	}
	out, err := cl.InquireIndex(ctx, actor, q)
	if err != nil && replica && ctx.Err() == nil {
		if pcl, perr := sc.clientFor(id); perr == nil {
			return pcl.InquireIndex(ctx, actor, q)
		}
	}
	return out, err
}

// Subscribe registers the callback on every shard — a class's events
// land on the shard owning each person, so a consumer that wants the
// class subscribes cluster-wide. The per-shard subscription ids are
// returned for liveness probing; a failure on any shard unwinds
// nothing (probe-and-resubscribe reconciles, as after a restart).
func (sc *ShardedClient) Subscribe(ctx context.Context, actor event.Actor, class event.ClassID, callbackURL string) (map[cluster.ShardID]string, error) {
	ids := make(map[cluster.ShardID]string)
	for _, info := range sc.Map().Shards() {
		var id string
		err := sc.writeRetry(ctx, info.ID, func(cl *Client) error {
			var serr error
			id, serr = cl.Subscribe(ctx, actor, class, callbackURL)
			return serr
		})
		if err != nil {
			return ids, fmt.Errorf("transport: subscribe on %s: %w", info.ID, err)
		}
		ids[info.ID] = id
	}
	return ids, nil
}

// RecordConsent broadcasts the directive to every shard: consent must
// bind wherever the person's events land, including after a reshard
// moves them.
func (sc *ShardedClient) RecordConsent(ctx context.Context, d consent.Directive) (consent.Directive, error) {
	var stored consent.Directive
	for _, info := range sc.Map().Shards() {
		err := sc.writeRetry(ctx, info.ID, func(cl *Client) error {
			var cerr error
			stored, cerr = cl.RecordConsent(ctx, d)
			return cerr
		})
		if err != nil {
			return consent.Directive{}, fmt.Errorf("transport: consent on %s: %w", info.ID, err)
		}
	}
	return stored, nil
}

// DefinePolicy broadcasts the policy to every shard (policies are
// producer-scoped, not person-scoped, so each shard enforces the same
// corpus).
func (sc *ShardedClient) DefinePolicy(ctx context.Context, p *policy.Policy) (*policy.Policy, error) {
	var stored *policy.Policy
	for _, info := range sc.Map().Shards() {
		err := sc.writeRetry(ctx, info.ID, func(cl *Client) error {
			var perr error
			stored, perr = cl.DefinePolicy(ctx, p)
			return perr
		})
		if err != nil {
			return nil, fmt.Errorf("transport: policy on %s: %w", info.ID, err)
		}
	}
	return stored, nil
}

// Stats sums the operational counters across the shards, under the
// scatter budget. Partial failures surface as *cluster.PartialError
// alongside the counters that did arrive.
func (sc *ShardedClient) Stats(ctx context.Context) (Stats, error) {
	perShard, err := cluster.Gather(ctx, sc.Map().Shards(), sc.opts.budget,
		func(ctx context.Context, info cluster.ShardInfo) (Stats, error) {
			cl, cerr := sc.clientFor(info.ID)
			if cerr != nil {
				return Stats{}, cerr
			}
			return cl.Stats(ctx)
		})
	var sum Stats
	for _, st := range perShard {
		sum.Published += st.Published
		sum.Delivered += st.Delivered
		sum.ConsentDrops += st.ConsentDrops
		sum.SubscriptionDenials += st.SubscriptionDenials
		sum.DetailPermits += st.DetailPermits
		sum.DetailDenials += st.DetailDenials
		sum.Inquiries += st.Inquiries
	}
	return sum, err
}

// --- learned-route cache ---------------------------------------------------

// routeCache is a bounded string → shard map with wholesale flush on
// overflow and on map change. It deliberately holds person identifiers
// only in hashed form — a client-side cache must not become a person
// registry.
type routeCache struct {
	mu  sync.Mutex
	m   map[uint64]cluster.ShardID
	max int
}

func newRouteCache(max int) *routeCache {
	if max <= 0 {
		max = defaultRouteCacheSize
	}
	return &routeCache{m: make(map[uint64]cluster.ShardID), max: max}
}

func routeKey(k string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(k))
	return h.Sum64()
}

func (rc *routeCache) get(k string) (cluster.ShardID, bool) {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	id, ok := rc.m[routeKey(k)]
	return id, ok
}

func (rc *routeCache) put(k string, id cluster.ShardID) {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	if len(rc.m) >= rc.max {
		rc.m = make(map[uint64]cluster.ShardID)
	}
	rc.m[routeKey(k)] = id
}

func (rc *routeCache) reset() {
	rc.mu.Lock()
	rc.m = make(map[uint64]cluster.ShardID)
	rc.mu.Unlock()
}
