package transport

// Transport-layer replication tests: the not-primary fault round-trip,
// the sharded client's failover refresh (one map fetch, no redirect
// loop), read routing to replicas with primary fallback, and the
// replication-status / promote endpoints over the wire.

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/crypto"
	"repro/internal/event"
	"repro/internal/index"
	"repro/internal/replication"
	"repro/internal/schema"
)

func TestNotPrimaryFaultRoundTrip(t *testing.T) {
	orig := &cluster.NotPrimaryError{Shard: 3, Version: 7}
	f, status := faultOf(orig)
	if status != http.StatusMisdirectedRequest {
		t.Fatalf("not-primary status = %d, want 421", status)
	}
	if f.Code != CodeNotPrimary || f.Shard != "3" || f.MapVersion != 7 {
		t.Fatalf("fault = %+v", f)
	}
	back := errorFor(f)
	if !errors.Is(back, cluster.ErrNotPrimary) {
		t.Fatalf("reconstructed error %v is not ErrNotPrimary", back)
	}
	var np *cluster.NotPrimaryError
	if !errors.As(back, &np) || np.Shard != 3 || np.Version != 7 {
		t.Fatalf("reconstructed redirect = %+v", np)
	}
}

// TestShardedClientFailoverRefresh drives the stale-client side of a
// failover: the client's map still names the deposed primary, which now
// runs as a replica and holds the successor map. One write produces one
// not-primary fault, one map refresh, and a successful retry at the
// promoted node — no redirect loop.
func TestShardedClientFailoverRefresh(t *testing.T) {
	key := bytes.Repeat([]byte{7}, crypto.KeySize)

	// Bind both listeners first so the maps can name real addresses.
	deposedSrv := httptest.NewUnstartedServer(nil)
	promotedSrv := httptest.NewUnstartedServer(nil)
	deposedURL := "http://" + deposedSrv.Listener.Addr().String()
	promotedURL := "http://" + promotedSrv.Listener.Addr().String()

	v1, err := cluster.NewMap(1, 0, []cluster.ShardInfo{
		{ID: 0, Addr: deposedURL, Replicas: []string{promotedURL}, Epoch: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	v2, err := v1.WithPromotedReplica(0, promotedURL)
	if err != nil {
		t.Fatal(err)
	}

	// The deposed node: replica role, already holding the successor map.
	deposed, err := core.New(core.Config{
		DataDir: t.TempDir(), MasterKey: key, DefaultConsent: true,
		Replica: true, ShardID: 0, ShardMap: v2,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { deposed.Close() })
	deposedSrv.Config = &http.Server{Handler: NewServer(deposed)}
	deposedSrv.Start()
	t.Cleanup(deposedSrv.Close)

	// The promoted node: primary role under the successor map.
	promoted, err := core.New(core.Config{
		MasterKey: key, DefaultConsent: true, ShardID: 0, ShardMap: v2,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { promoted.Close() })
	if err := promoted.RegisterProducer("hospital", "Hospital"); err != nil {
		t.Fatal(err)
	}
	if err := promoted.RegisterConsumer("family-doctor", "Doctors"); err != nil {
		t.Fatal(err)
	}
	if err := promoted.DeclareClass("hospital", schema.BloodTest()); err != nil {
		t.Fatal(err)
	}
	promotedSrv.Config = &http.Server{Handler: NewServer(promoted)}
	promotedSrv.Start()
	t.Cleanup(promotedSrv.Close)

	var dials atomic.Int32
	sc, err := NewShardedClient(v1, func(info cluster.ShardInfo) *Client {
		dials.Add(1)
		return NewClient(info.Addr, nil)
	})
	if err != nil {
		t.Fatal(err)
	}

	gid, err := sc.Publish(context.Background(), &event.Notification{
		Producer: "hospital", SourceID: "src-fo-1", Class: schema.ClassBloodTest,
		PersonID: "person-1", OccurredAt: time.Now(),
	})
	if err != nil {
		t.Fatalf("publish across failover: %v", err)
	}
	if gid == "" {
		t.Fatal("empty global id")
	}
	if v := sc.Map().Version(); v != 2 {
		t.Fatalf("client map version = %d, want 2 (refreshed from the deposed node)", v)
	}
	n, err := promoted.IndexLen()
	if err != nil || n != 1 {
		t.Fatalf("promoted node holds %d events (%v), want 1", n, err)
	}
	// One client per address touched: the deposed primary and its
	// replacement. A redirect loop would keep hammering the same pair,
	// so also prove the second publish goes straight to the primary.
	if d := dials.Load(); d != 2 {
		t.Fatalf("built %d clients, want 2", d)
	}
	if _, err := sc.Publish(context.Background(), &event.Notification{
		Producer: "hospital", SourceID: "src-fo-2", Class: schema.ClassBloodTest,
		PersonID: "person-1", OccurredAt: time.Now(),
	}); err != nil {
		t.Fatalf("post-refresh publish: %v", err)
	}
	if n, _ := promoted.IndexLen(); n != 2 {
		t.Fatalf("promoted node holds %d events, want 2", n)
	}
}

// TestShardedClientStaleReplicaRescue drives the other stale-client
// failover shape: the node the map names as primary answers
// not-primary, but with a map no newer than the client's own (a deposed
// primary restarted as a replica before learning its successor). The
// fault's version can teach the client nothing, so the rescue must come
// from the shard's read replicas — one of which holds the successor
// map — instead of retrying the same stale address until the redirect
// budget dies.
func TestShardedClientStaleReplicaRescue(t *testing.T) {
	key := bytes.Repeat([]byte{7}, crypto.KeySize)

	deposedSrv := httptest.NewUnstartedServer(nil)
	promotedSrv := httptest.NewUnstartedServer(nil)
	deposedURL := "http://" + deposedSrv.Listener.Addr().String()
	promotedURL := "http://" + promotedSrv.Listener.Addr().String()

	v1, err := cluster.NewMap(1, 0, []cluster.ShardInfo{
		{ID: 0, Addr: deposedURL, Replicas: []string{promotedURL}, Epoch: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	v2, err := v1.WithPromotedReplica(0, promotedURL)
	if err != nil {
		t.Fatal(err)
	}

	// The deposed node rejoined as a replica still holding the OLD map:
	// its not-primary faults carry version 1, same as the client's.
	deposed, err := core.New(core.Config{
		DataDir: t.TempDir(), MasterKey: key, DefaultConsent: true,
		Replica: true, ShardID: 0, ShardMap: v1,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { deposed.Close() })
	deposedSrv.Config = &http.Server{Handler: NewServer(deposed)}
	deposedSrv.Start()
	t.Cleanup(deposedSrv.Close)

	// The promoted node holds the successor map naming itself.
	promoted, err := core.New(core.Config{
		MasterKey: key, DefaultConsent: true, ShardID: 0, ShardMap: v2,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { promoted.Close() })
	if err := promoted.RegisterProducer("hospital", "Hospital"); err != nil {
		t.Fatal(err)
	}
	if err := promoted.DeclareClass("hospital", schema.BloodTest()); err != nil {
		t.Fatal(err)
	}
	promotedSrv.Config = &http.Server{Handler: NewServer(promoted)}
	promotedSrv.Start()
	t.Cleanup(promotedSrv.Close)

	sc, err := NewShardedClient(v1, func(info cluster.ShardInfo) *Client {
		return NewClient(info.Addr, nil)
	})
	if err != nil {
		t.Fatal(err)
	}

	if _, err := sc.Publish(context.Background(), &event.Notification{
		Producer: "hospital", SourceID: "src-stale-1", Class: schema.ClassBloodTest,
		PersonID: "person-1", OccurredAt: time.Now(),
	}); err != nil {
		t.Fatalf("publish across stale-replica failover: %v", err)
	}
	if v := sc.Map().Version(); v != 2 {
		t.Fatalf("client map version = %d, want 2 (rescued from the replica)", v)
	}
	if n, err := promoted.IndexLen(); err != nil || n != 1 {
		t.Fatalf("promoted node holds %d events (%v), want 1", n, err)
	}
}

// replicatedPair wires a primary and a read-replica controller over a
// real replication link, each behind an HTTP server that counts its
// /ws/inquire hits.
type replicatedPair struct {
	primary, replica        *core.Controller
	priSrv, repSrv          *httptest.Server
	priInquiries, repueries atomic.Int32
	shipper                 *replication.Primary
	follower                *replication.Follower
}

func newReplicatedPair(t *testing.T) *replicatedPair {
	t.Helper()
	key := bytes.Repeat([]byte{7}, crypto.KeySize)
	rp := &replicatedPair{}

	primary, err := core.New(core.Config{DataDir: t.TempDir(), MasterKey: key, DefaultConsent: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { primary.Close() })
	replica, err := core.New(core.Config{DataDir: t.TempDir(), MasterKey: key, DefaultConsent: true, Replica: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { replica.Close() })
	rp.primary, rp.replica = primary, replica

	rs, err := replica.ReplStores()
	if err != nil {
		t.Fatal(err)
	}
	fol, err := replication.NewFollower("127.0.0.1:0", replication.FollowerConfig{
		Stores: rs, Epoch: 1, OnApply: replica.OnReplicatedApply(),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { fol.Close() })
	ps, err := primary.ReplStores()
	if err != nil {
		t.Fatal(err)
	}
	pri, err := replication.NewPrimary(replication.PrimaryConfig{Stores: ps, Epoch: 1})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { pri.Close() })
	primary.AttachReplication(pri)
	pri.AddFollower(fol.Addr())
	rp.shipper, rp.follower = pri, fol

	if err := primary.RegisterProducer("hospital", "Hospital"); err != nil {
		t.Fatal(err)
	}
	if err := primary.RegisterConsumer("family-doctor", "Doctors"); err != nil {
		t.Fatal(err)
	}
	if err := primary.DeclareClass("hospital", schema.BloodTest()); err != nil {
		t.Fatal(err)
	}
	if _, err := primary.DefinePolicy(doctorBloodPolicy()); err != nil {
		t.Fatal(err)
	}

	priHandler := NewServer(primary).SetReplication(pri)
	rp.priSrv = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/ws/inquire" {
			rp.priInquiries.Add(1)
		}
		priHandler.ServeHTTP(w, r)
	}))
	t.Cleanup(rp.priSrv.Close)
	repHandler := NewServer(replica)
	rp.repSrv = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/ws/inquire" {
			rp.repueries.Add(1)
		}
		repHandler.ServeHTTP(w, r)
	}))
	t.Cleanup(rp.repSrv.Close)
	return rp
}

// waitCaughtUp blocks until the follower holds every primary WAL byte.
func (rp *replicatedPair) waitCaughtUp(t *testing.T) {
	t.Helper()
	ps, _ := rp.primary.ReplStores()
	deadline := time.Now().Add(5 * time.Second)
	for {
		caught := true
		offs := rp.follower.Offsets()
		for _, ns := range ps {
			if offs[ns.Name] != ns.Store.WALOffset() {
				caught = false
				break
			}
		}
		if caught {
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("replica never caught up")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestShardedClientRoutesReadsToReplica(t *testing.T) {
	rp := newReplicatedPair(t)
	m, err := cluster.NewMap(1, 0, []cluster.ShardInfo{
		{ID: 0, Addr: rp.priSrv.URL, Replicas: []string{rp.repSrv.URL}, Epoch: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	sc, err := NewShardedClient(m, func(info cluster.ShardInfo) *Client {
		return NewClient(info.Addr, nil)
	})
	if err != nil {
		t.Fatal(err)
	}

	ctx := context.Background()
	for i := 0; i < 8; i++ {
		if _, err := sc.Publish(ctx, &event.Notification{
			Producer: "hospital", SourceID: event.SourceID(fmt.Sprintf("src-%d", i)),
			Class: schema.ClassBloodTest, PersonID: "person-1", OccurredAt: time.Now(),
		}); err != nil {
			t.Fatalf("publish %d: %v", i, err)
		}
	}
	rp.waitCaughtUp(t)

	got, err := sc.InquireIndex(ctx, "family-doctor", index.Inquiry{Class: schema.ClassBloodTest})
	if err != nil {
		t.Fatalf("inquiry via replica: %v", err)
	}
	if len(got) != 8 {
		t.Fatalf("inquiry returned %d notifications, want 8", len(got))
	}
	if rp.repueries.Load() == 0 {
		t.Fatal("read did not route to the replica")
	}
	if rp.priInquiries.Load() != 0 {
		t.Fatal("read hit the primary although a replica is configured")
	}

	// A dead replica must not fail reads: the shard leg falls back to
	// the primary within the same call.
	rp.repSrv.Close()
	got, err = sc.InquireIndex(ctx, "family-doctor", index.Inquiry{Class: schema.ClassBloodTest})
	if err != nil {
		t.Fatalf("inquiry with dead replica: %v", err)
	}
	if len(got) != 8 {
		t.Fatalf("fallback inquiry returned %d notifications, want 8", len(got))
	}
	if rp.priInquiries.Load() == 0 {
		t.Fatal("dead replica did not fall back to the primary")
	}
}

func TestReplStatusAndPromoteOverTheWire(t *testing.T) {
	rp := newReplicatedPair(t)
	publishOne := func(c *Client, src string) (event.GlobalID, error) {
		return c.Publish(context.Background(), &event.Notification{
			Producer: "hospital", SourceID: event.SourceID(src),
			Class: schema.ClassBloodTest, PersonID: "person-1", OccurredAt: time.Now(),
		})
	}
	priClient := NewClient(rp.priSrv.URL, nil)
	repClient := NewClient(rp.repSrv.URL, nil)
	if _, err := publishOne(priClient, "src-a"); err != nil {
		t.Fatal(err)
	}
	rp.waitCaughtUp(t)

	// waitCaughtUp tracks the follower's applied offsets; the ack that
	// drives the primary's lag gauge can trail the apply by a beat, so
	// poll the status surface rather than asserting zero lag once.
	var st ReplStatus
	var err error
	lagDeadline := time.Now().Add(5 * time.Second)
	for {
		st, err = priClient.ReplStatus(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if st.Role != "primary" || st.Epoch != 1 || len(st.Followers) != 1 {
			t.Fatalf("primary replstatus = %+v", st)
		}
		if st.Followers[0].Connected && st.Followers[0].LagBytes == 0 {
			break
		}
		if time.Now().After(lagDeadline) {
			t.Fatalf("follower state = %+v, want connected with zero lag", st.Followers[0])
		}
		time.Sleep(5 * time.Millisecond)
	}
	st, err = repClient.ReplStatus(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if st.Role != "replica" {
		t.Fatalf("replica replstatus role = %q", st.Role)
	}

	// Writes bounce off the replica with the typed redirect.
	if _, err := publishOne(repClient, "src-b"); !errors.Is(err, cluster.ErrNotPrimary) {
		t.Fatalf("replica publish = %v, want ErrNotPrimary", err)
	}

	// Failover: stop shipping, promote over the wire, write to the
	// promoted node.
	rp.shipper.Close()
	st, err = repClient.Promote(context.Background(), 2)
	if err != nil {
		t.Fatal(err)
	}
	if st.Role != "primary" || st.Epoch != 2 {
		t.Fatalf("promote answered %+v", st)
	}
	if _, err := publishOne(repClient, "src-c"); err != nil {
		t.Fatalf("publish on promoted node: %v", err)
	}
	// A second promote conflicts instead of looping the role.
	if _, err := repClient.Promote(context.Background(), 3); err == nil {
		t.Fatal("second promote succeeded")
	}
}
