package transport

import (
	"bytes"
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/consent"
	"repro/internal/core"
	"repro/internal/crypto"
	"repro/internal/enforcer"
	"repro/internal/event"
	"repro/internal/gateway"
	"repro/internal/index"
	"repro/internal/policy"
	"repro/internal/schema"
	"repro/internal/store"
	"repro/internal/xacml"
)

// rig is a full distributed deployment over httptest: a controller
// server, a hospital gateway server (attached remotely), and a client.
type rig struct {
	ctrl       *core.Controller
	gw         *gateway.Gateway
	ctrlServer *httptest.Server
	gwServer   *httptest.Server
	client     *Client
}

func newRig(t *testing.T) *rig {
	t.Helper()
	ctrl, err := core.New(core.Config{
		MasterKey:      bytes.Repeat([]byte{4}, crypto.KeySize),
		DefaultConsent: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ctrl.Close() })

	if err := ctrl.RegisterProducer("hospital", "Hospital"); err != nil {
		t.Fatal(err)
	}
	if err := ctrl.RegisterConsumer("family-doctor", "Doctors"); err != nil {
		t.Fatal(err)
	}
	if err := ctrl.DeclareClass("hospital", schema.BloodTest()); err != nil {
		t.Fatal(err)
	}

	gw, err := gateway.New("hospital", store.OpenMemory(), ctrl.Catalog())
	if err != nil {
		t.Fatal(err)
	}
	gwServer := httptest.NewServer(NewGatewayServer(gw))
	t.Cleanup(gwServer.Close)
	if err := ctrl.AttachGateway("hospital", NewRemoteGateway(gwServer.URL, nil)); err != nil {
		t.Fatal(err)
	}

	ctrlServer := httptest.NewServer(NewServer(ctrl))
	t.Cleanup(ctrlServer.Close)

	return &rig{
		ctrl:       ctrl,
		gw:         gw,
		ctrlServer: ctrlServer,
		gwServer:   gwServer,
		client:     NewClient(ctrlServer.URL, nil),
	}
}

func (r *rig) produce(t *testing.T, src event.SourceID, person string) event.GlobalID {
	t.Helper()
	d := event.NewDetail(schema.ClassBloodTest, src, "hospital").
		Set("patient-id", person).
		Set("exam-date", "2010-05-30").
		Set("hemoglobin", "14.2").
		Set("aids-test", "negative")
	if err := r.gw.Persist(d); err != nil {
		t.Fatal(err)
	}
	gid, err := r.client.Publish(context.Background(), &event.Notification{
		SourceID: src, Class: schema.ClassBloodTest, PersonID: person,
		Summary: "blood test", OccurredAt: time.Date(2010, 5, 30, 9, 0, 0, 0, time.UTC),
		Producer: "hospital",
	})
	if err != nil {
		t.Fatal(err)
	}
	return gid
}

func (r *rig) doctorPolicy(t *testing.T) *policy.Policy {
	t.Helper()
	p, err := r.client.DefinePolicy(context.Background(), &policy.Policy{
		Producer: "hospital", Actor: "family-doctor", Class: schema.ClassBloodTest,
		Purposes: []event.Purpose{event.PurposeHealthcareTreatment},
		Fields:   []event.FieldName{"patient-id", "hemoglobin"},
	})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestRemotePublishAndDetails(t *testing.T) {
	r := newRig(t)
	p := r.doctorPolicy(t)
	if p.ID == "" {
		t.Fatal("remote DefinePolicy returned no id")
	}
	gid := r.produce(t, "src-1", "PRS-1")
	d, err := r.client.RequestDetails(context.Background(), &event.DetailRequest{
		Requester: "family-doctor", Class: schema.ClassBloodTest,
		EventID: gid, Purpose: event.PurposeHealthcareTreatment,
	})
	if err != nil {
		t.Fatalf("RequestDetails: %v", err)
	}
	if v, _ := d.Get("hemoglobin"); v != "14.2" {
		t.Errorf("hemoglobin = %q", v)
	}
	if _, leaked := d.Get("aids-test"); leaked {
		t.Error("aids-test leaked over the wire")
	}
}

func TestRemoteErrorsKeepIdentity(t *testing.T) {
	r := newRig(t)
	gid := r.produce(t, "src-1", "PRS-1")
	// Deny-by-default crosses the wire as enforcer.ErrDenied.
	_, err := r.client.RequestDetails(context.Background(), &event.DetailRequest{
		Requester: "family-doctor", Class: schema.ClassBloodTest,
		EventID: gid, Purpose: event.PurposeHealthcareTreatment,
	})
	if !errors.Is(err, enforcer.ErrDenied) {
		t.Errorf("deny = %v, want enforcer.ErrDenied", err)
	}
	// Unknown event.
	r.doctorPolicy(t)
	_, err = r.client.RequestDetails(context.Background(), &event.DetailRequest{
		Requester: "family-doctor", Class: schema.ClassBloodTest,
		EventID: "evt-ghost", Purpose: event.PurposeHealthcareTreatment,
	})
	if !errors.Is(err, enforcer.ErrUnknownEvent) {
		t.Errorf("unknown event = %v", err)
	}
	// Unknown consumer.
	_, err = r.client.RequestDetails(context.Background(), &event.DetailRequest{
		Requester: "ghost", Class: schema.ClassBloodTest,
		EventID: gid, Purpose: event.PurposeHealthcareTreatment,
	})
	if !errors.Is(err, core.ErrNotConsumer) {
		t.Errorf("unknown consumer = %v", err)
	}
	// Publish guards.
	_, err = r.client.Publish(context.Background(), &event.Notification{
		SourceID: "s", Class: "never.declared", PersonID: "P",
		OccurredAt: time.Now(), Producer: "hospital",
	})
	if !errors.Is(err, core.ErrUnknownClass) {
		t.Errorf("unknown class = %v", err)
	}
	// Policy guard: field outside schema (400-level fault without sentinel).
	_, err = r.client.DefinePolicy(context.Background(), &policy.Policy{
		Producer: "hospital", Actor: "a", Class: schema.ClassBloodTest,
		Purposes: []event.Purpose{"s"}, Fields: []event.FieldName{"no-such-field"},
	})
	if err == nil {
		t.Error("out-of-schema policy accepted remotely")
	}
}

func TestRemoteSubscribeWithCallback(t *testing.T) {
	r := newRig(t)
	r.doctorPolicy(t)

	var mu sync.Mutex
	var got []*event.Notification
	receiver := httptest.NewServer(NewNotificationReceiver(func(n *event.Notification) {
		mu.Lock()
		got = append(got, n)
		mu.Unlock()
	}))
	defer receiver.Close()

	subID, err := r.client.Subscribe(context.Background(), "family-doctor", schema.ClassBloodTest, receiver.URL)
	if err != nil {
		t.Fatalf("Subscribe: %v", err)
	}
	if subID == "" {
		t.Fatal("empty subscription id")
	}
	gid := r.produce(t, "src-1", "PRS-1")

	deadline := time.Now().Add(5 * time.Second)
	for {
		mu.Lock()
		n := len(got)
		mu.Unlock()
		if n > 0 || time.Now().After(deadline) {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(got) != 1 {
		t.Fatalf("received %d notifications", len(got))
	}
	if got[0].ID != gid || got[0].PersonID != "PRS-1" {
		t.Errorf("notification = %+v", got[0])
	}
	if got[0].SourceID != "" {
		t.Error("source id leaked through callback")
	}
}

func TestRemoteSubscribeDenied(t *testing.T) {
	r := newRig(t)
	_, err := r.client.Subscribe(context.Background(), "family-doctor", schema.ClassBloodTest, "http://127.0.0.1:1/cb")
	if !errors.Is(err, core.ErrSubscriptionDeny) {
		t.Errorf("subscribe without policy = %v", err)
	}
	// Missing callback is a bad request.
	if _, err := r.client.Subscribe(context.Background(), "family-doctor", schema.ClassBloodTest, ""); err == nil {
		t.Error("missing callback accepted")
	}
}

func TestRemoteInquiry(t *testing.T) {
	r := newRig(t)
	r.doctorPolicy(t)
	r.produce(t, "src-1", "PRS-A")
	r.produce(t, "src-2", "PRS-B")
	r.produce(t, "src-3", "PRS-A")

	got, err := r.client.InquireIndex(context.Background(), "family-doctor", index.Inquiry{PersonID: "PRS-A"})
	if err != nil {
		t.Fatalf("InquireIndex: %v", err)
	}
	if len(got) != 2 {
		t.Fatalf("inquiry = %d results", len(got))
	}
	// Time-window over the wire.
	got2, err := r.client.InquireIndex(context.Background(), "family-doctor", index.Inquiry{
		From:  time.Date(2010, 1, 1, 0, 0, 0, 0, time.UTC),
		To:    time.Date(2010, 12, 31, 0, 0, 0, 0, time.UTC),
		Limit: 2,
	})
	if err != nil || len(got2) != 2 {
		t.Errorf("windowed inquiry = %d, %v", len(got2), err)
	}
}

func TestRemoteConsent(t *testing.T) {
	r := newRig(t)
	r.doctorPolicy(t)
	gid := r.produce(t, "src-1", "PRS-1")
	stored, err := r.client.RecordConsent(context.Background(), consent.Directive{
		PersonID: "PRS-1", Allow: false,
		Scope: consent.Scope{Purpose: event.PurposeHealthcareTreatment},
	})
	if err != nil {
		t.Fatalf("RecordConsent: %v", err)
	}
	if stored.Seq == 0 {
		t.Error("stored directive has no seq")
	}
	_, err = r.client.RequestDetails(context.Background(), &event.DetailRequest{
		Requester: "family-doctor", Class: schema.ClassBloodTest,
		EventID: gid, Purpose: event.PurposeHealthcareTreatment,
	})
	if !errors.Is(err, core.ErrConsentDeny) {
		t.Errorf("consent deny over the wire = %v", err)
	}
}

func TestCatalogEndpoint(t *testing.T) {
	r := newRig(t)
	resp, err := http.Get(r.ctrlServer.URL + "/ws/catalog")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	body := buf.String()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("catalog status = %d", resp.StatusCode)
	}
	for _, want := range []string{"<catalog>", "hospital.blood-test", "aids-test"} {
		if !strings.Contains(body, want) {
			t.Errorf("catalog missing %q", want)
		}
	}
}

func TestBadRequestHandling(t *testing.T) {
	r := newRig(t)
	for _, path := range []string{"/ws/publish", "/ws/subscribe", "/ws/details", "/ws/inquire", "/ws/consent", "/ws/policy"} {
		resp, err := http.Post(r.ctrlServer.URL+path, "application/xml", strings.NewReader("not xml"))
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status = %d, want 400", path, resp.StatusCode)
		}
	}
	// Wrong method.
	resp, err := http.Get(r.ctrlServer.URL + "/ws/publish")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		t.Error("GET /ws/publish succeeded")
	}
}

func TestRemoteGatewayDirect(t *testing.T) {
	r := newRig(t)
	d := event.NewDetail(schema.ClassBloodTest, "src-9", "hospital").
		Set("patient-id", "PRS-9").
		Set("exam-date", "2010-06-01").
		Set("hemoglobin", "11.0").
		Set("aids-test", "positive")
	if err := r.gw.Persist(d); err != nil {
		t.Fatal(err)
	}
	remote := NewRemoteGateway(r.gwServer.URL, nil)
	got, err := remote.GetResponse("src-9", []event.FieldName{"patient-id"})
	if err != nil {
		t.Fatalf("GetResponse: %v", err)
	}
	if !got.ExposesOnly([]event.FieldName{"patient-id"}) {
		t.Error("remote gateway response not privacy safe")
	}
	if _, err := remote.GetResponse("src-ghost", []event.FieldName{"patient-id"}); !errors.Is(err, gateway.ErrNotFound) {
		t.Errorf("remote miss = %v", err)
	}
}

func TestNotificationReceiverRejectsGarbage(t *testing.T) {
	rc := httptest.NewServer(NewNotificationReceiver(func(*event.Notification) {
		t.Error("handler invoked for garbage")
	}))
	defer rc.Close()
	resp, err := http.Post(rc.URL, "application/xml", strings.NewReader("garbage"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("status = %d", resp.StatusCode)
	}
	// Wrong method.
	resp2, err := http.Get(rc.URL)
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET status = %d", resp2.StatusCode)
	}
}

func TestClientCatalog(t *testing.T) {
	r := newRig(t)
	schemas, err := r.client.Catalog(context.Background())
	if err != nil {
		t.Fatalf("Catalog: %v", err)
	}
	if len(schemas) != 1 || schemas[0].Class() != schema.ClassBloodTest {
		t.Fatalf("Catalog = %v", schemas)
	}
	if !schemas[0].Has("aids-test") {
		t.Error("fetched schema lost fields")
	}
	if f, _ := schemas[0].Field("hemoglobin"); f.Type != schema.Float {
		t.Error("fetched schema lost field types")
	}
}

func TestRemoteGatewayPersist(t *testing.T) {
	r := newRig(t)
	remote := NewRemoteGateway(r.gwServer.URL, nil)
	d := event.NewDetail(schema.ClassBloodTest, "src-remote", "hospital").
		Set("patient-id", "PRS-77").
		Set("exam-date", "2010-06-02").
		Set("hemoglobin", "15.0")
	if err := remote.Persist(context.Background(), d); err != nil {
		t.Fatalf("Persist: %v", err)
	}
	got, err := remote.GetResponse("src-remote", []event.FieldName{"patient-id"})
	if err != nil {
		t.Fatalf("GetResponse after remote persist: %v", err)
	}
	if v, _ := got.Get("patient-id"); v != "PRS-77" {
		t.Errorf("patient-id = %q", v)
	}
	// Schema validation still applies remotely.
	bad := event.NewDetail(schema.ClassBloodTest, "src-bad", "hospital").
		Set("hemoglobin", "not-a-number")
	if err := remote.Persist(context.Background(), bad); err == nil {
		t.Error("remote persist accepted schema-invalid detail")
	}
}

func TestPendingRequestsOverTheWire(t *testing.T) {
	r := newRig(t)
	gid := r.produce(t, "src-1", "PRS-1")
	// Denied for lack of policy: queued for the hospital.
	r.client.RequestDetails(context.Background(), &event.DetailRequest{
		Requester: "family-doctor", Class: schema.ClassBloodTest,
		EventID: gid, Purpose: event.PurposeHealthcareTreatment,
	})
	pending, err := r.client.PendingRequests(context.Background(), "hospital")
	if err != nil {
		t.Fatalf("PendingRequests: %v", err)
	}
	if len(pending) != 1 {
		t.Fatalf("pending = %d", len(pending))
	}
	p := pending[0]
	if p.Actor != "family-doctor" || p.Class != schema.ClassBloodTest ||
		p.Purpose != event.PurposeHealthcareTreatment || p.Count != 1 {
		t.Errorf("pending entry = %+v", p)
	}
	if p.FirstAt.IsZero() || p.LastAt.Before(p.FirstAt) {
		t.Errorf("timestamps = %v..%v", p.FirstAt, p.LastAt)
	}
	// Defining the policy remotely resolves it.
	r.doctorPolicy(t)
	pending, err = r.client.PendingRequests(context.Background(), "hospital")
	if err != nil || len(pending) != 0 {
		t.Errorf("pending after policy = %d, %v", len(pending), err)
	}
	// Missing producer parameter is a bad request.
	resp, err := http.Get(r.ctrlServer.URL + "/ws/pending")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("missing producer = %d", resp.StatusCode)
	}
}

func TestStatsEndpoint(t *testing.T) {
	r := newRig(t)
	r.doctorPolicy(t)
	gid := r.produce(t, "src-1", "PRS-1")
	r.client.RequestDetails(context.Background(), &event.DetailRequest{
		Requester: "family-doctor", Class: schema.ClassBloodTest,
		EventID: gid, Purpose: event.PurposeHealthcareTreatment,
	})
	st, err := r.client.Stats(context.Background())
	if err != nil {
		t.Fatalf("Stats: %v", err)
	}
	if st.Published != 1 || st.DetailPermits != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestAuditEndpointUnauthenticated(t *testing.T) {
	r := newRig(t)
	r.doctorPolicy(t)
	gid := r.produce(t, "src-1", "PRS-1")
	r.client.RequestDetails(context.Background(), &event.DetailRequest{
		Requester: "family-doctor", Class: schema.ClassBloodTest,
		EventID: gid, Purpose: event.PurposeHealthcareTreatment,
	})
	resp, err := http.Get(r.ctrlServer.URL + "/ws/audit?kind=detail-request&outcome=permit")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d: %s", resp.StatusCode, buf.String())
	}
	body := buf.String()
	for _, want := range []string{"<auditRecords>", "family-doctor", "permit", "healthcare-treatment"} {
		if !strings.Contains(body, want) {
			t.Errorf("audit response missing %q:\n%s", want, body)
		}
	}
	// Bad limit.
	resp2, _ := http.Get(r.ctrlServer.URL + "/ws/audit?limit=banana")
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusBadRequest {
		t.Errorf("bad limit status = %d", resp2.StatusCode)
	}
}

func TestPoliciesListingAndExport(t *testing.T) {
	r := newRig(t)
	stored := r.doctorPolicy(t)
	got, err := r.client.Policies(context.Background(), "hospital")
	if err != nil {
		t.Fatalf("Policies: %v", err)
	}
	if len(got) != 1 || got[0].ID != stored.ID || len(got[0].Fields) != len(stored.Fields) {
		t.Fatalf("Policies = %+v", got)
	}
	// The fetched corpus compiles to an exportable PolicySet.
	ps, err := xacml.CompileProducerSet("hospital", got)
	if err != nil {
		t.Fatalf("CompileProducerSet: %v", err)
	}
	data, err := xacml.EncodeSet(ps)
	if err != nil {
		t.Fatalf("EncodeSet: %v", err)
	}
	if _, err := xacml.DecodeSet(data); err != nil {
		t.Fatalf("DecodeSet: %v", err)
	}
	// Missing producer param.
	resp, _ := http.Get(r.ctrlServer.URL + "/ws/policies")
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("missing producer = %d", resp.StatusCode)
	}
	// Unknown producer: empty list, not an error.
	empty, err := r.client.Policies(context.Background(), "ghost")
	if err != nil || len(empty) != 0 {
		t.Errorf("unknown producer = %d, %v", len(empty), err)
	}
}
