package transport

import (
	"bytes"
	"context"
	"encoding/xml"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"time"

	"repro/internal/cluster"
	"repro/internal/consent"
	"repro/internal/enforcer"
	"repro/internal/event"
	"repro/internal/index"
	"repro/internal/policy"
	"repro/internal/resilience"
	"repro/internal/schema"
	"repro/internal/telemetry"
)

// DefaultHTTPTimeout bounds each HTTP attempt of the transport clients
// when the caller supplies no http.Client of its own.
const DefaultHTTPTimeout = 10 * time.Second

// Option configures a Client or RemoteGateway.
type Option func(*clientOptions)

type clientOptions struct {
	timeout  time.Duration
	retrier  *resilience.Retrier
	breakers *resilience.Group
	codec    event.Codec
}

// NewTunedTransport returns an http.Transport configured for the
// platform's steady-state traffic shape: many small requests to a
// handful of hosts over persistent connections. The default transport's
// 2 idle connections per host force a TCP handshake under any
// concurrency; the platform clients (and the controller's callback
// deliverer) keep a deep warm pool instead so a saturation publish run
// never churns connections.
func NewTunedTransport() *http.Transport {
	var tr *http.Transport
	if base, ok := http.DefaultTransport.(*http.Transport); ok {
		tr = base.Clone()
	} else {
		tr = &http.Transport{}
	}
	tr.MaxIdleConns = 256
	tr.MaxIdleConnsPerHost = 64
	tr.IdleConnTimeout = 90 * time.Second
	return tr
}

// WithCodec sets the wire codec the client encodes its hot-path
// messages with (publish bodies, detail requests, subscribe requests)
// and asks the server to answer in. Nil or unset means event.XML — the
// default wire format; responses are sniffed by frame magic, so a
// server that ignores the negotiation still interoperates.
func WithCodec(c event.Codec) Option {
	return func(o *clientOptions) { o.codec = c }
}

// WithTimeout sets the per-attempt HTTP timeout used when no custom
// http.Client is supplied (callers providing their own client own its
// timeout). The retrier multiplies attempts; each one is bounded by
// this, and the caller's context bounds the whole call.
func WithTimeout(d time.Duration) Option {
	return func(o *clientOptions) { o.timeout = d }
}

// WithRetrier makes the client retry transient failures (connection
// errors, 5xx, truncated responses) under the retrier's policy. Without
// it every failure surfaces immediately, as before.
func WithRetrier(r *resilience.Retrier) Option {
	return func(o *clientOptions) { o.retrier = r }
}

// WithBreakerGroup guards every route with a circuit breaker from the
// group (one breaker per endpoint path). While a breaker is open, calls
// fail fast with an error satisfying errors.Is(err, resilience.ErrOpen).
func WithBreakerGroup(g *resilience.Group) Option {
	return func(o *clientOptions) { o.breakers = g }
}

func applyOptions(opts []Option) clientOptions {
	o := clientOptions{timeout: DefaultHTTPTimeout}
	for _, opt := range opts {
		opt(&o)
	}
	if o.codec == nil {
		o.codec = event.XML
	}
	return o
}

// breakerFailure classifies an attempt outcome for the circuit breaker:
// transport-level failures (connection errors, 5xx, truncated bodies)
// count against the endpoint; application-level faults are successes —
// the endpoint answered. A source-unavailable fault is transient but
// names a failure *behind* the answering endpoint, so it does not trip
// the breaker of the hop that reported it.
func breakerFailure(err error) bool {
	return err != nil && resilience.Retryable(err) &&
		!errors.Is(err, enforcer.ErrSourceUnavailable) &&
		!errors.Is(err, resilience.ErrOpen)
}

// acquire obtains a breaker permit for endpoint when breakers are
// configured; the returned release is nil-safe to call.
func acquire(g *resilience.Group, endpoint string) (func(bool), error) {
	if g == nil {
		return func(bool) {}, nil
	}
	return g.Breaker(endpoint).Acquire()
}

// Client is the consumer/producer-side SDK for a remote data controller.
// Its methods mirror the controller API over the web-service binding, and
// they surface the same sentinel errors (errors.Is works transparently).
// Every method takes a context bounding the whole call, retries included.
//
// By default the client is as fragile as the network: supply WithRetrier
// and WithBreakerGroup to make it fault-tolerant.
type Client struct {
	base     string
	http     *http.Client
	token    string // optional bearer token (see WithToken)
	codec    event.Codec
	retrier  *resilience.Retrier
	breakers *resilience.Group
}

// NewClient creates a client for the controller at base (e.g.
// "http://controller:8080"). httpClient may be nil for a default whose
// timeout is WithTimeout (10 seconds unless overridden) and whose
// transport keeps a deep keep-alive pool (NewTunedTransport).
func NewClient(base string, httpClient *http.Client, opts ...Option) *Client {
	o := applyOptions(opts)
	if httpClient == nil {
		httpClient = &http.Client{Timeout: o.timeout, Transport: NewTunedTransport()}
	}
	return &Client{base: base, http: httpClient, codec: o.codec, retrier: o.retrier, breakers: o.breakers}
}

// endpointOf strips the query so breaker names stay per-route.
func endpointOf(path string) string {
	if i := strings.IndexByte(path, '?'); i >= 0 {
		return path[:i]
	}
	return path
}

// roundTrip performs one HTTP attempt and returns the raw 2xx body.
// Connection-level failures are marked transient for the retrier.
// contentType labels the request body and doubles as the Accept
// preference, so one header pair negotiates both directions.
func (c *Client) roundTrip(ctx context.Context, method, path, contentType string, body []byte) ([]byte, error) {
	var reader io.Reader
	if body != nil {
		// A fresh reader per attempt: retries must resend the full body.
		reader = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, reader)
	if err != nil {
		return nil, fmt.Errorf("transport: %s %s: %w", method, path, err)
	}
	if body != nil {
		req.Header.Set("Content-Type", contentType)
		req.Header.Set("Accept", contentType)
	}
	if c.token != "" {
		req.Header.Set("Authorization", "Bearer "+c.token)
	}
	setTraceHeaders(req, ctx)
	resp, err := c.http.Do(req)
	if err != nil {
		if ctxErr := ctx.Err(); ctxErr != nil {
			// The caller's deadline elapsed: not retryable, the budget
			// is gone.
			return nil, fmt.Errorf("transport: %s %s: %w", method, path, err)
		}
		return nil, resilience.MarkRetryable(fmt.Errorf("transport: %s %s: %w", method, path, err))
	}
	return readResult(resp)
}

// setTraceHeaders stamps the outgoing request with the context's trace:
// the legacy X-Trace-Id plus the W3C traceparent carrying the current
// span ID, so the server side parents its spans under the caller's.
func setTraceHeaders(req *http.Request, ctx context.Context) {
	trace := telemetry.TraceFrom(ctx)
	if trace == "" {
		return
	}
	req.Header.Set(telemetry.TraceHeader, trace)
	req.Header.Set(telemetry.TraceparentHeader,
		telemetry.FormatTraceparent(trace, telemetry.SpanIDFrom(ctx)))
}

// call runs one logical operation: breaker permit, HTTP attempt, response
// decode, outcome classification — repeated under the retry policy when
// configured. decode (nil to skip) runs INSIDE the loop: a garbled or
// truncated 2xx body is a transient transfer failure and must trigger a
// fresh attempt, not a permanent error.
func (c *Client) call(ctx context.Context, method, path string, body []byte, decode func([]byte) error) error {
	return c.callCT(ctx, method, path, event.ContentTypeXML, body, decode)
}

// callCT is call with an explicit request content type (the negotiated
// codec's on the hot routes, XML everywhere else).
func (c *Client) callCT(ctx context.Context, method, path, contentType string, body []byte, decode func([]byte) error) error {
	endpoint := endpointOf(path)
	return c.retrier.Do(ctx, endpoint, func(ctx context.Context) error {
		release, err := acquire(c.breakers, endpoint)
		if err != nil {
			return err
		}
		err = func() error {
			data, err := c.roundTrip(ctx, method, path, contentType, body)
			if err != nil {
				return err
			}
			if decode == nil {
				return nil
			}
			return decode(data)
		}()
		release(breakerFailure(err))
		return err
	})
}

// decodeXMLInto adapts xml.Unmarshal for call: decode failures of a 2xx
// body are marked transient (truncated or garbled transfer).
func decodeXMLInto(out any) func([]byte) error {
	if out == nil {
		return nil
	}
	return func(data []byte) error {
		if err := xml.Unmarshal(data, out); err != nil {
			return resilience.MarkRetryable(fmt.Errorf("transport: decode response: %w", err))
		}
		return nil
	}
}

// post sends an XML body and decodes the XML response into out.
func (c *Client) post(ctx context.Context, path string, body []byte, out any) error {
	return c.call(ctx, http.MethodPost, path, body, decodeXMLInto(out))
}

// get fetches path and decodes the XML response into out.
func (c *Client) get(ctx context.Context, path string, out any) error {
	return c.call(ctx, http.MethodGet, path, nil, decodeXMLInto(out))
}

// Publish sends a notification and returns the assigned global event id.
// The body travels in the client's negotiated codec (WithCodec); the ack
// is decoded by frame sniffing, so either answer format works.
func (c *Client) Publish(ctx context.Context, n *event.Notification) (event.GlobalID, error) {
	if n.Trace != "" && telemetry.TraceFrom(ctx) == "" {
		ctx = telemetry.WithTrace(ctx, n.Trace)
	}
	body, err := c.codec.EncodeNotification(n)
	if err != nil {
		return "", err
	}
	var gid event.GlobalID
	err = c.callCT(ctx, http.MethodPost, "/ws/publish", c.codec.ContentType(), body, func(data []byte) error {
		g, derr := decodeAnyPublishResponse(data)
		if derr != nil {
			return resilience.MarkRetryable(fmt.Errorf("transport: decode response: %w", derr))
		}
		gid = g
		return nil
	})
	if err != nil {
		return "", err
	}
	return gid, nil
}

// PublishBatch publishes the notifications concurrently over the
// client's keep-alive connection pool — the request-pipelining form of
// Publish for producers with a backlog (the saturation benchmark, the
// outbox drain). Results are positional: ids[i] answers ns[i], and a
// failed publish leaves its id empty with the first error returned
// after every in-flight request settles. conns bounds the concurrent
// requests (0 means 8, matched to the tuned transport's per-host pool).
func (c *Client) PublishBatch(ctx context.Context, ns []*event.Notification, conns int) ([]event.GlobalID, error) {
	if conns <= 0 {
		conns = 8
	}
	if conns > len(ns) {
		conns = len(ns)
	}
	ids := make([]event.GlobalID, len(ns))
	errs := make([]error, len(ns))
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < conns; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				ids[i], errs[i] = c.Publish(ctx, ns[i])
			}
		}()
	}
	for i := range ns {
		next <- i
	}
	close(next)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return ids, err
		}
	}
	return ids, nil
}

// Subscribe registers a callback URL for the notifications of a class and
// returns the subscription id. The caller must run a NotificationReceiver
// (or equivalent endpoint) at the callback URL. The subscription carries
// the client's codec, so callback POSTs arrive in the same format the
// consumer speaks.
func (c *Client) Subscribe(ctx context.Context, actor event.Actor, class event.ClassID, callbackURL string) (string, error) {
	req := subscribeRequest{Actor: actor, Class: class, Callback: callbackURL}
	var body []byte
	var err error
	if c.codec == event.Binary {
		req.Codec = c.codec.Name()
		body = encodeSubscribeRequestFrame(&req)
	} else {
		body, err = encodeXML(&req)
		if err != nil {
			return "", err
		}
	}
	var id string
	err = c.callCT(ctx, http.MethodPost, "/ws/subscribe", c.codec.ContentType(), body, func(data []byte) error {
		sid, derr := decodeAnySubscribeResponse(data)
		if derr != nil {
			return resilience.MarkRetryable(fmt.Errorf("transport: decode response: %w", derr))
		}
		id = sid
		return nil
	})
	if err != nil {
		return "", err
	}
	return id, nil
}

// SubscriptionActive probes whether a subscription id is still live on
// the controller. Subscriptions are controller memory: a restart loses
// them silently, so consumers poll this and re-subscribe on false. An
// error reports only the probe failing (controller unreachable), never
// a missing subscription.
func (c *Client) SubscriptionActive(ctx context.Context, id string) (bool, error) {
	var out subscribeResponse
	err := c.get(ctx, "/ws/subscription?id="+id, &out)
	switch {
	case err == nil:
		return true, nil
	case errors.Is(err, ErrUnknownSubscription):
		return false, nil
	default:
		return false, err
	}
}

// RequestDetails resolves a request for details against the remote
// controller and returns the privacy-aware detail. When the producer
// behind the event is down, the error satisfies
// errors.Is(err, enforcer.ErrSourceUnavailable) — a deferred answer,
// distinct from a policy denial.
func (c *Client) RequestDetails(ctx context.Context, r *event.DetailRequest) (*event.Detail, error) {
	if r.Trace != "" && telemetry.TraceFrom(ctx) == "" {
		// A quoted trace (continuing the originating notification's flow)
		// also rides the request headers, so the controller-side server
		// span joins the same trace instead of minting a fresh one.
		ctx = telemetry.WithTrace(ctx, r.Trace)
	}
	body, err := c.codec.EncodeDetailRequest(r)
	if err != nil {
		return nil, err
	}
	var d *event.Detail
	err = c.callCT(ctx, http.MethodPost, "/ws/details", c.codec.ContentType(), body, func(data []byte) error {
		var derr error
		if event.IsBinaryFrame(data) {
			d, derr = event.Binary.DecodeDetail(data)
		} else {
			d, derr = event.XML.DecodeDetail(data)
		}
		if derr != nil {
			return resilience.MarkRetryable(fmt.Errorf("transport: decode response: %w", derr))
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return d, nil
}

// InquireIndex queries the remote events index.
func (c *Client) InquireIndex(ctx context.Context, actor event.Actor, q index.Inquiry) ([]*event.Notification, error) {
	req := inquiryRequest{
		Actor:    actor,
		PersonID: q.PersonID,
		Class:    q.Class,
		Producer: q.Producer,
		Limit:    q.Limit,
	}
	if !q.From.IsZero() {
		req.From = q.From.UTC().Format(time.RFC3339Nano)
	}
	if !q.To.IsZero() {
		req.To = q.To.UTC().Format(time.RFC3339Nano)
	}
	body, err := encodeXML(&req)
	if err != nil {
		return nil, err
	}
	var out inquiryResponse
	if err := c.post(ctx, "/ws/inquire", body, &out); err != nil {
		return nil, err
	}
	notifications := make([]*event.Notification, 0, len(out.Notifications))
	for _, raw := range out.Notifications {
		n, err := event.DecodeNotification([]byte(raw))
		if err != nil {
			return nil, err
		}
		notifications = append(notifications, n)
	}
	return notifications, nil
}

// DefinePolicy submits an elicited privacy policy and returns the stored
// form (with its assigned id).
func (c *Client) DefinePolicy(ctx context.Context, p *policy.Policy) (*policy.Policy, error) {
	body, err := policy.Encode(p)
	if err != nil {
		return nil, err
	}
	var stored *policy.Policy
	err = c.call(ctx, http.MethodPost, "/ws/policy", body, func(data []byte) error {
		p, err := policy.Decode(data)
		if err != nil {
			return resilience.MarkRetryable(err)
		}
		stored = p
		return nil
	})
	return stored, err
}

// Catalog fetches the event catalog: the schemas of every declared
// class, as a candidate consumer browses them before subscribing.
func (c *Client) Catalog(ctx context.Context) ([]*schema.Schema, error) {
	var out []*schema.Schema
	err := c.call(ctx, http.MethodGet, "/ws/catalog", nil, func(data []byte) error {
		var wrapper struct {
			Schemas []catalogSchemaXML `xml:"eventSchema"`
		}
		if err := xml.Unmarshal(data, &wrapper); err != nil {
			return resilience.MarkRetryable(fmt.Errorf("transport: decode catalog: %w", err))
		}
		out = make([]*schema.Schema, 0, len(wrapper.Schemas))
		for _, raw := range wrapper.Schemas {
			element := fmt.Sprintf(`<eventSchema class=%q version="%d">%s</eventSchema>`,
				raw.Class, raw.Version, raw.Raw)
			s, err := schema.Decode([]byte(element))
			if err != nil {
				return resilience.MarkRetryable(err)
			}
			out = append(out, s)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// catalogSchemaXML captures each nested eventSchema element (attributes
// plus verbatim inner XML) so schema.Decode can re-validate it.
type catalogSchemaXML struct {
	Class   string `xml:"class,attr"`
	Version int    `xml:"version,attr"`
	Raw     []byte `xml:",innerxml"`
}

// PendingRequest mirrors core.PendingRequest over the wire.
type PendingRequest struct {
	Actor   event.Actor
	Class   event.ClassID
	Purpose event.Purpose
	Count   int
	FirstAt time.Time
	LastAt  time.Time
}

// PendingRequests polls the producer's unresolved access requests.
func (c *Client) PendingRequests(ctx context.Context, producer event.ProducerID) ([]PendingRequest, error) {
	var out struct {
		Requests []struct {
			Actor   event.Actor   `xml:"actor"`
			Class   event.ClassID `xml:"class"`
			Purpose event.Purpose `xml:"purpose"`
			Count   int           `xml:"count"`
			FirstAt string        `xml:"firstAt"`
			LastAt  string        `xml:"lastAt"`
		} `xml:"request"`
	}
	if err := c.get(ctx, "/ws/pending?producer="+string(producer), &out); err != nil {
		return nil, err
	}
	pending := make([]PendingRequest, 0, len(out.Requests))
	for _, r := range out.Requests {
		first, err := time.Parse(time.RFC3339Nano, r.FirstAt)
		if err != nil {
			return nil, fmt.Errorf("transport: pending firstAt: %w", err)
		}
		last, err := time.Parse(time.RFC3339Nano, r.LastAt)
		if err != nil {
			return nil, fmt.Errorf("transport: pending lastAt: %w", err)
		}
		pending = append(pending, PendingRequest{
			Actor: r.Actor, Class: r.Class, Purpose: r.Purpose,
			Count: r.Count, FirstAt: first, LastAt: last,
		})
	}
	return pending, nil
}

// Policies fetches a producer's stored policies (compact XML list).
func (c *Client) Policies(ctx context.Context, producer event.ProducerID) ([]*policy.Policy, error) {
	var out []*policy.Policy
	err := c.call(ctx, http.MethodGet, "/ws/policies?producer="+string(producer), nil, func(data []byte) error {
		var wrapper struct {
			Policies []policyRawXML `xml:"privacyPolicy"`
		}
		if err := xml.Unmarshal(data, &wrapper); err != nil {
			return resilience.MarkRetryable(fmt.Errorf("transport: decode policies: %w", err))
		}
		out = make([]*policy.Policy, 0, len(wrapper.Policies))
		for _, raw := range wrapper.Policies {
			element := fmt.Sprintf(`<privacyPolicy id=%q>%s</privacyPolicy>`, raw.ID, raw.Raw)
			p, err := policy.Decode([]byte(element))
			if err != nil {
				return resilience.MarkRetryable(err)
			}
			out = append(out, p)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// policyRawXML captures a nested privacyPolicy element verbatim.
type policyRawXML struct {
	ID  string `xml:"id,attr"`
	Raw []byte `xml:",innerxml"`
}

// Stats mirrors core.Stats over the wire.
type Stats struct {
	Published           uint64 `xml:"published"`
	Delivered           uint64 `xml:"delivered"`
	ConsentDrops        uint64 `xml:"consentDrops"`
	SubscriptionDenials uint64 `xml:"subscriptionDenials"`
	DetailPermits       uint64 `xml:"detailPermits"`
	DetailDenials       uint64 `xml:"detailDenials"`
	Inquiries           uint64 `xml:"inquiries"`
}

// Stats fetches the controller's operational counters.
func (c *Client) Stats(ctx context.Context) (Stats, error) {
	var out Stats
	if err := c.get(ctx, "/ws/stats", &out); err != nil {
		return Stats{}, err
	}
	return out, nil
}

// ShardMap fetches the controller's current shard map. A non-clustered
// controller answers the not-found fault
// (errors.Is(err, gateway.ErrNotFound)).
func (c *Client) ShardMap(ctx context.Context) (*cluster.Map, error) {
	var m *cluster.Map
	err := c.call(ctx, http.MethodGet, "/ws/shardmap", nil, func(data []byte) error {
		mm, derr := cluster.DecodeMapFrame(data)
		if derr != nil {
			return resilience.MarkRetryable(fmt.Errorf("transport: decode shard map: %w", derr))
		}
		m = mm
		return nil
	})
	if err != nil {
		return nil, err
	}
	return m, nil
}

// ReplStatus fetches the node's replication snapshot: role, fencing
// epoch, and (on a primary with an attached shipper) follower lag. The
// failover runbook reads it to pick the most caught-up replica.
func (c *Client) ReplStatus(ctx context.Context) (ReplStatus, error) {
	var out ReplStatus
	if err := c.get(ctx, "/ws/replstatus", &out); err != nil {
		return ReplStatus{}, err
	}
	return out, nil
}

// Promote asks a read replica to assume the primary role at the given
// fencing epoch. A node already primary answers a conflict
// (errors.Is(err, core.ErrNotReplica) does not survive the wire — the
// fault is a plain bad-request conflict).
func (c *Client) Promote(ctx context.Context, epoch uint64) (ReplStatus, error) {
	body, err := encodeXML(&promoteRequest{Epoch: epoch})
	if err != nil {
		return ReplStatus{}, err
	}
	var out ReplStatus
	if err := c.post(ctx, "/ws/promote", body, &out); err != nil {
		return ReplStatus{}, err
	}
	return out, nil
}

// RecordConsent submits a consent directive.
func (c *Client) RecordConsent(ctx context.Context, d consent.Directive) (consent.Directive, error) {
	body, err := encodeXML(&consentDirectiveXML{
		PersonID: d.PersonID, Allow: d.Allow,
		Class: d.Scope.Class, Consumer: d.Scope.Consumer, Purpose: d.Scope.Purpose,
	})
	if err != nil {
		return consent.Directive{}, err
	}
	var out consentDirectiveXML
	if err := c.post(ctx, "/ws/consent", body, &out); err != nil {
		return consent.Directive{}, err
	}
	return consent.Directive{
		Seq:      out.Seq,
		PersonID: out.PersonID,
		Allow:    out.Allow,
		Scope:    consent.Scope{Class: out.Class, Consumer: out.Consumer, Purpose: out.Purpose},
	}, nil
}
