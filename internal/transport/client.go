package transport

import (
	"bytes"
	"encoding/xml"
	"fmt"
	"io"
	"net/http"
	"time"

	"repro/internal/consent"
	"repro/internal/event"
	"repro/internal/index"
	"repro/internal/policy"
	"repro/internal/schema"
)

// Client is the consumer/producer-side SDK for a remote data controller.
// Its methods mirror the controller API over the web-service binding, and
// they surface the same sentinel errors (errors.Is works transparently).
type Client struct {
	base  string
	http  *http.Client
	token string // optional bearer token (see WithToken)
}

// NewClient creates a client for the controller at base (e.g.
// "http://controller:8080"). httpClient may be nil for a default with a
// 10-second timeout.
func NewClient(base string, httpClient *http.Client) *Client {
	if httpClient == nil {
		httpClient = &http.Client{Timeout: 10 * time.Second}
	}
	return &Client{base: base, http: httpClient}
}

func (c *Client) do(method, path string, body []byte) (*http.Response, error) {
	var reader io.Reader
	if body != nil {
		reader = bytes.NewReader(body)
	}
	req, err := http.NewRequest(method, c.base+path, reader)
	if err != nil {
		return nil, fmt.Errorf("transport: %s %s: %w", method, path, err)
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/xml")
	}
	if c.token != "" {
		req.Header.Set("Authorization", "Bearer "+c.token)
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return nil, fmt.Errorf("transport: %s %s: %w", method, path, err)
	}
	return resp, nil
}

func (c *Client) post(path string, body []byte, out any) error {
	resp, err := c.do(http.MethodPost, path, body)
	if err != nil {
		return err
	}
	return decodeResponse(resp, out)
}

// Publish sends a notification and returns the assigned global event id.
func (c *Client) Publish(n *event.Notification) (event.GlobalID, error) {
	body, err := event.EncodeNotification(n)
	if err != nil {
		return "", err
	}
	var out publishResponse
	if err := c.post("/ws/publish", body, &out); err != nil {
		return "", err
	}
	return out.EventID, nil
}

// Subscribe registers a callback URL for the notifications of a class and
// returns the subscription id. The caller must run a NotificationReceiver
// (or equivalent endpoint) at the callback URL.
func (c *Client) Subscribe(actor event.Actor, class event.ClassID, callbackURL string) (string, error) {
	body, err := encodeXML(&subscribeRequest{Actor: actor, Class: class, Callback: callbackURL})
	if err != nil {
		return "", err
	}
	var out subscribeResponse
	if err := c.post("/ws/subscribe", body, &out); err != nil {
		return "", err
	}
	return out.ID, nil
}

// RequestDetails resolves a request for details against the remote
// controller and returns the privacy-aware detail.
func (c *Client) RequestDetails(r *event.DetailRequest) (*event.Detail, error) {
	body, err := encodeXML(r)
	if err != nil {
		return nil, err
	}
	var d event.Detail
	if err := c.post("/ws/details", body, &d); err != nil {
		return nil, err
	}
	return &d, nil
}

// InquireIndex queries the remote events index.
func (c *Client) InquireIndex(actor event.Actor, q index.Inquiry) ([]*event.Notification, error) {
	req := inquiryRequest{
		Actor:    actor,
		PersonID: q.PersonID,
		Class:    q.Class,
		Producer: q.Producer,
		Limit:    q.Limit,
	}
	if !q.From.IsZero() {
		req.From = q.From.UTC().Format(time.RFC3339Nano)
	}
	if !q.To.IsZero() {
		req.To = q.To.UTC().Format(time.RFC3339Nano)
	}
	body, err := encodeXML(&req)
	if err != nil {
		return nil, err
	}
	var out inquiryResponse
	if err := c.post("/ws/inquire", body, &out); err != nil {
		return nil, err
	}
	notifications := make([]*event.Notification, 0, len(out.Notifications))
	for _, raw := range out.Notifications {
		n, err := event.DecodeNotification([]byte(raw))
		if err != nil {
			return nil, err
		}
		notifications = append(notifications, n)
	}
	return notifications, nil
}

// DefinePolicy submits an elicited privacy policy and returns the stored
// form (with its assigned id).
func (c *Client) DefinePolicy(p *policy.Policy) (*policy.Policy, error) {
	body, err := policy.Encode(p)
	if err != nil {
		return nil, err
	}
	resp, err := c.do(http.MethodPost, "/ws/policy", body)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		var f Fault
		if xmlErr := decodeFault(buf.Bytes(), &f); xmlErr == nil && f.Code != "" {
			return nil, errorFor(&f)
		}
		return nil, fmt.Errorf("transport: http %d: %s", resp.StatusCode, buf.String())
	}
	return policy.Decode(buf.Bytes())
}

// Catalog fetches the event catalog: the schemas of every declared
// class, as a candidate consumer browses them before subscribing.
func (c *Client) Catalog() ([]*schema.Schema, error) {
	resp, err := c.do(http.MethodGet, "/ws/catalog", nil)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("transport: catalog http %d", resp.StatusCode)
	}
	var wrapper struct {
		Schemas []catalogSchemaXML `xml:"eventSchema"`
	}
	if err := xml.Unmarshal(buf.Bytes(), &wrapper); err != nil {
		return nil, fmt.Errorf("transport: decode catalog: %w", err)
	}
	out := make([]*schema.Schema, 0, len(wrapper.Schemas))
	for _, raw := range wrapper.Schemas {
		element := fmt.Sprintf(`<eventSchema class=%q version="%d">%s</eventSchema>`,
			raw.Class, raw.Version, raw.Raw)
		s, err := schema.Decode([]byte(element))
		if err != nil {
			return nil, err
		}
		out = append(out, s)
	}
	return out, nil
}

// catalogSchemaXML captures each nested eventSchema element (attributes
// plus verbatim inner XML) so schema.Decode can re-validate it.
type catalogSchemaXML struct {
	Class   string `xml:"class,attr"`
	Version int    `xml:"version,attr"`
	Raw     []byte `xml:",innerxml"`
}

// PendingRequest mirrors core.PendingRequest over the wire.
type PendingRequest struct {
	Actor   event.Actor
	Class   event.ClassID
	Purpose event.Purpose
	Count   int
	FirstAt time.Time
	LastAt  time.Time
}

// PendingRequests polls the producer's unresolved access requests.
func (c *Client) PendingRequests(producer event.ProducerID) ([]PendingRequest, error) {
	resp, err := c.do(http.MethodGet, "/ws/pending?producer="+string(producer), nil)
	if err != nil {
		return nil, err
	}
	var out struct {
		Requests []struct {
			Actor   event.Actor   `xml:"actor"`
			Class   event.ClassID `xml:"class"`
			Purpose event.Purpose `xml:"purpose"`
			Count   int           `xml:"count"`
			FirstAt string        `xml:"firstAt"`
			LastAt  string        `xml:"lastAt"`
		} `xml:"request"`
	}
	if err := decodeResponse(resp, &out); err != nil {
		return nil, err
	}
	pending := make([]PendingRequest, 0, len(out.Requests))
	for _, r := range out.Requests {
		first, err := time.Parse(time.RFC3339Nano, r.FirstAt)
		if err != nil {
			return nil, fmt.Errorf("transport: pending firstAt: %w", err)
		}
		last, err := time.Parse(time.RFC3339Nano, r.LastAt)
		if err != nil {
			return nil, fmt.Errorf("transport: pending lastAt: %w", err)
		}
		pending = append(pending, PendingRequest{
			Actor: r.Actor, Class: r.Class, Purpose: r.Purpose,
			Count: r.Count, FirstAt: first, LastAt: last,
		})
	}
	return pending, nil
}

// Policies fetches a producer's stored policies (compact XML list).
func (c *Client) Policies(producer event.ProducerID) ([]*policy.Policy, error) {
	resp, err := c.do(http.MethodGet, "/ws/policies?producer="+string(producer), nil)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		var f Fault
		if xmlErr := decodeFault(buf.Bytes(), &f); xmlErr == nil && f.Code != "" {
			return nil, errorFor(&f)
		}
		return nil, fmt.Errorf("transport: policies http %d", resp.StatusCode)
	}
	var wrapper struct {
		Policies []policyRawXML `xml:"privacyPolicy"`
	}
	if err := xml.Unmarshal(buf.Bytes(), &wrapper); err != nil {
		return nil, fmt.Errorf("transport: decode policies: %w", err)
	}
	out := make([]*policy.Policy, 0, len(wrapper.Policies))
	for _, raw := range wrapper.Policies {
		element := fmt.Sprintf(`<privacyPolicy id=%q>%s</privacyPolicy>`, raw.ID, raw.Raw)
		p, err := policy.Decode([]byte(element))
		if err != nil {
			return nil, err
		}
		out = append(out, p)
	}
	return out, nil
}

// policyRawXML captures a nested privacyPolicy element verbatim.
type policyRawXML struct {
	ID  string `xml:"id,attr"`
	Raw []byte `xml:",innerxml"`
}

// Stats mirrors core.Stats over the wire.
type Stats struct {
	Published           uint64 `xml:"published"`
	Delivered           uint64 `xml:"delivered"`
	ConsentDrops        uint64 `xml:"consentDrops"`
	SubscriptionDenials uint64 `xml:"subscriptionDenials"`
	DetailPermits       uint64 `xml:"detailPermits"`
	DetailDenials       uint64 `xml:"detailDenials"`
	Inquiries           uint64 `xml:"inquiries"`
}

// Stats fetches the controller's operational counters.
func (c *Client) Stats() (Stats, error) {
	resp, err := c.do(http.MethodGet, "/ws/stats", nil)
	if err != nil {
		return Stats{}, err
	}
	var out Stats
	if err := decodeResponse(resp, &out); err != nil {
		return Stats{}, err
	}
	return out, nil
}

// RecordConsent submits a consent directive.
func (c *Client) RecordConsent(d consent.Directive) (consent.Directive, error) {
	body, err := encodeXML(&consentDirectiveXML{
		PersonID: d.PersonID, Allow: d.Allow,
		Class: d.Scope.Class, Consumer: d.Scope.Consumer, Purpose: d.Scope.Purpose,
	})
	if err != nil {
		return consent.Directive{}, err
	}
	var out consentDirectiveXML
	if err := c.post("/ws/consent", body, &out); err != nil {
		return consent.Directive{}, err
	}
	return consent.Directive{
		Seq:      out.Seq,
		PersonID: out.PersonID,
		Allow:    out.Allow,
		Scope:    consent.Scope{Class: out.Class, Consumer: out.Consumer, Purpose: out.Purpose},
	}, nil
}
