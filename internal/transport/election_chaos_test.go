package transport

// Self-healing failover chaos: a primary shipping to two replicas, each
// replica running an election manager over real campaign frames. The
// primary is killed mid-storm with no operator in the loop — the
// detectors must notice, exactly one replica must win a quorum and
// promote, acknowledged publishes must land exactly once on the winner,
// a deposed-epoch shipper must be fenced off, and the dead node's
// stores must rejoin byte-identically. A second storm cuts the
// candidate→voter links during the campaign window and demands zero
// promotions until the partition heals.

import (
	"bytes"
	"context"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/crypto"
	"repro/internal/election"
	"repro/internal/event"
	"repro/internal/index"
	"repro/internal/replication"
	"repro/internal/resilience"
	"repro/internal/schema"
)

// electionRig is one shard deployed for self-healing drills: a primary
// heartbeating WALs to two replicas, each replica campaigning through a
// partitionable dialer when the primary goes silent.
type electionRig struct {
	heartbeat time.Duration

	pri       *core.Controller
	priSrv    *httptest.Server
	priShip   *replication.Primary
	priStores []replication.NamedStore

	reps     [2]*core.Controller
	repSrvs  [2]*httptest.Server
	repURLs  [2]string
	stores   [2][]replication.NamedStore
	fols     [2]*replication.Follower
	mgrs     [2]*election.Manager
	shippers [2]atomic.Pointer[replication.Primary]

	part *resilience.Partitioner[net.Conn]
	v1   *cluster.Map
	// promotions records each auto-promotion as it happens (index, epoch).
	promoMu    sync.Mutex
	promotions []promotion
}

type promotion struct {
	replica int
	epoch   uint64
}

func newElectionRig(t *testing.T, seed int64) *electionRig {
	t.Helper()
	key := bytes.Repeat([]byte{7}, crypto.KeySize)
	rig := &electionRig{heartbeat: 20 * time.Millisecond}
	rig.part = resilience.NewPartitioner(func(addr string) (net.Conn, error) {
		return net.DialTimeout("tcp", addr, 2*time.Second)
	})

	rig.priSrv = httptest.NewUnstartedServer(nil)
	srvA := httptest.NewUnstartedServer(nil)
	srvB := httptest.NewUnstartedServer(nil)
	rig.repSrvs = [2]*httptest.Server{srvA, srvB}
	priURL := "http://" + rig.priSrv.Listener.Addr().String()
	for i, s := range rig.repSrvs {
		rig.repURLs[i] = "http://" + s.Listener.Addr().String()
	}
	v1, err := cluster.NewMap(1, 0, []cluster.ShardInfo{
		{ID: 0, Addr: priURL, Replicas: rig.repURLs[:], Epoch: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	rig.v1 = v1

	rig.pri, err = core.New(core.Config{
		DataDir: t.TempDir(), MasterKey: key, DefaultConsent: true,
		ShardID: 0, ShardMap: v1,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { rig.pri.Close() })
	for i := range rig.reps {
		rig.reps[i], err = core.New(core.Config{
			DataDir: t.TempDir(), MasterKey: key, DefaultConsent: true,
			Replica: true, ShardID: 0, ShardMap: v1,
		})
		if err != nil {
			t.Fatal(err)
		}
		rep := rig.reps[i]
		t.Cleanup(func() { rep.Close() })
		rig.stores[i], err = rep.ReplStores()
		if err != nil {
			t.Fatal(err)
		}
		rig.fols[i], err = replication.NewFollower("127.0.0.1:0", replication.FollowerConfig{
			Stores: rig.stores[i], Epoch: 1, OnApply: rep.OnReplicatedApply(),
		})
		if err != nil {
			t.Fatal(err)
		}
		fol := rig.fols[i]
		t.Cleanup(func() { fol.Close() })
	}

	rig.priStores, err = rig.pri.ReplStores()
	if err != nil {
		t.Fatal(err)
	}
	rig.priShip, err = replication.NewPrimary(replication.PrimaryConfig{
		Stores: rig.priStores, Epoch: 1, Quorum: true, HeartbeatEvery: rig.heartbeat,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { rig.priShip.Close() })
	rig.pri.AttachReplication(rig.priShip)
	for _, fol := range rig.fols {
		rig.priShip.AddFollower(fol.Addr())
	}

	// Election managers: each replica's electorate is the other replica;
	// cluster size 3 (the primary holds the third, non-voting-listener
	// seat), so a candidate needs its own durable claim plus the peer's
	// grant — a strict majority that one partitioned node can never fake.
	for i := range rig.reps {
		es, err := election.OpenEpochStore(filepath.Join(t.TempDir(), "election.epoch"))
		if err != nil {
			t.Fatal(err)
		}
		idx := i
		mgr, err := election.NewManager(election.Config{
			Peers:          []string{rig.fols[1-i].Addr()},
			ClusterSize:    3,
			HeartbeatEvery: rig.heartbeat,
			SuspectAfter:   300 * time.Millisecond,
			Phi:            4,
			LeaseFor:       400 * time.Millisecond,
			Backoff:        150 * time.Millisecond,
			Epochs:         es,
			CurrentEpoch:   rig.fols[i].Epoch,
			Offsets:        rig.fols[i].Offsets,
			Campaign: func(ctx context.Context, addr string, epoch uint64, cursors map[string]int64) (bool, uint64, error) {
				return replication.Campaign(ctx, rig.part.Dial, addr, epoch, cursors)
			},
			Promote:  func(epoch uint64) error { return rig.promote(idx, epoch) },
			Promoted: func() bool { return !rig.reps[idx].IsReplica() },
			Seed:     seed*2 + int64(i) + 1,
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(mgr.Close)
		rig.mgrs[i] = mgr
		rig.fols[i].SetContactHook(mgr.Observe)
		rig.fols[i].SetVoteHook(mgr.Vote)
	}

	if err := rig.pri.RegisterProducer("hospital", "Hospital"); err != nil {
		t.Fatal(err)
	}
	if err := rig.pri.RegisterConsumer("family-doctor", "Doctors"); err != nil {
		t.Fatal(err)
	}
	if err := rig.pri.DeclareClass("hospital", schema.BloodTest()); err != nil {
		t.Fatal(err)
	}
	if _, err := rig.pri.DefinePolicy(doctorBloodPolicy()); err != nil {
		t.Fatal(err)
	}

	rig.priSrv.Config = &http.Server{Handler: NewServer(rig.pri).SetReplication(rig.priShip)}
	rig.priSrv.Start()
	t.Cleanup(rig.priSrv.Close)
	for i, s := range rig.repSrvs {
		s.Config = &http.Server{Handler: NewServer(rig.reps[i]).SetFollower(rig.fols[i]).SetElection(rig.mgrs[i].Status)}
		s.Start()
		t.Cleanup(s.Close)
	}

	// Quorum mode already barriers every publish on a majority fsync,
	// but provisioning must reach BOTH replicas before the kill — either
	// may win the election.
	deadline := time.Now().Add(5 * time.Second)
	for {
		caught := true
		for i := range rig.fols {
			offs := rig.fols[i].Offsets()
			for _, ns := range rig.priStores {
				if offs[ns.Name] != ns.Store.WALOffset() {
					caught = false
				}
			}
		}
		if caught {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("replicas never caught up with provisioning")
		}
		time.Sleep(5 * time.Millisecond)
	}
	return rig
}

// promote is what a winning manager runs: fence, flip the controller,
// start shipping to the other replica with heartbeats, and install the
// successor map so stale clients can be rescued off this node.
func (rig *electionRig) promote(i int, epoch uint64) error {
	rig.fols[i].SetEpoch(epoch)
	if err := rig.reps[i].Promote(epoch); err != nil {
		return err
	}
	p, err := replication.NewPrimary(replication.PrimaryConfig{
		Stores: rig.stores[i], Epoch: epoch, Quorum: true, HeartbeatEvery: rig.heartbeat,
	})
	if err != nil {
		return err
	}
	p.AddFollower(rig.fols[1-i].Addr())
	rig.shippers[i].Store(p)
	rig.reps[i].AttachReplication(p)
	v2, err := rig.v1.WithPromotedReplica(0, rig.repURLs[i])
	if err != nil {
		return err
	}
	if err := rig.reps[i].AdoptMap(v2); err != nil {
		return err
	}
	rig.promoMu.Lock()
	rig.promotions = append(rig.promotions, promotion{replica: i, epoch: epoch})
	rig.promoMu.Unlock()
	return nil
}

func (rig *electionRig) snapshotPromotions() []promotion {
	rig.promoMu.Lock()
	defer rig.promoMu.Unlock()
	return append([]promotion(nil), rig.promotions...)
}

// kill takes the primary off the network and silences its heartbeats —
// the failure the managers must detect on their own.
func (rig *electionRig) kill() {
	rig.priSrv.CloseClientConnections()
	go rig.priSrv.Close()
	rig.priShip.Close()
}

// winner returns the final authority: the promoted replica at the
// highest epoch (sequential re-elections at distinct epochs are a
// liveness hiccup, not split-brain; the highest epoch owns the shard).
func (rig *electionRig) winner(t *testing.T) (int, uint64) {
	t.Helper()
	promos := rig.snapshotPromotions()
	if len(promos) == 0 {
		t.Fatal("no replica was promoted")
	}
	seen := map[uint64]int{}
	best := promos[0]
	for _, p := range promos {
		if prev, dup := seen[p.epoch]; dup && prev != p.replica {
			t.Fatalf("split brain: replicas %d and %d both promoted at epoch %d", prev, p.replica, p.epoch)
		}
		seen[p.epoch] = p.replica
		if p.epoch > best.epoch {
			best = p
		}
	}
	return best.replica, best.epoch
}

func (rig *electionRig) stormClient(t *testing.T, seed int64) *ShardedClient {
	t.Helper()
	fi := resilience.NewFaultInjector(nil, resilience.FaultConfig{
		Seed:           seed,
		ConnectFailure: 0.05,
		ServerError:    0.03,
	})
	sc, err := NewShardedClient(rig.v1, func(info cluster.ShardInfo) *Client {
		return NewClient(info.Addr, &http.Client{Transport: fi, Timeout: 5 * time.Second},
			WithRetrier(resilience.NewRetrier(resilience.RetryPolicy{
				MaxAttempts: 3, BaseDelay: 5 * time.Millisecond, MaxDelay: 50 * time.Millisecond, Seed: seed,
			})))
	})
	if err != nil {
		t.Fatal(err)
	}
	return sc
}

func electionNote(person string) *event.Notification {
	return &event.Notification{
		Producer: "hospital", SourceID: event.SourceID("src-" + person),
		Class: schema.ClassBloodTest, PersonID: person, Summary: "blood test",
		OccurredAt: time.Date(2010, 5, 30, 9, 0, 0, 0, time.UTC),
	}
}

// storm publishes one event per person through sc, retrying each until
// acknowledged, running killAt() before dispatching the middle one.
func electionStorm(t *testing.T, sc *ShardedClient, persons []string, killAt func()) {
	t.Helper()
	ctx := context.Background()
	idxCh := make(chan int)
	errCh := make(chan error, len(persons))
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idxCh {
				deadline := time.Now().Add(60 * time.Second)
				for {
					_, err := sc.Publish(ctx, electionNote(persons[i]))
					if err == nil {
						break
					}
					if time.Now().After(deadline) {
						errCh <- fmt.Errorf("publish %s never acknowledged: %w", persons[i], err)
						break
					}
					time.Sleep(20 * time.Millisecond)
				}
			}
		}()
	}
	for i := range persons {
		if i == len(persons)/2 {
			killAt()
		}
		idxCh <- i
	}
	close(idxCh)
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}
}

// TestChaosElectionFailover kills the primary mid-storm with no promote
// call anywhere. Acceptance: exactly one auto-elected winner per epoch,
// every acknowledged publish indexed exactly once on the final winner,
// a deposed-epoch shipper fenced off by the electorate, and the dead
// primary's stores rejoining byte-identical to the winner's.
func TestChaosElectionFailover(t *testing.T) {
	seeds := stormSeeds()
	if len(seeds) > 3 {
		seeds = seeds[:3]
	}
	for len(seeds) < 3 {
		seeds = append(seeds, seeds[len(seeds)-1]+1)
	}
	for _, seed := range seeds {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rig := newElectionRig(t, seed)
			sc := rig.stormClient(t, seed)
			persons := make([]string, 20)
			for i := range persons {
				persons[i] = fmt.Sprintf("ELE-%03d", i)
			}
			electionStorm(t, sc, persons, rig.kill)

			win, epoch := rig.winner(t)
			winner := rig.reps[win]
			if epoch < 2 {
				t.Fatalf("winner at epoch %d, want >= 2", epoch)
			}
			if winner.IsReplica() || winner.ReplicationEpoch() != epoch {
				t.Fatalf("winner role: replica=%v epoch=%d, want primary at %d",
					winner.IsReplica(), winner.ReplicationEpoch(), epoch)
			}

			// Exactly-once on the winner, storm retries included.
			for _, person := range persons {
				notes, err := winner.InquireIndex("family-doctor", index.Inquiry{PersonID: person})
				if err != nil {
					t.Fatalf("inquire %s: %v", person, err)
				}
				if len(notes) != 1 {
					t.Errorf("winner holds %d events for %s, want exactly 1", len(notes), person)
				}
			}
			if n, err := winner.IndexLen(); err != nil || n != len(persons) {
				t.Errorf("winner index holds %d events (%v), want %d", n, err, len(persons))
			}
			if err := winner.Audit().Verify(); err != nil {
				t.Errorf("audit chain on the winner: %v", err)
			}

			// Zero split-brain: a shipper still claiming the dead epoch is
			// fenced at hello by the very followers that elected the winner.
			deposed, err := replication.NewPrimary(replication.PrimaryConfig{
				Stores: rig.priStores, Epoch: 1, Quorum: true,
			})
			if err != nil {
				t.Fatal(err)
			}
			deposed.AddFollower(rig.fols[1-win].Addr())
			fenceWait := time.Now().Add(5 * time.Second)
			for !deposed.Fenced() {
				if time.Now().After(fenceWait) {
					t.Error("deposed-epoch shipper was never fenced")
					break
				}
				time.Sleep(10 * time.Millisecond)
			}
			deposed.Close()

			// Rejoin: the dead node's stores — including any unreplicated
			// old-epoch suffix — come back as a follower and converge to
			// the winner's bytes.
			rig.priStores[0].Store.Put("rogue-unreplicated", []byte("old-epoch suffix"))
			rejoin, err := replication.NewFollower("127.0.0.1:0", replication.FollowerConfig{
				Stores: rig.priStores, Epoch: 1,
			})
			if err != nil {
				t.Fatal(err)
			}
			defer rejoin.Close()
			ship := rig.shippers[win].Load()
			if ship == nil {
				t.Fatal("winner has no shipper")
			}
			defer ship.Close()
			ship.AddFollower(rejoin.Addr())
			catchUp := time.Now().Add(10 * time.Second)
			for {
				same := true
				for si, ns := range rig.stores[win] {
					w := ns.Store
					r := rig.priStores[si].Store
					if r.WALOffset() != w.WALOffset() {
						same = false
						break
					}
					wc, err1 := w.CRCWAL(w.WALGen(), 0, w.WALOffset())
					rc, err2 := r.CRCWAL(r.WALGen(), 0, r.WALOffset())
					if err1 != nil || err2 != nil || wc != rc {
						same = false
						break
					}
				}
				if same {
					break
				}
				if time.Now().After(catchUp) {
					t.Fatal("rejoined node never converged to the winner's bytes")
				}
				time.Sleep(10 * time.Millisecond)
			}
			if v, ok, _ := rig.priStores[0].Store.Get("rogue-unreplicated"); ok {
				t.Errorf("old-epoch suffix %q survived the rejoin", v)
			}
		})
	}
}

// TestChaosElectionPartitionedCampaign cuts the candidate→voter links
// at the moment the primary dies: no candidate can reach a quorum, so
// there must be zero promotions while the partition holds — a minority
// node must never elect itself — and exactly one winner once it heals.
func TestChaosElectionPartitionedCampaign(t *testing.T) {
	seeds := stormSeeds()
	if len(seeds) > 3 {
		seeds = seeds[:3]
	}
	for len(seeds) < 3 {
		seeds = append(seeds, seeds[len(seeds)-1]+1)
	}
	for _, seed := range seeds {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rig := newElectionRig(t, seed)
			sc := rig.stormClient(t, seed)
			persons := make([]string, 16)
			for i := range persons {
				persons[i] = fmt.Sprintf("PRT-%03d", i)
			}

			healed := make(chan struct{})
			kill := func() {
				// Partition first, then kill: every campaign triggered by
				// the death runs into the cut links.
				rig.part.Block(rig.fols[0].Addr(), rig.fols[1].Addr())
				rig.kill()
				go func() {
					defer close(healed)
					// Hold the partition across several campaign rounds.
					time.Sleep(1500 * time.Millisecond)
					if got := rig.snapshotPromotions(); len(got) != 0 {
						t.Errorf("%d promotions during the partition, want 0 (minority self-election)", len(got))
					}
					rig.part.Heal(rig.fols[0].Addr(), rig.fols[1].Addr())
				}()
			}
			electionStorm(t, sc, persons, kill)
			<-healed

			win, epoch := rig.winner(t)
			winner := rig.reps[win]
			if winner.IsReplica() || winner.ReplicationEpoch() != epoch {
				t.Fatalf("winner role: replica=%v epoch=%d, want primary at %d",
					winner.IsReplica(), winner.ReplicationEpoch(), epoch)
			}
			for _, person := range persons {
				notes, err := winner.InquireIndex("family-doctor", index.Inquiry{PersonID: person})
				if err != nil {
					t.Fatalf("inquire %s: %v", person, err)
				}
				if len(notes) != 1 {
					t.Errorf("winner holds %d events for %s, want exactly 1", len(notes), person)
				}
			}
			if err := winner.Audit().Verify(); err != nil {
				t.Errorf("audit chain on the winner: %v", err)
			}
		})
	}
}
