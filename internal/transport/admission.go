package transport

import (
	"context"
	"net"
	"net/http"
	"strings"
	"time"

	"repro/internal/overload"
)

// routeClass is the admission profile of one endpoint family: its gate
// endpoint key (per-endpoint concurrency limits are configured against
// it), its shedding priority, and its default deadline, installed on the
// request context so it propagates through the controller into PDP
// evaluation and gateway fetches.
type routeClass struct {
	endpoint string
	pri      overload.Priority
	deadline time.Duration
}

// routeClassFor classifies a request path for admission. Priorities
// implement the paper's availability ordering under pressure: accepting
// notification publications (the system of record for events) outranks
// serving detail reads, which outrank speculative prefetches and
// browse-style queries.
func routeClassFor(path string) routeClass {
	switch path {
	case "/ws/publish":
		return routeClass{endpoint: "publish", pri: overload.Critical, deadline: 5 * time.Second}
	case "/ws/details":
		return routeClass{endpoint: "details", pri: overload.Normal, deadline: 10 * time.Second}
	case "/ws/subscribe", "/ws/policy", "/ws/consent":
		// Control-plane mutations: small, rare, and load-bearing for
		// correctness (revocations must land even under pressure).
		return routeClass{endpoint: "control", pri: overload.Critical, deadline: 5 * time.Second}
	case "/ws/inquire":
		return routeClass{endpoint: "inquire", pri: overload.Low, deadline: 10 * time.Second}
	default:
		// Catalog, pending, stats, audit, policies, subscription probes:
		// browse-style reads, first to shed.
		return routeClass{endpoint: "query", pri: overload.Low, deadline: 5 * time.Second}
	}
}

// exemptFromAdmission reports paths that bypass the gate entirely:
// operators must be able to scrape /metrics and probe /healthz on an
// overloaded or draining node — that is precisely when they need them.
func exemptFromAdmission(path string) bool {
	return path == "/metrics" || path == "/healthz"
}

// actorKey derives the per-actor rate-limit key for a request. With
// authentication enabled the bearer token identifies the caller; without
// it the remote host stands in. The key space is bounded by the gate's
// bucket table, so hostile key churn cannot grow memory.
func actorKey(r *http.Request) string {
	if h := r.Header.Get("Authorization"); h != "" {
		return strings.TrimPrefix(h, "Bearer ")
	}
	host, _, err := net.SplitHostPort(r.RemoteAddr)
	if err != nil {
		return r.RemoteAddr
	}
	return host
}

// SetAdmission installs an overload gate in front of every /ws route.
// Shed requests are answered fail-fast with a 429 overloaded fault and a
// Retry-After hint (the client retriers honor it); admitted requests run
// under the endpoint's default deadline, which flows through r.Context()
// into the controller. A nil gate disables admission control.
func (s *Server) SetAdmission(g *overload.Gate) *Server {
	s.gate = g
	return s
}

// gwRouteClassFor classifies local-cooperation-gateway paths. Producer
// writes (publish relay, detail persist) are the gateway's reason to
// exist and shed last; the controller's filtered retrievals degrade to
// the consumer's retry, and anything else is browse traffic.
func gwRouteClassFor(path string) routeClass {
	switch path {
	case "/gw/publish", "/gw/persist":
		return routeClass{endpoint: "gw-write", pri: overload.Critical, deadline: 5 * time.Second}
	case "/gw/get-response":
		return routeClass{endpoint: "gw-details", pri: overload.Normal, deadline: 10 * time.Second}
	default:
		return routeClass{endpoint: "gw-query", pri: overload.Low, deadline: 5 * time.Second}
	}
}

// withGate is the admission middleware shared by the controller and
// gateway servers. gate is read per request (it is installed after
// construction); classify maps a path to its admission profile. It sits
// inside the telemetry middleware, so 429s are visible in the per-route
// HTTP metrics like any other response.
func withGate(gate func() *overload.Gate, classify func(string) routeClass, next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		g := gate()
		if g == nil || exemptFromAdmission(r.URL.Path) {
			next.ServeHTTP(w, r)
			return
		}
		rc := classify(r.URL.Path)
		release, d := g.Admit(rc.endpoint, rc.pri, actorKey(r))
		if !d.Admitted {
			w.Header().Set("Retry-After", overload.RetryAfterSeconds(d.RetryAfter))
			writeXML(w, http.StatusTooManyRequests, &Fault{
				Code:    CodeOverloaded,
				Message: "transport: overloaded (" + d.Reason + "), retry later",
			})
			return
		}
		defer release()
		if rc.deadline > 0 {
			ctx, cancel := context.WithTimeout(r.Context(), rc.deadline)
			defer cancel()
			r = r.WithContext(ctx)
		}
		next.ServeHTTP(w, r)
	})
}

// withAdmission wraps next in the controller's admission check.
func (s *Server) withAdmission(next http.Handler) http.Handler {
	return withGate(func() *overload.Gate { return s.gate }, routeClassFor, next)
}
