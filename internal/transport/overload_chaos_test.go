package transport

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/audit"
	"repro/internal/bus"
	"repro/internal/core"
	"repro/internal/crypto"
	"repro/internal/enforcer"
	"repro/internal/event"
	"repro/internal/gateway"
	"repro/internal/index"
	"repro/internal/overload"
	"repro/internal/policy"
	"repro/internal/resilience"
	"repro/internal/schema"
	"repro/internal/store"
	"repro/internal/telemetry"
)

// Storm knobs: `go test ./...` runs a small, fast storm with fixed
// seeds; `make chaos` stretches it (CHAOS_STORM_SEEDS, CHAOS_STORM_N).
func stormSeeds() []int64 {
	if v := os.Getenv("CHAOS_STORM_SEEDS"); v != "" {
		var out []int64
		for _, f := range strings.Split(v, ",") {
			if n, err := strconv.ParseInt(strings.TrimSpace(f), 10, 64); err == nil {
				out = append(out, n)
			}
		}
		if len(out) > 0 {
			return out
		}
	}
	return []int64{1, 2}
}

func stormProducers() int {
	if v := os.Getenv("CHAOS_STORM_N"); v != "" {
		if n, err := strconv.Atoi(v); err == nil && n > 0 {
			return n
		}
	}
	return 8
}

// Storm rig limits, deliberately tight so the storm actually overloads:
// a small admission budget and rate, a small bus queue in front of a
// consumer wedged for the whole test, and a tiny DLQ cap so eviction is
// exercised too.
const (
	stormQueueCap    = 16
	stormMaxDead     = 8
	stormMaxInflight = 4
	stormActorRPS    = 20
)

type stormRig struct {
	ctrl    *core.Controller
	gw      *gateway.Gateway
	gate    *overload.Gate
	hs      *httptest.Server
	reg     *telemetry.Registry
	release chan struct{} // closed to un-wedge the consumer
}

func newStormRig(t *testing.T) *stormRig {
	t.Helper()
	reg := telemetry.NewRegistry()
	ctrl, err := core.New(core.Config{
		MasterKey:      bytes.Repeat([]byte{7}, crypto.KeySize),
		DefaultConsent: true,
		Metrics:        reg,
		Bus:            bus.Options{MaxPending: stormQueueCap, MaxDead: stormMaxDead},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		ctrl.CloseContext(ctx)
	})
	if err := ctrl.RegisterProducer("hospital", "Hospital"); err != nil {
		t.Fatal(err)
	}
	if err := ctrl.RegisterConsumer("family-doctor", "Doctors"); err != nil {
		t.Fatal(err)
	}
	if err := ctrl.DeclareClass("hospital", schema.BloodTest()); err != nil {
		t.Fatal(err)
	}
	if _, err := ctrl.DefinePolicy(&policy.Policy{
		Producer: "hospital",
		Actor:    "family-doctor",
		Class:    schema.ClassBloodTest,
		Purposes: []event.Purpose{event.PurposeHealthcareTreatment},
		Fields:   []event.FieldName{"patient-id", "exam-date", "hemoglobin"},
	}); err != nil {
		t.Fatal(err)
	}
	gw, err := gateway.New("hospital", store.OpenMemory(), ctrl.Catalog())
	if err != nil {
		t.Fatal(err)
	}
	if err := ctrl.AttachGateway("hospital", gw); err != nil {
		t.Fatal(err)
	}

	// The wedged consumer: its first delivery never returns, so its
	// bounded queue must absorb the storm and shed to the capped DLQ.
	release := make(chan struct{})
	t.Cleanup(func() { close(release) })
	if _, err := ctrl.Subscribe("family-doctor", schema.ClassBloodTest,
		func(*event.Notification) { <-release }); err != nil {
		t.Fatal(err)
	}

	gate := overload.NewGate(overload.Config{
		MaxInFlight: stormMaxInflight,
		ActorRPS:    stormActorRPS,
		Metrics:     reg,
	})
	hs := httptest.NewServer(NewServer(ctrl).SetAdmission(gate))
	t.Cleanup(hs.Close)
	return &stormRig{ctrl: ctrl, gw: gw, gate: gate, hs: hs, reg: reg, release: release}
}

// metricSum sums every sample of a metric across its label variants in
// a Prometheus text exposition.
func metricSum(body, name string) (float64, bool) {
	var sum float64
	found := false
	for _, line := range strings.Split(body, "\n") {
		if !strings.HasPrefix(line, name) {
			continue
		}
		rest := line[len(name):]
		if rest == "" || (rest[0] != ' ' && rest[0] != '{') {
			continue
		}
		fields := strings.Fields(line)
		v, err := strconv.ParseFloat(fields[len(fields)-1], 64)
		if err != nil {
			continue
		}
		sum += v
		found = true
	}
	return sum, found
}

func (r *stormRig) scrapeMetrics(t *testing.T) string {
	t.Helper()
	resp, err := http.Get(r.hs.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var sb strings.Builder
	buf := make([]byte, 32<<10)
	for {
		n, err := resp.Body.Read(buf)
		sb.Write(buf[:n])
		if err != nil {
			break
		}
	}
	return sb.String()
}

type stormOutcome struct {
	gid     event.GlobalID
	shed    bool
	err     error
	elapsed time.Duration
}

// TestChaosOverloadStorm floods an admission-gated controller from N
// hot producers while one consumer is wedged: accepted publishes index
// exactly once, everything beyond the budget is shed fail-fast with a
// 429 the client maps to ErrOverloaded, the wedged subscription's
// memory stays bounded (queue cap + DLQ cap with evictions), detail
// probes racing the storm are never audited as policy denies, and a
// drain started mid-storm finishes inside its deadline even though the
// wedged handler never returns.
func TestChaosOverloadStorm(t *testing.T) {
	producers := stormProducers()
	const perProducer = 30
	for _, seed := range stormSeeds() {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			r := newStormRig(t)
			// Latency jitter on the client hop diversifies interleavings per
			// seed without making any request fail outright.
			faults := resilience.NewFaultInjector(nil, resilience.FaultConfig{
				Seed:    seed,
				Latency: 0.3, MaxLatency: 3 * time.Millisecond,
			})
			client := NewClient(r.hs.URL, &http.Client{Transport: faults, Timeout: 10 * time.Second})

			// Details for every source the storm may publish, persisted up
			// front so probe failures can only be overload, never not-found.
			const person = "PRS-STORM"
			for p := 0; p < producers; p++ {
				for i := 0; i < perProducer; i++ {
					d := event.NewDetail(schema.ClassBloodTest,
						stormSrc(p, i), "hospital").
						Set("patient-id", person).
						Set("exam-date", "2010-05-30").
						Set("hemoglobin", "14.2")
					if err := r.gw.Persist(d); err != nil {
						t.Fatal(err)
					}
				}
			}

			// Wave 1: the storm proper.
			var mu sync.Mutex
			var outcomes []stormOutcome
			var probeDeny error
			var wg sync.WaitGroup
			for p := 0; p < producers; p++ {
				wg.Add(1)
				go func(p int) {
					defer wg.Done()
					for i := 0; i < perProducer; i++ {
						start := time.Now()
						gid, err := client.Publish(context.Background(), &event.Notification{
							SourceID: stormSrc(p, i), Class: schema.ClassBloodTest,
							PersonID: person, Summary: "blood test", Producer: "hospital",
							OccurredAt: time.Date(2010, 5, 30, 9, 0, 0, 0, time.UTC).
								Add(time.Duration(p*perProducer+i) * time.Second),
						})
						o := stormOutcome{gid: gid, err: err, elapsed: time.Since(start)}
						if err != nil && errors.Is(err, ErrOverloaded) {
							o.shed = true
						}
						mu.Lock()
						outcomes = append(outcomes, o)
						mu.Unlock()
					}
				}(p)
			}
			// Detail probes race the storm; under overload they may shed,
			// but a permitted request must never come back a policy deny.
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < 20; i++ {
					mu.Lock()
					var gid event.GlobalID
					for _, o := range outcomes {
						if o.err == nil {
							gid = o.gid
							break
						}
					}
					mu.Unlock()
					if gid == "" {
						time.Sleep(2 * time.Millisecond)
						continue
					}
					_, err := client.RequestDetails(context.Background(), &event.DetailRequest{
						Requester: "family-doctor", Class: schema.ClassBloodTest,
						EventID: gid, Purpose: event.PurposeHealthcareTreatment,
					})
					if err != nil && errors.Is(err, enforcer.ErrDenied) {
						mu.Lock()
						probeDeny = err
						mu.Unlock()
						return
					}
					time.Sleep(2 * time.Millisecond)
				}
			}()
			wg.Wait()
			if probeDeny != nil {
				t.Fatalf("overload surfaced as a policy deny on the detail path: %v", probeDeny)
			}

			// Classify wave-1 outcomes. Nothing may fail for any reason other
			// than an explicit shed: latency jitter is the only injected fault.
			var accepted []event.GlobalID
			sheds := 0
			var shedLat, allLat []time.Duration
			for _, o := range outcomes {
				allLat = append(allLat, o.elapsed)
				switch {
				case o.err == nil:
					accepted = append(accepted, o.gid)
				case o.shed:
					sheds++
					shedLat = append(shedLat, o.elapsed)
				default:
					t.Fatalf("publish failed with a non-shed error: %v", o.err)
				}
			}
			t.Logf("storm: %d accepted, %d shed of %d publishes", len(accepted), sheds, len(outcomes))
			if len(accepted) == 0 {
				t.Fatal("storm admitted nothing; the gate is over-shedding")
			}
			if sheds == 0 {
				t.Fatal("storm shed nothing; the gate is not protecting the budget")
			}
			// Sheds are fail-fast: a 429 must not have queued behind the storm.
			if p := pctl(shedLat, 99); p > time.Second {
				t.Fatalf("shed p99 = %v; fail-fast sheds must not queue", p)
			}
			if p := pctl(allLat, 99); p > 5*time.Second {
				t.Fatalf("publish p99 = %v under storm; latency is unbounded", p)
			}

			// Exactly once at the index: every accepted publish and nothing
			// else (a shed request must not have done the work anyway).
			notes, err := r.ctrl.InquireOwn(person, index.Inquiry{Limit: 10 * producers * perProducer})
			if err != nil {
				t.Fatal(err)
			}
			byID := map[event.GlobalID]int{}
			for _, n := range notes {
				byID[n.ID]++
			}
			if len(notes) != len(accepted) || len(byID) != len(accepted) {
				t.Fatalf("indexed %d notifications over %d ids, want exactly the %d accepted",
					len(notes), len(byID), len(accepted))
			}
			for _, gid := range accepted {
				if byID[gid] != 1 {
					t.Fatalf("accepted publish %s indexed %d times", gid, byID[gid])
				}
			}

			// The wedged consumer's memory stayed bounded, and the overflow
			// machinery is observable on /metrics.
			body := r.scrapeMetrics(t)
			if hwm, ok := metricSum(body, "css_bus_queue_depth_hwm"); !ok || hwm > stormQueueCap {
				t.Fatalf("css_bus_queue_depth_hwm = %v (found=%v), want ≤ %d", hwm, ok, stormQueueCap)
			}
			if v, ok := metricSum(body, "css_bus_overflow_total"); !ok || v < 1 {
				t.Fatalf("css_bus_overflow_total = %v (found=%v), want ≥ 1", v, ok)
			}
			if v, ok := metricSum(body, "css_bus_dlq_evicted_total"); !ok || v < 1 {
				t.Fatalf("css_bus_dlq_evicted_total = %v (found=%v), want ≥ 1", v, ok)
			}
			if v, ok := metricSum(body, "css_overload_shed_total"); !ok || v < 1 {
				t.Fatalf("css_overload_shed_total = %v (found=%v), want ≥ 1", v, ok)
			}
			if v, ok := metricSum(body, "css_overload_admitted_total"); !ok || v < 1 {
				t.Fatalf("css_overload_admitted_total = %v (found=%v), want ≥ 1", v, ok)
			}

			// No deny was audited for anything in this storm — overload and
			// unavailability are never policy outcomes.
			denies, err := r.ctrl.Audit().Search(audit.Query{Kind: audit.KindDetailRequest, Outcome: "deny"})
			if err != nil {
				t.Fatal(err)
			}
			if len(denies) != 0 {
				t.Fatalf("audit logged %d denies under overload; first: %+v", len(denies), denies[0])
			}

			// Wave 2: drain mid-storm. Producers keep hammering while the
			// rig executes the SIGTERM sequence; it must complete inside its
			// deadline even though the wedged handler never returns.
			stop := make(chan struct{})
			var wg2 sync.WaitGroup
			for p := 0; p < 4; p++ {
				wg2.Add(1)
				go func(p int) {
					defer wg2.Done()
					for i := 0; ; i++ {
						select {
						case <-stop:
							return
						default:
						}
						client.Publish(context.Background(), &event.Notification{
							SourceID: event.SourceID(fmt.Sprintf("drain-%d-%04d", p, i)),
							Class:    schema.ClassBloodTest, PersonID: person,
							Summary: "blood test", Producer: "hospital",
							OccurredAt: time.Date(2010, 6, 1, 9, 0, 0, 0, time.UTC),
						})
					}
				}(p)
			}
			time.Sleep(50 * time.Millisecond)
			drainCtx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
			drainStart := time.Now()
			drainErr := overload.Drain(drainCtx, r.gate,
				overload.Step{Name: "http-shutdown", Run: r.hs.Config.Shutdown},
				overload.Step{Name: "bus-flush", Run: r.ctrl.FlushContext},
				overload.Step{Name: "store-close", Run: r.ctrl.CloseContext},
			)
			cancel()
			close(stop)
			elapsed := time.Since(drainStart)
			if elapsed > 8*time.Second {
				t.Fatalf("drain took %v with a 2s budget; a wedged consumer must not block shutdown", elapsed)
			}
			// The wedged subscription cannot flush, so the bus-flush step is
			// expected to report its deadline; what matters is that the drain
			// sequence still ran to completion and the gate stopped admitting.
			if !r.gate.Draining() {
				t.Fatal("gate not draining after Drain")
			}
			t.Logf("drain finished in %v (err=%v)", elapsed, drainErr)
			done := make(chan struct{})
			go func() { wg2.Wait(); close(done) }()
			select {
			case <-done:
			case <-time.After(15 * time.Second):
				t.Fatal("storm producers still blocked after drain; requests are hanging")
			}
			if _, d := r.gate.Admit("publish", overload.Critical, "late"); d.Admitted {
				t.Fatal("gate admitted a request after drain began")
			}
		})
	}
}

func stormSrc(p, i int) event.SourceID {
	return event.SourceID(fmt.Sprintf("storm-%02d-%02d", p, i))
}

// pctl returns the pth percentile of durations (nearest-rank).
func pctl(ds []time.Duration, p int) time.Duration {
	if len(ds) == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), ds...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	idx := (len(sorted) - 1) * p / 100
	return sorted[idx]
}
