package transport

// Multi-shard chaos: the cluster invariants — every acknowledged
// publish indexed exactly once, on exactly the owning shard, with
// every shard's audit hash-chain intact — must survive a shard
// dropping off the network mid-storm and a network partition striking
// in the middle of a live reshard. Runs short by default; `make chaos`
// stretches the partition window via CHAOS_PARTITION.

import (
	"context"
	"fmt"
	"net/http"
	"os"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/index"
	"repro/internal/resilience"
)

// chaosPartition returns the scripted partition window: short for
// `go test ./...`, stretched by `make chaos` (CHAOS_PARTITION=3s).
func chaosPartition() time.Duration {
	if v := os.Getenv("CHAOS_PARTITION"); v != "" {
		if d, err := time.ParseDuration(v); err == nil && d > 0 {
			return d
		}
	}
	return 300 * time.Millisecond
}

// newShardChaosClient builds a fault-tolerant sharded client over the
// rig: one fault injector in front of every shard (so PartitionHosts
// can cut a single shard while the rest keep answering), retries, and
// per-shard breaker groups.
func newShardChaosClient(t *testing.T, r *shardRig, seed int64) (*ShardedClient, *resilience.FaultInjector) {
	t.Helper()
	fi := resilience.NewFaultInjector(nil, resilience.FaultConfig{
		Seed:           seed,
		ConnectFailure: 0.10,
		ServerError:    0.03,
		TruncateBody:   0.03,
	})
	sc, err := NewShardedClient(r.m, func(info cluster.ShardInfo) *Client {
		return NewClient(info.Addr, &http.Client{Transport: fi, Timeout: 5 * time.Second},
			WithRetrier(resilience.NewRetrier(resilience.RetryPolicy{
				MaxAttempts: 4, BaseDelay: 5 * time.Millisecond, MaxDelay: 50 * time.Millisecond, Seed: seed,
			})),
			WithBreakerGroup(resilience.NewGroup(resilience.BreakerConfig{OpenFor: 150 * time.Millisecond})))
	})
	if err != nil {
		t.Fatal(err)
	}
	return sc, fi
}

// stormPublish drives persons[i] through sc from a small worker pool,
// retrying each publish past transient faults (open breakers included)
// until it is acknowledged or the per-publish deadline expires. Fires
// mid after half the persons have been handed to workers.
func stormPublish(t *testing.T, sc *ShardedClient, r *shardRig, persons []string, mid func()) {
	t.Helper()
	ctx := context.Background()
	idxCh := make(chan int)
	errCh := make(chan error, len(persons))
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idxCh {
				deadline := time.Now().Add(30 * time.Second)
				for {
					_, err := sc.Publish(ctx, r.note(persons[i], 0))
					if err == nil {
						break
					}
					if time.Now().After(deadline) {
						errCh <- fmt.Errorf("publish %s never acknowledged: %w", persons[i], err)
						break
					}
					time.Sleep(20 * time.Millisecond)
				}
			}
		}()
	}
	for i := range persons {
		if i == len(persons)/2 && mid != nil {
			mid()
		}
		idxCh <- i
	}
	close(idxCh)
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}
}

// assertClusterInvariants checks the acceptance conditions after a
// storm: the cluster indexes exactly one event per person, each on the
// shard the map owns it to, and every shard's audit chain verifies.
func assertClusterInvariants(t *testing.T, r *shardRig, m *cluster.Map, persons []string) {
	t.Helper()
	if got := r.indexTotal(t); got != len(persons) {
		t.Errorf("cluster index holds %d events, want exactly %d", got, len(persons))
	}
	for _, person := range persons {
		owner := m.Owner(r.ctrls[0].Pseudonym(person))
		for _, c := range r.ctrls {
			self, _ := c.ShardID()
			notes, err := c.InquireIndex("family-doctor", index.Inquiry{PersonID: person})
			if err != nil {
				t.Fatal(err)
			}
			switch {
			case self == owner && len(notes) != 1:
				t.Errorf("owner %s holds %d events for %s, want 1", self, len(notes), person)
			case self != owner && len(notes) != 0:
				t.Errorf("non-owner %s holds %d events for %s", self, len(notes), person)
			}
		}
	}
	for _, c := range r.ctrls {
		if err := c.Audit().Verify(); err != nil {
			id, _ := c.ShardID()
			t.Errorf("audit chain on %s broken: %v", id, err)
		}
	}
}

// TestChaosShardKill cuts one shard off the network in the middle of a
// publish storm (with background connection failures, injected 503s
// and truncated acks on every hop). Once the partition heals, every
// publish must be indexed exactly once on its owning shard and every
// per-shard audit chain must verify.
func TestChaosShardKill(t *testing.T) {
	window := chaosPartition()
	for _, seed := range []int64{1, 2} {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			r := newShardRig(t, 3)
			sc, fi := newShardChaosClient(t, r, seed)

			persons := make([]string, 24)
			for i := range persons {
				persons[i] = fmt.Sprintf("PRK-%03d", i)
			}
			// Partition the shard that owns the first post-window person,
			// so the cut provably lands in the storm's path.
			victim := r.m.Owner(r.ctrls[0].Pseudonym(persons[len(persons)/2]))
			t.Logf("chaos seed=%d partition=%s victim=%s", fi.Seed(), window, victim)
			stormPublish(t, sc, r, persons, func() {
				fi.PartitionHosts(window, strings.TrimPrefix(r.shards[victim].Addr, "http://"))
			})
			assertClusterInvariants(t, r, r.m, persons)
			if fi.Injected()["partition"] == 0 {
				t.Error("the partition never bit — storm finished before the window opened")
			}
		})
	}
}

// TestChaosShardReshard splits the cluster live — a cold fourth shard
// joins via cluster.Reshard — while a publish storm runs and a
// partition cuts one donor from the clients mid-reshard. No publish
// may be dropped or double-indexed: pre-split events land once (moved
// ones exactly once on their new owner), storm publishes ride the
// freeze window via retries, and all four audit chains stay intact.
func TestChaosShardReshard(t *testing.T) {
	window := chaosPartition()
	seed := int64(11)
	r := newShardRigCold(t, 3, 1)
	sc, fi := newShardChaosClient(t, r, seed)
	t.Logf("chaos seed=%d partition=%s", fi.Seed(), window)

	// Phase 1: seed the cluster before the split so the reshard has
	// real data to move.
	pre := make([]string, 20)
	for i := range pre {
		pre[i] = fmt.Sprintf("PRE-%03d", i)
	}
	stormPublish(t, sc, r, pre, nil)

	next, err := r.m.WithShards(r.shards)
	if err != nil {
		t.Fatal(err)
	}
	nodes := make(map[cluster.ShardID]cluster.Node, len(r.ctrls))
	for _, c := range r.ctrls {
		id, _ := c.ShardID()
		nodes[id] = c
	}

	// Phase 2: storm while the reshard runs; mid-storm the partition
	// cuts a donor from the clients (the reshard itself is unaffected —
	// it is the data plane that must ride it out).
	var reshardStats cluster.ReshardStats
	var reshardErr error
	done := make(chan struct{})
	storm := make([]string, 30)
	for i := range storm {
		storm[i] = fmt.Sprintf("PRW-%03d", i)
	}
	victim := r.m.Owner(r.ctrls[0].Pseudonym(storm[len(storm)/2]))
	stormPublish(t, sc, r, storm, func() {
		fi.PartitionHosts(window, strings.TrimPrefix(r.shards[victim].Addr, "http://"))
		go func() {
			defer close(done)
			reshardStats, reshardErr = cluster.Reshard(context.Background(), nodes, next)
		}()
	})
	<-done
	if reshardErr != nil {
		t.Fatalf("reshard: %v", reshardErr)
	}
	if reshardStats.Moved == 0 {
		t.Error("split moved nothing: the new shard owns no keys")
	}
	if reshardStats.Swept != reshardStats.Moved {
		t.Errorf("swept %d != moved %d: donors leak moved events", reshardStats.Swept, reshardStats.Moved)
	}
	t.Logf("reshard moved=%d swept=%d", reshardStats.Moved, reshardStats.Swept)

	all := append(append([]string{}, pre...), storm...)
	assertClusterInvariants(t, r, next, all)

	// The new shard must actually carry load after the split.
	n3, err := r.ctrls[3].IndexLen()
	if err != nil {
		t.Fatal(err)
	}
	if n3 == 0 {
		t.Error("shard-3 is empty after the split")
	}

	// The client followed the flip: its map must be the adopted one.
	if sc.Map().Version() != next.Version() {
		t.Logf("note: client still routes by map v%d (refresh is lazy; redirects keep it correct)", sc.Map().Version())
	}

	// One event published after the dust settles routes straight to the
	// new topology.
	if _, err := sc.Publish(context.Background(), r.note("POST-SPLIT", 0)); err != nil {
		t.Fatalf("post-split publish: %v", err)
	}
	owner := next.Owner(r.ctrls[0].Pseudonym("POST-SPLIT"))
	notes, err := r.ctrls[owner].InquireIndex("family-doctor", index.Inquiry{PersonID: "POST-SPLIT"})
	if err != nil {
		t.Fatal(err)
	}
	if len(notes) != 1 {
		t.Fatalf("post-split event not on its owner %s (found %d)", owner, len(notes))
	}
}
