package transport

// Replication failover chaos: a primary/replica pair under a publish
// storm with injected connection failures, server errors, and a flaky
// replication link. Mid-storm the primary is killed off the network and
// the replica claims the next epoch. Every acknowledged publish must be
// indexed exactly once on the survivor, its audit hash-chain must
// verify end-to-end, and the deposed primary's split-brain writes must
// be fenced off the replicated chain.

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/crypto"
	"repro/internal/event"
	"repro/internal/index"
	"repro/internal/replication"
	"repro/internal/resilience"
	"repro/internal/schema"
)

// replChaosRig is one shard as deployed for failover drills: a primary
// and a read replica joined by a quorum-mode WAL shipper over a flaky
// link, each behind its own HTTP server, routed by a map that names the
// replica.
type replChaosRig struct {
	primary, replica *core.Controller
	priSrv, repSrv   *httptest.Server
	shipper          *replication.Primary
	follower         *replication.Follower
	v1               *cluster.Map
}

func newReplChaosRig(t *testing.T, seed int64) *replChaosRig {
	t.Helper()
	key := bytes.Repeat([]byte{7}, crypto.KeySize)
	rig := &replChaosRig{}

	rig.priSrv = httptest.NewUnstartedServer(nil)
	rig.repSrv = httptest.NewUnstartedServer(nil)
	priURL := "http://" + rig.priSrv.Listener.Addr().String()
	repURL := "http://" + rig.repSrv.Listener.Addr().String()
	v1, err := cluster.NewMap(1, 0, []cluster.ShardInfo{
		{ID: 0, Addr: priURL, Replicas: []string{repURL}, Epoch: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	rig.v1 = v1

	rig.primary, err = core.New(core.Config{
		DataDir: t.TempDir(), MasterKey: key, DefaultConsent: true,
		ShardID: 0, ShardMap: v1,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { rig.primary.Close() })
	rig.replica, err = core.New(core.Config{
		DataDir: t.TempDir(), MasterKey: key, DefaultConsent: true,
		Replica: true, ShardID: 0, ShardMap: v1,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { rig.replica.Close() })

	rs, err := rig.replica.ReplStores()
	if err != nil {
		t.Fatal(err)
	}
	rig.follower, err = replication.NewFollower("127.0.0.1:0", replication.FollowerConfig{
		Stores: rs, Epoch: 1, OnApply: rig.replica.OnReplicatedApply(),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { rig.follower.Close() })
	ps, err := rig.primary.ReplStores()
	if err != nil {
		t.Fatal(err)
	}
	// Quorum mode with a flaky link: every acked publish is fsynced on
	// the follower first, so a kill cannot lose acknowledged events, and
	// the injected dial failures exercise the reconnect/catch-up path
	// mid-storm.
	rig.shipper, err = replication.NewPrimary(replication.PrimaryConfig{
		Stores: ps, Epoch: 1, Quorum: true,
		Dial: resilience.FlakyDialer(seed, 0.3, func(addr string) (net.Conn, error) {
			return net.DialTimeout("tcp", addr, 2*time.Second)
		}),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { rig.shipper.Close() })
	rig.primary.AttachReplication(rig.shipper)
	rig.shipper.AddFollower(rig.follower.Addr())

	if err := rig.primary.RegisterProducer("hospital", "Hospital"); err != nil {
		t.Fatal(err)
	}
	if err := rig.primary.RegisterConsumer("family-doctor", "Doctors"); err != nil {
		t.Fatal(err)
	}
	if err := rig.primary.DeclareClass("hospital", schema.BloodTest()); err != nil {
		t.Fatal(err)
	}
	if _, err := rig.primary.DefinePolicy(doctorBloodPolicy()); err != nil {
		t.Fatal(err)
	}

	rig.priSrv.Config = &http.Server{Handler: NewServer(rig.primary).SetReplication(rig.shipper)}
	rig.priSrv.Start()
	t.Cleanup(rig.priSrv.Close)
	rig.repSrv.Config = &http.Server{Handler: NewServer(rig.replica)}
	rig.repSrv.Start()
	t.Cleanup(rig.repSrv.Close)

	// The storm must not race provisioning onto the replica: wait until
	// the catalog and policy writes are applied before any failover can
	// strand them on the dead node.
	deadline := time.Now().Add(5 * time.Second)
	for {
		caught := true
		offs := rig.follower.Offsets()
		for _, ns := range ps {
			if offs[ns.Name] != ns.Store.WALOffset() {
				caught = false
				break
			}
		}
		if caught {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("replica never caught up with provisioning")
		}
		time.Sleep(5 * time.Millisecond)
	}
	return rig
}

// failover is the runbook executed mid-storm: fence the old epoch on
// the follower (the lease claim), promote the replica, install the
// successor map on it, and only then yank the old primary off the
// network — the harshest ordering, since clients keep hammering the
// deposed node while the replica already owns the shard.
func (rig *replChaosRig) failover(t *testing.T) {
	rig.follower.SetEpoch(2)
	if err := rig.replica.Promote(2); err != nil {
		t.Errorf("promote: %v", err)
		return
	}
	v2, err := rig.v1.WithPromotedReplica(0, "http://"+rig.repSrv.Listener.Addr().String())
	if err != nil {
		t.Errorf("successor map: %v", err)
		return
	}
	if err := rig.replica.AdoptMap(v2); err != nil {
		t.Errorf("adopt successor map: %v", err)
		return
	}
	rig.priSrv.CloseClientConnections()
	go rig.priSrv.Close()
}

// TestChaosReplFailover kills the primary mid-storm. Acceptance: every
// acknowledged publish indexed exactly once on the promoted replica,
// its audit chain intact, and the deposed primary's post-fence write
// rejected with ErrFenced and absent from the survivor.
func TestChaosReplFailover(t *testing.T) {
	// Three seeds per the failover drill: the first three of the storm
	// set when `make chaos` widens it, padded to three for plain go test.
	seeds := stormSeeds()
	if len(seeds) > 3 {
		seeds = seeds[:3]
	}
	for len(seeds) < 3 {
		seeds = append(seeds, seeds[len(seeds)-1]+1)
	}
	for _, seed := range seeds {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rig := newReplChaosRig(t, seed)
			fi := resilience.NewFaultInjector(nil, resilience.FaultConfig{
				Seed:           seed,
				ConnectFailure: 0.05,
				ServerError:    0.03,
				TruncateBody:   0.03,
			})
			sc, err := NewShardedClient(rig.v1, func(info cluster.ShardInfo) *Client {
				return NewClient(info.Addr, &http.Client{Transport: fi, Timeout: 5 * time.Second},
					WithRetrier(resilience.NewRetrier(resilience.RetryPolicy{
						MaxAttempts: 3, BaseDelay: 5 * time.Millisecond, MaxDelay: 50 * time.Millisecond, Seed: seed,
					})))
			})
			if err != nil {
				t.Fatal(err)
			}

			persons := make([]string, 20)
			for i := range persons {
				persons[i] = fmt.Sprintf("RFO-%03d", i)
			}
			note := func(person string) *event.Notification {
				return &event.Notification{
					Producer: "hospital", SourceID: event.SourceID("src-" + person),
					Class: schema.ClassBloodTest, PersonID: person, Summary: "blood test",
					OccurredAt: time.Date(2010, 5, 30, 9, 0, 0, 0, time.UTC),
				}
			}

			ctx := context.Background()
			idxCh := make(chan int)
			errCh := make(chan error, len(persons))
			var wg sync.WaitGroup
			for w := 0; w < 4; w++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for i := range idxCh {
						deadline := time.Now().Add(30 * time.Second)
						for {
							_, err := sc.Publish(ctx, note(persons[i]))
							if err == nil {
								break
							}
							if time.Now().After(deadline) {
								errCh <- fmt.Errorf("publish %s never acknowledged: %w", persons[i], err)
								break
							}
							time.Sleep(20 * time.Millisecond)
						}
					}
				}()
			}
			for i := range persons {
				if i == len(persons)/2 {
					rig.failover(t)
				}
				idxCh <- i
			}
			close(idxCh)
			wg.Wait()
			close(errCh)
			for err := range errCh {
				t.Error(err)
			}

			// Exactly-once on the survivor: one event per person, no
			// duplicates from cross-failover retries (the replicated idmap
			// deduplicates source ids), total matches.
			for _, person := range persons {
				notes, err := rig.replica.InquireIndex("family-doctor", index.Inquiry{PersonID: person})
				if err != nil {
					t.Fatalf("inquire %s: %v", person, err)
				}
				if len(notes) != 1 {
					t.Errorf("survivor holds %d events for %s, want exactly 1", len(notes), person)
				}
			}
			n, err := rig.replica.IndexLen()
			if err != nil {
				t.Fatal(err)
			}
			if n != len(persons) {
				t.Errorf("survivor index holds %d events, want exactly %d", n, len(persons))
			}
			if err := rig.replica.Audit().Verify(); err != nil {
				t.Errorf("audit chain on the survivor: %v", err)
			}
			if rig.replica.IsReplica() || rig.replica.ReplicationEpoch() != 2 {
				t.Errorf("survivor role: replica=%v epoch=%d, want promoted at epoch 2",
					rig.replica.IsReplica(), rig.replica.ReplicationEpoch())
			}
			if v := sc.Map().Version(); v != 2 {
				t.Errorf("client routes by map v%d, want the successor v2", v)
			}

			// Split brain: the deposed primary still accepts the call
			// in-process, but its quorum barrier must reject the write —
			// the follower holds epoch 2 and denies its frames — and the
			// event must never reach the survivor's chain.
			_, err = rig.primary.Publish(note("RFO-SPLIT-BRAIN"))
			if !errors.Is(err, replication.ErrFenced) {
				t.Errorf("deposed primary publish = %v, want ErrFenced", err)
			}
			if !rig.shipper.Fenced() {
				t.Error("deposed shipper does not report fenced")
			}
			ghosts, err := rig.replica.InquireIndex("family-doctor", index.Inquiry{PersonID: "RFO-SPLIT-BRAIN"})
			if err != nil {
				t.Fatal(err)
			}
			if len(ghosts) != 0 {
				t.Errorf("split-brain write leaked onto the survivor (%d events)", len(ghosts))
			}
		})
	}
}
